package graph500

import (
	"repro/internal/core"
	"repro/internal/framework"
	"repro/internal/sssp"
)

// The Graph 500 benchmark's second kernel (SSSP) and the general-purpose
// analytics the paper's Discussion section positions as the natural
// extension of its techniques ("the push-pull selection behind it works on
// many graph algorithms, including SSSP, PageRank and more") run over the
// same 1.5D partitioning through the types below.

// SSSPResult re-exports the SSSP run result (distances, parents, rounds).
type SSSPResult = sssp.Result

// SSSPRunner holds a weighted partitioned graph. It runs delta-bucketed
// relaxation on the core engine's 1.5D fast path (adaptive sparse tail,
// retries, checkpointing), with the weight convention from internal/sssp.
type SSSPRunner struct {
	engine *core.Engine
	graph  Graph
	seed   uint64
}

// NewSSSP partitions the graph for single-source shortest paths with the
// Graph 500 weight convention: deterministic uniform [0,1) per edge, keyed
// by weightSeed.
func NewSSSP(g Graph, cfg Config, weightSeed uint64) (*SSSPRunner, error) {
	eng, err := core.NewEngine(g.NumVertices, g.Edges, core.Options{
		Mesh:       cfg.Mesh,
		Ranks:      cfg.Ranks,
		Thresholds: cfg.Thresholds,
	})
	if err != nil {
		return nil, err
	}
	return &SSSPRunner{engine: eng, graph: g, seed: weightSeed}, nil
}

// Run computes shortest paths from root.
func (s *SSSPRunner) Run(root int64) (*SSSPResult, error) {
	res, err := s.engine.RunSSSP(root, s.seed, 0)
	if err != nil {
		return nil, err
	}
	return &SSSPResult{
		Root:        root,
		Dist:        res.Dist,
		Parent:      res.Parent,
		Rounds:      res.Iterations,
		Time:        res.Time,
		Relaxations: res.Relaxations,
	}, nil
}

// RunValidated computes shortest paths and checks the optimality conditions
// (parent edges exist, distances are consistent, no edge can relax further).
func (s *SSSPRunner) RunValidated(root int64) (*SSSPResult, error) {
	res, err := s.Run(root)
	if err != nil {
		return nil, err
	}
	if err := sssp.ValidateResult(s.graph.NumVertices, s.graph.Edges, s.seed, res); err != nil {
		return nil, err
	}
	return res, nil
}

// EdgeWeight returns the deterministic weight of edge {u,v} under this
// runner's seed.
func (s *SSSPRunner) EdgeWeight(u, v int64) float64 { return sssp.WeightOf(u, v, s.seed) }

// Analytics runs dense vertex programs (PageRank, connected components) over
// the 1.5D partitioning.
type Analytics struct {
	engine *framework.Engine
}

// PageRankResult re-exports the framework's PageRank output.
type PageRankResult = framework.PageRankResult

// WCCResult re-exports the framework's connected-components output.
type WCCResult = framework.WCCResult

// NewAnalytics partitions the graph for vertex programs.
func NewAnalytics(g Graph, cfg Config) (*Analytics, error) {
	eng, err := framework.New(g.NumVertices, g.Edges, framework.Options{
		Mesh:       cfg.Mesh,
		Ranks:      cfg.Ranks,
		Thresholds: cfg.Thresholds,
	})
	if err != nil {
		return nil, err
	}
	return &Analytics{engine: eng}, nil
}

// PageRank runs damped power iteration to the given tolerance.
func (a *Analytics) PageRank(damping, tol float64, maxIter int) (*PageRankResult, error) {
	return a.engine.PageRank(damping, tol, maxIter)
}

// ConnectedComponents labels every vertex with its component's minimum ID.
func (a *Analytics) ConnectedComponents() (*WCCResult, error) {
	return a.engine.ConnectedComponents()
}

// Reachability runs bit-parallel multi-source BFS: result.Values[v] has bit
// s set iff sources[s] reaches v. Up to 64 sources traverse simultaneously.
func (a *Analytics) Reachability(sources []int64) ([]uint64, error) {
	res, err := a.engine.Reachability(sources)
	if err != nil {
		return nil, err
	}
	return res.Values, nil
}

// KCoreResult re-exports the framework's k-core output.
type KCoreResult = framework.KCoreResult

// KCore returns membership of the k-core (maximal subgraph of minimum
// degree k), computed by distributed peeling with delegated hub degrees.
func (a *Analytics) KCore(k int64) (*KCoreResult, error) {
	return a.engine.KCore(k)
}
