package graph500

import (
	"math"
	"testing"
)

func TestSSSPPublicAPI(t *testing.T) {
	g := Generate(GenConfig{Scale: 9, Seed: 23})
	ss, err := NewSSSP(g, Config{Ranks: 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ss.RunValidated(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[1] != 0 || res.Parent[1] != 1 {
		t.Fatal("root state wrong")
	}
	// BFS reachability and SSSP reachability agree on an undirected graph.
	r, err := New(g, Config{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := r.RunValidated(1)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < g.NumVertices; v++ {
		bfsReached := bfs.Parent[v] >= 0
		ssspReached := res.Parent[v] >= 0
		if bfsReached != ssspReached {
			t.Fatalf("vertex %d: BFS reached=%v, SSSP reached=%v", v, bfsReached, ssspReached)
		}
	}
	// Weight accessor is consistent and symmetric.
	if ss.EdgeWeight(3, 9) != ss.EdgeWeight(9, 3) {
		t.Fatal("EdgeWeight not symmetric")
	}
}

func TestSSSPDistanceBelowHops(t *testing.T) {
	// With weights < 1, shortest distance is strictly below the hop count
	// except trivially; sanity-check dist ≤ hops for every vertex.
	g := Generate(GenConfig{Scale: 8, Seed: 24})
	ss, err := NewSSSP(g, Config{Ranks: 4}, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ss.RunValidated(0)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := New(g, Config{Ranks: 4})
	bfs, err := r.RunValidated(0)
	if err != nil {
		t.Fatal(err)
	}
	// hops via parent chains
	for v := int64(0); v < g.NumVertices; v++ {
		if bfs.Parent[v] < 0 {
			continue
		}
		hops := 0
		for u := v; u != 0; u = bfs.Parent[u] {
			hops++
			if hops > 1000 {
				t.Fatal("parent chain too long")
			}
		}
		if res.Dist[v] > float64(hops)+1e-9 {
			t.Fatalf("dist[%d] = %g exceeds hop count %d with sub-unit weights", v, res.Dist[v], hops)
		}
	}
}

func TestAnalyticsPublicAPI(t *testing.T) {
	g := Generate(GenConfig{Scale: 9, Seed: 25})
	an, err := NewAnalytics(g, Config{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := an.PageRank(0.85, 1e-8, 100)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range pr.Rank {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PageRank mass %g", sum)
	}
	wcc, err := an.ConnectedComponents()
	if err != nil {
		t.Fatal(err)
	}
	if wcc.Components <= 0 {
		t.Fatal("no components found")
	}
	// Every edge's endpoints share a label.
	for _, e := range g.Edges {
		if wcc.Label[e.U] != wcc.Label[e.V] {
			t.Fatalf("edge (%d,%d) spans components %d and %d", e.U, e.V, wcc.Label[e.U], wcc.Label[e.V])
		}
	}
}

func TestSubIterationBeatsWholeIterationEdges(t *testing.T) {
	// With the tuned heuristics, sub-iteration direction optimization must
	// touch no more edges than vanilla whole-iteration direction
	// optimization on a dense R-MAT graph (the paper's Figure 15 claim).
	g := Generate(GenConfig{Scale: 14, Seed: 26})
	run := func(mode DirectionMode) int64 {
		r, err := New(g, Config{Ranks: 4, Direction: mode})
		if err != nil {
			t.Fatal(err)
		}
		roots, err := r.SampleRoots(1, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.RunValidated(roots[0])
		if err != nil {
			t.Fatal(err)
		}
		return res.Recorder.TotalEdges()
	}
	sub := run(SubIterationDirections)
	whole := run(WholeIterationDirection)
	push := run(PushOnly)
	// Direction optimization of either flavor must slash plain top-down work.
	if sub*2 > push {
		t.Fatalf("sub-iteration touched %d edges vs %d push-only; expected >2x saving", sub, push)
	}
	// Sub-iteration must be competitive with whole-iteration (allow a few
	// percent of per-instance noise; on aggregate it wins, per Figure 15).
	if float64(sub) > 1.05*float64(whole) {
		t.Fatalf("sub-iteration touched %d edges, whole-iteration %d", sub, whole)
	}
}

func TestReachabilityPublicAPI(t *testing.T) {
	g := Generate(GenConfig{Scale: 8, Seed: 27})
	an, err := NewAnalytics(g, Config{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	masks, err := an.Reachability([]int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if masks[1]&1 == 0 || masks[2]&2 == 0 {
		t.Fatal("sources do not reach themselves")
	}
	// Cross-check against single-source BFS reachability.
	r, err := New(g, Config{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := r.RunValidated(1)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < g.NumVertices; v++ {
		if (bfs.Parent[v] >= 0) != (masks[v]&1 != 0) {
			t.Fatalf("vertex %d: BFS and Reachability disagree", v)
		}
	}
}

func TestKCorePublicAPI(t *testing.T) {
	g := Generate(GenConfig{Scale: 9, Seed: 28})
	an, err := NewAnalytics(g, Config{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	core2, err := an.KCore(2)
	if err != nil {
		t.Fatal(err)
	}
	core8, err := an.KCore(8)
	if err != nil {
		t.Fatal(err)
	}
	if core8.CoreSize > core2.CoreSize {
		t.Fatalf("8-core (%d) larger than 2-core (%d)", core8.CoreSize, core2.CoreSize)
	}
}
