// Command experiments regenerates the paper's tables and figures on this
// machine. Each experiment prints the same rows or series the paper reports,
// at laptop scale (the perfmodel supplies machine-scale projections for the
// scaling figures; DESIGN.md documents the substitution).
//
// Usage:
//
//	experiments -list
//	experiments -exp fig12 -scale 16 -ranks 16
//	experiments -all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id: table1, fig2, fig5, fig9, fig10, fig11, fig12, fig13, fig14, fig15, capacity, extensions")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiment ids")
		scale   = flag.Int("scale", 16, "graph SCALE for measured experiments")
		ranks   = flag.Int("ranks", 16, "rank count for measured experiments")
		measure = flag.Bool("measure", true, "include measured runs alongside model projections")
	)
	flag.Parse()

	switch {
	case *list:
		fmt.Println("table1  partitioning method comparison (Table 1)")
		fmt.Println("fig2    R-MAT degree distribution")
		fmt.Println("fig5    per-iteration activation by class")
		fmt.Println("fig9    weak scalability (model + measured)")
		fmt.Println("fig10   time share by subgraph")
		fmt.Println("fig11   time share by communication type")
		fmt.Println("fig12   GTEPS vs (E,H) threshold grid")
		fmt.Println("fig13   partitioned subgraph balance")
		fmt.Println("fig14   OCS-RMA bucketing throughput")
		fmt.Println("fig15   ablation: sub-iteration + segmenting")
		fmt.Println("capacity per-node memory of the three schemes at SCALE 44")
		fmt.Println("extensions SSSP / PageRank / WCC / reachability on the same partitioning")
	case *all:
		reports, err := experiments.All(*scale, *ranks, *measure)
		for _, r := range reports {
			fmt.Println(r)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case *exp != "":
		for _, id := range strings.Split(*exp, ",") {
			r, err := experiments.ByID(strings.TrimSpace(id), *scale, *ranks, *measure)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			fmt.Println(r)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
