// Command benchcmp compares bfsbench JSON reports and fails when the
// candidate regressed more than the allowed fraction below the baseline. To
// damp scheduler noise the candidate flag accepts several reports
// (comma-separated and/or repeated); the gate compares the MEDIAN of their
// values. CI runs it against the committed BENCH_baseline.json over three
// fresh runs:
//
//	benchcmp -baseline BENCH_baseline.json -candidate a.json,b.json,c.json -max-drop 0.15
//
// Two gates apply at -max-drop: the headline harmonic-mean GTEPS
// (when the baseline carries one), and — for schema v2 documents — every
// per-workload entry of the baseline, each compared by its own median GTEPS.
// A workload present in the candidates but absent from the baseline (or vice
// versa) is a usage error: the baseline must be regenerated before a new
// workload can be gated.
//
// A third gate watches setup time: when the baseline carries a setup block,
// the median candidate setup_seconds must not exceed the baseline by more
// than -max-setup-grow (a fractional growth budget, so 0.5 allows +50%).
// A baseline without a setup block skips the gate with a note; a candidate
// without one while the baseline has it is a usage error.
//
// A fourth gate watches batched-BFS throughput: when the baseline carries a
// batch block (schema v3, bfsbench -batch-roots) with a positive
// batch_gteps, the median candidate batch_gteps must hold the same
// -max-drop budget. A baseline without the block skips the gate with a
// note; a candidate missing it while the baseline has one is a usage error.
//
// A candidate whose resilience block records a supervisor crash-loop
// give-up is rejected as a usage error: its numbers come from a world that
// was abandoned and relaunched mid-benchmark, so they are not comparable.
//
// Exit status: 0 within budget, 1 regression, 2 usage or unreadable input.
// Configurations must match (scale, mesh, roots, seed, workload list) — a
// faster machine must not sneak a config change past the gate — and every
// candidate must share one configuration.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/report"
)

// candidateList gathers -candidate values: the flag may repeat, and each
// value may itself hold comma-separated paths.
type candidateList []string

func (c *candidateList) String() string { return strings.Join(*c, ",") }

func (c *candidateList) Set(v string) error {
	for _, p := range strings.Split(v, ",") {
		if p = strings.TrimSpace(p); p != "" {
			*c = append(*c, p)
		}
	}
	return nil
}

func main() {
	var candidates candidateList
	var (
		baseline  = flag.String("baseline", "", "baseline report JSON (required)")
		maxDrop   = flag.Float64("max-drop", 0.15, "max allowed fractional drop of each gated median GTEPS")
		setupGrow = flag.Float64("max-setup-grow", 0.5, "max allowed fractional growth of the median setup_seconds over the baseline's setup block")
		skipCfg   = flag.Bool("skip-config-check", false, "compare even when run configurations differ")
	)
	flag.Var(&candidates, "candidate", "candidate report JSON; repeat or comma-separate for a median-of-N gate (required)")
	flag.Parse()
	if *baseline == "" || len(candidates) == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: -baseline and -candidate are required")
		flag.Usage()
		os.Exit(2)
	}
	os.Exit(run(*baseline, candidates, *maxDrop, *setupGrow, *skipCfg, os.Stdout, os.Stderr))
}

// run executes the whole gate and returns the process exit code; main is a
// flag-parsing shim around it so tests can drive every path.
func run(baseline string, candidates []string, maxDrop, setupGrow float64, skipCfg bool, stdout, stderr io.Writer) int {
	if maxDrop < 0 || maxDrop >= 1 {
		fmt.Fprintf(stderr, "benchcmp: -max-drop %v out of [0,1)\n", maxDrop)
		return 2
	}
	if setupGrow < 0 {
		fmt.Fprintf(stderr, "benchcmp: -max-setup-grow %v is negative\n", setupGrow)
		return 2
	}
	base, err := report.ReadFile(baseline)
	if err != nil {
		fmt.Fprintln(stderr, "benchcmp:", err)
		return 2
	}
	baseWL := make(map[string]report.WorkloadEntry, len(base.Workloads))
	for _, e := range base.Workloads {
		baseWL[e.Workload] = e
	}

	headline := make([]float64, 0, len(candidates))
	setup := make([]float64, 0, len(candidates))
	batched := make([]float64, 0, len(candidates))
	perWL := make(map[string][]float64, len(base.Workloads))
	for _, path := range candidates {
		cand, err := report.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "benchcmp:", err)
			return 2
		}
		if base.Config != cand.Config && !skipCfg {
			fmt.Fprintf(stderr, "benchcmp: run configurations differ:\n  baseline:  %+v\n  candidate %s: %+v\n", base.Config, path, cand.Config)
			return 2
		}
		if s := cand.Resilience.Supervisor; s != nil && s.CrashLoopGiveUps > 0 {
			fmt.Fprintf(stderr, "benchcmp: candidate %s records %d crash-loop give-up(s): its numbers come from a world the supervisor abandoned and relaunched, not a comparable run\n",
				path, s.CrashLoopGiveUps)
			return 2
		}
		seen := make(map[string]bool, len(cand.Workloads))
		for _, e := range cand.Workloads {
			if _, ok := baseWL[e.Workload]; !ok {
				fmt.Fprintf(stderr, "benchcmp: workload %q in candidate %s is missing from the baseline %s — regenerate the baseline to gate it\n",
					e.Workload, path, baseline)
				return 2
			}
			seen[e.Workload] = true
			perWL[e.Workload] = append(perWL[e.Workload], e.GTEPS)
		}
		for _, e := range base.Workloads {
			if !seen[e.Workload] {
				fmt.Fprintf(stderr, "benchcmp: candidate %s is missing baseline workload %q\n", path, e.Workload)
				return 2
			}
		}
		if base.Setup != nil && base.Setup.Seconds > 0 {
			if cand.Setup == nil {
				fmt.Fprintf(stderr, "benchcmp: baseline carries a setup block but candidate %s has none — regenerate the candidate with a bfsbench that reports setup\n", path)
				return 2
			}
			setup = append(setup, cand.Setup.Seconds)
		}
		if base.Batch != nil && base.Batch.BatchGTEPS > 0 {
			if cand.Batch == nil {
				fmt.Fprintf(stderr, "benchcmp: baseline carries a batch block but candidate %s has none — regenerate the candidate with bfsbench -batch-roots\n", path)
				return 2
			}
			batched = append(batched, cand.Batch.BatchGTEPS)
		}
		headline = append(headline, cand.Summary.HarmonicMeanGTEPS)
	}

	b := base.Summary.HarmonicMeanGTEPS
	if b <= 0 && len(base.Workloads) == 0 && (base.Batch == nil || base.Batch.BatchGTEPS <= 0) {
		fmt.Fprintf(stderr, "benchcmp: baseline has neither a positive harmonic-mean GTEPS, workload entries, nor a batch block; nothing to gate\n")
		return 2
	}
	failed := false
	if b > 0 {
		c := median(headline)
		change := (c - b) / b
		fmt.Fprintf(stdout, "harmonic-mean GTEPS: baseline %.4f, candidate median %.4f of %v (%+.1f%%), gate -%.0f%%\n",
			b, c, formatTEPS(headline), 100*change, 100*maxDrop)
		if floor := b * (1 - maxDrop); c < floor {
			fmt.Fprintf(stdout, "FAIL: candidate median %.4f below allowed floor %.4f\n", c, floor)
			failed = true
		}
	}
	for _, e := range base.Workloads {
		if e.GTEPS <= 0 {
			fmt.Fprintf(stderr, "benchcmp: baseline workload %q GTEPS %v is not positive\n", e.Workload, e.GTEPS)
			return 2
		}
		teps := perWL[e.Workload]
		c := median(teps)
		change := (c - e.GTEPS) / e.GTEPS
		fmt.Fprintf(stdout, "%-6s GTEPS: baseline %.4f, candidate median %.4f of %v (%+.1f%%), gate -%.0f%%\n",
			e.Workload, e.GTEPS, c, formatTEPS(teps), 100*change, 100*maxDrop)
		if floor := e.GTEPS * (1 - maxDrop); c < floor {
			fmt.Fprintf(stdout, "FAIL: %s median %.4f below allowed floor %.4f\n", e.Workload, c, floor)
			failed = true
		}
	}
	if base.Setup == nil || base.Setup.Seconds <= 0 {
		fmt.Fprintln(stdout, "setup_seconds: baseline has no setup block; gate skipped (regenerate the baseline to enable it)")
	} else {
		bs := base.Setup.Seconds
		c := median(setup)
		change := (c - bs) / bs
		fmt.Fprintf(stdout, "setup_seconds: baseline %.4f, candidate median %.4f of %v (%+.1f%%), gate +%.0f%%\n",
			bs, c, formatTEPS(setup), 100*change, 100*setupGrow)
		if ceiling := bs * (1 + setupGrow); c > ceiling {
			fmt.Fprintf(stdout, "FAIL: setup_seconds median %.4f above allowed ceiling %.4f\n", c, ceiling)
			failed = true
		}
	}
	if base.Batch == nil || base.Batch.BatchGTEPS <= 0 {
		fmt.Fprintln(stdout, "batch GTEPS: baseline has no batch block; gate skipped (regenerate the baseline with bfsbench -batch-roots to enable it)")
	} else {
		bb := base.Batch.BatchGTEPS
		c := median(batched)
		change := (c - bb) / bb
		fmt.Fprintf(stdout, "batch  GTEPS: baseline %.4f, candidate median %.4f of %v (%+.1f%%), gate -%.0f%%\n",
			bb, c, formatTEPS(batched), 100*change, 100*maxDrop)
		if floor := bb * (1 - maxDrop); c < floor {
			fmt.Fprintf(stdout, "FAIL: batch median %.4f below allowed floor %.4f\n", c, floor)
			failed = true
		}
	}
	if failed {
		return 1
	}
	fmt.Fprintln(stdout, "OK")
	return 0
}

// median of a non-empty slice; the even case averages the middle pair.
func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 0 {
		return (s[mid-1] + s[mid]) / 2
	}
	return s[mid]
}

func formatTEPS(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.4f", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
