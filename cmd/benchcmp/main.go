// Command benchcmp compares two bfsbench JSON reports and fails when the
// candidate's harmonic-mean GTEPS regressed more than the allowed fraction
// below the baseline. CI runs it against the committed BENCH_baseline.json:
//
//	benchcmp -baseline BENCH_baseline.json -candidate BENCH_ci.json -max-drop 0.25
//
// Exit status: 0 within budget, 1 regression, 2 usage or unreadable input.
// Configurations must match (scale, mesh, roots, seed) — a faster machine
// must not sneak a config change past the gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
)

func main() {
	var (
		baseline  = flag.String("baseline", "", "baseline report JSON (required)")
		candidate = flag.String("candidate", "", "candidate report JSON (required)")
		maxDrop   = flag.Float64("max-drop", 0.25, "max allowed fractional drop of harmonic-mean GTEPS")
		skipCfg   = flag.Bool("skip-config-check", false, "compare even when run configurations differ")
	)
	flag.Parse()
	if *baseline == "" || *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -baseline and -candidate are required")
		flag.Usage()
		os.Exit(2)
	}
	if *maxDrop < 0 || *maxDrop >= 1 {
		fmt.Fprintf(os.Stderr, "benchcmp: -max-drop %v out of [0,1)\n", *maxDrop)
		os.Exit(2)
	}

	base, err := report.ReadFile(*baseline)
	if err != nil {
		fatal(err)
	}
	cand, err := report.ReadFile(*candidate)
	if err != nil {
		fatal(err)
	}

	if base.Config != cand.Config && !*skipCfg {
		fmt.Fprintf(os.Stderr, "benchcmp: run configurations differ:\n  baseline:  %+v\n  candidate: %+v\n", base.Config, cand.Config)
		os.Exit(2)
	}

	b := base.Summary.HarmonicMeanGTEPS
	c := cand.Summary.HarmonicMeanGTEPS
	if b <= 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: baseline harmonic-mean GTEPS %v is not positive\n", b)
		os.Exit(2)
	}
	change := (c - b) / b
	fmt.Printf("harmonic-mean GTEPS: baseline %.4f, candidate %.4f (%+.1f%%), gate -%.0f%%\n",
		b, c, 100*change, 100**maxDrop)
	floor := b * (1 - *maxDrop)
	if c < floor {
		fmt.Printf("FAIL: candidate %.4f below allowed floor %.4f\n", c, floor)
		os.Exit(1)
	}
	fmt.Println("OK")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}
