// Command benchcmp compares bfsbench JSON reports and fails when the
// candidate's harmonic-mean GTEPS regressed more than the allowed fraction
// below the baseline. To damp scheduler noise the candidate flag accepts
// several reports (comma-separated and/or repeated); the gate compares the
// MEDIAN of their harmonic means. CI runs it against the committed
// BENCH_baseline.json over three fresh runs:
//
//	benchcmp -baseline BENCH_baseline.json -candidate a.json,b.json,c.json -max-drop 0.15
//
// Exit status: 0 within budget, 1 regression, 2 usage or unreadable input.
// Configurations must match (scale, mesh, roots, seed) — a faster machine
// must not sneak a config change past the gate — and every candidate must
// share one configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/report"
)

// candidateList gathers -candidate values: the flag may repeat, and each
// value may itself hold comma-separated paths.
type candidateList []string

func (c *candidateList) String() string { return strings.Join(*c, ",") }

func (c *candidateList) Set(v string) error {
	for _, p := range strings.Split(v, ",") {
		if p = strings.TrimSpace(p); p != "" {
			*c = append(*c, p)
		}
	}
	return nil
}

func main() {
	var candidates candidateList
	var (
		baseline = flag.String("baseline", "", "baseline report JSON (required)")
		maxDrop  = flag.Float64("max-drop", 0.15, "max allowed fractional drop of median harmonic-mean GTEPS")
		skipCfg  = flag.Bool("skip-config-check", false, "compare even when run configurations differ")
	)
	flag.Var(&candidates, "candidate", "candidate report JSON; repeat or comma-separate for a median-of-N gate (required)")
	flag.Parse()
	if *baseline == "" || len(candidates) == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: -baseline and -candidate are required")
		flag.Usage()
		os.Exit(2)
	}
	if *maxDrop < 0 || *maxDrop >= 1 {
		fmt.Fprintf(os.Stderr, "benchcmp: -max-drop %v out of [0,1)\n", *maxDrop)
		os.Exit(2)
	}

	base, err := report.ReadFile(*baseline)
	if err != nil {
		fatal(err)
	}
	teps := make([]float64, 0, len(candidates))
	for _, path := range candidates {
		cand, err := report.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		if base.Config != cand.Config && !*skipCfg {
			fmt.Fprintf(os.Stderr, "benchcmp: run configurations differ:\n  baseline:  %+v\n  candidate %s: %+v\n", base.Config, path, cand.Config)
			os.Exit(2)
		}
		teps = append(teps, cand.Summary.HarmonicMeanGTEPS)
	}

	b := base.Summary.HarmonicMeanGTEPS
	if b <= 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: baseline harmonic-mean GTEPS %v is not positive\n", b)
		os.Exit(2)
	}
	c := median(teps)
	change := (c - b) / b
	fmt.Printf("harmonic-mean GTEPS: baseline %.4f, candidate median %.4f of %v (%+.1f%%), gate -%.0f%%\n",
		b, c, formatTEPS(teps), 100*change, 100**maxDrop)
	floor := b * (1 - *maxDrop)
	if c < floor {
		fmt.Printf("FAIL: candidate median %.4f below allowed floor %.4f\n", c, floor)
		os.Exit(1)
	}
	fmt.Println("OK")
}

// median of a non-empty slice; the even case averages the middle pair.
func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 0 {
		return (s[mid-1] + s[mid]) / 2
	}
	return s[mid]
}

func formatTEPS(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.4f", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}
