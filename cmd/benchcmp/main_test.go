package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/report"
)

// writeDoc materializes a minimal report document for the gate: a headline
// harmonic mean plus per-workload entries given as name→GTEPS pairs.
func writeDoc(t *testing.T, dir, name string, headline float64, wl map[string]float64) string {
	t.Helper()
	r := &report.Report{
		Schema:        report.Schema,
		SchemaVersion: report.SchemaVersion,
		Config:        report.RunConfig{Scale: 14, Ranks: 4, Roots: 8, Seed: 42},
		Summary:       report.Summary{HarmonicMeanGTEPS: headline},
	}
	// Deterministic entry order so documents are reproducible.
	for _, w := range []string{"bfs", "wcc", "kcore", "sssp"} {
		if g, ok := wl[w]; ok {
			r.Workloads = append(r.Workloads, report.WorkloadEntry{Workload: w, GTEPS: g})
		}
	}
	path := filepath.Join(dir, name)
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func runGate(t *testing.T, baseline string, candidates []string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(baseline, candidates, 0.15, 0.5, false, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// writeSetupDoc is writeDoc plus a setup block with the given setup_seconds.
func writeSetupDoc(t *testing.T, dir, name string, headline, setupSec float64, wl map[string]float64) string {
	t.Helper()
	path := writeDoc(t, dir, name, headline, wl)
	doc, err := report.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	doc.Setup = &report.SetupReport{Seconds: setupSec, PartitionSeconds: setupSec * 0.8, EngineSeconds: setupSec * 0.2}
	if err := doc.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMultiWorkloadGatePasses(t *testing.T) {
	dir := t.TempDir()
	wl := map[string]float64{"bfs": 0.20, "wcc": 0.50, "sssp": 0.10}
	base := writeDoc(t, dir, "base.json", 0.20, wl)
	// Three candidates with jitter; every per-workload median stays within
	// the 15% budget even though single runs dip below it.
	c1 := writeDoc(t, dir, "c1.json", 0.19, map[string]float64{"bfs": 0.19, "wcc": 0.48, "sssp": 0.095})
	c2 := writeDoc(t, dir, "c2.json", 0.15, map[string]float64{"bfs": 0.15, "wcc": 0.30, "sssp": 0.07})
	c3 := writeDoc(t, dir, "c3.json", 0.21, map[string]float64{"bfs": 0.21, "wcc": 0.52, "sssp": 0.11})
	code, out, errOut := runGate(t, base, []string{c1, c2, c3})
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	for _, w := range []string{"bfs", "wcc", "sssp"} {
		if !strings.Contains(out, w+" ") {
			t.Fatalf("output lacks a %s gate line:\n%s", w, out)
		}
	}
	if !strings.Contains(out, "OK") {
		t.Fatalf("output lacks OK:\n%s", out)
	}
}

func TestWorkloadRegressionFailsEvenWhenHeadlineHolds(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "base.json", 0.20, map[string]float64{"bfs": 0.20, "wcc": 0.50})
	// Headline and bfs hold; wcc's median drops 40%.
	cands := []string{
		writeDoc(t, dir, "c1.json", 0.20, map[string]float64{"bfs": 0.20, "wcc": 0.30}),
		writeDoc(t, dir, "c2.json", 0.21, map[string]float64{"bfs": 0.21, "wcc": 0.29}),
		writeDoc(t, dir, "c3.json", 0.19, map[string]float64{"bfs": 0.19, "wcc": 0.31}),
	}
	code, out, _ := runGate(t, base, cands)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL: wcc") {
		t.Fatalf("failure not attributed to wcc:\n%s", out)
	}
}

func TestMissingWorkloadInBaselineIsUsageError(t *testing.T) {
	dir := t.TempDir()
	// Candidate gained a kcore entry the baseline has never seen: the gate
	// must demand a regenerated baseline, not silently skip the workload.
	base := writeDoc(t, dir, "base.json", 0.20, map[string]float64{"bfs": 0.20})
	cand := writeDoc(t, dir, "cand.json", 0.20, map[string]float64{"bfs": 0.20, "kcore": 0.40})
	code, _, errOut := runGate(t, base, []string{cand})
	if code != 2 {
		t.Fatalf("exit %d, want 2\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "kcore") || !strings.Contains(errOut, "missing from the baseline") {
		t.Fatalf("error does not name the unbaselined workload:\n%s", errOut)
	}
}

func TestCandidateMissingBaselineWorkloadIsUsageError(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "base.json", 0.20, map[string]float64{"bfs": 0.20, "sssp": 0.10})
	cand := writeDoc(t, dir, "cand.json", 0.20, map[string]float64{"bfs": 0.20})
	code, _, errOut := runGate(t, base, []string{cand})
	if code != 2 {
		t.Fatalf("exit %d, want 2\n%s", code, errOut)
	}
	if !strings.Contains(errOut, `missing baseline workload "sssp"`) {
		t.Fatalf("error does not name the dropped workload:\n%s", errOut)
	}
}

func TestHeadlineOnlyV1BaselineStillGates(t *testing.T) {
	dir := t.TempDir()
	// A v1-era baseline (no workload entries) gates the headline alone.
	base := writeDoc(t, dir, "base.json", 0.20, nil)
	pass := writeDoc(t, dir, "pass.json", 0.19, nil)
	fail := writeDoc(t, dir, "fail.json", 0.10, nil)
	if code, out, _ := runGate(t, base, []string{pass}); code != 0 {
		t.Fatalf("headline within budget: exit %d\n%s", code, out)
	}
	if code, out, _ := runGate(t, base, []string{fail}); code != 1 {
		t.Fatalf("headline regression: exit %d\n%s", code, out)
	}
}

func TestSetupGateSkippedWithoutBaselineBlock(t *testing.T) {
	dir := t.TempDir()
	// Pre-setup-era baseline: candidates may carry a setup block, but with
	// nothing to compare against the gate must be skipped loudly, not failed.
	base := writeDoc(t, dir, "base.json", 0.20, map[string]float64{"bfs": 0.20})
	cand := writeSetupDoc(t, dir, "cand.json", 0.20, 99.0, map[string]float64{"bfs": 0.20})
	code, out, _ := runGate(t, base, []string{cand})
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "gate skipped") {
		t.Fatalf("skip not announced:\n%s", out)
	}
}

func TestSetupGateUsesMedianAndFailsOnGrowth(t *testing.T) {
	dir := t.TempDir()
	base := writeSetupDoc(t, dir, "base.json", 0.20, 1.0, map[string]float64{"bfs": 0.20})
	// Median 1.2 sits inside the +50% budget even though one run blew it.
	pass := []string{
		writeSetupDoc(t, dir, "p1.json", 0.20, 1.1, map[string]float64{"bfs": 0.20}),
		writeSetupDoc(t, dir, "p2.json", 0.20, 1.2, map[string]float64{"bfs": 0.20}),
		writeSetupDoc(t, dir, "p3.json", 0.20, 2.0, map[string]float64{"bfs": 0.20}),
	}
	if code, out, _ := runGate(t, base, pass); code != 0 {
		t.Fatalf("median within budget: exit %d\n%s", code, out)
	}
	// Median 1.8 exceeds the 1.5 ceiling: setup regression, GTEPS fine.
	fail := []string{
		writeSetupDoc(t, dir, "f1.json", 0.20, 1.7, map[string]float64{"bfs": 0.20}),
		writeSetupDoc(t, dir, "f2.json", 0.20, 1.8, map[string]float64{"bfs": 0.20}),
		writeSetupDoc(t, dir, "f3.json", 0.20, 1.9, map[string]float64{"bfs": 0.20}),
	}
	code, out, _ := runGate(t, base, fail)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL: setup_seconds") {
		t.Fatalf("failure not attributed to setup_seconds:\n%s", out)
	}
}

func TestSetupGateRequiresCandidateBlock(t *testing.T) {
	dir := t.TempDir()
	base := writeSetupDoc(t, dir, "base.json", 0.20, 1.0, map[string]float64{"bfs": 0.20})
	cand := writeDoc(t, dir, "cand.json", 0.20, map[string]float64{"bfs": 0.20})
	code, _, errOut := runGate(t, base, []string{cand})
	if code != 2 {
		t.Fatalf("exit %d, want 2\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "has none") {
		t.Fatalf("error does not explain the missing setup block:\n%s", errOut)
	}
}

func TestCrashLoopGiveUpRejected(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "base.json", 0.20, map[string]float64{"bfs": 0.20})
	cand := writeDoc(t, dir, "cand.json", 0.20, map[string]float64{"bfs": 0.20})
	// A supervised run that needed a crash-loop give-up got its numbers from
	// a relaunched world: the gate must refuse to compare it at all, even
	// though every GTEPS figure is within budget.
	doc, err := report.ReadFile(cand)
	if err != nil {
		t.Fatal(err)
	}
	doc.Resilience.Supervisor = &report.SupervisorResilience{Workers: 3, Spares: 2, Generations: 2, CrashLoopGiveUps: 1}
	if err := doc.WriteFile(cand); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runGate(t, base, []string{cand})
	if code != 2 {
		t.Fatalf("exit %d, want 2\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "crash-loop give-up") {
		t.Fatalf("error does not name the crash loop:\n%s", errOut)
	}

	// A clean supervised run (supervisor block present, zero give-ups) must
	// still pass: the gate rejects abandoned worlds, not supervision itself.
	doc.Resilience.Supervisor.CrashLoopGiveUps = 0
	doc.Resilience.Supervisor.Generations = 1
	if err := doc.WriteFile(cand); err != nil {
		t.Fatal(err)
	}
	if code, out, _ := runGate(t, base, []string{cand}); code != 0 {
		t.Fatalf("clean supervised candidate: exit %d, want 0\n%s", code, out)
	}
}

func TestConfigMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "base.json", 0.20, map[string]float64{"bfs": 0.20})
	cand := writeDoc(t, dir, "cand.json", 0.20, map[string]float64{"bfs": 0.20})
	// Tamper with the candidate's config by rewriting it at another scale.
	doc, err := report.ReadFile(cand)
	if err != nil {
		t.Fatal(err)
	}
	doc.Config.Scale = 15
	if err := doc.WriteFile(cand); err != nil {
		t.Fatal(err)
	}
	if code, _, errOut := runGate(t, base, []string{cand}); code != 2 {
		t.Fatalf("exit %d, want 2\n%s", code, errOut)
	}
}

// writeBatchDoc is writeDoc plus a schema v3 batch block with the given
// batched-sweep GTEPS.
func writeBatchDoc(t *testing.T, dir, name string, headline, batchGTEPS float64, wl map[string]float64) string {
	t.Helper()
	path := writeDoc(t, dir, name, headline, wl)
	doc, err := report.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	doc.Batch = &report.BatchReport{
		Batches: 1, Queries: 8, MaxBatch: 8,
		MeanOccupancy: 6.5, MaxOccupancy: 8, BatchGTEPS: batchGTEPS,
		BatchCollectiveCalls: 180, SoloCollectiveCalls: 1080,
	}
	if err := doc.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBatchGateSkippedWithoutBaselineBlock(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "base.json", 0.20, map[string]float64{"bfs": 0.20})
	cand := writeBatchDoc(t, dir, "c1.json", 0.20, 0.25, map[string]float64{"bfs": 0.20})
	code, out, errOut := runGate(t, base, []string{cand})
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "batch GTEPS: baseline has no batch block; gate skipped") {
		t.Fatalf("missing skip note:\n%s", out)
	}
}

func TestBatchGateRequiresCandidateBlock(t *testing.T) {
	dir := t.TempDir()
	base := writeBatchDoc(t, dir, "base.json", 0.20, 0.25, map[string]float64{"bfs": 0.20})
	cand := writeDoc(t, dir, "c1.json", 0.20, map[string]float64{"bfs": 0.20})
	code, out, errOut := runGate(t, base, []string{cand})
	if code != 2 {
		t.Fatalf("exit %d, want 2 (usage error)\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(errOut, "batch block") || !strings.Contains(errOut, "-batch-roots") {
		t.Fatalf("stderr does not explain the missing batch block:\n%s", errOut)
	}
}

func TestBatchGateUsesMedianAndFailsOnDrop(t *testing.T) {
	dir := t.TempDir()
	base := writeBatchDoc(t, dir, "base.json", 0.20, 0.25, map[string]float64{"bfs": 0.20})
	// Median of {0.24, 0.23, 0.26} = 0.24 holds the 15% budget even though
	// one run alone would not tank it; then a real regression trips it.
	pass := []string{
		writeBatchDoc(t, dir, "p1.json", 0.20, 0.24, map[string]float64{"bfs": 0.20}),
		writeBatchDoc(t, dir, "p2.json", 0.20, 0.23, map[string]float64{"bfs": 0.20}),
		writeBatchDoc(t, dir, "p3.json", 0.20, 0.26, map[string]float64{"bfs": 0.20}),
	}
	code, out, errOut := runGate(t, base, pass)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	fail := []string{
		writeBatchDoc(t, dir, "f1.json", 0.20, 0.10, map[string]float64{"bfs": 0.20}),
		writeBatchDoc(t, dir, "f2.json", 0.20, 0.11, map[string]float64{"bfs": 0.20}),
		writeBatchDoc(t, dir, "f3.json", 0.20, 0.12, map[string]float64{"bfs": 0.20}),
	}
	code, out, _ = runGate(t, base, fail)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL: batch median") {
		t.Fatalf("failure not attributed to the batch gate:\n%s", out)
	}
}

func TestBatchOnlyBaselineStillGates(t *testing.T) {
	dir := t.TempDir()
	// A bfsbench -batch-roots report has no headline and no workload entries;
	// the batch block alone must be enough to gate on.
	base := writeBatchDoc(t, dir, "base.json", 0, 0.25, nil)
	cand := writeBatchDoc(t, dir, "c1.json", 0, 0.24, nil)
	code, out, errOut := runGate(t, base, []string{cand})
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "batch  GTEPS: baseline 0.2500") {
		t.Fatalf("missing batch gate line:\n%s", out)
	}
}
