// Command bfsd is the long-lived traversal daemon: it loads (or generates)
// a graph once, partitions it with the 1.5D degree-aware partitioner, keeps
// the partitioned graph resident, and serves BFS queries over HTTP to many
// concurrent clients. Concurrent queries arriving inside a batching window
// are folded into ONE batched multi-source sweep (one bit-plane per query),
// amortizing every collective, hub sync and kernel launch across the batch.
//
// Usage:
//
//	bfsd -scale 16 -ranks 16 -addr :8080
//	bfsd -input edges.bin -informat bin -ranks 16 -window 5ms -max-batch 16
//	bfsd -scale 18 -ranks 64 -mem-budget 256MiB     # admission from perfmodel
//
// Query it:
//
//	curl -s -X POST localhost:8080/query -d '{"root":42,"op":"distance","target":7}'
//	curl -s localhost:8080/stats      # batch occupancy + latency percentiles
//	curl -s localhost:8080/healthz    # 503 once draining
//
// SIGTERM/SIGINT drains: health flips to 503, queued queries are answered,
// then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	graph500 "repro"
	"repro/internal/bfsd"
	"repro/internal/edgeio"
	"repro/internal/faultinject"
	"repro/internal/perfmodel"
)

func main() {
	var (
		scale     = flag.Int("scale", 14, "graph SCALE: 2^scale vertices, 16*2^scale edges")
		input     = flag.String("input", "", "load edge list from file instead of generating")
		informat  = flag.String("informat", "bin", "input format: text or bin")
		ranks     = flag.Int("ranks", 4, "simulated node count (R x C mesh derived)")
		rows      = flag.Int("rows", 0, "mesh rows (0 = squarest)")
		cols      = flag.Int("cols", 0, "mesh cols (0 = squarest)")
		seed      = flag.Uint64("seed", 42, "generator seed")
		eThresh   = flag.Int64("ethreshold", 0, "E degree threshold (0 = scale default)")
		hThresh   = flag.Int64("hthreshold", 0, "H degree threshold (0 = scale default)")
		segmented = flag.Bool("segmented", false, "enable CG-aware core subgraph segmenting")
		hier      = flag.Bool("hierarchical", false, "forward L2L messages via mesh intersections")
		workers   = flag.Int("rankworkers", 1, "intra-rank kernel workers")
		faults    = flag.String("faults", "", "fault-injection plan (chaos soak), e.g. \"seed=42,delay=0.01\"")
		ckptDir   = flag.String("checkpoint-dir", "", "durable checkpoint store directory")
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		window    = flag.Duration("window", 2*time.Millisecond, "batching window: max wait for the first query of a batch")
		maxBatch  = flag.Int("max-batch", 8, "max queries per batched sweep (clamped by -mem-budget)")
		maxQueued = flag.Int("max-queued", 0, "admission bound: queued queries beyond this get 429 (0 = 4*max-batch)")
		memBudget = flag.String("mem-budget", "", "per-rank memory budget for batch state, e.g. 64MiB (empty = no clamp)")
	)
	flag.Parse()

	var g graph500.Graph
	t0 := time.Now()
	if *input != "" {
		format, err := edgeio.ParseFormat(*informat)
		if err != nil {
			fatal(err)
		}
		n, edges, err := edgeio.ReadFile(*input, format)
		if err != nil {
			fatal(err)
		}
		g = graph500.FromEdges(n, edges)
		fmt.Printf("loaded %s: %d vertices, %d edges in %v\n",
			*input, g.NumVertices, len(g.Edges), time.Since(t0).Round(time.Millisecond))
	} else {
		fmt.Printf("generating SCALE %d graph (%d vertices, %d edges)...\n",
			*scale, int64(1)<<uint(*scale), int64(16)<<uint(*scale))
		g = graph500.Generate(graph500.GenConfig{Scale: *scale, Seed: *seed})
		fmt.Printf("  generated in %v\n", time.Since(t0).Round(time.Millisecond))
	}

	cfg := graph500.Config{
		Ranks:        *ranks,
		Segmented:    *segmented,
		Hierarchical: *hier,
		RankWorkers:  *workers,
	}
	if *rows > 0 && *cols > 0 {
		cfg.Mesh = graph500.Mesh{Rows: *rows, Cols: *cols}
	}
	if *eThresh > 0 && *hThresh > 0 {
		cfg.Thresholds = graph500.Thresholds{E: *eThresh, H: *hThresh}
	}
	if *faults != "" {
		plan, err := faultinject.Parse(*faults)
		if err != nil {
			fatal(err)
		}
		cfg.Faults = plan
		fmt.Printf("fault injection active: %s\n", plan)
	}
	if *ckptDir != "" {
		cfg.CheckpointDir = *ckptDir
	}

	r, err := graph500.New(g, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("partitioned in %v: %d E hubs, %d H hubs over %d ranks — graph resident\n",
		time.Duration(r.Engine.PartitionSeconds*float64(time.Second)).Round(time.Millisecond),
		r.Engine.Part.Hubs.NumE, r.Engine.Part.Hubs.NumH, r.Engine.Opt.Ranks)

	// Admission sizing: clamp the batch width so every in-flight query's
	// bit-plane state fits the per-rank budget, faulty snapshots included.
	if *memBudget != "" {
		budget, err := parseBytes(*memBudget)
		if err != nil {
			fatal(err)
		}
		k := int64(r.Engine.Part.Hubs.K())
		per := r.Engine.Part.Layout.PerRank
		fit := perfmodel.MaxBatchQueries(budget, k, per, cfg.Faults != nil)
		if fit == 0 {
			fatal(fmt.Errorf("budget %s cannot fit even one batched query (%d bytes/query per rank)",
				*memBudget, perfmodel.BatchQueryBytes(k, per, cfg.Faults != nil)))
		}
		if fit < *maxBatch {
			fmt.Printf("admission: -mem-budget %s clamps max batch %d -> %d (%d bytes/query per rank)\n",
				*memBudget, *maxBatch, fit, perfmodel.BatchQueryBytes(k, per, cfg.Faults != nil))
			*maxBatch = fit
		}
	}

	b := bfsd.NewBatcher(r, bfsd.Config{
		Window:    *window,
		MaxBatch:  *maxBatch,
		MaxQueued: *maxQueued,
	})
	srv := bfsd.NewServer(b, g.NumVertices)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// SIGTERM/SIGINT drain: stop admitting, answer the queue, close the
	// listener. Load balancers see /healthz flip to 503 first.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-stop
		fmt.Printf("\n%v: draining (queued queries will be answered)...\n", sig)
		srv.SetDraining()
		b.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()

	fmt.Printf("serving on %s (window %v, max batch %d)\n", *addr, *window, *maxBatch)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	st := b.Snapshot()
	fmt.Printf("drained: %d queries over %d batched sweeps (max width %d, max occupancy %.2f)\n",
		st.Queries, st.Batches, st.MaxBatch, st.MaxOccupancy)
}

// parseBytes reads sizes like "64MiB", "256kb", "1g" or raw byte counts.
func parseBytes(s string) (int64, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"gib", 1 << 30}, {"gb", 1 << 30}, {"g", 1 << 30},
		{"mib", 1 << 20}, {"mb", 1 << 20}, {"m", 1 << 20},
		{"kib", 1 << 10}, {"kb", 1 << 10}, {"k", 1 << 10},
		{"b", 1},
	} {
		if strings.HasSuffix(t, u.suffix) {
			t, mult = strings.TrimSuffix(t, u.suffix), u.mult
			break
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfsd:", err)
	os.Exit(1)
}
