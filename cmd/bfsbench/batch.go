package main

import (
	"fmt"
	"time"

	graph500 "repro"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/validate"
)

// runBatchBench is the -batch-roots mode: an offline A/B of K solo BFS runs
// against ONE batched multi-source sweep over the same K roots, on the same
// resident partition. Each arm runs on its own engine with its own tracer so
// the collective-call counts are clean; the report's batch block carries the
// amortization evidence (trace-span counted collective calls per arm),
// per-query latencies and the sweep's occupancy.
func runBatchBench(r *graph500.Runner, k int, seed uint64, out outputs) {
	roots, err := r.SampleRoots(k, seed+1)
	if err != nil {
		fatal(err)
	}

	arm := func() (*core.Engine, *trace.Tracer) {
		opt := r.Engine.Opt
		opt.Trace = trace.New()
		eng, err := core.NewEngineFromPartition(r.Engine.Part, opt)
		if err != nil {
			fatal(err)
		}
		return eng, opt.Trace
	}
	countCollectives := func(tr *trace.Tracer) int64 {
		var n int64
		for _, sp := range tr.Spans() {
			if sp.Kind == trace.KindCollective {
				n++
			}
		}
		return n
	}

	// Solo arm: K independent sweeps.
	soloEng, soloTr := arm()
	soloParents := make([][]int64, k)
	var soloWall time.Duration
	var soloTraversed int64
	for i, root := range roots {
		res, err := soloEng.Run(root)
		if err != nil {
			fatal(fmt.Errorf("solo root %d: %w", root, err))
		}
		soloParents[i] = res.Parent
		soloWall += res.Time
		soloTraversed += res.TraversedEdges
	}
	soloCalls := countCollectives(soloTr)

	// Batch arm: ONE multi-source sweep over all K roots.
	batchEng, batchTr := arm()
	batch, err := batchEng.RunBatch(roots)
	if err != nil {
		fatal(fmt.Errorf("batch: %w", err))
	}
	batchCalls := countCollectives(batchTr)

	// The differential oracle, inline: the batch must be bit-identical to
	// the solo runs and pass spec validation.
	g := r.Graph()
	for i, q := range batch.Queries {
		for v := range q.Parent {
			if q.Parent[v] != soloParents[i][v] {
				fatal(fmt.Errorf("root %d: batched parent[%d] = %d, solo %d",
					roots[i], v, q.Parent[v], soloParents[i][v]))
			}
		}
		if _, err := validate.BFS(g.NumVertices, g.Edges, roots[i], q.Parent); err != nil {
			fatal(fmt.Errorf("root %d: %w", roots[i], err))
		}
	}

	fmt.Printf("\nbatched multi-source BFS (%d roots, one sweep):\n", k)
	fmt.Printf("  batch:  %d collective calls, %d iterations, %v wall, %.4f GTEPS\n",
		batchCalls, batch.Iterations, batch.Time.Round(time.Microsecond), batch.GTEPS())
	fmt.Printf("  solo:   %d collective calls, %v wall total (%d runs)\n",
		soloCalls, soloWall.Round(time.Microsecond), k)
	fmt.Printf("  amortization: %.1f%% of solo collective calls, occupancy %.2f mean\n",
		100*float64(batchCalls)/float64(soloCalls), batch.AvgOccupancy)
	if batchCalls >= soloCalls {
		fatal(fmt.Errorf("batch issued %d collective calls, solo %d: no amortization", batchCalls, soloCalls))
	}

	if out.json != "" {
		// Every query in the one-sweep arm has the sweep's wall time as its
		// answer latency (they all ride the same sweep).
		lat := make([]float64, k)
		for i := range lat {
			lat[i] = batch.Time.Seconds()
		}
		br := &report.BatchReport{
			Batches:              1,
			Queries:              int64(k),
			MaxBatch:             k,
			MeanOccupancy:        batch.AvgOccupancy,
			MaxOccupancy:         batch.AvgOccupancy,
			BatchGTEPS:           batch.GTEPS(),
			BatchCollectiveCalls: batchCalls,
			SoloCollectiveCalls:  soloCalls,
		}
		br.SetLatencies(lat)
		cfgReport := out.cfgReport
		cfgReport.BatchRoots = k
		in := report.Inputs{
			Config:     cfgReport,
			Batch:      br,
			Traversed:  batch.TraversedEdges(),
			Iterations: int64(batch.Iterations),
			Recorder:   batch.Recorder,
		}
		if err := report.Build(in).WriteFile(out.json); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote batch benchmark report to %s\n", out.json)
	}
}
