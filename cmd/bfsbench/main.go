// Command bfsbench is the Graph 500 style end-to-end runner: generate (or
// load) an R-MAT graph, partition it with 3-level degree-aware 1.5D
// partitioning over the requested rank mesh, run the selected workloads (BFS
// from sampled roots, plus WCC, k-core and SSSP on the same fast path),
// validate the results, and report harmonic-mean GTEPS plus the time
// breakdowns of the paper's evaluation.
//
// Usage:
//
//	bfsbench -scale 18 -ranks 16 -roots 16
//	bfsbench -scale 20 -ranks 64 -ethreshold 4096 -hthreshold 256 -segmented
//	bfsbench -input edges.bin -informat bin -ranks 16
//	bfsbench -scale 16 -workload bfs,wcc,kcore,sssp -json bench.json
//	bfsbench -scale 16 -workload kcore -kcore-k 4
//	bfsbench -scale 16 -faults "seed=42,delay=0.01,fail=0.001" -deadline 5ms
//	bfsbench -scale 14 -ranks 4 -json bench.json -trace spans.jsonl -trace-chrome trace.json
//
// Multi-process mode (one process per supernode, framed socket
// collectives between them — see DESIGN.md §12): start one bfsbench per
// process, identical flags except -listen, with -join listing every
// process's address in process order:
//
//	bfsbench -scale 16 -ranks 4 -ranks-per-proc 2 -checkpoint-dir /shared/ckpt \
//	    -listen unix:/tmp/g0.sock -join unix:/tmp/g0.sock,unix:/tmp/g1.sock
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/comm"
	"repro/internal/edgeio"
	"repro/internal/faultinject"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wire"
)

func main() {
	var (
		scale      = flag.Int("scale", 16, "graph SCALE: 2^scale vertices, 16*2^scale edges")
		input      = flag.String("input", "", "load edge list from file instead of generating")
		informat   = flag.String("informat", "bin", "input format: text or bin")
		ranks      = flag.Int("ranks", 16, "simulated node count (R x C mesh derived)")
		rows       = flag.Int("rows", 0, "mesh rows (0 = squarest)")
		cols       = flag.Int("cols", 0, "mesh cols (0 = squarest)")
		roots      = flag.Int("roots", 16, "number of sampled roots (Graph 500 uses 64)")
		batchRoots = flag.Int("batch-roots", 0, "offline batched-BFS mode: run ONE multi-source sweep over this many roots and A/B its collective calls against solo runs (bfs only)")
		seed       = flag.Uint64("seed", 42, "generator seed")
		kernel     = flag.String("kernel", "bfs", "kernel: bfs or sssp (legacy alias of -workload)")
		workload   = flag.String("workload", "", "comma-separated workloads to run: bfs, wcc, kcore, sssp (default: the -kernel value)")
		kcoreK     = flag.Int64("kcore-k", 2, "peeling threshold for the kcore workload")
		eThresh    = flag.Int64("ethreshold", 0, "E degree threshold (0 = scale default)")
		hThresh    = flag.Int64("hthreshold", 0, "H degree threshold (0 = scale default)")
		segmented  = flag.Bool("segmented", false, "enable CG-aware core subgraph segmenting")
		segAdapt   = flag.Bool("seg-adaptive", false, "pick flat vs segmented core-subgraph pull per iteration from measured kernel durations (overrides -segmented)")
		hier       = flag.Bool("hierarchical", false, "forward L2L messages via mesh intersections")
		sparse     = flag.String("sparse", "auto", "sparse tail collective policy: auto, off or always")
		workers    = flag.Int("rankworkers", 1, "intra-rank kernel workers (edge-aware vertex cut)")
		breakdown  = flag.Bool("breakdown", true, "print per-subgraph time breakdown (bfs only)")
		official   = flag.Bool("official", false, "print the Graph 500 official statistics block (bfs only)")
		faults     = flag.String("faults", "", "fault-injection plan, e.g. \"seed=42,delay=0.01,fail=0.001\" or \"kill@rank=3,iter=2\" (bfs only)")
		deadline   = flag.Duration("deadline", 0, "per-collective deadline under fault injection (0 = off)")
		retries    = flag.Int("maxretries", 0, "max consecutive retries of a failed iteration (0 = default 4)")
		ckptDir    = flag.String("checkpoint-dir", "", "durable checkpoint store directory (empty = checkpointing off)")
		ckptEvery  = flag.Int("checkpoint-every", 1, "iterations between traversal checkpoints")
		recovery   = flag.String("recovery", "shrink", "world rebuild after a fail-stop: shrink or restore")
		rpp        = flag.Int("ranks-per-proc", 0, "hybrid mode: ranks this process hosts in a -join world (0 = ranks/processes)")
		listen     = flag.String("listen", "", "this process's socket address, unix:PATH or tcp:HOST:PORT (requires -join)")
		join       = flag.String("join", "", "comma-separated addresses of every process in the world, in process order (must contain -listen)")
		secret     = flag.String("secret", "", "shared world secret authenticating the socket handshake (or BFS_WORLD_SECRET; empty = unauthenticated)")
		jsonOut    = flag.String("json", "", "write the machine-readable benchmark report (JSON) to this file (bfs only)")
		traceOut   = flag.String("trace", "", "record per-iteration spans and write the merged timeline (JSONL) to this file (bfs only)")
		chromeOut  = flag.String("trace-chrome", "", "record spans and write a Chrome trace_event file for chrome://tracing (bfs only)")
	)
	flag.Parse()

	if *secret == "" {
		*secret = os.Getenv("BFS_WORLD_SECRET")
	}
	dist, err := joinWorld(*listen, *join, *ranks, *rpp, *secret)
	if err != nil {
		fatal(err)
	}
	if dist != nil {
		defer dist.group.Close()
		if dist.group.Proc() != 0 {
			// Follower processes run the identical SPMD schedule but stay
			// quiet: the leader owns the human output and every artifact.
			null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
			if err != nil {
				fatal(err)
			}
			os.Stdout = null
			*jsonOut, *traceOut, *chromeOut = "", "", ""
		}
		fmt.Printf("joined socket world: process %d of %d, %d ranks each\n",
			dist.group.Proc(), dist.procs, dist.rpp)
	}

	var g graph500.Graph
	t0 := time.Now()
	if *input != "" {
		format, err := edgeio.ParseFormat(*informat)
		if err != nil {
			fatal(err)
		}
		n, edges, err := edgeio.ReadFile(*input, format)
		if err != nil {
			fatal(err)
		}
		g = graph500.FromEdges(n, edges)
		fmt.Printf("loaded %s: %d vertices, %d edges in %v\n",
			*input, g.NumVertices, len(g.Edges), time.Since(t0).Round(time.Millisecond))
	} else {
		fmt.Printf("generating SCALE %d graph (%d vertices, %d edges)...\n",
			*scale, int64(1)<<uint(*scale), int64(16)<<uint(*scale))
		g = graph500.Generate(graph500.GenConfig{Scale: *scale, Seed: *seed})
		fmt.Printf("  generated in %v\n", time.Since(t0).Round(time.Millisecond))
	}
	genSeconds := time.Since(t0).Seconds()

	cfg := graph500.Config{
		Ranks:           *ranks,
		Segmented:       *segmented,
		SegmentAdaptive: *segAdapt,
		Hierarchical:    *hier,
		RankWorkers:     *workers,
	}
	if *rows > 0 && *cols > 0 {
		cfg.Mesh = graph500.Mesh{Rows: *rows, Cols: *cols}
	}
	switch *sparse {
	case "auto":
		cfg.SparseTail = graph500.SparseAuto
	case "off":
		cfg.SparseTail = graph500.SparseOff
	case "always":
		cfg.SparseTail = graph500.SparseAlways
	default:
		fmt.Fprintf(os.Stderr, "unknown -sparse %q (want auto, off or always)\n", *sparse)
		os.Exit(2)
	}
	if *eThresh > 0 && *hThresh > 0 {
		cfg.Thresholds = graph500.Thresholds{E: *eThresh, H: *hThresh}
	}
	if *faults != "" {
		plan, err := faultinject.Parse(*faults)
		if err != nil {
			fatal(err)
		}
		cfg.Faults = plan
		cfg.CollectiveDeadline = *deadline
		cfg.MaxRetries = *retries
		fmt.Printf("fault injection active: %s\n", plan)
	}
	if *ckptDir != "" {
		cfg.CheckpointDir = *ckptDir
		cfg.CheckpointEvery = *ckptEvery
		fmt.Printf("checkpointing to %s every %d iteration(s)\n", *ckptDir, *ckptEvery)
	}
	switch *recovery {
	case "shrink":
		cfg.Recovery = graph500.ShrinkRecovery
	case "restore":
		cfg.Recovery = graph500.RestoreRecovery
	default:
		fmt.Fprintf(os.Stderr, "unknown -recovery %q (want shrink or restore)\n", *recovery)
		os.Exit(2)
	}
	if dist != nil {
		cfg.Dist = dist.cfg
	}

	out := outputs{json: *jsonOut, trace: *traceOut, chrome: *chromeOut}
	if out.trace != "" || out.chrome != "" {
		cfg.Trace = trace.New()
	}
	out.cfgReport = report.RunConfig{
		Scale:        *scale,
		EdgeFactor:   16,
		NumVertices:  g.NumVertices,
		NumEdges:     int64(len(g.Edges)),
		Roots:        *roots,
		Seed:         *seed,
		Direction:    "sub-iteration",
		Segmented:    *segmented,
		SegAdaptive:  *segAdapt,
		Hierarchical: *hier,
		RankWorkers:  *workers,
		Faults:       *faults,
		Checkpoints:  *ckptDir != "",
	}
	if *sparse != "auto" {
		// Only a non-default policy marks the report: keeps config-equality
		// checks against pre-sparse baselines working.
		out.cfgReport.Sparse = *sparse
	}
	if *input != "" {
		out.cfgReport.Scale, out.cfgReport.EdgeFactor = 0, 0
	}

	// -workload supersedes -kernel; the legacy flag maps onto the one-element
	// workload lists it used to select.
	list := *workload
	if list == "" {
		switch *kernel {
		case "bfs", "sssp":
			list = *kernel
		default:
			fmt.Fprintf(os.Stderr, "unknown kernel %q (want bfs or sssp)\n", *kernel)
			os.Exit(2)
		}
	}
	names, err := graph500.ParseWorkloads(list)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	out.cfgReport.Workload = strings.Join(names, ",")

	r, err := graph500.New(g, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("partitioned in %v: %d E hubs, %d H hubs over %d ranks\n",
		time.Duration(r.Engine.PartitionSeconds*float64(time.Second)).Round(time.Millisecond),
		r.Engine.Part.Hubs.NumE, r.Engine.Part.Hubs.NumH, r.Engine.Opt.Ranks)
	ps := r.Engine.Part.Stats
	fmt.Printf("  setup %.3fs: degrees %.3fs, hubdir %.3fs, distribute %.3fs, assemble %.3fs (sort %.3fs), engine %.3fs\n",
		r.Engine.PartitionSeconds+r.Engine.ConstructSeconds,
		ps.DegreesSeconds, ps.HubDirSeconds, ps.DistributeSeconds,
		ps.AssembleSeconds, ps.SortSeconds, r.Engine.ConstructSeconds)
	out.cfgReport.Ranks = r.Engine.Opt.Ranks
	out.cfgReport.MeshRows = r.Engine.Opt.Mesh.Rows
	out.cfgReport.MeshCols = r.Engine.Opt.Mesh.Cols

	if *batchRoots > 0 {
		if dist != nil {
			fatal(fmt.Errorf("-batch-roots runs the in-process backend only"))
		}
		runBatchBench(r, *batchRoots, *seed, out)
		writeTraces(cfg.Trace, out)
		return
	}

	var entries []report.WorkloadEntry
	var sum *graph500.BenchmarkSummary
	for _, name := range names {
		if name == "bfs" {
			sum = runBFS(r, cfg, *roots, *seed, *breakdown, *official, time.Since(t0))
			if sum == nil { // -official printed its block and owns the output
				return
			}
			entries = append(entries, sum.WorkloadEntry())
			continue
		}
		t2 := time.Now()
		entry, err := r.BenchWorkload(name, *kcoreK, *seed)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("\n%s on the fast path (%v):\n", name, time.Since(t2).Round(time.Millisecond))
		switch name {
		case "wcc":
			fmt.Printf("  %d components in %d label rounds\n", entry.Components, entry.Iterations)
		case "kcore":
			fmt.Printf("  %d-core holds %d vertices after %d peel rounds\n", entry.K, entry.CoreSize, entry.Iterations)
		case "sssp":
			fmt.Printf("  root %d: %d relaxations over %d rounds (validated against optimality conditions)\n",
				entry.Root, entry.Relaxations, entry.Iterations)
		}
		fmt.Printf("  %.4f GTEPS (edges touched / second), %d collective bytes\n", entry.GTEPS, entry.CommBytes)
		entries = append(entries, entry)
	}

	if dist != nil {
		ws := dist.group.WireStats()
		fmt.Printf("\nwire transport (process %d of %d):\n", dist.group.Proc(), dist.procs)
		fmt.Printf("  heartbeats:  %d sent, %d received\n", ws.HeartbeatsSent, ws.HeartbeatsRecv)
		fmt.Printf("  reconnects:  %d  (%d frames resent)\n", ws.Reconnects, ws.FramesResent)
		fmt.Printf("  peers lost:  %d\n", ws.PeersLost)
		if ws.AuthRejects > 0 || ws.HandshakeTimeouts > 0 {
			fmt.Printf("  handshakes:  %d auth rejects, %d deadline drops\n",
				ws.AuthRejects, ws.HandshakeTimeouts)
		}
		fmt.Printf("  traffic:     %d bytes sent, %d bytes received\n", ws.BytesSent, ws.BytesRecv)
		if dead := dist.group.DeadProcs(); len(dead) > 0 {
			fmt.Printf("  dead procs:  %v\n", dead)
		}
	}

	if out.json != "" {
		in := report.Inputs{Config: out.cfgReport, Workloads: entries,
			Setup: setupReport(genSeconds, r, cfg.Trace)}
		if dist != nil {
			ws := dist.group.WireStats()
			in.Wire = &report.WireResilience{
				Procs:             dist.procs,
				RanksPerProc:      dist.rpp,
				HeartbeatsSent:    ws.HeartbeatsSent,
				HeartbeatsRecv:    ws.HeartbeatsRecv,
				Reconnects:        ws.Reconnects,
				PeersLost:         ws.PeersLost,
				FramesResent:      ws.FramesResent,
				BytesSent:         ws.BytesSent,
				BytesRecv:         ws.BytesRecv,
				AuthRejects:       ws.AuthRejects,
				HandshakeTimeouts: ws.HandshakeTimeouts,
			}
		}
		if sum != nil {
			in.HarmonicTEPS = sum.HarmonicTEPS
			in.MeanTEPS = sum.MeanTEPS
			in.MinTEPS = sum.MinTEPS
			in.MaxTEPS = sum.MaxTEPS
			in.MeanSeconds = sum.MeanSeconds
			in.Traversed = sum.TotalTraversed
			in.Iterations = sum.Iterations
			in.Recorder = &sum.Recorder
			in.Directions = sum.Directions
			in.Faults = sum.Faults
			in.Retries = sum.Retries
			in.RecoveryWall = sum.RecoveryTime
			in.Recovery = sum.Recovery
		}
		if err := report.Build(in).WriteFile(out.json); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote benchmark report to %s\n", out.json)
	}
	writeTraces(cfg.Trace, out)
}

// distWorld is the socket world this process joined: the comm group plus
// the hybrid split it was derived from.
type distWorld struct {
	group *comm.Group
	cfg   *comm.DistConfig
	procs int
	rpp   int
}

// joinWorld binds this process into the multi-process socket world named by
// -listen/-join, or returns nil when both are empty (the in-process
// backend). Every process of the world runs the identical bfsbench command
// line except for -listen; the process index is the position of -listen in
// the -join list, and process p hosts ranks [p*rpp, (p+1)*rpp).
func joinWorld(listen, join string, ranks, rpp int, secret string) (*distWorld, error) {
	if listen == "" && join == "" {
		if rpp != 0 {
			return nil, fmt.Errorf("-ranks-per-proc needs a socket world (-listen and -join)")
		}
		return nil, nil
	}
	if listen == "" || join == "" {
		return nil, fmt.Errorf("-listen and -join must be set together")
	}
	addrs := strings.Split(join, ",")
	proc := -1
	for i, a := range addrs {
		if a == listen {
			proc = i
			break
		}
	}
	if proc < 0 {
		return nil, fmt.Errorf("-listen %s does not appear in -join %s", listen, join)
	}
	procs := len(addrs)
	if rpp == 0 {
		if ranks%procs != 0 {
			return nil, fmt.Errorf("%d ranks do not divide over %d processes; set -ranks-per-proc", ranks, procs)
		}
		rpp = ranks / procs
	}
	if (ranks+rpp-1)/rpp != procs {
		return nil, fmt.Errorf("%d ranks at %d per process need %d processes, -join names %d",
			ranks, rpp, (ranks+rpp-1)/rpp, procs)
	}
	g, err := comm.NewGroup(wire.Config{Proc: proc, Addrs: addrs, Secret: secret})
	if err != nil {
		return nil, err
	}
	return &distWorld{
		group: g,
		cfg:   &comm.DistConfig{Group: g, ProcOf: comm.ContiguousProcOf(ranks, rpp)},
		procs: procs,
		rpp:   rpp,
	}, nil
}

// outputs collects the machine-readable emission targets.
type outputs struct {
	json      string
	trace     string
	chrome    string
	cfgReport report.RunConfig
}

// runBFS benchmarks BFS on the shared runner and returns the summary for the
// report, or nil when -official printed the spec's statistics block instead.
func runBFS(r *graph500.Runner, cfg graph500.Config, roots int, seed uint64, breakdown, official bool, setupTime time.Duration) *graph500.BenchmarkSummary {
	if official {
		st, err := r.OfficialRun(roots, seed+1, setupTime)
		if err != nil {
			fatal(err)
		}
		fmt.Print(st)
		return nil
	}

	sum, err := r.Benchmark(roots, seed+1)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%d validated BFS runs:\n", len(sum.Roots))
	fmt.Printf("  harmonic mean: %10.4f GTEPS   (the Graph 500 statistic)\n", sum.GTEPS())
	fmt.Printf("  mean:          %10.4f GTEPS\n", sum.MeanTEPS/1e9)
	fmt.Printf("  min/max:       %10.4f / %.4f GTEPS\n", sum.MinTEPS/1e9, sum.MaxTEPS/1e9)
	fmt.Printf("  mean time:     %10.2f ms per traversal\n", sum.MeanSeconds*1e3)

	if breakdown {
		res, err := r.Run(sum.Roots[0])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\ntime breakdown (root %d, %d iterations):\n", sum.Roots[0], res.Iterations)
		share := res.Recorder.PhaseShare()
		for p := stats.Phase(0); p < stats.NumPhases; p++ {
			fmt.Printf("  %-7s %6.2f%%  (%d edge touches)\n", p, 100*share[p], res.Recorder.EdgesTouched[p])
		}
		if cfg.Faults != nil {
			fmt.Printf("\nresilience (all %d runs):\n", len(sum.Roots))
			fmt.Printf("  injected faults:  %d  (%d delays, %d stalls, %d corruptions, %d failures, %d kills)\n",
				sum.Faults.Injected(), sum.Faults.Delays, sum.Faults.Stalls,
				sum.Faults.Corruptions, sum.Faults.Failures, sum.Faults.Kills)
			fmt.Printf("  collective errors:%d across ranks\n", sum.Faults.Errors)
			fmt.Printf("  iteration retries:%d\n", sum.Retries)
		}
		if rec := sum.Recovery; cfg.CheckpointDir != "" || rec.Epochs > 0 {
			fmt.Printf("\nfail-stop recovery (all %d runs, mode %v):\n", len(sum.Roots), cfg.Recovery)
			fmt.Printf("  world epochs:     %d  (%d ranks lost)\n", rec.Epochs, rec.RanksLost)
			fmt.Printf("  replayed:         %d iterations, %d bytes restored (last resume@%d)\n",
				rec.IterationsReplayed, rec.BytesRestored, rec.LastResumeIter)
			fmt.Printf("  recovery time:    %v (rebuild + replay)\n", rec.RecoveryTime.Round(time.Microsecond))
			fmt.Printf("  checkpoints:      %d segments, %d bytes committed (%d dropped, %d errors)\n",
				rec.CheckpointSegments, rec.CheckpointBytes, rec.CheckpointDropped, rec.CheckpointErrors)
		}
	}
	return sum
}

// setupReport assembles the report's setup block: the wall time paid before
// the first traversal edge, split into graph generation (harness cost, not
// gated), partitioning with the partitioner's per-stage and sort breakdown,
// and engine construction. The gated Seconds is partition + engine.
func setupReport(genSeconds float64, r *graph500.Runner, tr *trace.Tracer) *report.SetupReport {
	st := r.Engine.Part.Stats
	s := &report.SetupReport{
		Seconds:           r.Engine.PartitionSeconds + r.Engine.ConstructSeconds,
		GenerateSeconds:   genSeconds,
		PartitionSeconds:  r.Engine.PartitionSeconds,
		DegreesSeconds:    st.DegreesSeconds,
		HubDirSeconds:     st.HubDirSeconds,
		DistributeSeconds: st.DistributeSeconds,
		AssembleSeconds:   st.AssembleSeconds,
		SortSeconds:       st.SortSeconds,
		EngineSeconds:     r.Engine.ConstructSeconds,
	}
	if tr != nil {
		s.FirstKernelGapSeconds = firstKernelGap(tr.Spans())
	}
	return s
}

// firstKernelGap measures the first run's bootstrap cost from the trace: the
// gap between its run_start event and the first kernel span that follows.
func firstKernelGap(spans []trace.Span) float64 {
	runStart := int64(-1)
	for _, sp := range spans {
		if runStart < 0 {
			if sp.Kind == trace.KindEvent && sp.Name == "run_start" {
				runStart = sp.Start
			}
			continue
		}
		if sp.Kind == trace.KindKernel && sp.Start >= runStart {
			return float64(sp.Start-runStart) / 1e9
		}
	}
	return 0
}

// writeTraces dumps the recorded span timeline in the requested formats.
// Called after the runs complete, when every recording goroutine has exited.
func writeTraces(tr *trace.Tracer, out outputs) {
	if tr == nil {
		return
	}
	write := func(path string, emit func(*os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := emit(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote trace to %s\n", path)
	}
	if out.trace != "" {
		write(out.trace, func(f *os.File) error { return tr.WriteJSONL(f) })
	}
	if out.chrome != "" {
		write(out.chrome, func(f *os.File) error { return tr.WriteChrome(f) })
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfsbench:", err)
	os.Exit(1)
}
