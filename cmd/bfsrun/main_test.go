package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/report"
)

// TestMain doubles as the worker entry point: the supervisor under test
// re-executes this test binary with BFSRUN_WORKER=1, which must behave
// exactly like the installed bfsrun worker.
func TestMain(m *testing.M) {
	if os.Getenv(envWorker) == "1" {
		os.Exit(workerMain())
	}
	os.Exit(m.Run())
}

// runWorld drives a full supervised world in-process (workers are real child
// processes) and returns the chosen parents artifact.
func runWorld(t *testing.T, dir string, extra ...string) []byte {
	t.Helper()
	args := append([]string{
		"-procs", "3", "-spares", "2",
		"-scale", "10", "-ranks-per-proc", "2", "-roots", "2", "-seed", "42",
		"-peer-dead", "1s",
		"-checkpoint-dir", filepath.Join(dir, "ckpt"),
		"-out", filepath.Join(dir, "out"),
		"-sock-dir", filepath.Join(dir, "sock"),
	}, extra...)
	if code := parentMain(args); code != 0 {
		t.Fatalf("bfsrun %v = exit %d", args, code)
	}
	// The chosen artifact is the lowest-numbered complete worker's — worker 0
	// fault-free, but a spare's when the storm killed worker 0 itself. Every
	// complete worker writes identical bytes, so the lexical minimum is it.
	paths, err := filepath.Glob(filepath.Join(dir, "out", "parents-w*.bin"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("parents artifact: %v (found %v)", err, paths)
	}
	sort.Strings(paths)
	b, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatalf("parents artifact: %v", err)
	}
	return b
}

// TestBFSRunKillStormBitIdentical is the chaos acceptance test: the fault
// plan SIGKILLs each of the three rank-hosting workers once (iterations 1, 2
// and 3 — a rolling storm with two corpses in flight at once), the spares
// adopt the first two victims' ranks from the shared checkpoint store, the
// third victim's ranks fall back onto a live adopter, the restarted
// processes meet the sealed handshake verdict (or the orphan gate) and park —
// and the retired world's parent arrays are bit-identical to a fault-free
// world's.
func TestBFSRunKillStormBitIdentical(t *testing.T) {
	refDir, stormDir := t.TempDir(), t.TempDir()
	ref := runWorld(t, refDir, "-json", filepath.Join(refDir, "run.json"))
	storm := runWorld(t, stormDir,
		"-fault-plan", "sigkill@proc=0,iter=3,sigkill@proc=1,iter=1,sigkill@proc=2,iter=2",
		"-json", filepath.Join(stormDir, "run.json"))
	if !bytes.Equal(ref, storm) {
		t.Fatalf("parents diverged under the SIGKILL storm: %d vs %d bytes", len(ref), len(storm))
	}

	refRep := readReport(t, filepath.Join(refDir, "run.json"))
	if s := refRep.Resilience.Supervisor; s == nil ||
		s.Spawns != 5 || s.Restarts != 0 || s.Generations != 1 {
		t.Fatalf("fault-free supervisor block %+v", refRep.Resilience.Supervisor)
	}
	if w := refRep.Resilience.Wire; w == nil || w.AuthRejects != 0 {
		t.Fatalf("fault-free wire block %+v", refRep.Resilience.Wire)
	}

	sr := readReport(t, filepath.Join(stormDir, "run.json")).Resilience.Supervisor
	if sr == nil {
		t.Fatal("storm report lost the supervisor block")
	}
	// Parked is not asserted: a restarted worker parks on the sealed verdict
	// (world alive) or the orphan gate (world already gone), but if its exec
	// raced the supervisor's drain reap it may be counted Drained instead —
	// either way it never rejoins, which is what Crashes/Restarts prove.
	if sr.Crashes < 3 || sr.Restarts < 1 {
		t.Fatalf("storm supervisor block %+v, want 3 crashes and a restart", sr)
	}
	if sr.CrashLoopGiveUps != 0 || sr.Generations != 1 {
		t.Fatalf("storm world needed relaunching: %+v", sr)
	}
}

// TestBFSRunDrainThenResume drains the world mid-run (the -drain-after soak
// hook stands in for SIGTERM, which would stop the test process itself);
// workers commit a checkpoint and exit 5. Rerunning against the same
// checkpoint and artifact directories completes the traversal with parents
// bit-identical to an undisturbed world.
func TestBFSRunDrainThenResume(t *testing.T) {
	refDir, dir := t.TempDir(), t.TempDir()
	ref := runWorld(t, refDir)

	args := []string{
		"-procs", "3", "-spares", "2",
		"-scale", "10", "-ranks-per-proc", "2", "-roots", "2", "-seed", "42",
		"-peer-dead", "1s",
		"-checkpoint-dir", filepath.Join(dir, "ckpt"),
		"-out", filepath.Join(dir, "out"),
		"-sock-dir", filepath.Join(dir, "sock"),
	}
	if code := parentMain(append(args, "-drain-after", "300ms")); code != 0 {
		t.Fatalf("drained run = exit %d", code)
	}
	resumed := runWorld(t, dir)
	if !bytes.Equal(ref, resumed) {
		t.Fatalf("parents diverged across drain + resume: %d vs %d bytes", len(ref), len(resumed))
	}
}

// TestBFSRunWrongSecretExitsAuth spawns two workers whose world secrets
// disagree: the handshake must fail with the typed auth verdict (exit 4)
// before either joins, with no retry loop.
func TestBFSRunWrongSecretExitsAuth(t *testing.T) {
	dir := t.TempDir()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrs := "unix:" + filepath.Join(dir, "w0.sock") + ",unix:" + filepath.Join(dir, "w1.sock")
	spawn := func(proc int, secret string) *exec.Cmd {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			envWorker+"=1",
			envProc+"="+strconv.Itoa(proc),
			envAddrs+"="+addrs,
			envSecret+"="+secret,
			envScale+"=8", envSeed+"=42", envRanks+"=4", envRPP+"=2", envRoots+"=1",
			envCkpt+"="+filepath.Join(dir, "ckpt"),
			envOut+"="+filepath.Join(dir, "out"),
			envRecovery+"=restore",
			envPeerDead+"=30s", // only the auth verdict may take these workers down
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	if err := os.MkdirAll(filepath.Join(dir, "out"), 0o777); err != nil {
		t.Fatal(err)
	}
	workers := []*exec.Cmd{spawn(0, "alpha"), spawn(1, "beta")}
	type exitRes struct{ proc, code int }
	exits := make(chan exitRes, len(workers))
	for i, w := range workers {
		go func(i int, w *exec.Cmd) {
			w.Wait()
			exits <- exitRes{i, w.ProcessState.ExitCode()}
		}(i, w)
	}
	// Whichever side completes the proof exchange first detects the mismatch
	// and must die on the typed verdict; its peer only sees a vanished
	// connection (the failure detector's job, not the handshake's), so the
	// test reaps it rather than asserting its exit.
	select {
	case r := <-exits:
		if r.code != exitAuth {
			t.Fatalf("worker %d exit = %d, want %d (typed auth rejection)", r.proc, r.code, exitAuth)
		}
	case <-time.After(60 * time.Second):
		for _, w := range workers {
			w.Process.Kill()
		}
		t.Fatal("no worker exited on the auth verdict")
	}
	for _, w := range workers {
		w.Process.Kill()
	}
	<-exits
}

func readReport(t *testing.T, path string) *report.Report {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := report.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	return r
}
