// Command bfsrun materializes a whole multi-process BFS world from one
// command line. Where bfsbench in socket mode needs one hand-started process
// per world member (DESIGN.md §12), bfsrun is the cluster supervisor: it
// spawns N rank-hosting workers plus a pool of spares, wires them into an
// authenticated socket world, and babysits them — restarting crashes with
// capped exponential backoff, breaking out of crash loops with a typed
// post-mortem, re-admitting lost capacity through the spare + checkpoint
// restore path, and draining the fleet gracefully on SIGTERM.
//
//	bfsrun -procs 3 -spares 2 -scale 16 -roots 4 -json run.json
//	bfsrun -procs 3 -scale 16 -fault-plan "sigkill@proc=1,iter=2"
//
// The worker side is this same binary re-executed with BFSRUN_WORKER=1: each
// worker joins the wire world with the per-run shared secret, runs the SPMD
// BFS schedule, and reports liveness over the supervise control pipe. A
// worker SIGKILLed by the fault plan is replaced by a spare that replays the
// shared checkpoint store; the killed slot's restarted process learns from
// the sealed handshake verdict that the world moved on and parks (exit 3).
// An authentication failure is reported, not retried (exit 4). A drained
// worker commits a checkpoint and exits 5; rerunning with the same
// -checkpoint-dir resumes where the drain stopped.
package main

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/comm"
	"repro/internal/faultinject"
	"repro/internal/report"
	"repro/internal/supervise"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Worker exit codes, classified by the parent's OnExit hook.
const (
	exitOK      = 0 // all roots traversed, artifacts written
	exitFatal   = 1 // unrecoverable worker error: restart
	exitSealed  = 3 // a peer holds a final dead verdict for this proc id: park
	exitAuth    = 4 // handshake authentication failed: give up, do not retry
	exitDrained = 5 // graceful drain completed with a committed checkpoint
)

// The parent→worker environment protocol. BFSRUN_WORKER selects worker mode
// in the re-executed binary; the rest carries the world spec so every worker
// derives the identical graph, partition and root schedule.
const (
	envWorker   = "BFSRUN_WORKER"
	envProc     = "BFSRUN_PROC"
	envAddrs    = "BFSRUN_ADDRS"
	envSecret   = "BFSRUN_SECRET"
	envScale    = "BFSRUN_SCALE"
	envSeed     = "BFSRUN_SEED"
	envRanks    = "BFSRUN_RANKS"
	envRPP      = "BFSRUN_RPP"
	envRoots    = "BFSRUN_ROOTS"
	envCkpt     = "BFSRUN_CKPT"
	envOut      = "BFSRUN_OUT"
	envPlan     = "BFSRUN_PLAN"
	envRecovery = "BFSRUN_RECOVERY"
	envPeerDead = "BFSRUN_PEER_DEAD"
	envGen      = "BFSRUN_GEN"
)

func main() {
	if os.Getenv(envWorker) == "1" {
		os.Exit(workerMain())
	}
	os.Exit(parentMain(os.Args[1:]))
}

// ---------------------------------------------------------------------------
// Parent: spawn, babysit, re-admit.

func parentMain(args []string) int {
	fs := flag.NewFlagSet("bfsrun", flag.ContinueOnError)
	var (
		procs    = fs.Int("procs", 2, "rank-hosting worker processes")
		spares   = fs.Int("spares", 1, "spare worker processes (zero ranks until they adopt a dead process's)")
		scale    = fs.Int("scale", 14, "graph SCALE: 2^scale vertices, 16*2^scale edges")
		seed     = fs.Uint64("seed", 42, "generator seed")
		rpp      = fs.Int("ranks-per-proc", 2, "ranks each rank-hosting process serves")
		ranks    = fs.Int("ranks", 0, "total simulated node count (0 = procs * ranks-per-proc)")
		roots    = fs.Int("roots", 4, "number of sampled BFS roots")
		ckptDir  = fs.String("checkpoint-dir", "", "shared durable checkpoint store (empty = fresh temp dir)")
		outDir   = fs.String("out", "", "artifact directory for parents files and per-worker reports (empty = fresh temp dir)")
		sockDir  = fs.String("sock-dir", "", "directory for the world's unix sockets (empty = fresh temp dir)")
		secret   = fs.String("secret", "", "shared world secret authenticating every wire handshake (empty = fresh random secret; or BFS_WORLD_SECRET)")
		plan     = fs.String("fault-plan", "", "fault-injection plan, e.g. \"sigkill@proc=1,iter=2\" (see internal/faultinject)")
		recovery = fs.String("recovery", "restore", "world rebuild after a fail-stop: shrink or restore")
		jsonOut  = fs.String("json", "", "write the merged machine-readable report (worker run + supervisor resilience) here")
		traceOut = fs.String("trace", "", "write the supervisor's lifecycle event timeline (JSONL) here")
		peerDead = fs.Duration("peer-dead", 2*time.Second, "wire silence budget before a peer is declared dead")
		backoff  = fs.Duration("restart-backoff", 0, "base restart backoff (0 = 2*peer-dead + 1s, so a restarted proc always meets the sealed verdict, never a stale session)")
		backCap  = fs.Duration("backoff-cap", 10*time.Second, "restart backoff cap")
		loopK    = fs.Int("crashloop-k", 4, "crash-loop breaker: give up on a slot after K failures inside -crashloop-window")
		loopWin  = fs.Duration("crashloop-window", time.Minute, "crash-loop breaker sliding window")
		hangTO   = fs.Duration("hang-timeout", 0, "SIGKILL a worker whose control pipe is silent this long (0 = off)")
		drainTO  = fs.Duration("drain-timeout", 20*time.Second, "graceful drain budget before escalating to SIGKILL")
		drainAt  = fs.Duration("drain-after", 0, "drain the world after this long (soak runs; 0 = only on SIGTERM)")
		maxGen   = fs.Int("max-generations", 3, "whole-world relaunches after a crash-loop verdict before giving up")
		verbose  = fs.Bool("verbose", false, "forward worker stderr to the parent's stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ranks == 0 {
		*ranks = *procs * *rpp
	}
	if *procs < 1 || *spares < 0 || *ranks%*rpp != 0 || *ranks / *rpp != *procs {
		fmt.Fprintf(os.Stderr, "bfsrun: %d ranks at %d per process need exactly %d rank-hosting processes\n",
			*ranks, *rpp, (*ranks + *rpp - 1) / *rpp)
		return 2
	}
	if *secret == "" {
		*secret = os.Getenv("BFS_WORLD_SECRET")
	}
	if *secret == "" {
		var b [16]byte
		if _, err := rand.Read(b[:]); err != nil {
			fmt.Fprintln(os.Stderr, "bfsrun:", err)
			return 1
		}
		*secret = hex.EncodeToString(b[:])
	}
	var retired *faultinject.Plan
	if *plan != "" {
		p, err := faultinject.Parse(*plan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bfsrun:", err)
			return 2
		}
		retired = p
	}
	for _, d := range []*string{ckptDir, outDir, sockDir} {
		if *d == "" {
			t, err := os.MkdirTemp("", "bfsrun-")
			if err != nil {
				fmt.Fprintln(os.Stderr, "bfsrun:", err)
				return 1
			}
			*d = t
		} else if err := os.MkdirAll(*d, 0o777); err != nil {
			fmt.Fprintln(os.Stderr, "bfsrun:", err)
			return 1
		}
	}
	if *backoff <= 0 {
		// The restart must land after every survivor latched the dead
		// verdict: jitter halves the delay, so base = 2*(peerDead + margin)
		// keeps even the earliest restart behind the verdict. A too-early
		// restart would resume the old session with reset frame sequence
		// numbers instead of meeting the sealed reject.
		*backoff = 2**peerDead + time.Second
	}

	world := *procs + *spares
	addrs := make([]string, world)
	for i := range addrs {
		addrs[i] = "unix:" + filepath.Join(*sockDir, fmt.Sprintf("w%d.sock", i))
	}
	fmt.Printf("bfsrun: %d workers + %d spares, scale %d, %d ranks (%d per process)\n",
		*procs, *spares, *scale, *ranks, *rpp)
	fmt.Printf("bfsrun: checkpoints %s, artifacts %s\n", *ckptDir, *outDir)

	var tr *trace.Tracer
	var spans *trace.Stream
	if *traceOut != "" {
		tr = trace.New()
		spans = tr.NewStream(-1)
	}

	// consumed counts, per slot, the sigkill clauses a previous incarnation
	// or generation already executed; Start retires them from the plan each
	// spawn so a restarted or relaunched world makes progress instead of
	// re-shooting itself at the same iteration.
	var planMu sync.Mutex
	consumed := map[int]int{}
	worldGen := 0

	start := func(slot, gen int) (*exec.Cmd, error) {
		if p := strings.TrimPrefix(addrs[slot], "unix:"); p != addrs[slot] {
			os.Remove(p) // stale socket from the previous incarnation
		}
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		planMu.Lock()
		spec := ""
		if retired != nil {
			spec = retired.DropSigKills(consumed).String()
		}
		planMu.Unlock()
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			envWorker+"=1",
			envProc+"="+strconv.Itoa(slot),
			envAddrs+"="+strings.Join(addrs, ","),
			envSecret+"="+*secret,
			envScale+"="+strconv.Itoa(*scale),
			envSeed+"="+strconv.FormatUint(*seed, 10),
			envRanks+"="+strconv.Itoa(*ranks),
			envRPP+"="+strconv.Itoa(*rpp),
			envRoots+"="+strconv.Itoa(*roots),
			envCkpt+"="+*ckptDir,
			envOut+"="+*outDir,
			envPlan+"="+spec,
			envRecovery+"="+*recovery,
			envPeerDead+"="+peerDead.String(),
			envGen+"="+strconv.Itoa(worldGen),
		)
		if *verbose {
			cmd.Stderr = os.Stderr
		}
		return cmd, nil
	}

	onExit := func(x supervise.Exit) supervise.Decision {
		if x.Signal == "killed" {
			// SIGKILL: the fault plan (or the hang detector) shot it. Retire
			// one sigkill clause for the slot and respawn; the world's spare
			// pool is the real re-admission path, the respawn will meet the
			// sealed verdict and park.
			planMu.Lock()
			consumed[x.Slot]++
			planMu.Unlock()
			return supervise.DecideRestart
		}
		switch x.Code {
		case exitOK, exitDrained:
			return supervise.DecideDone
		case exitSealed:
			return supervise.DecidePark
		case exitAuth:
			return supervise.DecideGiveUp
		}
		return supervise.DecideRestart
	}

	onEvent := func(ev supervise.Event) {
		fmt.Fprintf(os.Stderr, "bfsrun: [w%d g%d] %s %s\n", ev.Slot, ev.Gen, ev.Kind, ev.Detail)
		if spans != nil {
			spans.Emit(trace.Span{
				Kind: trace.KindEvent, Rank: -1, Iter: -1, Step: -1, Tag: -1,
				Name:  "supervisor_" + string(ev.Kind),
				Start: tr.Now(),
				Args:  map[string]int64{"slot": int64(ev.Slot), "gen": int64(ev.Gen)},
			})
		}
	}

	// One forwarder delivers SIGTERM/SIGINT (and the -drain-after timer) to
	// whichever supervisor generation is current.
	var cur atomic.Pointer[supervise.Supervisor]
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)
	stopFwd := make(chan struct{})
	defer close(stopFwd)
	var drainc <-chan time.Time
	if *drainAt > 0 {
		t := time.NewTimer(*drainAt)
		defer t.Stop()
		drainc = t.C
	}
	go func() {
		for {
			select {
			case <-sigc:
			case <-drainc:
			case <-stopFwd:
				return
			}
			if s := cur.Load(); s != nil {
				fmt.Fprintln(os.Stderr, "bfsrun: draining the world")
				s.Drain()
			}
		}
	}()

	var total supervise.Stats
	var crashLoopGiveUps int64
	generations := 0
	for gen := 1; ; gen++ {
		generations = gen
		worldGen = gen
		sup, err := supervise.New(supervise.Config{
			Workers:          world,
			Start:            start,
			OnExit:           onExit,
			OnEvent:          onEvent,
			BackoffBase:      *backoff,
			BackoffCap:       *backCap,
			CrashLoopK:       *loopK,
			CrashLoopWindow:  *loopWin,
			HeartbeatTimeout: *hangTO,
			DrainTimeout:     *drainTO,
			// Concurrently-restarted workers hold no dead verdicts for each
			// other and would form a rump world re-running the fleet's work
			// against live checkpoint scopes; one at a time, each meets the
			// real world's verdict (sealed, orphaned, or re-admitted) alone.
			SerializeRestarts: true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bfsrun:", err)
			return 2
		}
		cur.Store(sup)
		runErr := sup.Run()
		cur.Store(nil)
		st := sup.Stats()
		total.Spawns += st.Spawns
		total.Restarts += st.Restarts
		total.Crashes += st.Crashes
		total.Hangs += st.Hangs
		total.Parked += st.Parked
		total.Done += st.Done
		total.Drained += st.Drained
		if runErr == nil {
			break
		}
		var cl *supervise.CrashLoopError
		if errors.As(runErr, &cl) && gen < *maxGen {
			crashLoopGiveUps++
			fmt.Fprintf(os.Stderr, "bfsrun: generation %d crash-looped (%v); relaunching the world\n", gen, cl)
			continue
		}
		fmt.Fprintln(os.Stderr, "bfsrun:", runErr)
		writeParentTrace(tr, *traceOut)
		return 1
	}

	fmt.Printf("bfsrun: world retired after %d generation(s): %d spawns, %d restarts, %d crashes, %d parked, %d drained\n",
		generations, total.Spawns, total.Restarts, total.Crashes, total.Parked, total.Drained)

	chosen := -1
	for p := 0; p < world; p++ {
		if _, err := os.Stat(parentsPath(*outDir, p)); err == nil {
			chosen = p
			break
		}
	}
	writeParentTrace(tr, *traceOut)
	if chosen < 0 {
		if total.Drained > 0 {
			fmt.Printf("bfsrun: drained before completion; rerun with -checkpoint-dir %s to resume\n", *ckptDir)
			return 0
		}
		fmt.Fprintln(os.Stderr, "bfsrun: no worker produced a complete parents artifact")
		return 1
	}
	fmt.Printf("bfsrun: parents artifact %s\n", parentsPath(*outDir, chosen))

	if *jsonOut != "" {
		sr := &report.SupervisorResilience{
			Workers:          *procs,
			Spares:           *spares,
			Generations:      generations,
			Spawns:           total.Spawns,
			Restarts:         total.Restarts,
			Crashes:          total.Crashes,
			Hangs:            total.Hangs,
			Parked:           total.Parked,
			Drained:          total.Drained,
			CrashLoopGiveUps: crashLoopGiveUps,
		}
		if err := mergeReport(reportPath(*outDir, chosen), *jsonOut, sr); err != nil {
			fmt.Fprintln(os.Stderr, "bfsrun:", err)
			return 1
		}
		fmt.Printf("bfsrun: wrote merged report to %s\n", *jsonOut)
	}
	return 0
}

// mergeReport loads the chosen worker's run report and republishes it with
// the parent's supervisor-resilience block attached.
func mergeReport(workerReport, dst string, sr *report.SupervisorResilience) error {
	f, err := os.Open(workerReport)
	if err != nil {
		return err
	}
	r, err := report.Read(f)
	f.Close()
	if err != nil {
		return err
	}
	r.Resilience.Supervisor = sr
	return r.WriteFile(dst)
}

func writeParentTrace(tr *trace.Tracer, path string) {
	if tr == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err == nil {
		err = tr.WriteJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfsrun: trace:", err)
	}
}

func parentsPath(dir string, proc int) string {
	return filepath.Join(dir, fmt.Sprintf("parents-w%d.bin", proc))
}

func reportPath(dir string, proc int) string {
	return filepath.Join(dir, fmt.Sprintf("report-w%d.json", proc))
}

// ---------------------------------------------------------------------------
// Worker: join, traverse, report.

// sigkillTransport wraps the fault plan as a comm.Transport that executes the
// plan's process-suicide clauses: Intercept never returns for a matching
// (proc, iter), so the kill looks to the rest of the world exactly like the
// fail-stop it models.
type sigkillTransport struct {
	plan *faultinject.Plan
	proc int
}

func (t *sigkillTransport) Intercept(c comm.Call) comm.FaultAction {
	if t.plan.SigKillFor(t.proc, c.Iter) {
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // the signal is asynchronous; never proceed past it
	}
	return t.plan.Intercept(c)
}

func workerMain() int {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "bfsrun-worker: "+format+"\n", args...)
	}
	rep := supervise.NewReporter()
	stopHB := rep.StartHeartbeat(500 * time.Millisecond)
	defer stopHB()

	proc, err := strconv.Atoi(os.Getenv(envProc))
	if err != nil {
		logf("bad %s: %v", envProc, err)
		return exitFatal
	}
	addrs := strings.Split(os.Getenv(envAddrs), ",")
	scale := envInt(envScale, 14)
	seed := envUint(envSeed, 42)
	ranks := envInt(envRanks, 4)
	rpp := envInt(envRPP, 2)
	roots := envInt(envRoots, 4)
	outDir := os.Getenv(envOut)
	peerDead, _ := time.ParseDuration(os.Getenv(envPeerDead))

	var draining atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM)
	go func() {
		<-sigc
		draining.Store(true)
		rep.Send("draining", "")
	}()

	// Handshake verdicts are final: a sealed proc id parks, a failed
	// authentication gives up. Both exit from the session goroutine the
	// moment the verdict arrives, before any collective can hang on it.
	onReject := func(peer int, err error) {
		switch {
		case errors.Is(err, wire.ErrSealed):
			rep.Sendf("sealed", "peer=%d", peer)
			logf("proc %d: world moved on while we were dead (peer %d): parking", proc, peer)
			os.Exit(exitSealed)
		case errors.Is(err, wire.ErrAuth):
			rep.Sendf("auth", "peer=%d", peer)
			logf("proc %d: handshake authentication failed (peer %d): %v", proc, peer, err)
			os.Exit(exitAuth)
		}
	}

	g, err := comm.NewGroup(wire.Config{
		Proc:          proc,
		Addrs:         addrs,
		Secret:        os.Getenv(envSecret),
		PeerDeadAfter: peerDead,
		OnReject:      onReject,
	})
	if err != nil {
		logf("join: %v", err)
		return exitFatal
	}
	defer g.Close()
	rep.Sendf("joined", "proc=%d of %d gen=%s", proc, len(addrs), os.Getenv(envGen))

	graph := graph500.Generate(graph500.GenConfig{Scale: scale, Seed: seed})
	cfg := graph500.Config{
		Ranks:           ranks,
		Dist:            &comm.DistConfig{Group: g, ProcOf: comm.ContiguousProcOf(ranks, rpp)},
		CheckpointDir:   os.Getenv(envCkpt),
		CheckpointEvery: 1,
		Recovery:        graph500.RestoreRecovery,
		Drain:           draining.Load,
	}
	if os.Getenv(envRecovery) == "shrink" {
		cfg.Recovery = graph500.ShrinkRecovery
	}
	if spec := os.Getenv(envPlan); spec != "" {
		plan, err := faultinject.Parse(spec)
		if err != nil {
			logf("fault plan: %v", err)
			return exitFatal
		}
		cfg.Faults = &sigkillTransport{plan: plan, proc: proc}
	}
	r, err := graph500.New(graph, cfg)
	if err != nil {
		logf("partition: %v", err)
		return exitFatal
	}
	rootList, err := r.SampleRoots(roots, seed+1)
	if err != nil {
		logf("roots: %v", err)
		return exitFatal
	}

	results := make([]*graph500.Result, len(rootList))
	for i, root := range rootList {
		// Deterministic per-root scope names survive the process: a relaunched
		// generation resumes each root from the checkpoints the failed world
		// left behind instead of starting over.
		r.Engine.SetResumeFrom(fmt.Sprintf("bfsrun-root%03d", i))
		rep.Sendf("run", "root=%d (%d/%d)", root, i+1, len(rootList))
		res, err := r.Run(root)
		if ws := g.WireStats(); len(addrs) > 1 && ws.BytesRecv == 0 {
			// Not one frame ever arrived: the world finished (or moved on)
			// before this restarted process came up, and there was no live
			// peer left to hand us the sealed verdict. Whether the solo run
			// "succeeded" (every peer voted dead, all ranks re-homed onto us)
			// or exhausted its epochs, it was never part of the real world —
			// park instead of crash-looping or redoing the fleet's work alone.
			rep.Send("orphaned", "")
			logf("proc %d: no peer ever spoke to us; the world moved on: parking", proc)
			return exitSealed
		}
		if err != nil {
			if errors.Is(err, graph500.ErrDrained) {
				rep.Send("drained", "")
				logf("proc %d: drained at root %d/%d; checkpoints retained", proc, i+1, len(rootList))
				return exitDrained
			}
			logf("proc %d: root %d: %v", proc, root, err)
			return exitFatal
		}
		results[i] = res
	}

	// Only a process whose final epoch hosts ranks assembles real parent
	// arrays; a spare that never adopted (or a process evacuated mid-run)
	// keeps the -1 fill and must not publish an artifact.
	complete := true
	for i, root := range rootList {
		if results[i].Parent[root] != root {
			complete = false
			break
		}
	}
	if complete {
		if err := writeParents(parentsPath(outDir, proc), scale, seed, rootList, results); err != nil {
			logf("artifact: %v", err)
			return exitFatal
		}
		if err := writeWorkerReport(reportPath(outDir, proc), g, graph, scale, seed, ranks, rpp, len(addrs), rootList, results, r); err != nil {
			logf("report: %v", err)
			return exitFatal
		}
		rep.Send("artifact", parentsPath(outDir, proc))
	}
	rep.Send("finished", "")
	return exitOK
}

// writeParents publishes the worker's parent arrays as one deterministic
// binary artifact (header, then root + parents per root, little endian).
// tmp+rename keeps readers from ever seeing a partial file.
func writeParents(path string, scale int, seed uint64, roots []int64, results []*graph500.Result) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	hdr := []uint64{0x42465350, 1, uint64(scale), seed, uint64(len(roots))}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		f.Close()
		return err
	}
	for i, root := range roots {
		if err := binary.Write(w, binary.LittleEndian, root); err != nil {
			f.Close()
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, results[i].Parent); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// writeWorkerReport emits this process's machine-readable run report; the
// parent merges the chosen one with its supervisor-resilience block.
func writeWorkerReport(path string, g *comm.Group, graph graph500.Graph, scale int, seed uint64, ranks, rpp, procs int, roots []int64, results []*graph500.Result, r *graph500.Runner) error {
	in := report.Inputs{Config: report.RunConfig{
		Scale:       scale,
		EdgeFactor:  16,
		NumVertices: graph.NumVertices,
		NumEdges:    int64(len(graph.Edges)),
		Ranks:       r.Engine.Opt.Ranks,
		MeshRows:    r.Engine.Opt.Mesh.Rows,
		MeshCols:    r.Engine.Opt.Mesh.Cols,
		Roots:       len(roots),
		Seed:        seed,
		Direction:   "sub-iteration",
		Workload:    "bfs",
		Faults:      os.Getenv(envPlan),
		Checkpoints: true,
	}}
	in.Recovery.LastResumeIter = -2
	var invSum float64
	for _, res := range results {
		teps := float64(res.TraversedEdges) / res.Time.Seconds()
		in.MeanTEPS += teps
		invSum += 1 / teps
		in.MeanSeconds += res.Time.Seconds()
		in.Traversed += res.TraversedEdges
		in.Iterations += int64(res.Iterations)
		if in.MinTEPS == 0 || teps < in.MinTEPS {
			in.MinTEPS = teps
		}
		if teps > in.MaxTEPS {
			in.MaxTEPS = teps
		}
		in.Faults.Add(&res.Faults)
		in.Recovery.Add(&res.Recovery)
		if res.Recovery.LastResumeIter != -2 {
			in.Recovery.LastResumeIter = res.Recovery.LastResumeIter
		}
		in.Retries += res.Retries
		in.RecoveryWall += res.RecoveryTime
	}
	n := float64(len(results))
	in.MeanTEPS /= n
	in.MeanSeconds /= n
	in.HarmonicTEPS = n / invSum
	ws := g.WireStats()
	in.Wire = &report.WireResilience{
		Procs:             procs,
		RanksPerProc:      rpp,
		HeartbeatsSent:    ws.HeartbeatsSent,
		HeartbeatsRecv:    ws.HeartbeatsRecv,
		Reconnects:        ws.Reconnects,
		PeersLost:         ws.PeersLost,
		FramesResent:      ws.FramesResent,
		BytesSent:         ws.BytesSent,
		BytesRecv:         ws.BytesRecv,
		AuthRejects:       ws.AuthRejects,
		HandshakeTimeouts: ws.HandshakeTimeouts,
	}
	return report.Build(in).WriteFile(path)
}

func envInt(key string, def int) int {
	if v, err := strconv.Atoi(os.Getenv(key)); err == nil {
		return v
	}
	return def
}

func envUint(key string, def uint64) uint64 {
	if v, err := strconv.ParseUint(os.Getenv(key), 10, 64); err == nil {
		return v
	}
	return def
}
