// Command gen500 emits a Graph 500 specification R-MAT edge list, either as
// text ("u v" per line) or as the packed little-endian int64 pair binary
// format the reference implementation uses.
//
// Usage:
//
//	gen500 -scale 16 -seed 42 > edges.txt
//	gen500 -scale 20 -format bin -o edges.bin
//	gen500 -scale 16 -histogram
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/edgeio"
	"repro/internal/rmat"
)

func main() {
	var (
		scale      = flag.Int("scale", 16, "2^scale vertices")
		edgeFactor = flag.Int("edgefactor", 16, "edges per vertex")
		seed       = flag.Uint64("seed", 42, "stream seed")
		format     = flag.String("format", "text", "output format: text or bin")
		out        = flag.String("o", "", "output file (default stdout)")
		histogram  = flag.Bool("histogram", false, "print the degree histogram instead of edges")
	)
	flag.Parse()

	cfg := rmat.Config{Scale: *scale, EdgeFactor: *edgeFactor, Seed: *seed}
	edges := rmat.Generate(cfg)

	if *histogram {
		hist := rmat.DegreeHistogram(rmat.Degrees(cfg.NumVertices(), edges))
		fmt.Printf("# degree histogram, scale %d (%d vertices, %d edges)\n",
			*scale, cfg.NumVertices(), len(edges))
		for b, c := range hist {
			if c == 0 {
				continue
			}
			if b == 0 {
				fmt.Printf("0\t%d\n", c)
			} else {
				fmt.Printf("[%d,%d)\t%d\n", 1<<uint(b-1), 1<<uint(b), c)
			}
		}
		return
	}

	f, err := edgeio.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *out != "" {
		if err := edgeio.WriteFile(*out, f, edges); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	var w io.Writer = os.Stdout
	switch f {
	case edgeio.FormatText:
		err = edgeio.WriteText(w, edges)
	case edgeio.FormatBin:
		err = edgeio.WriteBin(w, edges)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
