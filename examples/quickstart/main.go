// Quickstart: generate a Graph 500 graph, traverse it with the 1.5D engine,
// validate the result, and print the headline statistics.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 2^16 vertices, about one million edges: a laptop-sized Graph 500 run.
	g := graph500.Generate(graph500.GenConfig{Scale: 16, Seed: 42})
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices, len(g.Edges))

	// Partition over 16 simulated nodes (a 4x4 mesh) with scale-appropriate
	// E/H degree thresholds.
	runner, err := graph500.New(g, graph500.Config{Ranks: 16})
	if err != nil {
		log.Fatal(err)
	}
	hubs := runner.Engine.Part.Hubs
	fmt.Printf("classified: %d extremely-heavy (E), %d heavy (H) vertices of %d\n",
		hubs.NumE, hubs.NumH, g.NumVertices)

	// Run the Graph 500 benchmark protocol: sampled roots, validated runs,
	// harmonic-mean TEPS.
	sum, err := runner.Benchmark(8, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8 validated traversals: %.4f GTEPS (harmonic mean), %.2f ms mean\n",
		sum.GTEPS(), sum.MeanSeconds*1e3)

	// Inspect one run in detail.
	res, err := runner.RunValidated(sum.Roots[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("root %d: %d iterations, %d edges in component\n",
		res.Root, res.Iterations, res.TraversedEdges)
	for i, it := range res.Trace {
		fmt.Printf("  iteration %d: %5d E, %6d H, %8d L active; directions %v\n",
			i+1, it.ActiveE, it.ActiveH, it.ActiveL, it.Directions)
	}
}
