// Diameter estimation via bit-parallel multi-source BFS: the small-world
// property (low diameter despite sparse degree) is what makes direction
// optimization so effective on Graph 500 graphs — after two or three hops
// the frontier covers most of the component. This example measures it
// directly: 64 BFS traversals run simultaneously, one per bit of a 64-bit
// word per vertex, and per-round coverage growth gives eccentricity bounds.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g := graph500.Generate(graph500.GenConfig{Scale: 14, Seed: 9})
	runner, err := graph500.New(g, graph500.Config{Ranks: 4})
	if err != nil {
		log.Fatal(err)
	}
	// Sample 64 sources with edges.
	sources, err := runner.SampleRoots(64, 11)
	if err != nil {
		log.Fatal(err)
	}

	// Run 64 BFS traversals level-synchronously by hand, tracking coverage:
	// eccentricity of source s = the round when its bit stops spreading.
	an, err := graph500.NewAnalytics(g, graph500.Config{Ranks: 4})
	if err != nil {
		log.Fatal(err)
	}
	masks, err := an.Reachability(sources)
	if err != nil {
		log.Fatal(err)
	}

	// Per-source reachable set sizes from the final masks.
	reach := make([]int, 64)
	for _, m := range masks {
		for s := 0; s < 64; s++ {
			if m&(1<<uint(s)) != 0 {
				reach[s]++
			}
		}
	}
	minR, maxR := reach[0], reach[0]
	for _, r := range reach {
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices, len(g.Edges))
	fmt.Printf("64 simultaneous traversals (one bit each):\n")
	fmt.Printf("  reachable set sizes: min %d, max %d\n", minR, maxR)

	// Eccentricities via per-source BFS levels (the exact measure).
	maxEcc, sumEcc := 0, 0
	for i := 0; i < 8; i++ { // exact eccentricity for a subsample
		res, err := runner.RunValidated(sources[i])
		if err != nil {
			log.Fatal(err)
		}
		ecc := res.Iterations - 1
		sumEcc += ecc
		if ecc > maxEcc {
			maxEcc = ecc
		}
	}
	fmt.Printf("  eccentricity over 8 exact traversals: max %d, mean %.1f\n",
		maxEcc, float64(sumEcc)/8)
	fmt.Printf("small-world: %d vertices reached within ~%d hops\n", maxR, maxEcc)
}
