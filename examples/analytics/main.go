// Analytics beyond BFS: the paper's Discussion section argues its techniques
// generalize ("One of our future work will be designing and implementing the
// next-generation ShenTu ... upon the proposed techniques"). This example
// runs the three additional algorithms this repository builds on the same
// 1.5D partitioning: single-source shortest path (the Graph 500 second
// kernel), PageRank, and connected components.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	g := graph500.Generate(graph500.GenConfig{Scale: 13, Seed: 4})
	fmt.Printf("graph: %d vertices, %d edges, 4 ranks\n\n", g.NumVertices, len(g.Edges))
	cfg := graph500.Config{Ranks: 4}

	// 1. SSSP with Graph 500 uniform [0,1) weights, validated.
	ss, err := graph500.NewSSSP(g, cfg, 7)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ss.RunValidated(0)
	if err != nil {
		log.Fatal(err)
	}
	reached, far := 0, 0.0
	for v := int64(0); v < g.NumVertices; v++ {
		if res.Parent[v] >= 0 {
			reached++
			if res.Dist[v] > far {
				far = res.Dist[v]
			}
		}
	}
	fmt.Printf("SSSP from 0: %d vertices reached in %d rounds; eccentricity %.4f; %d relaxations\n",
		reached, res.Rounds, far, res.Relaxations)

	// 2. PageRank to convergence.
	an, err := graph500.NewAnalytics(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := an.PageRank(0.85, 1e-9, 200)
	if err != nil {
		log.Fatal(err)
	}
	type vr struct {
		v int64
		r float64
	}
	top := make([]vr, 0, g.NumVertices)
	for v, r := range pr.Rank {
		top = append(top, vr{int64(v), r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Printf("\nPageRank converged in %d iterations (delta %.2e); top 5:\n", pr.Iterations, pr.Delta)
	for i := 0; i < 5; i++ {
		fmt.Printf("  vertex %6d: %.6f\n", top[i].v, top[i].r)
	}

	// 3. Connected components.
	wcc, err := an.ConnectedComponents()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconnected components: %d (in %d label-propagation rounds)\n",
		wcc.Components, wcc.Iterations)
}
