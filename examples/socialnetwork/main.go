// Social-network analytics: the paper motivates graph traversal with data
// analytics on skewed real-world graphs (social networks, web graphs). This
// example builds a synthetic social graph with R-MAT (whose skew mimics
// follower distributions), then uses the public API for two classic
// analyses: hub identification (who are the influencers?) and degrees of
// separation from a seed user (BFS levels).
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	// A small social network: 2^15 users, ~16 connections each on average,
	// but with R-MAT's heavy skew a few users have thousands.
	g := graph500.Generate(graph500.GenConfig{Scale: 15, Seed: 7})

	runner, err := graph500.New(g, graph500.Config{Ranks: 8})
	if err != nil {
		log.Fatal(err)
	}

	// Influencers: the partitioner already classified the degree outliers.
	hubs := runner.Engine.Part.Hubs
	fmt.Printf("network: %d users, %d relationships\n", g.NumVertices, len(g.Edges))
	fmt.Printf("influencer tiers: %d celebrities (E), %d popular accounts (H)\n\n",
		hubs.NumE, hubs.NumH)
	fmt.Println("top 5 accounts by followers:")
	for h := 0; h < 5 && h < hubs.K(); h++ {
		fmt.Printf("  user %6d: %d connections\n", hubs.Orig[h], hubs.Deg[h])
	}

	// Degrees of separation from a seed user.
	seed := hubs.Orig[0]
	res, err := runner.RunValidated(seed)
	if err != nil {
		log.Fatal(err)
	}
	levels := map[int64]int64{}
	// Convert parents to hop counts by walking each chain (memoized).
	hops := make([]int64, g.NumVertices)
	for i := range hops {
		hops[i] = -2 // unknown
	}
	hops[seed] = 0
	var depth func(v int64) int64
	depth = func(v int64) int64 {
		if hops[v] != -2 {
			return hops[v]
		}
		if res.Parent[v] < 0 {
			hops[v] = -1
			return -1
		}
		hops[v] = depth(res.Parent[v]) + 1
		return hops[v]
	}
	for v := int64(0); v < g.NumVertices; v++ {
		levels[depth(v)]++
	}
	fmt.Printf("\ndegrees of separation from user %d:\n", seed)
	var keys []int64
	for k := range levels {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if k < 0 {
			fmt.Printf("  unreachable: %d users\n", levels[k])
			continue
		}
		fmt.Printf("  %d hops: %d users\n", k, levels[k])
	}
	fmt.Printf("\nsmall-world check: %d iterations to cover the whole component\n", res.Iterations)
}
