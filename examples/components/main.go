// Connected components via repeated BFS over the public API: R-MAT graphs
// at the Graph 500 edge factor have one giant component plus many isolated
// vertices and small fragments. This example enumerates them, demonstrating
// that the engine composes into higher-level graph algorithms (the paper's
// Section 8 sketches a general-purpose framework on the same techniques).
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	g := graph500.Generate(graph500.GenConfig{Scale: 14, Seed: 3})
	runner, err := graph500.New(g, graph500.Config{Ranks: 4})
	if err != nil {
		log.Fatal(err)
	}
	deg := runner.Degrees()

	assigned := make([]int64, g.NumVertices) // component id per vertex, -1 unassigned
	for i := range assigned {
		assigned[i] = -1
	}
	var sizes []int64
	isolated := int64(0)
	for v := int64(0); v < g.NumVertices; v++ {
		if assigned[v] != -1 {
			continue
		}
		if deg[v] == 0 {
			isolated++
			assigned[v] = -2
			continue
		}
		res, err := runner.RunValidated(v)
		if err != nil {
			log.Fatal(err)
		}
		id := int64(len(sizes))
		var size int64
		for u := int64(0); u < g.NumVertices; u++ {
			if res.Parent[u] >= 0 {
				if assigned[u] != -1 {
					log.Fatalf("vertex %d in two components", u)
				}
				assigned[u] = id
				size++
			}
		}
		sizes = append(sizes, size)
	}

	sort.Slice(sizes, func(i, j int) bool { return sizes[i] > sizes[j] })
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices, len(g.Edges))
	fmt.Printf("connected components: %d (plus %d isolated vertices)\n", len(sizes), isolated)
	fmt.Printf("giant component: %d vertices (%.1f%% of all)\n",
		sizes[0], 100*float64(sizes[0])/float64(g.NumVertices))
	if len(sizes) > 1 {
		fmt.Println("next largest components:")
		for i := 1; i < len(sizes) && i <= 5; i++ {
			fmt.Printf("  component %d: %d vertices\n", i, sizes[i])
		}
	}
}
