// Partitioning comparison: the same graph traversed under the three
// partitioning regimes of the paper's Table 1 — 1D with heavy delegates
// (no H class), 2D (no L class), and 3-level degree-aware 1.5D — plus the
// direction-policy ablation of Figure 15, printing measured GTEPS and edge
// touches so the trade-offs are visible on one screen.
package main

import (
	"fmt"
	"log"

	"repro"
)

func run(name string, g graph500.Graph, cfg graph500.Config) {
	runner, err := graph500.New(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := runner.Benchmark(4, 5)
	if err != nil {
		log.Fatal(err)
	}
	res, err := runner.Run(sum.Roots[0])
	if err != nil {
		log.Fatal(err)
	}
	hubs := runner.Engine.Part.Hubs
	fmt.Printf("%-34s %8.4f GTEPS  %9d hubs  %12d edge touches\n",
		name, sum.GTEPS(), hubs.K(), res.Recorder.TotalEdges())
}

func main() {
	g := graph500.Generate(graph500.GenConfig{Scale: 15, Seed: 11})
	fmt.Printf("graph: %d vertices, %d edges; 8 ranks\n\n", g.NumVertices, len(g.Edges))

	// Scale-appropriate default thresholds for the 1.5D configuration.
	base := graph500.Config{Ranks: 8}
	runner, err := graph500.New(g, base)
	if err != nil {
		log.Fatal(err)
	}
	th := runner.Engine.Opt.Thresholds

	fmt.Println("partitioning comparison (paper Table 1 methods):")
	run("1D + heavy delegates (|H|=0)", g, graph500.Config{Ranks: 8, Thresholds: graph500.Thresholds{E: th.H, H: th.H}})
	run("2D (|L|=0)", g, graph500.Config{Ranks: 8, Thresholds: graph500.Thresholds{E: th.E, H: 1}})
	run("degree-aware 1.5D", g, base)

	fmt.Println("\ndirection policy ablation (paper Fig. 15):")
	run("push only", g, graph500.Config{Ranks: 8, Direction: graph500.PushOnly})
	run("whole-iteration direction opt", g, graph500.Config{Ranks: 8, Direction: graph500.WholeIterationDirection})
	run("sub-iteration direction opt", g, base)
	run("  + CG-aware segmenting", g, graph500.Config{Ranks: 8, Segmented: true})
}
