package graph500

import (
	"testing"
)

func smallGraph(t *testing.T) Graph {
	t.Helper()
	return Generate(GenConfig{Scale: 10, Seed: 21})
}

func TestGenerateSizes(t *testing.T) {
	g := Generate(GenConfig{Scale: 8, Seed: 1})
	if g.NumVertices != 256 || int64(len(g.Edges)) != 16*256 {
		t.Fatalf("n=%d m=%d", g.NumVertices, len(g.Edges))
	}
}

func TestRunValidated(t *testing.T) {
	g := smallGraph(t)
	r, err := New(g, Config{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunValidated(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Parent[1] != 1 {
		t.Fatal("root parent wrong")
	}
}

func TestRunValidatedDetectsCorruption(t *testing.T) {
	g := smallGraph(t)
	r, err := New(g, Config{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt and check Validate catches it.
	for v := range res.Parent {
		if res.Parent[v] == -1 {
			res.Parent[v] = 1 // claim an unreachable vertex was reached
			break
		}
	}
	if err := Validate(g, 1, res.Parent); err == nil {
		t.Fatal("Validate accepted corrupt parents")
	}
}

func TestSampleRoots(t *testing.T) {
	g := smallGraph(t)
	r, err := New(g, Config{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	roots, err := r.SampleRoots(16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 16 {
		t.Fatalf("%d roots", len(roots))
	}
	deg := r.Degrees()
	seen := map[int64]bool{}
	for _, root := range roots {
		if deg[root] == 0 {
			t.Fatalf("root %d has degree 0", root)
		}
		if seen[root] {
			t.Fatalf("root %d sampled twice", root)
		}
		seen[root] = true
	}
}

func TestBenchmarkStatistics(t *testing.T) {
	g := smallGraph(t)
	r, err := New(g, Config{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Benchmark(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if sum.HarmonicTEPS <= 0 || sum.MeanTEPS < sum.HarmonicTEPS {
		t.Fatalf("harmonic %.0f vs mean %.0f: harmonic mean must not exceed arithmetic",
			sum.HarmonicTEPS, sum.MeanTEPS)
	}
	if sum.MinTEPS > sum.MaxTEPS || sum.MinTEPS <= 0 {
		t.Fatalf("min %.0f max %.0f", sum.MinTEPS, sum.MaxTEPS)
	}
	if sum.GTEPS() <= 0 {
		t.Fatal("GTEPS not positive")
	}
}

func TestConfigVariants(t *testing.T) {
	g := smallGraph(t)
	for _, cfg := range []Config{
		{Ranks: 4, Direction: PushOnly},
		{Ranks: 4, Direction: PullOnly},
		{Ranks: 4, Direction: WholeIterationDirection},
		{Ranks: 4, Segmented: true},
		{Ranks: 8, Hierarchical: true},
		{Mesh: Mesh{Rows: 2, Cols: 4}},
		{Ranks: 4, Thresholds: Thresholds{E: 128, H: 16}},
		{Ranks: 4, RankWorkers: 2},
	} {
		r, err := New(g, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if _, err := r.RunValidated(5); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := smallGraph(t)
	hist := DegreeHistogram(g)
	var total int64
	for _, c := range hist {
		total += c
	}
	if total != g.NumVertices {
		t.Fatalf("histogram covers %d vertices, want %d", total, g.NumVertices)
	}
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	r, err := New(g, Config{Ranks: 1, Thresholds: Thresholds{E: 100, H: 10}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunValidated(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < 4; v++ {
		if res.Parent[v] < 0 {
			t.Fatalf("vertex %d unreached on a path graph", v)
		}
	}
}
