// Benchmarks regenerating every table and figure in the paper's evaluation
// section (Section 6). Each BenchmarkTable1_*/BenchmarkFigN_* target measures
// the workload behind the corresponding exhibit; `go test -bench . -benchmem`
// prints the series, and cmd/experiments renders the full formatted rows.
//
// Absolute numbers come from this machine's Go runtime, not the 40M-core
// New Sunway; EXPERIMENTS.md tabulates the shape comparison (who wins, by
// what factor, where crossovers fall) against the paper's reported values.
package graph500

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/framework"
	"repro/internal/partition"
	"repro/internal/perfmodel"
	"repro/internal/rmat"
	"repro/internal/stats"
	"repro/internal/sunway"
	"repro/internal/topology"
	"repro/internal/trace"
)

const (
	benchScale = 16
	benchRanks = 16
)

func benchGraph(b *testing.B, scale int) (int64, []rmat.Edge) {
	b.Helper()
	cfg := rmat.Config{Scale: scale, Seed: 42}
	return cfg.NumVertices(), rmat.Generate(cfg)
}

func benchEngine(b *testing.B, n int64, edges []rmat.Edge, opt core.Options) *core.Engine {
	b.Helper()
	eng, err := core.NewEngine(n, edges, opt)
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

func pickRoot(eng *core.Engine) int64 {
	for v, d := range eng.Part.Degrees {
		if d > 0 {
			return int64(v)
		}
	}
	return 0
}

func runBFS(b *testing.B, eng *core.Engine, root int64) {
	b.Helper()
	if root < 0 {
		root = pickRoot(eng)
	}
	res, err := eng.Run(root)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(res.TraversedEdges * 8)
	b.ReportMetric(float64(res.TraversedEdges)/res.Time.Seconds()/1e9, "GTEPS")
}

// --- Table 1: partitioning methods ------------------------------------------

func BenchmarkTable1_1DHeavyDelegates(b *testing.B) {
	n, edges := benchGraph(b, benchScale)
	th := core.DefaultThresholds(benchScale)
	eng := benchEngine(b, n, edges, core.Options{Ranks: benchRanks, Thresholds: partition.Thresholds{E: th.H, H: th.H}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBFS(b, eng, -1)
	}
}

func BenchmarkTable1_2D(b *testing.B) {
	n, edges := benchGraph(b, benchScale)
	th := core.DefaultThresholds(benchScale)
	eng := benchEngine(b, n, edges, core.Options{Ranks: benchRanks, Thresholds: partition.Thresholds{E: th.E, H: 1}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBFS(b, eng, -1)
	}
}

func BenchmarkTable1_DegreeAware15D(b *testing.B) {
	n, edges := benchGraph(b, benchScale)
	eng := benchEngine(b, n, edges, core.Options{Ranks: benchRanks})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBFS(b, eng, -1)
	}
}

// --- Figure 2: degree distribution -------------------------------------------

func BenchmarkFig2_DegreeHistogram(b *testing.B) {
	n, edges := benchGraph(b, benchScale)
	b.SetBytes(int64(len(edges)) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hist := rmat.DegreeHistogram(rmat.Degrees(n, edges))
		if len(hist) < 8 {
			b.Fatal("degree distribution lost its tail")
		}
	}
}

// --- Figure 5: activation breakdown ------------------------------------------

func BenchmarkFig5_ActivationBreakdown(b *testing.B) {
	n, edges := benchGraph(b, benchScale)
	eng := benchEngine(b, n, edges, core.Options{Ranks: benchRanks})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Run(1)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Trace) == 0 {
			b.Fatal("no trace")
		}
	}
}

// --- Figure 9-11: scaling model ----------------------------------------------

func BenchmarkFig9_WeakScaling(b *testing.B) {
	m := perfmodel.DefaultModel()
	var eff float64
	for i := 0; i < b.N; i++ {
		_, eff = m.WeakScaling()
	}
	b.ReportMetric(100*eff, "%parallel-efficiency")
}

func BenchmarkFig10_SubgraphBreakdown(b *testing.B) {
	m := perfmodel.DefaultModel()
	for i := 0; i < b.N; i++ {
		for _, w := range perfmodel.PaperPoints {
			p := m.Project(w)
			if p.SubgraphShare["L2L"] <= 0 {
				b.Fatal("missing L2L share")
			}
		}
	}
}

func BenchmarkFig11_CommBreakdown(b *testing.B) {
	m := perfmodel.DefaultModel()
	for i := 0; i < b.N; i++ {
		for _, w := range perfmodel.PaperPoints {
			p := m.Project(w)
			if p.CommShare["compute"] <= 0 {
				b.Fatal("missing compute share")
			}
		}
	}
}

// Measured weak-scaling companion to Figure 9: same graph-per-rank workload
// at increasing rank counts.
func BenchmarkFig9_MeasuredWeakScaling(b *testing.B) {
	for _, pt := range []struct{ scale, ranks int }{{14, 1}, {15, 2}, {16, 4}, {17, 8}} {
		b.Run(fmt.Sprintf("scale%d_ranks%d", pt.scale, pt.ranks), func(b *testing.B) {
			n, edges := benchGraph(b, pt.scale)
			eng := benchEngine(b, n, edges, core.Options{Ranks: pt.ranks})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runBFS(b, eng, -1)
			}
		})
	}
}

// --- Figure 12: threshold grid ------------------------------------------------

func BenchmarkFig12_ThresholdGrid(b *testing.B) {
	n, edges := benchGraph(b, 14)
	base := core.DefaultThresholds(14)
	for _, th := range []partition.Thresholds{
		{E: base.E, H: base.H}, {E: base.E * 4, H: base.H}, {E: base.E, H: base.H * 4}, {E: base.E * 4, H: base.H * 4},
	} {
		b.Run(fmt.Sprintf("E%d_H%d", th.E, th.H), func(b *testing.B) {
			eng := benchEngine(b, n, edges, core.Options{Ranks: benchRanks, Thresholds: th})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runBFS(b, eng, -1)
			}
		})
	}
}

// --- Figure 13: partitioning balance -------------------------------------------

func BenchmarkFig13_Balance(b *testing.B) {
	n, edges := benchGraph(b, benchScale)
	mesh := topology.SquarestMesh(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := partition.Build(n, edges, mesh, core.DefaultThresholds(benchScale), 0)
		if err != nil {
			b.Fatal(err)
		}
		st := p.Balance()[partition.CompEH2EH]
		if st.Mean > 0 {
			b.ReportMetric(float64(st.Max)/st.Mean, "max/mean")
		}
	}
}

// --- Figure 14: OCS-RMA throughput ---------------------------------------------

func fig14Keys(b *testing.B) []uint64 {
	b.Helper()
	keys := make([]uint64, 1<<22) // 32 MB
	s := uint64(99)
	for i := range keys {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		keys[i] = z ^ (z >> 31)
	}
	return keys
}

func BenchmarkFig14_OCSRMA_MPE(b *testing.B) {
	keys := fig14Keys(b)
	f := func(x uint64) int { return int(x & 0xFF) }
	b.SetBytes(int64(len(keys)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sunway.BucketMPE(keys, 256, f)
	}
}

func BenchmarkFig14_OCSRMA_1CG(b *testing.B) {
	keys := fig14Keys(b)
	f := func(x uint64) int { return int(x & 0xFF) }
	b.SetBytes(int64(len(keys)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sunway.BucketOCS(keys, 256, f, sunway.OCSConfig{CGs: 1})
	}
}

func BenchmarkFig14_OCSRMA_6CG(b *testing.B) {
	keys := fig14Keys(b)
	f := func(x uint64) int { return int(x & 0xFF) }
	b.SetBytes(int64(len(keys)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sunway.BucketOCS(keys, 256, f, sunway.OCSConfig{CGs: 6})
	}
}

// --- Figure 15: ablation ----------------------------------------------------------

func BenchmarkFig15_Baseline(b *testing.B) {
	n, edges := benchGraph(b, benchScale)
	eng := benchEngine(b, n, edges, core.Options{Ranks: benchRanks, Direction: core.ModeWholeIteration})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBFS(b, eng, -1)
	}
}

func BenchmarkFig15_SubIteration(b *testing.B) {
	n, edges := benchGraph(b, benchScale)
	eng := benchEngine(b, n, edges, core.Options{Ranks: benchRanks, Direction: core.ModeSubIteration})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBFS(b, eng, -1)
	}
}

func BenchmarkFig15_SubIterationSegmented(b *testing.B) {
	n, edges := benchGraph(b, benchScale)
	eng := benchEngine(b, n, edges, core.Options{Ranks: benchRanks, Direction: core.ModeSubIteration, Segmented: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBFS(b, eng, -1)
	}
}

// Figure 15's EH2EH pull contrast in isolation: one rank holding the whole
// core subgraph, pulled with and without segmenting. This is where the
// cache-residency effect shows without per-rank scheduling noise.
func BenchmarkFig15_EHPullKernel(b *testing.B) {
	n, edges := benchGraph(b, 18)
	for _, segmented := range []bool{false, true} {
		name := "direct"
		if segmented {
			name = "segmented"
		}
		b.Run(name, func(b *testing.B) {
			eng := benchEngine(b, n, edges, core.Options{Ranks: 1,
				Direction: core.ModePullOnly, Segmented: segmented})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runBFS(b, eng, -1)
			}
		})
	}
}

// End-to-end experiment regeneration (what cmd/experiments prints).
func BenchmarkExperimentTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(13, 4, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extensions beyond the paper's exhibits -----------------------------------

// BenchmarkExtension_SSSP measures the Graph 500 second kernel on the 1.5D
// partitioning (not a paper figure; Section 8 names SSSP as a beneficiary).
func BenchmarkExtension_SSSP(b *testing.B) {
	n, edges := benchGraph(b, 14)
	eng := benchEngine(b, n, edges, core.Options{Ranks: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunSSSP(0, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtension_PageRank measures the framework's PageRank.
func BenchmarkExtension_PageRank(b *testing.B) {
	n, edges := benchGraph(b, 14)
	eng, err := framework.New(n, edges, framework.Options{Ranks: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.PageRank(0.85, 1e-6, 30); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtension_VanillaBaseline measures the no-delegation 1D BFS.
func BenchmarkExtension_VanillaBaseline(b *testing.B) {
	n, edges := benchGraph(b, 14)
	e, err := baseline.New(n, edges, baseline.Options{Ranks: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MessagesSent), "messages")
	}
}

// BenchmarkExtension_DelayedVsImmediateReduction measures the Section 5
// delayed-reduction saving as reduce-phase bytes.
func BenchmarkExtension_DelayedVsImmediateReduction(b *testing.B) {
	n, edges := benchGraph(b, 14)
	for _, immediate := range []bool{false, true} {
		name := "delayed"
		if immediate {
			name = "immediate"
		}
		b.Run(name, func(b *testing.B) {
			eng := benchEngine(b, n, edges, core.Options{Ranks: 4, ImmediateParentReduction: immediate})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Recorder.Volumes[stats.PhaseReduce].TotalBytes()), "reduce-bytes")
			}
		})
	}
}

// --- Design-choice ablations ---------------------------------------------------

// BenchmarkAblation_Segments sweeps the CG-aware segment count (the paper's
// Discussion: "requires tuning on number of segments to adapt more
// algorithms").
func BenchmarkAblation_Segments(b *testing.B) {
	n, edges := benchGraph(b, 15)
	for _, segs := range []int{2, 6, 12} {
		b.Run(fmt.Sprintf("segments%d", segs), func(b *testing.B) {
			eng := benchEngine(b, n, edges, core.Options{Ranks: 4, Segmented: true, Segments: segs})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runBFS(b, eng, -1)
			}
		})
	}
}

// BenchmarkAblation_L2LForwarding contrasts direct global alltoallv with the
// paper's intersection-rank forwarding, reporting moved bytes.
func BenchmarkAblation_L2LForwarding(b *testing.B) {
	n, edges := benchGraph(b, 15)
	for _, hier := range []bool{false, true} {
		name := "direct"
		if hier {
			name = "forwarded"
		}
		b.Run(name, func(b *testing.B) {
			eng := benchEngine(b, n, edges, core.Options{Ranks: 16, Hierarchical: hier})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(pickRoot(eng))
				if err != nil {
					b.Fatal(err)
				}
				v := res.Recorder.Volumes[stats.PhaseL2L]
				b.ReportMetric(float64(v.TotalBytes()), "L2L-bytes")
			}
		})
	}
}

// BenchmarkAblation_PullRatio sweeps the remote-component direction switch.
func BenchmarkAblation_PullRatio(b *testing.B) {
	n, edges := benchGraph(b, 15)
	for _, ratio := range []float64{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("ratio%g", ratio), func(b *testing.B) {
			eng := benchEngine(b, n, edges, core.Options{Ranks: 4, PullRatio: ratio})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(pickRoot(eng))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Recorder.TotalEdges()), "edges-touched")
			}
		})
	}
}

// BenchmarkCheckpointEvery1Overhead measures what the async double-buffered
// checkpoint writer costs the traversal at the most aggressive setting
// (-checkpoint-every=1: a delta capture after every BFS iteration), against
// an identical engine with checkpointing off. Prints the per-iteration
// overhead in ns and as a percentage of the fault-free iteration time.
func BenchmarkCheckpointEvery1Overhead(b *testing.B) {
	n, edges := benchGraph(b, 14)
	plain := benchEngine(b, n, edges, core.Options{Ranks: 4})
	root := pickRoot(plain)
	ck := benchEngine(b, n, edges, core.Options{Ranks: 4, CheckpointDir: b.TempDir(), CheckpointEvery: 1})
	// Warm both paths (graph tier write, partitioning) outside the timing.
	if _, err := plain.Run(root); err != nil {
		b.Fatal(err)
	}
	if _, err := ck.Run(root); err != nil {
		b.Fatal(err)
	}
	var plainNs, ckNs, iters, segs, bytes, dropped int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := plain.Run(root)
		if err != nil {
			b.Fatal(err)
		}
		plainNs += res.Time.Nanoseconds()
		ckRes, err := ck.Run(root)
		if err != nil {
			b.Fatal(err)
		}
		if ckRes.Recovery.CheckpointSegments == 0 {
			b.Fatal("checkpointed run committed no segments")
		}
		ckNs += ckRes.Time.Nanoseconds()
		iters += int64(ckRes.Iterations)
		segs += ckRes.Recovery.CheckpointSegments
		bytes += ckRes.Recovery.CheckpointBytes
		dropped += ckRes.Recovery.CheckpointDropped
	}
	b.StopTimer()
	perIter := float64(ckNs-plainNs) / float64(iters)
	pct := 100 * float64(ckNs-plainNs) / float64(plainNs)
	b.ReportMetric(perIter, "ns-overhead/iter")
	b.ReportMetric(pct, "%overhead")
	b.Logf("checkpoint-every=1 over %d runs: plain=%v checkpointed=%v -> %.0f ns/iter (%.2f%%) overhead; %d segments, %d bytes, %d captures dropped",
		b.N, time.Duration(plainNs), time.Duration(ckNs), perIter, pct, segs, bytes, dropped)
}

// BenchmarkAblation_RankWorkers sweeps intra-rank parallelism (edge-aware
// vertex cut + two-stage apply paths).
func BenchmarkAblation_RankWorkers(b *testing.B) {
	n, edges := benchGraph(b, 15)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			eng := benchEngine(b, n, edges, core.Options{Ranks: 4, RankWorkers: w})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runBFS(b, eng, -1)
			}
		})
	}
}

// BenchmarkTraceOverhead measures what the span recorder costs the traversal:
// tracing off (the nil-check fast path every instrumented hook pays) against
// tracing on (one span per kernel/sync/collective/decision on every rank).
// The acceptance bar for the disabled path is <2% against the seed engine;
// the on path shows the full recording cost. Reset between runs keeps the
// tracer's span memory bounded.
func BenchmarkTraceOverhead(b *testing.B) {
	n, edges := benchGraph(b, 12)
	off := benchEngine(b, n, edges, core.Options{Ranks: 4})
	root := pickRoot(off)
	tr := trace.New()
	on := benchEngine(b, n, edges, core.Options{Ranks: 4, Trace: tr})
	if _, err := off.Run(root); err != nil {
		b.Fatal(err)
	}
	if _, err := on.Run(root); err != nil {
		b.Fatal(err)
	}
	if len(tr.Spans()) == 0 {
		b.Fatal("traced run recorded no spans")
	}
	tr.Reset()
	var offNs, onNs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := off.Run(root)
		if err != nil {
			b.Fatal(err)
		}
		offNs += res.Time.Nanoseconds()
		onRes, err := on.Run(root)
		if err != nil {
			b.Fatal(err)
		}
		onNs += onRes.Time.Nanoseconds()
		tr.Reset()
	}
	b.StopTimer()
	pct := 100 * float64(onNs-offNs) / float64(offNs)
	b.ReportMetric(pct, "%overhead-on")
	b.Logf("tracing over %d runs: off=%v on=%v -> %.2f%% recording overhead",
		b.N, time.Duration(offNs), time.Duration(onNs), pct)
}
