package graph500

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sssp"
	"repro/internal/stats"
)

// WorkloadNames lists the workloads bfsbench can run on the 1.5D fast path,
// in canonical order.
var WorkloadNames = []string{"bfs", "wcc", "kcore", "sssp"}

// ParseWorkloads splits a comma-separated workload list ("bfs,wcc"),
// validates every name against WorkloadNames and drops duplicates while
// preserving first-mention order.
func ParseWorkloads(list string) ([]string, error) {
	known := make(map[string]bool, len(WorkloadNames))
	for _, n := range WorkloadNames {
		known[n] = true
	}
	seen := make(map[string]bool)
	var out []string
	for _, raw := range strings.Split(list, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("graph500: unknown workload %q (want one of %s)",
				name, strings.Join(WorkloadNames, ", "))
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("graph500: empty workload list")
	}
	return out, nil
}

// recorderCommBytes sums a recorder's collective payload traffic over every
// kind and locality.
func recorderCommBytes(rec *stats.Recorder) int64 {
	if rec == nil {
		return 0
	}
	vol := rec.CommBreakdown()
	intra, inter := vol.Totals()
	return intra + inter
}

// WorkloadEntry renders the BFS benchmark summary as its per-workload report
// row: GTEPS is the harmonic-mean traversal rate, the same statistic as the
// document's headline summary.
func (b *BenchmarkSummary) WorkloadEntry() report.WorkloadEntry {
	return report.WorkloadEntry{
		Workload:   "bfs",
		GTEPS:      b.HarmonicTEPS / 1e9,
		Seconds:    b.MeanSeconds,
		Iterations: b.Iterations,
		CommBytes:  recorderCommBytes(&b.Recorder),
		Retries:    b.Retries,
	}
}

// BenchWorkload runs one ported analytics workload (wcc, kcore or sssp) once
// over the runner's partition on the engine's fast path and returns its
// report entry. GTEPS is edges touched per second — the iterative workloads
// have no Graph 500 traversal statistic, but edge-scan throughput is
// deterministic for a fixed configuration, which is all the CI gate needs.
// The SSSP result is checked against the shortest-path optimality conditions
// before it is reported; kcoreK is the peeling threshold and weightSeed keys
// the deterministic SSSP edge weights (the root is the first vertex with an
// edge).
func (r *Runner) BenchWorkload(name string, kcoreK int64, weightSeed uint64) (report.WorkloadEntry, error) {
	entry := report.WorkloadEntry{Workload: name}
	var run func() (*core.WorkloadResult, error)
	switch name {
	case "wcc":
		run = r.Engine.RunWCC
	case "kcore":
		run = func() (*core.WorkloadResult, error) { return r.Engine.RunKCore(kcoreK) }
	case "sssp":
		root := int64(-1)
		for v, d := range r.Engine.Part.Degrees {
			if d > 0 {
				root = int64(v)
				break
			}
		}
		if root < 0 {
			return entry, fmt.Errorf("graph500: no vertex with an edge to root SSSP at")
		}
		run = func() (*core.WorkloadResult, error) { return r.Engine.RunSSSP(root, weightSeed, 0) }
	default:
		return entry, fmt.Errorf("graph500: BenchWorkload does not run %q", name)
	}
	res, gteps, err := benchRate(run)
	if err != nil {
		return entry, err
	}
	entry.GTEPS = gteps
	entry.Seconds = res.Time.Seconds()
	entry.Iterations = int64(res.Iterations)
	entry.CommBytes = recorderCommBytes(res.Recorder)
	entry.Retries = res.Retries
	switch name {
	case "wcc":
		entry.Components = res.Components
	case "kcore":
		entry.K = res.K
		entry.CoreSize = res.CoreSize
	case "sssp":
		if err := sssp.ValidateResult(r.graph.NumVertices, r.graph.Edges, weightSeed, &sssp.Result{
			Root: res.Root, Dist: res.Dist, Parent: res.Parent,
		}); err != nil {
			return entry, err
		}
		entry.Root = res.Root
		entry.Relaxations = res.Relaxations
	}
	return entry, nil
}

// benchRate measures a workload's edge-scan throughput, repeating runs that
// finish under 50ms (k-core settles in a couple of peel rounds at bench
// scales) until enough wall time accumulates for the rate to gate on; the
// first run's result carries the reported outputs — the workloads are
// deterministic, so the repeats change nothing but the clock.
func benchRate(run func() (*core.WorkloadResult, error)) (*core.WorkloadResult, float64, error) {
	first, err := run()
	if err != nil {
		return nil, 0, err
	}
	edges := first.Recorder.TotalEdges()
	total := first.Time
	for reps := 1; total < 50*time.Millisecond && reps < 64; reps++ {
		res, err := run()
		if err != nil {
			return nil, 0, err
		}
		edges += res.Recorder.TotalEdges()
		total += res.Time
	}
	var gteps float64
	if total > 0 {
		gteps = float64(edges) / total.Seconds() / 1e9
	}
	return first, gteps, nil
}
