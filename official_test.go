package graph500

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestOfficialRunStatistics(t *testing.T) {
	g := Generate(GenConfig{Scale: 10, Seed: 31})
	r, err := New(g, Config{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.OfficialRun(8, 3, 123*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scale != 10 || st.EdgeFactor != 16 || st.NBFSRoots != 8 {
		t.Fatalf("metadata wrong: %+v", st)
	}
	if math.Abs(st.ConstructionTime-0.123) > 1e-9 {
		t.Fatalf("construction time %g", st.ConstructionTime)
	}
	// Order statistics must be ordered.
	if !(st.MinTime <= st.FirstQuartileTime && st.FirstQuartileTime <= st.MedianTime &&
		st.MedianTime <= st.ThirdQuartileTime && st.ThirdQuartileTime <= st.MaxTime) {
		t.Fatalf("time quantiles unordered: %+v", st)
	}
	if !(st.MinTEPS <= st.FirstQuartileTEPS && st.FirstQuartileTEPS <= st.MedianTEPS &&
		st.MedianTEPS <= st.ThirdQuartileTEPS && st.ThirdQuartileTEPS <= st.MaxTEPS) {
		t.Fatalf("TEPS quantiles unordered: %+v", st)
	}
	// Harmonic mean below arithmetic mean of TEPS (AM-HM inequality) and
	// within [min, max].
	if st.HarmonicMeanTEPS < st.MinTEPS || st.HarmonicMeanTEPS > st.MaxTEPS {
		t.Fatalf("harmonic mean %g outside [%g, %g]", st.HarmonicMeanTEPS, st.MinTEPS, st.MaxTEPS)
	}
	if st.StddevTime < 0 || st.HarmonicStddevTEPS < 0 {
		t.Fatal("negative deviation")
	}
}

func TestOfficialOutputFormat(t *testing.T) {
	g := Generate(GenConfig{Scale: 9, Seed: 32})
	r, err := New(g, Config{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.OfficialRun(4, 5, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	out := st.String()
	for _, key := range []string{
		"SCALE:", "edgefactor:", "NBFS:", "construction_time:",
		"min_time:", "firstquartile_time:", "median_time:", "thirdquartile_time:", "max_time:",
		"mean_time:", "stddev_time:",
		"min_TEPS:", "harmonic_mean_TEPS:", "harmonic_stddev_TEPS:",
	} {
		if !strings.Contains(out, key) {
			t.Fatalf("official output missing %q:\n%s", key, out)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := quantile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("quantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
	if quantile([]float64{7}, 0.99) != 7 {
		t.Fatal("single-element quantile")
	}
}

func TestSqrtPos(t *testing.T) {
	for _, x := range []float64{0, 1, 2, 100, 1e-12, 1e12} {
		got := sqrtPos(x)
		if math.Abs(got-math.Sqrt(x)) > 1e-9*(1+math.Sqrt(x)) {
			t.Fatalf("sqrtPos(%g) = %g, want %g", x, got, math.Sqrt(x))
		}
	}
	if sqrtPos(-1) != 0 {
		t.Fatal("negative input should clamp to 0")
	}
}
