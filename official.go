package graph500

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// OfficialStats mirrors the output block the Graph 500 reference code prints
// after a benchmark run: order statistics over the per-root times and TEPS
// rates, plus construction metadata. The spec reports the harmonic mean of
// TEPS with its harmonic standard deviation; quartiles use the reference
// code's nearest-rank convention.
type OfficialStats struct {
	Scale            int
	EdgeFactor       int
	NBFSRoots        int
	ConstructionTime float64 // seconds

	MinTime, FirstQuartileTime, MedianTime, ThirdQuartileTime, MaxTime float64
	MeanTime, StddevTime                                               float64

	MinTEPS, FirstQuartileTEPS, MedianTEPS, ThirdQuartileTEPS, MaxTEPS float64
	HarmonicMeanTEPS, HarmonicStddevTEPS                               float64
}

// quantile returns the p-quantile (0..1) of sorted xs by linear
// interpolation, the convention of the Graph 500 reference statistics.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// OfficialRun executes the full Graph 500 protocol — generation timing is
// supplied by the caller; this runs count validated traversals from sampled
// roots and assembles the official statistics block.
func (r *Runner) OfficialRun(count int, seed uint64, constructionTime time.Duration) (*OfficialStats, error) {
	roots, err := r.SampleRoots(count, seed)
	if err != nil {
		return nil, err
	}
	times := make([]float64, 0, count)
	teps := make([]float64, 0, count)
	for _, root := range roots {
		res, err := r.RunValidated(root)
		if err != nil {
			return nil, fmt.Errorf("graph500: root %d: %w", root, err)
		}
		sec := res.Time.Seconds()
		times = append(times, sec)
		teps = append(teps, float64(res.TraversedEdges)/sec)
	}
	st := &OfficialStats{
		NBFSRoots:        count,
		ConstructionTime: constructionTime.Seconds(),
	}
	// Infer scale and edge factor from the graph.
	for int64(1)<<uint(st.Scale) < r.graph.NumVertices {
		st.Scale++
	}
	if r.graph.NumVertices > 0 {
		st.EdgeFactor = int(int64(len(r.graph.Edges)) / r.graph.NumVertices)
	}

	sortedTimes := append([]float64(nil), times...)
	sort.Float64s(sortedTimes)
	st.MinTime = sortedTimes[0]
	st.FirstQuartileTime = quantile(sortedTimes, 0.25)
	st.MedianTime = quantile(sortedTimes, 0.5)
	st.ThirdQuartileTime = quantile(sortedTimes, 0.75)
	st.MaxTime = sortedTimes[len(sortedTimes)-1]
	var sum, sumSq float64
	for _, x := range times {
		sum += x
		sumSq += x * x
	}
	nf := float64(len(times))
	st.MeanTime = sum / nf
	if len(times) > 1 {
		st.StddevTime = sqrtPos((sumSq - sum*sum/nf) / (nf - 1))
	}

	sortedTEPS := append([]float64(nil), teps...)
	sort.Float64s(sortedTEPS)
	st.MinTEPS = sortedTEPS[0]
	st.FirstQuartileTEPS = quantile(sortedTEPS, 0.25)
	st.MedianTEPS = quantile(sortedTEPS, 0.5)
	st.ThirdQuartileTEPS = quantile(sortedTEPS, 0.75)
	st.MaxTEPS = sortedTEPS[len(sortedTEPS)-1]
	// Harmonic mean and its standard deviation, computed over reciprocals
	// as the reference code does.
	var invSum, invSumSq float64
	for _, x := range teps {
		invSum += 1 / x
		invSumSq += (1 / x) * (1 / x)
	}
	st.HarmonicMeanTEPS = nf / invSum
	if len(teps) > 1 {
		invStd := sqrtPos((invSumSq - invSum*invSum/nf) / (nf - 1))
		st.HarmonicStddevTEPS = invStd * st.HarmonicMeanTEPS * st.HarmonicMeanTEPS / sqrtPos(nf)
	}
	return st, nil
}

func sqrtPos(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iteration; avoids importing math for one call site... but
	// clarity beats cleverness:
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// String renders the block in the reference code's key-colon-value format.
func (st *OfficialStats) String() string {
	var b strings.Builder
	p := func(k string, v any) { fmt.Fprintf(&b, "%s: %v\n", k, v) }
	p("SCALE", st.Scale)
	p("edgefactor", st.EdgeFactor)
	p("NBFS", st.NBFSRoots)
	p("construction_time", fmt.Sprintf("%.6g", st.ConstructionTime))
	p("min_time", fmt.Sprintf("%.6g", st.MinTime))
	p("firstquartile_time", fmt.Sprintf("%.6g", st.FirstQuartileTime))
	p("median_time", fmt.Sprintf("%.6g", st.MedianTime))
	p("thirdquartile_time", fmt.Sprintf("%.6g", st.ThirdQuartileTime))
	p("max_time", fmt.Sprintf("%.6g", st.MaxTime))
	p("mean_time", fmt.Sprintf("%.6g", st.MeanTime))
	p("stddev_time", fmt.Sprintf("%.6g", st.StddevTime))
	p("min_TEPS", fmt.Sprintf("%.6g", st.MinTEPS))
	p("firstquartile_TEPS", fmt.Sprintf("%.6g", st.FirstQuartileTEPS))
	p("median_TEPS", fmt.Sprintf("%.6g", st.MedianTEPS))
	p("thirdquartile_TEPS", fmt.Sprintf("%.6g", st.ThirdQuartileTEPS))
	p("max_TEPS", fmt.Sprintf("%.6g", st.MaxTEPS))
	p("harmonic_mean_TEPS", fmt.Sprintf("%.6g", st.HarmonicMeanTEPS))
	p("harmonic_stddev_TEPS", fmt.Sprintf("%.6g", st.HarmonicStddevTEPS))
	return b.String()
}
