// Package graph500 is the public API of this reproduction of "Scaling Graph
// Traversal to 281 Trillion Edges with 40 Million Cores" (PPoPP '22): a
// distributed-memory breadth-first search built on 3-level degree-aware 1.5D
// graph partitioning, with sub-iteration direction optimization, CG-aware
// core-subgraph segmenting, and an OCS-RMA-style bucket-sort substrate, all
// running on an in-process message-passing runtime that stands in for MPI.
//
// Typical use:
//
//	g := graph500.Generate(graph500.GenConfig{Scale: 18, Seed: 42})
//	r, err := graph500.New(g, graph500.Config{Ranks: 16})
//	res, err := r.RunValidated(rootVertex)
//	fmt.Println(res.GTEPS())
//
// The packages under internal/ hold the substrates: the R-MAT generator,
// the partitioner, the BFS engine, the rank runtime, the chip simulator, and
// the performance projector. This package wires them together behind a small
// surface.
package graph500

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/rmat"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/validate"
	"repro/internal/xrand"
)

// ErrNoConvergence re-exports the engine's non-convergence sentinel: a run
// that exhausted MaxIterations, or exhausted its fault retries, returns an
// error satisfying errors.Is(err, ErrNoConvergence).
var ErrNoConvergence = core.ErrNoConvergence

// ErrDrained re-exports the engine's graceful-drain sentinel: a run stopped
// by Config.Drain returns an error satisfying errors.Is(err, ErrDrained),
// with its checkpoint scope retained for a later resume (Result.
// CheckpointScope / Config.ResumeFrom).
var ErrDrained = core.ErrDrained

// Edge is one undirected edge. Self loops and duplicates are permitted, as
// in the Graph 500 generator output.
type Edge = rmat.Edge

// Graph bundles a vertex count with its undirected edge list.
type Graph struct {
	NumVertices int64
	Edges       []Edge
}

// GenConfig configures Graph 500 R-MAT generation.
type GenConfig struct {
	Scale      int    // vertices = 1<<Scale
	EdgeFactor int    // edges = EdgeFactor<<Scale; 0 = the spec's 16
	Seed       uint64 // deterministic stream seed
}

// Generate produces a Graph 500 specification graph (R-MAT, A=0.57,
// B=C=0.19, D=0.05, scrambled vertex IDs).
func Generate(cfg GenConfig) Graph {
	rc := rmat.Config{Scale: cfg.Scale, EdgeFactor: cfg.EdgeFactor, Seed: cfg.Seed}
	return Graph{NumVertices: rc.NumVertices(), Edges: rmat.Generate(rc)}
}

// FromEdges wraps an existing edge list as a Graph.
func FromEdges(n int64, edges []Edge) Graph {
	return Graph{NumVertices: n, Edges: edges}
}

// DirectionMode re-exports the engine's direction policies.
type DirectionMode = core.DirectionMode

// Direction policies.
const (
	SubIterationDirections  = core.ModeSubIteration   // the paper's optimization
	WholeIterationDirection = core.ModeWholeIteration // vanilla Beamer-style
	PushOnly                = core.ModePushOnly
	PullOnly                = core.ModePullOnly
)

// SparseMode re-exports the engine's sparse-tail collective policy.
type SparseMode = core.SparseMode

// Sparse-tail policies.
const (
	// SparseAuto adaptively ships tail-iteration messages as sparse update
	// triples over one allgather when frontiers collapse (the default).
	SparseAuto = core.SparseAuto
	// SparseOff forces the dense per-destination exchanges everywhere.
	SparseOff = core.SparseOff
	// SparseAlways forces the sparse exchange for every eligible push
	// component (stress/verification aid).
	SparseAlways = core.SparseAlways
)

// RecoveryMode re-exports the engine's world-rebuild strategy after a
// fail-stop rank death.
type RecoveryMode = core.RecoveryMode

// Recovery modes.
const (
	// ShrinkRecovery re-homes dead rank slots onto surviving nodes (no spare
	// hardware needed; survivors absorb the load).
	ShrinkRecovery = core.RecoverShrink
	// RestoreRecovery spawns replacement ranks on fresh spare nodes,
	// restoring the original mesh capacity.
	RestoreRecovery = core.RecoverRestore
)

// Thresholds re-exports the degree classification cut-offs.
type Thresholds = partition.Thresholds

// Mesh re-exports the process-mesh shape.
type Mesh = topology.Mesh

// Config selects the runtime configuration of a Runner.
type Config struct {
	// Ranks is the simulated node count; a squarest R×C mesh is derived
	// unless Mesh is set explicitly.
	Ranks int
	Mesh  Mesh
	// Thresholds are the E/H degree cut-offs; zero picks scale-appropriate
	// defaults.
	Thresholds Thresholds
	// Direction selects the traversal-direction policy (default:
	// sub-iteration direction optimization).
	Direction DirectionMode
	// Segmented enables CG-aware segmenting of the core-subgraph pull.
	Segmented bool
	// SegmentAdaptive picks flat vs segmented EH2EH pull per iteration from
	// measured kernel durations bucketed by active-hub count, instead of the
	// static Segmented switch; it overrides Segmented and records each choice
	// as a "segment_choice" decision span in the trace. Off by default: the
	// learned choice depends on machine timing, so parent arrays may differ
	// between runs (levels never do).
	SegmentAdaptive bool
	// RankWorkers is intra-rank kernel parallelism (edge-aware vertex cut).
	RankWorkers int
	// Hierarchical forwards L2L messages via mesh intersection ranks.
	Hierarchical bool
	// SparseTail selects the sparse-update tail collective policy (default
	// SparseAuto: low-frontier iterations batch their remote push payloads
	// into one sparse allgather instead of dense alltoallv exchanges).
	SparseTail SparseMode
	// Faults injects collective faults (see internal/faultinject); nil means
	// a perfectly reliable transport.
	Faults comm.Transport
	// Dist attaches the cross-process socket backend (internal/comm over
	// internal/wire): this process hosts only the ranks DistConfig.ProcOf
	// maps to it, collectives that span processes travel as framed
	// contributions over the Group's sockets, and a real peer death is
	// detected by heartbeat silence and surfaced as rank death with epoch
	// rebuild. Every process of the group must run the same calls with the
	// same Config (SPMD), and CheckpointDir — if set — must name storage
	// all processes share. nil keeps the in-process backend.
	Dist *comm.DistConfig
	// CollectiveDeadline fails collectives whose slowest contribution was
	// delayed past it. 0 disables the watchdog.
	CollectiveDeadline time.Duration
	// MaxRetries bounds consecutive re-executions of a failed BFS iteration
	// (0 = engine default of 4; negative = no retries).
	MaxRetries int
	// RetryBackoff is the base backoff before re-executing a failed
	// iteration, doubling per consecutive retry (0 = engine default).
	RetryBackoff time.Duration
	// CheckpointDir enables the durable two-tier checkpoint store: the
	// immutable graph tier is written once per engine, and an async
	// double-buffered writer commits per-iteration traversal deltas. A run
	// that loses a rank resumes from the newest complete checkpoint instead
	// of restarting. Empty disables checkpointing.
	CheckpointDir string
	// CheckpointEvery is the delta cadence in iterations (0 = every
	// iteration).
	CheckpointEvery int
	// Recovery selects how the rank world is rebuilt after a fail-stop
	// (default ShrinkRecovery).
	Recovery RecoveryMode
	// KeepCheckpoints retains the run's checkpoint scope after success (see
	// Result.CheckpointScope) instead of pruning it.
	KeepCheckpoints bool
	// ResumeFrom names an existing checkpoint scope under CheckpointDir to
	// resume instead of starting fresh.
	ResumeFrom string
	// Drain, when non-nil, is polled at every iteration boundary; once it
	// returns true the whole world finishes the current iteration, commits a
	// checkpoint and returns ErrDrained — the supervised graceful-shutdown
	// path (SIGTERM under cmd/bfsrun).
	Drain func() bool
	// Trace, when non-nil, records every run's span timeline (kernels,
	// collectives, decisions, checkpoints, recovery) for the -trace output.
	Trace *trace.Tracer
}

// Runner holds a partitioned graph ready to traverse.
type Runner struct {
	Engine *core.Engine
	graph  Graph
}

// Result re-exports the engine's run result.
type Result = core.Result

// BatchResult is one batched multi-source sweep's output (see
// core.BatchResult).
type BatchResult = core.BatchResult

// New partitions the graph and prepares the rank world.
func New(g Graph, cfg Config) (*Runner, error) {
	opt := core.Options{
		Mesh:               cfg.Mesh,
		Ranks:              cfg.Ranks,
		Thresholds:         cfg.Thresholds,
		Direction:          cfg.Direction,
		Segmented:          cfg.Segmented,
		SegmentAdaptive:    cfg.SegmentAdaptive,
		RankWorkers:        cfg.RankWorkers,
		Hierarchical:       cfg.Hierarchical,
		SparseTail:         cfg.SparseTail,
		Transport:          cfg.Faults,
		Dist:               cfg.Dist,
		CollectiveDeadline: cfg.CollectiveDeadline,
		MaxRetries:         cfg.MaxRetries,
		RetryBackoff:       cfg.RetryBackoff,
		CheckpointDir:      cfg.CheckpointDir,
		CheckpointEvery:    cfg.CheckpointEvery,
		Recovery:           cfg.Recovery,
		KeepCheckpoints:    cfg.KeepCheckpoints,
		ResumeFrom:         cfg.ResumeFrom,
		Drain:              cfg.Drain,
		Trace:              cfg.Trace,
	}
	eng, err := core.NewEngine(g.NumVertices, g.Edges, opt)
	if err != nil {
		return nil, err
	}
	return &Runner{Engine: eng, graph: g}, nil
}

// Graph returns the runner's input graph.
func (r *Runner) Graph() Graph { return r.graph }

// Run executes one BFS from root.
func (r *Runner) Run(root int64) (*Result, error) { return r.Engine.Run(root) }

// RunBatch executes one batched multi-source sweep over all roots: every
// collective is amortized across the batch, and each query's result is
// bit-identical to a solo Run from the same root.
func (r *Runner) RunBatch(roots []int64) (*BatchResult, error) { return r.Engine.RunBatch(roots) }

// RunValidated executes one BFS and validates the result against the
// Graph 500 specification checks, failing loudly on any violation.
func (r *Runner) RunValidated(root int64) (*Result, error) {
	res, err := r.Engine.Run(root)
	if err != nil {
		return nil, err
	}
	if _, err := validate.BFS(r.graph.NumVertices, r.graph.Edges, root, res.Parent); err != nil {
		return nil, fmt.Errorf("graph500: result failed validation: %w", err)
	}
	return res, nil
}

// Degrees returns the per-vertex undirected degree (self loops excluded, as
// partitioned).
func (r *Runner) Degrees() []int64 { return r.Engine.Part.Degrees }

// SampleRoots picks count distinct roots with nonzero degree, as the
// Graph 500 benchmark requires ("search keys must be uniformly sampled from
// the vertices with at least one edge").
func (r *Runner) SampleRoots(count int, seed uint64) ([]int64, error) {
	deg := r.Engine.Part.Degrees
	rng := xrand.NewXoshiro256(seed)
	seen := make(map[int64]bool)
	var roots []int64
	for attempts := 0; len(roots) < count; attempts++ {
		if attempts > 1000*count {
			return nil, fmt.Errorf("graph500: cannot find %d connected roots", count)
		}
		v := int64(rng.Uint64n(uint64(len(deg))))
		if deg[v] > 0 && !seen[v] {
			seen[v] = true
			roots = append(roots, v)
		}
	}
	return roots, nil
}

// BenchmarkSummary reports a Graph 500 style multi-root run.
type BenchmarkSummary struct {
	Roots          []int64
	MeanTEPS       float64 // arithmetic mean of per-root TEPS
	HarmonicTEPS   float64 // the Graph 500 reported statistic
	MeanSeconds    float64
	MinTEPS        float64
	MaxTEPS        float64
	TotalTraversed int64
	// Faults and Recovery aggregate the fault-injection and fail-stop
	// recovery accounting across all runs (a kill spec fires during exactly
	// one of them, so per-root results would hide it).
	Faults   comm.FaultStats
	Recovery stats.RecoveryStats
	Retries  int64
	// RecoveryTime totals the wall time the slowest rank spent in failed
	// attempts and backoff, summed across runs.
	RecoveryTime time.Duration
	// Recorder aggregates every run's per-rank time/volume/edge breakdowns
	// (the Figure 10/11 inputs of the machine-readable report).
	Recorder stats.Recorder
	// Directions tallies the chosen traversal direction per component across
	// all runs' iterations (the Figure 15 input), indexed by
	// stats.Direction.
	Directions [partition.NumComponents][stats.NumDirections]int64
	// Iterations totals traversal iterations across runs.
	Iterations int64
}

// GTEPS returns the harmonic-mean TEPS in giga units.
func (b BenchmarkSummary) GTEPS() float64 { return b.HarmonicTEPS / 1e9 }

// Benchmark runs BFS from count sampled roots (validating each) and returns
// Graph 500 statistics. The spec samples 64 roots; tests use fewer.
func (r *Runner) Benchmark(count int, seed uint64) (*BenchmarkSummary, error) {
	roots, err := r.SampleRoots(count, seed)
	if err != nil {
		return nil, err
	}
	sum := &BenchmarkSummary{Roots: roots, MinTEPS: -1,
		Recovery: stats.RecoveryStats{LastResumeIter: -2}}
	var invSum float64
	for _, root := range roots {
		res, err := r.RunValidated(root)
		if err != nil {
			return nil, fmt.Errorf("root %d: %w", root, err)
		}
		sum.Faults.Add(&res.Faults)
		sum.Recovery.Add(&res.Recovery)
		if res.Recovery.LastResumeIter != -2 {
			sum.Recovery.LastResumeIter = res.Recovery.LastResumeIter
		}
		sum.Retries += res.Retries
		sum.RecoveryTime += res.RecoveryTime
		sum.Recorder.Merge(res.Recorder)
		sum.Iterations += int64(res.Iterations)
		for _, it := range res.Trace {
			for c := 0; c < int(partition.NumComponents); c++ {
				sum.Directions[c][it.Directions[c]]++
			}
		}
		teps := float64(res.TraversedEdges) / res.Time.Seconds()
		sum.MeanTEPS += teps
		invSum += 1 / teps
		sum.MeanSeconds += res.Time.Seconds()
		sum.TotalTraversed += res.TraversedEdges
		if sum.MinTEPS < 0 || teps < sum.MinTEPS {
			sum.MinTEPS = teps
		}
		if teps > sum.MaxTEPS {
			sum.MaxTEPS = teps
		}
	}
	n := float64(len(roots))
	sum.MeanTEPS /= n
	sum.MeanSeconds /= n
	sum.HarmonicTEPS = n / invSum
	return sum, nil
}

// DegreeHistogram returns log2-binned degree counts for the graph
// (bin 0 = isolated vertices; bin k>0 = degrees in [2^(k-1), 2^k)),
// regenerating the Figure 2 distribution.
func DegreeHistogram(g Graph) []int64 {
	return rmat.DegreeHistogram(rmat.Degrees(g.NumVertices, g.Edges))
}

// Validate checks a parent array against the Graph 500 specification.
func Validate(g Graph, root int64, parent []int64) error {
	_, err := validate.BFS(g.NumVertices, g.Edges, root, parent)
	return err
}
