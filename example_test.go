package graph500_test

import (
	"fmt"
	"log"

	graph500 "repro"
)

// The canonical flow: generate a Graph 500 graph, partition it with 3-level
// degree-aware 1.5D partitioning, traverse, and validate.
func Example() {
	g := graph500.Generate(graph500.GenConfig{Scale: 12, Seed: 42})
	r, err := graph500.New(g, graph500.Config{Ranks: 4})
	if err != nil {
		log.Fatal(err)
	}
	roots, err := r.SampleRoots(1, 7)
	if err != nil {
		log.Fatal(err)
	}
	res, err := r.RunValidated(roots[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("validated:", res.Parent[res.Root] == res.Root)
	// Output: validated: true
}

// Degree thresholds control the E/H/L classification; the partitioner
// reports how many vertices land in each hub class.
func ExampleNew_thresholds() {
	g := graph500.FromEdges(8, []graph500.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4},
		{U: 0, V: 5}, {U: 0, V: 6}, {U: 1, V: 2}, {U: 1, V: 3},
	})
	r, err := graph500.New(g, graph500.Config{
		Ranks:      2,
		Thresholds: graph500.Thresholds{E: 6, H: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	hubs := r.Engine.Part.Hubs
	fmt.Printf("E=%d H=%d\n", hubs.NumE, hubs.NumH)
	// Vertex 0 has degree 6 (class E); vertex 1 has degree 4 (class H).
	// Output: E=1 H=1
}

// SSSP runs the Graph 500 second kernel over the same partitioning with
// deterministic uniform edge weights.
func ExampleNewSSSP() {
	g := graph500.FromEdges(4, []graph500.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	ss, err := graph500.NewSSSP(g, graph500.Config{Ranks: 2, Thresholds: graph500.Thresholds{E: 99, H: 9}}, 5)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ss.RunValidated(0)
	if err != nil {
		log.Fatal(err)
	}
	// The path distance accumulates the three edge weights exactly.
	want := ss.EdgeWeight(0, 1) + ss.EdgeWeight(1, 2) + ss.EdgeWeight(2, 3)
	fmt.Println("additive:", res.Dist[3] == want)
	// Output: additive: true
}

// Validate rejects forged results.
func ExampleValidate() {
	g := graph500.FromEdges(3, []graph500.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	good := []int64{0, 0, 1}
	bad := []int64{0, 0, 0} // claims edge (0,2), which does not exist
	fmt.Println("good:", graph500.Validate(g, 0, good) == nil)
	fmt.Println("bad:", graph500.Validate(g, 0, bad) == nil)
	// Output:
	// good: true
	// bad: false
}
