// Package checkpoint is the durable two-tier store behind fail-stop
// recovery. The insight (shared with the SC'11 distributed-memory BFS line of
// work) is that the partitioned graph is enormous and immutable while the
// per-iteration traversal state is tiny and churning, so the two deserve
// different tiers:
//
//   - the graph tier — layout metadata plus every rank's partitioned
//     CSRs and delegation tables — is written once, right after
//     partitioning, under <dir>/graph/;
//   - the delta tier — per-iteration frontier/parent/visited increments —
//     is written continuously during a run, one directory per run scope
//     under <dir>/runs/<scope>/rank-NNNN/, by an asynchronous
//     double-buffered Writer that never blocks the BFS kernels.
//
// Every segment on disk is CRC-32 checked and committed by atomic rename, so
// a torn write (power cut mid-segment) is detected at read time — the reader
// surfaces ErrCheckpointCorrupt and recovery falls back to the previous
// complete iteration instead of consuming garbage.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// ErrCheckpointCorrupt marks a segment that failed its integrity checks:
// truncated header or payload, bad magic, CRC mismatch, or an undecodable
// payload. Match with errors.Is.
var ErrCheckpointCorrupt = errors.New("checkpoint: segment corrupt")

// Segment kinds.
const (
	kindGraphMeta byte = iota + 1
	kindRankGraph
	kindDelta
)

// Segment wire format, little-endian:
//
//	[0:4)   magic "CPK1"
//	[4]     kind
//	[5:9)   rank
//	[9:17)  iteration (int64; -1 for the bootstrap delta, 0 for graph tiers)
//	[17:21) payload length
//	[21:n)  gob payload
//	[n:n+4) CRC-32 (IEEE) over bytes [0:n)
const (
	segMagic   = 0x314b5043 // "CPK1"
	headerSize = 21
)

func encodeSegment(kind byte, rank int, iter int64, payload any) ([]byte, error) {
	var pb bytes.Buffer
	if err := gob.NewEncoder(&pb).Encode(payload); err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	out := make([]byte, headerSize, headerSize+pb.Len()+4)
	binary.LittleEndian.PutUint32(out[0:], segMagic)
	out[4] = kind
	binary.LittleEndian.PutUint32(out[5:], uint32(rank))
	binary.LittleEndian.PutUint64(out[9:], uint64(iter))
	binary.LittleEndian.PutUint32(out[17:], uint32(pb.Len()))
	out = append(out, pb.Bytes()...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out)), nil
}

// commit writes data next to path and renames it into place, the atomic
// publish that guarantees a reader never sees a half-written segment under
// the final name — a torn write leaves only a stale .tmp behind.
func commit(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func corruptErr(path, msg string) error {
	return fmt.Errorf("%s: %s: %w", path, msg, ErrCheckpointCorrupt)
}

// readSegment loads and verifies one segment, decoding its payload into
// payload (a pointer). It returns the payload's iteration stamp and the
// segment's on-disk size.
func readSegment(path string, wantKind byte, wantRank int, payload any) (iter int64, size int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	size = int64(len(data))
	if len(data) < headerSize+4 {
		return 0, size, corruptErr(path, "truncated header")
	}
	if binary.LittleEndian.Uint32(data[0:]) != segMagic {
		return 0, size, corruptErr(path, "bad magic")
	}
	if data[4] != wantKind {
		return 0, size, corruptErr(path, fmt.Sprintf("segment kind %d, want %d", data[4], wantKind))
	}
	if r := int(binary.LittleEndian.Uint32(data[5:])); r != wantRank {
		return 0, size, corruptErr(path, fmt.Sprintf("segment for rank %d, want %d", r, wantRank))
	}
	plen := int(binary.LittleEndian.Uint32(data[17:]))
	if len(data) != headerSize+plen+4 {
		return 0, size, corruptErr(path, "truncated payload")
	}
	body := data[:headerSize+plen]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[headerSize+plen:]) {
		return 0, size, corruptErr(path, "crc mismatch")
	}
	if err := gob.NewDecoder(bytes.NewReader(data[headerSize : headerSize+plen])).Decode(payload); err != nil {
		return 0, size, corruptErr(path, "payload decode: "+err.Error())
	}
	return int64(binary.LittleEndian.Uint64(data[9:])), size, nil
}

// Store is a checkpoint directory.
type Store struct {
	dir string
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "graph"), filepath.Join(dir, "runs")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// GraphMeta identifies the partitioning a graph tier was written for, so a
// store can be safely shared across engines: a mismatch means "repartition
// happened, rewrite the tier".
type GraphMeta struct {
	N          int64
	Ranks      int
	MeshRows   int
	MeshCols   int
	PerRank    int64
	NumE, NumH int
	ThreshE    int64
	ThreshH    int64
}

func (s *Store) graphMetaPath() string { return filepath.Join(s.dir, "graph", "meta.ckpt") }

func (s *Store) rankGraphPath(rank int) string {
	return filepath.Join(s.dir, "graph", fmt.Sprintf("rank-%04d.ckpt", rank))
}

// HasGraph reports whether a valid graph tier matching meta is present.
func (s *Store) HasGraph(meta GraphMeta) bool {
	var got GraphMeta
	if _, _, err := readSegment(s.graphMetaPath(), kindGraphMeta, 0, &got); err != nil {
		return false
	}
	return got == meta
}

// WriteGraphMeta commits the graph tier's identity segment.
func (s *Store) WriteGraphMeta(meta GraphMeta) (int64, error) {
	data, err := encodeSegment(kindGraphMeta, 0, 0, &meta)
	if err != nil {
		return 0, err
	}
	return int64(len(data)), commit(s.graphMetaPath(), data)
}

// WriteRankGraph commits one rank's partitioned graph (any gob-encodable
// value; the engine stores its *partition.RankGraph).
func (s *Store) WriteRankGraph(rank int, rg any) (int64, error) {
	data, err := encodeSegment(kindRankGraph, rank, 0, rg)
	if err != nil {
		return 0, err
	}
	return int64(len(data)), commit(s.rankGraphPath(rank), data)
}

// ReadRankGraph loads and CRC-verifies one rank's graph tier into rg (a
// pointer), returning the bytes read. This is the read a replacement rank
// pays when it rejoins a restored world.
func (s *Store) ReadRankGraph(rank int, rg any) (int64, error) {
	_, size, err := readSegment(s.rankGraphPath(rank), kindRankGraph, rank, rg)
	return size, err
}

// Scope opens (creating if needed) the named run scope in the delta tier.
func (s *Store) Scope(name string) (*RunScope, error) {
	dir := filepath.Join(s.dir, "runs", name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &RunScope{name: name, dir: dir}, nil
}

// RunScope is one run's delta-tier directory: per-rank chains of iteration
// segments.
type RunScope struct {
	name string
	dir  string
}

// Name returns the scope's name.
func (sc *RunScope) Name() string { return sc.name }

// Dir returns the scope's directory.
func (sc *RunScope) Dir() string { return sc.dir }

// Remove deletes the scope and everything under it.
func (sc *RunScope) Remove() error { return os.RemoveAll(sc.dir) }

func (sc *RunScope) rankDir(rank int) string {
	return filepath.Join(sc.dir, fmt.Sprintf("rank-%04d", rank))
}

func deltaPath(rankDir string, iter int64) string {
	if iter < 0 {
		return filepath.Join(rankDir, "boot.ckpt")
	}
	return filepath.Join(rankDir, fmt.Sprintf("iter-%08d.ckpt", iter))
}

// State is one rank's complete BFS iteration state at an iteration boundary:
// the replicated hub bitmaps, the owner-local L bitmaps, both parent arrays,
// and the globally agreed counts. Iter -1 is the bootstrap state (root
// planted, no iterations run).
type State struct {
	Iter        int64
	HubFrontier []uint64
	HubVisited  []uint64
	LFrontier   []uint64
	LVisited    []uint64
	ParentHub   []int64
	ParentL     []int64
	ActiveL     int64
	VisitL      int64
}

// NewState allocates a zero State with the given word/element counts
// (parents initialized to the -1 sentinel), the starting point of a replay.
func NewState(hubWords, lWords, hubLen, lLen int) *State {
	st := &State{
		Iter:        -2,
		HubFrontier: make([]uint64, hubWords),
		HubVisited:  make([]uint64, hubWords),
		LFrontier:   make([]uint64, lWords),
		LVisited:    make([]uint64, lWords),
		ParentHub:   make([]int64, hubLen),
		ParentL:     make([]int64, lLen),
	}
	for i := range st.ParentHub {
		st.ParentHub[i] = -1
	}
	for i := range st.ParentL {
		st.ParentL[i] = -1
	}
	return st
}

// WordDelta is one changed word of a bitmap: replay assigns Word at Idx.
type WordDelta struct {
	Idx  int32
	Word uint64
}

// ParentDelta is one changed parent slot.
type ParentDelta struct {
	Idx    int32
	Parent int64
}

// Delta is the incremental payload of one iteration segment: only the words
// and parent slots that changed since the rank's previous committed segment.
// The bootstrap segment is a Delta against the all-zero / all minus-one
// state, which makes replay a single uniform fold.
type Delta struct {
	Iter        int64
	HubFrontier []WordDelta
	HubVisited  []WordDelta
	LFrontier   []WordDelta
	LVisited    []WordDelta
	ParentHub   []ParentDelta
	ParentL     []ParentDelta
	ActiveL     int64
	VisitL      int64
}

func (st *State) apply(d *Delta) {
	st.Iter = d.Iter
	for _, w := range d.HubFrontier {
		st.HubFrontier[w.Idx] = w.Word
	}
	for _, w := range d.HubVisited {
		st.HubVisited[w.Idx] = w.Word
	}
	for _, w := range d.LFrontier {
		st.LFrontier[w.Idx] = w.Word
	}
	for _, w := range d.LVisited {
		st.LVisited[w.Idx] = w.Word
	}
	for _, p := range d.ParentHub {
		st.ParentHub[p.Idx] = p.Parent
	}
	for _, p := range d.ParentL {
		st.ParentL[p.Idx] = p.Parent
	}
	st.ActiveL = d.ActiveL
	st.VisitL = d.VisitL
}

// chain lists a rank's committed segment iterations in ascending order
// (boot = -1 first), stopping at the first segment that fails verification:
// later deltas build on earlier ones, so nothing after a corrupt segment is
// usable. The returned ok is false when the rank has no valid boot segment.
func (sc *RunScope) chain(rank int) (iters []int64, ok bool) {
	rd := sc.rankDir(rank)
	entries, err := os.ReadDir(rd)
	if err != nil {
		return nil, false
	}
	var all []int64
	hasBoot := false
	for _, e := range entries {
		name := e.Name()
		if name == "boot.ckpt" {
			hasBoot = true
		} else if n, k := len(name), len("iter-00000000.ckpt"); n == k && name[:5] == "iter-" {
			var it int64
			if _, err := fmt.Sscanf(name, "iter-%08d.ckpt", &it); err == nil {
				all = append(all, it)
			}
		}
	}
	if !hasBoot {
		return nil, false
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var d Delta
	if _, _, err := readSegment(deltaPath(rd, -1), kindDelta, rank, &d); err != nil {
		return nil, false
	}
	iters = append(iters, int64(-1))
	for _, it := range all {
		d = Delta{}
		if _, _, err := readSegment(deltaPath(rd, it), kindDelta, rank, &d); err != nil {
			break
		}
		iters = append(iters, it)
	}
	return iters, true
}

// LatestComplete returns the highest iteration present and valid in EVERY
// rank's segment chain — the only iteration all ranks can consistently
// resume from. -1 means "bootstrap only". ok is false when some rank has no
// valid boot segment, i.e. the scope cannot seed a resume at all and the
// engine must restart the traversal from the root.
func (sc *RunScope) LatestComplete(ranks int) (int64, bool) {
	var common map[int64]int
	for r := 0; r < ranks; r++ {
		iters, ok := sc.chain(r)
		if !ok {
			return 0, false
		}
		if common == nil {
			common = make(map[int64]int)
		}
		for _, it := range iters {
			common[it]++
		}
	}
	best, found := int64(0), false
	for it, cnt := range common {
		if cnt == ranks && (!found || it > best) {
			best, found = it, true
		}
	}
	if !found {
		return 0, false
	}
	return best, true
}

// Replay folds rank's segment chain up to and including iteration upTo into
// a fresh State, returning the bytes read. Segments beyond upTo are ignored.
// upTo must come from LatestComplete (or be -1 for bootstrap-only).
func (sc *RunScope) Replay(rank int, upTo int64, hubWords, lWords, hubLen, lLen int) (*State, int64, error) {
	iters, ok := sc.chain(rank)
	if !ok {
		return nil, 0, fmt.Errorf("checkpoint: rank %d has no valid boot segment in scope %s: %w",
			rank, sc.name, ErrCheckpointCorrupt)
	}
	if last := iters[len(iters)-1]; last < upTo {
		return nil, 0, fmt.Errorf("checkpoint: rank %d chain stops at %d, want %d: %w",
			rank, last, upTo, ErrCheckpointCorrupt)
	}
	st := NewState(hubWords, lWords, hubLen, lLen)
	var bytes int64
	applied := false
	rd := sc.rankDir(rank)
	for _, it := range iters {
		if it > upTo {
			break
		}
		var d Delta
		_, size, err := readSegment(deltaPath(rd, it), kindDelta, rank, &d)
		if err != nil {
			return nil, bytes, err // chain() verified these; only racy corruption lands here
		}
		bytes += size
		st.apply(&d)
		applied = true
	}
	if !applied || st.Iter != upTo {
		return nil, bytes, fmt.Errorf("checkpoint: rank %d chain stops at %d, want %d: %w",
			rank, st.Iter, upTo, ErrCheckpointCorrupt)
	}
	return st, bytes, nil
}

// Truncate removes rank's segments beyond iteration after (exclusive),
// including unverifiable ones: on resume the engine re-executes those
// iterations and rewrites the chain, and a stale or torn tail must not
// shadow the rewrite.
func (sc *RunScope) Truncate(rank int, after int64) error {
	rd := sc.rankDir(rank)
	entries, err := os.ReadDir(rd)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		var it int64
		if _, err := fmt.Sscanf(e.Name(), "iter-%08d.ckpt", &it); err == nil && it > after {
			if err := os.Remove(filepath.Join(rd, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}
