package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

const (
	hubWords = 2
	lWords   = 4
	hubLen   = 100
	lLen     = 200
)

func openScope(t *testing.T) (*Store, *RunScope) {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.Scope("run")
	if err != nil {
		t.Fatal(err)
	}
	return s, sc
}

// writeChain commits a bootstrap segment plus iterations 0..upTo-1 through a
// Writer, mutating the state a little every iteration, and returns the final
// state for comparison.
func writeChain(t *testing.T, sc *RunScope, rank int, upTo int) *State {
	t.Helper()
	w, err := NewWriter(sc, rank, hubWords, lWords, hubLen, lLen, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cur := NewState(hubWords, lWords, hubLen, lLen)
	post := func(iter int64) {
		if !w.Checkpoint(iter, true, cur.HubFrontier, cur.HubVisited, cur.LFrontier, cur.LVisited,
			cur.ParentHub, cur.ParentL, cur.ActiveL, cur.VisitL) {
			t.Fatalf("mandatory capture of iter %d dropped", iter)
		}
	}
	cur.HubFrontier[0] = 1
	cur.ParentHub[0] = 7
	post(-1)
	for it := 0; it < upTo; it++ {
		cur.HubFrontier[it%hubWords] ^= 1 << uint(it)
		cur.HubVisited[it%hubWords] |= 1 << uint(it)
		cur.LFrontier[it%lWords] = uint64(it * 3)
		cur.LVisited[it%lWords] |= uint64(it + 1)
		cur.ParentHub[it%hubLen] = int64(it)
		cur.ParentL[it%lLen] = int64(it * 2)
		cur.ActiveL = int64(it + 10)
		cur.VisitL += int64(it + 10)
		post(int64(it))
	}
	ws := w.Close()
	if ws.Segments != int64(upTo)+1 {
		t.Fatalf("writer committed %d segments, want %d", ws.Segments, upTo+1)
	}
	if ws.Errors != 0 || ws.Dropped != 0 {
		t.Fatalf("writer stats %+v, want no errors/drops", ws)
	}
	return cur
}

func sameState(t *testing.T, got, want *State) {
	t.Helper()
	if got.Iter != want.Iter || got.ActiveL != want.ActiveL || got.VisitL != want.VisitL {
		t.Fatalf("scalars: got (%d,%d,%d), want (%d,%d,%d)",
			got.Iter, got.ActiveL, got.VisitL, want.Iter, want.ActiveL, want.VisitL)
	}
	for i := range want.HubFrontier {
		if got.HubFrontier[i] != want.HubFrontier[i] || got.HubVisited[i] != want.HubVisited[i] {
			t.Fatalf("hub word %d differs", i)
		}
	}
	for i := range want.LFrontier {
		if got.LFrontier[i] != want.LFrontier[i] || got.LVisited[i] != want.LVisited[i] {
			t.Fatalf("L word %d differs", i)
		}
	}
	for i := range want.ParentHub {
		if got.ParentHub[i] != want.ParentHub[i] {
			t.Fatalf("parentHub[%d] = %d, want %d", i, got.ParentHub[i], want.ParentHub[i])
		}
	}
	for i := range want.ParentL {
		if got.ParentL[i] != want.ParentL[i] {
			t.Fatalf("parentL[%d] = %d, want %d", i, got.ParentL[i], want.ParentL[i])
		}
	}
}

func TestWriterReplayRoundTrip(t *testing.T) {
	_, sc := openScope(t)
	want := writeChain(t, sc, 0, 6)
	want.Iter = 5
	got, n, err := sc.Replay(0, 5, hubWords, lWords, hubLen, lLen)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatal("replay read zero bytes")
	}
	sameState(t, got, want)
	// Replaying a prefix stops exactly at the requested iteration.
	mid, _, err := sc.Replay(0, 2, hubWords, lWords, hubLen, lLen)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Iter != 2 {
		t.Fatalf("prefix replay stopped at %d, want 2", mid.Iter)
	}
}

func TestLatestCompleteIsIntersection(t *testing.T) {
	_, sc := openScope(t)
	writeChain(t, sc, 0, 6)
	writeChain(t, sc, 1, 4) // rank 1 committed less
	it, ok := sc.LatestComplete(2)
	if !ok || it != 3 {
		t.Fatalf("LatestComplete = (%d, %v), want (3, true)", it, ok)
	}
	// A rank without a boot segment poisons the whole scope.
	if _, ok := sc.LatestComplete(3); ok {
		t.Fatal("scope with a bootless rank reported resumable")
	}
}

func segPath(sc *RunScope, rank int, iter int64) string {
	return deltaPath(sc.rankDir(rank), iter)
}

func TestTruncatedSegmentFallsBackOneIteration(t *testing.T) {
	_, sc := openScope(t)
	writeChain(t, sc, 0, 6)
	// Tear the newest segment: chop it mid-payload, as a crash during a
	// non-atomic filesystem would.
	p := segPath(sc, 0, 5)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	it, ok := sc.LatestComplete(1)
	if !ok || it != 4 {
		t.Fatalf("after torn write LatestComplete = (%d, %v), want (4, true)", it, ok)
	}
	// Asking for the torn iteration anyway surfaces the typed corruption.
	if _, _, err := sc.Replay(0, 5, hubWords, lWords, hubLen, lLen); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("replay past torn segment: %v, want ErrCheckpointCorrupt", err)
	}
}

func TestBitFlipFallsBackOneIteration(t *testing.T) {
	_, sc := openScope(t)
	writeChain(t, sc, 0, 6)
	p := segPath(sc, 0, 5)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10 // flip one payload bit; CRC must catch it
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if it, ok := sc.LatestComplete(1); !ok || it != 4 {
		t.Fatalf("after bit flip LatestComplete = (%d, %v), want (4, true)", it, ok)
	}
	if _, _, err := sc.Replay(0, 5, hubWords, lWords, hubLen, lLen); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("replay of flipped segment: %v, want ErrCheckpointCorrupt", err)
	}
	// The surviving prefix still replays cleanly.
	if _, _, err := sc.Replay(0, 4, hubWords, lWords, hubLen, lLen); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptMidChainPoisonsTail(t *testing.T) {
	_, sc := openScope(t)
	writeChain(t, sc, 0, 6)
	p := segPath(sc, 0, 2)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+1] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Deltas build on each other: everything at or past the corrupt segment
	// is unusable, valid-looking files notwithstanding.
	if it, ok := sc.LatestComplete(1); !ok || it != 1 {
		t.Fatalf("LatestComplete = (%d, %v), want (1, true)", it, ok)
	}
}

func TestTruncateRemovesTail(t *testing.T) {
	_, sc := openScope(t)
	writeChain(t, sc, 0, 6)
	if err := sc.Truncate(0, 2); err != nil {
		t.Fatal(err)
	}
	for it := int64(3); it < 6; it++ {
		if _, err := os.Stat(segPath(sc, 0, it)); !os.IsNotExist(err) {
			t.Fatalf("segment for iter %d survived truncation", it)
		}
	}
	if it, ok := sc.LatestComplete(1); !ok || it != 2 {
		t.Fatalf("LatestComplete = (%d, %v), want (2, true)", it, ok)
	}
}

func TestWriterResumeSeedsShadow(t *testing.T) {
	_, sc := openScope(t)
	writeChain(t, sc, 0, 4)
	if err := sc.Truncate(0, 1); err != nil {
		t.Fatal(err)
	}
	resume, _, err := sc.Replay(0, 1, hubWords, lWords, hubLen, lLen)
	if err != nil {
		t.Fatal(err)
	}
	// A post-resume writer diffs against the replayed state: re-committing
	// identical state for iteration 2 must produce an (almost) empty delta
	// that still replays to the same result.
	w, err := NewWriter(sc, 0, hubWords, lWords, hubLen, lLen, resume, nil)
	if err != nil {
		t.Fatal(err)
	}
	cur := NewState(hubWords, lWords, hubLen, lLen)
	if err := copyState(cur, resume); err != nil {
		t.Fatal(err)
	}
	cur.LVisited[0] |= 1 << 40
	cur.ActiveL = 99
	w.Checkpoint(2, true, cur.HubFrontier, cur.HubVisited, cur.LFrontier, cur.LVisited,
		cur.ParentHub, cur.ParentL, cur.ActiveL, cur.VisitL)
	w.Close()
	got, _, err := sc.Replay(0, 2, hubWords, lWords, hubLen, lLen)
	if err != nil {
		t.Fatal(err)
	}
	cur.Iter = 2
	sameState(t, got, cur)
}

func TestGraphTierRoundTripAndIdentity(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta := GraphMeta{N: 1 << 10, Ranks: 4, MeshRows: 2, MeshCols: 2, PerRank: 256, NumE: 3, NumH: 17, ThreshE: 128, ThreshH: 16}
	if s.HasGraph(meta) {
		t.Fatal("empty store claims a graph tier")
	}
	type fakeGraph struct {
		Rank   int
		LocalN int
		Rows   []int32
	}
	for r := 0; r < 4; r++ {
		if _, err := s.WriteRankGraph(r, &fakeGraph{Rank: r, LocalN: 256, Rows: []int32{1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.WriteGraphMeta(meta); err != nil {
		t.Fatal(err)
	}
	if !s.HasGraph(meta) {
		t.Fatal("written graph tier not recognized")
	}
	other := meta
	other.ThreshH = 99
	if s.HasGraph(other) {
		t.Fatal("mismatched partitioning accepted")
	}
	var rg fakeGraph
	n, err := s.ReadRankGraph(2, &rg)
	if err != nil || n <= 0 {
		t.Fatalf("ReadRankGraph: n=%d err=%v", n, err)
	}
	if rg.Rank != 2 || rg.LocalN != 256 {
		t.Fatalf("rank graph decoded wrong: %+v", rg)
	}
	// Rank mismatch (wrong file under the right name) is corruption.
	a := filepath.Join(s.Dir(), "graph", "rank-0001.ckpt")
	b := filepath.Join(s.Dir(), "graph", "rank-0002.ckpt")
	data, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(a, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadRankGraph(1, &rg); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("cross-rank segment read: %v, want ErrCheckpointCorrupt", err)
	}
}

func TestCommitIsAtomicRename(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "seg.ckpt")
	if err := commit(p, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("tmp file left behind after commit")
	}
	got, err := os.ReadFile(p)
	if err != nil || string(got) != "hello" {
		t.Fatalf("committed contents %q err=%v", got, err)
	}
}
