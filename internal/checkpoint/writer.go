package checkpoint

import (
	"fmt"
	"os"
	"sync/atomic"

	"repro/internal/trace"
)

// WriterStats summarizes one Writer's lifetime.
type WriterStats struct {
	Segments int64 // delta segments committed
	Bytes    int64 // bytes committed
	Dropped  int64 // captures skipped because both buffers were in flight
	Errors   int64 // segments that failed to encode or commit
}

// Writer checkpoints one rank's iteration state asynchronously. The caller
// copies its live state into one of two capture buffers (the only
// synchronous cost — a memcpy of the bitmap words and parent arrays) and the
// writer goroutine does everything expensive off the critical path: diffing
// the capture against its shadow of the last committed state, gob-encoding
// the sparse delta, and committing the CRC'd segment by atomic rename. When
// both buffers are still in flight a non-mandatory capture is dropped rather
// than blocking a kernel — the delta chain stays consistent because diffs
// are always taken against the last *committed* state, so the next capture
// simply carries the skipped iteration's changes too.
type Writer struct {
	rank    int
	rankDir string
	free    chan *State
	work    chan *State
	done    chan struct{}

	segments, bytes, dropped, errs atomic.Int64

	shadow *State        // writer-goroutine-owned after start
	tr     *trace.Stream // writer-goroutine-owned span stream; nil when tracing is off
}

// NewWriter builds the writer for rank inside scope. The size arguments fix
// the capture-buffer geometry. resume, when non-nil, seeds the shadow with
// the state of the rank's last committed segment (the state a replay
// produced) so post-resume diffs chain correctly; nil means a fresh chain
// whose first capture must be the bootstrap (Iter -1) state. tr, when
// non-nil, receives one "commit" span per committed segment; it must be a
// stream dedicated to this writer (the writer goroutine is its single
// writer).
func NewWriter(sc *RunScope, rank int, hubWords, lWords, hubLen, lLen int, resume *State, tr *trace.Stream) (*Writer, error) {
	rd := sc.rankDir(rank)
	if err := os.MkdirAll(rd, 0o755); err != nil {
		return nil, err
	}
	w := &Writer{
		rank:    rank,
		rankDir: rd,
		free:    make(chan *State, 2),
		work:    make(chan *State, 2),
		done:    make(chan struct{}),
		shadow:  NewState(hubWords, lWords, hubLen, lLen),
		tr:      tr,
	}
	w.free <- NewState(hubWords, lWords, hubLen, lLen)
	w.free <- NewState(hubWords, lWords, hubLen, lLen)
	if resume != nil {
		if err := copyState(w.shadow, resume); err != nil {
			return nil, err
		}
		w.shadow.Iter = resume.Iter
	}
	go w.loop()
	return w, nil
}

func copyState(dst, src *State) error {
	if len(dst.HubFrontier) != len(src.HubFrontier) || len(dst.LFrontier) != len(src.LFrontier) ||
		len(dst.ParentHub) != len(src.ParentHub) || len(dst.ParentL) != len(src.ParentL) {
		return fmt.Errorf("checkpoint: state geometry mismatch")
	}
	copy(dst.HubFrontier, src.HubFrontier)
	copy(dst.HubVisited, src.HubVisited)
	copy(dst.LFrontier, src.LFrontier)
	copy(dst.LVisited, src.LVisited)
	copy(dst.ParentHub, src.ParentHub)
	copy(dst.ParentL, src.ParentL)
	dst.ActiveL, dst.VisitL = src.ActiveL, src.VisitL
	return nil
}

// Checkpoint captures the rank's state as of completing iteration iter and
// queues it for committing. It returns false if the capture was dropped
// (both buffers busy and must was false). must blocks for a buffer instead —
// used for the bootstrap segment, without which a chain is worthless.
func (w *Writer) Checkpoint(iter int64, must bool,
	hubFrontier, hubVisited, lFrontier, lVisited []uint64,
	parentHub, parentL []int64, activeL, visitL int64) bool {
	var buf *State
	if must {
		buf = <-w.free
	} else {
		select {
		case buf = <-w.free:
		default:
			w.dropped.Add(1)
			return false
		}
	}
	buf.Iter = iter
	copy(buf.HubFrontier, hubFrontier)
	copy(buf.HubVisited, hubVisited)
	copy(buf.LFrontier, lFrontier)
	copy(buf.LVisited, lVisited)
	copy(buf.ParentHub, parentHub)
	copy(buf.ParentL, parentL)
	buf.ActiveL, buf.VisitL = activeL, visitL
	w.work <- buf
	return true
}

// Close drains pending captures, stops the writer goroutine and returns the
// lifetime stats. The Writer must not be used afterwards.
func (w *Writer) Close() WriterStats {
	close(w.work)
	<-w.done
	return WriterStats{
		Segments: w.segments.Load(),
		Bytes:    w.bytes.Load(),
		Dropped:  w.dropped.Load(),
		Errors:   w.errs.Load(),
	}
}

func (w *Writer) loop() {
	defer close(w.done)
	for buf := range w.work {
		var t0 int64
		if w.tr != nil {
			t0 = w.tr.Now()
		}
		d := diffStates(w.shadow, buf)
		data, err := encodeSegment(kindDelta, w.rank, buf.Iter, &d)
		if err == nil {
			err = commit(deltaPath(w.rankDir, buf.Iter), data)
		}
		if err != nil {
			// Leave the shadow untouched: the next capture's diff then
			// re-carries this one's changes, keeping the on-disk chain
			// consistent (just with a gap, like a dropped capture).
			w.errs.Add(1)
		} else {
			w.segments.Add(1)
			w.bytes.Add(int64(len(data)))
			w.shadow.apply(&d)
		}
		if w.tr != nil {
			sp := trace.Span{Kind: trace.KindCheckpoint, Iter: buf.Iter, Step: -1,
				Name: "commit", Start: t0, Dur: w.tr.Now() - t0, Bytes: int64(len(data))}
			if err != nil {
				sp.Err = 1
			}
			w.tr.Emit(sp)
		}
		w.free <- buf
	}
}

func diffWords(shadow, cur []uint64) []WordDelta {
	var out []WordDelta
	for i, w := range cur {
		if shadow[i] != w {
			out = append(out, WordDelta{Idx: int32(i), Word: w})
		}
	}
	return out
}

func diffParents(shadow, cur []int64) []ParentDelta {
	var out []ParentDelta
	for i, p := range cur {
		if shadow[i] != p {
			out = append(out, ParentDelta{Idx: int32(i), Parent: p})
		}
	}
	return out
}

func diffStates(shadow, cur *State) Delta {
	return Delta{
		Iter:        cur.Iter,
		HubFrontier: diffWords(shadow.HubFrontier, cur.HubFrontier),
		HubVisited:  diffWords(shadow.HubVisited, cur.HubVisited),
		LFrontier:   diffWords(shadow.LFrontier, cur.LFrontier),
		LVisited:    diffWords(shadow.LVisited, cur.LVisited),
		ParentHub:   diffParents(shadow.ParentHub, cur.ParentHub),
		ParentL:     diffParents(shadow.ParentL, cur.ParentL),
		ActiveL:     cur.ActiveL,
		VisitL:      cur.VisitL,
	}
}
