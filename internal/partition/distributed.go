package partition

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/rmat"
)

// BuildDistributed constructs the same partitioning as Build, but with the
// paper's distributed preprocessing discipline (Section 5, "in-place global
// sort"): each rank starts from only its own shard of the edge list, degrees
// are combined with one vector sum-reduce, placement records route straight
// to their destination rank with one alltoallv per component, and each rank
// sorts and assembles only what it will own. No rank ever materializes the
// whole edge list — the property that lets the real system preprocess a
// graph occupying nearly all of main memory.
//
// All ranks of the world must call it collectively, each with its shard;
// every rank returns the full Partitioned handle (rank graphs are shared
// read-only structures, as with Build).
func BuildDistributed(world *comm.World, n int64, shard func(rank int) []rmat.Edge, th Thresholds) (*Partitioned, error) {
	if err := th.Validate(); err != nil {
		return nil, err
	}
	mesh := world.Mesh()
	layout := NewLayout(n, mesh)
	p := mesh.Size()
	ranks := make([]*RankGraph, p)
	degreesOut := make([][]int64, p)
	errs := make([]error, p)
	world.Run(func(r *comm.Rank) {
		edges := shard(r.ID)
		// Phase 1: global degrees via one vector sum-reduce of the local
		// histograms.
		degrees := make([]int64, n)
		for _, e := range edges {
			if e.U == e.V {
				continue
			}
			degrees[e.U]++
			degrees[e.V]++
		}
		comm.Must0(comm.AllreduceSumInt64Vec(r.World, degrees))
		degreesOut[r.ID] = degrees
		// Phase 2: every rank computes the identical hub directory from the
		// identical degree vector.
		hubs, err := BuildHubDir(degrees, th)
		if err != nil {
			errs[r.ID] = err
			// Still participate in the collectives below with empty data so
			// the world does not deadlock.
			hubs = &HubDir{}
		}
		// Phase 3: route placement records from the local shard to their
		// destination ranks.
		rb := make([]rankBuf, p)
		if errs[r.ID] == nil {
			for _, e := range edges {
				if e.U == e.V {
					continue
				}
				placeDirected(e.U, e.V, layout, hubs, rb)
				placeDirected(e.V, e.U, layout, hubs, rb)
			}
		}
		mine := exchangeRecords(r, rb, p)
		// Phase 4: assemble this rank's CSRs from its received records.
		if errs[r.ID] == nil {
			ranks[r.ID] = assembleRank(r.ID, layout, []rankBuf{mine}, new(int64))
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	part := &Partitioned{Layout: layout, Hubs: nil, Ranks: ranks, Degrees: degreesOut[0]}
	// Rebuild the (identical) hub directory once for the shared handle.
	hubs, err := BuildHubDir(part.Degrees, th)
	if err != nil {
		return nil, fmt.Errorf("partition: hub directory rebuild: %w", err)
	}
	part.Hubs = hubs
	return part, nil
}

// exchangeRecords alltoallvs each component's placement records and returns
// the concatenated records destined for this rank.
func exchangeRecords(r *comm.Rank, rb []rankBuf, p int) rankBuf {
	var mine rankBuf
	{
		send := make([][]hubHubRec, p)
		for q := range send {
			send[q] = rb[q].eh
		}
		for _, part := range comm.Must(comm.Alltoallv(r.World, send)) {
			mine.eh = append(mine.eh, part...)
		}
	}
	{
		send := make([][]hubLocRec, p)
		for q := range send {
			send[q] = rb[q].e2l
		}
		for _, part := range comm.Must(comm.Alltoallv(r.World, send)) {
			mine.e2l = append(mine.e2l, part...)
		}
	}
	{
		send := make([][]hubRemRec, p)
		for q := range send {
			send[q] = rb[q].h2l
		}
		for _, part := range comm.Must(comm.Alltoallv(r.World, send)) {
			mine.h2l = append(mine.h2l, part...)
		}
	}
	{
		send := make([][]locHubRec, p)
		for q := range send {
			send[q] = rb[q].l2e
		}
		for _, part := range comm.Must(comm.Alltoallv(r.World, send)) {
			mine.l2e = append(mine.l2e, part...)
		}
	}
	{
		send := make([][]locHubRec, p)
		for q := range send {
			send[q] = rb[q].l2h
		}
		for _, part := range comm.Must(comm.Alltoallv(r.World, send)) {
			mine.l2h = append(mine.l2h, part...)
		}
	}
	{
		send := make([][]locLocRec, p)
		for q := range send {
			send[q] = rb[q].l2l
		}
		for _, part := range comm.Must(comm.Alltoallv(r.World, send)) {
			mine.l2l = append(mine.l2l, part...)
		}
	}
	return mine
}
