// Package partition implements the paper's primary contribution: 3-level
// degree-aware 1.5D graph partitioning (Section 4.1). Vertices are classified
// by degree into Extremely heavy (E, delegated on all ranks), Heavy (H,
// delegated on mesh rows and columns), and Light (L, owned 1D-style), and the
// undirected edge set splits into six directed components — EH2EH (2D
// partitioned over the mesh), E2L, L2E, H2L, L2H, and L2L — each stored where
// its traversal kernel needs it.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/rmat"
	"repro/internal/topology"
)

// Class is a vertex degree class.
type Class uint8

// Degree classes, ordered by increasing degree level.
const (
	ClassL Class = iota // light: no delegation
	ClassH              // heavy: delegated on rows and columns
	ClassE              // extremely heavy: delegated everywhere
)

// String names the class as in the paper.
func (c Class) String() string {
	switch c {
	case ClassE:
		return "E"
	case ClassH:
		return "H"
	default:
		return "L"
	}
}

// Thresholds are the two degree cut-offs: degree ≥ E ⇒ class E;
// E > degree ≥ H ⇒ class H; otherwise L. The paper tunes these per scale
// (Section 6.2.1); the engine defaults are exposed through the public API.
type Thresholds struct {
	E int64
	H int64
}

// Validate checks E ≥ H > 0.
func (t Thresholds) Validate() error {
	if t.H <= 0 || t.E < t.H {
		return fmt.Errorf("partition: thresholds E=%d H=%d need E ≥ H > 0", t.E, t.H)
	}
	return nil
}

// ClassOf classifies a degree.
func (t Thresholds) ClassOf(deg int64) Class {
	switch {
	case deg >= t.E:
		return ClassE
	case deg >= t.H:
		return ClassH
	default:
		return ClassL
	}
}

// Layout is the block distribution of original vertex IDs over ranks:
// rank i owns the contiguous interval [i*PerRank, min((i+1)*PerRank, N)).
type Layout struct {
	N       int64
	P       int
	Mesh    topology.Mesh
	PerRank int64
}

// NewLayout builds the vertex ownership layout for n vertices on the mesh.
// PerRank is rounded up to a multiple of 64 so that each rank's local bitmap
// occupies whole 64-bit words and rank bitmaps concatenate word-aligned into
// a global frontier bitmap (the bottom-up kernels exchange raw words).
func NewLayout(n int64, mesh topology.Mesh) Layout {
	p := mesh.Size()
	per := (n + int64(p) - 1) / int64(p)
	per = (per + 63) &^ 63
	return Layout{N: n, P: p, Mesh: mesh, PerRank: per}
}

// Owner returns the owning rank of vertex v.
func (l Layout) Owner(v int64) int { return int(v / l.PerRank) }

// LocalIdx returns v's index within its owner's block.
func (l Layout) LocalIdx(v int64) int32 { return int32(v % l.PerRank) }

// GlobalOf returns the original vertex for a (rank, local index) pair.
func (l Layout) GlobalOf(rank int, idx int32) int64 {
	return int64(rank)*l.PerRank + int64(idx)
}

// LocalCount returns the number of vertices rank owns.
func (l Layout) LocalCount(rank int) int {
	lo := int64(rank) * l.PerRank
	if lo >= l.N {
		return 0
	}
	hi := lo + l.PerRank
	if hi > l.N {
		hi = l.N
	}
	return int(hi - lo)
}

// HubDir is the replicated hub directory: the E and H vertices with their new
// dense IDs. E hubs occupy [0, NumE), H hubs [NumE, NumE+NumH); within each
// class hubs are ordered by decreasing degree (ties by original ID), matching
// the paper's per-degree re-identification. The directory is small by
// construction — that is the point of the three-level scheme — so every rank
// can hold it whole.
type HubDir struct {
	Thresholds Thresholds
	NumE, NumH int
	Orig       []int64 // hub id -> original vertex
	Deg        []int64 // hub id -> degree
	hubOf      map[int64]int32
}

// BuildHubDir classifies all vertices by the thresholds; degrees[v] is the
// (undirected) degree of original vertex v.
func BuildHubDir(degrees []int64, th Thresholds) (*HubDir, error) {
	if err := th.Validate(); err != nil {
		return nil, err
	}
	d := &HubDir{Thresholds: th, hubOf: make(map[int64]int32)}
	type cand struct {
		v   int64
		deg int64
	}
	var es, hs []cand
	for v, deg := range degrees {
		switch th.ClassOf(deg) {
		case ClassE:
			es = append(es, cand{int64(v), deg})
		case ClassH:
			hs = append(hs, cand{int64(v), deg})
		}
	}
	byDeg := func(s []cand) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].deg != s[j].deg {
				return s[i].deg > s[j].deg
			}
			return s[i].v < s[j].v
		}
	}
	sort.Slice(es, byDeg(es))
	sort.Slice(hs, byDeg(hs))
	d.NumE, d.NumH = len(es), len(hs)
	d.Orig = make([]int64, 0, d.NumE+d.NumH)
	d.Deg = make([]int64, 0, d.NumE+d.NumH)
	for _, c := range es {
		d.hubOf[c.v] = int32(len(d.Orig))
		d.Orig = append(d.Orig, c.v)
		d.Deg = append(d.Deg, c.deg)
	}
	for _, c := range hs {
		d.hubOf[c.v] = int32(len(d.Orig))
		d.Orig = append(d.Orig, c.v)
		d.Deg = append(d.Deg, c.deg)
	}
	return d, nil
}

// K returns the total hub count.
func (d *HubDir) K() int { return d.NumE + d.NumH }

// HubOf returns the hub ID of original vertex v, if v is a hub.
func (d *HubDir) HubOf(v int64) (int32, bool) {
	h, ok := d.hubOf[v]
	return h, ok
}

// IsE reports whether hub id h is extremely heavy.
func (d *HubDir) IsE(h int32) bool { return int(h) < d.NumE }

// ClassOfVertex returns the class of original vertex v.
func (d *HubDir) ClassOfVertex(v int64) Class {
	h, ok := d.hubOf[v]
	if !ok {
		return ClassL
	}
	if d.IsE(h) {
		return ClassE
	}
	return ClassH
}

// RowBlockOf returns the mesh row owning hub h's destination delegation in
// the 2D EH2EH layout. Assignment is cyclic so the heavy head of the
// degree-sorted hub list spreads across rows.
func (d *HubDir) RowBlockOf(h int32, mesh topology.Mesh) int {
	return int(h) % mesh.Rows
}

// ColBlockOf returns the mesh column owning hub h's source delegation.
// The divide by Rows decorrelates it from RowBlockOf on square meshes.
func (d *HubDir) ColBlockOf(h int32, mesh topology.Mesh) int {
	return (int(h) / mesh.Rows) % mesh.Cols
}

// Component identifies one of the six edge components (paper Figure 4).
type Component int

// The six components, in the sub-iteration execution order of Section 4.2:
// higher-degree sources and destinations run earlier.
const (
	CompEH2EH Component = iota
	CompE2L
	CompH2L
	CompL2E
	CompL2H
	CompL2L
	NumComponents
)

// String returns the paper's component name.
func (c Component) String() string {
	switch c {
	case CompEH2EH:
		return "EH2EH"
	case CompE2L:
		return "E2L"
	case CompH2L:
		return "H2L"
	case CompL2E:
		return "L2E"
	case CompL2H:
		return "L2H"
	case CompL2L:
		return "L2L"
	}
	return fmt.Sprintf("component(%d)", int(c))
}

// ComponentOf returns the component of a directed edge src→dst given the two
// classes.
func ComponentOf(src, dst Class) Component {
	srcHub := src != ClassL
	dstHub := dst != ClassL
	switch {
	case srcHub && dstHub:
		return CompEH2EH
	case srcHub && !dstHub:
		if src == ClassE {
			return CompE2L
		}
		return CompH2L
	case !srcHub && dstHub:
		if dst == ClassE {
			return CompL2E
		}
		return CompL2H
	default:
		return CompL2L
	}
}

// Edge re-exports the generator's edge type for packages that consume
// partitioned graphs without importing the generator.
type Edge = rmat.Edge
