package partition

// SegmentedPull splits the EH2EH pull adjacency into nseg segments by source
// hub ID range (CG-aware core subgraph segmenting, paper Section 4.3): the
// randomly-read source activeness bit vector is cut into nseg contiguous
// slices, and each destination's source list is grouped by slice. One
// "core group" then processes one segment with its hot bitmap slice resident
// in fast memory. K is the global hub count the source IDs index into.
func (g *RankGraph) SegmentedPull(nseg, k int) []SparseCSR {
	if nseg <= 0 {
		panic("partition: SegmentedPull needs nseg > 0")
	}
	// Precompute segment boundaries so segOf agrees exactly with
	// SegmentBounds at the edges.
	bounds := make([]int32, nseg+1)
	for s := 0; s <= nseg; s++ {
		bounds[s] = int32(int64(s) * int64(k) / int64(nseg))
	}
	bounds[nseg] = int32(k)
	segOf := func(src int32) int {
		lo, hi := 0, nseg-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if bounds[mid] <= src {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo
	}
	pull := &g.EHPull
	out := make([]SparseCSR, nseg)
	// Count per (segment, dst) adjacency sizes.
	counts := make([][]int64, nseg)
	for s := range counts {
		counts[s] = make([]int64, len(pull.IDs))
	}
	for di := range pull.IDs {
		for _, src := range pull.Adj[pull.Ptr[di]:pull.Ptr[di+1]] {
			counts[segOf(src)][di]++
		}
	}
	for s := 0; s < nseg; s++ {
		var csr SparseCSR
		var total int64
		for di := range pull.IDs {
			if counts[s][di] > 0 {
				total += counts[s][di]
			}
		}
		csr.Adj = make([]int32, 0, total)
		for di, id := range pull.IDs {
			if counts[s][di] == 0 {
				continue
			}
			csr.IDs = append(csr.IDs, id)
			csr.Ptr = append(csr.Ptr, int64(len(csr.Adj)))
			for _, src := range pull.Adj[pull.Ptr[di]:pull.Ptr[di+1]] {
				if segOf(src) == s {
					csr.Adj = append(csr.Adj, src)
				}
			}
		}
		csr.Ptr = append(csr.Ptr, int64(len(csr.Adj)))
		if csr.Ptr == nil {
			csr.Ptr = []int64{0}
		}
		out[s] = csr
	}
	return out
}

// SegmentBounds returns the [lo, hi) hub range of segment s of nseg over k
// hubs, matching SegmentedPull's slicing.
func SegmentBounds(s, nseg, k int) (int32, int32) {
	lo := int64(s) * int64(k) / int64(nseg)
	hi := int64(s+1) * int64(k) / int64(nseg)
	if s == nseg-1 {
		hi = int64(k)
	}
	return int32(lo), int32(hi)
}
