package partition

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/psort"
	"repro/internal/rmat"
	"repro/internal/topology"
)

// SparseCSR is adjacency keyed by an explicit ID list: neighbors of IDs[i]
// are Adj[Ptr[i]:Ptr[i+1]]. Used for hub-keyed components, where only a few
// hubs have edges on a given rank.
type SparseCSR struct {
	IDs []int32
	Ptr []int64
	Adj []int32
}

// NumEdges returns the stored directed edge count.
func (c *SparseCSR) NumEdges() int64 { return int64(len(c.Adj)) }

// DenseCSR32 is adjacency over the rank's local vertex block with int32
// neighbor payloads (hub IDs).
type DenseCSR32 struct {
	Ptr []int64
	Adj []int32
}

// NumEdges returns the stored directed edge count.
func (c *DenseCSR32) NumEdges() int64 { return int64(len(c.Adj)) }

// DenseCSR64 is adjacency over the local block with int64 payloads
// (original vertex IDs), used by L2L.
type DenseCSR64 struct {
	Ptr []int64
	Adj []int64
}

// NumEdges returns the stored directed edge count.
func (c *DenseCSR64) NumEdges() int64 { return int64(len(c.Adj)) }

// RemoteL packs the destination of an H2L edge: the owner's mesh column and
// the local index at that owner (the owner's row equals this rank's row by
// construction, so the column suffices to address it).
type RemoteL struct {
	Col  int32
	LIdx int32
}

// HubToRemoteCSR is adjacency from hub IDs to remote L destinations.
type HubToRemoteCSR struct {
	IDs []int32
	Ptr []int64
	Adj []RemoteL
}

// NumEdges returns the stored directed edge count.
func (c *HubToRemoteCSR) NumEdges() int64 { return int64(len(c.Adj)) }

// RankGraph is one rank's share of the six components.
type RankGraph struct {
	Rank   int
	LocalN int

	EHPush SparseCSR      // EH2EH by source: src hubs in my mesh column's block
	EHPull SparseCSR      // EH2EH by destination: dst hubs in my row's block
	EToL   SparseCSR      // E2L: E hub -> local L index (at owner of L)
	HToL   HubToRemoteCSR // H2L: H hub -> L at a rank in my row
	LToE   DenseCSR32     // L2E: local L -> E hub (at owner of L)
	LToH   DenseCSR32     // L2H: local L -> H hub (at owner of L)
	L2L    DenseCSR64     // L2L: local L -> original remote vertex

	// CompEdges counts stored directed edges per component on this rank,
	// feeding the Figure 13 balance statistics.
	CompEdges [NumComponents]int64
}

// Partitioned is the full partitioning result.
type Partitioned struct {
	Layout Layout
	Hubs   *HubDir
	Ranks  []*RankGraph
	// Degrees of every original vertex (kept for root sampling and checks).
	Degrees []int64
	// Stats breaks down where Build spent its wall time, feeding the
	// report's setup block.
	Stats BuildStats
}

// BuildStats is the wall-time breakdown of Build. SortSeconds is the
// aggregate time inside the per-component grouping sorts summed across the
// concurrently assembled ranks, so it can exceed AssembleSeconds wall time.
type BuildStats struct {
	DegreesSeconds    float64
	HubDirSeconds     float64
	DistributeSeconds float64
	AssembleSeconds   float64
	SortSeconds       float64
}

// edge placement record types, accumulated per destination rank during the
// distribution pass.
type hubHubRec struct{ src, dst int32 }
type hubLocRec struct{ hub, lidx int32 }
type locHubRec struct{ lidx, hub int32 }
type hubRemRec struct {
	hub int32
	dst RemoteL
}
type locLocRec struct {
	lidx int32
	dst  int64
}

type rankBuf struct {
	eh  []hubHubRec
	e2l []hubLocRec
	h2l []hubRemRec
	l2e []locHubRec
	l2h []locHubRec
	l2l []locLocRec
}

// Build partitions the undirected edge list over the mesh with the given
// thresholds. Self loops are dropped; duplicate edges are kept (the Graph 500
// generator emits them and the kernels tolerate them).
func Build(n int64, edges []rmat.Edge, mesh topology.Mesh, th Thresholds, workers int) (*Partitioned, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	layout := NewLayout(n, mesh)
	t0 := time.Now()
	degrees := computeDegrees(n, edges, workers)
	t1 := time.Now()
	hubs, err := BuildHubDir(degrees, th)
	if err != nil {
		return nil, err
	}
	t2 := time.Now()
	p := mesh.Size()

	// Distribution pass: workers scan disjoint edge chunks, appending
	// placement records into per-worker per-rank buffers.
	bufs := make([][]rankBuf, workers)
	var wg sync.WaitGroup
	chunk := (len(edges) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(edges) {
			break
		}
		hi := lo + chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			rb := make([]rankBuf, p)
			for _, e := range edges[lo:hi] {
				if e.U == e.V {
					continue
				}
				placeDirected(e.U, e.V, layout, hubs, rb)
				placeDirected(e.V, e.U, layout, hubs, rb)
			}
			bufs[w] = rb
		}(w, lo, hi)
	}
	wg.Wait()
	t3 := time.Now()

	// Assembly pass: one goroutine per rank builds its CSRs from all
	// workers' buffers for that rank.
	ranks := make([]*RankGraph, p)
	sem := make(chan struct{}, workers)
	var sortNanos int64
	for r := 0; r < p; r++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(r int) {
			defer wg.Done()
			defer func() { <-sem }()
			var parts []rankBuf
			for w := range bufs {
				if bufs[w] != nil {
					parts = append(parts, bufs[w][r])
				}
			}
			ranks[r] = assembleRank(r, layout, parts, &sortNanos)
		}(r)
	}
	wg.Wait()
	t4 := time.Now()
	return &Partitioned{Layout: layout, Hubs: hubs, Ranks: ranks, Degrees: degrees, Stats: BuildStats{
		DegreesSeconds:    t1.Sub(t0).Seconds(),
		HubDirSeconds:     t2.Sub(t1).Seconds(),
		DistributeSeconds: t3.Sub(t2).Seconds(),
		AssembleSeconds:   t4.Sub(t3).Seconds(),
		SortSeconds:       float64(atomic.LoadInt64(&sortNanos)) / 1e9,
	}}, nil
}

func computeDegrees(n int64, edges []rmat.Edge, workers int) []int64 {
	shards := make([][]int64, workers)
	var wg sync.WaitGroup
	chunk := (len(edges) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(edges) {
			break
		}
		hi := lo + chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			local := make([]int64, n)
			for _, e := range edges[lo:hi] {
				if e.U == e.V {
					continue
				}
				local[e.U]++
				local[e.V]++
			}
			shards[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	deg := make([]int64, n)
	for _, s := range shards {
		if s == nil {
			continue
		}
		for i := range deg {
			deg[i] += s[i]
		}
	}
	return deg
}

// placeDirected routes the directed edge src→dst to its component and rank.
func placeDirected(src, dst int64, layout Layout, hubs *HubDir, rb []rankBuf) {
	hs, srcHub := hubs.HubOf(src)
	hd, dstHub := hubs.HubOf(dst)
	mesh := layout.Mesh
	switch {
	case srcHub && dstHub:
		q := mesh.RankAt(hubs.RowBlockOf(hd, mesh), hubs.ColBlockOf(hs, mesh))
		rb[q].eh = append(rb[q].eh, hubHubRec{src: hs, dst: hd})
	case srcHub && !dstHub:
		owner := layout.Owner(dst)
		lidx := layout.LocalIdx(dst)
		if hubs.IsE(hs) {
			rb[owner].e2l = append(rb[owner].e2l, hubLocRec{hub: hs, lidx: lidx})
		} else {
			q := mesh.RankAt(mesh.RowOf(owner), hubs.ColBlockOf(hs, mesh))
			rb[q].h2l = append(rb[q].h2l, hubRemRec{hub: hs, dst: RemoteL{Col: int32(mesh.ColOf(owner)), LIdx: lidx}})
		}
	case !srcHub && dstHub:
		owner := layout.Owner(src)
		lidx := layout.LocalIdx(src)
		if hubs.IsE(hd) {
			rb[owner].l2e = append(rb[owner].l2e, locHubRec{lidx: lidx, hub: hd})
		} else {
			rb[owner].l2h = append(rb[owner].l2h, locHubRec{lidx: lidx, hub: hd})
		}
	default:
		owner := layout.Owner(src)
		rb[owner].l2l = append(rb[owner].l2l, locLocRec{lidx: layout.LocalIdx(src), dst: dst})
	}
}

func assembleRank(r int, layout Layout, parts []rankBuf, sortNanos *int64) *RankGraph {
	g := &RankGraph{Rank: r, LocalN: layout.LocalCount(r)}
	// EH2EH: the same record set oriented both ways.
	var eh []hubHubRec
	for _, p := range parts {
		eh = append(eh, p.eh...)
	}
	g.EHPush = buildSparse(eh, sortNanos, func(x hubHubRec) (int32, int32) { return x.src, x.dst })
	g.EHPull = buildSparse(eh, sortNanos, func(x hubHubRec) (int32, int32) { return x.dst, x.src })
	g.CompEdges[CompEH2EH] = int64(len(eh))

	var e2l []hubLocRec
	for _, p := range parts {
		e2l = append(e2l, p.e2l...)
	}
	g.EToL = buildSparse(e2l, sortNanos, func(x hubLocRec) (int32, int32) { return x.hub, x.lidx })
	g.CompEdges[CompE2L] = int64(len(e2l))

	var h2l []hubRemRec
	for _, p := range parts {
		h2l = append(h2l, p.h2l...)
	}
	g.HToL = buildHubRemote(h2l, sortNanos)
	g.CompEdges[CompH2L] = int64(len(h2l))

	var l2e, l2h []locHubRec
	for _, p := range parts {
		l2e = append(l2e, p.l2e...)
		l2h = append(l2h, p.l2h...)
	}
	g.LToE = buildDense32(g.LocalN, l2e)
	g.LToH = buildDense32(g.LocalN, l2h)
	g.CompEdges[CompL2E] = int64(len(l2e))
	g.CompEdges[CompL2H] = int64(len(l2h))

	var l2l []locLocRec
	for _, p := range parts {
		l2l = append(l2l, p.l2l...)
	}
	g.L2L = buildDense64(g.LocalN, l2l)
	g.CompEdges[CompL2L] = int64(len(l2l))
	return g
}

// buildSparse groups records by key into a SparseCSR with sorted IDs. The
// grouping sort is the LSD radix path in psort (hub IDs and local indices
// are dense small integers, so one or two scatter passes group them);
// single-worker because the assembly pass already runs one goroutine per
// rank. The stable sort keeps adjacency in distribution order within each
// group, so the build is deterministic for a fixed worker count.
func buildSparse[T any](recs []T, sortNanos *int64, kv func(T) (key, val int32)) SparseCSR {
	if len(recs) == 0 {
		return SparseCSR{Ptr: []int64{0}}
	}
	st := time.Now()
	psort.Sorter[T]{Key: func(x T) uint64 {
		k, _ := kv(x)
		return uint64(uint32(k))
	}}.Sort(recs, 1)
	atomic.AddInt64(sortNanos, time.Since(st).Nanoseconds())
	var csr SparseCSR
	csr.Adj = make([]int32, len(recs))
	last := int32(-1)
	for i, rec := range recs {
		k, v := kv(rec)
		if k != last {
			csr.IDs = append(csr.IDs, k)
			csr.Ptr = append(csr.Ptr, int64(i))
			last = k
		}
		csr.Adj[i] = v
	}
	csr.Ptr = append(csr.Ptr, int64(len(recs)))
	return csr
}

func buildHubRemote(recs []hubRemRec, sortNanos *int64) HubToRemoteCSR {
	if len(recs) == 0 {
		return HubToRemoteCSR{Ptr: []int64{0}}
	}
	st := time.Now()
	psort.Sorter[hubRemRec]{Key: func(x hubRemRec) uint64 {
		return uint64(uint32(x.hub))
	}}.Sort(recs, 1)
	atomic.AddInt64(sortNanos, time.Since(st).Nanoseconds())
	var csr HubToRemoteCSR
	csr.Adj = make([]RemoteL, len(recs))
	last := int32(-1)
	for i, rec := range recs {
		if rec.hub != last {
			csr.IDs = append(csr.IDs, rec.hub)
			csr.Ptr = append(csr.Ptr, int64(i))
			last = rec.hub
		}
		csr.Adj[i] = rec.dst
	}
	csr.Ptr = append(csr.Ptr, int64(len(recs)))
	return csr
}

func buildDense32(n int, recs []locHubRec) DenseCSR32 {
	ptr := make([]int64, n+1)
	for _, rec := range recs {
		ptr[rec.lidx+1]++
	}
	for i := 0; i < n; i++ {
		ptr[i+1] += ptr[i]
	}
	adj := make([]int32, len(recs))
	cursor := make([]int64, n)
	copy(cursor, ptr[:n])
	for _, rec := range recs {
		adj[cursor[rec.lidx]] = rec.hub
		cursor[rec.lidx]++
	}
	return DenseCSR32{Ptr: ptr, Adj: adj}
}

func buildDense64(n int, recs []locLocRec) DenseCSR64 {
	ptr := make([]int64, n+1)
	for _, rec := range recs {
		ptr[rec.lidx+1]++
	}
	for i := 0; i < n; i++ {
		ptr[i+1] += ptr[i]
	}
	adj := make([]int64, len(recs))
	cursor := make([]int64, n)
	copy(cursor, ptr[:n])
	for _, rec := range recs {
		adj[cursor[rec.lidx]] = rec.dst
		cursor[rec.lidx]++
	}
	return DenseCSR64{Ptr: ptr, Adj: adj}
}

// TotalEdges sums stored directed edges over all ranks and components.
func (p *Partitioned) TotalEdges() int64 {
	var t int64
	for _, rg := range p.Ranks {
		for _, c := range rg.CompEdges {
			t += c
		}
	}
	return t
}

// BalanceStats summarizes per-rank edge counts for one component:
// min, max, mean — the Figure 13 distribution.
type BalanceStats struct {
	Component Component
	Min, Max  int64
	Mean      float64
	PerRank   []int64
}

// Balance computes balance statistics for every component.
func (p *Partitioned) Balance() []BalanceStats {
	out := make([]BalanceStats, NumComponents)
	for c := Component(0); c < NumComponents; c++ {
		st := BalanceStats{Component: c, Min: 1<<63 - 1}
		var sum int64
		for _, rg := range p.Ranks {
			v := rg.CompEdges[c]
			st.PerRank = append(st.PerRank, v)
			sum += v
			if v < st.Min {
				st.Min = v
			}
			if v > st.Max {
				st.Max = v
			}
		}
		st.Mean = float64(sum) / float64(len(p.Ranks))
		out[c] = st
	}
	return out
}
