package partition

import (
	"sort"
	"testing"

	"repro/internal/comm"
	"repro/internal/rmat"
	"repro/internal/topology"
)

func buildBoth(t *testing.T, scale int, mesh topology.Mesh, th Thresholds) (*Partitioned, *Partitioned) {
	t.Helper()
	cfg := rmat.Config{Scale: scale, Seed: 61}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	ref, err := Build(n, edges, mesh, th, 0)
	if err != nil {
		t.Fatal(err)
	}
	world, err := comm.NewWorld(mesh.Size(), mesh, topology.NewSunway(mesh.Size()))
	if err != nil {
		t.Fatal(err)
	}
	// Shard the edge list contiguously across ranks.
	p := mesh.Size()
	chunk := (len(edges) + p - 1) / p
	shard := func(rank int) []rmat.Edge {
		lo := rank * chunk
		if lo >= len(edges) {
			return nil
		}
		hi := lo + chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		return edges[lo:hi]
	}
	dist, err := BuildDistributed(world, n, shard, th)
	if err != nil {
		t.Fatal(err)
	}
	return ref, dist
}

func sortedCopy32(s []int32) []int32 {
	c := append([]int32(nil), s...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c
}

func TestBuildDistributedMatchesBuild(t *testing.T) {
	mesh := topology.Mesh{Rows: 2, Cols: 2}
	ref, dist := buildBoth(t, 10, mesh, Thresholds{E: 256, H: 32})
	if ref.Hubs.K() != dist.Hubs.K() || ref.Hubs.NumE != dist.Hubs.NumE {
		t.Fatalf("hub directories differ: %d/%d vs %d/%d",
			ref.Hubs.NumE, ref.Hubs.NumH, dist.Hubs.NumE, dist.Hubs.NumH)
	}
	for i := range ref.Degrees {
		if ref.Degrees[i] != dist.Degrees[i] {
			t.Fatalf("degree[%d] differs", i)
		}
	}
	for r := range ref.Ranks {
		a, b := ref.Ranks[r], dist.Ranks[r]
		for c := Component(0); c < NumComponents; c++ {
			if a.CompEdges[c] != b.CompEdges[c] {
				t.Fatalf("rank %d %v: %d vs %d edges", r, c, a.CompEdges[c], b.CompEdges[c])
			}
		}
		// Spot-check structural equality of the EH component: same IDs and,
		// per ID, the same multiset of neighbors.
		if len(a.EHPush.IDs) != len(b.EHPush.IDs) {
			t.Fatalf("rank %d: EHPush ID counts differ", r)
		}
		for i := range a.EHPush.IDs {
			if a.EHPush.IDs[i] != b.EHPush.IDs[i] {
				t.Fatalf("rank %d: EHPush IDs differ at %d", r, i)
			}
			x := sortedCopy32(a.EHPush.Adj[a.EHPush.Ptr[i]:a.EHPush.Ptr[i+1]])
			y := sortedCopy32(b.EHPush.Adj[b.EHPush.Ptr[i]:b.EHPush.Ptr[i+1]])
			if len(x) != len(y) {
				t.Fatalf("rank %d hub %d: adjacency sizes differ", r, a.EHPush.IDs[i])
			}
			for j := range x {
				if x[j] != y[j] {
					t.Fatalf("rank %d hub %d: adjacency differs", r, a.EHPush.IDs[i])
				}
			}
		}
		// L2L dense CSR: same per-vertex neighbor multisets.
		for li := 0; li < a.LocalN; li++ {
			x := append([]int64(nil), a.L2L.Adj[a.L2L.Ptr[li]:a.L2L.Ptr[li+1]]...)
			y := append([]int64(nil), b.L2L.Adj[b.L2L.Ptr[li]:b.L2L.Ptr[li+1]]...)
			sort.Slice(x, func(i, j int) bool { return x[i] < x[j] })
			sort.Slice(y, func(i, j int) bool { return y[i] < y[j] })
			if len(x) != len(y) {
				t.Fatalf("rank %d lidx %d: L2L sizes differ", r, li)
			}
			for j := range x {
				if x[j] != y[j] {
					t.Fatalf("rank %d lidx %d: L2L differs", r, li)
				}
			}
		}
	}
}

func TestBuildDistributedUnevenShards(t *testing.T) {
	// All edges on one rank's shard: routing must still place everything.
	cfg := rmat.Config{Scale: 8, Seed: 62}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	mesh := topology.Mesh{Rows: 2, Cols: 2}
	world, err := comm.NewWorld(4, mesh, topology.NewSunway(4))
	if err != nil {
		t.Fatal(err)
	}
	shard := func(rank int) []rmat.Edge {
		if rank == 3 {
			return edges
		}
		return nil
	}
	dist, err := BuildDistributed(world, n, shard, Thresholds{E: 128, H: 16})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Build(n, edges, mesh, Thresholds{E: 128, H: 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dist.TotalEdges() != ref.TotalEdges() {
		t.Fatalf("distributed build stored %d edges, reference %d", dist.TotalEdges(), ref.TotalEdges())
	}
}

func TestBuildDistributedRejectsBadThresholds(t *testing.T) {
	mesh := topology.Mesh{Rows: 1, Cols: 2}
	world, err := comm.NewWorld(2, mesh, topology.NewSunway(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildDistributed(world, 16, func(int) []rmat.Edge { return nil }, Thresholds{E: 1, H: 2}); err == nil {
		t.Fatal("invalid thresholds accepted")
	}
}
