package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/rmat"
	"repro/internal/topology"
)

func TestThresholds(t *testing.T) {
	th := Thresholds{E: 100, H: 10}
	if err := th.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		deg  int64
		want Class
	}{
		{0, ClassL}, {9, ClassL}, {10, ClassH}, {99, ClassH}, {100, ClassE}, {1 << 40, ClassE},
	}
	for _, c := range cases {
		if got := th.ClassOf(c.deg); got != c.want {
			t.Errorf("ClassOf(%d) = %v, want %v", c.deg, got, c.want)
		}
	}
	if err := (Thresholds{E: 5, H: 10}).Validate(); err == nil {
		t.Fatal("E < H should be rejected")
	}
	if err := (Thresholds{E: 5, H: 0}).Validate(); err == nil {
		t.Fatal("H = 0 should be rejected")
	}
}

func TestLayoutOwnership(t *testing.T) {
	mesh := topology.Mesh{Rows: 2, Cols: 2}
	l := NewLayout(10, mesh)
	if l.PerRank != 64 {
		t.Fatalf("PerRank = %d, want 64 (word-aligned)", l.PerRank)
	}
	big := NewLayout(1000, mesh)
	if big.PerRank != 256 {
		t.Fatalf("PerRank = %d, want 256 (ceil(1000/4)=250 rounded to 64)", big.PerRank)
	}
	// Every vertex has exactly one owner; round trips hold.
	owned := map[int64]bool{}
	for r := 0; r < 4; r++ {
		for i := 0; i < l.LocalCount(r); i++ {
			v := l.GlobalOf(r, int32(i))
			if owned[v] {
				t.Fatalf("vertex %d owned twice", v)
			}
			owned[v] = true
			if l.Owner(v) != r || l.LocalIdx(v) != int32(i) {
				t.Fatalf("round trip failed for %d", v)
			}
		}
	}
	if len(owned) != 10 {
		t.Fatalf("%d vertices owned, want 10", len(owned))
	}
}

func TestLayoutProperty(t *testing.T) {
	f := func(nRaw uint16, rows, cols uint8, vRaw uint16) bool {
		mesh := topology.Mesh{Rows: int(rows%4) + 1, Cols: int(cols%4) + 1}
		n := int64(nRaw) + int64(mesh.Size()) // at least one per rank
		l := NewLayout(n, mesh)
		v := int64(vRaw) % n
		r := l.Owner(v)
		if r < 0 || r >= l.P {
			return false
		}
		return l.GlobalOf(r, l.LocalIdx(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuildHubDirOrdering(t *testing.T) {
	degrees := []int64{5, 200, 50, 300, 7, 50}
	d, err := BuildHubDir(degrees, Thresholds{E: 100, H: 50})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumE != 2 || d.NumH != 2 {
		t.Fatalf("NumE=%d NumH=%d, want 2 and 2", d.NumE, d.NumH)
	}
	// E hubs by degree desc: vertex 3 (300), vertex 1 (200); then H: 2 and 5
	// (both 50, tie broken by id).
	wantOrig := []int64{3, 1, 2, 5}
	for i, w := range wantOrig {
		if d.Orig[i] != w {
			t.Fatalf("Orig[%d] = %d, want %d", i, d.Orig[i], w)
		}
	}
	for i, orig := range d.Orig {
		h, ok := d.HubOf(orig)
		if !ok || h != int32(i) {
			t.Fatalf("HubOf(%d) = %d,%v", orig, h, ok)
		}
	}
	if _, ok := d.HubOf(0); ok {
		t.Fatal("light vertex reported as hub")
	}
	if !d.IsE(0) || !d.IsE(1) || d.IsE(2) {
		t.Fatal("IsE boundaries wrong")
	}
	if d.ClassOfVertex(3) != ClassE || d.ClassOfVertex(2) != ClassH || d.ClassOfVertex(0) != ClassL {
		t.Fatal("ClassOfVertex wrong")
	}
}

func TestComponentOf(t *testing.T) {
	cases := []struct {
		src, dst Class
		want     Component
	}{
		{ClassE, ClassE, CompEH2EH}, {ClassE, ClassH, CompEH2EH},
		{ClassH, ClassE, CompEH2EH}, {ClassH, ClassH, CompEH2EH},
		{ClassE, ClassL, CompE2L}, {ClassH, ClassL, CompH2L},
		{ClassL, ClassE, CompL2E}, {ClassL, ClassH, CompL2H},
		{ClassL, ClassL, CompL2L},
	}
	for _, c := range cases {
		if got := ComponentOf(c.src, c.dst); got != c.want {
			t.Errorf("ComponentOf(%v,%v) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func buildSmall(t *testing.T, scale int, mesh topology.Mesh, th Thresholds) (*Partitioned, []rmat.Edge, int64) {
	t.Helper()
	cfg := rmat.Config{Scale: scale, Seed: 11}
	edges := rmat.Generate(cfg)
	p, err := Build(cfg.NumVertices(), edges, mesh, th, 4)
	if err != nil {
		t.Fatal(err)
	}
	return p, edges, cfg.NumVertices()
}

func TestBuildTilesEveryEdge(t *testing.T) {
	// The six components must exactly tile the directed version of the input
	// multigraph: total stored directed edges = 2 * (edges minus self loops).
	mesh := topology.Mesh{Rows: 2, Cols: 3}
	p, edges, _ := buildSmall(t, 10, mesh, Thresholds{E: 256, H: 32})
	var nonLoop int64
	for _, e := range edges {
		if e.U != e.V {
			nonLoop++
		}
	}
	if got := p.TotalEdges(); got != 2*nonLoop {
		t.Fatalf("stored %d directed edges, want %d", got, 2*nonLoop)
	}
}

func TestBuildComponentPlacementInvariants(t *testing.T) {
	mesh := topology.Mesh{Rows: 2, Cols: 2}
	p, _, _ := buildSmall(t, 9, mesh, Thresholds{E: 200, H: 30})
	hubs := p.Hubs
	for r, rg := range p.Ranks {
		row, col := mesh.RowOf(r), mesh.ColOf(r)
		// EHPush: all srcs in my column block, all dsts in my row block.
		for i, src := range rg.EHPush.IDs {
			if hubs.ColBlockOf(src, mesh) != col {
				t.Fatalf("rank %d: EHPush src %d not in column %d", r, src, col)
			}
			for _, dst := range rg.EHPush.Adj[rg.EHPush.Ptr[i]:rg.EHPush.Ptr[i+1]] {
				if hubs.RowBlockOf(dst, mesh) != row {
					t.Fatalf("rank %d: EHPush dst %d not in row %d", r, dst, row)
				}
			}
		}
		// EHPull mirrors EHPush.
		if rg.EHPull.NumEdges() != rg.EHPush.NumEdges() {
			t.Fatalf("rank %d: pull %d edges vs push %d", r, rg.EHPull.NumEdges(), rg.EHPush.NumEdges())
		}
		// EToL: only E hubs as sources; dsts are valid local indices.
		for i, hub := range rg.EToL.IDs {
			if !hubs.IsE(hub) {
				t.Fatalf("rank %d: EToL hub %d is not E", r, hub)
			}
			for _, lidx := range rg.EToL.Adj[rg.EToL.Ptr[i]:rg.EToL.Ptr[i+1]] {
				if int(lidx) >= rg.LocalN {
					t.Fatalf("rank %d: EToL lidx %d out of %d", r, lidx, rg.LocalN)
				}
			}
		}
		// HToL: only H hubs in my column block; destinations in my row.
		for i, hub := range rg.HToL.IDs {
			if hubs.IsE(hub) {
				t.Fatalf("rank %d: HToL hub %d is E", r, hub)
			}
			if hubs.ColBlockOf(hub, mesh) != col {
				t.Fatalf("rank %d: HToL hub %d not in column %d", r, hub, col)
			}
			for _, rem := range rg.HToL.Adj[rg.HToL.Ptr[i]:rg.HToL.Ptr[i+1]] {
				owner := mesh.RankAt(row, int(rem.Col))
				if int(rem.LIdx) >= p.Layout.LocalCount(owner) {
					t.Fatalf("rank %d: HToL lidx %d out of range at owner %d", r, rem.LIdx, owner)
				}
			}
		}
		// LToE/LToH adjacency: hubs of the right class.
		for li := 0; li < rg.LocalN; li++ {
			for _, hub := range rg.LToE.Adj[rg.LToE.Ptr[li]:rg.LToE.Ptr[li+1]] {
				if !hubs.IsE(hub) {
					t.Fatalf("rank %d: LToE hub %d not E", r, hub)
				}
			}
			for _, hub := range rg.LToH.Adj[rg.LToH.Ptr[li]:rg.LToH.Ptr[li+1]] {
				if hubs.IsE(hub) {
					t.Fatalf("rank %d: LToH hub %d is E", r, hub)
				}
			}
			// L2L destinations are light vertices.
			for _, dst := range rg.L2L.Adj[rg.L2L.Ptr[li]:rg.L2L.Ptr[li+1]] {
				if _, isHub := hubs.HubOf(dst); isHub {
					t.Fatalf("rank %d: L2L dst %d is a hub", r, dst)
				}
			}
		}
	}
}

func TestBuildRoundTripsEdges(t *testing.T) {
	// Reconstruct the undirected edge multiset from the six components and
	// compare to the input (excluding self loops).
	mesh := topology.Mesh{Rows: 2, Cols: 2}
	cfg := rmat.Config{Scale: 8, Seed: 12}
	edges := rmat.Generate(cfg)
	p, err := Build(cfg.NumVertices(), edges, mesh, Thresholds{E: 150, H: 40}, 2)
	if err != nil {
		t.Fatal(err)
	}
	type dir struct{ u, v int64 }
	want := map[dir]int{}
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		want[dir{e.U, e.V}]++
		want[dir{e.V, e.U}]++
	}
	got := map[dir]int{}
	hubs := p.Hubs
	for r, rg := range p.Ranks {
		for i, src := range rg.EHPush.IDs {
			for _, dst := range rg.EHPush.Adj[rg.EHPush.Ptr[i]:rg.EHPush.Ptr[i+1]] {
				got[dir{hubs.Orig[src], hubs.Orig[dst]}]++
			}
		}
		for i, hub := range rg.EToL.IDs {
			for _, lidx := range rg.EToL.Adj[rg.EToL.Ptr[i]:rg.EToL.Ptr[i+1]] {
				got[dir{hubs.Orig[hub], p.Layout.GlobalOf(r, lidx)}]++
			}
		}
		row := mesh.RowOf(r)
		for i, hub := range rg.HToL.IDs {
			for _, rem := range rg.HToL.Adj[rg.HToL.Ptr[i]:rg.HToL.Ptr[i+1]] {
				owner := mesh.RankAt(row, int(rem.Col))
				got[dir{hubs.Orig[hub], p.Layout.GlobalOf(owner, rem.LIdx)}]++
			}
		}
		for li := 0; li < rg.LocalN; li++ {
			u := p.Layout.GlobalOf(r, int32(li))
			for _, hub := range rg.LToE.Adj[rg.LToE.Ptr[li]:rg.LToE.Ptr[li+1]] {
				got[dir{u, hubs.Orig[hub]}]++
			}
			for _, hub := range rg.LToH.Adj[rg.LToH.Ptr[li]:rg.LToH.Ptr[li+1]] {
				got[dir{u, hubs.Orig[hub]}]++
			}
			for _, dst := range rg.L2L.Adj[rg.L2L.Ptr[li]:rg.L2L.Ptr[li+1]] {
				got[dir{u, dst}]++
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("distinct directed edges: got %d, want %d", len(got), len(want))
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("edge %v count %d, want %d", k, got[k], c)
		}
	}
}

func TestDegenerateNoH(t *testing.T) {
	// E threshold == H threshold ⇒ no H vertices: H2L and L2H must be empty
	// (the 1D-with-delegates degeneration of Section 4.1).
	mesh := topology.Mesh{Rows: 2, Cols: 2}
	p, _, _ := buildSmall(t, 9, mesh, Thresholds{E: 64, H: 64})
	if p.Hubs.NumH != 0 {
		t.Fatalf("NumH = %d, want 0", p.Hubs.NumH)
	}
	for r, rg := range p.Ranks {
		if rg.CompEdges[CompH2L] != 0 || rg.CompEdges[CompL2H] != 0 {
			t.Fatalf("rank %d has H edges in no-H degeneration", r)
		}
	}
}

func TestDegenerateAllHubs(t *testing.T) {
	// H threshold 1 ⇒ every connected vertex is a hub: everything lands in
	// EH2EH (the 2D degeneration).
	mesh := topology.Mesh{Rows: 2, Cols: 2}
	p, _, _ := buildSmall(t, 8, mesh, Thresholds{E: 1 << 20, H: 1})
	for r, rg := range p.Ranks {
		for c := CompE2L; c < NumComponents; c++ {
			if rg.CompEdges[c] != 0 {
				t.Fatalf("rank %d has %v edges in all-hub degeneration", r, c)
			}
		}
	}
}

func TestSegmentedPullPartitionsAdjacency(t *testing.T) {
	mesh := topology.Mesh{Rows: 2, Cols: 2}
	p, _, _ := buildSmall(t, 10, mesh, Thresholds{E: 512, H: 32})
	k := p.Hubs.K()
	for _, rg := range p.Ranks {
		segs := rg.SegmentedPull(6, k)
		var total int64
		for s, seg := range segs {
			lo, hi := SegmentBounds(s, 6, k)
			total += seg.NumEdges()
			for i := range seg.IDs {
				for _, src := range seg.Adj[seg.Ptr[i]:seg.Ptr[i+1]] {
					if src < lo || src >= hi {
						t.Fatalf("segment %d contains src %d outside [%d,%d)", s, src, lo, hi)
					}
				}
			}
		}
		if total != rg.EHPull.NumEdges() {
			t.Fatalf("segments hold %d edges, pull has %d", total, rg.EHPull.NumEdges())
		}
	}
}

func TestSegmentBoundsCoverExactly(t *testing.T) {
	for _, k := range []int{0, 1, 5, 6, 7, 100, 1000003} {
		prev := int32(0)
		for s := 0; s < 6; s++ {
			lo, hi := SegmentBounds(s, 6, k)
			if lo != prev {
				t.Fatalf("k=%d: segment %d starts at %d, want %d", k, s, lo, prev)
			}
			if hi < lo {
				t.Fatalf("k=%d: segment %d empty-negative", k, s)
			}
			prev = hi
		}
		if int(prev) != k {
			t.Fatalf("k=%d: segments cover %d", k, prev)
		}
	}
}

func TestBalanceStats(t *testing.T) {
	mesh := topology.Mesh{Rows: 4, Cols: 4}
	p, _, _ := buildSmall(t, 12, mesh, Thresholds{E: 1024, H: 64})
	for _, st := range p.Balance() {
		if len(st.PerRank) != 16 {
			t.Fatalf("%v: %d ranks", st.Component, len(st.PerRank))
		}
		if st.Min > st.Max {
			t.Fatalf("%v: min %d > max %d", st.Component, st.Min, st.Max)
		}
		var sum int64
		for _, v := range st.PerRank {
			sum += v
		}
		if mean := float64(sum) / 16; mean != st.Mean {
			t.Fatalf("%v: mean %g, want %g", st.Component, st.Mean, mean)
		}
	}
}

func TestBuildWorkerInvariance(t *testing.T) {
	mesh := topology.Mesh{Rows: 2, Cols: 2}
	cfg := rmat.Config{Scale: 9, Seed: 13}
	edges := rmat.Generate(cfg)
	a, err := Build(cfg.NumVertices(), edges, mesh, Thresholds{E: 128, H: 16}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(cfg.NumVertices(), edges, mesh, Thresholds{E: 128, H: 16}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for r := range a.Ranks {
		for c := Component(0); c < NumComponents; c++ {
			if a.Ranks[r].CompEdges[c] != b.Ranks[r].CompEdges[c] {
				t.Fatalf("rank %d %v: %d vs %d edges", r, c, a.Ranks[r].CompEdges[c], b.Ranks[r].CompEdges[c])
			}
		}
	}
}

func BenchmarkBuildScale16(b *testing.B) {
	cfg := rmat.Config{Scale: 16, Seed: 1}
	edges := rmat.Generate(cfg)
	mesh := topology.Mesh{Rows: 4, Cols: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(cfg.NumVertices(), edges, mesh, Thresholds{E: 4096, H: 256}, 0); err != nil {
			b.Fatal(err)
		}
	}
}
