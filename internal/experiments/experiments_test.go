package experiments

import (
	"strings"
	"testing"
)

// Small sizes keep these fast; they verify each experiment runs end to end
// and produces the structural claims the paper makes.

func TestTable1(t *testing.T) {
	rep, err := Table1(12, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) < 5 {
		t.Fatalf("too few lines: %v", rep.Lines)
	}
	joined := strings.Join(rep.Lines, "\n")
	for _, want := range []string{"1D + heavy delegates", "2D (|L|=0)", "degree-aware 1.5D"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing row %q in:\n%s", want, joined)
		}
	}
}

func TestFig2(t *testing.T) {
	rep := Fig2(12)
	if len(rep.Lines) < 6 {
		t.Fatalf("degree histogram too short: %v", rep.Lines)
	}
}

func TestFig5(t *testing.T) {
	rep, err := Fig5(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) < 3 {
		t.Fatalf("trace too short: %v", rep.Lines)
	}
}

func TestFig9Model(t *testing.T) {
	rep, err := Fig9(false)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(rep.Lines, "\n")
	if !strings.Contains(joined, "103912") || !strings.Contains(joined, "180792") {
		t.Fatalf("missing paper points:\n%s", joined)
	}
}

func TestFig10And11Model(t *testing.T) {
	r10, err := Fig10(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(r10.Lines) != 1+5 {
		t.Fatalf("fig10 rows: %d", len(r10.Lines))
	}
	r11, err := Fig11(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(r11.Lines) != 1+5 {
		t.Fatalf("fig11 rows: %d", len(r11.Lines))
	}
}

func TestFig12Grid(t *testing.T) {
	rep, err := Fig12(11, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Header + 4 E rows + best line.
	if len(rep.Lines) != 6 {
		t.Fatalf("grid lines: %d\n%s", len(rep.Lines), strings.Join(rep.Lines, "\n"))
	}
	if !strings.Contains(rep.Lines[5], "best cell") {
		t.Fatalf("no best cell: %v", rep.Lines[5])
	}
}

func TestFig13Balance(t *testing.T) {
	rep, err := Fig13(13, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) < 4 {
		t.Fatalf("balance too short: %v", rep.Lines)
	}
}

func TestFig14(t *testing.T) {
	rep := Fig14(4) // 4 MB keeps the test quick
	joined := strings.Join(rep.Lines, "\n")
	for _, want := range []string{"MPE", "1 CG", "6 CGs"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %q:\n%s", want, joined)
		}
	}
}

func TestFig15(t *testing.T) {
	rep, err := Fig15(12, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(rep.Lines, "\n")
	for _, want := range []string{"baseline", "+sub-iter", "+segment"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %q:\n%s", want, joined)
		}
	}
}

func TestCapacity(t *testing.T) {
	rep := Capacity()
	joined := strings.Join(rep.Lines, "\n")
	for _, want := range []string{"1D + heavy delegates", "2D", "degree-aware 1.5D", "true", "false"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %q:\n%s", want, joined)
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig2", 10, 4, false); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("capacity", 10, 4, false); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope", 10, 4, false); err == nil {
		t.Fatal("unknown id accepted")
	}
}
