// Package experiments regenerates every table and figure of the paper's
// evaluation section at laptop scale, printing the same rows/series the
// paper reports. cmd/experiments exposes them on the command line and the
// repository-root benchmarks wrap them as testing.B targets; EXPERIMENTS.md
// records paper-vs-measured values for each.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/framework"
	"repro/internal/partition"
	"repro/internal/perfmodel"
	"repro/internal/rmat"
	"repro/internal/sssp"
	"repro/internal/stats"
	"repro/internal/sunway"
	"repro/internal/topology"
	"repro/internal/validate"
)

// Report is one experiment's regenerated output.
type Report struct {
	ID    string
	Title string
	Lines []string
}

func (r Report) String() string {
	return fmt.Sprintf("== %s: %s ==\n%s\n", r.ID, r.Title, strings.Join(r.Lines, "\n"))
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// genGraph builds the standard workload for the experiments.
func genGraph(scale int, seed uint64) (int64, []rmat.Edge) {
	cfg := rmat.Config{Scale: scale, Seed: seed}
	return cfg.NumVertices(), rmat.Generate(cfg)
}

// runGTEPS runs nroots BFS traversals and returns harmonic-mean GTEPS.
func runGTEPS(eng *core.Engine, n int64, edges []rmat.Edge, nroots int) (float64, error) {
	deg := eng.Part.Degrees
	var invSum float64
	count := 0
	for root := int64(0); root < n && count < nroots; root++ {
		if deg[root] == 0 {
			continue
		}
		res, err := eng.Run(root)
		if err != nil {
			return 0, err
		}
		if _, err := validate.BFS(n, edges, root, res.Parent); err != nil {
			return 0, fmt.Errorf("root %d: %w", root, err)
		}
		teps := float64(res.TraversedEdges) / res.Time.Seconds()
		invSum += 1 / teps
		count++
	}
	return float64(count) / invSum / 1e9, nil
}

// Table1 reproduces the partitioning-method comparison: the same engine run
// as 1D-with-delegates (no H class), 2D (no L class), and degree-aware 1.5D,
// echoing Table 1's methods column with measured GTEPS on our substrate.
func Table1(scale, ranks, nroots int) (Report, error) {
	rep := Report{ID: "table1", Title: "Partitioning methods (paper Table 1 context)"}
	n, edges := genGraph(scale, 42)
	th := core.DefaultThresholds(scale)
	configs := []struct {
		name string
		th   partition.Thresholds
	}{
		{"1D + heavy delegates (|H|=0)", partition.Thresholds{E: th.H, H: th.H}},
		{"2D (|L|=0)", partition.Thresholds{E: th.E, H: 1}},
		{"degree-aware 1.5D (ours)", th},
	}
	rep.addf("%-32s %10s %8s", "partitioning", "GTEPS", "hubs")
	var gteps []float64
	for _, cfg := range configs {
		eng, err := core.NewEngine(n, edges, core.Options{Ranks: ranks, Thresholds: cfg.th})
		if err != nil {
			return rep, err
		}
		g, err := runGTEPS(eng, n, edges, nroots)
		if err != nil {
			return rep, fmt.Errorf("%s: %w", cfg.name, err)
		}
		gteps = append(gteps, g)
		rep.addf("%-32s %10.3f %8d", cfg.name, g, eng.Part.Hubs.K())
	}
	// Vanilla 1D without any delegation: the pre-delegation strawman whose
	// per-edge messaging is the wall every Table 1 method attacks.
	base, err := baseline.New(n, edges, baseline.Options{Ranks: ranks})
	if err != nil {
		return rep, err
	}
	root := int64(0)
	for v, d := range base.Degrees() {
		if d > 0 {
			root = int64(v)
			break
		}
	}
	bres, err := base.Run(root)
	if err != nil {
		return rep, err
	}
	if _, err := validate.BFS(n, edges, root, bres.Parent); err != nil {
		return rep, fmt.Errorf("vanilla 1D: %w", err)
	}
	bteps := float64(bres.EdgesTouched) / bres.Time.Seconds() / 1e9
	rep.addf("%-32s %10.3f %8d   (%d remote messages)", "vanilla 1D (no delegation)", bteps, 0, bres.MessagesSent)
	rep.addf("paper records: 1D+delegates 15,363-23,756; 2D 38,621-102,956; 1.5D 180,792 GTEPS (at machine scale)")
	rep.addf("speedup of 1.5D over 1D-delegates: %.2fx; over 2D: %.2fx", gteps[2]/gteps[0], gteps[2]/gteps[1])
	return rep, nil
}

// Fig2 reproduces the degree distribution of a Graph 500 graph: log2-binned
// counts whose comb-like heavy tail matches the paper's Figure 2 shape.
func Fig2(scale int) Report {
	rep := Report{ID: "fig2", Title: fmt.Sprintf("Degree distribution, SCALE %d (paper Fig. 2 at SCALE 40)", scale)}
	n, edges := genGraph(scale, 42)
	hist := rmat.DegreeHistogram(rmat.Degrees(n, edges))
	rep.addf("%-14s %12s  %s", "degree bin", "vertices", "log scale")
	for b, c := range hist {
		if c == 0 {
			continue
		}
		label := "0"
		if b > 0 {
			label = fmt.Sprintf("[%d,%d)", 1<<uint(b-1), 1<<uint(b))
		}
		bar := strings.Repeat("#", len(fmt.Sprintf("%d", c)))
		rep.addf("%-14s %12d  %s", label, c, bar)
	}
	return rep
}

// Fig5 reproduces the per-iteration activation breakdown by class: E and H
// activate densely in early iterations, L later.
func Fig5(scale, ranks int) (Report, error) {
	rep := Report{ID: "fig5", Title: "Active vertices per iteration by class (paper Fig. 5)"}
	n, edges := genGraph(scale, 42)
	eng, err := core.NewEngine(n, edges, core.Options{Ranks: ranks})
	if err != nil {
		return rep, err
	}
	res, err := eng.Run(firstConnectedRoot(eng))
	if err != nil {
		return rep, err
	}
	numE := int64(eng.Part.Hubs.NumE)
	numH := int64(eng.Part.Hubs.NumH)
	numL := n - numE - numH
	rep.addf("%4s %10s %10s %10s  %8s %8s %8s", "iter", "E", "H", "L", "%E", "%H", "%L")
	pct := func(a, b int64) float64 {
		if b == 0 {
			return 0
		}
		return 100 * float64(a) / float64(b)
	}
	for i, it := range res.Trace {
		rep.addf("%4d %10d %10d %10d  %7.2f%% %7.2f%% %7.2f%%", i+1,
			it.ActiveE, it.ActiveH, it.ActiveL,
			pct(it.ActiveE, numE), pct(it.ActiveH, numH), pct(it.ActiveL, numL))
	}
	return rep, nil
}

// Fig9 reproduces weak scalability: the perfmodel projection at the paper's
// node counts next to the paper's reported values, plus measured laptop-
// scale points for grounding.
func Fig9(measure bool) (Report, error) {
	rep := Report{ID: "fig9", Title: "Weak scalability (paper Fig. 9)"}
	m := perfmodel.DefaultModel()
	projs, eff := m.WeakScaling()
	rep.addf("%-8s %-8s %14s %14s %9s", "scale", "nodes", "model GTEPS", "paper GTEPS", "model/paper")
	for i, p := range projs {
		rep.addf("%-8d %-8d %14.0f %14.0f %9.2f",
			p.Workload.Scale, p.Workload.Nodes, p.GTEPS, perfmodel.PaperGTEPS[i], p.GTEPS/perfmodel.PaperGTEPS[i])
	}
	rep.addf("relative parallel efficiency at full scale: model %.0f%% (paper: 52%%)", 100*eff)
	if measure {
		rep.addf("measured in-process weak scaling (shape grounding):")
		for _, pt := range []struct{ scale, ranks int }{{14, 1}, {15, 2}, {16, 4}, {17, 8}, {18, 16}} {
			n, edges := genGraph(pt.scale, 42)
			eng, err := core.NewEngine(n, edges, core.Options{Ranks: pt.ranks})
			if err != nil {
				return rep, err
			}
			g, err := runGTEPS(eng, n, edges, 3)
			if err != nil {
				return rep, err
			}
			rep.addf("  scale %d on %2d ranks: %.3f GTEPS", pt.scale, pt.ranks, g)
		}
	}
	return rep, nil
}

// Fig10 reproduces the time breakdown by subgraph over the scaling points,
// from the perfmodel plus one measured breakdown.
func Fig10(measure bool) (Report, error) {
	rep := Report{ID: "fig10", Title: "Time share by subgraph (paper Fig. 10)"}
	m := perfmodel.DefaultModel()
	names := append(append([]string{}, perfmodel.ComponentNames...), "reduce", "other")
	header := fmt.Sprintf("%-8s %-8s", "scale", "nodes")
	for _, c := range names {
		header += fmt.Sprintf(" %7s", c)
	}
	rep.Lines = append(rep.Lines, header)
	for _, w := range perfmodel.PaperPoints {
		p := m.Project(w)
		line := fmt.Sprintf("%-8d %-8d", w.Scale, w.Nodes)
		for _, c := range names {
			line += fmt.Sprintf(" %6.1f%%", 100*p.SubgraphShare[c])
		}
		rep.Lines = append(rep.Lines, line)
	}
	if measure {
		bd, err := measuredBreakdown(18, 16)
		if err != nil {
			return rep, err
		}
		rep.addf("measured at scale 18, 16 ranks (time share):")
		line := "  "
		for p := stats.Phase(0); p < stats.NumPhases; p++ {
			line += fmt.Sprintf(" %s=%.1f%%", p, 100*bd[p])
		}
		rep.Lines = append(rep.Lines, line)
	}
	return rep, nil
}

func measuredBreakdown(scale, ranks int) ([stats.NumPhases]float64, error) {
	var out [stats.NumPhases]float64
	n, edges := genGraph(scale, 42)
	eng, err := core.NewEngine(n, edges, core.Options{Ranks: ranks})
	if err != nil {
		return out, err
	}
	res, err := eng.Run(firstConnectedRoot(eng))
	if err != nil {
		return out, err
	}
	return res.Recorder.PhaseShare(), nil
}

// Fig11 reproduces the time breakdown by communication type.
func Fig11(measure bool) (Report, error) {
	rep := Report{ID: "fig11", Title: "Time share by communication type (paper Fig. 11)"}
	m := perfmodel.DefaultModel()
	cats := []string{"compute", "imbalance/latency", "alltoallv", "allgather", "reduce_scatter", "other"}
	header := fmt.Sprintf("%-8s %-8s", "scale", "nodes")
	for _, c := range cats {
		header += fmt.Sprintf(" %18s", c)
	}
	rep.Lines = append(rep.Lines, header)
	for _, w := range perfmodel.PaperPoints {
		p := m.Project(w)
		line := fmt.Sprintf("%-8d %-8d", w.Scale, w.Nodes)
		for _, c := range cats {
			line += fmt.Sprintf(" %17.1f%%", 100*p.CommShare[c])
		}
		rep.Lines = append(rep.Lines, line)
	}
	if measure {
		n, edges := genGraph(18, 42)
		eng, err := core.NewEngine(n, edges, core.Options{Ranks: 16})
		if err != nil {
			return rep, err
		}
		res, err := eng.Run(firstConnectedRoot(eng))
		if err != nil {
			return rep, err
		}
		v := res.Recorder.CommBreakdown()
		rep.addf("measured volumes at scale 18, 16 ranks (bytes, intra+inter supernode):")
		rep.addf("  alltoallv=%d allgather=%d reduce_scatter=%d",
			v.IntraBytes[0]+v.InterBytes[0], v.IntraBytes[1]+v.InterBytes[1], v.IntraBytes[2]+v.InterBytes[2])
	}
	return rep, nil
}

// Fig12 reproduces the degree-threshold grid search: BFS GTEPS for
// combinations of E and H thresholds (paper Fig. 12 at SCALE 35 on 256
// nodes; here at reduced scale with scale-appropriate threshold values).
func Fig12(scale, ranks, nroots int) (Report, error) {
	rep := Report{ID: "fig12", Title: "GTEPS vs (E,H) degree thresholds (paper Fig. 12)"}
	n, edges := genGraph(scale, 42)
	base := core.DefaultThresholds(scale)
	hVals := []int64{base.H / 4, base.H, base.H * 4, base.H * 16}
	eVals := []int64{base.E / 4, base.E, base.E * 4, base.E * 16}
	header := fmt.Sprintf("%12s", "E\\H")
	for _, h := range hVals {
		header += fmt.Sprintf(" %10d", h)
	}
	rep.Lines = append(rep.Lines, header)
	best, bestG := "", 0.0
	for _, e := range eVals {
		line := fmt.Sprintf("%12d", e)
		for _, h := range hVals {
			if e < h {
				line += fmt.Sprintf(" %10s", "-") // invalid cell, as in the paper's zeros
				continue
			}
			eng, err := core.NewEngine(n, edges, core.Options{Ranks: ranks, Thresholds: partition.Thresholds{E: e, H: h}})
			if err != nil {
				return rep, err
			}
			g, err := runGTEPS(eng, n, edges, nroots)
			if err != nil {
				return rep, err
			}
			line += fmt.Sprintf(" %10.3f", g)
			if g > bestG {
				bestG, best = g, fmt.Sprintf("E=%d H=%d", e, h)
			}
		}
		rep.Lines = append(rep.Lines, line)
	}
	rep.addf("best cell: %s at %.3f GTEPS (paper's best at SCALE 35: E=2048, H=512-128 band)", best, bestG)
	return rep, nil
}

// Fig13 reproduces the per-partition subgraph size balance: min/max/mean
// stored edges per rank for each of the six components.
func Fig13(scale, ranks int) (Report, error) {
	rep := Report{ID: "fig13", Title: "Partitioned subgraph size balance (paper Fig. 13)"}
	n, edges := genGraph(scale, 42)
	mesh := topology.SquarestMesh(ranks)
	p, err := partition.Build(n, edges, mesh, core.DefaultThresholds(scale), 0)
	if err != nil {
		return rep, err
	}
	rep.addf("%-8s %12s %12s %12s %12s %9s", "comp", "min", "max", "mean", "max/mean", "spread")
	for _, st := range p.Balance() {
		if st.Mean == 0 {
			continue
		}
		spread := float64(st.Max-st.Min) / st.Mean
		rep.addf("%-8s %12d %12d %12.0f %12.3f %8.2f%%",
			st.Component, st.Min, st.Max, st.Mean, float64(st.Max)/st.Mean, 100*spread)
	}
	rep.addf("paper at full scale: EH2EH max/avg = 1.028 (2.8%%), others within 0.17%%")
	// The spread shrinks with edges-per-cell (law of large numbers); the
	// paper's 2.8%% corresponds to ~10^9 edges per cell. Demonstrate the
	// trend across scales at fixed rank count.
	rep.addf("EH2EH max/mean vs scale (%d ranks):", ranks)
	for s := scale - 4; s <= scale; s += 2 {
		if s < 8 {
			continue
		}
		ns, es := genGraph(s, 42)
		ps, err := partition.Build(ns, es, mesh, core.DefaultThresholds(s), 0)
		if err != nil {
			return rep, err
		}
		st := ps.Balance()[partition.CompEH2EH]
		if st.Mean > 0 {
			rep.addf("  scale %2d: %.3f", s, float64(st.Max)/st.Mean)
		}
	}
	return rep, nil
}

// Capacity reproduces the 8x-capacity headline as the memory argument of
// Section 2.3: modeled per-node bytes for the three partitioning schemes at
// SCALE 44 on 103,912 x 96 GiB nodes.
func Capacity() Report {
	rep := Report{ID: "capacity", Title: "Per-node memory at SCALE 44 (paper Section 2.3 / 8x capacity headline)"}
	oneD, twoD := perfmodel.PaperSection23Delegates()
	rep.addf("paper's per-node delegate counts: 1D needs %.2e vertices, 2D shares %.2e (both untenable)", oneD, twoD)
	rep.addf("%-24s %12s %14s %12s %10s %6s", "scheme", "edges (GiB)", "delegates (GiB)", "local (GiB)", "total", "fits?")
	for _, r := range perfmodel.AnalyzeCapacity(perfmodel.Graph500Capacity()) {
		gib := func(b float64) float64 { return b / (1 << 30) }
		rep.addf("%-24s %12.1f %14.1f %12.1f %9.1f %6v",
			r.Scheme, gib(r.EdgeBytes), gib(r.DelegateBytes), gib(r.FrontierBytes), gib(r.TotalBytes), r.Fits)
	}
	rep.addf("the 96 GiB node budget admits only the 1.5D scheme at SCALE 44 — the 8x capacity jump over the 35.2T-edge record")
	return rep
}

// Extensions summarizes the beyond-the-paper systems built on the same
// partitioning: SSSP (Graph 500 kernel 2) with push-pull selection,
// PageRank, connected components, and bit-parallel reachability.
func Extensions(scale, ranks int) (Report, error) {
	rep := Report{ID: "extensions", Title: "Beyond the paper: kernel 2 and the Section 8 framework direction"}
	n, edges := genGraph(scale, 42)
	ss, err := core.NewEngine(n, edges, core.Options{Ranks: ranks})
	if err != nil {
		return rep, err
	}
	root := int64(0)
	for v, d := range ss.Part.Degrees {
		if d > 0 {
			root = int64(v)
			break
		}
	}
	sres, err := ss.RunSSSP(root, 7, 0)
	if err != nil {
		return rep, err
	}
	if err := sssp.ValidateResult(n, edges, 7, &sssp.Result{
		Root: root, Dist: sres.Dist, Parent: sres.Parent,
	}); err != nil {
		return rep, err
	}
	rep.addf("SSSP (kernel 2): %d rounds, %d relaxations, %v (validated against optimality conditions)",
		sres.Iterations, sres.Relaxations, sres.Time.Round(time.Millisecond))
	fw, err := framework.New(n, edges, framework.Options{Ranks: ranks})
	if err != nil {
		return rep, err
	}
	pr, err := fw.PageRank(0.85, 1e-8, 200)
	if err != nil {
		return rep, err
	}
	rep.addf("PageRank: converged in %d iterations (delta %.1e) in %v", pr.Iterations, pr.Delta, pr.Time.Round(time.Millisecond))
	wcc, err := fw.ConnectedComponents()
	if err != nil {
		return rep, err
	}
	rep.addf("connected components: %d components in %d label rounds, %v", wcc.Components, wcc.Iterations, wcc.Time.Round(time.Millisecond))
	reach, err := fw.Reachability([]int64{root})
	if err != nil {
		return rep, err
	}
	covered := 0
	for _, m := range reach.Values {
		if m != 0 {
			covered++
		}
	}
	rep.addf("bit-parallel reachability: %d vertices reached from root %d in %d rounds", covered, root, reach.Iterations)
	return rep, nil
}

// Fig14 reproduces the OCS-RMA bucketing throughput comparison: sequential
// MPE baseline vs the OCS organization on 1 and 6 core groups, bucketing
// uniformly random 64-bit integers by their low 8 bits.
func Fig14(totalMB int) Report {
	rep := Report{ID: "fig14", Title: "On-chip sorting with RMA throughput (paper Fig. 14)"}
	nKeys := totalMB << 20 / 8
	keys := make([]uint64, nKeys)
	rng := rmatRand(99)
	for i := range keys {
		keys[i] = rng()
	}
	f := func(x uint64) int { return int(x & 0xFF) }
	model := sunway.DefaultChipModel()
	bench := func(name string, cgs int, fn func(*sunway.Counters)) (float64, float64) {
		c := &sunway.Counters{}
		start := time.Now()
		fn(c)
		sec := time.Since(start).Seconds()
		host := float64(nKeys*8) / sec / 1e9
		snap := c.Snapshot()
		if cgs == 0 {
			// The MPE path performs one dependent load+store per record.
			snap.GLDGSTOps = int64(nKeys) * 2
		}
		modeled := model.BucketThroughput(snap, cgs, int64(nKeys)) / 1e9
		rep.addf("%-8s host %8.3f GB/s   SW26010-Pro modeled %8.3f GB/s   (RMA puts %d, atomics %d)",
			name, host, modeled, snap.RMAPuts, snap.AtomicOps)
		return host, modeled
	}
	_, mpeM := bench("MPE", 0, func(c *sunway.Counters) { sunway.BucketMPE(keys, 256, f) })
	_, cg1M := bench("1 CG", 1, func(c *sunway.Counters) {
		sunway.BucketOCS(keys, 256, f, sunway.OCSConfig{CGs: 1, Counters: c})
	})
	_, cg6M := bench("6 CGs", 6, func(c *sunway.Counters) {
		sunway.BucketOCS(keys, 256, f, sunway.OCSConfig{CGs: 6, Counters: c})
	})
	rep.addf("modeled speedup 6CG/MPE: %.0fx (paper: 1443x); 6CG vs 1CG: %.2fx (paper: 4.69x)",
		cg6M/mpeM, cg6M/cg1M)
	rep.addf("paper values: MPE 0.0406, 1 CG 12.5, 6 CGs 58.6 GB/s (47.0%% of peak memory bandwidth)")
	rep.addf("host throughput reflects this machine's core count; the model prices the measured event counts on the chip constants")
	return rep
}

func rmatRand(seed uint64) func() uint64 {
	s := seed
	return func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

// Fig15 reproduces the optimization ablation: (a) vanilla whole-iteration
// direction optimization, (b) + sub-iteration direction optimization,
// (c) + core-subgraph segmenting; time broken into EH2EH/other push/pull.
func Fig15(scale, ranks, reps int) (Report, error) {
	rep := Report{ID: "fig15", Title: "Ablation: baseline / +sub-iteration / +segmenting (paper Fig. 15)"}
	n, edges := genGraph(scale, 42)
	configs := []struct {
		name string
		opt  core.Options
	}{
		{"baseline", core.Options{Ranks: ranks, Direction: core.ModeWholeIteration}},
		{"+sub-iter", core.Options{Ranks: ranks, Direction: core.ModeSubIteration}},
		{"+segment", core.Options{Ranks: ranks, Direction: core.ModeSubIteration, Segmented: true}},
	}
	rep.addf("%-10s %12s %12s %12s %12s %12s %14s", "config", "EH2EH pull", "others pull", "EH2EH push", "others push", "other", "edges touched")
	type rowT struct {
		name  string
		total time.Duration
	}
	var rows []rowT
	for _, cfg := range configs {
		eng, err := core.NewEngine(n, edges, cfg.opt)
		if err != nil {
			return rep, err
		}
		root := firstConnectedRoot(eng)
		agg := &stats.Recorder{}
		var edgesTouched int64
		for r := 0; r < reps; r++ {
			res, err := eng.Run(root)
			if err != nil {
				return rep, err
			}
			agg.Merge(res.Recorder)
			edgesTouched = res.Recorder.TotalEdges()
		}
		var ehPull, ehPush, otherPull, otherPush, rest time.Duration
		for p := stats.Phase(0); p < stats.NumPhases; p++ {
			pull := agg.Time[p][stats.DirPull]
			push := agg.Time[p][stats.DirPush]
			none := agg.Time[p][stats.DirNone]
			if p == stats.PhaseEH2EH {
				ehPull += pull
				ehPush += push
			} else {
				otherPull += pull
				otherPush += push
			}
			rest += none
		}
		d := func(t time.Duration) string {
			return fmt.Sprintf("%.2fms", float64(t.Microseconds())/1e3/float64(reps))
		}
		rep.addf("%-10s %12s %12s %12s %12s %12s %14d", cfg.name, d(ehPull), d(otherPull), d(ehPush), d(otherPush), d(rest), edgesTouched)
		rows = append(rows, rowT{cfg.name, agg.TotalTime()})
	}
	rep.addf("paper: sub-iteration shifts E/H push time into cheaper pulls; segmenting speeds EH2EH pull ~9x on silicon")
	_ = rows
	return rep, nil
}

func firstConnectedRoot(eng *core.Engine) int64 {
	for v, d := range eng.Part.Degrees {
		if d > 0 {
			return int64(v)
		}
	}
	return 0
}

// All runs every experiment at the given default sizes and returns the
// reports in figure order.
func All(scale, ranks int, measure bool) ([]Report, error) {
	var out []Report
	add := func(r Report, err error) error {
		if err != nil {
			return err
		}
		out = append(out, r)
		return nil
	}
	if err := add(Table1(scale, ranks, 4)); err != nil {
		return out, err
	}
	out = append(out, Fig2(scale))
	if err := add(Fig5(scale, ranks)); err != nil {
		return out, err
	}
	if err := add(Fig9(measure)); err != nil {
		return out, err
	}
	if err := add(Fig10(measure)); err != nil {
		return out, err
	}
	if err := add(Fig11(measure)); err != nil {
		return out, err
	}
	if err := add(Fig12(scale, ranks, 2)); err != nil {
		return out, err
	}
	if err := add(Fig13(scale, 64)); err != nil {
		return out, err
	}
	out = append(out, Fig14(64))
	if err := add(Fig15(scale, ranks, 3)); err != nil {
		return out, err
	}
	out = append(out, Capacity())
	return out, nil
}

// ByID runs one experiment by its id string.
func ByID(id string, scale, ranks int, measure bool) (Report, error) {
	switch strings.ToLower(id) {
	case "table1":
		return Table1(scale, ranks, 4)
	case "fig2":
		return Fig2(scale), nil
	case "fig5":
		return Fig5(scale, ranks)
	case "fig9":
		return Fig9(measure)
	case "fig10":
		return Fig10(measure)
	case "fig11":
		return Fig11(measure)
	case "fig12":
		return Fig12(scale, ranks, 2)
	case "fig13":
		return Fig13(scale, 64)
	case "fig14":
		return Fig14(64), nil
	case "capacity":
		return Capacity(), nil
	case "extensions":
		return Extensions(scale, ranks)
	case "fig15":
		return Fig15(scale, ranks, 3)
	}
	ids := []string{"table1", "fig2", "fig5", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "capacity", "extensions"}
	sort.Strings(ids)
	return Report{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(ids, ", "))
}
