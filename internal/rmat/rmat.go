// Package rmat implements the Graph 500 synthetic graph generator: a
// Kronecker/R-MAT recursive matrix sampler with the specified parameters
// A=0.57, B=C=0.19, D=0.05 and edge factor 16 (paper Section 2.2). Generation
// is deterministic for a given (scale, seed), parallelizable across
// goroutines via independent PRNG substreams, and finishes with a vertex
// scramble so vertex IDs carry no locality, as the reference implementation
// does.
package rmat

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/xrand"
)

// Graph 500 specified R-MAT quadrant probabilities.
const (
	ParamA = 0.57
	ParamB = 0.19
	ParamC = 0.19
	ParamD = 0.05
	// EdgeFactor is the specified ratio of edges to vertices.
	EdgeFactor = 16
)

// Edge is one undirected edge of the generated multigraph. Self loops and
// duplicates are allowed by the Graph 500 spec; downstream kernels must cope.
type Edge struct {
	U, V int64
}

// Config controls generation.
type Config struct {
	Scale      int    // number of vertices is 1<<Scale
	EdgeFactor int    // edges = EdgeFactor << Scale; 0 means the spec's 16
	Seed       uint64 // stream seed; same seed ⇒ same graph
	A, B, C    float64
	// Noise, when nonzero, perturbs the quadrant probabilities per level as
	// the Graph 500 reference's "noise" variant does, smearing the comb-like
	// degree distribution. Zero (the spec default) keeps exact parameters.
	Noise float64
	// Workers caps the generation goroutines; 0 means GOMAXPROCS.
	Workers int
	// SkipScramble disables the vertex permutation (useful in tests that
	// want raw R-MAT locality).
	SkipScramble bool
}

func (c Config) withDefaults() Config {
	if c.EdgeFactor == 0 {
		c.EdgeFactor = EdgeFactor
	}
	if c.A == 0 && c.B == 0 && c.C == 0 {
		c.A, c.B, c.C = ParamA, ParamB, ParamC
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// NumVertices returns the vertex count for the config.
func (c Config) NumVertices() int64 { return 1 << uint(c.Scale) }

// NumEdges returns the edge count for the config.
func (c Config) NumEdges() int64 {
	cc := c.withDefaults()
	return int64(cc.EdgeFactor) << uint(cc.Scale)
}

// Generate produces the full edge list for the configuration.
func Generate(cfg Config) []Edge {
	cfg = cfg.withDefaults()
	if cfg.Scale < 0 || cfg.Scale > 40 {
		panic(fmt.Sprintf("rmat: scale %d out of supported range", cfg.Scale))
	}
	m := cfg.NumEdges()
	edges := make([]Edge, m)
	GenerateInto(cfg, edges)
	return edges
}

// genBlock is the fixed work-unit size. Each block draws from its own PRNG
// stream seeded by (seed, block index), so the generated edge list is
// identical no matter how many workers split the blocks.
const genBlock = 1 << 16

// GenerateInto fills dst with the first len(dst) edges of the stream.
// len(dst) may be smaller than NumEdges for sampled workloads.
func GenerateInto(cfg Config, dst []Edge) {
	cfg = cfg.withDefaults()
	blocks := (len(dst) + genBlock - 1) / genBlock
	workers := cfg.Workers
	if workers > blocks {
		workers = blocks
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(atomic.AddInt64(&next, 1)) - 1
				if b >= blocks {
					return
				}
				lo := b * genBlock
				hi := lo + genBlock
				if hi > len(dst) {
					hi = len(dst)
				}
				rng := xrand.NewXoshiro256(xrand.Mix64(cfg.Seed) ^ xrand.Mix64(uint64(b)+0x5eed))
				genRange(cfg, rng, dst[lo:hi])
			}
		}()
	}
	wg.Wait()
	if !cfg.SkipScramble {
		scramble(cfg, dst)
	}
}

// genRange samples edges into out using rng.
func genRange(cfg Config, rng *xrand.Xoshiro256, out []Edge) {
	n := int64(1) << uint(cfg.Scale)
	ab := cfg.A + cfg.B
	aNorm := cfg.A / ab
	cOverCD := cfg.C / (1 - ab)
	for i := range out {
		var u, v int64
		for level := 0; level < cfg.Scale; level++ {
			a, b := ab, aNorm
			c := cOverCD
			if cfg.Noise != 0 {
				// Perturb each level's split symmetrically, as in the
				// reference generator's noisy variant.
				a += cfg.Noise * (2*rng.Float64() - 1) * a
				b += cfg.Noise * (2*rng.Float64() - 1) * b
				c += cfg.Noise * (2*rng.Float64() - 1) * c
			}
			iBit := int64(0)
			jBit := int64(0)
			if rng.Float64() > a { // bottom half: quadrant C or D
				iBit = 1
				if rng.Float64() > c {
					jBit = 1
				}
			} else if rng.Float64() > b { // top half, right: quadrant B
				jBit = 1
			}
			u = u<<1 | iBit
			v = v<<1 | jBit
		}
		if u >= n || v >= n {
			panic("rmat: generated vertex out of range")
		}
		out[i] = Edge{U: u, V: v}
	}
}

// scramble applies a pseudo-random bijection on vertex IDs so that vertex
// number carries no information about degree. The permutation is a
// hash-based Feistel-free scheme: IDs are mapped through Mix64 restricted to
// [0, 2^scale) by iterating the cipher until the value lands in range
// (cycle-walking), which is a bijection on the domain.
func scramble(cfg Config, edges []Edge) {
	workers := cfg.Workers
	var wg sync.WaitGroup
	chunk := (len(edges) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(edges) {
			break
		}
		hi := lo + chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				edges[i].U = ScrambleVertex(edges[i].U, cfg.Scale, cfg.Seed)
				edges[i].V = ScrambleVertex(edges[i].V, cfg.Scale, cfg.Seed)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ScrambleVertex maps v through the seed-keyed bijection on [0, 2^scale).
// The construction is cycle-walking over a keyed bijection on scale-bit
// integers built from two rounds of multiply-xorshift (each invertible on
// 64-bit and truncated to scale bits by keeping the mix within the domain via
// repeated application).
func ScrambleVertex(v int64, scale int, seed uint64) int64 {
	mask := (uint64(1) << uint(scale)) - 1
	x := uint64(v)
	// Cycle-walk: apply the 64-bit bijection until the result is in range.
	// Expected iterations ≈ 2^64 / 2^scale applications would be wrong; we
	// instead restrict the bijection to scale bits directly: a fixed odd
	// multiplier and xorshift modulo 2^scale is a bijection on the domain.
	key := xrand.Mix64(seed | 1)
	mult := key | 1 // odd ⇒ invertible mod 2^scale
	for round := 0; round < 3; round++ {
		x = (x * mult) & mask
		x ^= x >> uint((scale+1)/2)
		x &= mask
		x = (x + key) & mask
	}
	return int64(x)
}

// DegreeHistogram bins vertex degrees logarithmically (base 2) and returns
// counts per bin; bin k holds vertices with degree in [2^k, 2^(k+1)).
// Bin 0 of the returned slice is degree zero. This regenerates Figure 2's
// log-log degree distribution.
func DegreeHistogram(degrees []int64) []int64 {
	hist := make([]int64, 66)
	for _, d := range degrees {
		if d == 0 {
			hist[0]++
			continue
		}
		bin := 1
		for x := d; x > 1; x >>= 1 {
			bin++
		}
		hist[bin]++
	}
	// Trim trailing empty bins.
	last := len(hist)
	for last > 1 && hist[last-1] == 0 {
		last--
	}
	return hist[:last]
}

// Degrees computes the degree of every vertex counting both endpoints of
// every edge (self loops count twice, matching adjacency-matrix convention).
func Degrees(n int64, edges []Edge) []int64 {
	deg := make([]int64, n)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	return deg
}
