package rmat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateCounts(t *testing.T) {
	cfg := Config{Scale: 10, Seed: 1}
	edges := Generate(cfg)
	if got, want := int64(len(edges)), cfg.NumEdges(); got != want {
		t.Fatalf("edge count %d, want %d", got, want)
	}
	n := cfg.NumVertices()
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			t.Fatalf("edge (%d,%d) out of [0,%d)", e.U, e.V, n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Scale: 8, Seed: 99, Workers: 1})
	b := Generate(Config{Scale: 8, Seed: 99, Workers: 4})
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs between worker counts: %v vs %v", i, a[i], b[i])
		}
	}
	c := Generate(Config{Scale: 8, Seed: 100})
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff < len(a)/2 {
		t.Fatalf("different seeds should produce mostly different edges; only %d/%d differ", diff, len(a))
	}
}

func TestDegreeSkewness(t *testing.T) {
	// The defining R-MAT property: extremely skewed degrees. At scale 14 the
	// max degree must vastly exceed the mean (2*edgefactor = 32).
	cfg := Config{Scale: 14, Seed: 3}
	edges := Generate(cfg)
	deg := Degrees(cfg.NumVertices(), edges)
	var max int64
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	if max < 32*20 {
		t.Fatalf("max degree %d not skewed (mean 32)", max)
	}
	// And many vertices are isolated or low-degree.
	zero := 0
	for _, d := range deg {
		if d == 0 {
			zero++
		}
	}
	if float64(zero) < 0.1*float64(len(deg)) {
		t.Fatalf("only %d/%d isolated vertices; R-MAT at scale 14 should have many", zero, len(deg))
	}
}

func TestScrambleBijective(t *testing.T) {
	for _, scale := range []int{1, 4, 10} {
		n := int64(1) << uint(scale)
		seen := make([]bool, n)
		for v := int64(0); v < n; v++ {
			s := ScrambleVertex(v, scale, 42)
			if s < 0 || s >= n {
				t.Fatalf("scale %d: scramble(%d) = %d out of range", scale, v, s)
			}
			if seen[s] {
				t.Fatalf("scale %d: scramble not injective at %d", scale, v)
			}
			seen[s] = true
		}
	}
}

func TestScramblePropertyBijection(t *testing.T) {
	const scale = 16
	f := func(a, b uint16) bool {
		if a == b {
			return true
		}
		return ScrambleVertex(int64(a), scale, 7) != ScrambleVertex(int64(b), scale, 7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScrambleSeedSensitivity(t *testing.T) {
	diff := 0
	for v := int64(0); v < 1024; v++ {
		if ScrambleVertex(v, 10, 1) != ScrambleVertex(v, 10, 2) {
			diff++
		}
	}
	if diff < 900 {
		t.Fatalf("scramble barely depends on seed: %d/1024 differ", diff)
	}
}

func TestDegreeHistogram(t *testing.T) {
	degs := []int64{0, 0, 1, 1, 2, 3, 4, 7, 8, 1024}
	hist := DegreeHistogram(degs)
	// bin0: degree 0 ⇒ 2; bin1: degree 1 ⇒ 2; bin2: degrees 2-3 ⇒ 2;
	// bin3: 4-7 ⇒ 2; bin4: 8-15 ⇒ 1; bin11: 1024-2047 ⇒ 1.
	want := map[int]int64{0: 2, 1: 2, 2: 2, 3: 2, 4: 1, 11: 1}
	var total int64
	for bin, c := range hist {
		if c != want[bin] {
			t.Errorf("bin %d = %d, want %d", bin, c, want[bin])
		}
		total += c
	}
	if total != int64(len(degs)) {
		t.Errorf("histogram total %d, want %d", total, len(degs))
	}
}

func TestHistogramShapeIsHeavyTailed(t *testing.T) {
	cfg := Config{Scale: 14, Seed: 5}
	edges := Generate(cfg)
	hist := DegreeHistogram(Degrees(cfg.NumVertices(), edges))
	if len(hist) < 8 {
		t.Fatalf("histogram spans only %d doubling bins; expect a long tail", len(hist))
	}
	// Counts must be roughly decreasing beyond the mode: tail thinner than head.
	head := hist[1] + hist[2] + hist[3]
	tail := int64(0)
	for _, c := range hist[8:] {
		tail += c
	}
	if tail >= head {
		t.Fatalf("tail (%d) not thinner than head (%d)", tail, head)
	}
}

func TestQuadrantBias(t *testing.T) {
	// Without scrambling, the A=0.57 bias concentrates both endpoints in low
	// IDs: the mean vertex id must be well below n/2.
	cfg := Config{Scale: 12, Seed: 2, SkipScramble: true}
	edges := Generate(cfg)
	var sum float64
	for _, e := range edges {
		sum += float64(e.U) + float64(e.V)
	}
	mean := sum / float64(2*len(edges))
	n := float64(cfg.NumVertices())
	if mean > 0.4*n {
		t.Fatalf("mean endpoint %g not biased low (n=%g); R-MAT bias missing", mean, n)
	}
}

func TestGenerateIntoPartial(t *testing.T) {
	cfg := Config{Scale: 10, Seed: 6}
	dst := make([]Edge, 100)
	GenerateInto(cfg, dst)
	n := cfg.NumVertices()
	for _, e := range dst {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			t.Fatalf("edge out of range: %+v", e)
		}
	}
}

func TestNoiseSmearsDistribution(t *testing.T) {
	base := Generate(Config{Scale: 12, Seed: 8})
	noisy := Generate(Config{Scale: 12, Seed: 8, Noise: 0.1})
	hb := DegreeHistogram(Degrees(1<<12, base))
	hn := DegreeHistogram(Degrees(1<<12, noisy))
	// Both heavy-tailed; just ensure noise changed the detailed histogram.
	same := true
	for i := 0; i < len(hb) && i < len(hn); i++ {
		if hb[i] != hn[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("noise parameter had no effect on degree histogram")
	}
}

func TestDegreesCountsSelfLoopsTwice(t *testing.T) {
	deg := Degrees(4, []Edge{{0, 0}, {1, 2}})
	want := []int64{2, 1, 1, 0}
	for i, w := range want {
		if deg[i] != w {
			t.Fatalf("deg[%d] = %d, want %d", i, deg[i], w)
		}
	}
}

func TestMeanDegreeMatchesEdgeFactor(t *testing.T) {
	cfg := Config{Scale: 12, Seed: 13}
	edges := Generate(cfg)
	deg := Degrees(cfg.NumVertices(), edges)
	var sum int64
	for _, d := range deg {
		sum += d
	}
	mean := float64(sum) / float64(len(deg))
	if math.Abs(mean-32) > 1e-9 {
		t.Fatalf("mean degree %g, want exactly 32", mean)
	}
}

func BenchmarkGenerateScale16(b *testing.B) {
	cfg := Config{Scale: 16, Seed: 1}
	edges := make([]Edge, cfg.NumEdges())
	b.SetBytes(int64(len(edges)) * 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateInto(cfg, edges)
	}
}
