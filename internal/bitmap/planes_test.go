package bitmap

import "testing"

func TestPlanesViewsAliasBacking(t *testing.T) {
	p := NewPlanes(3, 70) // stride 2 words
	if p.Stride() != 2 || p.Count() != 3 || p.BitsPerPlane() != 70 {
		t.Fatalf("geometry: stride %d count %d bits %d", p.Stride(), p.Count(), p.BitsPerPlane())
	}
	if len(p.Words()) != 6 {
		t.Fatalf("backing has %d words, want 6", len(p.Words()))
	}
	p.Plane(1).Set(69)
	if p.Words()[3] != 1<<5 {
		t.Fatalf("plane 1 bit 69 landed at %v", p.Words())
	}
	// Neighbour planes see nothing.
	if p.Plane(0).Any() || p.Plane(2).Any() {
		t.Fatal("bit leaked across planes")
	}
	// And the view reads back through the backing.
	p.Words()[4] = 1
	if !p.Plane(2).Test(0) {
		t.Fatal("backing write not visible through plane view")
	}
}

func TestPlanesWholeBackingOrKeepsPlanesSeparate(t *testing.T) {
	a := NewPlanes(2, 100)
	b := NewPlanes(2, 100)
	a.Plane(0).Set(7)
	b.Plane(1).Set(99)
	aw, bw := a.Words(), b.Words()
	for i := range aw {
		aw[i] |= bw[i] // one whole-backing OR stands in for 2 per-plane ORs
	}
	if !a.Plane(0).Test(7) || !a.Plane(1).Test(99) {
		t.Fatal("whole-backing OR lost a bit")
	}
	if a.Plane(0).Count() != 1 || a.Plane(1).Count() != 1 {
		t.Fatal("whole-backing OR leaked bits between planes")
	}
	a.Reset()
	if a.Plane(0).Any() || a.Plane(1).Any() {
		t.Fatal("Reset left bits behind")
	}
}

func TestPlanesOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPlanes(2, 8).Plane(2)
}
