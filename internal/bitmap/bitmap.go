// Package bitmap provides dense bit vectors used throughout the BFS engine:
// plain bitmaps for single-owner frontiers, atomic bitmaps for concurrent
// updates, and segmented views that mirror the CG-aware segmenting of the
// paper (Section 4.3).
package bitmap

import (
	"fmt"
	"math/bits"
)

const (
	wordBits  = 64
	wordShift = 6
	wordMask  = wordBits - 1
)

// Bitmap is a dense bit vector. The zero value is an empty bitmap of length
// zero; use New to allocate one of a given length.
type Bitmap struct {
	words []uint64
	n     int
}

// New returns a cleared bitmap capable of holding n bits.
func New(n int) *Bitmap {
	if n < 0 {
		panic(fmt.Sprintf("bitmap: negative length %d", n))
	}
	return &Bitmap{words: make([]uint64, (n+wordMask)>>wordShift), n: n}
}

// FromWords wraps an existing word slice as a bitmap of n bits.
// The slice must contain at least (n+63)/64 words.
func FromWords(words []uint64, n int) *Bitmap {
	if need := (n + wordMask) >> wordShift; len(words) < need {
		panic(fmt.Sprintf("bitmap: %d words cannot hold %d bits", len(words), n))
	}
	return &Bitmap{words: words, n: n}
}

// Len returns the number of bits the bitmap holds.
func (b *Bitmap) Len() int { return b.n }

// Words exposes the backing words. The final word's spare bits are always
// zero as long as callers stay within Len.
func (b *Bitmap) Words() []uint64 { return b.words }

// Set sets bit i.
func (b *Bitmap) Set(i int) {
	b.words[i>>wordShift] |= 1 << (uint(i) & wordMask)
}

// Clear clears bit i.
func (b *Bitmap) Clear(i int) {
	b.words[i>>wordShift] &^= 1 << (uint(i) & wordMask)
}

// Test reports whether bit i is set.
func (b *Bitmap) Test(i int) bool {
	return b.words[i>>wordShift]&(1<<(uint(i)&wordMask)) != 0
}

// TestAndSet sets bit i and reports whether it was previously clear
// (i.e. whether this call changed it).
func (b *Bitmap) TestAndSet(i int) bool {
	w := i >> wordShift
	m := uint64(1) << (uint(i) & wordMask)
	old := b.words[w]
	b.words[w] = old | m
	return old&m == 0
}

// Reset clears every bit.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Fill sets every bit in [0, Len).
func (b *Bitmap) Fill() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// trim zeroes the spare bits of the last word so Count stays exact.
func (b *Bitmap) trim() {
	if r := uint(b.n) & wordMask; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << r) - 1
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Or sets b to b|other. The bitmaps must have identical lengths.
func (b *Bitmap) Or(other *Bitmap) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitmap: Or length mismatch %d vs %d", b.n, other.n))
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// AndNot sets b to b&^other (bits in b that are not in other).
func (b *Bitmap) AndNot(other *Bitmap) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitmap: AndNot length mismatch %d vs %d", b.n, other.n))
	}
	for i, w := range other.words {
		b.words[i] &^= w
	}
}

// CopyFrom overwrites b with other's bits. Lengths must match.
func (b *Bitmap) CopyFrom(other *Bitmap) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitmap: CopyFrom length mismatch %d vs %d", b.n, other.n))
	}
	copy(b.words, other.words)
}

// Clone returns an independent copy.
func (b *Bitmap) Clone() *Bitmap {
	c := New(b.n)
	copy(c.words, b.words)
	return c
}

// ForEach calls fn for every set bit in ascending order.
func (b *Bitmap) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		base := wi << wordShift
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// NextSet returns the index of the first set bit >= from, or -1 if none.
func (b *Bitmap) NextSet(from int) int {
	if from >= b.n {
		return -1
	}
	if from < 0 {
		from = 0
	}
	wi := from >> wordShift
	w := b.words[wi] >> (uint(from) & wordMask)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi<<wordShift + bits.TrailingZeros64(b.words[wi])
		}
	}
	return -1
}

// CountRange returns the number of set bits in [lo, hi).
func (b *Bitmap) CountRange(lo, hi int) int {
	if lo < 0 || hi > b.n || lo > hi {
		panic(fmt.Sprintf("bitmap: CountRange [%d,%d) out of [0,%d)", lo, hi, b.n))
	}
	c := 0
	for i := lo; i < hi; {
		wi := i >> wordShift
		w := b.words[wi]
		// Mask off bits below i.
		w >>= uint(i) & wordMask
		span := wordBits - int(uint(i)&wordMask)
		if rem := hi - i; rem < span {
			w &= (1 << uint(rem)) - 1
			span = rem
		}
		c += bits.OnesCount64(w)
		i += span
	}
	return c
}

// String renders the bitmap as 0/1 characters, LSB first, for debugging.
func (b *Bitmap) String() string {
	buf := make([]byte, b.n)
	for i := 0; i < b.n; i++ {
		if b.Test(i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}
