package bitmap

import "fmt"

// Segmented is a bitmap partitioned into fixed-size lines that are
// round-robin distributed across a set of owners, mirroring the LDM layout of
// CG-aware core subgraph segmenting (paper Fig. 7): bit offset within a
// segment decomposes into (line number, owner CPE, offset in line).
//
// On the simulator this indexing is exercised by the sunway package; here it
// is also useful as a locality-friendly layout for pull kernels because each
// owner touches only its resident lines.
type Segmented struct {
	lineBits int // bits per line; must be a multiple of 64
	owners   int
	n        int
	// lane[o] holds the lines owned by owner o, concatenated.
	lanes [][]uint64
}

// NewSegmented builds a segmented bitmap of n bits with the given number of
// owners and lineBytes bytes per line (the paper uses 1024-byte lines over
// 64 CPEs).
func NewSegmented(n, owners, lineBytes int) *Segmented {
	if owners <= 0 {
		panic("bitmap: segmented needs at least one owner")
	}
	if lineBytes <= 0 || lineBytes%8 != 0 {
		panic(fmt.Sprintf("bitmap: line size %dB must be a positive multiple of 8", lineBytes))
	}
	s := &Segmented{lineBits: lineBytes * 8, owners: owners, n: n}
	lines := (n + s.lineBits - 1) / s.lineBits
	wordsPerLine := s.lineBits / wordBits
	perOwner := make([]int, owners)
	for l := 0; l < lines; l++ {
		perOwner[l%owners]++
	}
	s.lanes = make([][]uint64, owners)
	for o := range s.lanes {
		s.lanes[o] = make([]uint64, perOwner[o]*wordsPerLine)
	}
	return s
}

// Len returns the number of bits.
func (s *Segmented) Len() int { return s.n }

// Owners returns the number of owners lines are distributed over.
func (s *Segmented) Owners() int { return s.owners }

// locate maps a global bit index to (owner, word index in lane, bit mask).
func (s *Segmented) locate(i int) (owner, word int, mask uint64) {
	line := i / s.lineBits
	off := i % s.lineBits
	owner = line % s.owners
	localLine := line / s.owners
	word = localLine*(s.lineBits/wordBits) + off/wordBits
	mask = 1 << (uint(off) & wordMask)
	return owner, word, mask
}

// Owner returns which owner holds bit i. This is the CPE-number field of the
// paper's offset mapping.
func (s *Segmented) Owner(i int) int {
	return (i / s.lineBits) % s.owners
}

// Set sets bit i.
func (s *Segmented) Set(i int) {
	o, w, m := s.locate(i)
	s.lanes[o][w] |= m
}

// Test reports whether bit i is set.
func (s *Segmented) Test(i int) bool {
	o, w, m := s.locate(i)
	return s.lanes[o][w]&m != 0
}

// Lane exposes owner o's words; the sunway simulator treats a lane as the
// portion of the activeness vector resident in that CPE's LDM.
func (s *Segmented) Lane(o int) []uint64 { return s.lanes[o] }

// LoadFrom fills the segmented bitmap from a flat bitmap of equal length.
func (s *Segmented) LoadFrom(b *Bitmap) {
	if b.Len() != s.n {
		panic(fmt.Sprintf("bitmap: LoadFrom length mismatch %d vs %d", b.Len(), s.n))
	}
	wordsPerLine := s.lineBits / wordBits
	words := b.Words()
	for wi, w := range words {
		line := wi / wordsPerLine
		o := line % s.owners
		localLine := line / s.owners
		s.lanes[o][localLine*wordsPerLine+wi%wordsPerLine] = w
	}
}

// StoreTo writes the segmented contents into a flat bitmap of equal length.
func (s *Segmented) StoreTo(b *Bitmap) {
	if b.Len() != s.n {
		panic(fmt.Sprintf("bitmap: StoreTo length mismatch %d vs %d", b.Len(), s.n))
	}
	wordsPerLine := s.lineBits / wordBits
	words := b.Words()
	for wi := range words {
		line := wi / wordsPerLine
		o := line % s.owners
		localLine := line / s.owners
		words[wi] = s.lanes[o][localLine*wordsPerLine+wi%wordsPerLine]
	}
	b.trim()
}

// Count returns the number of set bits.
func (s *Segmented) Count() int {
	flat := New(s.n)
	s.StoreTo(flat)
	return flat.Count()
}
