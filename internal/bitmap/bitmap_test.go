package bitmap

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	b := New(200)
	for i := 0; i < 200; i += 3 {
		b.Set(i)
	}
	for i := 0; i < 200; i++ {
		want := i%3 == 0
		if got := b.Test(i); got != want {
			t.Fatalf("Test(%d) = %v, want %v", i, got, want)
		}
	}
	for i := 0; i < 200; i += 6 {
		b.Clear(i)
	}
	for i := 0; i < 200; i++ {
		want := i%3 == 0 && i%6 != 0
		if got := b.Test(i); got != want {
			t.Fatalf("after Clear, Test(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestCountAndAny(t *testing.T) {
	b := New(130)
	if b.Any() {
		t.Fatal("empty bitmap reports Any")
	}
	if b.Count() != 0 {
		t.Fatalf("empty Count = %d", b.Count())
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if got := b.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	if !b.Any() {
		t.Fatal("Any = false with 3 bits set")
	}
}

func TestFillRespectsLength(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		b := New(n)
		b.Fill()
		if got := b.Count(); got != n {
			t.Errorf("Fill: n=%d Count=%d", n, got)
		}
	}
}

func TestTestAndSet(t *testing.T) {
	b := New(10)
	if !b.TestAndSet(5) {
		t.Fatal("first TestAndSet should report change")
	}
	if b.TestAndSet(5) {
		t.Fatal("second TestAndSet should not report change")
	}
	if !b.Test(5) {
		t.Fatal("bit not set")
	}
}

func TestOrAndNot(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	a.Set(50)
	b.Set(50)
	b.Set(99)
	a.Or(b)
	for _, i := range []int{1, 50, 99} {
		if !a.Test(i) {
			t.Fatalf("Or: bit %d missing", i)
		}
	}
	a.AndNot(b)
	if !a.Test(1) || a.Test(50) || a.Test(99) {
		t.Fatalf("AndNot wrong: %v %v %v", a.Test(1), a.Test(50), a.Test(99))
	}
}

func TestForEachOrder(t *testing.T) {
	b := New(300)
	want := []int{0, 7, 64, 128, 299}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("ForEach[%d] = %d, want %d", k, got[k], want[k])
		}
	}
}

func TestNextSet(t *testing.T) {
	b := New(300)
	b.Set(5)
	b.Set(100)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 100}, {100, 100}, {101, -1}, {299, -1}, {500, -1},
	}
	for _, c := range cases {
		if got := b.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestCountRange(t *testing.T) {
	b := New(256)
	for i := 0; i < 256; i += 2 {
		b.Set(i)
	}
	cases := []struct{ lo, hi, want int }{
		{0, 256, 128}, {0, 0, 0}, {1, 2, 0}, {0, 1, 1}, {63, 65, 1}, {10, 74, 32},
	}
	for _, c := range cases {
		if got := b.CountRange(c.lo, c.hi); got != c.want {
			t.Errorf("CountRange(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestCountRangeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := New(517)
	for i := 0; i < b.Len(); i++ {
		if rng.Intn(2) == 0 {
			b.Set(i)
		}
	}
	for trial := 0; trial < 200; trial++ {
		lo := rng.Intn(b.Len() + 1)
		hi := lo + rng.Intn(b.Len()+1-lo)
		want := 0
		for i := lo; i < hi; i++ {
			if b.Test(i) {
				want++
			}
		}
		if got := b.CountRange(lo, hi); got != want {
			t.Fatalf("CountRange(%d,%d) = %d, want %d", lo, hi, got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Set(3)
	c := a.Clone()
	c.Set(10)
	if a.Test(10) {
		t.Fatal("Clone shares storage")
	}
	if !c.Test(3) {
		t.Fatal("Clone lost bit")
	}
}

func TestPropertySetRoundTrip(t *testing.T) {
	f := func(idx []uint16) bool {
		b := New(1 << 16)
		seen := map[int]bool{}
		for _, i := range idx {
			b.Set(int(i))
			seen[int(i)] = true
		}
		if b.Count() != len(seen) {
			return false
		}
		for i := range seen {
			if !b.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicConcurrentSet(t *testing.T) {
	const n = 1 << 14
	a := NewAtomic(n)
	var wg sync.WaitGroup
	var changed [8]int
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 2 { // heavy overlap between goroutines
				if a.TestAndSet(i) {
					changed[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	// Every index was set by someone, and exactly one goroutine won each bit.
	total := 0
	for _, c := range changed {
		total += c
	}
	if a.Count() != n {
		t.Fatalf("Count = %d, want %d", a.Count(), n)
	}
	if total != n {
		t.Fatalf("sum of successful TestAndSet = %d, want %d (linearizability)", total, n)
	}
}

func TestAtomicSnapshotOrInto(t *testing.T) {
	a := NewAtomic(100)
	a.Set(1)
	a.Set(99)
	s := a.Snapshot()
	if s.Count() != 2 || !s.Test(1) || !s.Test(99) {
		t.Fatal("Snapshot mismatch")
	}
	dst := New(100)
	dst.Set(2)
	a.OrInto(dst)
	if dst.Count() != 3 {
		t.Fatalf("OrInto Count = %d, want 3", dst.Count())
	}
}

func TestSegmentedMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 64, 1000, 8192, 100000} {
		for _, owners := range []int{1, 3, 64} {
			flat := New(n)
			seg := NewSegmented(n, owners, 1024)
			for i := 0; i < n; i++ {
				if rng.Intn(3) == 0 {
					flat.Set(i)
					seg.Set(i)
				}
			}
			for i := 0; i < n; i++ {
				if flat.Test(i) != seg.Test(i) {
					t.Fatalf("n=%d owners=%d bit %d mismatch", n, owners, i)
				}
			}
			if flat.Count() != seg.Count() {
				t.Fatalf("n=%d owners=%d count mismatch", n, owners)
			}
		}
	}
}

func TestSegmentedLoadStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 50000
	flat := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			flat.Set(i)
		}
	}
	seg := NewSegmented(n, 64, 1024)
	seg.LoadFrom(flat)
	back := New(n)
	seg.StoreTo(back)
	for i := 0; i < n; i++ {
		if flat.Test(i) != back.Test(i) {
			t.Fatalf("round trip bit %d mismatch", i)
		}
	}
}

func TestSegmentedOwnerMapping(t *testing.T) {
	// 1024-byte lines over 64 owners: the paper's Fig. 7 mapping. Bit i's
	// owner must be (i / 8192) % 64.
	seg := NewSegmented(1<<20, 64, 1024)
	for _, i := range []int{0, 8191, 8192, 16384, 8192*64 - 1, 8192 * 64} {
		want := (i / 8192) % 64
		if got := seg.Owner(i); got != want {
			t.Errorf("Owner(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestBitmapPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Or with mismatched lengths should panic")
		}
	}()
	New(10).Or(New(11))
}

func BenchmarkSet(b *testing.B) {
	bm := New(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bm.Set(i & (1<<20 - 1))
	}
}

func BenchmarkAtomicSet(b *testing.B) {
	bm := NewAtomic(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bm.Set(i & (1<<20 - 1))
	}
}

func BenchmarkCount(b *testing.B) {
	bm := New(1 << 20)
	bm.Fill()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if bm.Count() != 1<<20 {
			b.Fatal("bad count")
		}
	}
}

func TestResetAndCopyFrom(t *testing.T) {
	a := New(100)
	a.Set(5)
	a.Set(99)
	b := New(100)
	b.CopyFrom(a)
	if !b.Test(5) || !b.Test(99) || b.Count() != 2 {
		t.Fatal("CopyFrom lost bits")
	}
	a.Reset()
	if a.Any() {
		t.Fatal("Reset left bits")
	}
	if !b.Test(5) {
		t.Fatal("Reset affected the copy")
	}
}

func TestFromWords(t *testing.T) {
	words := []uint64{0b101, 0}
	b := FromWords(words, 70)
	if !b.Test(0) || b.Test(1) || !b.Test(2) {
		t.Fatal("FromWords bits wrong")
	}
	if b.Len() != 70 {
		t.Fatalf("Len = %d", b.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short word slice accepted")
		}
	}()
	FromWords(words, 1000)
}

func TestString(t *testing.T) {
	b := New(5)
	b.Set(0)
	b.Set(3)
	if got := b.String(); got != "10010" {
		t.Fatalf("String = %q", got)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative length accepted")
		}
	}()
	New(-1)
}

func TestAtomicLenTestReset(t *testing.T) {
	a := NewAtomic(77)
	if a.Len() != 77 {
		t.Fatalf("Len = %d", a.Len())
	}
	a.Set(10)
	if !a.Test(10) || a.Test(11) {
		t.Fatal("Test wrong")
	}
	a.Reset()
	if a.Test(10) || a.Count() != 0 {
		t.Fatal("Reset failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative atomic length accepted")
		}
	}()
	NewAtomic(-1)
}

func TestAtomicOrIntoMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	NewAtomic(10).OrInto(New(11))
}

func TestAndNotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	New(10).AndNot(New(11))
}

func TestCopyFromMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	New(10).CopyFrom(New(11))
}

func TestSegmentedAccessors(t *testing.T) {
	s := NewSegmented(1000, 4, 8)
	if s.Len() != 1000 || s.Owners() != 4 {
		t.Fatalf("Len=%d Owners=%d", s.Len(), s.Owners())
	}
	if lane := s.Lane(0); lane == nil {
		t.Fatal("nil lane")
	}
	for _, bad := range []func(){
		func() { NewSegmented(10, 0, 8) },
		func() { NewSegmented(10, 2, 7) },
		func() { s.LoadFrom(New(5)) },
		func() { s.StoreTo(New(5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad geometry accepted")
				}
			}()
			bad()
		}()
	}
}

func TestNextSetNegativeFrom(t *testing.T) {
	b := New(10)
	b.Set(3)
	if got := b.NextSet(-5); got != 3 {
		t.Fatalf("NextSet(-5) = %d", got)
	}
}

func TestCountRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted range accepted")
		}
	}()
	New(10).CountRange(5, 2)
}
