package bitmap

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Atomic is a bit vector whose Set operations are safe for concurrent use.
// The paper's target chip has no efficient atomics (Section 3.3); the engine
// therefore prefers OCS-RMA style exclusive ownership, but an atomic bitmap
// remains useful for the commodity-CPU kernels and for reference
// implementations the atomics-free kernels are checked against.
type Atomic struct {
	words []atomic.Uint64
	n     int
}

// NewAtomic returns a cleared atomic bitmap of n bits.
func NewAtomic(n int) *Atomic {
	if n < 0 {
		panic(fmt.Sprintf("bitmap: negative length %d", n))
	}
	return &Atomic{words: make([]atomic.Uint64, (n+wordMask)>>wordShift), n: n}
}

// Len returns the number of bits.
func (a *Atomic) Len() int { return a.n }

// Set atomically sets bit i.
func (a *Atomic) Set(i int) {
	w := &a.words[i>>wordShift]
	m := uint64(1) << (uint(i) & wordMask)
	for {
		old := w.Load()
		if old&m != 0 || w.CompareAndSwap(old, old|m) {
			return
		}
	}
}

// TestAndSet atomically sets bit i, reporting whether this call changed it.
func (a *Atomic) TestAndSet(i int) bool {
	w := &a.words[i>>wordShift]
	m := uint64(1) << (uint(i) & wordMask)
	for {
		old := w.Load()
		if old&m != 0 {
			return false
		}
		if w.CompareAndSwap(old, old|m) {
			return true
		}
	}
}

// Test reports whether bit i is set.
func (a *Atomic) Test(i int) bool {
	return a.words[i>>wordShift].Load()&(1<<(uint(i)&wordMask)) != 0
}

// Reset clears every bit. Not safe to run concurrently with setters.
func (a *Atomic) Reset() {
	for i := range a.words {
		a.words[i].Store(0)
	}
}

// Count returns the number of set bits. Only exact when no setters run
// concurrently.
func (a *Atomic) Count() int {
	c := 0
	for i := range a.words {
		c += bits.OnesCount64(a.words[i].Load())
	}
	return c
}

// Snapshot copies the current contents into a plain Bitmap.
func (a *Atomic) Snapshot() *Bitmap {
	b := New(a.n)
	for i := range a.words {
		b.words[i] = a.words[i].Load()
	}
	return b
}

// OrInto ORs the atomic bitmap's words into dst, which must have the same
// length.
func (a *Atomic) OrInto(dst *Bitmap) {
	if dst.n != a.n {
		panic(fmt.Sprintf("bitmap: OrInto length mismatch %d vs %d", dst.n, a.n))
	}
	for i := range a.words {
		dst.words[i] |= a.words[i].Load()
	}
}
