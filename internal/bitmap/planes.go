package bitmap

import "fmt"

// Planes is a stack of q equal-length bit planes over one contiguous word
// backing. The batched multi-source engine keeps one plane per in-flight
// query: collectives (hub syncs, frontier gathers) operate on the whole
// backing in a single call, while per-query kernels work through Plane
// views that alias it. Plane i occupies words [i*Stride, (i+1)*Stride); a
// plane's spare tail bits stay zero as long as callers go through the
// Bitmap API, so whole-backing ORs cannot leak bits between queries.
type Planes struct {
	words  []uint64
	q      int // plane count
	n      int // bits per plane
	stride int // words per plane
}

// NewPlanes allocates a cleared stack of q planes of n bits each.
func NewPlanes(q, n int) *Planes {
	if q < 0 || n < 0 {
		panic(fmt.Sprintf("bitmap: invalid plane stack %dx%d", q, n))
	}
	stride := (n + wordMask) >> wordShift
	return &Planes{words: make([]uint64, q*stride), q: q, n: n, stride: stride}
}

// Plane returns a bitmap view of plane i. The view aliases the backing: bits
// set through it are visible to Words() immediately.
func (p *Planes) Plane(i int) *Bitmap {
	if i < 0 || i >= p.q {
		panic(fmt.Sprintf("bitmap: plane %d out of [0,%d)", i, p.q))
	}
	return FromWords(p.words[i*p.stride:(i+1)*p.stride], p.n)
}

// Words exposes the whole contiguous backing (q*Stride words, plane-major).
func (p *Planes) Words() []uint64 { return p.words }

// Stride returns the per-plane word count.
func (p *Planes) Stride() int { return p.stride }

// Count returns the number of planes.
func (p *Planes) Count() int { return p.q }

// BitsPerPlane returns each plane's bit length.
func (p *Planes) BitsPerPlane() int { return p.n }

// Reset clears every plane.
func (p *Planes) Reset() {
	for i := range p.words {
		p.words[i] = 0
	}
}
