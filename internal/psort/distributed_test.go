package psort

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/topology"
)

func runDistributed(t *testing.T, ranks int, data [][]uint64) [][]uint64 {
	t.Helper()
	mesh := topology.SquarestMesh(ranks)
	w, err := comm.NewWorld(ranks, mesh, topology.NewSunway(ranks))
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]uint64, ranks)
	var mu sync.Mutex
	w.Run(func(r *comm.Rank) {
		res := DistributedSortUint64(r.World, data[r.ID])
		mu.Lock()
		out[r.ID] = res
		mu.Unlock()
	})
	return out
}

func TestDistributedSortGlobalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ranks := range []int{1, 2, 4, 8} {
		data := make([][]uint64, ranks)
		var all []uint64
		for r := range data {
			n := 1000 + rng.Intn(2000)
			data[r] = make([]uint64, n)
			for i := range data[r] {
				data[r][i] = rng.Uint64() % 10000
				all = append(all, data[r][i])
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		out := runDistributed(t, ranks, data)
		// Concatenation equals the globally sorted multiset.
		var got []uint64
		for _, part := range out {
			// Each rank's part must itself be sorted.
			for i := 1; i < len(part); i++ {
				if part[i-1] > part[i] {
					t.Fatalf("ranks=%d: local output not sorted", ranks)
				}
			}
			got = append(got, part...)
		}
		if len(got) != len(all) {
			t.Fatalf("ranks=%d: %d keys out, want %d", ranks, len(got), len(all))
		}
		for i := range all {
			if got[i] != all[i] {
				t.Fatalf("ranks=%d: position %d = %d, want %d", ranks, i, got[i], all[i])
			}
		}
	}
}

func TestDistributedSortBalance(t *testing.T) {
	// PSRS guarantee: no rank ends with more than ~2n/p keys.
	rng := rand.New(rand.NewSource(2))
	const ranks = 8
	data := make([][]uint64, ranks)
	total := 0
	for r := range data {
		data[r] = make([]uint64, 4000)
		for i := range data[r] {
			data[r][i] = rng.Uint64()
		}
		total += len(data[r])
	}
	out := runDistributed(t, ranks, data)
	for r, part := range out {
		if len(part) > 2*total/ranks+ranks {
			t.Fatalf("rank %d holds %d of %d keys (bound %d)", r, len(part), total, 2*total/ranks)
		}
	}
}

func TestPSRSSampleIndicesRegular(t *testing.T) {
	// The sample positions must be the interior (s+1)·n/(p+1) quantiles:
	// strictly inside the run when n >> p (index 0 and the very tail are
	// biased order statistics), evenly spaced within rounding, and
	// monotone. The former s·n/p rule sampled index 0 from every rank and
	// never looked past (p-1)/p of the run.
	for _, tc := range []struct{ n, p int }{{9000, 8}, {4096, 4}, {100, 8}, {40000, 16}} {
		stride := tc.n / (tc.p + 1)
		prev := -1
		for s := 0; s < tc.p; s++ {
			idx := psrsSampleIdx(tc.n, tc.p, s)
			if idx <= 0 || idx >= tc.n {
				t.Fatalf("n=%d p=%d s=%d: index %d not interior", tc.n, tc.p, s, idx)
			}
			if idx <= prev {
				t.Fatalf("n=%d p=%d s=%d: index %d not increasing past %d", tc.n, tc.p, s, idx, prev)
			}
			if prev >= 0 {
				if gap := idx - prev; gap < stride-1 || gap > stride+1 {
					t.Fatalf("n=%d p=%d s=%d: stride %d, want %d±1", tc.n, tc.p, s, gap, stride)
				}
			}
			prev = idx
		}
		if tail := tc.n - prev; tail > stride+1 {
			t.Fatalf("n=%d p=%d: last sample %d leaves tail %d unsampled (stride %d)", tc.n, tc.p, prev, tail, stride)
		}
	}
}

func TestDistributedSortPivotBalanceSkewedRanks(t *testing.T) {
	// Regression for the sampling rule: the old local[len*s/p] positions
	// always re-sampled index 0 and never the tail, so a heavily skewed
	// size distribution (one huge rank, several tiny ones) produced a
	// pivot pool dominated by the tiny ranks' low keys and piled most of
	// the data onto a single output rank. The standard (s+1)·n/(p+1)
	// interior samples keep every output rank within the PSRS 2n/p bound
	// even under this skew.
	rng := rand.New(rand.NewSource(5))
	const ranks = 8
	data := make([][]uint64, ranks)
	total := 0
	for r := range data {
		n := 64
		if r == 0 {
			n = 40000
		}
		data[r] = make([]uint64, n)
		for i := range data[r] {
			data[r][i] = rng.Uint64() % 100000
		}
		total += n
	}
	out := runDistributed(t, ranks, data)
	bound := 2*total/ranks + ranks
	got := 0
	for r, part := range out {
		if len(part) > bound {
			t.Fatalf("rank %d holds %d of %d keys (bound %d): pivots skewed", r, len(part), total, bound)
		}
		got += len(part)
	}
	if got != total {
		t.Fatalf("kept %d keys, want %d", got, total)
	}
}

func TestDistributedSortEmptyRanks(t *testing.T) {
	data := [][]uint64{{5, 3, 1}, {}, {9, 2}, {}}
	out := runDistributed(t, 4, data)
	var got []uint64
	for _, part := range out {
		got = append(got, part...)
	}
	want := []uint64{1, 2, 3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestDistributedSortDuplicatesOnly(t *testing.T) {
	data := [][]uint64{{7, 7, 7}, {7, 7}, {7}, {7, 7, 7, 7}}
	out := runDistributed(t, 4, data)
	count := 0
	for _, part := range out {
		for _, k := range part {
			if k != 7 {
				t.Fatalf("stray key %d", k)
			}
			count++
		}
	}
	if count != 10 {
		t.Fatalf("kept %d keys, want 10", count)
	}
}

func TestDistributedSortBy(t *testing.T) {
	type rec struct {
		k uint64
		v int
	}
	const ranks = 4
	mesh := topology.SquarestMesh(ranks)
	w, err := comm.NewWorld(ranks, mesh, topology.NewSunway(ranks))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	data := make([][]rec, ranks)
	var allKeys []uint64
	for r := range data {
		for i := 0; i < 500; i++ {
			k := rng.Uint64() % 100
			data[r] = append(data[r], rec{k: k, v: r*1000 + i})
			allKeys = append(allKeys, k)
		}
	}
	sort.Slice(allKeys, func(i, j int) bool { return allKeys[i] < allKeys[j] })
	out := make([][]rec, ranks)
	var mu sync.Mutex
	w.Run(func(r *comm.Rank) {
		res := DistributedSortBy(r.World, data[r.ID], func(x rec) uint64 { return x.k })
		mu.Lock()
		out[r.ID] = res
		mu.Unlock()
	})
	var gotKeys []uint64
	for _, part := range out {
		for i := 1; i < len(part); i++ {
			if part[i-1].k > part[i].k {
				t.Fatal("rank output not sorted by key")
			}
		}
		for _, x := range part {
			gotKeys = append(gotKeys, x.k)
		}
	}
	if len(gotKeys) != len(allKeys) {
		t.Fatalf("%d records out, want %d", len(gotKeys), len(allKeys))
	}
	for i := range allKeys {
		if gotKeys[i] != allKeys[i] {
			t.Fatalf("key order broken at %d", i)
		}
	}
}
