package psort

import (
	"encoding/binary"
	"sort"
	"testing"
)

// FuzzUint64sSortsPermutation checks the two invariants any sort must keep —
// output ascending, output a permutation of the input — on both code paths:
// the small-slice sort.Slice fallback and the PSRS path (forced by
// amplifying the fuzzed keys past the 4096-element threshold).
func FuzzUint64sSortsPermutation(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint8(3))
	f.Add([]byte("\xff\xff\xff\xff\xff\xff\xff\xff\x01\x00\x00\x00\x00\x00\x00\x00"), uint8(4))
	f.Add([]byte("graph traversal at scale!"), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, workers uint8) {
		keys := make([]uint64, len(data)/8)
		for i := range keys {
			keys[i] = binary.LittleEndian.Uint64(data[i*8:])
		}
		w := int(workers)%8 + 1

		check := func(got, orig []uint64, path string) {
			t.Helper()
			want := append([]uint64(nil), orig...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				t.Fatalf("%s: length changed: %d -> %d", path, len(want), len(got))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: element %d = %d, want %d (sorted permutation)", path, i, got[i], want[i])
				}
			}
		}

		small := append([]uint64(nil), keys...)
		Uint64s(small, w)
		check(small, keys, "small")

		// Amplify past the PSRS threshold so the parallel path runs too.
		if len(keys) > 0 {
			big := make([]uint64, 0, 5000)
			for len(big) < 5000 {
				big = append(big, keys...)
			}
			orig := append([]uint64(nil), big...)
			Uint64s(big, w)
			check(big, orig, "psrs")
		}
	})
}

// FuzzRadixSortMatchesSort pins the raw radix kernel bit-equal to the stdlib
// comparison sort on arbitrary key sets — no profitability gate, every digit
// plan the fuzzer can produce (dense, full-width, high-bit-skewed) runs
// through histogram + prefix-sum + scatter. The amplified pass stresses the
// parallel scatter's per-chunk cursors past one chunk per worker.
func FuzzRadixSortMatchesSort(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint8(3))
	// High-bit-skewed: only the top byte varies, so seven histograms
	// collapse to a single bucket and must be skipped.
	f.Add([]byte("\x00\x00\x00\x00\x00\x00\x00\x80\x00\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00\xff"), uint8(4))
	f.Add([]byte("\xff\xff\xff\xff\xff\xff\xff\xff\x01\x00\x00\x00\x00\x00\x00\x00"), uint8(2))
	f.Add([]byte("radix beats compare here"), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, workers uint8) {
		keys := make([]uint64, len(data)/8)
		for i := range keys {
			keys[i] = binary.LittleEndian.Uint64(data[i*8:])
		}
		w := int(workers)%8 + 1

		check := func(orig []uint64, path string) {
			t.Helper()
			got := append([]uint64(nil), orig...)
			RadixSortUint64(got, w)
			want := append([]uint64(nil), orig...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: element %d = %#x, want %#x", path, i, got[i], want[i])
				}
			}
		}

		check(keys, "small")
		if len(keys) > 0 {
			big := make([]uint64, 0, 5000)
			for len(big) < 5000 {
				big = append(big, keys...)
			}
			check(big, "amplified")
		}
	})
}
