package psort

import (
	"math/bits"
	"sync"
)

// LSD radix partitioning sort, specialized for the dense uint64 keys the
// preprocessing produces ((component, vertex) composites, hub IDs, local
// indices). Each pass is a stable counting-sort on one 8-bit digit:
// histogram, prefix sum, scatter — all three parallel across the existing
// worker chunking, with per-chunk write cursors so concurrent scatters stay
// stable and never share a destination slot. Digits that are constant across
// the whole input (the common case for dense keys, whose high bytes are all
// zero) cost one histogram scan and no scatter, which is where radix beats
// the comparison sorts outright.
//
// Radix is not a universal win: with few keys spread over the full 64-bit
// range, every digit is live and 8 scatter rounds lose to an O(n log n)
// comparison sort. radixWorthwhile is that gate; Uint64s and Sorter.Sort
// fall back to the PSRS/merge path (the PARADIS-flavoured kernels) when it
// says no.

const (
	radixBits    = 8
	radixBuckets = 1 << radixBits
	radixDigits  = 64 / radixBits
)

// radixChunks splits n elements into per-worker [lo, hi) ranges.
func radixChunks(n, workers int) [][2]int {
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	var out [][2]int
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// radixActiveDigits scans keys once (in parallel) and returns the digit
// positions that actually vary. A digit whose 256-way histogram has a single
// occupied bucket orders nothing and is skipped entirely.
func radixActiveDigits(keys []uint64, workers int) []int {
	chunks := radixChunks(len(keys), workers)
	hists := make([][radixDigits][radixBuckets]int64, len(chunks))
	var wg sync.WaitGroup
	for c, b := range chunks {
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			h := &hists[c]
			for _, k := range keys[lo:hi] {
				for d := 0; d < radixDigits; d++ {
					h[d][(k>>(uint(d)*radixBits))&(radixBuckets-1)]++
				}
			}
		}(c, b[0], b[1])
	}
	wg.Wait()
	var active []int
	for d := 0; d < radixDigits; d++ {
		occupied := 0
		for b := 0; b < radixBuckets; b++ {
			var total int64
			for c := range hists {
				total += hists[c][d][b]
			}
			if total > 0 {
				occupied++
				if occupied > 1 {
					active = append(active, d)
					break
				}
			}
		}
	}
	return active
}

// radixWorthwhile is the fallback rule: a scatter round touches every key
// twice (count + permute), so radix wins while the live pass count stays
// under about half the comparison sort's log2(n) depth — dense keys need 2–3
// passes and win at any size, while full-width random keys at small n defeat
// it and fall back to PSRS/merge.
func radixWorthwhile(n, passes int) bool {
	return passes*2 <= bits.Len(uint(n))
}

// radixCursors computes, for one digit, the per-chunk stable write cursors:
// chunk c's bucket b starts at the global bucket offset plus everything
// earlier chunks put in that bucket. hists[c][b] is chunk c's count of
// digit value b in the current src layout.
func radixCursors(hists [][radixBuckets]int64) {
	var gstart [radixBuckets]int64
	var acc int64
	for b := 0; b < radixBuckets; b++ {
		gstart[b] = acc
		for c := range hists {
			acc += hists[c][b]
		}
	}
	var run [radixBuckets]int64
	for c := range hists {
		for b := 0; b < radixBuckets; b++ {
			cnt := hists[c][b]
			hists[c][b] = gstart[b] + run[b]
			run[b] += cnt
		}
	}
}

// radixSortUint64 sorts keys by the given live digit passes (least
// significant first), ping-ponging through one scratch buffer.
func radixSortUint64(keys []uint64, active []int, workers int) {
	if len(active) == 0 || len(keys) < 2 {
		return
	}
	chunks := radixChunks(len(keys), workers)
	hists := make([][radixBuckets]int64, len(chunks))
	scratch := make([]uint64, len(keys))
	src, dst := keys, scratch
	for _, d := range active {
		shift := uint(d) * radixBits
		var wg sync.WaitGroup
		for c, b := range chunks {
			wg.Add(1)
			go func(c, lo, hi int) {
				defer wg.Done()
				h := &hists[c]
				*h = [radixBuckets]int64{}
				for _, k := range src[lo:hi] {
					h[(k>>shift)&(radixBuckets-1)]++
				}
			}(c, b[0], b[1])
		}
		wg.Wait()
		radixCursors(hists)
		for c, b := range chunks {
			wg.Add(1)
			go func(c, lo, hi int) {
				defer wg.Done()
				cur := &hists[c]
				for _, k := range src[lo:hi] {
					b := (k >> shift) & (radixBuckets - 1)
					dst[cur[b]] = k
					cur[b]++
				}
			}(c, b[0], b[1])
		}
		wg.Wait()
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// RadixSortUint64 sorts keys ascending with the parallel LSD radix kernel,
// unconditionally — no comparison fallback. This is the raw kernel behind
// Uint64s, exported so the differential fuzz target and benchmarks can pin
// its output bit-for-bit against the stdlib sort. 0 workers means
// GOMAXPROCS.
func RadixSortUint64(keys []uint64, workers int) {
	workers = defaultWorkers(workers)
	radixSortUint64(keys, radixActiveDigits(keys, workers), workers)
}

// radixSortKeyed stably sorts items by their pre-extracted keys, carrying
// both arrays through the scatter passes in lockstep. LSD radix is stable by
// construction, so Sorter's equal-key order is preserved.
func radixSortKeyed[T any](items []T, keys []uint64, active []int, workers int) {
	if len(active) == 0 || len(items) < 2 {
		return
	}
	chunks := radixChunks(len(items), workers)
	hists := make([][radixBuckets]int64, len(chunks))
	keyScratch := make([]uint64, len(keys))
	itemScratch := make([]T, len(items))
	ksrc, kdst := keys, keyScratch
	isrc, idst := items, itemScratch
	for _, d := range active {
		shift := uint(d) * radixBits
		var wg sync.WaitGroup
		for c, b := range chunks {
			wg.Add(1)
			go func(c, lo, hi int) {
				defer wg.Done()
				h := &hists[c]
				*h = [radixBuckets]int64{}
				for _, k := range ksrc[lo:hi] {
					h[(k>>shift)&(radixBuckets-1)]++
				}
			}(c, b[0], b[1])
		}
		wg.Wait()
		radixCursors(hists)
		for c, b := range chunks {
			wg.Add(1)
			go func(c, lo, hi int) {
				defer wg.Done()
				cur := &hists[c]
				for i := lo; i < hi; i++ {
					k := ksrc[i]
					b := (k >> shift) & (radixBuckets - 1)
					kdst[cur[b]] = k
					idst[cur[b]] = isrc[i]
					cur[b]++
				}
			}(c, b[0], b[1])
		}
		wg.Wait()
		ksrc, kdst = kdst, ksrc
		isrc, idst = idst, isrc
	}
	if &isrc[0] != &items[0] {
		copy(items, isrc)
		copy(keys, ksrc)
	}
}
