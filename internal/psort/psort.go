// Package psort implements the parallel sorting machinery the paper's
// preprocessing relies on (Section 5, "In-place global sort"): Parallel
// Sorting by Regular Sampling (Shi & Schaeffer) across workers, with a
// PARADIS-flavoured in-place parallel radix partition as the local kernel.
// The partitioner uses these to split the edge list into the six degree-aware
// components without materializing a second copy of the graph.
package psort

import (
	"runtime"
	"sort"
	"sync"
)

func defaultWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Uint64s sorts keys ascending across workers (0 = GOMAXPROCS): LSD radix
// partitioning when the key distribution makes it profitable (dense keys
// with few live digits), PSRS with comparison kernels otherwise.
func Uint64s(keys []uint64, workers int) {
	workers = defaultWorkers(workers)
	if len(keys) < 4096 {
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		return
	}
	if active := radixActiveDigits(keys, workers); radixWorthwhile(len(keys), len(active)) {
		radixSortUint64(keys, active, workers)
		return
	}
	if workers == 1 {
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		return
	}
	psrs(keys, workers)
}

// psrs implements Parallel Sorting by Regular Sampling:
//  1. split into p chunks, sort each locally;
//  2. take p regular samples per chunk, sort the p² samples, choose p-1 pivots;
//  3. partition every chunk by the pivots;
//  4. worker i merges the i-th partition of every chunk.
func psrs(keys []uint64, p int) {
	n := len(keys)
	chunk := (n + p - 1) / p
	bounds := make([][2]int, 0, p)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		bounds = append(bounds, [2]int{lo, hi})
	}
	p = len(bounds)

	// Phase 1: local sorts.
	var wg sync.WaitGroup
	for _, b := range bounds {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s := keys[lo:hi]
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		}(b[0], b[1])
	}
	wg.Wait()

	// Phase 2: regular sampling.
	samples := make([]uint64, 0, p*p)
	for _, b := range bounds {
		size := b[1] - b[0]
		for s := 0; s < p; s++ {
			samples = append(samples, keys[b[0]+size*s/p])
		}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pivots := make([]uint64, p-1)
	for i := 1; i < p; i++ {
		pivots[i-1] = samples[i*p]
	}

	// Phase 3: locate pivot boundaries inside each sorted chunk.
	// parts[c][k] is the start offset of partition k within chunk c.
	parts := make([][]int, p)
	for c, b := range bounds {
		s := keys[b[0]:b[1]]
		offs := make([]int, p+1)
		for k, piv := range pivots {
			offs[k+1] = sort.Search(len(s), func(i int) bool { return s[i] > piv })
		}
		offs[p] = len(s)
		parts[c] = offs
	}

	// Phase 4: worker k multimerges partition k of every chunk into out.
	out := make([]uint64, n)
	// Compute output offsets per partition.
	partStart := make([]int, p+1)
	for k := 0; k < p; k++ {
		total := 0
		for c := range bounds {
			total += parts[c][k+1] - parts[c][k]
		}
		partStart[k+1] = partStart[k] + total
	}
	for k := 0; k < p; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			dst := out[partStart[k]:partStart[k+1]]
			srcs := make([][]uint64, 0, p)
			for c, b := range bounds {
				seg := keys[b[0]+parts[c][k] : b[0]+parts[c][k+1]]
				if len(seg) > 0 {
					srcs = append(srcs, seg)
				}
			}
			multiMerge(dst, srcs)
		}(k)
	}
	wg.Wait()
	copy(keys, out)
}

// multiMerge merges the pre-sorted sources into dst (len(dst) = total input).
func multiMerge(dst []uint64, srcs [][]uint64) {
	switch len(srcs) {
	case 0:
		return
	case 1:
		copy(dst, srcs[0])
		return
	}
	// Simple loser-free repeated-min merge; p is small (≤ GOMAXPROCS).
	idx := make([]int, len(srcs))
	for o := range dst {
		best := -1
		var bestVal uint64
		for s, i := range idx {
			if i >= len(srcs[s]) {
				continue
			}
			if best == -1 || srcs[s][i] < bestVal {
				best, bestVal = s, srcs[s][i]
			}
		}
		dst[o] = bestVal
		idx[best]++
	}
}

// Sorter abstracts sorting of arbitrary records by a uint64 key, used for
// sorting edges by (component, destination) style composite keys.
type Sorter[T any] struct {
	Key func(T) uint64
}

// Sort stably sorts items ascending by key: keyed LSD radix when the
// extracted key distribution is profitable, parallel stable merge sort
// otherwise. Both paths preserve equal-key input order.
func (s Sorter[T]) Sort(items []T, workers int) {
	workers = defaultWorkers(workers)
	if len(items) < 4096 {
		sort.SliceStable(items, func(i, j int) bool { return s.Key(items[i]) < s.Key(items[j]) })
		return
	}
	// Extract keys once, in parallel; the radix passes then never call
	// s.Key again (the merge fallback still does).
	keys := make([]uint64, len(items))
	var kw sync.WaitGroup
	for _, b := range radixChunks(len(items), workers) {
		kw.Add(1)
		go func(lo, hi int) {
			defer kw.Done()
			for i := lo; i < hi; i++ {
				keys[i] = s.Key(items[i])
			}
		}(b[0], b[1])
	}
	kw.Wait()
	if active := radixActiveDigits(keys, workers); radixWorthwhile(len(items), len(active)) {
		radixSortKeyed(items, keys, active, workers)
		return
	}
	if workers == 1 {
		sort.SliceStable(items, func(i, j int) bool { return s.Key(items[i]) < s.Key(items[j]) })
		return
	}
	s.mergeSort(items, workers)
}

// mergeSort is the comparison fallback: sort chunks in parallel, then
// iteratively merge pairs.
func (s Sorter[T]) mergeSort(items []T, workers int) {
	n := len(items)
	chunk := (n + workers - 1) / workers
	type seg struct{ lo, hi int }
	var segs []seg
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		segs = append(segs, seg{lo, hi})
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			part := items[lo:hi]
			sort.SliceStable(part, func(i, j int) bool { return s.Key(part[i]) < s.Key(part[j]) })
		}(lo, hi)
	}
	wg.Wait()
	buf := make([]T, n)
	src := items
	dst := buf
	for len(segs) > 1 {
		var nextSegs []seg
		var mw sync.WaitGroup
		for i := 0; i < len(segs); i += 2 {
			if i+1 == len(segs) {
				copy(dst[segs[i].lo:segs[i].hi], src[segs[i].lo:segs[i].hi])
				nextSegs = append(nextSegs, segs[i])
				continue
			}
			a, b := segs[i], segs[i+1]
			nextSegs = append(nextSegs, seg{a.lo, b.hi})
			mw.Add(1)
			go func(a, b seg) {
				defer mw.Done()
				mergeInto(dst[a.lo:b.hi], src[a.lo:a.hi], src[b.lo:b.hi], s.Key)
			}(a, b)
		}
		mw.Wait()
		src, dst = dst, src
		segs = nextSegs
	}
	if &src[0] != &items[0] {
		copy(items, src)
	}
}

func mergeInto[T any](dst, a, b []T, key func(T) uint64) {
	i, j := 0, 0
	for o := range dst {
		if i < len(a) && (j >= len(b) || key(a[i]) <= key(b[j])) {
			dst[o] = a[i]
			i++
		} else {
			dst[o] = b[j]
			j++
		}
	}
}

// InPlacePartition performs a PARADIS-style in-place parallel bucket
// partition: it permutes items so that all records of bucket 0 precede bucket
// 1, etc., and returns the bucket boundary offsets (len = buckets+1). The
// bucket function must be stable for a given item. This is the in-place
// splitting kernel behind the six-component subgraph construction.
func InPlacePartition[T any](items []T, buckets int, bucket func(T) int) []int {
	counts := make([]int, buckets)
	for _, it := range items {
		counts[bucket(it)]++
	}
	offs := make([]int, buckets+1)
	for b := 0; b < buckets; b++ {
		offs[b+1] = offs[b] + counts[b]
	}
	// Cycle-chasing permutation: head[b] is the next unplaced slot of bucket
	// b; tail[b] is its end. Classic in-place counting-sort permutation, the
	// sequential skeleton of PARADIS (its speculative repair loop is not
	// needed at our sizes; parallel callers shard by range first).
	head := make([]int, buckets)
	copy(head, offs[:buckets])
	tail := offs[1:]
	for b := 0; b < buckets; b++ {
		for head[b] < tail[b] {
			it := items[head[b]]
			tb := bucket(it)
			if tb == b {
				head[b]++
				continue
			}
			// Swap into its target bucket's head slot.
			items[head[b]], items[head[tb]] = items[head[tb]], items[head[b]]
			head[tb]++
		}
	}
	return offs
}

// ParallelPartition shards items across workers, partitions each shard in
// place, then computes global bucket offsets and gathers buckets with a
// parallel copy into the output slice (which must have len(items)). It
// returns bucket offsets into out.
func ParallelPartition[T any](items, out []T, buckets, workers int, bucket func(T) int) []int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(out) != len(items) {
		panic("psort: out length mismatch")
	}
	n := len(items)
	chunk := (n + workers - 1) / workers
	type shard struct {
		lo   int
		offs []int
	}
	var shards []shard
	var wg sync.WaitGroup
	var mu sync.Mutex
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			offs := InPlacePartition(items[lo:hi], buckets, bucket)
			mu.Lock()
			shards = append(shards, shard{lo, offs})
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	sort.Slice(shards, func(i, j int) bool { return shards[i].lo < shards[j].lo })
	// Global offsets.
	global := make([]int, buckets+1)
	for _, sh := range shards {
		for b := 0; b < buckets; b++ {
			global[b+1] += sh.offs[b+1] - sh.offs[b]
		}
	}
	for b := 0; b < buckets; b++ {
		global[b+1] += global[b]
	}
	// Gather: per (shard, bucket) copy; destinations are disjoint.
	cursor := make([]int, buckets)
	copy(cursor, global[:buckets])
	for _, sh := range shards {
		for b := 0; b < buckets; b++ {
			seg := items[sh.lo+sh.offs[b] : sh.lo+sh.offs[b+1]]
			wg.Add(1)
			go func(dst int, seg []T) {
				defer wg.Done()
				copy(out[dst:], seg)
			}(cursor[b], seg)
			cursor[b] += len(seg)
		}
	}
	wg.Wait()
	return global
}
