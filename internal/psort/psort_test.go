package psort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestUint64sSmall(t *testing.T) {
	keys := []uint64{5, 3, 9, 1, 1, 0}
	Uint64s(keys, 4)
	want := []uint64{0, 1, 1, 3, 5, 9}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys[%d] = %d, want %d", i, keys[i], want[i])
		}
	}
}

func TestUint64sLargeMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 4095, 4096, 100000} {
		for _, workers := range []int{1, 2, 7, 16} {
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = rng.Uint64() % 1000 // many duplicates
			}
			ref := append([]uint64(nil), keys...)
			sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
			Uint64s(keys, workers)
			for i := range keys {
				if keys[i] != ref[i] {
					t.Fatalf("n=%d workers=%d: keys[%d] = %d, want %d", n, workers, i, keys[i], ref[i])
				}
			}
		}
	}
}

func TestUint64sPropertyPermutationAndSorted(t *testing.T) {
	f := func(keys []uint64) bool {
		in := map[uint64]int{}
		for _, k := range keys {
			in[k]++
		}
		cp := append([]uint64(nil), keys...)
		Uint64s(cp, 3)
		for i := 1; i < len(cp); i++ {
			if cp[i-1] > cp[i] {
				return false
			}
		}
		out := map[uint64]int{}
		for _, k := range cp {
			out[k]++
		}
		if len(in) != len(out) {
			return false
		}
		for k, c := range in {
			if out[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

type rec struct {
	key uint64
	val int
}

func TestSorterStability(t *testing.T) {
	items := []rec{{2, 0}, {1, 1}, {2, 2}, {1, 3}, {2, 4}}
	Sorter[rec]{Key: func(r rec) uint64 { return r.key }}.Sort(items, 1)
	want := []rec{{1, 1}, {1, 3}, {2, 0}, {2, 2}, {2, 4}}
	for i := range want {
		if items[i] != want[i] {
			t.Fatalf("items[%d] = %v, want %v", i, items[i], want[i])
		}
	}
}

func TestSorterLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, workers := range []int{1, 4, 9} {
		items := make([]rec, 50000)
		for i := range items {
			items[i] = rec{key: rng.Uint64() % 500, val: i}
		}
		Sorter[rec]{Key: func(r rec) uint64 { return r.key }}.Sort(items, workers)
		for i := 1; i < len(items); i++ {
			if items[i-1].key > items[i].key {
				t.Fatalf("workers=%d: not sorted at %d", workers, i)
			}
			if items[i-1].key == items[i].key && items[i-1].val > items[i].val {
				t.Fatalf("workers=%d: not stable at %d", workers, i)
			}
		}
	}
}

func TestInPlacePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := make([]int, 10000)
	for i := range items {
		items[i] = rng.Intn(1000)
	}
	counts := map[int]int{}
	for _, it := range items {
		counts[it%7]++
	}
	offs := InPlacePartition(items, 7, func(x int) int { return x % 7 })
	if offs[0] != 0 || offs[7] != len(items) {
		t.Fatalf("bad boundary offsets %v", offs)
	}
	for b := 0; b < 7; b++ {
		if offs[b+1]-offs[b] != counts[b] {
			t.Fatalf("bucket %d size %d, want %d", b, offs[b+1]-offs[b], counts[b])
		}
		for _, it := range items[offs[b]:offs[b+1]] {
			if it%7 != b {
				t.Fatalf("item %d in bucket %d", it, b)
			}
		}
	}
}

func TestInPlacePartitionEmptyBuckets(t *testing.T) {
	items := []int{4, 4, 4}
	offs := InPlacePartition(items, 8, func(x int) int { return x })
	for b := 0; b < 8; b++ {
		want := 0
		if b == 4 {
			want = 3
		}
		if offs[b+1]-offs[b] != want {
			t.Fatalf("bucket %d size %d, want %d", b, offs[b+1]-offs[b], want)
		}
	}
}

func TestParallelPartitionMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := make([]int, 75000)
	for i := range items {
		items[i] = rng.Intn(100000)
	}
	bucket := func(x int) int { return x % 13 }
	counts := map[int]int{}
	for _, it := range items {
		counts[bucket(it)]++
	}
	out := make([]int, len(items))
	offs := ParallelPartition(items, out, 13, 8, bucket)
	for b := 0; b < 13; b++ {
		if offs[b+1]-offs[b] != counts[b] {
			t.Fatalf("bucket %d size %d, want %d", b, offs[b+1]-offs[b], counts[b])
		}
		for _, it := range out[offs[b]:offs[b+1]] {
			if bucket(it) != b {
				t.Fatalf("misplaced item %d in bucket %d", it, b)
			}
		}
	}
	// Multiset preserved.
	sum1, sum2 := 0, 0
	for i := range items {
		sum1 += items[i]
		sum2 += out[i]
	}
	if sum1 != sum2 {
		t.Fatal("ParallelPartition lost items")
	}
}

func TestInPlacePartitionProperty(t *testing.T) {
	f := func(raw []uint8, bucketsRaw uint8) bool {
		buckets := int(bucketsRaw%16) + 1
		items := make([]int, len(raw))
		for i, r := range raw {
			items[i] = int(r)
		}
		offs := InPlacePartition(items, buckets, func(x int) int { return x % buckets })
		if offs[buckets] != len(items) {
			return false
		}
		for b := 0; b < buckets; b++ {
			for _, it := range items[offs[b]:offs[b+1]] {
				if it%buckets != b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64s1M(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	base := make([]uint64, 1<<20)
	for i := range base {
		base[i] = rng.Uint64()
	}
	keys := make([]uint64, len(base))
	b.SetBytes(int64(len(base)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(keys, base)
		Uint64s(keys, 0)
	}
}

func BenchmarkParallelPartition1M(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	base := make([]int, 1<<20)
	for i := range base {
		base[i] = rng.Int()
	}
	items := make([]int, len(base))
	out := make([]int, len(base))
	b.SetBytes(int64(len(base)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(items, base)
		ParallelPartition(items, out, 64, 0, func(x int) int { return x & 63 })
	}
}

func TestParadisPartitionMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 100, 4095, 4096, 100000} {
		for _, workers := range []int{1, 2, 8} {
			for _, buckets := range []int{1, 2, 7, 64} {
				items := make([]int, n)
				for i := range items {
					items[i] = rng.Intn(1 << 20)
				}
				ref := append([]int(nil), items...)
				wantOffs := InPlacePartition(ref, buckets, func(x int) int { return x % buckets })
				gotOffs := ParadisPartition(items, buckets, workers, func(x int) int { return x % buckets })
				for b := 0; b <= buckets; b++ {
					if wantOffs[b] != gotOffs[b] {
						t.Fatalf("n=%d w=%d b=%d: offs differ", n, workers, buckets)
					}
				}
				for b := 0; b < buckets; b++ {
					for _, it := range items[gotOffs[b]:gotOffs[b+1]] {
						if it%buckets != b {
							t.Fatalf("n=%d w=%d buckets=%d: misplaced item", n, workers, buckets)
						}
					}
				}
				// Multiset preserved.
				sum1, sum2 := 0, 0
				for i := range items {
					sum1 += items[i]
					sum2 += ref[i]
				}
				if sum1 != sum2 {
					t.Fatalf("n=%d: items lost", n)
				}
			}
		}
	}
}

func TestParadisAdversarialSwapPattern(t *testing.T) {
	// Two buckets perfectly crossed: bucket 0's range holds only 1-records
	// and vice versa — maximal misplacement, exercises repair/rotation.
	const n = 1 << 16
	items := make([]int, n)
	for i := range items {
		if i < n/2 {
			items[i] = 1
		} else {
			items[i] = 0
		}
	}
	offs := ParadisPartition(items, 2, 8, func(x int) int { return x })
	if offs[1] != n/2 {
		t.Fatalf("boundary %d", offs[1])
	}
	for i, it := range items {
		want := 0
		if i >= n/2 {
			want = 1
		}
		if it != want {
			t.Fatalf("position %d = %d", i, it)
		}
	}
}

func TestParadisSkewedBuckets(t *testing.T) {
	// One giant bucket plus many tiny ones (the degree-skew shape).
	rng := rand.New(rand.NewSource(8))
	items := make([]int, 200000)
	for i := range items {
		if rng.Intn(10) != 0 {
			items[i] = 0
		} else {
			items[i] = 1 + rng.Intn(255)
		}
	}
	offs := ParadisPartition(items, 256, 8, func(x int) int { return x })
	for b := 0; b < 256; b++ {
		for _, it := range items[offs[b]:offs[b+1]] {
			if it != b {
				t.Fatalf("bucket %d holds %d", b, it)
			}
		}
	}
}

func TestParadisProperty(t *testing.T) {
	f := func(raw []uint8, bRaw uint8) bool {
		buckets := int(bRaw%16) + 1
		items := make([]int, 0, len(raw)*64)
		// Inflate so the parallel path (>=4096) is exercised sometimes.
		for _, r := range raw {
			for k := 0; k < 64; k++ {
				items = append(items, int(r)+k)
			}
		}
		offs := ParadisPartition(items, buckets, 4, func(x int) int { return x % buckets })
		if offs[buckets] != len(items) {
			return false
		}
		for b := 0; b < buckets; b++ {
			for _, it := range items[offs[b]:offs[b+1]] {
				if it%buckets != b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParadisPartition1M(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	base := make([]int, 1<<20)
	for i := range base {
		base[i] = rng.Int()
	}
	items := make([]int, len(base))
	b.SetBytes(int64(len(base)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(items, base)
		ParadisPartition(items, 256, 0, func(x int) int { return x & 255 })
	}
}
