package psort

import (
	"sort"

	"repro/internal/comm"
)

// Distributed in-place global sort (paper Section 5): the preprocessing that
// builds the 1.5D data structures must reorganize an edge list that nearly
// fills main memory, so it cannot afford a second copy. The paper abstracts
// this as a generic in-place global sort built on Parallel Sorting by
// Regular Sampling with PARADIS-style local kernels. This file provides the
// distributed PSRS: each rank holds a slice of the data; afterwards the data
// is globally sorted across ranks in rank order. Memory overhead per rank is
// bounded by the exchange buffers of one alltoallv — no second global copy.

// DistributedSortUint64 globally sorts each rank's keys by (rank, position):
// after the call, every key on rank i precedes every key on rank i+1, and
// each rank's slice is locally sorted. The returned slice is the rank's new
// partition (sizes change: PSRS balances within an O(n/p) bound).
//
// Every rank must call it collectively with its local share.
func DistributedSortUint64(c *comm.Comm, local []uint64) []uint64 {
	p := c.Size()
	// Phase 1: local sort (the node-local PARADIS stand-in).
	sort.Slice(local, func(i, j int) bool { return local[i] < local[j] })
	if p == 1 {
		return local
	}
	// Phase 2: regular sampling. Each rank contributes p samples; everyone
	// computes identical pivots from the gathered sample set.
	samples := make([]uint64, 0, p)
	for s := 0; s < p; s++ {
		if len(local) == 0 {
			// Ranks with no data contribute nothing; the pivot pool still
			// works from the others' samples.
			break
		}
		samples = append(samples, local[len(local)*s/p])
	}
	gathered := comm.Must(comm.Allgatherv(c, samples))
	var pool []uint64
	for _, g := range gathered {
		pool = append(pool, g...)
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	pivots := make([]uint64, 0, p-1)
	if len(pool) > 0 {
		for i := 1; i < p; i++ {
			pivots = append(pivots, pool[len(pool)*i/p])
		}
	}
	// Phase 3: partition the locally sorted data by the pivots and exchange
	// so that rank k receives every key in (pivot[k-1], pivot[k]].
	send := make([][]uint64, p)
	lo := 0
	for k := 0; k < p; k++ {
		hi := len(local)
		if k < len(pivots) {
			hi = sort.Search(len(local), func(i int) bool { return local[i] > pivots[k] })
		}
		if hi < lo {
			hi = lo
		}
		send[k] = local[lo:hi]
		lo = hi
	}
	parts := comm.Must(comm.Alltoallv(c, send))
	// Phase 4: p-way merge of the received sorted runs.
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	out := make([]uint64, total)
	multiMerge(out, nonEmpty(parts))
	return out
}

func nonEmpty(parts [][]uint64) [][]uint64 {
	var out [][]uint64
	for _, p := range parts {
		if len(p) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// DistributedSortBy sorts records of any type across ranks by a uint64 key,
// with the same PSRS structure as DistributedSortUint64.
func DistributedSortBy[T any](c *comm.Comm, local []T, key func(T) uint64) []T {
	p := c.Size()
	sort.SliceStable(local, func(i, j int) bool { return key(local[i]) < key(local[j]) })
	if p == 1 {
		return local
	}
	samples := make([]uint64, 0, p)
	for s := 0; s < p && len(local) > 0; s++ {
		samples = append(samples, key(local[len(local)*s/p]))
	}
	gathered := comm.Must(comm.Allgatherv(c, samples))
	var pool []uint64
	for _, g := range gathered {
		pool = append(pool, g...)
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	pivots := make([]uint64, 0, p-1)
	if len(pool) > 0 {
		for i := 1; i < p; i++ {
			pivots = append(pivots, pool[len(pool)*i/p])
		}
	}
	send := make([][]T, p)
	lo := 0
	for k := 0; k < p; k++ {
		hi := len(local)
		if k < len(pivots) {
			piv := pivots[k]
			hi = sort.Search(len(local), func(i int) bool { return key(local[i]) > piv })
		}
		if hi < lo {
			hi = lo
		}
		send[k] = local[lo:hi]
		lo = hi
	}
	parts := comm.Must(comm.Alltoallv(c, send))
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	out := make([]T, 0, total)
	for _, part := range parts {
		out = append(out, part...)
	}
	sort.SliceStable(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
	return out
}
