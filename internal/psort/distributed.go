package psort

import (
	"sort"

	"repro/internal/comm"
)

// Distributed in-place global sort (paper Section 5): the preprocessing that
// builds the 1.5D data structures must reorganize an edge list that nearly
// fills main memory, so it cannot afford a second copy. The paper abstracts
// this as a generic in-place global sort built on Parallel Sorting by
// Regular Sampling with PARADIS-style local kernels. This file provides the
// distributed PSRS: each rank holds a slice of the data; afterwards the data
// is globally sorted across ranks in rank order. Memory overhead per rank is
// bounded by the exchange buffers of one alltoallv — no second global copy.

// DistributedSortUint64 globally sorts each rank's keys by (rank, position):
// after the call, every key on rank i precedes every key on rank i+1, and
// each rank's slice is locally sorted. The returned slice is the rank's new
// partition (sizes change: PSRS balances within an O(n/p) bound).
//
// Every rank must call it collectively with its local share.
func DistributedSortUint64(c *comm.Comm, local []uint64) []uint64 {
	p := c.Size()
	// Phase 1: local sort (the node-local PARADIS stand-in). Single-worker
	// radix/comparison hybrid: each rank is already one goroutine of a
	// shared-memory world, so the parallelism budget is spent at the rank
	// level, not inside the local kernel.
	localSortUint64(local)
	if p == 1 {
		return local
	}
	// Phase 2: regular sampling. Each rank contributes p samples; everyone
	// computes identical pivots from the gathered sample set. The sample
	// positions are the standard PSRS (s+1)·n/(p+1) interior points — they
	// divide the sorted run into p+1 equal strides, never re-sample index 0
	// for every rank and never skip the tail, so small ranks are no longer
	// over-weighted in the pivot pool.
	samples := make([]uint64, 0, p)
	for s := 0; s < p; s++ {
		if len(local) == 0 {
			// Ranks with no data contribute nothing; the pivot pool still
			// works from the others' samples.
			break
		}
		samples = append(samples, local[psrsSampleIdx(len(local), p, s)])
	}
	gathered := comm.Must(comm.Allgatherv(c, samples))
	var pool []uint64
	for _, g := range gathered {
		pool = append(pool, g...)
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	pivots := make([]uint64, 0, p-1)
	if len(pool) > 0 {
		for i := 1; i < p; i++ {
			pivots = append(pivots, pool[len(pool)*i/p])
		}
	}
	// Phase 3: partition the locally sorted data by the pivots and exchange
	// so that rank k receives every key in (pivot[k-1], pivot[k]].
	send := make([][]uint64, p)
	lo := 0
	for k := 0; k < p; k++ {
		hi := len(local)
		if k < len(pivots) {
			hi = sort.Search(len(local), func(i int) bool { return local[i] > pivots[k] })
		}
		if hi < lo {
			hi = lo
		}
		send[k] = local[lo:hi]
		lo = hi
	}
	parts := comm.Must(comm.Alltoallv(c, send))
	// Phase 4: p-way merge of the received sorted runs.
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	out := make([]uint64, total)
	multiMerge(out, nonEmpty(parts))
	return out
}

func nonEmpty(parts [][]uint64) [][]uint64 {
	var out [][]uint64
	for _, p := range parts {
		if len(p) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// DistributedSortBy sorts records of any type across ranks by a uint64 key,
// with the same PSRS structure as DistributedSortUint64.
func DistributedSortBy[T any](c *comm.Comm, local []T, key func(T) uint64) []T {
	p := c.Size()
	srt := Sorter[T]{Key: key}
	srt.Sort(local, 1)
	if p == 1 {
		return local
	}
	samples := make([]uint64, 0, p)
	for s := 0; s < p && len(local) > 0; s++ {
		samples = append(samples, key(local[psrsSampleIdx(len(local), p, s)]))
	}
	gathered := comm.Must(comm.Allgatherv(c, samples))
	var pool []uint64
	for _, g := range gathered {
		pool = append(pool, g...)
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	pivots := make([]uint64, 0, p-1)
	if len(pool) > 0 {
		for i := 1; i < p; i++ {
			pivots = append(pivots, pool[len(pool)*i/p])
		}
	}
	send := make([][]T, p)
	lo := 0
	for k := 0; k < p; k++ {
		hi := len(local)
		if k < len(pivots) {
			piv := pivots[k]
			hi = sort.Search(len(local), func(i int) bool { return key(local[i]) > piv })
		}
		if hi < lo {
			hi = lo
		}
		send[k] = local[lo:hi]
		lo = hi
	}
	parts := comm.Must(comm.Alltoallv(c, send))
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	out := make([]T, 0, total)
	for _, part := range parts {
		out = append(out, part...)
	}
	srt.Sort(out, 1)
	return out
}

// psrsSampleIdx is the s-th (of p) regular sample position in a sorted run
// of n elements: the (s+1)·n/(p+1) interior quantile. Unlike the former
// s·n/p rule it never re-samples index 0 and approaches (not skips) the
// tail, so equal-size runs yield pivots at the true i/p quantiles.
func psrsSampleIdx(n, p, s int) int {
	return (s + 1) * n / (p + 1)
}

// localSortUint64 is the node-local kernel of the distributed PSRS: LSD
// radix when the digit plan is profitable, comparison sort otherwise.
func localSortUint64(keys []uint64) {
	if len(keys) >= 4096 {
		if active := radixActiveDigits(keys, 1); radixWorthwhile(len(keys), len(active)) {
			radixSortUint64(keys, active, 1)
			return
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
}
