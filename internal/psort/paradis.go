package psort

import (
	"sync"
)

// ParadisPartition is the parallel in-place bucket permutation of PARADIS
// (Cho et al., VLDB 2015), the local kernel the paper names for its in-place
// preprocessing (Section 5). The classic in-place counting-sort permutation
// chases one cycle at a time and is inherently sequential; PARADIS makes it
// parallel with speculative permutation plus repair:
//
//  1. a parallel counting pass fixes the bucket boundaries;
//  2. each of W workers owns a disjoint stripe of every bucket's unresolved
//     region and permutes speculatively within its stripes: a misplaced
//     record swaps with the first not-yet-correct slot of its target
//     bucket's stripe. Every swap homes at least one record, and all cursor
//     state is worker-private, so there are no atomics and no races;
//  3. records whose target stripe filled up stay misplaced; a parallel
//     repair pass compacts them to the front of each bucket's region and
//     shrinks the unresolved ranges;
//  4. stripe ownership rotates between passes so adversarial layouts cannot
//     starve, and a sequential cycle-chasing fallback finishes any pass that
//     made no progress (the PARADIS paper proves geometric convergence in
//     expectation; the fallback makes termination unconditional).
//
// The result equals InPlacePartition's: items permuted so bucket b occupies
// [offs[b], offs[b+1]), with offs returned.
func ParadisPartition[T any](items []T, buckets, workers int, bucket func(T) int) []int {
	if workers <= 1 || len(items) < 4096 {
		return InPlacePartition(items, buckets, bucket)
	}
	counts := parallelCount(items, buckets, workers, bucket)
	offs := make([]int, buckets+1)
	for b := 0; b < buckets; b++ {
		offs[b+1] = offs[b] + counts[b]
	}
	head := make([]int, buckets)
	tail := make([]int, buckets)
	copy(head, offs[:buckets])
	copy(tail, offs[1:])

	remaining := func() int {
		r := 0
		for b := 0; b < buckets; b++ {
			r += tail[b] - head[b]
		}
		return r
	}

	for pass := 0; ; pass++ {
		before := remaining()
		if before == 0 {
			return offs
		}
		// Stripe each bucket's unresolved region across workers, rotating
		// ownership with the pass number.
		type stripe struct{ lo, hi int }
		stripes := make([][]stripe, workers)
		for w := 0; w < workers; w++ {
			stripes[w] = make([]stripe, buckets)
		}
		for b := 0; b < buckets; b++ {
			size := tail[b] - head[b]
			for w := 0; w < workers; w++ {
				ww := (w + pass) % workers
				stripes[ww][b] = stripe{head[b] + size*w/workers, head[b] + size*(w+1)/workers}
			}
		}
		// Speculative permutation.
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cur := make([]int, buckets)
				end := make([]int, buckets)
				for b := 0; b < buckets; b++ {
					cur[b] = stripes[w][b].lo
					end[b] = stripes[w][b].hi
				}
				for b := 0; b < buckets; b++ {
					for cur[b] < end[b] {
						it := items[cur[b]]
						tb := bucket(it)
						if tb == b {
							cur[b]++
							continue
						}
						// Advance the target cursor past records already
						// home, so a swap never displaces a correct record.
						for cur[tb] < end[tb] && bucket(items[cur[tb]]) == tb {
							cur[tb]++
						}
						if cur[tb] < end[tb] {
							items[cur[b]], items[cur[tb]] = items[cur[tb]], items[cur[b]]
							cur[tb]++
						} else {
							cur[b]++ // stuck until repair
						}
					}
				}
			}(w)
		}
		wg.Wait()
		// Repair: compact still-misplaced records to the front of each
		// bucket's region; the resolved suffix leaves the working set.
		var rg sync.WaitGroup
		newTail := make([]int, buckets)
		for b := 0; b < buckets; b++ {
			rg.Add(1)
			go func(b int) {
				defer rg.Done()
				w := head[b]
				for i := head[b]; i < tail[b]; i++ {
					if bucket(items[i]) != b {
						items[i], items[w] = items[w], items[i]
						w++
					}
				}
				newTail[b] = w
			}(b)
		}
		rg.Wait()
		copy(tail, newTail)
		if after := remaining(); after >= before {
			// No pass-level progress (adversarial stripe starvation):
			// finish sequentially on what's left — strictly bounded work.
			sequentialChase(items, buckets, head, tail, bucket)
			return offs
		}
	}
}

// sequentialChase resolves the remaining [head[b], tail[b]) regions with the
// classic single-threaded cycle-chasing permutation.
func sequentialChase[T any](items []T, buckets int, head, tail []int, bucket func(T) int) {
	for b := 0; b < buckets; b++ {
		for head[b] < tail[b] {
			it := items[head[b]]
			tb := bucket(it)
			if tb == b {
				head[b]++
				continue
			}
			for head[tb] < tail[tb] && bucket(items[head[tb]]) == tb {
				head[tb]++
			}
			items[head[b]], items[head[tb]] = items[head[tb]], items[head[b]]
			head[tb]++
		}
	}
}

func parallelCount[T any](items []T, buckets, workers int, bucket func(T) int) []int {
	shards := make([][]int, workers)
	var wg sync.WaitGroup
	chunk := (len(items) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(items) {
			break
		}
		hi := lo + chunk
		if hi > len(items) {
			hi = len(items)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			local := make([]int, buckets)
			for _, it := range items[lo:hi] {
				local[bucket(it)]++
			}
			shards[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	counts := make([]int, buckets)
	for _, s := range shards {
		if s == nil {
			continue
		}
		for b := range counts {
			counts[b] += s[b]
		}
	}
	return counts
}
