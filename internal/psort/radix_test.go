package psort

import (
	"math/rand"
	"sort"
	"testing"
)

func radixRef(keys []uint64) []uint64 {
	ref := append([]uint64(nil), keys...)
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	return ref
}

func TestRadixSortUint64MatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func(n int) []uint64{
		"dense": func(n int) []uint64 {
			out := make([]uint64, n)
			for i := range out {
				out[i] = uint64(rng.Intn(1000))
			}
			return out
		},
		"full-width": func(n int) []uint64 {
			out := make([]uint64, n)
			for i := range out {
				out[i] = rng.Uint64()
			}
			return out
		},
		"high-bit-skewed": func(n int) []uint64 {
			// Only the top byte varies: the low seven digit histograms all
			// collapse to one bucket and must be skipped, the top one must
			// still order correctly.
			out := make([]uint64, n)
			for i := range out {
				out[i] = uint64(rng.Intn(256)) << 56
			}
			return out
		},
		"duplicates": func(n int) []uint64 {
			out := make([]uint64, n)
			for i := range out {
				out[i] = uint64(i % 3)
			}
			return out
		},
		"already-sorted": func(n int) []uint64 {
			out := make([]uint64, n)
			for i := range out {
				out[i] = uint64(i)
			}
			return out
		},
		"reverse-sorted": func(n int) []uint64 {
			out := make([]uint64, n)
			for i := range out {
				out[i] = uint64(n - i)
			}
			return out
		},
		"all-equal": func(n int) []uint64 {
			out := make([]uint64, n)
			for i := range out {
				out[i] = 42
			}
			return out
		},
	}
	for name, gen := range dists {
		for _, n := range []int{0, 1, 2, 4095, 4096, 30000} {
			for _, workers := range []int{1, 2, 7} {
				keys := gen(n)
				want := radixRef(keys)
				RadixSortUint64(keys, workers)
				for i := range keys {
					if keys[i] != want[i] {
						t.Fatalf("%s n=%d workers=%d: mismatch at %d: got %d want %d",
							name, n, workers, i, keys[i], want[i])
					}
				}
			}
		}
	}
}

func TestRadixWorthwhileGate(t *testing.T) {
	// Dense keys (2-3 live digits) are worthwhile at any realistic size;
	// full-width keys (8 live digits) at small n are not and must fall back.
	if !radixWorthwhile(4096, 2) {
		t.Fatal("dense keys at n=4096 should take the radix path")
	}
	if radixWorthwhile(4096, 8) {
		t.Fatal("full-width keys at n=4096 should fall back to PSRS")
	}
	if !radixWorthwhile(1<<20, 8) {
		t.Fatal("full-width keys at n=1M should take the radix path")
	}
	if !radixWorthwhile(2, 0) {
		t.Fatal("zero live passes is a no-op and always worthwhile")
	}
}

func TestRadixActiveDigitsSkipsConstant(t *testing.T) {
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = uint64(i%512) << 16 // digits 2 and 3 vary, all others constant
	}
	active := radixActiveDigits(keys, 4)
	if len(active) != 2 || active[0] != 2 || active[1] != 3 {
		t.Fatalf("active digits = %v, want [2 3]", active)
	}
}

func TestUint64sFallbackFullWidthKeys(t *testing.T) {
	// Small-n full-width keys defeat the radix gate; Uint64s must still
	// sort them correctly through the PSRS fallback.
	rng := rand.New(rand.NewSource(11))
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	want := radixRef(keys)
	Uint64s(keys, 4)
	for i := range keys {
		if keys[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestSorterRadixStability(t *testing.T) {
	// Dense keys force the keyed radix path (n >= 4096, one live digit);
	// records with equal keys must keep their input order.
	type rec struct {
		key uint64
		seq int
	}
	n := 8192
	items := make([]rec, n)
	rng := rand.New(rand.NewSource(13))
	for i := range items {
		items[i] = rec{key: uint64(rng.Intn(16)), seq: i}
	}
	s := Sorter[rec]{Key: func(r rec) uint64 { return r.key }}
	s.Sort(items, 4)
	for i := 1; i < n; i++ {
		if items[i-1].key > items[i].key {
			t.Fatalf("not sorted at %d", i)
		}
		if items[i-1].key == items[i].key && items[i-1].seq > items[i].seq {
			t.Fatalf("stability violated at %d: seq %d before %d", i, items[i-1].seq, items[i].seq)
		}
	}
}

func BenchmarkRadixSortUint64Dense1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]uint64, 1<<20)
	for i := range base {
		base[i] = uint64(rng.Intn(1 << 20))
	}
	keys := make([]uint64, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(keys, base)
		RadixSortUint64(keys, 0)
	}
}
