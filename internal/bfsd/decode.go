// Package bfsd is the traversal service layer: a time+size-windowed batcher
// that folds concurrent BFS queries into batched multi-source sweeps
// (core.RunBatch), and an HTTP front end serving parents / reachability /
// distance queries against a resident partitioned graph. The daemon pays
// generation + partitioning once, then amortizes every collective across
// whatever query mix arrives inside a batching window.
package bfsd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Query operations.
const (
	// OpParent returns the BFS parent of Target in the tree rooted at Root.
	OpParent = "parent"
	// OpParents returns the full parent array.
	OpParents = "parents"
	// OpReach reports whether Target is reachable from Root.
	OpReach = "reach"
	// OpDistance returns Target's BFS level (hop distance) from Root, -1
	// when unreachable.
	OpDistance = "distance"
)

// maxRequestBytes bounds a query document; a valid request is tiny, so the
// limit mostly guards the decoder against hostile bodies.
const maxRequestBytes = 4096

// QueryRequest is one client query. Root must always be present; Target is
// required by every op except "parents".
type QueryRequest struct {
	Root   int64  `json:"root"`
	Op     string `json:"op"`
	Target int64  `json:"target"`

	// rawRoot/rawTarget track field presence so 0 and "absent" differ.
	hasRoot   bool
	hasTarget bool
}

// ErrBadRequest wraps every decode rejection so the server can map the whole
// class to one status code.
var ErrBadRequest = errors.New("bfsd: bad request")

func badf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrBadRequest}, args...)...)
}

// DecodeQueryRequest strictly decodes one query document: unknown fields,
// trailing data, oversized bodies, wrong types, a missing root, an unknown
// op and a missing target (for ops that need one) are all rejected. The op
// defaults to "parent" when empty.
func DecodeQueryRequest(r io.Reader) (QueryRequest, error) {
	var q QueryRequest
	lr := &io.LimitedReader{R: r, N: maxRequestBytes + 1}
	dec := json.NewDecoder(lr)
	dec.DisallowUnknownFields()

	// Decode into a shadow struct of pointers to detect absent fields.
	var raw struct {
		Root   *int64  `json:"root"`
		Op     *string `json:"op"`
		Target *int64  `json:"target"`
	}
	if err := dec.Decode(&raw); err != nil {
		if lr.N <= 0 {
			return q, badf("request exceeds %d bytes", maxRequestBytes)
		}
		return q, badf("invalid JSON: %v", err)
	}
	if dec.More() {
		return q, badf("trailing data after request object")
	}
	if lr.N <= 0 {
		return q, badf("request exceeds %d bytes", maxRequestBytes)
	}
	if raw.Root == nil {
		return q, badf("missing root")
	}
	if *raw.Root < 0 {
		return q, badf("negative root %d", *raw.Root)
	}
	q.Root, q.hasRoot = *raw.Root, true
	q.Op = OpParent
	if raw.Op != nil {
		q.Op = strings.ToLower(strings.TrimSpace(*raw.Op))
	}
	switch q.Op {
	case OpParent, OpParents, OpReach, OpDistance:
	default:
		return q, badf("unknown op %q", q.Op)
	}
	if raw.Target != nil {
		if *raw.Target < 0 {
			return q, badf("negative target %d", *raw.Target)
		}
		q.Target, q.hasTarget = *raw.Target, true
	}
	if q.Op != OpParents && !q.hasTarget {
		return q, badf("op %q needs a target", q.Op)
	}
	return q, nil
}
