package bfsd

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync/atomic"

	"repro/internal/report"
)

// Server is the HTTP front end: POST /query against the batcher, GET
// /healthz for liveness, GET /stats for the service-level batch block.
type Server struct {
	b *Batcher
	// n is the vertex-id bound for request validation.
	n int64
	// draining flips when the daemon starts its SIGTERM drain: /healthz goes
	// 503 so load balancers stop routing, while in-flight queries finish.
	draining atomic.Bool
}

// NewServer wires the batcher behind the HTTP API. n is the graph's vertex
// count (root/target bound).
func NewServer(b *Batcher, n int64) *Server {
	return &Server{b: b, n: n}
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// SetDraining marks the server as draining (health goes 503; queries still
// drain through the batcher until it closes).
func (s *Server) SetDraining() { s.draining.Store(true) }

// QueryResponse is the answer document for POST /query. Fields irrelevant
// to the op are omitted.
type QueryResponse struct {
	Root int64  `json:"root"`
	Op   string `json:"op"`

	Parent    *int64  `json:"parent,omitempty"`    // op=parent
	Parents   []int64 `json:"parents,omitempty"`   // op=parents
	Reachable *bool   `json:"reachable,omitempty"` // op=reach
	Distance  *int64  `json:"distance,omitempty"`  // op=distance

	Iterations int64 `json:"iterations"`

	// Batch context: how the query was served.
	BatchSize      int     `json:"batch_size"`
	Occupancy      float64 `json:"occupancy"`
	LatencySeconds float64 `json:"latency_seconds"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	q, err := DecodeQueryRequest(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if q.Root >= s.n {
		http.Error(w, "root out of range", http.StatusBadRequest)
		return
	}
	if q.hasTarget && q.Target >= s.n {
		http.Error(w, "target out of range", http.StatusBadRequest)
		return
	}
	out, err := s.b.Submit(r.Context(), q.Root)
	switch {
	case errors.Is(err, ErrBusy):
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	parent := out.Query.Parent
	resp := QueryResponse{
		Root: q.Root, Op: q.Op,
		Iterations:     int64(out.Query.Iterations),
		BatchSize:      out.BatchSize,
		Occupancy:      out.Occupancy,
		LatencySeconds: out.Latency.Seconds(),
	}
	switch q.Op {
	case OpParent:
		p := parent[q.Target]
		resp.Parent = &p
	case OpParents:
		resp.Parents = parent
	case OpReach:
		reach := parent[q.Target] >= 0
		resp.Reachable = &reach
	case OpDistance:
		d := distanceOf(parent, q.Root, q.Target)
		resp.Distance = &d
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.BatchReport())
}

// BatchReport renders the service-level stats as the report schema v3 batch
// block, so the daemon's /stats and the offline bench artifact share one
// shape.
func (s *Server) BatchReport() *report.BatchReport {
	st := s.b.Snapshot()
	br := &report.BatchReport{
		Batches:      st.Batches,
		Queries:      st.Queries,
		MaxBatch:     st.MaxBatch,
		MaxOccupancy: st.MaxOccupancy,
	}
	if st.Batches > 0 {
		br.MeanOccupancy = st.OccupancySum / float64(st.Batches)
	}
	br.SetLatencies(st.Latencies)
	return br
}

// distanceOf climbs the parent chain from target to root: in a valid BFS
// tree the climb length IS the BFS level. Returns -1 for unreachable
// targets (and, defensively, if the walk fails to terminate).
func distanceOf(parent []int64, root, target int64) int64 {
	if target == root {
		return 0
	}
	if parent[target] < 0 {
		return -1
	}
	var d int64
	for v := target; v != root; v = parent[v] {
		d++
		if d > int64(len(parent)) || parent[v] < 0 {
			return -1
		}
	}
	return d
}
