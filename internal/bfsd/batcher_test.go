package bfsd

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/rmat"
	"repro/internal/topology"
)

func testEngine(t *testing.T) *core.Engine {
	t.Helper()
	cfg := rmat.Config{Scale: 9, Seed: 31}
	eng, err := core.NewEngine(cfg.NumVertices(), rmat.Generate(cfg), core.Options{
		Mesh:       topology.Mesh{Rows: 2, Cols: 2},
		Thresholds: partition.Thresholds{E: 256, H: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func connectedRoots(eng *core.Engine, k int) []int64 {
	var roots []int64
	for v, d := range eng.Part.Degrees {
		if d > 0 {
			roots = append(roots, int64(v))
			if len(roots) == k {
				break
			}
		}
	}
	return roots
}

// countingEngine wraps the real engine and records every sweep width.
type countingEngine struct {
	eng    *core.Engine
	mu     sync.Mutex
	widths []int
}

func (c *countingEngine) RunBatch(roots []int64) (*core.BatchResult, error) {
	c.mu.Lock()
	c.widths = append(c.widths, len(roots))
	c.mu.Unlock()
	return c.eng.RunBatch(roots)
}

// TestBatcherConcurrentClients is the race-enabled service test: many
// goroutine clients firing overlapping queries across window boundaries,
// some cancelling mid-window, then a drain — every answered query must
// carry the right parent array, and the drain must answer everything it
// admitted.
func TestBatcherConcurrentClients(t *testing.T) {
	eng := testEngine(t)
	roots := connectedRoots(eng, 8)
	solo := make(map[int64][]int64, len(roots))
	for _, root := range roots {
		res, err := eng.Run(root)
		if err != nil {
			t.Fatal(err)
		}
		solo[root] = res.Parent
	}

	ce := &countingEngine{eng: eng}
	b := NewBatcher(ce, Config{Window: 2 * time.Millisecond, MaxBatch: 4, MaxQueued: 1024})

	const clients = 32
	const perClient = 6
	var answered, cancelled atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				root := roots[(c+i)%len(roots)]
				ctx := context.Background()
				if (c+i)%5 == 0 {
					// Cancel some queries mid-window.
					cctx, cancel := context.WithCancel(ctx)
					go func() {
						time.Sleep(time.Duration(c%3) * 500 * time.Microsecond)
						cancel()
					}()
					ctx = cctx
					defer cancel()
				}
				out, err := b.Submit(ctx, root)
				if err != nil {
					if err == context.Canceled {
						cancelled.Add(1)
						continue
					}
					t.Errorf("client %d: %v", c, err)
					return
				}
				answered.Add(1)
				if out.BatchSize < 1 || out.BatchSize > 4 {
					t.Errorf("batch size %d out of [1,4]", out.BatchSize)
					return
				}
				want := solo[root]
				for v := range want {
					if out.Query.Parent[v] != want[v] {
						t.Errorf("root %d parent[%d] = %d, solo %d", root, v, out.Query.Parent[v], want[v])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	b.Close()

	if answered.Load() == 0 {
		t.Fatal("no queries answered")
	}
	st := b.Snapshot()
	// A query cancelled mid-sweep is still served by the batch (the sweep
	// cannot retract a rider), so the batcher may count a few more answers
	// than clients that stayed around to read them.
	if st.Queries < answered.Load() || st.Queries > answered.Load()+cancelled.Load() {
		t.Fatalf("stats counted %d queries; clients saw %d answered + %d cancelled",
			st.Queries, answered.Load(), cancelled.Load())
	}
	if st.Batches == 0 || st.MaxBatch < 2 {
		t.Fatalf("no batching happened: %d batches, max width %d", st.Batches, st.MaxBatch)
	}
	ce.mu.Lock()
	var multi int
	for _, w := range ce.widths {
		if w > 1 {
			multi++
		}
	}
	ce.mu.Unlock()
	if multi == 0 {
		t.Fatal("every sweep ran a single query — the window never batched")
	}
	t.Logf("answered=%d cancelled=%d batches=%d multi-query=%d maxOcc=%.2f",
		answered.Load(), cancelled.Load(), st.Batches, multi, st.MaxOccupancy)

	// After Close, submits are refused.
	if _, err := b.Submit(context.Background(), roots[0]); err != ErrDraining {
		t.Fatalf("post-drain submit: %v, want ErrDraining", err)
	}
}

// TestBatcherDrainAnswersQueued locks the SIGTERM semantics: queries queued
// when the drain starts are still answered.
func TestBatcherDrainAnswersQueued(t *testing.T) {
	eng := testEngine(t)
	roots := connectedRoots(eng, 4)
	// A long window that would never flush on its own before the drain.
	b := NewBatcher(eng, Config{Window: time.Hour, MaxBatch: 64, MaxQueued: 64})

	var wg sync.WaitGroup
	errs := make(chan error, len(roots))
	for _, root := range roots {
		root := root
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := b.Submit(context.Background(), root)
			if err != nil {
				errs <- fmt.Errorf("root %d: %w", root, err)
				return
			}
			if out.Query.Root != root {
				errs <- fmt.Errorf("root %d answered as %d", root, out.Query.Root)
			}
		}()
	}
	// Wait until all four are queued, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.Lock()
		queued := len(b.queue)
		b.mu.Unlock()
		if queued == len(roots) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queries never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := b.Snapshot()
	if st.Queries != int64(len(roots)) {
		t.Fatalf("drain answered %d of %d", st.Queries, len(roots))
	}
	if st.MaxBatch != len(roots) {
		t.Fatalf("drain flush width %d, want %d (one batch)", st.MaxBatch, len(roots))
	}
}

// TestBatcherAdmissionControl: a full queue refuses with ErrBusy.
func TestBatcherAdmissionControl(t *testing.T) {
	eng := testEngine(t)
	roots := connectedRoots(eng, 2)
	b := NewBatcher(eng, Config{Window: time.Hour, MaxBatch: 64, MaxQueued: 2})
	defer b.Close()

	// Fill the queue without letting it flush (huge window, wide batch).
	for i := 0; i < 2; i++ {
		root := roots[i%len(roots)]
		go b.Submit(context.Background(), root) //nolint:errcheck // answered by Close's drain
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.Lock()
		queued := len(b.queue)
		b.mu.Unlock()
		if queued == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if _, err := b.Submit(context.Background(), roots[0]); err != ErrBusy {
		t.Fatalf("overfull submit: %v, want ErrBusy", err)
	}
	if b.Snapshot().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", b.Snapshot().Rejected)
	}
}
