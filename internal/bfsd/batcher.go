package bfsd

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/core"
)

// Engine is the traversal backend: one batched multi-source sweep per call.
// Satisfied by *core.Engine and graph500.Runner via thin adapters; narrowed
// to an interface so the batcher tests can observe batching decisions.
type Engine interface {
	RunBatch(roots []int64) (*core.BatchResult, error)
}

// Config shapes the batching window and admission control.
type Config struct {
	// Window is how long the first query of a window may wait for company
	// before the batch flushes regardless of size. Default 2ms.
	Window time.Duration
	// MaxBatch is the sweep width: a window flushes immediately once this
	// many queries are waiting. Default 8. The daemon sizes it from
	// perfmodel.MaxBatchQueries against its memory budget.
	MaxBatch int
	// MaxQueued is the admission bound: Submit refuses (ErrBusy) once this
	// many queries are waiting, so overload surfaces as fast 429s instead of
	// unbounded queueing. Default 4*MaxBatch.
	MaxQueued int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 4 * c.MaxBatch
	}
	return c
}

// Submit outcomes.
var (
	// ErrBusy is admission control refusing a query: the queue is full.
	ErrBusy = errors.New("bfsd: query queue full")
	// ErrDraining is a Submit against a closing batcher.
	ErrDraining = errors.New("bfsd: draining")
)

// QueryOutcome is one query's answer plus its batch context.
type QueryOutcome struct {
	Query *core.Result
	// BatchSize is how many queries rode the same sweep; Occupancy the
	// sweep's mean live-query count per iteration.
	BatchSize int
	Occupancy float64
	// Latency is enqueue-to-answer as the batcher saw it.
	Latency time.Duration
}

type pendingQuery struct {
	root int64
	ctx  context.Context
	enq  time.Time
	ch   chan queryDelivery // buffered 1: delivery never blocks on the client
}

type queryDelivery struct {
	out *QueryOutcome
	err error
}

// Batcher folds concurrent Submit calls into batched multi-source sweeps.
// One flusher goroutine owns the engine, so sweeps are serialized; a window
// flushes when it fills to MaxBatch or Window after its first query,
// whichever comes first. Queries cancelled before their window flushes are
// dropped from the batch; cancellation mid-sweep cannot stop the sweep (the
// answer is discarded at delivery).
type Batcher struct {
	eng Engine
	cfg Config

	mu     sync.Mutex
	queue  []*pendingQuery
	closed bool
	stats  Stats

	kick chan struct{}
	quit chan struct{}
	done chan struct{}
}

// Stats is the batcher's service-level accounting; see Snapshot.
type Stats struct {
	Queries   int64 // answered
	Batches   int64 // sweeps run
	Rejected  int64 // refused by admission control
	Cancelled int64 // dropped before their window flushed
	Errors    int64 // sweep failures (every rider sees the error)

	OccupancySum float64
	MaxOccupancy float64
	MaxBatch     int // widest batch actually run

	// Latencies holds per-query enqueue-to-answer seconds, most recent
	// maxLatencySamples (ring).
	Latencies []float64
	latIdx    int
	latFull   bool
}

const maxLatencySamples = 8192

// NewBatcher starts the flusher. Close releases it.
func NewBatcher(eng Engine, cfg Config) *Batcher {
	b := &Batcher{
		eng:  eng,
		cfg:  cfg.withDefaults(),
		kick: make(chan struct{}, 1),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go b.loop()
	return b
}

// Submit enqueues one query and blocks until its batch answers, the context
// cancels, or the batcher refuses it (ErrBusy / ErrDraining).
func (b *Batcher) Submit(ctx context.Context, root int64) (*QueryOutcome, error) {
	p := &pendingQuery{root: root, ctx: ctx, enq: time.Now(), ch: make(chan queryDelivery, 1)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrDraining
	}
	if len(b.queue) >= b.cfg.MaxQueued {
		b.stats.Rejected++
		b.mu.Unlock()
		return nil, ErrBusy
	}
	b.queue = append(b.queue, p)
	first := len(b.queue) == 1
	full := len(b.queue) >= b.cfg.MaxBatch
	b.mu.Unlock()

	if full {
		b.signal()
	} else if first {
		time.AfterFunc(b.cfg.Window, b.signal)
	}

	select {
	case d := <-p.ch:
		return d.out, d.err
	case <-ctx.Done():
		// The flusher may have picked the query up already; prefer a real
		// answer if one races in.
		select {
		case d := <-p.ch:
			return d.out, d.err
		default:
			return nil, ctx.Err()
		}
	}
}

// Close drains: no new queries are admitted, every already-queued query is
// flushed (ignoring the window clock), and Close returns once the flusher
// has answered them all.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.quit)
	<-b.done
}

// Snapshot copies the current stats (latency ring flattened, oldest first).
func (b *Batcher) Snapshot() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.stats
	if b.stats.latFull {
		s.Latencies = append(append([]float64(nil),
			b.stats.Latencies[b.stats.latIdx:]...), b.stats.Latencies[:b.stats.latIdx]...)
	} else {
		s.Latencies = append([]float64(nil), b.stats.Latencies...)
	}
	return s
}

func (b *Batcher) signal() {
	select {
	case b.kick <- struct{}{}:
	default:
	}
}

func (b *Batcher) loop() {
	defer close(b.done)
	for {
		select {
		case <-b.kick:
		case <-b.quit:
		}
		for {
			batch := b.take()
			if len(batch) == 0 {
				break
			}
			b.runBatch(batch)
		}
		b.mu.Lock()
		exit := b.closed && len(b.queue) == 0
		b.mu.Unlock()
		if exit {
			return
		}
	}
}

// take claims up to MaxBatch queries, answering cancelled ones on the way.
func (b *Batcher) take() []*pendingQuery {
	b.mu.Lock()
	n := len(b.queue)
	if n > b.cfg.MaxBatch {
		n = b.cfg.MaxBatch
	}
	claimed := b.queue[:n:n]
	b.queue = append([]*pendingQuery(nil), b.queue[n:]...)
	b.mu.Unlock()

	live := claimed[:0]
	for _, p := range claimed {
		if p.ctx.Err() != nil {
			p.ch <- queryDelivery{err: p.ctx.Err()}
			b.mu.Lock()
			b.stats.Cancelled++
			b.mu.Unlock()
			continue
		}
		live = append(live, p)
	}
	return live
}

func (b *Batcher) runBatch(batch []*pendingQuery) {
	roots := make([]int64, len(batch))
	for i, p := range batch {
		roots[i] = p.root
	}
	res, err := b.eng.RunBatch(roots)
	now := time.Now()

	b.mu.Lock()
	b.stats.Batches++
	if err != nil {
		b.stats.Errors += int64(len(batch))
	} else {
		b.stats.Queries += int64(len(batch))
		b.stats.OccupancySum += res.AvgOccupancy
		if res.AvgOccupancy > b.stats.MaxOccupancy {
			b.stats.MaxOccupancy = res.AvgOccupancy
		}
		if len(batch) > b.stats.MaxBatch {
			b.stats.MaxBatch = len(batch)
		}
		for _, p := range batch {
			b.recordLatency(now.Sub(p.enq).Seconds())
		}
	}
	b.mu.Unlock()

	for i, p := range batch {
		if err != nil {
			p.ch <- queryDelivery{err: err}
			continue
		}
		p.ch <- queryDelivery{out: &QueryOutcome{
			Query:     res.Queries[i],
			BatchSize: len(batch),
			Occupancy: res.AvgOccupancy,
			Latency:   now.Sub(p.enq),
		}}
	}
}

// recordLatency appends to the bounded ring; callers hold b.mu.
func (b *Batcher) recordLatency(sec float64) {
	if len(b.stats.Latencies) < maxLatencySamples {
		b.stats.Latencies = append(b.stats.Latencies, sec)
		return
	}
	b.stats.Latencies[b.stats.latIdx] = sec
	b.stats.latIdx = (b.stats.latIdx + 1) % maxLatencySamples
	b.stats.latFull = true
}
