package bfsd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

// TestServerConcurrentQueries is the in-process smoke: concurrent HTTP
// clients against a resident engine must get correct parent / reach /
// distance answers, and the concurrency must actually batch (occupancy > 1
// on at least one sweep, visible in /stats).
func TestServerConcurrentQueries(t *testing.T) {
	eng := testEngine(t)
	n := int64(len(eng.Part.Degrees))
	roots := connectedRoots(eng, 8)
	solo := make(map[int64][]int64, len(roots))
	for _, root := range roots {
		res, err := eng.Run(root)
		if err != nil {
			t.Fatal(err)
		}
		solo[root] = res.Parent
	}

	b := NewBatcher(eng, Config{Window: 3 * time.Millisecond, MaxBatch: 8, MaxQueued: 256})
	defer b.Close()
	srv := NewServer(b, n)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) (*QueryResponse, int, error) {
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return nil, 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, resp.StatusCode, nil
		}
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			return nil, resp.StatusCode, err
		}
		return &qr, resp.StatusCode, nil
	}

	// Concurrent clients across every op.
	const waves = 4
	var wg sync.WaitGroup
	errCh := make(chan error, waves*len(roots))
	for w := 0; w < waves; w++ {
		for ri, root := range roots {
			root := root
			op := []string{OpParents, OpReach, OpDistance, OpParent}[(w+ri)%4]
			wg.Add(1)
			go func() {
				defer wg.Done()
				target := (root + 1) % n
				body := fmt.Sprintf(`{"root":%d,"op":%q,"target":%d}`, root, op, target)
				if op == OpParents {
					body = fmt.Sprintf(`{"root":%d,"op":"parents"}`, root)
				}
				qr, code, err := post(body)
				if err != nil {
					errCh <- err
					return
				}
				if code != http.StatusOK {
					errCh <- fmt.Errorf("op %s root %d: status %d", op, root, code)
					return
				}
				want := solo[root]
				switch op {
				case OpParents:
					for v := range want {
						if qr.Parents[v] != want[v] {
							errCh <- fmt.Errorf("root %d parents[%d] = %d, solo %d", root, v, qr.Parents[v], want[v])
							return
						}
					}
				case OpParent:
					if qr.Parent == nil || *qr.Parent != want[target] {
						errCh <- fmt.Errorf("root %d parent(%d) = %v, solo %d", root, target, qr.Parent, want[target])
					}
				case OpReach:
					if qr.Reachable == nil || *qr.Reachable != (want[target] >= 0) {
						errCh <- fmt.Errorf("root %d reach(%d) = %v, solo %v", root, target, qr.Reachable, want[target] >= 0)
					}
				case OpDistance:
					lvl, lerr := graph.Levels(want, root)
					if lerr != nil {
						errCh <- lerr
						return
					}
					if qr.Distance == nil || *qr.Distance != lvl[target] {
						errCh <- fmt.Errorf("root %d distance(%d) = %v, solo level %d", root, target, qr.Distance, lvl[target])
					}
				}
			}()
		}
		// Let windows roll over between waves so batches span boundaries.
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The smoke claim: concurrency actually batched.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br struct {
		Batches       int64   `json:"batches"`
		Queries       int64   `json:"queries"`
		MaxBatch      int     `json:"max_batch"`
		MaxOccupancy  float64 `json:"max_occupancy"`
		MeanOccupancy float64 `json:"mean_occupancy"`
		LatencyP50    float64 `json:"latency_p50_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Queries != waves*int64(len(roots)) {
		t.Fatalf("stats saw %d queries, want %d", br.Queries, waves*len(roots))
	}
	if br.MaxOccupancy <= 1 {
		t.Fatalf("max occupancy %v, want > 1 (no batching happened)", br.MaxOccupancy)
	}
	if br.LatencyP50 <= 0 {
		t.Fatalf("latency percentiles missing: %+v", br)
	}
}

func TestServerRequestValidation(t *testing.T) {
	eng := testEngine(t)
	n := int64(len(eng.Part.Degrees))
	b := NewBatcher(eng, Config{})
	defer b.Close()
	ts := httptest.NewServer(NewServer(b, n).Handler())
	defer ts.Close()

	for _, tc := range []struct {
		body string
		code int
	}{
		{`{"root":1,"op":"frobnicate"}`, http.StatusBadRequest},
		{fmt.Sprintf(`{"root":%d,"op":"parents"}`, n), http.StatusBadRequest},
		{fmt.Sprintf(`{"root":0,"op":"reach","target":%d}`, n), http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.body, resp.StatusCode, tc.code)
		}
	}
	// GET on /query is refused.
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d", resp.StatusCode)
	}
}

func TestServerDrain(t *testing.T) {
	eng := testEngine(t)
	n := int64(len(eng.Part.Degrees))
	b := NewBatcher(eng, Config{})
	srv := NewServer(b, n)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthy /healthz: %d", got)
	}
	srv.SetDraining()
	b.Close()
	if got := get("/healthz"); got != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz: %d", got)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json",
		bytes.NewReader([]byte(`{"root":0,"op":"parents"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /query: %d, want 503", resp.StatusCode)
	}
}
