package bfsd

import (
	"errors"
	"strings"
	"testing"
)

func TestDecodeQueryRequest(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want QueryRequest
		bad  bool
	}{
		{name: "parent", in: `{"root":5,"op":"parent","target":9}`,
			want: QueryRequest{Root: 5, Op: OpParent, Target: 9}},
		{name: "default_op_is_parent", in: `{"root":5,"target":9}`,
			want: QueryRequest{Root: 5, Op: OpParent, Target: 9}},
		{name: "parents_needs_no_target", in: `{"root":0,"op":"parents"}`,
			want: QueryRequest{Root: 0, Op: OpParents}},
		{name: "reach", in: `{"root":1,"op":"reach","target":2}`,
			want: QueryRequest{Root: 1, Op: OpReach, Target: 2}},
		{name: "distance", in: `{"root":1,"op":"distance","target":0}`,
			want: QueryRequest{Root: 1, Op: OpDistance, Target: 0}},
		{name: "op_case_insensitive", in: `{"root":1,"op":" Reach ","target":2}`,
			want: QueryRequest{Root: 1, Op: OpReach, Target: 2}},
		{name: "missing_root", in: `{"op":"parents"}`, bad: true},
		{name: "negative_root", in: `{"root":-1,"op":"parents"}`, bad: true},
		{name: "negative_target", in: `{"root":1,"op":"reach","target":-2}`, bad: true},
		{name: "unknown_op", in: `{"root":1,"op":"frobnicate"}`, bad: true},
		{name: "parent_without_target", in: `{"root":1,"op":"parent"}`, bad: true},
		{name: "distance_without_target", in: `{"root":1,"op":"distance"}`, bad: true},
		{name: "unknown_field", in: `{"root":1,"op":"parents","depth":3}`, bad: true},
		{name: "trailing_garbage", in: `{"root":1,"op":"parents"}{"root":2}`, bad: true},
		{name: "wrong_type", in: `{"root":"five","op":"parents"}`, bad: true},
		{name: "float_root", in: `{"root":1.5,"op":"parents"}`, bad: true},
		{name: "not_json", in: `root=1`, bad: true},
		{name: "empty", in: ``, bad: true},
		{name: "oversized", in: `{"root":1,"op":"parents","x` + strings.Repeat("a", maxRequestBytes) + `":0}`, bad: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodeQueryRequest(strings.NewReader(tc.in))
			if tc.bad {
				if err == nil {
					t.Fatalf("accepted %q as %+v", tc.in, got)
				}
				if !errors.Is(err, ErrBadRequest) {
					t.Fatalf("rejection not wrapped in ErrBadRequest: %v", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("rejected %q: %v", tc.in, err)
			}
			if got.Root != tc.want.Root || got.Op != tc.want.Op || got.Target != tc.want.Target {
				t.Fatalf("decoded %+v, want %+v", got, tc.want)
			}
		})
	}
}

// FuzzDecodeQueryRequest drives the strict decoder with arbitrary bodies:
// it must never panic, and anything it accepts must satisfy the request
// invariants (non-negative ids, known op, target present when required).
func FuzzDecodeQueryRequest(f *testing.F) {
	f.Add(`{"root":5,"op":"parent","target":9}`)
	f.Add(`{"root":0,"op":"parents"}`)
	f.Add(`{"root":1,"op":"reach","target":2}`)
	f.Add(`{"root":1,"op":"distance","target":0}`)
	f.Add(`{"root":-1}`)
	f.Add(`{"op":"frobnicate"}`)
	f.Add(`{"root":9007199254740993,"op":"parents"}`)
	f.Add(`[]`)
	f.Add(`null`)
	f.Add(``)
	f.Add(`{"root":1,"op":"parents"}{"root":2}`)
	f.Add(strings.Repeat(`{"root":1,`, 500))
	f.Fuzz(func(t *testing.T, body string) {
		q, err := DecodeQueryRequest(strings.NewReader(body))
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("rejection not wrapped in ErrBadRequest: %v", err)
			}
			return
		}
		if q.Root < 0 || q.Target < 0 {
			t.Fatalf("accepted negative ids: %+v", q)
		}
		switch q.Op {
		case OpParent, OpParents, OpReach, OpDistance:
		default:
			t.Fatalf("accepted unknown op: %+v", q)
		}
		if q.Op != OpParents && !q.hasTarget {
			t.Fatalf("accepted %q without target", q.Op)
		}
	})
}
