package comm

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/topology"
)

func testWorld(t *testing.T, n int, mesh topology.Mesh) *World {
	t.Helper()
	w, err := NewWorld(n, mesh, topology.NewSunway(n))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunSpawnsAllRanks(t *testing.T) {
	w := testWorld(t, 8, topology.Mesh{Rows: 2, Cols: 4})
	var seen [8]atomic.Bool
	w.Run(func(r *Rank) { seen[r.ID].Store(true) })
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("rank %d did not run", i)
		}
	}
}

func TestMeshCoordinates(t *testing.T) {
	w := testWorld(t, 6, topology.Mesh{Rows: 2, Cols: 3})
	w.Run(func(r *Rank) {
		if r.Row != r.ID/3 || r.Col != r.ID%3 {
			panic(fmt.Sprintf("rank %d at (%d,%d)", r.ID, r.Row, r.Col))
		}
		if r.RowC.Size() != 3 || r.ColC.Size() != 2 {
			panic("wrong sub-communicator sizes")
		}
		if r.RowC.Rank() != r.Col || r.ColC.Rank() != r.Row {
			panic("wrong member indices")
		}
	})
}

func TestAlltoallv(t *testing.T) {
	const n = 6
	w := testWorld(t, n, topology.Mesh{Rows: 2, Cols: 3})
	w.Run(func(r *Rank) {
		send := make([][]int64, n)
		for j := 0; j < n; j++ {
			// Rank i sends j copies of value i*100+j to rank j.
			for k := 0; k < j; k++ {
				send[j] = append(send[j], int64(r.ID*100+j))
			}
		}
		recv := Must(Alltoallv(r.World, send))
		for j := 0; j < n; j++ {
			if len(recv[j]) != r.ID {
				panic(fmt.Sprintf("rank %d: got %d items from %d, want %d", r.ID, len(recv[j]), j, r.ID))
			}
			for _, v := range recv[j] {
				if v != int64(j*100+r.ID) {
					panic(fmt.Sprintf("rank %d: bad value %d from %d", r.ID, v, j))
				}
			}
		}
	})
}

func TestAlltoallvConservesBytes(t *testing.T) {
	const n = 4
	w := testWorld(t, n, topology.Mesh{Rows: 2, Cols: 2})
	sent := make([]int64, n)
	w.Run(func(r *Rank) {
		send := make([][]uint64, n)
		for j := 0; j < n; j++ {
			send[j] = make([]uint64, (r.ID+1)*(j+1))
		}
		Must(Alltoallv(r.World, send))
		st := r.Stats
		sent[r.ID] = st.IntraBytes[KindAlltoallv] + st.InterBytes[KindAlltoallv]
	})
	var total int64
	for i, s := range sent {
		want := int64(0)
		for j := 0; j < n; j++ {
			if j != i {
				want += int64((i + 1) * (j + 1) * 8)
			}
		}
		if s != want {
			t.Fatalf("rank %d accounted %d bytes, want %d", i, s, want)
		}
		total += s
	}
	if total == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestAllgatherv(t *testing.T) {
	const n = 5
	w := testWorld(t, n, topology.Mesh{Rows: 1, Cols: 5})
	w.Run(func(r *Rank) {
		mine := []int32{int32(r.ID), int32(r.ID * 2)}
		all := Must(Allgatherv(r.World, mine))
		for j := 0; j < n; j++ {
			if len(all[j]) != 2 || all[j][0] != int32(j) || all[j][1] != int32(j*2) {
				panic(fmt.Sprintf("rank %d: bad gather from %d: %v", r.ID, j, all[j]))
			}
		}
	})
}

func TestAllgathervUniform(t *testing.T) {
	const n = 5
	w := testWorld(t, n, topology.Mesh{Rows: 1, Cols: 5})
	w.Run(func(r *Rank) {
		mine := []uint64{uint64(r.ID), uint64(r.ID * 10)}
		dst := make([]uint64, n*len(mine))
		for i := range dst {
			dst[i] = ^uint64(0) // must be fully overwritten
		}
		Must0(AllgathervUniform(r.World, mine, dst))
		for j := 0; j < n; j++ {
			if dst[2*j] != uint64(j) || dst[2*j+1] != uint64(j*10) {
				panic(fmt.Sprintf("rank %d: bad member-major slot %d: %v", r.ID, j, dst[2*j:2*j+2]))
			}
		}
	})
}

func TestAllgathervUniformBadDstPanics(t *testing.T) {
	w := testWorld(t, 2, topology.Mesh{Rows: 1, Cols: 2})
	w.Run(func(r *Rank) {
		defer func() {
			if recover() == nil {
				panic("expected panic on short dst")
			}
		}()
		_ = AllgathervUniform(r.World, []uint64{1, 2}, make([]uint64, 3))
	})
}

func TestReduceScatterAndAllgatherSegments(t *testing.T) {
	const n = 4
	w := testWorld(t, n, topology.Mesh{Rows: 2, Cols: 2})
	w.Run(func(r *Rank) {
		words := make([]uint64, 10)
		words[r.ID] = 1 << uint(r.ID) // each rank sets a distinct word
		words[9] = uint64(1) << uint(16+r.ID)
		seg := Must(ReduceScatterOr(r.World, words))
		full := make([]uint64, 10)
		Must0(AllgathervSegments(r.World, seg, full))
		for i := 0; i < n; i++ {
			if full[i] != 1<<uint(i) {
				panic(fmt.Sprintf("full[%d] = %x", i, full[i]))
			}
		}
		if full[9] != 0xF0000 {
			panic(fmt.Sprintf("full[9] = %x, want f0000", full[9]))
		}
	})
}

func TestAllreduceOr(t *testing.T) {
	const n = 7
	w := testWorld(t, n, topology.Mesh{Rows: 7, Cols: 1})
	w.Run(func(r *Rank) {
		words := make([]uint64, 3)
		words[r.ID%3] = 1 << uint(r.ID)
		Must0(AllreduceOr(r.World, words))
		want := [3]uint64{}
		for j := 0; j < n; j++ {
			want[j%3] |= 1 << uint(j)
		}
		for i := range words {
			if words[i] != want[i] {
				panic(fmt.Sprintf("rank %d: words[%d] = %x, want %x", r.ID, i, words[i], want[i]))
			}
		}
	})
}

func TestAllreduceOrDecomposesIntoRSAndAG(t *testing.T) {
	w := testWorld(t, 4, topology.Mesh{Rows: 2, Cols: 2})
	var rs, ag int64
	w.Run(func(r *Rank) {
		words := make([]uint64, 64)
		Must0(AllreduceOr(r.World, words))
		if r.ID == 0 {
			rs = r.Stats.Calls[KindReduceScatter]
			ag = r.Stats.Calls[KindAllgather]
		}
	})
	if rs != 1 || ag != 1 {
		t.Fatalf("AllreduceOr recorded rs=%d ag=%d calls, want 1 and 1", rs, ag)
	}
}

func TestAllreduceMaxInt64(t *testing.T) {
	const n = 5
	w := testWorld(t, n, topology.Mesh{Rows: 1, Cols: 5})
	w.Run(func(r *Rank) {
		vals := []int64{-1, -1, -1, -1, -1, -1, -1}
		vals[r.ID] = int64(r.ID * 10)
		if r.ID == 2 {
			vals[6] = 99
		}
		Must0(AllreduceMaxInt64(r.World, vals))
		for j := 0; j < n; j++ {
			if vals[j] != int64(j*10) {
				panic(fmt.Sprintf("vals[%d] = %d", j, vals[j]))
			}
		}
		if vals[5] != -1 || vals[6] != 99 {
			panic(fmt.Sprintf("tail wrong: %v", vals[5:]))
		}
	})
}

func TestAllreduceSumInt64(t *testing.T) {
	const n = 6
	w := testWorld(t, n, topology.Mesh{Rows: 2, Cols: 3})
	w.Run(func(r *Rank) {
		got := Must(AllreduceSumInt64(r.World, int64(r.ID+1)))
		if got != 21 {
			panic(fmt.Sprintf("sum = %d, want 21", got))
		}
	})
}

func TestBcast(t *testing.T) {
	w := testWorld(t, 4, topology.Mesh{Rows: 2, Cols: 2})
	w.Run(func(r *Rank) {
		v := Must(Bcast(r.World, r.ID*111, 2))
		if v != 222 {
			panic(fmt.Sprintf("rank %d got %d", r.ID, v))
		}
	})
}

func TestRowColCollectivesIndependent(t *testing.T) {
	// Row sums and column sums over a 2x3 mesh with value = rank id.
	w := testWorld(t, 6, topology.Mesh{Rows: 2, Cols: 3})
	w.Run(func(r *Rank) {
		rowSum := Must(AllreduceSumInt64(r.RowC, int64(r.ID)))
		colSum := Must(AllreduceSumInt64(r.ColC, int64(r.ID)))
		wantRow := int64(0)
		for c := 0; c < 3; c++ {
			wantRow += int64(r.Row*3 + c)
		}
		wantCol := int64(0)
		for row := 0; row < 2; row++ {
			wantCol += int64(row*3 + r.Col)
		}
		if rowSum != wantRow || colSum != wantCol {
			panic(fmt.Sprintf("rank %d: rowSum=%d want %d, colSum=%d want %d", r.ID, rowSum, wantRow, colSum, wantCol))
		}
	})
}

func TestIntraInterSupernodeSplit(t *testing.T) {
	// Machine with 2-node supernodes: ranks {0,1} and {2,3}. An allgather on
	// WORLD from rank 0 sends to 1 (intra) and 2,3 (inter).
	mach := topology.Machine{Nodes: 4, SupernodeSize: 2, NICBandwidth: 1e9, Oversubscription: 4}
	w, err := NewWorld(4, topology.Mesh{Rows: 2, Cols: 2}, mach)
	if err != nil {
		t.Fatal(err)
	}
	var intra, inter int64
	w.Run(func(r *Rank) {
		buf := make([]uint64, 10) // 80 bytes
		Must(Allgatherv(r.World, buf))
		if r.ID == 0 {
			intra = r.Stats.IntraBytes[KindAllgather]
			inter = r.Stats.InterBytes[KindAllgather]
		}
	})
	if intra != 80 || inter != 160 {
		t.Fatalf("intra=%d inter=%d, want 80 and 160", intra, inter)
	}
}

func TestWorldRejectsBadMesh(t *testing.T) {
	if _, err := NewWorld(6, topology.Mesh{Rows: 2, Cols: 2}, topology.NewSunway(6)); err == nil {
		t.Fatal("expected mesh size error")
	}
	if _, err := NewWorld(8, topology.Mesh{Rows: 2, Cols: 4}, topology.NewSunway(4)); err == nil {
		t.Fatal("expected machine too small error")
	}
}

func TestBarrierOrdering(t *testing.T) {
	// All ranks increment before the barrier; after it everyone must see the
	// full count.
	w := testWorld(t, 8, topology.Mesh{Rows: 2, Cols: 4})
	var counter atomic.Int64
	w.Run(func(r *Rank) {
		counter.Add(1)
		Must0(r.World.Barrier())
		if counter.Load() != 8 {
			panic("barrier did not synchronize")
		}
	})
}

func TestStatsDelta(t *testing.T) {
	w := testWorld(t, 2, topology.Mesh{Rows: 1, Cols: 2})
	w.Run(func(r *Rank) {
		base := r.Stats
		Must(Allgatherv(r.World, make([]uint64, 4)))
		d := r.Stats.Delta(&base)
		if d.Calls[KindAllgather] != 1 {
			panic("delta calls wrong")
		}
		if d.TotalBytes() != 32 {
			panic(fmt.Sprintf("delta bytes %d, want 32", d.TotalBytes()))
		}
	})
}

func TestRunPropagatesPanic(t *testing.T) {
	w := testWorld(t, 2, topology.Mesh{Rows: 1, Cols: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("Run should propagate rank panics")
		}
	}()
	w.Run(func(r *Rank) {
		if r.ID == 1 {
			panic("boom")
		}
	})
}

func BenchmarkAlltoallv16Ranks(b *testing.B) {
	w, err := NewWorld(16, topology.Mesh{Rows: 4, Cols: 4}, topology.NewSunway(16))
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]uint64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(r *Rank) {
			send := make([][]uint64, 16)
			for j := range send {
				send[j] = payload
			}
			Must(Alltoallv(r.World, send))
		})
	}
}

func TestAllreduceSumFloat64(t *testing.T) {
	const n = 6
	w := testWorld(t, n, topology.Mesh{Rows: 2, Cols: 3})
	results := make([][]float64, n)
	w.Run(func(r *Rank) {
		vals := []float64{float64(r.ID), 1, 0.5}
		Must0(AllreduceSumFloat64(r.World, vals))
		results[r.ID] = vals
	})
	want := []float64{15, 6, 3}
	for id, vals := range results {
		for i := range want {
			if vals[i] != want[i] {
				t.Fatalf("rank %d: vals[%d] = %g, want %g", id, i, vals[i], want[i])
			}
		}
		// Bit-identical across ranks (deterministic order).
		for i := range vals {
			if vals[i] != results[0][i] {
				t.Fatalf("rank %d diverges from rank 0", id)
			}
		}
	}
}

func TestAllreduceSumInt64Vec(t *testing.T) {
	const n = 4
	w := testWorld(t, n, topology.Mesh{Rows: 2, Cols: 2})
	w.Run(func(r *Rank) {
		vals := make([]int64, 10)
		for i := range vals {
			vals[i] = int64(r.ID + i)
		}
		Must0(AllreduceSumInt64Vec(r.World, vals))
		for i := range vals {
			want := int64(0)
			for id := 0; id < n; id++ {
				want += int64(id + i)
			}
			if vals[i] != want {
				panic(fmt.Sprintf("vals[%d] = %d, want %d", i, vals[i], want))
			}
		}
	})
}

func TestRandomizedCollectiveSequence(t *testing.T) {
	// A long random (but rank-uniform) sequence of mixed collectives over
	// world/row/column communicators: exercises barrier generation reuse,
	// slot recycling, and cross-communicator interleaving. Results are
	// checked against sequentially computed expectations.
	const n = 6
	mesh := topology.Mesh{Rows: 2, Cols: 3}
	w := testWorld(t, n, mesh)
	// The operation schedule must be identical on every rank: derive it
	// deterministically before spawning.
	type op struct{ kind, commSel, size int }
	ops := make([]op, 120)
	seed := uint64(12345)
	next := func(mod int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % mod
	}
	for i := range ops {
		ops[i] = op{kind: next(4), commSel: next(3), size: 1 + next(50)}
	}
	w.Run(func(r *Rank) {
		pick := func(sel int) *Comm {
			switch sel {
			case 0:
				return r.World
			case 1:
				return r.RowC
			default:
				return r.ColC
			}
		}
		for i, o := range ops {
			c := pick(o.commSel)
			switch o.kind {
			case 0: // allreduce OR of rank-tagged words
				words := make([]uint64, o.size)
				words[o.size/2] = 1 << uint(r.ID)
				Must0(AllreduceOr(c, words))
				var want uint64
				for m := 0; m < c.Size(); m++ {
					want |= 1 << uint(c.WorldRank(m))
				}
				if words[o.size/2] != want {
					panic(fmt.Sprintf("op %d: OR got %x want %x", i, words[o.size/2], want))
				}
			case 1: // sum
				got := Must(AllreduceSumInt64(c, int64(r.ID+1)))
				want := int64(0)
				for m := 0; m < c.Size(); m++ {
					want += int64(c.WorldRank(m) + 1)
				}
				if got != want {
					panic(fmt.Sprintf("op %d: sum got %d want %d", i, got, want))
				}
			case 2: // alltoallv echo: member j receives i's rank from i
				send := make([][]int32, c.Size())
				for j := range send {
					send[j] = []int32{int32(r.ID)}
				}
				recv := Must(Alltoallv(c, send))
				for j := range recv {
					if len(recv[j]) != 1 || recv[j][0] != int32(c.WorldRank(j)) {
						panic(fmt.Sprintf("op %d: alltoallv echo wrong", i))
					}
				}
			default: // barrier
				Must0(c.Barrier())
			}
		}
	})
}
