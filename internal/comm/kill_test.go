package comm

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/topology"
)

// killWorld builds a world whose transport fail-stops the given rank at its
// first intercepted collective.
func killWorld(t *testing.T, mesh topology.Mesh, victim int) *World {
	t.Helper()
	n := mesh.Size()
	var once sync.Once
	w, err := NewWorldOpts(n, mesh, topology.NewSunway(n), WorldOptions{
		Transport: scripted(func(c Call) FaultAction {
			var act FaultAction
			if c.Rank == victim {
				once.Do(func() { act.Kill = true })
			}
			return act
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestKillSurfacesErrRankDeadEverywhere kills one rank and asserts every
// collective on every mesh shape surfaces ErrRankDead naming the victim on
// EVERY member — including the victim itself — without deadlocking. The kill
// latches: the once-only transport verdict must keep the rank dead on later
// collectives with no further transport involvement.
func TestKillSurfacesErrRankDeadEverywhere(t *testing.T) {
	meshes := []topology.Mesh{
		{Rows: 1, Cols: 4}, {Rows: 2, Cols: 2}, {Rows: 4, Cols: 1}, {Rows: 2, Cols: 3},
	}
	for _, mesh := range meshes {
		for _, op := range collectiveOps {
			victim := mesh.Size() - 1
			if op.name == "bcast" {
				// Bcast intercepts only its root contributor (receivers post
				// nothing a fault could touch), so the kill must hit root 0.
				victim = 0
			}
			w := killWorld(t, mesh, victim)
			kills := make([]int64, mesh.Size())
			w.Run(func(r *Rank) {
				defer func() { kills[r.ID] = r.Faults.Kills }()
				// Round 1: the kill fires somewhere inside the op.
				for round := 0; round < 3; round++ {
					err := op.run(r)
					if err == nil {
						panicf(t, "%v/%s round %d: rank %d got nil error under a kill", mesh, op.name, round, r.ID)
					}
					if !errors.Is(err, ErrRankDead) {
						panicf(t, "%v/%s round %d: rank %d error %v is not ErrRankDead", mesh, op.name, round, r.ID, err)
					}
					var ce *CollectiveError
					if !errors.As(err, &ce) {
						panicf(t, "%v/%s: rank %d error %T is not *CollectiveError", mesh, op.name, r.ID, err)
					}
					if ce.Rank != victim {
						panicf(t, "%v/%s: rank %d blames rank %d, want %d", mesh, op.name, r.ID, ce.Rank, victim)
					}
				}
				if (r.ID == victim) != r.Dead() {
					panicf(t, "%v/%s: rank %d Dead()=%v", mesh, op.name, r.ID, r.Dead())
				}
			})
			if kills[victim] != 1 {
				t.Fatalf("%v/%s: victim recorded %d kills, want 1", mesh, op.name, kills[victim])
			}
		}
	}
}

// TestDeadRankStaysOnControlPlane is the zombie property the recovery
// protocol leans on: a dead rank keeps participating in control collectives,
// carrying its payload, so survivors need no timeout to agree on the death —
// the zombie is its own failure detector.
func TestDeadRankStaysOnControlPlane(t *testing.T) {
	mesh := topology.Mesh{Rows: 2, Cols: 2}
	w := killWorld(t, mesh, 2)
	w.Run(func(r *Rank) {
		_ = r.World.Barrier() // fires the kill on rank 2
		if got := ControlSumInt64(r.World, int64(r.ID)+1); got != 1+2+3+4 {
			panicf(t, "rank %d: control sum %d, want 10", r.ID, got)
		}
		words := []uint64{1 << uint(r.ID)}
		agg := ControlOrWords(r.World, words)
		if agg[0] != 0b1111 {
			panicf(t, "rank %d: control OR %b, want 1111", r.ID, agg[0])
		}
	})
}

func TestControlOrWordsFoldsAllRanks(t *testing.T) {
	mesh := topology.Mesh{Rows: 2, Cols: 3}
	w, err := NewWorld(mesh.Size(), mesh, topology.NewSunway(mesh.Size()))
	if err != nil {
		t.Fatal(err)
	}
	w.Run(func(r *Rank) {
		words := []uint64{uint64(r.ID), 1 << uint(16+r.ID)}
		agg := ControlOrWords(r.World, words)
		if agg[0] != 0|1|2|3|4|5 {
			panicf(t, "rank %d: word0 = %d", r.ID, agg[0])
		}
		if agg[1] != 0b111111<<16 {
			panicf(t, "rank %d: word1 = %b", r.ID, agg[1])
		}
	})
}

func TestNextEpochShrink(t *testing.T) {
	mesh := topology.Mesh{Rows: 2, Cols: 3}
	w, err := NewWorld(mesh.Size(), mesh, topology.NewSunway(mesh.Size()))
	if err != nil {
		t.Fatal(err)
	}
	nodes := w.Machine().Nodes
	nw, err := w.NextEpoch([]int{4}, RebuildShrink)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Epoch() != w.Epoch()+1 {
		t.Fatalf("epoch %d, want %d", nw.Epoch(), w.Epoch()+1)
	}
	// Rank 4 sits at row 1, col 1; its nearest surviving row neighbor is
	// rank 5 (col 2). The dead slot is re-homed onto rank 5's node; the
	// machine does not grow.
	if got, want := nw.NodeOf(4), nw.NodeOf(5); got != want {
		t.Fatalf("shrink re-homed rank 4 to node %d, want rank 5's node %d", got, want)
	}
	if nw.Machine().Nodes != nodes {
		t.Fatalf("shrink grew the machine: %d nodes, was %d", nw.Machine().Nodes, nodes)
	}
	// Survivors keep their identity mapping.
	for r := 0; r < mesh.Size(); r++ {
		if r != 4 && nw.NodeOf(r) != w.NodeOf(r) {
			t.Fatalf("survivor rank %d moved from node %d to %d", r, w.NodeOf(r), nw.NodeOf(r))
		}
	}
}

func TestNextEpochShrinkWholeRowDead(t *testing.T) {
	mesh := topology.Mesh{Rows: 2, Cols: 2}
	w, err := NewWorld(mesh.Size(), mesh, topology.NewSunway(mesh.Size()))
	if err != nil {
		t.Fatal(err)
	}
	// Kill an entire mesh row: re-homing must fall back to a live rank
	// outside the row instead of pointing a dead slot at another dead slot.
	nw, err := w.NextEpoch([]int{2, 3}, RebuildShrink)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []int{2, 3} {
		host := nw.NodeOf(d)
		if host != nw.NodeOf(0) && host != nw.NodeOf(1) {
			t.Fatalf("dead rank %d re-homed to node %d, not a survivor's node", d, host)
		}
	}
}

func TestNextEpochRestore(t *testing.T) {
	mesh := topology.Mesh{Rows: 2, Cols: 2}
	w, err := NewWorld(mesh.Size(), mesh, topology.NewSunway(mesh.Size()))
	if err != nil {
		t.Fatal(err)
	}
	nodes := w.Machine().Nodes
	nw, err := w.NextEpoch([]int{1}, RebuildRestore)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Machine().Nodes != nodes+1 {
		t.Fatalf("restore grew machine to %d nodes, want %d", nw.Machine().Nodes, nodes+1)
	}
	if nw.NodeOf(1) != nodes {
		t.Fatalf("replacement rank 1 on node %d, want fresh node %d", nw.NodeOf(1), nodes)
	}
	// The restored world is a working world: run a collective on it.
	nw.Run(func(r *Rank) {
		if got := ControlSumInt64(r.World, 1); got != int64(mesh.Size()) {
			panicf(t, "rank %d: sum %d", r.ID, got)
		}
	})
}

func TestNextEpochValidation(t *testing.T) {
	mesh := topology.Mesh{Rows: 2, Cols: 2}
	w, err := NewWorld(mesh.Size(), mesh, topology.NewSunway(mesh.Size()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.NextEpoch(nil, RebuildShrink); err == nil {
		t.Fatal("empty dead list accepted")
	}
	if _, err := w.NextEpoch([]int{7}, RebuildShrink); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := w.NextEpoch([]int{0, 1, 2, 3}, RebuildShrink); err == nil {
		t.Fatal("all-dead world accepted")
	}
}
