package comm

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/trace"
)

// This file is the fault-injection surface of the runtime. The paper's
// 180,792-GTEPS run rides on tens of thousands of collectives completing
// flawlessly across 103,912 nodes; a production deployment cannot assume
// that, so the in-process transport can be made unreliable on purpose. A
// Transport intercepts every rank's contribution to every collective and may
// delay it, withhold it (a stalled rank), corrupt its payload, or fail it
// outright. Detection is symmetric: contributions travel as checksummed
// envelopes, and every member of the communicator inspects all envelopes
// between the two rendezvous barriers, so all members return the same typed
// error for the same collective. A faulty rank still arrives at the physical
// rendezvous (it withholds its payload instead of abandoning the barrier),
// which is what keeps a stalled rank from deadlocking the world: detection is
// driven by envelope metadata rather than by escaping the barrier, so the
// whole world stays in collective lockstep even while reporting errors.

// Sentinel errors returned by collectives under fault injection. Callers
// match with errors.Is; the concrete error is a *CollectiveError carrying the
// offending rank and collective kind.
var (
	// ErrCollectiveFailed marks a contribution failed outright (the modeled
	// equivalent of a reported send error or a dead NIC).
	ErrCollectiveFailed = errors.New("comm: collective contribution failed")
	// ErrRankStalled marks a contribution withheld past the collective
	// deadline (the modeled equivalent of a hung process detected by a
	// timeout watchdog instead of a silent hang).
	ErrRankStalled = errors.New("comm: rank stalled in collective")
	// ErrPayloadCorrupted marks a payload whose checksum did not match what
	// the sender declared.
	ErrPayloadCorrupted = errors.New("comm: payload checksum mismatch")
	// ErrDeadlineExceeded marks a collective whose slowest contribution
	// arrived later than the configured per-collective deadline.
	ErrDeadlineExceeded = errors.New("comm: collective deadline exceeded")
	// ErrRankDead marks a fail-stop rank: a Kill fault removed it
	// permanently, and every collective it participates in from then on
	// fails with this sentinel on every member. Unlike the transient faults
	// above, retrying cannot clear it — recovery requires a new world epoch
	// (see World.NextEpoch).
	ErrRankDead = errors.New("comm: rank is dead (fail-stop)")
)

// CollectiveError wraps a sentinel with the collective and rank it hit.
type CollectiveError struct {
	Kind Kind  // which collective
	Seq  int64 // detecting rank's collective sequence number
	Rank int   // offending world rank
	Err  error // sentinel
}

// Error describes the failure.
func (e *CollectiveError) Error() string {
	return fmt.Sprintf("%v (collective %v #%d, rank %d)", e.Err, e.Kind, e.Seq, e.Rank)
}

// Unwrap exposes the sentinel to errors.Is.
func (e *CollectiveError) Unwrap() error { return e.Err }

// Call describes one rank's participation in one collective, handed to the
// Transport for a verdict.
type Call struct {
	Rank      int   // world rank contributing
	Supernode int   // the rank's supernode on the modeled machine
	Kind      Kind  // collective kind
	Seq       int64 // the rank's collective sequence number (1-based)
	CommSize  int   // members in the communicator
	// Iter is the engine-declared iteration the call belongs to (-1 outside
	// an iteration), and Tag its schedule position within the iteration (-1
	// untagged). Both are advisory labels set via Rank.SetIter/SetTag; they
	// let transports scope faults to "iteration 2" or "during component c"
	// instead of raw sequence numbers.
	Iter int64
	Tag  int
}

// FaultAction is the Transport's verdict for one contribution. The zero value
// is a clean contribution. Fail takes precedence over Withhold, which takes
// precedence over Corrupt; Delay composes with any of them (the rank sleeps
// before contributing).
type FaultAction struct {
	// Delay sleeps the contributing rank before it posts.
	Delay time.Duration
	// Withhold posts no payload: the rank is stalled. The collective fails
	// with ErrRankStalled on every member.
	Withhold bool
	// Corrupt flips a bit in a copy of the payload; receivers detect the
	// checksum mismatch and the collective fails with ErrPayloadCorrupted.
	// The caller's buffer is never touched, so a retry resends clean data.
	Corrupt bool
	// Fail fails the contribution outright: ErrCollectiveFailed everywhere.
	Fail bool
	// Kill permanently removes the rank: this collective and every later one
	// the rank participates in fail with ErrRankDead on every member. The
	// rank's goroutine keeps arriving at rendezvous (posting a dead envelope,
	// so nothing deadlocks) but contributes no payload ever again — a
	// fail-stop zombie. Kill takes precedence over every other action, and
	// once a rank is dead the transport is no longer consulted for it.
	Kill bool
}

// Transport decides the fate of each collective contribution. Implementations
// must be safe for concurrent use (all ranks consult it in parallel) and
// should be deterministic functions of the Call for reproducible chaos.
type Transport interface {
	Intercept(c Call) FaultAction
}

// WorldOptions configures the unreliable parts of a World.
type WorldOptions struct {
	// Transport injects faults into collectives; nil means perfectly
	// reliable (the zero-cost fast path).
	Transport Transport
	// Deadline is the per-collective deadline: a collective whose slowest
	// contribution is delayed past it fails with ErrDeadlineExceeded on
	// every member. 0 disables deadline detection.
	Deadline time.Duration
	// Trace records one span per collective (enter to exit, payload bytes
	// split by supernode locality) on a per-rank stream. nil disables
	// tracing; the hot path then pays a single nil check per collective.
	// Control-plane collectives (ControlSumInt64, ControlOrWords) are exempt,
	// mirroring their exemption from traffic accounting.
	Trace *trace.Tracer
	// Dist spreads the world's ranks across the processes of a Group (the
	// socket backend). nil keeps every rank in this process. NextEpoch
	// carries the configuration into successor worlds, re-homing the dead
	// slots' processes alongside their nodes.
	Dist *DistConfig
}

// FaultStats counts one rank's injected faults and observed collective
// errors. Rank-local and unsynchronized, like VolumeStats.
type FaultStats struct {
	Delays      int64 // contributions delayed
	Stalls      int64 // contributions withheld
	Corruptions int64 // payloads corrupted (only counted when applied)
	Failures    int64 // contributions failed outright
	Kills       int64 // ranks fail-stopped (counted once per kill, not per collective)
	DelayTime   time.Duration
	// Errors counts collectives that returned a typed error at this rank.
	Errors int64
}

// Add accumulates other into s.
func (s *FaultStats) Add(other *FaultStats) {
	s.Delays += other.Delays
	s.Stalls += other.Stalls
	s.Corruptions += other.Corruptions
	s.Failures += other.Failures
	s.Kills += other.Kills
	s.DelayTime += other.DelayTime
	s.Errors += other.Errors
}

// Injected totals all injected faults.
func (s *FaultStats) Injected() int64 {
	return s.Delays + s.Stalls + s.Corruptions + s.Failures + s.Kills
}

// Must unwraps a collective result, panicking on error. The fault-oblivious
// packages (baseline, framework, sssp, psort, partition) construct worlds
// without a Transport, where collectives cannot fail, and use Must at their
// call sites; fault-aware callers (the core engine) handle the error.
func Must[T any](v T, err error) T {
	if err != nil {
		panic(fmt.Sprintf("comm: collective failed on a reliable world: %v", err))
	}
	return v
}

// Must0 is Must for collectives that return only an error.
func Must0(err error) {
	if err != nil {
		panic(fmt.Sprintf("comm: collective failed on a reliable world: %v", err))
	}
}
