package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// SparseUpdate is one destination-addressed record of the sparse tail
// protocol: instead of a dense per-destination buffer list, a sender ships a
// flat stream of (destination, tag, offset, value) triples and every receiver
// filters out its own. Dst is a member index within the communicator the
// exchange runs on; Tag is a caller-defined stream label (the engine uses
// component ids so one batched exchange can carry several kernels' payloads);
// Off is a destination-local address (an L index, a hub id, or an original
// vertex id depending on the tag); Val is the payload (a parent vertex id).
type SparseUpdate struct {
	Dst int32
	Tag int32
	Off int64
	Val int64
}

// Frame layout: 4-byte magic, little-endian uint32 record count, then
// fixed-width 24-byte records (Dst, Tag as uint32; Off, Val as uint64).
const (
	sparseMagic     = "SPU1"
	sparseHeaderLen = 8
	sparseRecordLen = 24
)

// ErrSparseFrame marks a malformed sparse-update frame: bad magic, a
// truncated header or record section, or trailing bytes. Decoding is strict —
// a frame either parses back to exactly what was encoded or is rejected.
var ErrSparseFrame = errors.New("comm: malformed sparse-update frame")

// EncodeSparseUpdates appends the framed encoding of ups to dst and returns
// the extended slice. The encoding is canonical: one byte sequence per update
// list.
func EncodeSparseUpdates(dst []byte, ups []SparseUpdate) []byte {
	n := len(dst)
	need := sparseHeaderLen + sparseRecordLen*len(ups)
	if cap(dst)-n < need {
		grown := make([]byte, n, n+need)
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, sparseMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ups)))
	for _, u := range ups {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(u.Dst))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(u.Tag))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(u.Off))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(u.Val))
	}
	return dst
}

// DecodeSparseUpdates parses one frame produced by EncodeSparseUpdates. It
// rejects truncated frames, trailing bytes, bad magic, and record counts that
// disagree with the frame length, all as errors wrapping ErrSparseFrame.
func DecodeSparseUpdates(frame []byte) ([]SparseUpdate, error) {
	if len(frame) < sparseHeaderLen {
		return nil, fmt.Errorf("%w: %d-byte frame is shorter than the %d-byte header",
			ErrSparseFrame, len(frame), sparseHeaderLen)
	}
	if string(frame[:4]) != sparseMagic {
		return nil, fmt.Errorf("%w: magic %q, want %q", ErrSparseFrame, frame[:4], sparseMagic)
	}
	count := binary.LittleEndian.Uint32(frame[4:8])
	want := uint64(sparseHeaderLen) + uint64(count)*sparseRecordLen
	if uint64(len(frame)) != want {
		return nil, fmt.Errorf("%w: %d bytes for %d records, want %d",
			ErrSparseFrame, len(frame), count, want)
	}
	if count == 0 {
		return nil, nil
	}
	ups := make([]SparseUpdate, count)
	for i := range ups {
		rec := frame[sparseHeaderLen+i*sparseRecordLen:]
		ups[i] = SparseUpdate{
			Dst: int32(binary.LittleEndian.Uint32(rec[0:4])),
			Tag: int32(binary.LittleEndian.Uint32(rec[4:8])),
			Off: int64(binary.LittleEndian.Uint64(rec[8:16])),
			Val: int64(binary.LittleEndian.Uint64(rec[16:24])),
		}
	}
	return ups, nil
}

// AllgatherSparse is the tail-iteration exchange: every member posts one
// encoded frame of destination-addressed updates and every member receives
// all frames, keeping only the records addressed to it. The result is shaped
// exactly like Alltoallv's — out[j] holds member j's updates for the caller,
// in j's send order — so a caller can substitute it for a dense exchange and
// apply the received messages in an identical order. For the tiny frontiers
// of tail iterations one small allgathered frame replaces k dense buffers,
// most of them empty.
//
// The frame rides the same contribution protocol as every other collective,
// so the fault transport's delay/stall/corrupt/fail/kill actions all apply;
// corruption is caught by the envelope checksum before any decode, which is
// why a frame that fails to decode after a clean verify is a panic (protocol
// bug), not an error. Updates with Dst outside [0, Size()) panic on the
// sender — they could otherwise silently vanish.
func AllgatherSparse(c *Comm, ups []SparseUpdate) ([][]SparseUpdate, error) {
	k := c.Size()
	for _, u := range ups {
		if int(u.Dst) < 0 || int(u.Dst) >= k {
			panic(fmt.Sprintf("comm: AllgatherSparse update Dst %d out of [0,%d)", u.Dst, k))
		}
	}
	seq := c.nextSeq()
	tok := c.traceEnter()
	c.rank.Stats.Calls[KindAllgatherSparse]++
	frame := EncodeSparseUpdates(nil, ups)
	for j := 0; j < k; j++ {
		if j != c.me {
			c.account(KindAllgatherSparse, j, int64(len(frame)))
		}
	}
	contribute1(c, KindAllgatherSparse, seq, frame)
	c.rendezvous(seq, nil)
	err := c.verify(KindAllgatherSparse, nil)
	var out [][]SparseUpdate
	if err == nil {
		out = make([][]SparseUpdate, k)
		for j := 0; j < k; j++ {
			posted, derr := DecodeSparseUpdates(slotSlice[byte](c, j))
			if derr != nil {
				panic(fmt.Sprintf("comm: AllgatherSparse: member %d posted a bad frame past checksum verification: %v", j, derr))
			}
			for _, u := range posted {
				if int(u.Dst) == c.me {
					out[j] = append(out[j], u)
				}
			}
		}
	}
	c.complete(seq)
	c.traceExit("allgather_sparse", tok, err)
	return out, err
}
