package comm

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/topology"
)

func TestSparseCodecRoundTrip(t *testing.T) {
	cases := [][]SparseUpdate{
		nil,
		{},
		{{Dst: 0, Tag: 0, Off: 0, Val: 0}},
		{{Dst: 3, Tag: 2, Off: 12345, Val: -1}},
		{{Dst: 1, Tag: 0, Off: -7, Val: 1 << 40}, {Dst: 1, Tag: 1, Off: 0, Val: -9}},
		{
			{Dst: 0, Tag: 5, Off: 1, Val: 2},
			{Dst: 2, Tag: 5, Off: 3, Val: 4},
			{Dst: 0, Tag: 6, Off: 5, Val: 6},
		},
	}
	for i, ups := range cases {
		frame := EncodeSparseUpdates(nil, ups)
		if len(frame) != sparseHeaderLen+sparseRecordLen*len(ups) {
			t.Fatalf("case %d: frame length %d, want %d", i, len(frame), sparseHeaderLen+sparseRecordLen*len(ups))
		}
		got, err := DecodeSparseUpdates(frame)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if len(got) != len(ups) {
			t.Fatalf("case %d: %d records decoded, want %d", i, len(got), len(ups))
		}
		for j := range ups {
			if got[j] != ups[j] {
				t.Fatalf("case %d record %d: %+v != %+v", i, j, got[j], ups[j])
			}
		}
	}
}

func TestSparseCodecAppendsToDst(t *testing.T) {
	// Encode must append after existing bytes, leaving them untouched.
	prefix := []byte("hello")
	frame := EncodeSparseUpdates(append([]byte(nil), prefix...), []SparseUpdate{{Dst: 1, Off: 2, Val: 3}})
	if !bytes.HasPrefix(frame, prefix) {
		t.Fatalf("encode clobbered the destination prefix: %q", frame[:5])
	}
	got, err := DecodeSparseUpdates(frame[len(prefix):])
	if err != nil || len(got) != 1 || got[0] != (SparseUpdate{Dst: 1, Off: 2, Val: 3}) {
		t.Fatalf("decode after prefix: %v, %v", got, err)
	}
}

func TestSparseCodecCanonical(t *testing.T) {
	// Same updates, same bytes — the property the fuzz round-trip relies on.
	ups := []SparseUpdate{{Dst: 2, Tag: 1, Off: 99, Val: -4}, {Dst: 0, Tag: 3, Off: 1, Val: 1}}
	a := EncodeSparseUpdates(nil, ups)
	b := EncodeSparseUpdates(nil, ups)
	if !bytes.Equal(a, b) {
		t.Fatal("encoding is not canonical")
	}
}

func TestSparseDecodeRejectsMalformed(t *testing.T) {
	good := EncodeSparseUpdates(nil, []SparseUpdate{{Dst: 1, Tag: 2, Off: 3, Val: 4}})
	cases := []struct {
		name  string
		frame []byte
	}{
		{"empty", nil},
		{"short-header", good[:sparseHeaderLen-1]},
		{"bad-magic", append([]byte("XPU1"), good[4:]...)},
		{"truncated-one-byte", good[:len(good)-1]},
		{"truncated-one-record", EncodeSparseUpdates(nil, []SparseUpdate{{Dst: 0}, {Dst: 1}})[:sparseHeaderLen+sparseRecordLen]},
		{"trailing-byte", append(append([]byte(nil), good...), 0)},
		{"count-overstates", func() []byte {
			f := append([]byte(nil), good...)
			f[4] = 200 // claims 200 records, carries 1
			return f
		}()},
		{"count-understates", func() []byte {
			f := append([]byte(nil), good...)
			f[4] = 0 // claims 0 records, carries 1
			return f
		}()},
	}
	for _, tc := range cases {
		if _, err := DecodeSparseUpdates(tc.frame); !errors.Is(err, ErrSparseFrame) {
			t.Fatalf("%s: err = %v, want ErrSparseFrame", tc.name, err)
		}
	}
	// truncated-one-record above rebuilds a same-length frame; also check a
	// frame cut mid-record.
	two := EncodeSparseUpdates(nil, []SparseUpdate{{Dst: 0}, {Dst: 1}})
	if _, err := DecodeSparseUpdates(two[:len(two)-sparseRecordLen/2]); !errors.Is(err, ErrSparseFrame) {
		t.Fatalf("mid-record cut: err = %v, want ErrSparseFrame", err)
	}
}

// TestAllgatherSparseMatchesAlltoallv pins the substitution contract: the
// sparse exchange delivers, per source member, exactly the values a dense
// Alltoallv would have delivered, in the same per-source order.
func TestAllgatherSparseMatchesAlltoallv(t *testing.T) {
	const n = 4
	w, err := NewWorld(n, topology.Mesh{Rows: 2, Cols: 2}, topology.NewSunway(n))
	if err != nil {
		t.Fatal(err)
	}
	// Rank r sends value 100*r+j twice to every rank j<r, once to itself.
	sendFor := func(id int) ([][]int64, []SparseUpdate) {
		dense := make([][]int64, n)
		var sparse []SparseUpdate
		for j := 0; j < id; j++ {
			for rep := 0; rep < 2; rep++ {
				v := int64(100*id + j)
				dense[j] = append(dense[j], v)
				sparse = append(sparse, SparseUpdate{Dst: int32(j), Off: int64(rep), Val: v})
			}
		}
		dense[id] = append(dense[id], int64(-id))
		sparse = append(sparse, SparseUpdate{Dst: int32(id), Off: 0, Val: int64(-id)})
		return dense, sparse
	}
	w.Run(func(r *Rank) {
		dense, sparse := sendFor(r.ID)
		wantRecv, err := Alltoallv(r.World, dense)
		if err != nil {
			panicf(t, "rank %d: alltoallv: %v", r.ID, err)
		}
		got, err := AllgatherSparse(r.World, sparse)
		if err != nil {
			panicf(t, "rank %d: allgathersparse: %v", r.ID, err)
		}
		for j := 0; j < n; j++ {
			vals := make([]int64, 0, len(got[j]))
			for _, u := range got[j] {
				if int(u.Dst) != r.ID {
					panicf(t, "rank %d: received a record addressed to %d", r.ID, u.Dst)
				}
				vals = append(vals, u.Val)
			}
			if !reflect.DeepEqual(vals, append([]int64{}, wantRecv[j]...)) {
				panicf(t, "rank %d: from %d got %v, dense path delivered %v", r.ID, j, vals, wantRecv[j])
			}
		}
	})
}

func TestAllgatherSparseEmptyExchange(t *testing.T) {
	const n = 4
	w, err := NewWorld(n, topology.Mesh{Rows: 1, Cols: 4}, topology.NewSunway(n))
	if err != nil {
		t.Fatal(err)
	}
	w.Run(func(r *Rank) {
		out, err := AllgatherSparse(r.World, nil)
		if err != nil {
			panicf(t, "rank %d: %v", r.ID, err)
		}
		for j, part := range out {
			if len(part) != 0 {
				panicf(t, "rank %d: empty exchange delivered %d records from %d", r.ID, len(part), j)
			}
		}
		if r.Stats.Calls[KindAllgatherSparse] != 1 {
			panicf(t, "rank %d: Calls[allgather_sparse] = %d, want 1", r.ID, r.Stats.Calls[KindAllgatherSparse])
		}
	})
}

func TestAllgatherSparseScopedToRow(t *testing.T) {
	// On a row communicator, Dst is a row-member index and records never leak
	// to the other row.
	const n = 4
	w, err := NewWorld(n, topology.Mesh{Rows: 2, Cols: 2}, topology.NewSunway(n))
	if err != nil {
		t.Fatal(err)
	}
	w.Run(func(r *Rank) {
		me := r.RowC.Rank()
		peer := 1 - me
		out, err := AllgatherSparse(r.RowC, []SparseUpdate{
			{Dst: int32(peer), Off: int64(r.ID), Val: int64(10 * r.ID)},
		})
		if err != nil {
			panicf(t, "rank %d: %v", r.ID, err)
		}
		got := out[peer]
		if len(got) != 1 {
			panicf(t, "rank %d: %d records from row peer, want 1", r.ID, len(got))
		}
		// The peer is in my row: its Off encodes its world rank.
		wantFrom := r.Row*2 + peer
		if got[0].Off != int64(wantFrom) || got[0].Val != int64(10*wantFrom) {
			panicf(t, "rank %d: got %+v, want from world rank %d", r.ID, got[0], wantFrom)
		}
	})
}

func TestAllgatherSparsePanicsOnBadDst(t *testing.T) {
	const n = 2
	w, err := NewWorld(n, topology.Mesh{Rows: 1, Cols: 2}, topology.NewSunway(n))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Dst did not panic")
		}
	}()
	w.Run(func(r *Rank) {
		AllgatherSparse(r.World, []SparseUpdate{{Dst: int32(n), Val: 1}})
	})
}

// FuzzSparseCodec fuzzes the decoder with arbitrary frames: any frame that
// decodes must re-encode to the identical bytes (the canonical-encoding
// property), and mutations that truncate or extend a valid frame must be
// rejected.
func FuzzSparseCodec(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(EncodeSparseUpdates(nil, nil))
	f.Add(EncodeSparseUpdates(nil, []SparseUpdate{{Dst: 1, Tag: 2, Off: 3, Val: 4}}))
	f.Add(EncodeSparseUpdates(nil, []SparseUpdate{
		{Dst: 0, Tag: 0, Off: -1, Val: 1 << 62},
		{Dst: 3, Tag: 7, Off: 42, Val: -42},
	}))
	f.Add([]byte("SPU1\x01\x00\x00\x00short"))
	f.Fuzz(func(t *testing.T, frame []byte) {
		ups, err := DecodeSparseUpdates(frame)
		if err != nil {
			if !errors.Is(err, ErrSparseFrame) {
				t.Fatalf("decode error %v does not wrap ErrSparseFrame", err)
			}
			return
		}
		// Round trip: canonical encoding means re-encoding the decoded records
		// must reproduce the input bit for bit.
		re := EncodeSparseUpdates(nil, ups)
		if !bytes.Equal(re, frame) {
			t.Fatalf("round trip diverged:\n in: %x\nout: %x", frame, re)
		}
		// A valid frame with a byte chopped or appended must be rejected.
		if len(frame) > 0 {
			if _, err := DecodeSparseUpdates(frame[:len(frame)-1]); err == nil {
				t.Fatal("decoder accepted a truncated frame")
			}
		}
		if _, err := DecodeSparseUpdates(append(append([]byte(nil), frame...), 0xff)); err == nil {
			t.Fatal("decoder accepted trailing bytes")
		}
		if len(frame) >= sparseHeaderLen+sparseRecordLen {
			if _, err := DecodeSparseUpdates(frame[:len(frame)-sparseRecordLen]); err == nil {
				t.Fatal("decoder accepted a frame missing one record")
			}
		}
	})
}
