package comm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/topology"
	"repro/internal/wire"
)

// distGroups builds a connected process group over Unix sockets in the test's
// temp dir, with timings tightened for test latency. Groups are closed
// gracefully at cleanup (tests that Abort do so explicitly first; shutdown is
// idempotent).
func distGroups(t *testing.T, procs int) []*Group {
	t.Helper()
	dir := t.TempDir()
	addrs := make([]string, procs)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("unix:%s/p%d.sock", dir, i)
	}
	gs := make([]*Group, procs)
	for i := range gs {
		g, err := NewGroup(wire.Config{
			Proc:           i,
			Addrs:          addrs,
			HeartbeatEvery: 10 * time.Millisecond,
			PeerDeadAfter:  400 * time.Millisecond,
			DialTimeout:    200 * time.Millisecond,
			WriteTimeout:   time.Second,
			BackoffBase:    2 * time.Millisecond,
			BackoffCap:     20 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("group %d: %v", i, err)
		}
		gs[i] = g
		t.Cleanup(func() { g.Close() })
	}
	return gs
}

// distWorlds builds one world per process of a fresh group, splitting the
// mesh's ranks contiguously across the processes. mkOpt fills the non-Dist
// options per process (transport, deadline); it may be nil.
func distWorlds(t *testing.T, procs int, mesh topology.Mesh, mkOpt func(proc int) WorldOptions) ([]*World, []*Group) {
	t.Helper()
	n := mesh.Size()
	if n%procs != 0 {
		t.Fatalf("mesh size %d not divisible by %d procs", n, procs)
	}
	gs := distGroups(t, procs)
	ws := make([]*World, procs)
	for i, g := range gs {
		var opt WorldOptions
		if mkOpt != nil {
			opt = mkOpt(i)
		}
		opt.Dist = &DistConfig{Group: g, ProcOf: ContiguousProcOf(n, n/procs)}
		w, err := NewWorldOpts(n, mesh, topology.NewSunway(n), opt)
		if err != nil {
			t.Fatalf("world %d: %v", i, err)
		}
		ws[i] = w
	}
	return ws, gs
}

// runSPMD executes body on every world concurrently — the single-test-binary
// stand-in for P OS processes each calling Run on its own world.
func runSPMD(ws []*World, body func(*Rank)) {
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *World) {
			defer wg.Done()
			w.Run(body)
		}(w)
	}
	wg.Wait()
}

func TestContiguousProcOf(t *testing.T) {
	got := ContiguousProcOf(6, 2)
	want := []int{0, 0, 1, 1, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ContiguousProcOf(6,2) = %v, want %v", got, want)
		}
	}
}

// TestDistCollectivesAgreeWithClosedForms runs every collective on a world
// split across processes and checks the results against their closed forms on
// every rank — world, row, AND column communicators (rows are split across
// processes by the contiguous map; columns straddle them).
func TestDistCollectivesAgreeWithClosedForms(t *testing.T) {
	for _, procs := range []int{2, 3} {
		mesh := topology.Mesh{Rows: 2, Cols: 3}
		ws, _ := distWorlds(t, procs, mesh, nil)
		n := mesh.Size()
		runSPMD(ws, func(r *Rank) {
			// World allreduce sum: n(n-1)/2.
			sum := Must(AllreduceSumInt64(r.World, int64(r.ID)))
			if want := int64(n * (n - 1) / 2); sum != want {
				t.Errorf("procs=%d rank %d: world sum %d, want %d", procs, r.ID, sum, want)
			}
			// Allgatherv: member j posted {j+1}.
			out := Must(Allgatherv(r.World, []uint64{uint64(r.ID) + 1}))
			for j := range out {
				if len(out[j]) != 1 || out[j][0] != uint64(j)+1 {
					t.Errorf("procs=%d rank %d: allgatherv[%d] = %v", procs, r.ID, j, out[j])
				}
			}
			// Alltoallv: member j sent us {j, me}.
			send := make([][]int64, n)
			for j := range send {
				send[j] = []int64{int64(r.ID), int64(j)}
			}
			recv := Must(Alltoallv(r.World, send))
			for j := range recv {
				if len(recv[j]) != 2 || recv[j][0] != int64(j) || recv[j][1] != int64(r.ID) {
					t.Errorf("procs=%d rank %d: alltoallv[%d] = %v", procs, r.ID, j, recv[j])
				}
			}
			// AllreduceOr over per-rank bits: all n bits set afterwards.
			words := []uint64{1 << uint(r.ID)}
			Must0(AllreduceOr(r.World, words))
			if want := uint64(1<<uint(n)) - 1; words[0] != want {
				t.Errorf("procs=%d rank %d: or %#x, want %#x", procs, r.ID, words[0], want)
			}
			// Bcast from the last rank (hosted by the last process).
			v := Must(Bcast(r.World, r.ID*10, n-1))
			if want := (n - 1) * 10; v != want {
				t.Errorf("procs=%d rank %d: bcast %d, want %d", procs, r.ID, v, want)
			}
			// Row communicator (split across processes when procs=2: row 0 is
			// ranks 0-2 = procs 0,0,1).
			rsum := Must(AllreduceSumInt64(r.RowC, int64(r.ID)))
			var rwant int64
			for c := 0; c < mesh.Cols; c++ {
				rwant += int64(mesh.RankAt(r.Row, c))
			}
			if rsum != rwant {
				t.Errorf("procs=%d rank %d: row sum %d, want %d", procs, r.ID, rsum, rwant)
			}
			// Column communicator (always straddles processes here).
			csum := Must(AllreduceSumInt64(r.ColC, int64(r.ID)))
			var cwant int64
			for row := 0; row < mesh.Rows; row++ {
				cwant += int64(mesh.RankAt(row, r.Col))
			}
			if csum != cwant {
				t.Errorf("procs=%d rank %d: col sum %d, want %d", procs, r.ID, csum, cwant)
			}
			// Sparse exchange: rank j addresses one update to every member.
			ups := make([]SparseUpdate, n)
			for j := range ups {
				ups[j] = SparseUpdate{Dst: int32(j), Tag: 1, Off: int64(r.ID), Val: int64(r.ID * 100)}
			}
			got := Must(AllgatherSparse(r.World, ups))
			for j := range got {
				if len(got[j]) != 1 || got[j][0].Val != int64(j*100) || got[j][0].Off != int64(j) {
					t.Errorf("procs=%d rank %d: sparse[%d] = %v", procs, r.ID, j, got[j])
				}
			}
			// Control plane.
			if csum := ControlSumInt64(r.World, 2); csum != int64(2*n) {
				t.Errorf("procs=%d rank %d: control sum %d, want %d", procs, r.ID, csum, 2*n)
			}
			cw := ControlOrWords(r.World, []uint64{1 << uint(r.ID), 0})
			if want := uint64(1<<uint(n)) - 1; cw[0] != want {
				t.Errorf("procs=%d rank %d: control or %#x, want %#x", procs, r.ID, cw[0], want)
			}
			Must0(r.World.Barrier())
		})
	}
}

// TestDistFaultParity injects each fault kind on a world split across two
// processes: every rank on every process must observe the same typed error
// naming the faulty rank, exactly as on the in-process backend (the envelope
// carries the fault, so the chaos surface is backend-independent).
func TestDistFaultParity(t *testing.T) {
	faults := []struct {
		name string
		act  FaultAction
		want error
	}{
		{"fail", FaultAction{Fail: true}, ErrCollectiveFailed},
		{"stall", FaultAction{Withhold: true}, ErrRankStalled},
		{"corrupt", FaultAction{Corrupt: true}, ErrPayloadCorrupted},
		{"delay", FaultAction{Delay: 2 * time.Millisecond}, ErrDeadlineExceeded},
		{"kill", FaultAction{Kill: true}, ErrRankDead},
	}
	mesh := topology.Mesh{Rows: 2, Cols: 2}
	for _, f := range faults {
		for _, op := range collectiveOps {
			victim := mesh.Size() - 1 // hosted by process 1
			if op.name == "bcast" {
				victim = 0 // only the root contributes to a bcast
			}
			if op.name == "barrier" && (f.name == "corrupt" || f.name == "delay") {
				continue // no payload to corrupt; no deadline on pure sync
			}
			f, op := f, op
			t.Run(f.name+"/"+op.name, func(t *testing.T) {
				ws, _ := distWorlds(t, 2, mesh, func(proc int) WorldOptions {
					return WorldOptions{
						Transport: scripted(func(c Call) FaultAction {
							if c.Rank == victim && c.Seq == 1 {
								return f.act
							}
							return FaultAction{}
						}),
						Deadline: time.Millisecond,
					}
				})
				runSPMD(ws, func(r *Rank) {
					err := op.run(r)
					if err == nil {
						t.Errorf("rank %d: nil error under %s", r.ID, f.name)
						return
					}
					if !errors.Is(err, f.want) {
						t.Errorf("rank %d: got %v, want %v", r.ID, err, f.want)
					}
					var ce *CollectiveError
					if errors.As(err, &ce) && ce.Rank != victim {
						t.Errorf("rank %d: error names rank %d, want %d", r.ID, ce.Rank, victim)
					}
				})
			})
		}
	}
}

// TestDistDeadProcessSurfacesErrRankDead kills a whole process (silent
// endpoint teardown, the SIGKILL analog) while the survivor is mid-schedule:
// the survivor's next collective must surface ErrRankDead for the dead
// process's ranks — synthesized by the failure detector, since a dead process
// has no zombie goroutines to post envelopes — and the control-plane vote
// must carry their death bits.
func TestDistDeadProcessSurfacesErrRankDead(t *testing.T) {
	mesh := topology.Mesh{Rows: 1, Cols: 4}
	ws, gs := distWorlds(t, 2, mesh, func(proc int) WorldOptions {
		return WorldOptions{Transport: scripted(func(Call) FaultAction { return FaultAction{} })}
	})
	var wg sync.WaitGroup
	wg.Add(2)
	// Process 1 completes one collective, then dies without a word.
	go func() {
		defer wg.Done()
		ws[1].Run(func(r *Rank) {
			Must0(r.World.Barrier())
		})
		gs[1].Abort()
	}()
	// Process 0 keeps running barriers; one of them has no live counterpart
	// on process 1. Whether even the FIRST one fails is a race the protocol
	// embraces: an abort may drop frames still queued on the dying process
	// (exactly like a SIGKILL), so the survivor only knows that SOME barrier
	// soon surfaces ErrRankDead.
	go func() {
		defer wg.Done()
		ws[0].Run(func(r *Rank) {
			var err error
			for i := 0; i < 4 && err == nil; i++ {
				err = r.World.Barrier()
			}
			if err == nil {
				t.Errorf("rank %d: nil error after peer process died", r.ID)
				return
			}
			if !errors.Is(err, ErrRankDead) {
				t.Errorf("rank %d: got %v, want ErrRankDead", r.ID, err)
			}
			var ce *CollectiveError
			if errors.As(err, &ce) && ws[0].ProcOf(ce.Rank) != 1 {
				t.Errorf("rank %d: error names rank %d, hosted by process %d, want 1",
					r.ID, ce.Rank, ws[0].ProcOf(ce.Rank))
			}
			// The membership vote synthesizes the dead ranks' own bits.
			words := ControlOrWords(r.World, make([]uint64, 2))
			for wr := 0; wr < ws[0].Size(); wr++ {
				wantBit := ws[0].ProcOf(wr) == 1
				gotBit := words[1+wr/64]&(1<<uint(wr%64)) != 0
				if gotBit != wantBit {
					t.Errorf("rank %d: vote bit for rank %d = %v, want %v", r.ID, wr, gotBit, wantBit)
				}
			}
		})
	}()
	wg.Wait()
}

// TestDistFence checks the process-level control barrier: all processes
// arrive, and once a process is declared dead the fence stops waiting for it.
func TestDistFence(t *testing.T) {
	mesh := topology.Mesh{Rows: 1, Cols: 3}
	ws, gs := distWorlds(t, 3, mesh, nil)
	var wg sync.WaitGroup
	for i := range ws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ws[i].Fence()
			ws[i].Fence()
		}(i)
	}
	wg.Wait()
	// Kill process 2; the survivors' next fence must still return.
	gs[2].Abort()
	done := make(chan struct{})
	go func() {
		var wg2 sync.WaitGroup
		for _, i := range []int{0, 1} {
			wg2.Add(1)
			go func(i int) { defer wg2.Done(); ws[i].Fence() }(i)
		}
		wg2.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("fence did not release after a process died")
	}
}

// TestDistOutcomeRevokesEpoch reproduces the divergent-verdict wedge: failure
// detection is asynchronous, so after a real kill one survivor can leave the
// epoch with a dead verdict while another — having received the victim's last
// in-flight frames — sails past the same vote clean and blocks on the
// leaver's next contribution, which will never come. The leaver's outcome
// announcement must revoke the epoch on the stragglers: their collective
// surfaces ErrRankDead for the departed process's rank instead of hanging,
// and the outcome exchange then unions the verdicts on every process.
func TestDistOutcomeRevokesEpoch(t *testing.T) {
	mesh := topology.Mesh{Rows: 1, Cols: 3}
	ws, _ := distWorlds(t, 3, mesh, nil)
	var mu sync.Mutex
	unions := make(map[int][]int)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		// Process 0's rank abandons the schedule (its epoch ended early with
		// verdict dead=[0]); the process announces the outcome and waits.
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws[0].Run(func(r *Rank) {})
			time.Sleep(50 * time.Millisecond) // let the stragglers block first
			dead, code := ws[0].ExchangeOutcome([]int{0}, 0)
			mu.Lock()
			unions[0] = dead
			mu.Unlock()
			if code != 0 {
				t.Errorf("proc 0: outcome code %d, want 0", code)
			}
		}()
		// Processes 1 and 2 are still mid-epoch: their allreduce needs rank
		// 0's contribution. Pre-revoke this waited forever — process 0 is
		// alive and heartbeating, so no failure-detector verdict ever fires.
		for _, i := range []int{1, 2} {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				var observed []int
				ws[i].Run(func(r *Rank) {
					err := AllreduceOr(r.World, []uint64{1 << uint(r.ID)})
					if !errors.Is(err, ErrRankDead) {
						t.Errorf("proc %d: got %v, want ErrRankDead", i, err)
						return
					}
					var ce *CollectiveError
					if errors.As(err, &ce) && ce.Rank != 0 {
						t.Errorf("proc %d: error names rank %d, want 0", i, ce.Rank)
					}
					observed = []int{0}
				})
				dead, _ := ws[i].ExchangeOutcome(observed, 0)
				mu.Lock()
				unions[i] = dead
				mu.Unlock()
			}(i)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("epoch never revoked: stragglers still blocked on the departed process")
	}
	for i := 0; i < 3; i++ {
		if d := unions[i]; len(d) != 1 || d[0] != 0 {
			t.Fatalf("proc %d: outcome union %v, want [0]", i, d)
		}
	}
}

// TestDistNextEpochRehomesDeadSlots kills a rank via fault injection on a
// two-process world, has both processes vote and rebuild, and checks the
// successor world re-homes the dead slot's goroutine onto its host's process
// and completes collectives with the adopted slot participating.
func TestDistNextEpochRehomesDeadSlots(t *testing.T) {
	mesh := topology.Mesh{Rows: 2, Cols: 2}
	victim := 3 // hosted by process 1; its row-mate 2 is also on process 1
	ws, _ := distWorlds(t, 2, mesh, func(proc int) WorldOptions {
		var once sync.Once
		return WorldOptions{Transport: scripted(func(c Call) FaultAction {
			var act FaultAction
			if c.Rank == victim {
				once.Do(func() { act.Kill = true })
			}
			return act
		})}
	})
	next := make([]*World, len(ws))
	var wg sync.WaitGroup
	for i := range ws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := ws[i]
			w.Run(func(r *Rank) {
				if err := r.World.Barrier(); !errors.Is(err, ErrRankDead) {
					t.Errorf("proc %d rank %d: got %v, want ErrRankDead", i, r.ID, err)
				}
			})
			nw, err := w.NextEpoch([]int{victim}, RebuildShrink)
			if err != nil {
				t.Errorf("proc %d: NextEpoch: %v", i, err)
				return
			}
			next[i] = nw
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("epoch-0 run failed")
	}
	host := mesh.RankAt(mesh.RowOf(victim), (mesh.ColOf(victim)+1)%mesh.Cols)
	for i, nw := range next {
		if nw.Epoch() != 1 {
			t.Fatalf("proc %d: epoch %d, want 1", i, nw.Epoch())
		}
		if got, want := nw.ProcOf(victim), ws[i].ProcOf(host); got != want {
			t.Fatalf("proc %d: dead slot on process %d, want host's process %d", i, got, want)
		}
	}
	// The rebuilt world completes collectives with all four slots live; the
	// adopted slot contributes from its new home.
	runSPMD(next, func(r *Rank) {
		sum, err := AllreduceSumInt64(r.World, int64(r.ID)+1)
		if err != nil {
			t.Errorf("epoch-1 rank %d: %v", r.ID, err)
			return
		}
		if want := int64(1 + 2 + 3 + 4); sum != want {
			t.Errorf("epoch-1 rank %d: sum %d, want %d", r.ID, sum, want)
		}
	})
}

// TestDistRunsBackToBack checks run-generation isolation: consecutive Run
// calls on the same worlds reuse communicator sequence numbers, and the
// generation stamp keeps their frames from colliding.
func TestDistRunsBackToBack(t *testing.T) {
	mesh := topology.Mesh{Rows: 1, Cols: 4}
	ws, _ := distWorlds(t, 2, mesh, nil)
	for round := 0; round < 3; round++ {
		want := int64(mesh.Size()*(mesh.Size()-1)/2) + int64(round*mesh.Size())
		runSPMD(ws, func(r *Rank) {
			sum := Must(AllreduceSumInt64(r.World, int64(r.ID+round)))
			if sum != want {
				t.Errorf("round %d rank %d: sum %d, want %d", round, r.ID, sum, want)
			}
		})
	}
}
