package comm

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/wire"
)

// This file is the socket backend of the rendezvous protocol: the same
// collectives, slots and envelope verification as the in-process backend,
// with the rank set split across OS processes. Each process runs its local
// ranks as goroutines exactly as before (hybrid mode: a process stands in
// for a supernode); contributions from remote ranks arrive as wire frames,
// are routed by (epoch, generation, communicator, collective-sequence) into
// per-collective arrival buffers, and are copied into the shared slots by
// the communicator's local leader before verification. Detection stays
// symmetric the same way it does in process: every member verifies the same
// envelope set, so every member returns the same typed error.
//
// Failure semantics across processes:
//   - Injected faults (delay/stall/corrupt/fail/kill) travel inside the
//     envelope, so chaos plans behave identically on both backends.
//   - A dead or hung peer PROCESS is detected by the wire layer's heartbeat
//     failure detector; its ranks' contributions are synthesized as dead
//     envelopes, surfacing the existing ErrRankDead. The verdict is latched:
//     real fail-stop means every surviving process reaches the same verdict
//     independently, which is what keeps the membership vote consistent
//     without a coordinator. (Asymmetric partitions that suspect a live
//     process are out of scope, as in the paper's MPI runtime.)
//   - Transient connection faults (drops, short hangs) are absorbed by the
//     wire layer's reconnect + replay and never surface here at all.

// fenceComm is the reserved communicator id for process-level fences.
const fenceComm = ^uint32(0)

// outcomeComm is the reserved communicator id for the per-epoch outcome
// exchange (ExchangeOutcome): fence-shaped frames that carry a payload.
const outcomeComm = ^uint32(0) - 1

// Frame-type aliases so the collectives don't import wire directly.
const (
	wireData    = wire.TypeData
	wireControl = wire.TypeControl
)

// DistConfig makes a World span the processes of a Group. ProcOf maps each
// world rank to its hosting process; ranks with ProcOf[r] == Group.Proc()
// run as goroutines in this process, the rest are remote.
type DistConfig struct {
	Group  *Group
	ProcOf []int
}

// ContiguousProcOf builds the hybrid-mode rank→process map: ranksPerProc
// consecutive ranks per process (the paper's nodes-per-supernode split).
func ContiguousProcOf(n, ranksPerProc int) []int {
	m := make([]int, n)
	for r := range m {
		m[r] = r / ranksPerProc
	}
	return m
}

// arrKey addresses one collective's arrival buffer.
type arrKey struct {
	epoch, gen, comm uint32
	seq              uint64
}

// wmKey addresses a completion watermark (per communicator per run).
type wmKey struct {
	epoch, gen, comm uint32
}

// runKey addresses one run generation of one world epoch — the scope of an
// outcome revoke (see Group.departed).
type runKey struct {
	epoch, gen uint32
}

// arrival buffers remote contributions for one collective until the local
// leader consumes them. update is closed and replaced on every change so
// waiters can block without polling.
type arrival struct {
	ctrs   map[int]*contribution // sender world rank (process id for fences)
	update chan struct{}
}

// Group is one process's durable membership in a multi-process world
// sequence: it owns the wire endpoint and the frame router, and survives
// world epochs (worlds come and go across rebuilds; the sockets persist).
type Group struct {
	ep *wire.Endpoint

	mu         sync.Mutex
	arrivals   map[arrKey]*arrival
	marks      map[wmKey]uint64
	deadProcs  map[int]bool
	// departed records, per (epoch, run generation), the processes whose
	// epoch-outcome announcement has arrived. An outcome frame doubles as an
	// epoch revoke: its sender has left that epoch's collective schedule for
	// good, and because sessions deliver in order, any contribution of its
	// that was not delivered before the announcement never will be. Failure
	// detection is asynchronous, so two survivors of a process kill can
	// disagree on which collective first surfaces the death — one leaves the
	// epoch while the other, having received the victim's last in-flight
	// frames, sails past the vote and blocks on the leaver's next
	// contribution. The revoke converts that wait into dead-envelope
	// synthesis (fill), re-joining the verdicts at the outcome exchange.
	departed   map[runKey]map[int]bool
	gen        uint32
	fenceSeq   uint64
	outcomeSeq uint64
}

// NewGroup binds a wire endpoint for this process and starts routing frames.
// The caller fills cfg's identity, addresses and timings; the Group installs
// its own frame and peer-death handlers.
func NewGroup(cfg wire.Config) (*Group, error) {
	g := &Group{
		arrivals:  make(map[arrKey]*arrival),
		marks:     make(map[wmKey]uint64),
		deadProcs: make(map[int]bool),
		departed:  make(map[runKey]map[int]bool),
	}
	cfg.OnFrame = g.deliver
	cfg.OnPeerDead = g.peerDead
	ep, err := wire.Listen(cfg)
	if err != nil {
		return nil, err
	}
	g.ep = ep
	return g, nil
}

// Proc returns this process's index in the group.
func (g *Group) Proc() int { return g.ep.Proc() }

// Procs returns the process-group size.
func (g *Group) Procs() int { return g.ep.Procs() }

// WireStats snapshots the endpoint's transport counters.
func (g *Group) WireStats() wire.Stats { return g.ep.Stats() }

// DeadProcs returns the processes the failure detector has declared dead.
func (g *Group) DeadProcs() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]int, 0, len(g.deadProcs))
	for p := range g.deadProcs {
		out = append(out, p)
	}
	return out
}

// Close shuts the endpoint down gracefully (peers see Bye, not a failure).
func (g *Group) Close() error { return g.ep.Close() }

// Abort tears the endpoint down silently — peers' failure detectors will
// declare this process dead, exactly as after a SIGKILL.
func (g *Group) Abort() error { return g.ep.Abort() }

// beginRun opens a new run generation: advance the counter, prune state from
// completed epochs, and let the endpoint drop stale replay frames. Every
// process calls Run in the same global order (the engine is SPMD), so the
// generation counters stay aligned without any exchange.
func (g *Group) beginRun(epoch int) uint32 {
	e := uint32(epoch)
	g.mu.Lock()
	g.gen++
	gen := g.gen
	for k := range g.arrivals {
		if k.epoch < e {
			delete(g.arrivals, k)
		}
	}
	for k := range g.marks {
		if k.epoch < e {
			delete(g.marks, k)
		}
	}
	for k := range g.departed {
		if k.epoch < e {
			delete(g.departed, k)
		}
	}
	g.mu.Unlock()
	g.ep.SetEpoch(e)
	return gen
}

// arrivalLocked returns (creating if needed) the buffer for key. Caller
// holds g.mu.
func (g *Group) arrivalLocked(key arrKey) *arrival {
	arr := g.arrivals[key]
	if arr == nil {
		arr = &arrival{ctrs: make(map[int]*contribution), update: make(chan struct{})}
		g.arrivals[key] = arr
	}
	return arr
}

// bumpLocked wakes everyone blocked on arr. Caller holds g.mu.
func bumpLocked(arr *arrival) {
	close(arr.update)
	arr.update = make(chan struct{})
}

// deliver is the wire endpoint's frame callback (reader goroutines).
func (g *Group) deliver(peer int, f *wire.Frame) {
	switch f.Type {
	case wire.TypeData, wire.TypeControl:
		ctr, err := decodeContribution(f)
		if err != nil {
			return // CRC-clean but malformed envelope: drop, sender is buggy
		}
		key := arrKey{f.Epoch, f.Gen, f.Comm, f.Seq}
		g.mu.Lock()
		if f.Seq <= g.marks[wmKey{f.Epoch, f.Gen, f.Comm}] {
			g.mu.Unlock() // completed collective: stale retransmit
			return
		}
		arr := g.arrivalLocked(key)
		arr.ctrs[int(f.Rank)] = ctr
		bumpLocked(arr)
		g.mu.Unlock()
	case wire.TypeFence:
		// Fence-shaped frames key by their reserved communicator id so the
		// plain fence and the payload-carrying outcome exchange don't alias.
		key := arrKey{f.Epoch, 0, f.Comm, f.Seq}
		g.mu.Lock()
		arr := g.arrivalLocked(key)
		ctr := &contribution{}
		if len(f.Payload) > 0 {
			ctr.payload = remoteParts{parts: [][]byte{f.Payload}}
		}
		arr.ctrs[peer] = ctr
		if f.Comm == outcomeComm {
			// The sender has left this (epoch, run): latch the revoke and
			// wake every waiter, not just this key's — a fill blocked on a
			// contribution the sender will never make must re-check.
			rk := runKey{f.Epoch, f.Gen}
			dep := g.departed[rk]
			if dep == nil {
				dep = make(map[int]bool)
				g.departed[rk] = dep
			}
			dep[peer] = true
			for _, a := range g.arrivals {
				bumpLocked(a)
			}
		} else {
			bumpLocked(arr)
		}
		g.mu.Unlock()
	}
}

// peerDead is the wire endpoint's failure-detector callback: latch the
// process dead and wake every waiter so they synthesize dead envelopes.
func (g *Group) peerDead(peer int) {
	g.mu.Lock()
	g.deadProcs[peer] = true
	for _, arr := range g.arrivals {
		bumpLocked(arr)
	}
	g.mu.Unlock()
}

// complete marks a collective finished: stale retransmits below the
// watermark are dropped on arrival and the buffer is freed.
func (g *Group) complete(key arrKey) {
	g.mu.Lock()
	wk := wmKey{key.epoch, key.gen, key.comm}
	if key.seq > g.marks[wk] {
		g.marks[wk] = key.seq
	}
	delete(g.arrivals, key)
	g.mu.Unlock()
}

// distComm is a communicator's cross-process geometry: which members are
// local goroutines, which live on remote processes, and who leads the local
// gather.
type distComm struct {
	w           *World
	id          uint32
	local       []int // member indices hosted by this process
	leader      int   // lowest local member index
	remote      []int // member indices hosted remotely
	remoteProcs []int // distinct processes hosting remote members
	gbar        *barrier
}

// fill copies every needed remote contribution into the shared slots,
// blocking until each has either arrived or its hosting process has been
// declared dead (in which case a dead envelope is synthesized — the typed
// ErrRankDead every member then agrees on). members narrows the wait to a
// contributing subset (Bcast); nil means all. Only the local leader calls
// this, between the opening barrier and the gather barrier.
func (sh *shared) fill(seq uint64, members []int) {
	d := sh.dist
	g := d.w.dist.Group
	var need []int
	for _, m := range d.remote {
		if members != nil && !containsMember(members, m) {
			continue
		}
		need = append(need, m)
	}
	if len(need) == 0 {
		return
	}
	key := arrKey{uint32(d.w.epoch), d.w.gen, d.id, seq}
	rk := runKey{uint32(d.w.epoch), d.w.gen}
	filled := make([]bool, len(need))
	done := 0
	for {
		g.mu.Lock()
		arr := g.arrivalLocked(key)
		dep := g.departed[rk]
		for i, m := range need {
			if filled[i] {
				continue
			}
			wr := sh.members[m]
			if ctr := arr.ctrs[wr]; ctr != nil {
				sh.slots[m] = *ctr
				filled[i] = true
				done++
			} else if p := d.w.procOf[wr]; g.deadProcs[p] || dep[p] {
				// Hosting process dead, or it announced this epoch's outcome
				// and so will contribute nothing more (delivery is in-order:
				// anything it sent first has already arrived). Either way
				// this contribution cannot come — synthesize the dead
				// envelope so the collective fails typed instead of hanging.
				sh.slots[m] = contribution{dead: true}
				filled[i] = true
				done++
			}
		}
		ch := arr.update
		g.mu.Unlock()
		if done == len(need) {
			return
		}
		<-ch
	}
}

func containsMember(members []int, m int) bool {
	for _, x := range members {
		if x == m {
			return true
		}
	}
	return false
}

// nextSeq advances this member's collective counter on the communicator.
// Members execute an identical collective schedule (the SPMD contract the
// in-process barriers already rely on), so the counters agree across
// processes and (comm, seq) uniquely addresses a collective within a run.
func (c *Comm) nextSeq() uint64 {
	c.seq++
	return c.seq
}

// rendezvous is the cross-backend replacement for the opening barrier: local
// members rendezvous, then (socket backend only) the leader gathers remote
// contributions into the slots and everyone syncs again before verifying.
func (c *Comm) rendezvous(seq uint64, members []int) {
	c.sh.bar.wait()
	if d := c.sh.dist; d != nil {
		if c.me == d.leader {
			c.sh.fill(seq, members)
		}
		d.gbar.wait()
	}
}

// complete is the cross-backend replacement for the closing barrier: once
// every local member has read the payloads, the leader retires the
// collective's arrival buffer.
func (c *Comm) complete(seq uint64) {
	c.sh.bar.wait()
	if d := c.sh.dist; d != nil && c.me == d.leader {
		d.w.dist.Group.complete(arrKey{uint32(d.w.epoch), d.w.gen, d.id, seq})
	}
}

// distSend ships this member's contribution to every remote process with
// members in the communicator. A send to a dead peer is dropped — its ranks
// will be synthesized dead on every survivor anyway. Payload bytes are
// copied at enqueue, so callers may reuse their buffers immediately.
func (c *Comm) distSend(seq uint64, typ uint8, ctr *contribution, parts [][]byte) {
	d := c.sh.dist
	if d == nil || len(d.remoteProcs) == 0 {
		return
	}
	payload := encodeContribution(ctr, parts)
	var flags uint8
	if ctr.withheld {
		flags |= wire.FlagWithheld
	}
	if ctr.failed {
		flags |= wire.FlagFailed
	}
	if ctr.dead {
		flags |= wire.FlagDead
	}
	for _, p := range d.remoteProcs {
		f := &wire.Frame{
			Type:    typ,
			Flags:   flags,
			Epoch:   uint32(d.w.epoch),
			Gen:     d.w.gen,
			Comm:    d.id,
			Seq:     seq,
			Rank:    int32(c.sh.members[c.me]),
			Payload: payload,
		}
		_ = d.w.dist.Group.ep.Send(p, f)
	}
}

// Envelope encoding carried in data/control frame payloads: delay (ns),
// declared checksum, part count, part lengths, raw part bytes. Parts are the
// native-endian byte views of the contribution's buffers — the same bytes
// the in-process checksum folds over, so corruption injected before the
// send is detected identically on local and remote members.
func encodeContribution(ctr *contribution, parts [][]byte) []byte {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	b := make([]byte, 0, 20+4*len(parts)+total)
	b = binary.LittleEndian.AppendUint64(b, uint64(ctr.delay))
	b = binary.LittleEndian.AppendUint64(b, ctr.declared)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(parts)))
	for _, p := range parts {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
	}
	for _, p := range parts {
		b = append(b, p...)
	}
	return b
}

// remoteParts is the payload form of a remote contribution: the sender's
// buffers as raw bytes. Collectives decode through the slot accessors.
type remoteParts struct {
	parts [][]byte
}

func decodeContribution(f *wire.Frame) (*contribution, error) {
	b := f.Payload
	if len(b) < 20 {
		return nil, fmt.Errorf("comm: contribution envelope %d bytes, want >= 20", len(b))
	}
	ctr := &contribution{
		delay:    time.Duration(binary.LittleEndian.Uint64(b[0:8])),
		declared: binary.LittleEndian.Uint64(b[8:16]),
		withheld: f.Flags&wire.FlagWithheld != 0,
		failed:   f.Flags&wire.FlagFailed != 0,
		dead:     f.Flags&wire.FlagDead != 0,
	}
	nparts := int(binary.LittleEndian.Uint32(b[16:20]))
	if nparts == 0 {
		return ctr, nil
	}
	off := 20 + 4*nparts
	if off > len(b) {
		return nil, fmt.Errorf("comm: contribution envelope truncated part table")
	}
	parts := make([][]byte, nparts)
	pos := off
	for i := 0; i < nparts; i++ {
		plen := int(binary.LittleEndian.Uint32(b[20+4*i : 24+4*i]))
		if pos+plen > len(b) {
			return nil, fmt.Errorf("comm: contribution envelope truncated part %d", i)
		}
		parts[i] = b[pos : pos+plen]
		pos += plen
	}
	if pos != len(b) {
		return nil, fmt.Errorf("comm: contribution envelope has %d trailing bytes", len(b)-pos)
	}
	ctr.payload = remoteParts{parts}
	ctr.resum = func() uint64 {
		h := uint64(fnvOffset)
		for _, p := range parts {
			h = sumSlice(h, p)
		}
		return h
	}
	return ctr, nil
}

// Fence is a process-level control barrier among live processes: it returns
// once every process has either announced this fence or been declared dead.
// The engine fences around checkpoint-directory transitions (choosing a
// resume point, writing the shared graph tier) so no process reads state
// another is still writing. No-op on the in-process backend, where World.Run
// returning is already a full barrier.
func (w *World) Fence() {
	if w.dist == nil {
		return
	}
	g := w.dist.Group
	g.mu.Lock()
	g.fenceSeq++
	seq := g.fenceSeq
	g.mu.Unlock()
	me := g.Proc()
	for p := 0; p < g.Procs(); p++ {
		if p == me {
			continue
		}
		_ = g.ep.Send(p, &wire.Frame{
			Type: wire.TypeFence, Epoch: uint32(w.epoch), Comm: fenceComm,
			Seq: seq, Rank: int32(me),
		})
	}
	key := arrKey{uint32(w.epoch), 0, fenceComm, seq}
	arrived := make([]bool, g.Procs())
	arrived[me] = true
	n := 1
	for {
		g.mu.Lock()
		arr := g.arrivalLocked(key)
		for p := 0; p < g.Procs(); p++ {
			if arrived[p] {
				continue
			}
			if arr.ctrs[p] != nil || g.deadProcs[p] {
				arrived[p] = true
				n++
			}
		}
		ch := arr.update
		if n == g.Procs() {
			delete(g.arrivals, key)
			g.mu.Unlock()
			return
		}
		g.mu.Unlock()
		<-ch
	}
}

// ExchangeOutcome is a process-level allgather of one epoch's verdict: every
// process (rank-hosting or spare) announces the dead ranks its vote surfaced
// and a small outcome code, and receives the union of dead ranks and the
// maximum code across live processes. It exists for the processes that host
// no running ranks — spares waiting for adoption, and processes whose local
// ranks all died — which never see the in-band membership vote yet must
// follow the same epoch transitions in lockstep. Dead processes contribute
// nothing; their ranks are already in the survivors' lists. No-op on the
// in-process backend.
//
// The announcement is also this (epoch, run)'s revoke on every receiver: a
// peer still blocked in one of the epoch's collectives stops waiting for this
// process's contributions and synthesizes dead envelopes instead (see
// Group.departed) — without it, survivors whose failure detectors fired on
// different collectives deadlock, one side parked here and the other waiting
// for a contribution the parked side will never send.
func (w *World) ExchangeOutcome(dead []int, code uint8) ([]int, uint8) {
	if w.dist == nil {
		return dead, code
	}
	g := w.dist.Group
	g.mu.Lock()
	g.outcomeSeq++
	seq := g.outcomeSeq
	g.mu.Unlock()
	payload := encodeOutcome(dead, code)
	me := g.Proc()
	for p := 0; p < g.Procs(); p++ {
		if p == me {
			continue
		}
		// Gen scopes the revoke this frame doubles as: receivers still inside
		// this (epoch, run)'s collectives stop waiting for our contributions.
		_ = g.ep.Send(p, &wire.Frame{
			Type: wire.TypeFence, Epoch: uint32(w.epoch), Gen: w.gen,
			Comm: outcomeComm, Seq: seq, Rank: int32(me), Payload: payload,
		})
	}
	deadSet := make(map[int]bool, len(dead))
	for _, d := range dead {
		deadSet[d] = true
	}
	maxCode := code
	key := arrKey{uint32(w.epoch), 0, outcomeComm, seq}
	arrived := make([]bool, g.Procs())
	arrived[me] = true
	n := 1
	for {
		g.mu.Lock()
		arr := g.arrivalLocked(key)
		for p := 0; p < g.Procs(); p++ {
			if arrived[p] {
				continue
			}
			if ctr := arr.ctrs[p]; ctr != nil {
				if rp, ok := ctr.payload.(remoteParts); ok && len(rp.parts) == 1 {
					theirDead, theirCode := decodeOutcome(rp.parts[0])
					for _, d := range theirDead {
						deadSet[d] = true
					}
					if theirCode > maxCode {
						maxCode = theirCode
					}
				}
				arrived[p] = true
				n++
			} else if g.deadProcs[p] {
				arrived[p] = true
				n++
			}
		}
		ch := arr.update
		if n == g.Procs() {
			delete(g.arrivals, key)
			g.mu.Unlock()
			merged := make([]int, 0, len(deadSet))
			for d := range deadSet {
				merged = append(merged, d)
			}
			sortInts(merged)
			return merged, maxCode
		}
		g.mu.Unlock()
		<-ch
	}
}

// encodeOutcome packs an outcome payload: code, dead-rank count, ranks.
func encodeOutcome(dead []int, code uint8) []byte {
	b := []byte{code}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(dead)))
	for _, d := range dead {
		b = binary.LittleEndian.AppendUint32(b, uint32(d))
	}
	return b
}

func decodeOutcome(b []byte) (dead []int, code uint8) {
	if len(b) < 5 {
		return nil, 0
	}
	code = b[0]
	n := int(binary.LittleEndian.Uint32(b[1:5]))
	if len(b) < 5+4*n {
		return nil, code
	}
	for i := 0; i < n; i++ {
		dead = append(dead, int(binary.LittleEndian.Uint32(b[5+4*i:9+4*i])))
	}
	return dead, code
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// markDeadRank sets rank r's bit in the membership vote's dead-rank mask
// (words[1+r/64], bit r%64 — the layout documented on ControlOrWords). Used
// when a dead process's control contribution is synthesized: the comm layer
// casts the vote its zombie goroutine would have cast.
func markDeadRank(words []uint64, r int) {
	w := 1 + r/64
	if w < len(words) {
		words[w] |= 1 << uint(r%64)
	}
}
