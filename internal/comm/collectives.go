package comm

import "unsafe"

// elemSize returns the in-memory size of T for traffic accounting.
func elemSize[T any]() int64 {
	var z T
	return int64(unsafe.Sizeof(z))
}

// sumSlice folds a slice's raw bytes into an FNV-1a checksum. The element
// types exchanged by the collectives are plain data (integers, floats, small
// structs), so the byte view is well defined; sender and receivers hash the
// same memory, which is all checksum agreement needs.
func sumSlice[T any](h uint64, s []T) uint64 {
	if len(s) == 0 {
		return h
	}
	es := int(unsafe.Sizeof(s[0]))
	if es == 0 {
		return h
	}
	b := unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*es)
	for _, x := range b {
		h = (h ^ uint64(x)) * 1099511628211
	}
	return h
}

const fnvOffset = 14695981039346656037

// corruptCopy returns a copy of s with one bit flipped in its first element,
// or ok=false when there is nothing to corrupt. The input is never modified:
// a retry resends the caller's clean buffer.
func corruptCopy[T any](s []T) ([]T, bool) {
	if len(s) == 0 || unsafe.Sizeof(s[0]) == 0 {
		return nil, false
	}
	cp := append([]T(nil), s...)
	b := unsafe.Slice((*byte)(unsafe.Pointer(&cp[0])), int(unsafe.Sizeof(cp[0])))
	b[0] ^= 1
	return cp, true
}

// contribute1 runs the transport protocol for a single-buffer payload: it
// consults the transport (sleeping any injected delay), checksums and
// possibly corrupts the posted copy, and posts the envelope. Must be followed
// by bar.wait + verify + payload read + bar.wait.
func contribute1[T any](c *Comm, kind Kind, send []T) {
	act := c.rank.intercept(kind, c.Size())
	ctr := contribution{delay: act.Delay, withheld: act.Withhold, failed: act.Fail, dead: act.Kill}
	if !ctr.failed && !ctr.withheld && !ctr.dead {
		post := send
		if c.faulty() {
			ctr.declared = sumSlice[T](fnvOffset, send)
			if act.Corrupt {
				if cp, ok := corruptCopy(send); ok {
					post = cp
					c.rank.Faults.Corruptions++
				}
			}
			p := post
			ctr.resum = func() uint64 { return sumSlice[T](fnvOffset, p) }
		}
		ctr.payload = post
	}
	c.sh.slots[c.me] = ctr
}

// contribute2 is contribute1 for per-destination buffer lists (alltoallv).
// Corruption flips a bit in a copy of the first non-empty destination buffer.
func contribute2[T any](c *Comm, kind Kind, send [][]T) {
	act := c.rank.intercept(kind, c.Size())
	ctr := contribution{delay: act.Delay, withheld: act.Withhold, failed: act.Fail, dead: act.Kill}
	if !ctr.failed && !ctr.withheld && !ctr.dead {
		post := send
		if c.faulty() {
			h := uint64(fnvOffset)
			for _, buf := range send {
				h = sumSlice[T](h, buf)
			}
			ctr.declared = h
			if act.Corrupt {
				for j, buf := range send {
					if cp, ok := corruptCopy(buf); ok {
						post = append([][]T(nil), send...)
						post[j] = cp
						c.rank.Faults.Corruptions++
						break
					}
				}
			}
			p := post
			ctr.resum = func() uint64 {
				h := uint64(fnvOffset)
				for _, buf := range p {
					h = sumSlice[T](h, buf)
				}
				return h
			}
		}
		ctr.payload = post
	}
	c.sh.slots[c.me] = ctr
}

// Alltoallv exchanges per-destination buffers: send[j] goes to member j.
// It returns recv where recv[j] is the buffer member j sent to the caller.
// As in MPI, the returned data is the caller's copy: it stays valid even if
// senders immediately reuse or mutate their buffers. The copy happens before
// the closing barrier, so no sender can race ahead and mutate a buffer a
// receiver is still reading. On a typed fault error the result is nil and no
// received data is exposed.
func Alltoallv[T any](c *Comm, send [][]T) ([][]T, error) {
	k := c.Size()
	if len(send) != k {
		panic("comm: Alltoallv needs one buffer per member")
	}
	tok := c.traceEnter()
	es := elemSize[T]()
	c.rank.Stats.Calls[KindAlltoallv]++
	for j, buf := range send {
		if j != c.me {
			c.account(KindAlltoallv, j, int64(len(buf))*es)
		}
	}
	contribute2(c, KindAlltoallv, send)
	c.sh.bar.wait()
	err := c.verify(KindAlltoallv, nil)
	var recv [][]T
	if err == nil {
		recv = make([][]T, k)
		for j := 0; j < k; j++ {
			posted := c.sh.slots[j].payload.([][]T)
			if len(posted[c.me]) > 0 {
				recv[j] = append([]T(nil), posted[c.me]...)
			}
		}
	}
	c.sh.bar.wait()
	c.traceExit("alltoallv", tok, err)
	return recv, err
}

// AlltoallvFlat is Alltoallv with the received buffers concatenated.
func AlltoallvFlat[T any](c *Comm, send [][]T) ([]T, error) {
	parts, err := Alltoallv(c, send)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Allgatherv gathers each member's buffer on every member; result[i] is a
// copy of member i's buffer. The copies happen before the closing barrier so
// a sender mutating its buffer right after the call cannot corrupt any
// receiver's view (MPI value semantics).
func Allgatherv[T any](c *Comm, send []T) ([][]T, error) {
	tok := c.traceEnter()
	k := c.Size()
	es := elemSize[T]()
	c.rank.Stats.Calls[KindAllgather]++
	for j := 0; j < k; j++ {
		if j != c.me {
			c.account(KindAllgather, j, int64(len(send))*es)
		}
	}
	contribute1(c, KindAllgather, send)
	c.sh.bar.wait()
	err := c.verify(KindAllgather, nil)
	var out [][]T
	if err == nil {
		out = make([][]T, k)
		for j := 0; j < k; j++ {
			posted := c.sh.slots[j].payload.([]T)
			if len(posted) > 0 {
				out[j] = append([]T(nil), posted...)
			}
		}
	}
	c.sh.bar.wait()
	c.traceExit("allgatherv", tok, err)
	return out, err
}

// ReduceScatterOr ORs all members' full-length word vectors and returns the
// caller's segment of the result. Segments are the standard block
// decomposition: member i owns words [i*len/k, (i+1)*len/k). All members must
// pass equal-length slices. Traffic accounting follows the pairwise-exchange
// algorithm: each member sends every other member that member's segment.
func ReduceScatterOr(c *Comm, words []uint64) ([]uint64, error) {
	tok := c.traceEnter()
	k := c.Size()
	c.rank.Stats.Calls[KindReduceScatter]++
	n := len(words)
	lo, hi := segBounds(n, k, c.me)
	for j := 0; j < k; j++ {
		if j != c.me {
			jlo, jhi := segBounds(n, k, j)
			c.account(KindReduceScatter, j, int64(jhi-jlo)*8)
		}
	}
	contribute1(c, KindReduceScatter, words)
	c.sh.bar.wait()
	err := c.verify(KindReduceScatter, nil)
	var seg []uint64
	if err == nil {
		seg = make([]uint64, hi-lo)
		for j := 0; j < k; j++ {
			other := c.sh.slots[j].payload.([]uint64)
			for i := range seg {
				seg[i] |= other[lo+i]
			}
		}
	}
	c.sh.bar.wait()
	c.traceExit("reduce_scatter_or", tok, err)
	return seg, err
}

// segBounds returns member i's block of an n-element vector split k ways.
func segBounds(n, k, i int) (int, int) {
	base := n / k
	rem := n % k
	lo := i*base + min(i, rem)
	size := base
	if i < rem {
		size++
	}
	return lo, lo + size
}

// AllgathervSegments reassembles a vector whose segment i lives on member i
// (the inverse layout of ReduceScatterOr) into the full-length dst on every
// member. On error dst is left untouched.
func AllgathervSegments(c *Comm, seg []uint64, dst []uint64) error {
	parts, err := Allgatherv(c, seg)
	if err != nil {
		return err
	}
	k := c.Size()
	for j := 0; j < k; j++ {
		lo, hi := segBounds(len(dst), k, j)
		if hi-lo != len(parts[j]) {
			panic("comm: segment length mismatch in AllgathervSegments")
		}
		copy(dst[lo:hi], parts[j])
	}
	return nil
}

// AllreduceOr ORs the members' word vectors in place on every member. It is
// implemented as reduce-scatter followed by allgather, which is both the
// standard large-vector algorithm and the decomposition the paper's Figure 11
// accounts separately. Both halves always run so the collective schedule
// stays identical on every member even when the first half fails; on error
// words is left untouched.
func AllreduceOr(c *Comm, words []uint64) error {
	seg, err := ReduceScatterOr(c, words)
	if err != nil {
		// Keep the schedule: the allgather half still rendezvouses, with an
		// empty segment, and its result is discarded.
		_, err2 := Allgatherv(c, []uint64(nil))
		_ = err2
		return err
	}
	return AllgathervSegments(c, seg, words)
}

// AllreduceMaxInt64 computes the element-wise maximum across members in
// place. Used by the delayed reduction of the delegated parent array, where
// valid parents (≥ 0) win over the -1 sentinel. On error vals is untouched,
// which makes retrying the (idempotent, monotone) reduction safe.
func AllreduceMaxInt64(c *Comm, vals []int64) error {
	tok := c.traceEnter()
	k := c.Size()
	c.rank.Stats.Calls[KindReduceScatter]++
	n := len(vals)
	for j := 0; j < k; j++ {
		if j != c.me {
			jlo, jhi := segBounds(n, k, j)
			c.account(KindReduceScatter, j, int64(jhi-jlo)*8)
		}
	}
	contribute1(c, KindReduceScatter, vals)
	c.sh.bar.wait()
	err := c.verify(KindReduceScatter, nil)
	lo, hi := segBounds(n, k, c.me)
	var seg []int64
	if err == nil {
		seg = make([]int64, hi-lo)
		copy(seg, vals[lo:hi])
		for j := 0; j < k; j++ {
			if j == c.me {
				continue
			}
			other := c.sh.slots[j].payload.([]int64)
			for i := range seg {
				if other[lo+i] > seg[i] {
					seg[i] = other[lo+i]
				}
			}
		}
	}
	c.sh.bar.wait()
	parts, err2 := Allgatherv(c, seg)
	if err == nil {
		err = err2
	}
	if err == nil {
		for j := 0; j < k; j++ {
			jlo, jhi := segBounds(n, k, j)
			copy(vals[jlo:jhi], parts[j][:jhi-jlo])
		}
	}
	c.traceExit("allreduce_max", tok, err)
	return err
}

// AllreduceSumInt64 sums scalar contributions across members and returns the
// total on every member.
func AllreduceSumInt64(c *Comm, v int64) (int64, error) {
	sums, err := AllreduceSumInt64s(c, []int64{v})
	if err != nil {
		return 0, err
	}
	return sums[0], nil
}

// AllreduceSumInt64s sums the members' equal-length int64 vectors element-wise
// and returns the totals on every member. Unlike AllreduceSumInt64Vec this is
// one rendezvous — every member posts its whole vector and sums all
// contributions — the right shape for control-sized vectors where a
// reduce-scatter + allgather pair would double the collective count. The
// engine's epilogue rides it to agree on the active-L count and the
// iteration's observed bytes in a single collective, keeping the epilogue's
// schedule position identical whether or not the byte feedback is consumed.
func AllreduceSumInt64s(c *Comm, vals []int64) ([]int64, error) {
	tok := c.traceEnter()
	c.rank.Stats.Calls[KindReduceScatter]++
	for j := 0; j < c.Size(); j++ {
		if j != c.me {
			c.account(KindReduceScatter, j, 8*int64(len(vals)))
		}
	}
	contribute1(c, KindReduceScatter, vals)
	c.sh.bar.wait()
	err := c.verify(KindReduceScatter, nil)
	var sums []int64
	if err == nil {
		sums = make([]int64, len(vals))
		for j := 0; j < c.Size(); j++ {
			other := c.sh.slots[j].payload.([]int64)
			for i := range sums {
				sums[i] += other[i]
			}
		}
	}
	c.sh.bar.wait()
	c.traceExit("allreduce_sum", tok, err)
	return sums, err
}

// ControlSumInt64 sums scalar contributions like AllreduceSumInt64 but rides
// the control plane: it is never intercepted by the fault transport and
// cannot fail. The resilient engine uses it to vote on whether any rank saw a
// collective error in an iteration — real systems run exactly this kind of
// agreement on a reliable out-of-band channel (and so it is also exempt from
// data-plane traffic accounting).
func ControlSumInt64(c *Comm, v int64) int64 {
	c.sh.slots[c.me] = contribution{payload: []int64{v}}
	c.sh.bar.wait()
	var sum int64
	for j := 0; j < c.Size(); j++ {
		sum += c.sh.slots[j].payload.([]int64)[0]
	}
	c.sh.bar.wait()
	return sum
}

// ControlOrWords ORs the members' fixed-length word vectors on the control
// plane: like ControlSumInt64 it is never intercepted by the fault transport
// and cannot fail — even a dead rank still posts its vector, which is exactly
// what the membership protocol needs (the zombie's goroutine doubles as its
// failure detector and contributes its own death bit). All members must pass
// equal-length vectors. The engine's per-iteration vote rides this: word 0
// carries the step-failure mask, the rest a dead-rank bitmask.
func ControlOrWords(c *Comm, words []uint64) []uint64 {
	c.sh.slots[c.me] = contribution{payload: append([]uint64(nil), words...)}
	c.sh.bar.wait()
	out := make([]uint64, len(words))
	for j := 0; j < c.Size(); j++ {
		other := c.sh.slots[j].payload.([]uint64)
		for i := range out {
			out[i] |= other[i]
		}
	}
	c.sh.bar.wait()
	return out
}

// Bcast distributes root's value to every member.
func Bcast[T any](c *Comm, v T, root int) (T, error) {
	tok := c.traceEnter()
	c.rank.Stats.Calls[KindAllgather]++
	if c.me == root {
		for j := 0; j < c.Size(); j++ {
			if j != root {
				c.account(KindAllgather, j, elemSize[T]())
			}
		}
		contribute1(c, KindAllgather, []T{v})
	} else {
		// Non-root members only receive; they are not intercepted (a stalled
		// receiver cannot lose anyone else's data).
	}
	c.sh.bar.wait()
	err := c.verify(KindAllgather, []int{root})
	var out T
	if err == nil {
		out = c.sh.slots[root].payload.([]T)[0]
	}
	c.sh.bar.wait()
	c.traceExit("bcast", tok, err)
	return out, err
}

// AllreduceSumFloat64 sums the members' float64 vectors element-wise in
// place on every member. Summation order is member order, so every member
// computes bit-identical results — the property the framework package relies
// on to keep replicated hub values consistent without re-broadcasting.
// On error vals is left untouched.
func AllreduceSumFloat64(c *Comm, vals []float64) error {
	tok := c.traceEnter()
	k := c.Size()
	c.rank.Stats.Calls[KindReduceScatter]++
	n := len(vals)
	for j := 0; j < k; j++ {
		if j != c.me {
			jlo, jhi := segBounds(n, k, j)
			c.account(KindReduceScatter, j, int64(jhi-jlo)*8)
		}
	}
	contribute1(c, KindReduceScatter, vals)
	c.sh.bar.wait()
	err := c.verify(KindReduceScatter, nil)
	lo, hi := segBounds(n, k, c.me)
	var seg []float64
	if err == nil {
		seg = make([]float64, hi-lo)
		for j := 0; j < k; j++ {
			other := c.sh.slots[j].payload.([]float64)
			for i := range seg {
				seg[i] += other[lo+i]
			}
		}
	}
	c.sh.bar.wait()
	parts, err2 := Allgatherv(c, seg)
	if err == nil {
		err = err2
	}
	if err == nil {
		for j := 0; j < k; j++ {
			jlo, jhi := segBounds(n, k, j)
			copy(vals[jlo:jhi], parts[j][:jhi-jlo])
		}
	}
	c.traceExit("allreduce_sum_f64", tok, err)
	return err
}

// AllreduceSumInt64Vec sums the members' int64 vectors element-wise in place
// on every member (reduce-scatter + allgather, like the other vector
// reductions). Used by distributed preprocessing to combine per-rank degree
// histograms. On error vals is left untouched.
func AllreduceSumInt64Vec(c *Comm, vals []int64) error {
	tok := c.traceEnter()
	k := c.Size()
	c.rank.Stats.Calls[KindReduceScatter]++
	n := len(vals)
	for j := 0; j < k; j++ {
		if j != c.me {
			jlo, jhi := segBounds(n, k, j)
			c.account(KindReduceScatter, j, int64(jhi-jlo)*8)
		}
	}
	contribute1(c, KindReduceScatter, vals)
	c.sh.bar.wait()
	err := c.verify(KindReduceScatter, nil)
	lo, hi := segBounds(n, k, c.me)
	var seg []int64
	if err == nil {
		seg = make([]int64, hi-lo)
		for j := 0; j < k; j++ {
			other := c.sh.slots[j].payload.([]int64)
			for i := range seg {
				seg[i] += other[lo+i]
			}
		}
	}
	c.sh.bar.wait()
	parts, err2 := Allgatherv(c, seg)
	if err == nil {
		err = err2
	}
	if err == nil {
		for j := 0; j < k; j++ {
			jlo, jhi := segBounds(n, k, j)
			copy(vals[jlo:jhi], parts[j][:jhi-jlo])
		}
	}
	c.traceExit("allreduce_sum_vec", tok, err)
	return err
}
