package comm

import "unsafe"

// elemSize returns the in-memory size of T for traffic accounting.
func elemSize[T any]() int64 {
	var z T
	return int64(unsafe.Sizeof(z))
}

// sumSlice folds a slice's raw bytes into an FNV-1a checksum. The element
// types exchanged by the collectives are plain data (integers, floats, small
// structs), so the byte view is well defined; sender and receivers hash the
// same memory, which is all checksum agreement needs. On the socket backend
// the wire ships exactly these bytes, so a receiver hashing the raw frame
// payload computes the same sum the sender declared.
func sumSlice[T any](h uint64, s []T) uint64 {
	if len(s) == 0 {
		return h
	}
	es := int(unsafe.Sizeof(s[0]))
	if es == 0 {
		return h
	}
	b := unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*es)
	for _, x := range b {
		h = (h ^ uint64(x)) * 1099511628211
	}
	return h
}

const fnvOffset = 14695981039346656037

// sliceBytes returns the native-endian byte view of s (nil for empty or
// zero-sized elements). The view aliases s; the wire layer copies at
// enqueue, so the alias never outlives the collective call.
func sliceBytes[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	es := int(unsafe.Sizeof(s[0]))
	if es == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*es)
}

// bytesToSlice reassembles received raw parts into a fresh []T.
func bytesToSlice[T any](parts [][]byte) []T {
	es := int(elemSize[T]())
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if es == 0 || total == 0 {
		return nil
	}
	out := make([]T, total/es)
	dst := unsafe.Slice((*byte)(unsafe.Pointer(&out[0])), total)
	off := 0
	for _, p := range parts {
		copy(dst[off:], p)
		off += len(p)
	}
	return out
}

// slotSlice reads member j's posted single-buffer payload: a direct type
// assertion for local members, a byte decode for remote ones. Returns nil
// when nothing was posted (withheld, dead, or synthesized-dead slots).
func slotSlice[T any](c *Comm, j int) []T {
	p := c.sh.slots[j].payload
	if p == nil {
		return nil
	}
	if rp, ok := p.(remoteParts); ok {
		return bytesToSlice[T](rp.parts)
	}
	return p.([]T)
}

// slotPart reads buffer i of member j's posted per-destination buffer list.
func slotPart[T any](c *Comm, j, i int) []T {
	p := c.sh.slots[j].payload
	if p == nil {
		return nil
	}
	if rp, ok := p.(remoteParts); ok {
		if i >= len(rp.parts) {
			return nil
		}
		return bytesToSlice[T](rp.parts[i : i+1])
	}
	return p.([][]T)[i]
}

// controlParts builds the wire parts for a control payload (nil on the
// in-process backend, where nothing is serialized).
func controlParts[T any](c *Comm, s []T) [][]byte {
	if c.sh.dist == nil {
		return nil
	}
	return [][]byte{sliceBytes(s)}
}

// corruptCopy returns a copy of s with one bit flipped in its first element,
// or ok=false when there is nothing to corrupt. The input is never modified:
// a retry resends the caller's clean buffer.
func corruptCopy[T any](s []T) ([]T, bool) {
	if len(s) == 0 || unsafe.Sizeof(s[0]) == 0 {
		return nil, false
	}
	cp := append([]T(nil), s...)
	b := unsafe.Slice((*byte)(unsafe.Pointer(&cp[0])), int(unsafe.Sizeof(cp[0])))
	b[0] ^= 1
	return cp, true
}

// contribute1 runs the transport protocol for a single-buffer payload: it
// consults the transport (sleeping any injected delay), checksums and
// possibly corrupts the posted copy, posts the envelope, and (socket
// backend) ships it to the remote processes. Must be followed by
// rendezvous + verify + payload read + complete.
func contribute1[T any](c *Comm, kind Kind, seq uint64, send []T) {
	act := c.rank.intercept(kind, c.Size())
	ctr := contribution{delay: act.Delay, withheld: act.Withhold, failed: act.Fail, dead: act.Kill}
	var parts [][]byte
	if !ctr.failed && !ctr.withheld && !ctr.dead {
		post := send
		if c.faulty() {
			ctr.declared = sumSlice[T](fnvOffset, send)
			if act.Corrupt {
				if cp, ok := corruptCopy(send); ok {
					post = cp
					c.rank.Faults.Corruptions++
				}
			}
			p := post
			ctr.resum = func() uint64 { return sumSlice[T](fnvOffset, p) }
		}
		ctr.payload = post
		if c.sh.dist != nil {
			parts = [][]byte{sliceBytes(post)}
		}
	}
	c.sh.slots[c.me] = ctr
	c.distSend(seq, wireData, &ctr, parts)
}

// contribute2 is contribute1 for per-destination buffer lists (alltoallv).
// Corruption flips a bit in a copy of the first non-empty destination buffer.
func contribute2[T any](c *Comm, kind Kind, seq uint64, send [][]T) {
	act := c.rank.intercept(kind, c.Size())
	ctr := contribution{delay: act.Delay, withheld: act.Withhold, failed: act.Fail, dead: act.Kill}
	var parts [][]byte
	if !ctr.failed && !ctr.withheld && !ctr.dead {
		post := send
		if c.faulty() {
			h := uint64(fnvOffset)
			for _, buf := range send {
				h = sumSlice[T](h, buf)
			}
			ctr.declared = h
			if act.Corrupt {
				for j, buf := range send {
					if cp, ok := corruptCopy(buf); ok {
						post = append([][]T(nil), send...)
						post[j] = cp
						c.rank.Faults.Corruptions++
						break
					}
				}
			}
			p := post
			ctr.resum = func() uint64 {
				h := uint64(fnvOffset)
				for _, buf := range p {
					h = sumSlice[T](h, buf)
				}
				return h
			}
		}
		ctr.payload = post
		if c.sh.dist != nil {
			parts = make([][]byte, len(post))
			for j, buf := range post {
				parts[j] = sliceBytes(buf)
			}
		}
	}
	c.sh.slots[c.me] = ctr
	c.distSend(seq, wireData, &ctr, parts)
}

// Alltoallv exchanges per-destination buffers: send[j] goes to member j.
// It returns recv where recv[j] is the buffer member j sent to the caller.
// As in MPI, the returned data is the caller's copy: it stays valid even if
// senders immediately reuse or mutate their buffers. The copy happens before
// the closing barrier, so no sender can race ahead and mutate a buffer a
// receiver is still reading. On a typed fault error the result is nil and no
// received data is exposed.
func Alltoallv[T any](c *Comm, send [][]T) ([][]T, error) {
	k := c.Size()
	if len(send) != k {
		panic("comm: Alltoallv needs one buffer per member")
	}
	seq := c.nextSeq()
	tok := c.traceEnter()
	es := elemSize[T]()
	c.rank.Stats.Calls[KindAlltoallv]++
	for j, buf := range send {
		if j != c.me {
			c.account(KindAlltoallv, j, int64(len(buf))*es)
		}
	}
	contribute2(c, KindAlltoallv, seq, send)
	c.rendezvous(seq, nil)
	err := c.verify(KindAlltoallv, nil)
	var recv [][]T
	if err == nil {
		recv = make([][]T, k)
		for j := 0; j < k; j++ {
			if mine := slotPart[T](c, j, c.me); len(mine) > 0 {
				recv[j] = append([]T(nil), mine...)
			}
		}
	}
	c.complete(seq)
	c.traceExit("alltoallv", tok, err)
	return recv, err
}

// AlltoallvFlat is Alltoallv with the received buffers concatenated.
func AlltoallvFlat[T any](c *Comm, send [][]T) ([]T, error) {
	parts, err := Alltoallv(c, send)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Allgatherv gathers each member's buffer on every member; result[i] is a
// copy of member i's buffer. The copies happen before the closing barrier so
// a sender mutating its buffer right after the call cannot corrupt any
// receiver's view (MPI value semantics).
func Allgatherv[T any](c *Comm, send []T) ([][]T, error) {
	seq := c.nextSeq()
	tok := c.traceEnter()
	k := c.Size()
	es := elemSize[T]()
	c.rank.Stats.Calls[KindAllgather]++
	for j := 0; j < k; j++ {
		if j != c.me {
			c.account(KindAllgather, j, int64(len(send))*es)
		}
	}
	contribute1(c, KindAllgather, seq, send)
	c.rendezvous(seq, nil)
	err := c.verify(KindAllgather, nil)
	var out [][]T
	if err == nil {
		out = make([][]T, k)
		for j := 0; j < k; j++ {
			if posted := slotSlice[T](c, j); len(posted) > 0 {
				out[j] = append([]T(nil), posted...)
			}
		}
	}
	c.complete(seq)
	c.traceExit("allgatherv", tok, err)
	return out, err
}

// AllgathervUniform gathers equal-length contributions into a preallocated
// member-major destination: member j's buffer lands in
// dst[j*len(send) : (j+1)*len(send)]. All members must pass buffers of one
// agreed length; a contribution of a different length (a protocol bug, not a
// transport fault — corruption is caught by the envelope checksum first)
// panics. The batched multi-source engine uses this for its stacked
// bit-plane frontier gathers: the destination is the contiguous backing of Q
// per-query window views, so the gather lands each member's planes in place
// with no per-call allocation and one collective regardless of batch width.
// On a typed fault error dst is left untouched, so a step-granular retry
// resends against clean state.
func AllgathervUniform[T any](c *Comm, send []T, dst []T) error {
	k := c.Size()
	n := len(send)
	if len(dst) != k*n {
		panic("comm: AllgathervUniform dst length must be Size()*len(send)")
	}
	seq := c.nextSeq()
	tok := c.traceEnter()
	es := elemSize[T]()
	c.rank.Stats.Calls[KindAllgather]++
	for j := 0; j < k; j++ {
		if j != c.me {
			c.account(KindAllgather, j, int64(n)*es)
		}
	}
	contribute1(c, KindAllgather, seq, send)
	c.rendezvous(seq, nil)
	err := c.verify(KindAllgather, nil)
	if err == nil {
		for j := 0; j < k; j++ {
			posted := slotSlice[T](c, j)
			if len(posted) != n {
				panic("comm: AllgathervUniform contribution length mismatch")
			}
			copy(dst[j*n:(j+1)*n], posted)
		}
	}
	c.complete(seq)
	c.traceExit("allgatherv_uniform", tok, err)
	return err
}

// ReduceScatterOr ORs all members' full-length word vectors and returns the
// caller's segment of the result. Segments are the standard block
// decomposition: member i owns words [i*len/k, (i+1)*len/k). All members must
// pass equal-length slices. Traffic accounting follows the pairwise-exchange
// algorithm: each member sends every other member that member's segment.
func ReduceScatterOr(c *Comm, words []uint64) ([]uint64, error) {
	seq := c.nextSeq()
	tok := c.traceEnter()
	k := c.Size()
	c.rank.Stats.Calls[KindReduceScatter]++
	n := len(words)
	lo, hi := segBounds(n, k, c.me)
	for j := 0; j < k; j++ {
		if j != c.me {
			jlo, jhi := segBounds(n, k, j)
			c.account(KindReduceScatter, j, int64(jhi-jlo)*8)
		}
	}
	contribute1(c, KindReduceScatter, seq, words)
	c.rendezvous(seq, nil)
	err := c.verify(KindReduceScatter, nil)
	var seg []uint64
	if err == nil {
		seg = make([]uint64, hi-lo)
		for j := 0; j < k; j++ {
			other := slotSlice[uint64](c, j)
			for i := range seg {
				seg[i] |= other[lo+i]
			}
		}
	}
	c.complete(seq)
	c.traceExit("reduce_scatter_or", tok, err)
	return seg, err
}

// segBounds returns member i's block of an n-element vector split k ways.
func segBounds(n, k, i int) (int, int) {
	base := n / k
	rem := n % k
	lo := i*base + min(i, rem)
	size := base
	if i < rem {
		size++
	}
	return lo, lo + size
}

// AllgathervSegments reassembles a vector whose segment i lives on member i
// (the inverse layout of ReduceScatterOr) into the full-length dst on every
// member. On error dst is left untouched.
func AllgathervSegments(c *Comm, seg []uint64, dst []uint64) error {
	parts, err := Allgatherv(c, seg)
	if err != nil {
		return err
	}
	k := c.Size()
	for j := 0; j < k; j++ {
		lo, hi := segBounds(len(dst), k, j)
		if hi-lo != len(parts[j]) {
			panic("comm: segment length mismatch in AllgathervSegments")
		}
		copy(dst[lo:hi], parts[j])
	}
	return nil
}

// AllreduceOr ORs the members' word vectors in place on every member. It is
// implemented as reduce-scatter followed by allgather, which is both the
// standard large-vector algorithm and the decomposition the paper's Figure 11
// accounts separately. Both halves always run so the collective schedule
// stays identical on every member even when the first half fails; on error
// words is left untouched.
func AllreduceOr(c *Comm, words []uint64) error {
	seg, err := ReduceScatterOr(c, words)
	if err != nil {
		// Keep the schedule: the allgather half still rendezvouses, with an
		// empty segment, and its result is discarded.
		_, err2 := Allgatherv(c, []uint64(nil))
		_ = err2
		return err
	}
	return AllgathervSegments(c, seg, words)
}

// AllreduceMaxInt64 computes the element-wise maximum across members in
// place. Used by the delayed reduction of the delegated parent array, where
// valid parents (≥ 0) win over the -1 sentinel. On error vals is untouched,
// which makes retrying the (idempotent, monotone) reduction safe.
func AllreduceMaxInt64(c *Comm, vals []int64) error {
	seq := c.nextSeq()
	tok := c.traceEnter()
	k := c.Size()
	c.rank.Stats.Calls[KindReduceScatter]++
	n := len(vals)
	for j := 0; j < k; j++ {
		if j != c.me {
			jlo, jhi := segBounds(n, k, j)
			c.account(KindReduceScatter, j, int64(jhi-jlo)*8)
		}
	}
	contribute1(c, KindReduceScatter, seq, vals)
	c.rendezvous(seq, nil)
	err := c.verify(KindReduceScatter, nil)
	lo, hi := segBounds(n, k, c.me)
	var seg []int64
	if err == nil {
		seg = make([]int64, hi-lo)
		copy(seg, vals[lo:hi])
		for j := 0; j < k; j++ {
			if j == c.me {
				continue
			}
			other := slotSlice[int64](c, j)
			for i := range seg {
				if other[lo+i] > seg[i] {
					seg[i] = other[lo+i]
				}
			}
		}
	}
	c.complete(seq)
	parts, err2 := Allgatherv(c, seg)
	if err == nil {
		err = err2
	}
	if err == nil {
		for j := 0; j < k; j++ {
			jlo, jhi := segBounds(n, k, j)
			copy(vals[jlo:jhi], parts[j][:jhi-jlo])
		}
	}
	c.traceExit("allreduce_max", tok, err)
	return err
}

// AllreduceSumInt64 sums scalar contributions across members and returns the
// total on every member.
func AllreduceSumInt64(c *Comm, v int64) (int64, error) {
	sums, err := AllreduceSumInt64s(c, []int64{v})
	if err != nil {
		return 0, err
	}
	return sums[0], nil
}

// AllreduceSumInt64s sums the members' equal-length int64 vectors element-wise
// and returns the totals on every member. Unlike AllreduceSumInt64Vec this is
// one rendezvous — every member posts its whole vector and sums all
// contributions — the right shape for control-sized vectors where a
// reduce-scatter + allgather pair would double the collective count. The
// engine's epilogue rides it to agree on the active-L count and the
// iteration's observed bytes in a single collective, keeping the epilogue's
// schedule position identical whether or not the byte feedback is consumed.
func AllreduceSumInt64s(c *Comm, vals []int64) ([]int64, error) {
	seq := c.nextSeq()
	tok := c.traceEnter()
	c.rank.Stats.Calls[KindReduceScatter]++
	for j := 0; j < c.Size(); j++ {
		if j != c.me {
			c.account(KindReduceScatter, j, 8*int64(len(vals)))
		}
	}
	contribute1(c, KindReduceScatter, seq, vals)
	c.rendezvous(seq, nil)
	err := c.verify(KindReduceScatter, nil)
	var sums []int64
	if err == nil {
		sums = make([]int64, len(vals))
		for j := 0; j < c.Size(); j++ {
			other := slotSlice[int64](c, j)
			for i := range sums {
				sums[i] += other[i]
			}
		}
	}
	c.complete(seq)
	c.traceExit("allreduce_sum", tok, err)
	return sums, err
}

// ControlSumInt64 sums scalar contributions like AllreduceSumInt64 but rides
// the control plane: it is never intercepted by the fault transport and
// cannot fail. The resilient engine uses it to vote on whether any rank saw a
// collective error in an iteration — real systems run exactly this kind of
// agreement on a reliable out-of-band channel (and so it is also exempt from
// data-plane traffic accounting). On the socket backend a dead process's
// contribution is synthesized as zero.
func ControlSumInt64(c *Comm, v int64) int64 {
	seq := c.nextSeq()
	vals := []int64{v}
	ctr := contribution{payload: vals}
	c.sh.slots[c.me] = ctr
	c.distSend(seq, wireControl, &ctr, controlParts(c, vals))
	c.rendezvous(seq, nil)
	var sum int64
	for j := 0; j < c.Size(); j++ {
		if s := slotSlice[int64](c, j); len(s) > 0 {
			sum += s[0]
		}
	}
	c.complete(seq)
	return sum
}

// ControlOrWords ORs the members' fixed-length word vectors on the control
// plane: like ControlSumInt64 it is never intercepted by the fault transport
// and cannot fail — even a dead rank still posts its vector, which is exactly
// what the membership protocol needs (the zombie's goroutine doubles as its
// failure detector and contributes its own death bit). All members must pass
// equal-length vectors. The engine's per-iteration vote rides this: word 0
// carries the step-failure mask, the rest a dead-rank bitmask. On the socket
// backend a dead PROCESS has no zombie to vote; the comm layer synthesizes
// the vote its ranks would have cast, setting their dead-rank bits.
func ControlOrWords(c *Comm, words []uint64) []uint64 {
	seq := c.nextSeq()
	cp := append([]uint64(nil), words...)
	ctr := contribution{payload: cp}
	c.sh.slots[c.me] = ctr
	c.distSend(seq, wireControl, &ctr, controlParts(c, cp))
	c.rendezvous(seq, nil)
	out := make([]uint64, len(words))
	for j := 0; j < c.Size(); j++ {
		other := slotSlice[uint64](c, j)
		if other == nil {
			if c.sh.slots[j].dead {
				markDeadRank(out, c.sh.members[j])
			}
			continue
		}
		for i := range out {
			out[i] |= other[i]
		}
	}
	c.complete(seq)
	return out
}

// ControlGatherSlices gathers every member's slice on every member over the
// control plane: like ControlSumInt64 it is never intercepted by the fault
// transport and cannot fail. The distributed engine's result assembly rides
// it — after a run succeeds each process holds only its local ranks' owned
// segments of the global result arrays, and one control gather ships the rest
// without re-opening the data-plane schedule to injected faults. out[j] is
// member j's slice; a dead process's members contribute nil. Local members'
// slices alias the sender's buffer (nothing is copied in-process); callers
// must copy before mutating.
func ControlGatherSlices[T any](c *Comm, send []T) [][]T {
	seq := c.nextSeq()
	ctr := contribution{payload: send}
	c.sh.slots[c.me] = ctr
	c.distSend(seq, wireControl, &ctr, controlParts(c, send))
	c.rendezvous(seq, nil)
	out := make([][]T, c.Size())
	for j := range out {
		out[j] = slotSlice[T](c, j)
	}
	c.complete(seq)
	return out
}

// Bcast distributes root's value to every member.
func Bcast[T any](c *Comm, v T, root int) (T, error) {
	seq := c.nextSeq()
	tok := c.traceEnter()
	c.rank.Stats.Calls[KindAllgather]++
	if c.me == root {
		for j := 0; j < c.Size(); j++ {
			if j != root {
				c.account(KindAllgather, j, elemSize[T]())
			}
		}
		contribute1(c, KindAllgather, seq, []T{v})
	} else {
		// Non-root members only receive; they are not intercepted (a stalled
		// receiver cannot lose anyone else's data).
	}
	c.rendezvous(seq, []int{root})
	err := c.verify(KindAllgather, []int{root})
	var out T
	if err == nil {
		out = slotSlice[T](c, root)[0]
	}
	c.complete(seq)
	c.traceExit("bcast", tok, err)
	return out, err
}

// AllreduceSumFloat64 sums the members' float64 vectors element-wise in
// place on every member. Summation order is member order, so every member
// computes bit-identical results — the property the framework package relies
// on to keep replicated hub values consistent without re-broadcasting.
// On error vals is left untouched.
func AllreduceSumFloat64(c *Comm, vals []float64) error {
	seq := c.nextSeq()
	tok := c.traceEnter()
	k := c.Size()
	c.rank.Stats.Calls[KindReduceScatter]++
	n := len(vals)
	for j := 0; j < k; j++ {
		if j != c.me {
			jlo, jhi := segBounds(n, k, j)
			c.account(KindReduceScatter, j, int64(jhi-jlo)*8)
		}
	}
	contribute1(c, KindReduceScatter, seq, vals)
	c.rendezvous(seq, nil)
	err := c.verify(KindReduceScatter, nil)
	lo, hi := segBounds(n, k, c.me)
	var seg []float64
	if err == nil {
		seg = make([]float64, hi-lo)
		for j := 0; j < k; j++ {
			other := slotSlice[float64](c, j)
			for i := range seg {
				seg[i] += other[lo+i]
			}
		}
	}
	c.complete(seq)
	parts, err2 := Allgatherv(c, seg)
	if err == nil {
		err = err2
	}
	if err == nil {
		for j := 0; j < k; j++ {
			jlo, jhi := segBounds(n, k, j)
			copy(vals[jlo:jhi], parts[j][:jhi-jlo])
		}
	}
	c.traceExit("allreduce_sum_f64", tok, err)
	return err
}

// AllreduceSumInt64Vec sums the members' int64 vectors element-wise in place
// on every member (reduce-scatter + allgather, like the other vector
// reductions). Used by distributed preprocessing to combine per-rank degree
// histograms. On error vals is left untouched.
func AllreduceSumInt64Vec(c *Comm, vals []int64) error {
	seq := c.nextSeq()
	tok := c.traceEnter()
	k := c.Size()
	c.rank.Stats.Calls[KindReduceScatter]++
	n := len(vals)
	for j := 0; j < k; j++ {
		if j != c.me {
			jlo, jhi := segBounds(n, k, j)
			c.account(KindReduceScatter, j, int64(jhi-jlo)*8)
		}
	}
	contribute1(c, KindReduceScatter, seq, vals)
	c.rendezvous(seq, nil)
	err := c.verify(KindReduceScatter, nil)
	lo, hi := segBounds(n, k, c.me)
	var seg []int64
	if err == nil {
		seg = make([]int64, hi-lo)
		for j := 0; j < k; j++ {
			other := slotSlice[int64](c, j)
			for i := range seg {
				seg[i] += other[lo+i]
			}
		}
	}
	c.complete(seq)
	parts, err2 := Allgatherv(c, seg)
	if err == nil {
		err = err2
	}
	if err == nil {
		for j := 0; j < k; j++ {
			jlo, jhi := segBounds(n, k, j)
			copy(vals[jlo:jhi], parts[j][:jhi-jlo])
		}
	}
	c.traceExit("allreduce_sum_vec", tok, err)
	return err
}
