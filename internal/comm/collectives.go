package comm

import "unsafe"

// elemSize returns the in-memory size of T for traffic accounting.
func elemSize[T any]() int64 {
	var z T
	return int64(unsafe.Sizeof(z))
}

// Alltoallv exchanges per-destination buffers: send[j] goes to member j.
// It returns recv where recv[j] is the buffer member j sent to the caller.
// As in MPI, the returned data is the caller's copy: it stays valid even if
// senders immediately reuse or mutate their buffers. The copy happens before
// the closing barrier, so no sender can race ahead and mutate a buffer a
// receiver is still reading.
func Alltoallv[T any](c *Comm, send [][]T) [][]T {
	k := c.Size()
	if len(send) != k {
		panic("comm: Alltoallv needs one buffer per member")
	}
	es := elemSize[T]()
	c.rank.Stats.Calls[KindAlltoallv]++
	for j, buf := range send {
		if j != c.me {
			c.account(KindAlltoallv, j, int64(len(buf))*es)
		}
	}
	c.sh.slots[c.me] = send
	c.sh.bar.wait()
	recv := make([][]T, k)
	for j := 0; j < k; j++ {
		posted := c.sh.slots[j].([][]T)
		if len(posted[c.me]) > 0 {
			recv[j] = append([]T(nil), posted[c.me]...)
		}
	}
	c.sh.bar.wait()
	return recv
}

// AlltoallvFlat is Alltoallv with the received buffers concatenated.
func AlltoallvFlat[T any](c *Comm, send [][]T) []T {
	parts := Alltoallv(c, send)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Allgatherv gathers each member's buffer on every member; result[i] is a
// copy of member i's buffer. The copies happen before the closing barrier so
// a sender mutating its buffer right after the call cannot corrupt any
// receiver's view (MPI value semantics).
func Allgatherv[T any](c *Comm, send []T) [][]T {
	k := c.Size()
	es := elemSize[T]()
	c.rank.Stats.Calls[KindAllgather]++
	for j := 0; j < k; j++ {
		if j != c.me {
			c.account(KindAllgather, j, int64(len(send))*es)
		}
	}
	c.sh.slots[c.me] = send
	c.sh.bar.wait()
	out := make([][]T, k)
	for j := 0; j < k; j++ {
		posted := c.sh.slots[j].([]T)
		if len(posted) > 0 {
			out[j] = append([]T(nil), posted...)
		}
	}
	c.sh.bar.wait()
	return out
}

// ReduceScatterOr ORs all members' full-length word vectors and returns the
// caller's segment of the result. Segments are the standard block
// decomposition: member i owns words [i*len/k, (i+1)*len/k). All members must
// pass equal-length slices. Traffic accounting follows the pairwise-exchange
// algorithm: each member sends every other member that member's segment.
func ReduceScatterOr(c *Comm, words []uint64) []uint64 {
	k := c.Size()
	c.rank.Stats.Calls[KindReduceScatter]++
	n := len(words)
	lo, hi := segBounds(n, k, c.me)
	for j := 0; j < k; j++ {
		if j != c.me {
			jlo, jhi := segBounds(n, k, j)
			c.account(KindReduceScatter, j, int64(jhi-jlo)*8)
		}
	}
	c.sh.slots[c.me] = words
	c.sh.bar.wait()
	seg := make([]uint64, hi-lo)
	for j := 0; j < k; j++ {
		other := c.sh.slots[j].([]uint64)
		for i := range seg {
			seg[i] |= other[lo+i]
		}
	}
	c.sh.bar.wait()
	return seg
}

// segBounds returns member i's block of an n-element vector split k ways.
func segBounds(n, k, i int) (int, int) {
	base := n / k
	rem := n % k
	lo := i*base + min(i, rem)
	size := base
	if i < rem {
		size++
	}
	return lo, lo + size
}

// AllgathervSegments reassembles a vector whose segment i lives on member i
// (the inverse layout of ReduceScatterOr) into the full-length dst on every
// member.
func AllgathervSegments(c *Comm, seg []uint64, dst []uint64) {
	parts := Allgatherv(c, seg)
	k := c.Size()
	for j := 0; j < k; j++ {
		lo, hi := segBounds(len(dst), k, j)
		if hi-lo != len(parts[j]) {
			panic("comm: segment length mismatch in AllgathervSegments")
		}
		copy(dst[lo:hi], parts[j])
	}
}

// AllreduceOr ORs the members' word vectors in place on every member. It is
// implemented as reduce-scatter followed by allgather, which is both the
// standard large-vector algorithm and the decomposition the paper's Figure 11
// accounts separately.
func AllreduceOr(c *Comm, words []uint64) {
	seg := ReduceScatterOr(c, words)
	AllgathervSegments(c, seg, words)
}

// AllreduceMaxInt64 computes the element-wise maximum across members in
// place. Used by the delayed reduction of the delegated parent array, where
// valid parents (≥ 0) win over the -1 sentinel.
func AllreduceMaxInt64(c *Comm, vals []int64) {
	k := c.Size()
	c.rank.Stats.Calls[KindReduceScatter]++
	n := len(vals)
	for j := 0; j < k; j++ {
		if j != c.me {
			jlo, jhi := segBounds(n, k, j)
			c.account(KindReduceScatter, j, int64(jhi-jlo)*8)
		}
	}
	c.sh.slots[c.me] = vals
	c.sh.bar.wait()
	lo, hi := segBounds(n, k, c.me)
	seg := make([]int64, hi-lo)
	copy(seg, vals[lo:hi])
	for j := 0; j < k; j++ {
		if j == c.me {
			continue
		}
		other := c.sh.slots[j].([]int64)
		for i := range seg {
			if other[lo+i] > seg[i] {
				seg[i] = other[lo+i]
			}
		}
	}
	c.sh.bar.wait()
	parts := Allgatherv(c, seg)
	for j := 0; j < k; j++ {
		jlo, jhi := segBounds(n, k, j)
		copy(vals[jlo:jhi], parts[j][:jhi-jlo])
	}
}

// AllreduceSumInt64 sums scalar contributions across members and returns the
// total on every member.
func AllreduceSumInt64(c *Comm, v int64) int64 {
	vals := []int64{v}
	c.rank.Stats.Calls[KindReduceScatter]++
	for j := 0; j < c.Size(); j++ {
		if j != c.me {
			c.account(KindReduceScatter, j, 8)
		}
	}
	c.sh.slots[c.me] = vals
	c.sh.bar.wait()
	var sum int64
	for j := 0; j < c.Size(); j++ {
		sum += c.sh.slots[j].([]int64)[0]
	}
	c.sh.bar.wait()
	return sum
}

// Bcast distributes root's value to every member.
func Bcast[T any](c *Comm, v T, root int) T {
	c.rank.Stats.Calls[KindAllgather]++
	if c.me == root {
		for j := 0; j < c.Size(); j++ {
			if j != root {
				c.account(KindAllgather, j, elemSize[T]())
			}
		}
		c.sh.slots[root] = v
	}
	c.sh.bar.wait()
	out := c.sh.slots[root].(T)
	c.sh.bar.wait()
	return out
}

// AllreduceSumFloat64 sums the members' float64 vectors element-wise in
// place on every member. Summation order is member order, so every member
// computes bit-identical results — the property the framework package relies
// on to keep replicated hub values consistent without re-broadcasting.
func AllreduceSumFloat64(c *Comm, vals []float64) {
	k := c.Size()
	c.rank.Stats.Calls[KindReduceScatter]++
	n := len(vals)
	for j := 0; j < k; j++ {
		if j != c.me {
			jlo, jhi := segBounds(n, k, j)
			c.account(KindReduceScatter, j, int64(jhi-jlo)*8)
		}
	}
	c.sh.slots[c.me] = vals
	c.sh.bar.wait()
	lo, hi := segBounds(n, k, c.me)
	seg := make([]float64, hi-lo)
	for j := 0; j < k; j++ {
		other := c.sh.slots[j].([]float64)
		for i := range seg {
			seg[i] += other[lo+i]
		}
	}
	c.sh.bar.wait()
	parts := Allgatherv(c, seg)
	for j := 0; j < k; j++ {
		jlo, jhi := segBounds(n, k, j)
		copy(vals[jlo:jhi], parts[j][:jhi-jlo])
	}
}

// AllreduceSumInt64Vec sums the members' int64 vectors element-wise in place
// on every member (reduce-scatter + allgather, like the other vector
// reductions). Used by distributed preprocessing to combine per-rank degree
// histograms.
func AllreduceSumInt64Vec(c *Comm, vals []int64) {
	k := c.Size()
	c.rank.Stats.Calls[KindReduceScatter]++
	n := len(vals)
	for j := 0; j < k; j++ {
		if j != c.me {
			jlo, jhi := segBounds(n, k, j)
			c.account(KindReduceScatter, j, int64(jhi-jlo)*8)
		}
	}
	c.sh.slots[c.me] = vals
	c.sh.bar.wait()
	lo, hi := segBounds(n, k, c.me)
	seg := make([]int64, hi-lo)
	for j := 0; j < k; j++ {
		other := c.sh.slots[j].([]int64)
		for i := range seg {
			seg[i] += other[lo+i]
		}
	}
	c.sh.bar.wait()
	parts := Allgatherv(c, seg)
	for j := 0; j < k; j++ {
		jlo, jhi := segBounds(n, k, j)
		copy(vals[jlo:jhi], parts[j][:jhi-jlo])
	}
}
