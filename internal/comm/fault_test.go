package comm

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/topology"
)

// scripted is a local test transport: a pure function over the call. The
// faultinject package cannot be imported here (it imports comm), so chaos
// tests script their transports directly.
type scripted func(Call) FaultAction

func (s scripted) Intercept(c Call) FaultAction { return s(c) }

// faultyWorld builds a world whose transport applies act to every
// contribution from the given rank, with a 1ms collective deadline.
func faultyWorld(t *testing.T, mesh topology.Mesh, rank int, act FaultAction) *World {
	t.Helper()
	n := mesh.Size()
	w, err := NewWorldOpts(n, mesh, topology.NewSunway(n), WorldOptions{
		Transport: scripted(func(c Call) FaultAction {
			if c.Rank == rank {
				return act
			}
			return FaultAction{}
		}),
		Deadline: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// collectiveOps exercises every collective once on the given communicator
// selector; each op returns the collective's error.
var collectiveOps = []struct {
	name string
	run  func(r *Rank) error
}{
	{"alltoallv", func(r *Rank) error {
		send := make([][]int64, r.World.Size())
		for j := range send {
			send[j] = []int64{int64(r.ID), int64(j)}
		}
		_, err := Alltoallv(r.World, send)
		return err
	}},
	{"allgatherv", func(r *Rank) error {
		_, err := Allgatherv(r.World, []uint64{uint64(r.ID) + 1})
		return err
	}},
	{"reducescatteror", func(r *Rank) error {
		_, err := ReduceScatterOr(r.World, make([]uint64, 4*r.World.Size()))
		return err
	}},
	{"allgathervsegments", func(r *Rank) error {
		dst := make([]uint64, r.World.Size())
		return AllgathervSegments(r.World, []uint64{uint64(r.ID)}, dst)
	}},
	{"allreduceor", func(r *Rank) error {
		return AllreduceOr(r.World, make([]uint64, 8))
	}},
	{"allreducemaxint64", func(r *Rank) error {
		return AllreduceMaxInt64(r.World, make([]int64, 2*r.World.Size()))
	}},
	{"allreducesumint64", func(r *Rank) error {
		_, err := AllreduceSumInt64(r.World, int64(r.ID))
		return err
	}},
	{"allreducesumfloat64", func(r *Rank) error {
		return AllreduceSumFloat64(r.World, make([]float64, r.World.Size()))
	}},
	{"allreducesumint64vec", func(r *Rank) error {
		return AllreduceSumInt64Vec(r.World, make([]int64, r.World.Size()))
	}},
	{"allgathersparse", func(r *Rank) error {
		_, err := AllgatherSparse(r.World, []SparseUpdate{
			{Dst: int32(r.World.Size() - 1), Tag: 1, Off: int64(r.ID), Val: 7},
		})
		return err
	}},
	{"bcast", func(r *Rank) error {
		_, err := Bcast(r.World, r.ID*3, 0)
		return err
	}},
	{"barrier", func(r *Rank) error {
		return r.World.Barrier()
	}},
}

// TestEveryCollectiveUnderEveryFault runs each collective under each fault
// kind on several mesh shapes: every rank must observe the same typed error
// naming the faulty rank — and the world must never deadlock doing so.
func TestEveryCollectiveUnderEveryFault(t *testing.T) {
	meshes := []topology.Mesh{
		{Rows: 1, Cols: 4}, {Rows: 2, Cols: 2}, {Rows: 4, Cols: 1}, {Rows: 2, Cols: 3},
	}
	faults := []struct {
		name string
		act  FaultAction
		want error
	}{
		{"fail", FaultAction{Fail: true}, ErrCollectiveFailed},
		{"stall", FaultAction{Withhold: true}, ErrRankStalled},
		{"corrupt", FaultAction{Corrupt: true}, ErrPayloadCorrupted},
		{"deadline", FaultAction{Delay: 2 * time.Millisecond}, ErrDeadlineExceeded},
	}
	for _, mesh := range meshes {
		for _, f := range faults {
			for _, op := range collectiveOps {
				// Rank 0 is the faulty one so it is also Bcast's (intercepted)
				// root. Barriers carry no payload, so corruption cannot occur.
				wantErr := f.want
				if op.name == "barrier" && f.name == "corrupt" {
					wantErr = nil
				}
				w := faultyWorld(t, mesh, 0, f.act)
				n := mesh.Size()
				errs := make([]error, n)
				done := make(chan struct{})
				go func() {
					w.Run(func(r *Rank) { errs[r.ID] = op.run(r) })
					close(done)
				}()
				select {
				case <-done:
				case <-time.After(30 * time.Second):
					t.Fatalf("%v/%s/%s: world deadlocked", mesh, f.name, op.name)
				}
				for id, err := range errs {
					if wantErr == nil {
						if err != nil {
							t.Fatalf("%v/%s/%s: rank %d got %v, want nil", mesh, f.name, op.name, id, err)
						}
						continue
					}
					if !errors.Is(err, wantErr) {
						t.Fatalf("%v/%s/%s: rank %d got %v, want %v", mesh, f.name, op.name, id, err, wantErr)
					}
					var ce *CollectiveError
					if !errors.As(err, &ce) {
						t.Fatalf("%v/%s/%s: rank %d error %T is not *CollectiveError", mesh, f.name, op.name, id, err)
					}
					if ce.Rank != 0 {
						t.Fatalf("%v/%s/%s: rank %d blames rank %d, want 0", mesh, f.name, op.name, id, ce.Rank)
					}
				}
			}
		}
	}
}

// TestStalledRankCannotDeadlockWorld is the watchdog property: a rank that
// withholds every contribution forever must surface as typed errors on all
// ranks — including itself — with the world still terminating.
func TestStalledRankCannotDeadlockWorld(t *testing.T) {
	const n = 8
	w, err := NewWorldOpts(n, topology.Mesh{Rows: 2, Cols: 4}, topology.NewSunway(n), WorldOptions{
		Transport: scripted(func(c Call) FaultAction {
			return FaultAction{Withhold: c.Rank == 3}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	var worldErrs, rowErrs, barErrs atomic.Int64
	done := make(chan struct{})
	go func() {
		w.Run(func(r *Rank) {
			if _, err := AllreduceSumInt64(r.World, 1); errors.Is(err, ErrRankStalled) {
				worldErrs.Add(1)
			}
			// Row collectives: only rank 3's row observes the stall.
			if err := AllreduceOr(r.RowC, make([]uint64, 4)); errors.Is(err, ErrRankStalled) {
				rowErrs.Add(1)
			}
			if err := r.World.Barrier(); errors.Is(err, ErrRankStalled) {
				barErrs.Add(1)
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stalled rank deadlocked the world")
	}
	if got := worldErrs.Load(); got != n {
		t.Fatalf("world allreduce: %d ranks saw the stall, want %d", got, n)
	}
	if got := rowErrs.Load(); got != 4 {
		t.Fatalf("row allreduce: %d ranks saw the stall, want the 4 in rank 3's row", got)
	}
	if got := barErrs.Load(); got != n {
		t.Fatalf("barrier: %d ranks saw the stall, want %d", got, n)
	}
}

// TestStallWindowRecovers: a rank stalled for a window of collectives errors
// during the window and works again after it — the transient-fault shape the
// engine's retry loop rides on.
func TestStallWindowRecovers(t *testing.T) {
	const n = 4
	w, err := NewWorldOpts(n, topology.Mesh{Rows: 2, Cols: 2}, topology.NewSunway(n), WorldOptions{
		Transport: scripted(func(c Call) FaultAction {
			return FaultAction{Withhold: c.Rank == 1 && c.Seq <= 2}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(func(r *Rank) {
		for seq := 1; seq <= 4; seq++ {
			sum, err := AllreduceSumInt64(r.World, int64(r.ID))
			if seq <= 2 {
				if !errors.Is(err, ErrRankStalled) {
					panicf(t, "seq %d: err = %v, want ErrRankStalled", seq, err)
				}
			} else {
				if err != nil {
					panicf(t, "seq %d: err = %v after stall window ended", seq, err)
				}
				if sum != 6 {
					panicf(t, "seq %d: sum = %d, want 6", seq, sum)
				}
			}
		}
	})
}

// panicf reports through panic so failures inside rank goroutines stop the
// world immediately (t.Fatalf must not be called off the test goroutine).
func panicf(t *testing.T, format string, args ...any) {
	t.Helper()
	t.Errorf(format, args...)
	panic("fault_test: rank assertion failed")
}

// TestErrorAgreementAcrossRanks: when one contribution to one collective is
// faulty, every member returns an identical verdict (kind, seq, blamed rank).
func TestErrorAgreementAcrossRanks(t *testing.T) {
	const n = 6
	w, err := NewWorldOpts(n, topology.Mesh{Rows: 2, Cols: 3}, topology.NewSunway(n), WorldOptions{
		Transport: scripted(func(c Call) FaultAction {
			return FaultAction{Fail: c.Rank == 4 && c.Seq == 3}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	verdicts := make([]*CollectiveError, n)
	w.Run(func(r *Rank) {
		for seq := 1; seq <= 5; seq++ {
			_, err := Allgatherv(r.World, []int64{int64(r.ID)})
			if err != nil {
				var ce *CollectiveError
				if !errors.As(err, &ce) {
					panicf(t, "rank %d: %T is not *CollectiveError", r.ID, err)
				}
				if verdicts[r.ID] != nil {
					panicf(t, "rank %d: more than one collective errored", r.ID)
				}
				verdicts[r.ID] = ce
			}
		}
	})
	for id, ce := range verdicts {
		if ce == nil {
			t.Fatalf("rank %d saw no error", id)
		}
		if ce.Kind != KindAllgather || ce.Seq != 3 || ce.Rank != 4 {
			t.Fatalf("rank %d verdict %+v, want kind=allgather seq=3 rank=4", id, ce)
		}
	}
}

// TestFaultStatsAccounting checks injected faults land in the injecting
// rank's FaultStats and observed errors in every member's.
func TestFaultStatsAccounting(t *testing.T) {
	const n = 4
	w, err := NewWorldOpts(n, topology.Mesh{Rows: 2, Cols: 2}, topology.NewSunway(n), WorldOptions{
		Transport: scripted(func(c Call) FaultAction {
			if c.Rank != 2 {
				return FaultAction{}
			}
			switch c.Seq {
			case 1:
				return FaultAction{Delay: 100 * time.Microsecond}
			case 2:
				return FaultAction{Corrupt: true}
			case 3:
				return FaultAction{Withhold: true}
			case 4:
				return FaultAction{Fail: true}
			}
			return FaultAction{}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := make([]FaultStats, n)
	w.Run(func(r *Rank) {
		for seq := 1; seq <= 5; seq++ {
			Allgatherv(r.World, []int64{1})
		}
		stats[r.ID] = r.Faults
	})
	s := stats[2]
	if s.Delays != 1 || s.Corruptions != 1 || s.Stalls != 1 || s.Failures != 1 {
		t.Fatalf("injecting rank stats %+v, want one of each fault", s)
	}
	if s.DelayTime != 100*time.Microsecond {
		t.Fatalf("DelayTime = %v, want 100µs", s.DelayTime)
	}
	if s.Injected() != 4 {
		t.Fatalf("Injected() = %d, want 4", s.Injected())
	}
	for id, s := range stats {
		// Seqs 2,3,4 error on every member (delay alone, with no deadline
		// configured, does not).
		if s.Errors != 3 {
			t.Fatalf("rank %d observed %d errors, want 3", id, s.Errors)
		}
	}
}

// TestSubCommunicatorFaultScoping: a fault on a row collective only errors
// that row's members; the other rows and subsequent world collectives are
// untouched.
func TestSubCommunicatorFaultScoping(t *testing.T) {
	const n = 4
	w, err := NewWorldOpts(n, topology.Mesh{Rows: 2, Cols: 2}, topology.NewSunway(n), WorldOptions{
		Transport: scripted(func(c Call) FaultAction {
			return FaultAction{Fail: c.Rank == 0 && c.Seq == 1}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	rowErr := make([]error, n)
	worldErr := make([]error, n)
	w.Run(func(r *Rank) {
		_, rowErr[r.ID] = AllreduceSumInt64(r.RowC, 1)
		_, worldErr[r.ID] = AllreduceSumInt64(r.World, 1)
	})
	for id := 0; id < n; id++ {
		inRow0 := id < 2
		if inRow0 != errors.Is(rowErr[id], ErrCollectiveFailed) {
			t.Fatalf("rank %d: row err = %v (in faulty row: %v)", id, rowErr[id], inRow0)
		}
		if worldErr[id] != nil {
			t.Fatalf("rank %d: world collective after scoped fault errored: %v", id, worldErr[id])
		}
	}
}

// TestReliableWorldNeverErrors pins the fast path: without a transport,
// Faulty() is false and no collective can return an error.
func TestReliableWorldNeverErrors(t *testing.T) {
	const n = 4
	w, err := NewWorld(n, topology.Mesh{Rows: 2, Cols: 2}, topology.NewSunway(n))
	if err != nil {
		t.Fatal(err)
	}
	w.Run(func(r *Rank) {
		if r.Faulty() {
			panicf(t, "reliable world reports Faulty()")
		}
		for _, op := range collectiveOps {
			if err := op.run(r); err != nil {
				panicf(t, "%s errored on a reliable world: %v", op.name, err)
			}
		}
		if r.Faults != (FaultStats{}) {
			panicf(t, "reliable world accumulated fault stats %+v", r.Faults)
		}
	})
}

// TestCorruptionDoesNotTouchCallerBuffer: the retry contract — a corrupted
// contribution flips a bit in a transport-owned copy, so resending the same
// buffer after the error transmits clean data.
func TestCorruptionDoesNotTouchCallerBuffer(t *testing.T) {
	const n = 2
	w, err := NewWorldOpts(n, topology.Mesh{Rows: 1, Cols: 2}, topology.NewSunway(n), WorldOptions{
		Transport: scripted(func(c Call) FaultAction {
			return FaultAction{Corrupt: c.Rank == 0 && c.Seq == 1}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(func(r *Rank) {
		buf := []uint64{0xdeadbeef, 42}
		_, err := Allgatherv(r.World, buf)
		if !errors.Is(err, ErrPayloadCorrupted) {
			panicf(t, "rank %d: err = %v, want ErrPayloadCorrupted", r.ID, err)
		}
		if buf[0] != 0xdeadbeef || buf[1] != 42 {
			panicf(t, "rank %d: caller buffer mutated to %v", r.ID, buf)
		}
		// Retry with the same buffer: clean.
		parts, err := Allgatherv(r.World, buf)
		if err != nil {
			panicf(t, "rank %d: retry errored: %v", r.ID, err)
		}
		if parts[0][0] != 0xdeadbeef {
			panicf(t, "rank %d: retry received corrupted data %v", r.ID, parts[0])
		}
	})
}
