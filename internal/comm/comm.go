// Package comm is the in-process message-passing runtime standing in for MPI
// (the substitution DESIGN.md documents: Go has no MPI ecosystem). Ranks run
// as goroutines in a World; collectives — Alltoallv, Allgatherv,
// ReduceScatterOr, Allreduce — operate over communicators, with row and
// column sub-communicators over the R×C mesh exactly like the paper's 1.5D
// layout. Every collective records the bytes each rank sends, split into
// intra- and inter-supernode traffic using the topology model, so the
// perfmodel package can price runs on the paper's machine constants.
package comm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/topology"
	"repro/internal/trace"
)

// Kind labels a collective for traffic accounting, matching the categories of
// the paper's Figure 11.
type Kind int

// Collective kinds.
const (
	KindAlltoallv Kind = iota
	KindAllgather
	KindReduceScatter
	KindBarrier
	KindAllgatherSparse
	numKinds
)

// NumKinds is the collective-kind axis size, for callers that iterate the
// VolumeStats arrays (the Figure 11 report).
const NumKinds = numKinds

// String returns the figure-11 style label.
func (k Kind) String() string {
	switch k {
	case KindAlltoallv:
		return "alltoallv"
	case KindAllgather:
		return "allgather"
	case KindReduceScatter:
		return "reduce_scatter"
	case KindBarrier:
		return "barrier"
	case KindAllgatherSparse:
		return "allgather_sparse"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// VolumeStats accumulates one rank's communication volumes. Rank-local and
// unsynchronized: each rank only writes its own.
type VolumeStats struct {
	IntraBytes [numKinds]int64
	InterBytes [numKinds]int64
	Calls      [numKinds]int64
}

// Add accumulates other into s.
func (s *VolumeStats) Add(other *VolumeStats) {
	for k := 0; k < int(numKinds); k++ {
		s.IntraBytes[k] += other.IntraBytes[k]
		s.InterBytes[k] += other.InterBytes[k]
		s.Calls[k] += other.Calls[k]
	}
}

// Delta returns s - base.
func (s *VolumeStats) Delta(base *VolumeStats) VolumeStats {
	var d VolumeStats
	for k := 0; k < int(numKinds); k++ {
		d.IntraBytes[k] = s.IntraBytes[k] - base.IntraBytes[k]
		d.InterBytes[k] = s.InterBytes[k] - base.InterBytes[k]
		d.Calls[k] = s.Calls[k] - base.Calls[k]
	}
	return d
}

// TotalBytes returns all bytes across kinds.
func (s *VolumeStats) TotalBytes() int64 {
	var t int64
	for k := 0; k < int(numKinds); k++ {
		t += s.IntraBytes[k] + s.InterBytes[k]
	}
	return t
}

// Totals sums payload bytes across kinds, split by supernode locality.
func (s *VolumeStats) Totals() (intra, inter int64) {
	for k := 0; k < int(numKinds); k++ {
		intra += s.IntraBytes[k]
		inter += s.InterBytes[k]
	}
	return intra, inter
}

// barrier is a reusable cyclic barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// contribution is one member's envelope for one collective: the payload plus
// the fault metadata every member inspects between the two rendezvous
// barriers. Detection works on metadata rather than on escaping the barrier,
// which keeps all members in lockstep even while they agree on an error.
type contribution struct {
	payload any
	// declared is the checksum of the data the sender meant to post; resum
	// recomputes the checksum of the data actually posted. A corrupted copy
	// makes them disagree on every receiver identically. Both are only used
	// when a transport is installed.
	declared uint64
	resum    func() uint64
	delay    time.Duration // injected delay the sender slept before posting
	withheld bool          // stalled: no payload this collective
	failed   bool          // contribution failed outright
	dead     bool          // fail-stop: the rank is permanently gone
}

// shared is the state one communicator's members rendezvous through. On the
// in-process backend every member is local and bar spans them all; on the
// socket backend bar spans only the local members and dist carries the
// cross-process geometry (remote contributions arrive via the Group router
// and are gathered into slots by the local leader).
type shared struct {
	members []int          // world ranks, in member order
	slots   []contribution // one posting slot per member
	bar     *barrier       // rendezvous over the local members
	dist    *distComm      // nil on the in-process backend
}

// World owns the ranks and their communicators.
//
// A world lives inside one epoch of the membership protocol: rank slots are
// fixed at creation, and when a slot fail-stops (a Kill fault) the world
// cannot heal in place — survivors build the successor with NextEpoch, which
// keeps the mesh shape but remaps the dead slots onto hosting nodes
// (RebuildShrink) or onto fresh spare nodes (RebuildRestore). nodeOf carries
// the rank→machine-node mapping that the remap rewrites; on an epoch-0 world
// it is the identity, matching the historical "rank i is node i" model.
type World struct {
	size    int
	mesh    topology.Mesh
	machine topology.Machine
	opt     WorldOptions
	epoch   int
	nodeOf  []int // rank -> hosting machine node

	// Socket backend (nil dist = in-process). procOf maps each rank to its
	// hosting process; gen is the run generation stamped on wire frames,
	// assigned at each Run from the group's counter.
	dist   *DistConfig
	procOf []int
	gen    uint32
	// evacProc marks processes an earlier epoch already evacuated ranks
	// from: they are dead capacity and must never be picked as spares again,
	// or a double fail-stop would bounce ranks between corpses until the
	// epoch budget runs out. Carried forward by NextEpoch; nil until the
	// first evacuation.
	evacProc map[int]bool

	world *shared
	rows  []*shared // one per mesh row
	cols  []*shared // one per mesh column

	// streams holds one trace stream per rank slot when WorldOptions.Trace is
	// installed (nil otherwise). A slot's stream is reused across Run calls —
	// only one goroutine occupies a slot at a time, preserving the
	// single-writer contract.
	streams []*trace.Stream
}

// NewWorld builds a world of n ranks arranged in the mesh on the machine.
// Rank i is modeled as node i of the machine. The transport is perfectly
// reliable; use NewWorldOpts to inject faults.
func NewWorld(n int, mesh topology.Mesh, machine topology.Machine) (*World, error) {
	return NewWorldOpts(n, mesh, machine, WorldOptions{})
}

// NewWorldOpts builds a world with an explicit transport configuration.
func NewWorldOpts(n int, mesh topology.Mesh, machine topology.Machine, opt WorldOptions) (*World, error) {
	if err := mesh.Validate(n); err != nil {
		return nil, err
	}
	if machine.Nodes < n {
		return nil, fmt.Errorf("comm: machine has %d nodes for %d ranks", machine.Nodes, n)
	}
	w := &World{size: n, mesh: mesh, machine: machine, opt: opt, nodeOf: make([]int, n)}
	for i := 0; i < n; i++ {
		w.nodeOf[i] = i
	}
	if opt.Dist != nil {
		if opt.Dist.Group == nil {
			return nil, fmt.Errorf("comm: DistConfig without a Group")
		}
		if len(opt.Dist.ProcOf) != n {
			return nil, fmt.Errorf("comm: DistConfig.ProcOf has %d entries for %d ranks", len(opt.Dist.ProcOf), n)
		}
		procs := opt.Dist.Group.Procs()
		for r, p := range opt.Dist.ProcOf {
			if p < 0 || p >= procs {
				return nil, fmt.Errorf("comm: rank %d mapped to process %d of %d", r, p, procs)
			}
		}
		w.dist = opt.Dist
		w.procOf = append([]int(nil), opt.Dist.ProcOf...)
	}
	w.initComms()
	if opt.Trace != nil {
		w.streams = make([]*trace.Stream, n)
		for i := range w.streams {
			w.streams[i] = opt.Trace.NewStream(i)
		}
	}
	return w, nil
}

// initComms (re)builds the world/row/column communicators from the current
// rank→process map. Called once at construction and again by NextEpoch after
// the dead slots are re-homed, since re-homing changes which members are
// local to each process.
func (w *World) initComms() {
	build := func(members []int, id uint32) *shared {
		sh := &shared{members: members, slots: make([]contribution, len(members))}
		if w.dist == nil {
			sh.bar = newBarrier(len(members))
			return sh
		}
		me := w.dist.Group.Proc()
		d := &distComm{w: w, id: id, leader: -1}
		seen := make(map[int]bool)
		for m, r := range members {
			if w.procOf[r] == me {
				d.local = append(d.local, m)
				if d.leader < 0 {
					d.leader = m
				}
			} else {
				d.remote = append(d.remote, m)
				if !seen[w.procOf[r]] {
					seen[w.procOf[r]] = true
					d.remoteProcs = append(d.remoteProcs, w.procOf[r])
				}
			}
		}
		sh.bar = newBarrier(len(d.local))
		d.gbar = newBarrier(len(d.local))
		sh.dist = d
		return sh
	}
	all := make([]int, w.size)
	for i := range all {
		all[i] = i
	}
	w.world = build(all, 0)
	w.rows = make([]*shared, w.mesh.Rows)
	for r := 0; r < w.mesh.Rows; r++ {
		m := make([]int, w.mesh.Cols)
		for c := 0; c < w.mesh.Cols; c++ {
			m[c] = w.mesh.RankAt(r, c)
		}
		w.rows[r] = build(m, uint32(1+r))
	}
	w.cols = make([]*shared, w.mesh.Cols)
	for c := 0; c < w.mesh.Cols; c++ {
		m := make([]int, w.mesh.Rows)
		for r := 0; r < w.mesh.Rows; r++ {
			m[r] = w.mesh.RankAt(r, c)
		}
		w.cols[c] = build(m, uint32(1+w.mesh.Rows+c))
	}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Distributed reports whether this world spans multiple processes.
func (w *World) Distributed() bool { return w.dist != nil }

// Group returns the process group backing a distributed world (nil on the
// in-process backend).
func (w *World) Group() *Group {
	if w.dist == nil {
		return nil
	}
	return w.dist.Group
}

// ProcOf returns the process hosting rank r (0 on the in-process backend,
// where everything is process 0).
func (w *World) ProcOf(r int) int {
	if w.procOf == nil {
		return 0
	}
	return w.procOf[r]
}

// IsLocal reports whether rank r runs as a goroutine in this process.
func (w *World) IsLocal(r int) bool {
	return w.procOf == nil || w.procOf[r] == w.dist.Group.Proc()
}

// LocalRanks lists the ranks this process hosts, ascending. On the
// in-process backend that is every rank.
func (w *World) LocalRanks() []int {
	out := make([]int, 0, w.size)
	for r := 0; r < w.size; r++ {
		if w.IsLocal(r) {
			out = append(out, r)
		}
	}
	return out
}

// Mesh returns the process mesh.
func (w *World) Mesh() topology.Mesh { return w.mesh }

// Machine returns the modeled machine.
func (w *World) Machine() topology.Machine { return w.machine }

// Epoch returns the world's membership epoch (0 for a freshly built world).
func (w *World) Epoch() int { return w.epoch }

// NodeOf returns the machine node hosting rank r in this epoch.
func (w *World) NodeOf(r int) int { return w.nodeOf[r] }

// RebuildMode selects how NextEpoch re-homes dead rank slots.
type RebuildMode int

// Rebuild modes.
const (
	// RebuildShrink re-homes each dead slot onto the nearest surviving rank
	// in its mesh row (wrapping; falling back to the lowest surviving rank if
	// the whole row died). The survivor's node is oversubscribed: it hosts
	// its own slot plus the adopted one, which re-owns the dead rank's vertex
	// range from checkpoint. No new hardware is required, at the cost of load
	// imbalance on the host node.
	RebuildShrink RebuildMode = iota
	// RebuildRestore spawns a replacement on a fresh spare node appended to
	// the machine. Load balance is preserved, at the cost of requiring a
	// spare and paying the full graph-tier checkpoint read on the newcomer.
	RebuildRestore
)

// String names the mode.
func (m RebuildMode) String() string {
	switch m {
	case RebuildShrink:
		return "shrink"
	case RebuildRestore:
		return "restore"
	}
	return fmt.Sprintf("rebuildmode(%d)", int(m))
}

// NextEpoch builds the successor world after the listed ranks fail-stopped.
// The mesh shape and rank count are preserved — every collective still
// rendezvouses over the full R×C mesh, which the 1.5D schedule requires — but
// the dead slots are re-homed per mode, and the epoch number advances. The
// survivors' in-memory rank state does NOT carry over: the new world has
// fresh rendezvous structures and every slot (survivor or replacement) is
// expected to reload its state from the latest complete checkpoint, which is
// the only state all members can agree on.
//
// The caller's dead list must be the membership-vote verdict, identical on
// every rank, or the survivors would rebuild divergent worlds.
func (w *World) NextEpoch(dead []int, mode RebuildMode) (*World, error) {
	if len(dead) == 0 {
		return nil, fmt.Errorf("comm: NextEpoch with no dead ranks")
	}
	isDead := make(map[int]bool, len(dead))
	for _, d := range dead {
		if d < 0 || d >= w.size {
			return nil, fmt.Errorf("comm: NextEpoch: dead rank %d out of [0,%d)", d, w.size)
		}
		isDead[d] = true
	}
	if len(isDead) == w.size {
		return nil, fmt.Errorf("comm: NextEpoch: all %d ranks dead, no survivors", w.size)
	}
	nw, err := NewWorldOpts(w.size, w.mesh, w.machine, w.opt)
	if err != nil {
		return nil, err
	}
	nw.epoch = w.epoch + 1
	copy(nw.nodeOf, w.nodeOf)
	if w.procOf != nil {
		copy(nw.procOf, w.procOf)
	}
	if len(w.evacProc) > 0 {
		nw.evacProc = make(map[int]bool, len(w.evacProc))
		for p := range w.evacProc {
			nw.evacProc[p] = true
		}
	}
	ds := make([]int, 0, len(isDead))
	for d := range isDead {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	// Restore mode prefers spare processes: a process that hosted no ranks in
	// the outgoing world is idle capacity, so each dead process's ranks are
	// re-homed onto one spare (ascending process order — a pure function of
	// the old mapping and the dead list, so every process picks the same
	// spares without an exchange). When spares run out, the dead slot folds
	// onto its hosting survivor's process as before. A spare that itself died
	// silently may be picked — its adopted ranks are then voted dead next
	// epoch, the spare joins the evacuated set, and the next spare takes
	// over, so progress is still bounded by the spare count. Processes an
	// earlier epoch evacuated host no ranks either, but they are corpses,
	// not capacity: evacProc keeps them out of the pool.
	var spares []int
	var spareOf map[int]int
	if mode == RebuildRestore && w.procOf != nil && w.dist != nil {
		hasRank := make([]bool, w.dist.Group.Procs())
		for _, p := range w.procOf {
			hasRank[p] = true
		}
		for p := range hasRank {
			if !hasRank[p] && !w.evacProc[p] {
				spares = append(spares, p)
			}
		}
		spareOf = make(map[int]int)
	}
	for _, d := range ds {
		// The hosting survivor: nearest surviving rank in the dead slot's
		// mesh row (wrapping), falling back to the lowest survivor.
		host := -1
		row, col := w.mesh.RowOf(d), w.mesh.ColOf(d)
		for off := 1; off < w.mesh.Cols; off++ {
			cand := w.mesh.RankAt(row, (col+off)%w.mesh.Cols)
			if !isDead[cand] {
				host = cand
				break
			}
		}
		if host < 0 { // whole row dead: lowest surviving rank
			for r := 0; r < w.size; r++ {
				if !isDead[r] {
					host = r
					break
				}
			}
		}
		switch mode {
		case RebuildRestore:
			nw.nodeOf[d] = nw.machine.Nodes
			nw.machine.Nodes++
		default: // RebuildShrink
			nw.nodeOf[d] = nw.nodeOf[host]
		}
		// Across processes: restore adopts a spare process when one is
		// available (all of a dead process's ranks move to the same spare);
		// otherwise — and always in shrink mode — the slot's goroutine folds
		// onto the host's process.
		if nw.procOf != nil {
			// The process that hosted the dead rank is a corpse from here on:
			// record it so no later epoch mistakes it for an idle spare.
			if nw.evacProc == nil {
				nw.evacProc = make(map[int]bool)
			}
			nw.evacProc[w.procOf[d]] = true
			target := nw.procOf[host]
			if mode == RebuildRestore && spareOf != nil {
				oldProc := w.procOf[d]
				if sp, ok := spareOf[oldProc]; ok {
					target = sp
				} else if len(spares) > 0 {
					target = spares[0]
					spareOf[oldProc] = target
					spares = spares[1:]
				}
			}
			nw.procOf[d] = target
		}
	}
	if nw.dist != nil {
		// Re-homing changed which members are local; rebuild the
		// communicator geometry (barrier sizes, leaders, remote targets).
		nw.initComms()
	}
	return nw, nil
}

// Run executes fn once per locally hosted rank, each on its own goroutine,
// and returns when all complete. On the in-process backend every rank is
// local; on the socket backend the remote ranks run inside their own
// processes' concurrent Run calls, with contributions exchanged over the
// wire. Panics in any local rank are re-raised after all goroutines stop.
func (w *World) Run(fn func(*Rank)) {
	if w.dist != nil {
		w.gen = w.dist.Group.beginRun(w.epoch)
	}
	local := w.LocalRanks()
	var wg sync.WaitGroup
	panics := make([]any, len(local))
	for idx, id := range local {
		wg.Add(1)
		go func(idx, id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[idx] = p
				}
			}()
			fn(w.newRank(id))
		}(idx, id)
	}
	wg.Wait()
	for idx, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("comm: rank %d panicked: %v", local[idx], p))
		}
	}
}

// Rank is one process's handle: its identity plus world/row/column
// communicators and its private traffic and fault stats.
type Rank struct {
	ID     int
	Row    int // mesh row
	Col    int // mesh column
	World  *Comm
	RowC   *Comm // communicator over my mesh row
	ColC   *Comm // communicator over my mesh column
	Stats  VolumeStats
	Faults FaultStats

	w    *World
	tr   *trace.Stream // nil unless WorldOptions.Trace is installed
	seq  int64         // collectives this rank has entered (transport keying)
	dead bool          // fail-stop latch: set by the first Kill action, never cleared
	iter int64         // engine-declared iteration label (-1 outside an iteration)
	tag  int           // engine-declared schedule-position label (-1 untagged)
}

// Faulty reports whether collectives on this rank's world can return errors
// at all: a fault transport is installed, or the world spans processes over
// the socket backend (where a peer can genuinely die mid-collective). The
// resilient engine keys its votes, snapshots and retries off this.
func (r *Rank) Faulty() bool { return r.w.opt.Transport != nil || r.w.dist != nil }

// Trace returns the rank's span stream, or nil when tracing is off. The
// stream is single-writer: only the goroutine occupying the rank slot may
// emit on it.
func (r *Rank) Trace() *trace.Stream { return r.tr }

// Dead reports whether this rank has fail-stopped. A dead rank keeps
// executing the collective schedule as a zombie (so rendezvous never
// deadlocks) but every collective it joins fails with ErrRankDead; its
// goroutine doubles as the failure detector, voting its own death on the
// control plane.
func (r *Rank) Dead() bool { return r.dead }

// Epoch returns the world epoch this rank is running in.
func (r *Rank) Epoch() int { return r.w.epoch }

// SetIter labels subsequent collectives with the engine's iteration number
// (-1 = outside any iteration). Purely advisory transport metadata.
func (r *Rank) SetIter(iter int64) { r.iter = iter }

// SetTag labels subsequent collectives with a schedule position (-1 =
// untagged). The core engine tags kernel collectives with their component
// index, so transports can target "the collective during component c".
func (r *Rank) SetTag(tag int) { r.tag = tag }

// intercept advances the rank's collective sequence number and consults the
// transport. It applies the delay (the rank sleeps before contributing) and
// records injected faults; Fail suppresses the sleep since a failed send
// never occupies the wire. A dead rank is not re-intercepted: it contributes
// a dead envelope to everything, forever.
func (r *Rank) intercept(kind Kind, commSize int) FaultAction {
	r.seq++
	t := r.w.opt.Transport
	if t == nil {
		return FaultAction{}
	}
	if r.dead {
		return FaultAction{Kill: true}
	}
	act := t.Intercept(Call{
		Rank:      r.ID,
		Supernode: r.w.machine.Supernode(r.w.nodeOf[r.ID]),
		Kind:      kind,
		Seq:       r.seq,
		CommSize:  commSize,
		Iter:      r.iter,
		Tag:       r.tag,
	})
	if act.Kill {
		r.dead = true
		r.Faults.Kills++
		return act
	}
	if act.Fail {
		r.Faults.Failures++
		return act
	}
	if act.Withhold {
		r.Faults.Stalls++
	}
	if act.Delay > 0 {
		r.Faults.Delays++
		r.Faults.DelayTime += act.Delay
		time.Sleep(act.Delay)
	}
	return act
}

func (w *World) newRank(id int) *Rank {
	r := &Rank{ID: id, Row: w.mesh.RowOf(id), Col: w.mesh.ColOf(id), w: w, iter: -1, tag: -1}
	if w.streams != nil {
		r.tr = w.streams[id]
	}
	r.World = &Comm{sh: w.world, me: id, rank: r, scope: "world"}
	r.RowC = &Comm{sh: w.rows[r.Row], me: r.Col, rank: r, scope: "row"}
	r.ColC = &Comm{sh: w.cols[r.Col], me: r.Row, rank: r, scope: "col"}
	return r
}

// Comm is one rank's handle on a communicator.
type Comm struct {
	sh    *shared
	me    int // my member index
	rank  *Rank
	scope string // "world", "row" or "col" (trace span labeling)
	seq   uint64 // collectives entered on this communicator this Run (wire keying)
}

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.sh.members) }

// Rank returns the caller's member index within the communicator.
func (c *Comm) Rank() int { return c.me }

// WorldRank returns the world rank of member i.
func (c *Comm) WorldRank(i int) int { return c.sh.members[i] }

// Barrier synchronizes all members. Under fault injection it behaves like
// the other collectives: a failed or withheld arrival surfaces as a typed
// error on every member (there is no payload, so corruption cannot occur).
func (c *Comm) Barrier() error {
	seq := c.nextSeq()
	tok := c.traceEnter()
	c.rank.Stats.Calls[KindBarrier]++
	act := c.rank.intercept(KindBarrier, c.Size())
	ctr := contribution{delay: act.Delay, withheld: act.Withhold, failed: act.Fail, dead: act.Kill}
	c.sh.slots[c.me] = ctr
	c.distSend(seq, wireData, &ctr, nil)
	c.rendezvous(seq, nil)
	err := c.verify(KindBarrier, nil)
	c.complete(seq)
	c.traceExit("barrier", tok, err)
	return err
}

// traceToken carries a collective span's entry state between traceEnter and
// traceExit. The zero value means tracing is off.
type traceToken struct {
	start int64
	base  VolumeStats
	on    bool
}

// traceEnter opens a collective span: the one nil check the hot path pays
// when tracing is off.
func (c *Comm) traceEnter() traceToken {
	tr := c.rank.tr
	if tr == nil {
		return traceToken{}
	}
	return traceToken{start: tr.Now(), base: c.rank.Stats, on: true}
}

// traceExit closes a collective span, attributing the payload bytes the
// caller sent during it, split intra/inter supernode. Spans nest like a
// flame graph: a composite collective's span covers the bytes of the inner
// collectives it issued (total semantics, not self).
func (c *Comm) traceExit(name string, tok traceToken, err error) {
	if !tok.on {
		return
	}
	tr := c.rank.tr
	d := c.rank.Stats.Delta(&tok.base)
	intra, inter := d.Totals()
	sp := trace.Span{
		Kind:  trace.KindCollective,
		Epoch: c.rank.w.epoch,
		Iter:  c.rank.iter,
		Step:  -1,
		Tag:   c.rank.tag,
		Name:  name + "/" + c.scope,
		Start: tok.start,
		Dur:   tr.Now() - tok.start,

		IntraBytes: intra,
		InterBytes: inter,
	}
	if err != nil {
		sp.Err = 1
	}
	tr.Emit(sp)
}

// faulty reports whether envelope verification is needed at all: under an
// injected-fault transport, and always on the socket backend — a real peer
// process can die or corrupt a frame without any transport installed, and
// the failure detector's dead-peer synthesis only surfaces as ErrRankDead
// if verify runs.
func (c *Comm) faulty() bool {
	return c.rank.w.opt.Transport != nil || c.rank.w.dist != nil
}

// verify inspects the contributions posted for the current collective and
// returns the agreed typed error, or nil. It must run between the opening and
// closing barriers. members lists the member indices that contributed (nil
// means all); every member scans in the same order over the same metadata, so
// all members of the communicator reach the same verdict — precedence is
// rank death, then outright failure, then stall, then corruption, then
// deadline, ties broken by lowest member index. Death ranks first because it
// is the only non-retryable verdict: a retry loop that saw ErrCollectiveFailed
// when a dead rank was also present would spin pointlessly.
func (c *Comm) verify(kind Kind, members []int) error {
	if !c.faulty() {
		return nil
	}
	k := c.Size()
	at := func(i int) (int, *contribution) {
		if members != nil {
			return members[i], &c.sh.slots[members[i]]
		}
		return i, &c.sh.slots[i]
	}
	n := k
	if members != nil {
		n = len(members)
	}
	fail := func(j int, sentinel error) error {
		c.rank.Faults.Errors++
		return &CollectiveError{Kind: kind, Seq: c.rank.seq, Rank: c.sh.members[j], Err: sentinel}
	}
	for i := 0; i < n; i++ {
		if j, ct := at(i); ct.dead {
			return fail(j, ErrRankDead)
		}
	}
	for i := 0; i < n; i++ {
		if j, ct := at(i); ct.failed {
			return fail(j, ErrCollectiveFailed)
		}
	}
	for i := 0; i < n; i++ {
		if j, ct := at(i); ct.withheld {
			return fail(j, ErrRankStalled)
		}
	}
	for i := 0; i < n; i++ {
		if j, ct := at(i); ct.resum != nil && ct.resum() != ct.declared {
			return fail(j, ErrPayloadCorrupted)
		}
	}
	if d := c.rank.w.opt.Deadline; d > 0 {
		for i := 0; i < n; i++ {
			if j, ct := at(i); ct.delay > d {
				return fail(j, ErrDeadlineExceeded)
			}
		}
	}
	return nil
}

// account records sending n bytes from the caller to member dst under kind.
func (c *Comm) account(kind Kind, dst int, n int64) {
	if n == 0 {
		return
	}
	// Supernode locality follows the hosting nodes of the current epoch, not
	// the rank IDs: after a shrink rebuild an adopted slot lives on its
	// host's node, so its traffic prices as that node's.
	src := c.rank.w.nodeOf[c.sh.members[c.me]]
	d := c.rank.w.nodeOf[c.sh.members[dst]]
	if c.rank.w.machine.SameSupernode(src, d) {
		c.rank.Stats.IntraBytes[kind] += n
	} else {
		c.rank.Stats.InterBytes[kind] += n
	}
}
