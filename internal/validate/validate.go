// Package validate implements the Graph 500 result validation: the checks
// the specification requires on every BFS output before a run may be
// reported. The paper's result "is validated according to Graph 500
// Specification 2.0" (Section 6.1); these are the same structural checks.
package validate

import (
	"fmt"

	"repro/internal/rmat"
)

// Checks performed (Graph 500 spec §BFS validation):
//  1. the parent array forms a tree rooted at root (root is its own parent,
//     every chain reaches the root, no cycles);
//  2. tree edges connect vertices whose BFS levels differ by exactly one;
//  3. every input edge connects vertices whose levels differ by at most one,
//     and its endpoints are either both reached or both unreached;
//  4. every claimed tree edge (parent[v], v) exists in the input edge list;
//  5. exactly the connected component of the root is visited (implied by
//     1-4 but asserted directly for defense in depth).

// Result carries validation diagnostics.
type Result struct {
	Reached int64 // vertices in the BFS tree (including root)
	Depth   int64 // maximum BFS level
}

// BFS validates parent against the original undirected edge list.
// n is the vertex count. It returns diagnostics or a descriptive error.
func BFS(n int64, edges []rmat.Edge, root int64, parent []int64) (*Result, error) {
	if int64(len(parent)) != n {
		return nil, fmt.Errorf("validate: parent length %d, want %d", len(parent), n)
	}
	if root < 0 || root >= n {
		return nil, fmt.Errorf("validate: root %d out of range", root)
	}
	// Check 1: rootedness and acyclicity via level construction.
	if parent[root] != root {
		return nil, fmt.Errorf("validate: parent[root]=%d, want %d", parent[root], root)
	}
	levels := make([]int64, n)
	for i := range levels {
		levels[i] = -1
	}
	levels[root] = 0
	var reached, depth int64 = 1, 0
	for v := int64(0); v < n; v++ {
		if parent[v] < 0 || levels[v] >= 0 {
			if parent[v] < -1 || parent[v] >= n {
				return nil, fmt.Errorf("validate: parent[%d]=%d out of range", v, parent[v])
			}
			continue
		}
		var path []int64
		u := v
		for levels[u] < 0 {
			path = append(path, u)
			u = parent[u]
			if u < 0 || u >= n {
				return nil, fmt.Errorf("validate: chain from %d leaves range at %d", v, u)
			}
			if int64(len(path)) > n {
				return nil, fmt.Errorf("validate: parent cycle through %d", v)
			}
		}
		lvl := levels[u]
		for i := len(path) - 1; i >= 0; i-- {
			lvl++
			levels[path[i]] = lvl
			reached++
			if lvl > depth {
				depth = lvl
			}
		}
	}
	// Check 2: tree edges span exactly one level.
	for v := int64(0); v < n; v++ {
		if parent[v] < 0 || v == root {
			continue
		}
		if levels[v] != levels[parent[v]]+1 {
			return nil, fmt.Errorf("validate: tree edge %d->%d spans levels %d->%d",
				parent[v], v, levels[parent[v]], levels[v])
		}
	}
	// Checks 3 and 5: every input edge is level-consistent and does not
	// escape the visited component.
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		lu, lv := levels[e.U], levels[e.V]
		if (lu < 0) != (lv < 0) {
			return nil, fmt.Errorf("validate: edge (%d,%d) crosses the visited boundary (levels %d,%d)",
				e.U, e.V, lu, lv)
		}
		if lu >= 0 {
			d := lu - lv
			if d < -1 || d > 1 {
				return nil, fmt.Errorf("validate: edge (%d,%d) spans %d levels", e.U, e.V, d)
			}
		}
	}
	// Check 4: every tree edge exists in the input.
	present := make(map[[2]int64]bool, len(edges))
	for _, e := range edges {
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		present[[2]int64{a, b}] = true
	}
	for v := int64(0); v < n; v++ {
		p := parent[v]
		if p < 0 || v == root {
			continue
		}
		a, b := p, v
		if a > b {
			a, b = b, a
		}
		if !present[[2]int64{a, b}] {
			return nil, fmt.Errorf("validate: tree edge (%d,%d) not in input", p, v)
		}
	}
	return &Result{Reached: reached, Depth: depth}, nil
}
