package validate

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/rmat"
)

func TestAcceptsSequentialBFS(t *testing.T) {
	cfg := rmat.Config{Scale: 10, Seed: 1}
	edges := rmat.Generate(cfg)
	g := graph.FromEdges(cfg.NumVertices(), edges, graph.BuildOptions{Symmetrize: true, DropSelfLoops: true})
	for _, root := range []int64{0, 1, 77, 1023} {
		parent := g.SequentialBFS(root)
		res, err := BFS(cfg.NumVertices(), edges, root, parent)
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		want := int64(0)
		for _, p := range parent {
			if p >= 0 {
				want++
			}
		}
		if res.Reached != want {
			t.Fatalf("root %d: reached %d, want %d", root, res.Reached, want)
		}
	}
}

func mustFail(t *testing.T, n int64, edges []rmat.Edge, root int64, parent []int64, wantSub string) {
	t.Helper()
	_, err := BFS(n, edges, root, parent)
	if err == nil {
		t.Fatalf("validation accepted corrupt result (wanted error containing %q)", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not mention %q", err, wantSub)
	}
}

func TestRejectsBadRoot(t *testing.T) {
	edges := []rmat.Edge{{U: 0, V: 1}}
	mustFail(t, 2, edges, 0, []int64{1, 0}, "parent[root]")
}

func TestRejectsCycle(t *testing.T) {
	edges := []rmat.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}
	// 2 and 3 point at each other.
	mustFail(t, 4, edges, 0, []int64{0, 0, 3, 2}, "cycle")
}

func TestRejectsLevelSkip(t *testing.T) {
	// Path 0-1-2-3 but parent[3]=0 claims a non-edge shortcut.
	edges := []rmat.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}
	mustFail(t, 4, edges, 0, []int64{0, 0, 1, 0}, "not in input")
}

func TestRejectsFakeTreeEdge(t *testing.T) {
	edges := []rmat.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}}
	// parent[3] = 0: (0,3) is not an edge.
	mustFail(t, 4, edges, 0, []int64{0, 0, 0, 0}, "not in input")
}

func TestRejectsUnreachedNeighbor(t *testing.T) {
	// 0-1 edge but 1 left unvisited.
	edges := []rmat.Edge{{U: 0, V: 1}}
	mustFail(t, 2, edges, 0, []int64{0, -1}, "visited boundary")
}

func TestRejectsCrossLevelInputEdge(t *testing.T) {
	// Graph: 0-1, 1-2, 0-3, 3-4, 4-2. True BFS from 0: level(2)=2.
	// Forged parents claim level(2)=3 via 4, violating the 1-2 input edge
	// (levels 1 and 3).
	edges := []rmat.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 3}, {U: 3, V: 4}, {U: 4, V: 2}}
	mustFail(t, 5, edges, 0, []int64{0, 0, 4, 0, 3}, "spans")
}

func TestRejectsWrongLengths(t *testing.T) {
	if _, err := BFS(3, nil, 0, []int64{0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := BFS(3, nil, 9, []int64{0, -1, -1}); err == nil {
		t.Fatal("bad root accepted")
	}
}

func TestDisconnectedComponentOK(t *testing.T) {
	edges := []rmat.Edge{{U: 0, V: 1}, {U: 2, V: 3}}
	res, err := BFS(4, edges, 0, []int64{0, 0, -1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 2 || res.Depth != 1 {
		t.Fatalf("reached=%d depth=%d", res.Reached, res.Depth)
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	edges := []rmat.Edge{{U: 0, V: 0}, {U: 0, V: 1}}
	if _, err := BFS(2, edges, 0, []int64{0, 0}); err != nil {
		t.Fatal(err)
	}
}
