package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// chromeEvent is one entry of the Chrome trace_event format (the JSON Array
// flavor wrapped in an object, which chrome://tracing and Perfetto both
// accept). Timestamps are microseconds; "X" events are complete spans, "i"
// events instants, "M" events metadata (thread names).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTID maps a span to a stable Chrome thread ID: ranks occupy even
// slots so their checkpoint-writer companions (kind == checkpoint, emitted
// by the writer goroutine) can sit on the adjacent odd slot, and the engine
// stream (rank -1) renders as thread 0 above them all.
func chromeTID(sp *Span) int {
	if sp.Rank < 0 {
		return 0
	}
	tid := 1 + 2*sp.Rank
	if sp.Kind == KindCheckpoint && sp.Name == "commit" {
		tid++ // async writer goroutine: own lane
	}
	return tid
}

// WriteChrome converts the merged timeline into Chrome trace_event JSON for
// flame-style inspection. Load the file in chrome://tracing or
// https://ui.perfetto.dev.
func (t *Tracer) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	events := make([]chromeEvent, 0, len(spans)+8)

	// Thread-name metadata: one per distinct tid seen.
	names := map[int]string{}
	for i := range spans {
		sp := &spans[i]
		tid := chromeTID(sp)
		if _, ok := names[tid]; !ok {
			switch {
			case sp.Rank < 0:
				names[tid] = "engine"
			case tid%2 == 0:
				names[tid] = rankLabel(sp.Rank) + " ckpt"
			default:
				names[tid] = rankLabel(sp.Rank)
			}
		}
	}
	tids := make([]int, 0, len(names))
	for tid := range names {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		events = append(events, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 0, TID: tid,
			Args: map[string]any{"name": names[tid]},
		})
	}

	for i := range spans {
		sp := &spans[i]
		ev := chromeEvent{
			Name: chromeName(sp),
			Cat:  sp.Kind.String(),
			TS:   float64(sp.Start) / 1e3,
			PID:  0,
			TID:  chromeTID(sp),
			Args: chromeArgs(sp),
		}
		if sp.Dur > 0 {
			ev.Phase = "X"
			ev.Dur = float64(sp.Dur) / 1e3
		} else {
			ev.Phase = "i"
			ev.Scope = "t"
		}
		events = append(events, ev)
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events}); err != nil {
		return err
	}
	return bw.Flush()
}

func rankLabel(r int) string {
	return "rank " + strconv.Itoa(r)
}

func chromeName(sp *Span) string {
	name := sp.Name
	if sp.Dir != "" && sp.Dir != "-" {
		name += " (" + sp.Dir + ")"
	}
	return name
}

func chromeArgs(sp *Span) map[string]any {
	args := map[string]any{"iter": sp.Iter}
	if sp.Step >= 0 {
		args["step"] = sp.Step
	}
	if sp.Attempt > 0 {
		args["attempt"] = sp.Attempt
	}
	if sp.Edges > 0 {
		args["edges"] = sp.Edges
	}
	if sp.IntraBytes > 0 {
		args["intra_bytes"] = sp.IntraBytes
	}
	if sp.InterBytes > 0 {
		args["inter_bytes"] = sp.InterBytes
	}
	if sp.Bytes > 0 {
		args["bytes"] = sp.Bytes
	}
	if sp.Err != 0 {
		args["err"] = sp.Err
	}
	for k, v := range sp.Args {
		args[k] = v
	}
	return args
}
