// Package trace is the per-iteration kernel tracing substrate of the
// evaluation pipeline: a low-overhead span recorder that captures what the
// paper's Figures 10/11/15 are built from — one span per (iteration,
// component, direction, step) on every rank, plus per-collective payload
// volumes, direction-decision records, and checkpoint/recovery accounting —
// and merges the per-rank streams into a single run timeline.
//
// The recorder is designed so the engine's hot path pays exactly one nil
// pointer check when tracing is off: every instrumented package holds a
// *Stream that is nil unless a Tracer was installed, and guards its hook
// with `if tr != nil`. When tracing is on, each recording goroutine owns its
// own Stream (rank goroutines, checkpoint writer goroutines, the engine),
// so Emit is an unsynchronized slice append with no cross-rank contention;
// only stream creation takes the tracer lock.
//
// Two export formats cover the two consumers: WriteJSONL dumps the merged
// timeline one span per line for machine processing (the `bfsbench -trace`
// format), and WriteChrome converts it to the Chrome trace_event JSON that
// chrome://tracing and Perfetto render as per-rank flame graphs.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Kind classifies a span.
type Kind uint8

// Span kinds.
const (
	// KindKernel is one component kernel execution (iteration, component,
	// direction, step) — the Figure 10 unit.
	KindKernel Kind = iota
	// KindSync is a delegated hub-state synchronization (column+row
	// allreduce-OR pair).
	KindSync
	// KindReduce is a delegated-parent reduction.
	KindReduce
	// KindCollective is one comm collective (enter to exit), with its payload
	// bytes split intra/inter supernode — the Figure 11 unit.
	KindCollective
	// KindDecision is one chooseDirections record: the globally consistent
	// inputs and the per-component outcome.
	KindDecision
	// KindCheckpoint is checkpoint-writer work: a synchronous capture or an
	// asynchronous segment commit.
	KindCheckpoint
	// KindRecovery is resilience work: a retry, a checkpoint replay, a world
	// rebuild.
	KindRecovery
	// KindEvent is an engine lifecycle marker (run start/end).
	KindEvent
	// KindBatch is one batched multi-source iteration record: how many
	// queries rode the sweep (live vs already-converged planes).
	KindBatch
	numKinds
)

// String names the kind as emitted in the JSONL dump.
func (k Kind) String() string {
	switch k {
	case KindKernel:
		return "kernel"
	case KindSync:
		return "sync"
	case KindReduce:
		return "reduce"
	case KindCollective:
		return "collective"
	case KindDecision:
		return "decision"
	case KindCheckpoint:
		return "checkpoint"
	case KindRecovery:
		return "recovery"
	case KindEvent:
		return "event"
	case KindBatch:
		return "batch"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Span is one recorded interval (or instant, when Dur is 0) on one stream.
// Start and Dur are nanoseconds on the tracer's clock (zero = tracer
// creation). The zero value of every optional field is omitted from the
// JSONL encoding.
type Span struct {
	Kind Kind
	// Rank is the world rank the span belongs to; -1 marks engine-level
	// spans (world rebuilds, run markers).
	Rank int
	// Epoch is the world membership epoch the span ran under.
	Epoch int
	// Iter is the engine iteration (-1 outside any iteration, e.g. setup,
	// bootstrap checkpoint, final reduction).
	Iter int64
	// Step is the engine step within the iteration (0..3; -1 when the span
	// is not step-scoped).
	Step int
	// Attempt is the retry attempt the span executed under (0 = first try).
	// Spans from failed attempts stay in the trace — the timeline shows what
	// actually ran — while internal/stats rolls re-entered spans back so
	// aggregates never double-count (see DESIGN.md §9).
	Attempt int
	// Tag is the engine schedule tag active when the span was recorded
	// (component index 0..5, or one of core's TagEpilogue/TagReduce/TagSetup;
	// -1 untagged). Only meaningful on collective spans.
	Tag int
	// Name identifies the span within its kind: the component for kernels,
	// the collective kind and communicator scope ("alltoallv/row") for
	// collectives, the event name otherwise.
	Name string
	// Dir is the traversal direction for kernel spans (push/pull/skip).
	Dir string
	// Start is nanoseconds since the tracer's clock zero; Dur the span's
	// wall-clock length (0 for instant events).
	Start, Dur int64
	// Edges counts adjacency entries scanned by a kernel span.
	Edges int64
	// IntraBytes/InterBytes are payload bytes sent during the span, split by
	// supernode locality (collective and kernel spans).
	IntraBytes, InterBytes int64
	// Bytes is payload size for checkpoint and replay spans.
	Bytes int64
	// Err is 1 when the spanned operation returned an error.
	Err int64
	// Args carries kind-specific integer arguments (decision inputs, retry
	// masks). Nil for most spans.
	Args map[string]int64
}

// jsonSpan is the JSONL wire form of a Span.
type jsonSpan struct {
	Kind    string           `json:"kind"`
	Rank    int              `json:"rank"`
	Epoch   int              `json:"epoch,omitempty"`
	Iter    int64            `json:"iter"`
	Step    int              `json:"step"`
	Attempt int              `json:"attempt,omitempty"`
	Tag     int              `json:"tag,omitempty"`
	Name    string           `json:"name"`
	Dir     string           `json:"dir,omitempty"`
	StartNs int64            `json:"start_ns"`
	DurNs   int64            `json:"dur_ns"`
	Edges   int64            `json:"edges,omitempty"`
	Intra   int64            `json:"intra_bytes,omitempty"`
	Inter   int64            `json:"inter_bytes,omitempty"`
	Bytes   int64            `json:"bytes,omitempty"`
	Err     int64            `json:"err,omitempty"`
	Args    map[string]int64 `json:"args,omitempty"`
}

// Tracer owns a run's streams and its clock. Create one per benchmark
// process, hand it to the engine via Options, and export after the runs
// complete. Stream creation and merging are synchronized; recording is not
// (each stream has exactly one writing goroutine).
type Tracer struct {
	start time.Time

	mu      sync.Mutex
	streams []*Stream
}

// New creates a tracer whose clock starts now.
func New() *Tracer {
	return &Tracer{start: time.Now()}
}

// Now returns nanoseconds since the tracer's clock zero.
func (t *Tracer) Now() int64 { return int64(time.Since(t.start)) }

// NewStream registers a new single-writer span stream. rank is the world
// rank the stream records for (-1 for engine-level streams).
func (t *Tracer) NewStream(rank int) *Stream {
	s := &Stream{t: t, rank: rank}
	t.mu.Lock()
	t.streams = append(t.streams, s)
	t.mu.Unlock()
	return s
}

// Reset discards every recorded span while keeping the registered streams
// and the clock. It must not run concurrently with recording; benchmarks use
// it between runs to bound memory.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.streams {
		s.spans = s.spans[:0]
	}
}

// Spans merges every stream into one timeline ordered by start time (ties
// broken by rank, then kind). Call only after the recording goroutines have
// finished (World.Run and Writer.Close have returned).
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	for _, s := range t.streams {
		out = append(out, s.spans...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// WriteJSONL writes the merged timeline one JSON span per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range t.Spans() {
		js := jsonSpan{
			Kind: sp.Kind.String(), Rank: sp.Rank, Epoch: sp.Epoch,
			Iter: sp.Iter, Step: sp.Step, Attempt: sp.Attempt, Tag: sp.Tag,
			Name: sp.Name, Dir: sp.Dir, StartNs: sp.Start, DurNs: sp.Dur,
			Edges: sp.Edges, Intra: sp.IntraBytes, Inter: sp.InterBytes,
			Bytes: sp.Bytes, Err: sp.Err, Args: sp.Args,
		}
		if err := enc.Encode(js); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Stream is a single-writer span sink. Exactly one goroutine may Emit on a
// stream at a time (rank goroutines, writer goroutines and the engine each
// get their own); this is what keeps recording lock-free.
type Stream struct {
	t     *Tracer
	rank  int
	spans []Span
}

// Rank returns the world rank the stream records for.
func (s *Stream) Rank() int { return s.rank }

// Fork registers a sibling stream for the same rank, for a helper goroutine
// (e.g. a rank's async checkpoint writer) that must not share the rank
// goroutine's single-writer stream.
func (s *Stream) Fork() *Stream { return s.t.NewStream(s.rank) }

// Now returns nanoseconds on the owning tracer's clock.
func (s *Stream) Now() int64 { return s.t.Now() }

// Emit appends a span. The span's Rank is always the stream's: a stream
// records for exactly one rank.
func (s *Stream) Emit(sp Span) {
	sp.Rank = s.rank
	s.spans = append(s.spans, sp)
}
