package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpansMergeSortedAcrossStreams(t *testing.T) {
	tr := New()
	a := tr.NewStream(0)
	b := tr.NewStream(1)
	a.Emit(Span{Kind: KindKernel, Name: "EH2EH", Start: 30, Dur: 5})
	b.Emit(Span{Kind: KindKernel, Name: "L2L", Start: 10, Dur: 5})
	a.Emit(Span{Kind: KindSync, Name: "hub_sync", Start: 20, Dur: 2})
	got := tr.Spans()
	if len(got) != 3 {
		t.Fatalf("got %d spans, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Start < got[i-1].Start {
			t.Fatalf("spans out of order at %d: %d after %d", i, got[i].Start, got[i-1].Start)
		}
	}
	if got[0].Name != "L2L" || got[0].Rank != 1 {
		t.Fatalf("first span = %+v, want rank 1's L2L", got[0])
	}
}

func TestEmitStampsStreamRank(t *testing.T) {
	tr := New()
	s := tr.NewStream(7)
	s.Emit(Span{Kind: KindEvent, Name: "x"})
	if got := tr.Spans()[0].Rank; got != 7 {
		t.Fatalf("span rank = %d, want 7", got)
	}
}

func TestWriteJSONLRoundTrips(t *testing.T) {
	tr := New()
	s := tr.NewStream(2)
	s.Emit(Span{Kind: KindKernel, Epoch: 1, Iter: 3, Step: 0, Name: "EH2EH",
		Dir: "pull", Start: 100, Dur: 50, Edges: 1234, IntraBytes: 64, InterBytes: 32})
	s.Emit(Span{Kind: KindDecision, Iter: 3, Step: -1, Name: "choose_directions",
		Start: 90, Args: map[string]int64{"active_l": 17}})

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line not JSON: %v: %s", err, sc.Text())
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	// Sorted by start: decision (90) first.
	if lines[0]["kind"] != "decision" || lines[0]["args"].(map[string]any)["active_l"].(float64) != 17 {
		t.Fatalf("first line = %v", lines[0])
	}
	k := lines[1]
	for key, want := range map[string]any{
		"kind": "kernel", "name": "EH2EH", "dir": "pull", "rank": float64(2),
		"iter": float64(3), "edges": float64(1234), "intra_bytes": float64(64),
		"inter_bytes": float64(32), "start_ns": float64(100), "dur_ns": float64(50),
	} {
		if k[key] != want {
			t.Errorf("kernel line[%q] = %v, want %v", key, k[key], want)
		}
	}
}

func TestWriteChromeIsValidTraceEventJSON(t *testing.T) {
	tr := New()
	eng := tr.NewStream(-1)
	eng.Emit(Span{Kind: KindEvent, Name: "run_start", Start: 0})
	s := tr.NewStream(0)
	s.Emit(Span{Kind: KindKernel, Iter: 0, Step: 0, Name: "EH2EH", Dir: "push", Start: 10, Dur: 20})
	s.Emit(Span{Kind: KindCheckpoint, Iter: 0, Step: -1, Name: "commit", Start: 15, Dur: 8, Bytes: 512})

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output not JSON: %v", err)
	}
	var complete, instant, meta int
	tids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
		case "i":
			instant++
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
		tids[ev["tid"].(float64)] = true
	}
	if complete != 2 || instant != 1 {
		t.Fatalf("complete=%d instant=%d, want 2 and 1", complete, instant)
	}
	if meta == 0 {
		t.Fatal("no thread_name metadata emitted")
	}
	// Engine (tid 0), rank 0 (tid 1), and the writer lane (tid 2) are distinct.
	if len(tids) != 3 {
		t.Fatalf("tids = %v, want 3 distinct lanes", tids)
	}
	if !strings.Contains(buf.String(), `"name":"rank 0 ckpt"`) {
		t.Fatal("checkpoint writer lane not named")
	}
}

// TestConcurrentStreamsUnderRace drives one stream per goroutine in parallel
// — the usage pattern of rank goroutines plus checkpoint writers — and must
// pass under -race.
func TestConcurrentStreamsUnderRace(t *testing.T) {
	tr := New()
	const goroutines, perG = 16, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := tr.NewStream(g)
			for i := 0; i < perG; i++ {
				s.Emit(Span{Kind: KindKernel, Iter: int64(i), Step: i % 4,
					Name: "L2L", Start: s.Now(), Dur: 1})
			}
		}(g)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != goroutines*perG {
		t.Fatalf("merged %d spans, want %d", got, goroutines*perG)
	}
}

func TestResetKeepsStreamsUsable(t *testing.T) {
	tr := New()
	s := tr.NewStream(0)
	s.Emit(Span{Kind: KindKernel, Name: "a"})
	tr.Reset()
	if got := len(tr.Spans()); got != 0 {
		t.Fatalf("spans after reset = %d, want 0", got)
	}
	s.Emit(Span{Kind: KindKernel, Name: "b"})
	if got := tr.Spans(); len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("spans after re-emit = %+v", got)
	}
}
