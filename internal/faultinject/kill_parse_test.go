package faultinject

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/comm"
)

func TestParseKillClause(t *testing.T) {
	p, err := Parse("kill@rank=3,iter=2")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Kills) != 1 {
		t.Fatalf("got %d kill specs, want 1", len(p.Kills))
	}
	k := p.Kills[0]
	if k.Rank != 3 || k.Iter != 2 || k.Seq != 0 {
		t.Fatalf("kill spec %+v, want rank 3 iter 2", k)
	}
	if got := p.String(); got != "kill@rank=3,iter=2" {
		t.Fatalf("String() = %q", got)
	}
}

func TestParseMultipleKillClauses(t *testing.T) {
	spec := "seed=9,kill@rank=3,iter=2,kill@rank=7,seq=5"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 || len(p.Kills) != 2 {
		t.Fatalf("plan %+v: want seed 9 and 2 kills", p)
	}
	// iter/seq bind to the most recent clause.
	if p.Kills[0].Rank != 3 || p.Kills[0].Iter != 2 || p.Kills[0].Seq != 0 {
		t.Fatalf("first kill %+v", p.Kills[0])
	}
	if p.Kills[1].Rank != 7 || p.Kills[1].Iter != -1 || p.Kills[1].Seq != 5 {
		t.Fatalf("second kill %+v", p.Kills[1])
	}
	if got := p.String(); got != spec {
		t.Fatalf("String() = %q, want %q", got, spec)
	}
	// And the rendering re-parses to the same plan.
	q, err := Parse(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if q.Seed != p.Seed || len(q.Kills) != 2 ||
		q.Kills[1].Rank != 7 || q.Kills[1].Iter != -1 || q.Kills[1].Seq != 5 {
		t.Fatalf("re-parsed plan %+v differs", q)
	}
}

func TestKillSpecFiresOnceOnItsIteration(t *testing.T) {
	p, err := Parse("kill@rank=2,iter=1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Intercept(comm.Call{Rank: 2, Iter: 0, Seq: 1}).Kill {
		t.Fatal("kill fired outside its iteration")
	}
	if p.Intercept(comm.Call{Rank: 1, Iter: 1, Seq: 2}).Kill {
		t.Fatal("kill fired on the wrong rank")
	}
	if !p.Intercept(comm.Call{Rank: 2, Iter: 1, Seq: 3}).Kill {
		t.Fatal("kill did not fire on its trigger call")
	}
	// The latch models real fail-stop: a replacement rank replaying the same
	// iteration after recovery must not be re-killed.
	if p.Intercept(comm.Call{Rank: 2, Iter: 1, Seq: 4}).Kill {
		t.Fatal("kill fired twice")
	}
}

func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		spec      string
		line, col int
		contains  string
	}{
		{"iter=2", 1, 1, "kill@rank=N"},
		{"seq=5", 1, 1, "kill@rank=N"},
		{"kill@rank=x", 1, 11, "bad kill rank"},
		{"kill@iter=2", 1, 1, "kill clause must open with kill@rank=N"},
		{"seed=", 1, 6, "empty value"},
		{"seed=1, fail=", 1, 14, "empty value"},
		{"seed=1,\nkill@rank=2,badkey=3", 2, 13, "unknown key"},
		{"seed=1\nfail=x", 2, 6, "bad value"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec)
		if err == nil {
			t.Fatalf("Parse(%q) accepted a malformed spec", tc.spec)
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("Parse(%q) error %T is not *ParseError", tc.spec, err)
		}
		if pe.Line != tc.line || pe.Col != tc.col {
			t.Fatalf("Parse(%q) reported %d:%d, want %d:%d (%v)", tc.spec, pe.Line, pe.Col, tc.line, tc.col, err)
		}
		if !strings.Contains(pe.Msg, tc.contains) {
			t.Fatalf("Parse(%q) message %q does not mention %q", tc.spec, pe.Msg, tc.contains)
		}
	}
}

func TestParseNewlinesAsSeparators(t *testing.T) {
	p, err := Parse("seed=4\nkill@rank=1\niter=3\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 4 || len(p.Kills) != 1 || p.Kills[0].Rank != 1 || p.Kills[0].Iter != 3 {
		t.Fatalf("plan %+v", p)
	}
}
