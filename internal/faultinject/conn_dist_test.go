package faultinject

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/topology"
	"repro/internal/wire"
)

// TestConnDropIsAbsorbedByReconnect wires a parsed drop@conn plan into a real
// two-process socket world: the drop cuts the connection mid-run, and the
// wire layer's reconnect + replay must absorb it — every collective still
// returns the right answer, no rank sees an error, and the endpoint counters
// show the reconnect actually happened.
func TestConnDropIsAbsorbedByReconnect(t *testing.T) {
	plan, err := Parse("drop@conn=0-1,frame=2,hang@conn=1-0,frame=4,dur=40ms")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	addrs := []string{
		fmt.Sprintf("unix:%s/p0.sock", dir),
		fmt.Sprintf("unix:%s/p1.sock", dir),
	}
	mesh := topology.Mesh{Rows: 1, Cols: 4}
	n := mesh.Size()
	groups := make([]*comm.Group, 2)
	worlds := make([]*comm.World, 2)
	for i := range groups {
		g, err := comm.NewGroup(wire.Config{
			Proc:           i,
			Addrs:          addrs,
			Fault:          plan,
			HeartbeatEvery: 10 * time.Millisecond,
			PeerDeadAfter:  2 * time.Second,
			DialTimeout:    200 * time.Millisecond,
			WriteTimeout:   time.Second,
			BackoffBase:    2 * time.Millisecond,
			BackoffCap:     20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = g
		defer g.Close()
		w, err := comm.NewWorldOpts(n, mesh, topology.NewSunway(n), comm.WorldOptions{
			Dist: &comm.DistConfig{Group: g, ProcOf: comm.ContiguousProcOf(n, n/2)},
		})
		if err != nil {
			t.Fatal(err)
		}
		worlds[i] = w
	}
	var wg sync.WaitGroup
	for _, w := range worlds {
		wg.Add(1)
		go func(w *comm.World) {
			defer wg.Done()
			w.Run(func(r *comm.Rank) {
				for round := 0; round < 10; round++ {
					sum := comm.Must(comm.AllreduceSumInt64(r.World, int64(r.ID)))
					if want := int64(n * (n - 1) / 2); sum != want {
						t.Errorf("round %d rank %d: sum %d, want %d", round, r.ID, sum, want)
					}
				}
			})
		}(w)
	}
	wg.Wait()
	stats := groups[0].WireStats()
	if stats.Reconnects == 0 {
		t.Errorf("drop did not force a reconnect: %+v", stats)
	}
	if stats.PeersLost != 0 {
		t.Errorf("transient drop escalated to a dead verdict: %+v", stats)
	}
}
