package faultinject

import (
	"strings"
	"testing"
	"time"
)

func TestParseDropConnClause(t *testing.T) {
	p, err := Parse("drop@conn=0-1,frame=7")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Conns) != 1 {
		t.Fatalf("got %d conn specs, want 1", len(p.Conns))
	}
	cf := p.Conns[0]
	if cf.From != 0 || cf.To != 1 || cf.Frame != 7 || cf.Hang != 0 {
		t.Fatalf("conn spec %+v, want drop 0->1 frame 7", cf)
	}
	if got := p.String(); got != "drop@conn=0-1,frame=7" {
		t.Fatalf("String() = %q", got)
	}
}

func TestParseHangConnClause(t *testing.T) {
	p, err := Parse("hang@conn=1-0,frame=3,dur=200ms")
	if err != nil {
		t.Fatal(err)
	}
	cf := p.Conns[0]
	if cf.From != 1 || cf.To != 0 || cf.Frame != 3 || cf.Hang != 200*time.Millisecond {
		t.Fatalf("conn spec %+v", cf)
	}
	// A bare hang clause gets a default stall.
	p, err = Parse("hang@conn=0-2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Conns[0].Hang <= 0 {
		t.Fatalf("bare hang clause got no default duration: %+v", p.Conns[0])
	}
}

func TestParseConnClausesRoundTrip(t *testing.T) {
	spec := "seed=4,kill@rank=1,iter=2,drop@conn=0-1,frame=7,hang@conn=1-0,frame=3,dur=50ms"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Kills) != 1 || len(p.Conns) != 2 {
		t.Fatalf("plan has %d kills, %d conns", len(p.Kills), len(p.Conns))
	}
	if got := p.String(); got != spec {
		t.Fatalf("String() = %q, want %q", got, spec)
	}
	q, err := Parse(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if *q.Conns[0] != *p.Conns[0] || *q.Conns[1] != *p.Conns[1] {
		t.Fatalf("re-parsed conns %+v / %+v differ from %+v / %+v",
			q.Conns[0], q.Conns[1], p.Conns[0], p.Conns[1])
	}
}

func TestParseConnClauseErrors(t *testing.T) {
	cases := []struct {
		spec, want string
	}{
		{"drop@rank=3", "must open with drop@conn=A-B"},
		{"drop@conn=3", "is not A-B"},
		{"drop@conn=1-1", "distinct process ids"},
		{"drop@conn=a-b", "bad connection"},
		{"frame=3", "only applies inside"},
		{"dur=5ms", "only applies inside a hang@conn clause"},
		{"drop@conn=0-1,dur=5ms", "only applies inside a hang@conn clause"},
		{"hang@conn=0-1,dur=-5ms", "must be positive"},
		{"kill@rank=2,frame=3", "only applies inside a drop@conn or hang@conn clause"},
		// Opening a conn clause closes the kill clause.
		{"kill@rank=2,drop@conn=0-1,iter=3", "only applies inside a kill@rank=N or sigkill@proc=N clause"},
	}
	for _, c := range cases {
		_, err := Parse(c.spec)
		if err == nil {
			t.Errorf("Parse(%q): no error, want %q", c.spec, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) = %v, want message containing %q", c.spec, err, c.want)
		}
	}
}

func TestOnConnSendMatchesDirectedFrames(t *testing.T) {
	p, err := Parse("drop@conn=0-1,frame=2,hang@conn=1-0,frame=5,dur=30ms")
	if err != nil {
		t.Fatal(err)
	}
	if f := p.OnConnSend(0, 1, 2); !f.Drop || f.Hang != 0 {
		t.Fatalf("0->1 frame 2: %+v, want drop", f)
	}
	if f := p.OnConnSend(1, 0, 2); f.Drop || f.Hang != 0 {
		t.Fatalf("reverse direction matched: %+v", f)
	}
	if f := p.OnConnSend(0, 1, 3); f.Drop || f.Hang != 0 {
		t.Fatalf("wrong frame matched: %+v", f)
	}
	if f := p.OnConnSend(1, 0, 5); f.Drop || f.Hang != 30*time.Millisecond {
		t.Fatalf("1->0 frame 5: %+v, want 30ms hang", f)
	}
}
