package faultinject

import (
	"testing"
)

func TestParseSigKillClause(t *testing.T) {
	p, err := Parse("sigkill@proc=2,iter=3")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.SigKills) != 1 || p.SigKills[0].Proc != 2 || p.SigKills[0].Iter != 3 {
		t.Fatalf("parsed %+v", p.SigKills)
	}
	if !p.SigKillFor(2, 3) || p.SigKillFor(2, 4) || p.SigKillFor(1, 3) {
		t.Fatal("SigKillFor trigger wrong")
	}
}

func TestParseSigKillMixedWithKillAndConn(t *testing.T) {
	p, err := Parse("kill@rank=1,iter=2,sigkill@proc=0,iter=4,drop@conn=0-1,frame=7,sigkill@proc=0,iter=9,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 5 || len(p.Kills) != 1 || len(p.Conns) != 1 || len(p.SigKills) != 2 {
		t.Fatalf("parsed %+v", p)
	}
	if p.Kills[0].Iter != 2 || p.SigKills[0].Iter != 4 || p.SigKills[1].Iter != 9 {
		t.Fatal("iter bound to the wrong clause")
	}
}

func TestParseSigKillRoundTrip(t *testing.T) {
	spec := "sigkill@proc=0,iter=2,sigkill@proc=1"
	p := MustParse(spec)
	back := MustParse(p.String())
	if len(back.SigKills) != 2 || back.SigKills[0].Proc != 0 || back.SigKills[0].Iter != 2 ||
		back.SigKills[1].Proc != 1 || back.SigKills[1].Iter != -1 {
		t.Fatalf("round trip lost sigkills: %q -> %+v", p.String(), back.SigKills)
	}
}

func TestParseSigKillErrors(t *testing.T) {
	for _, spec := range []string{
		"sigkill@rank=1",       // wrong opener key
		"sigkill@proc=x",       // bad proc
		"sigkill@proc=-1",      // negative proc
		"iter=3",               // clause key at top level
		"sigkill@proc=1,seq=2", // seq is kill-only
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", spec)
		}
	}
}

func TestDropSigKillsRetiresConsumed(t *testing.T) {
	p := MustParse("sigkill@proc=0,iter=2,sigkill@proc=0,iter=6,sigkill@proc=1,iter=4")
	q := p.DropSigKills(map[int]int{0: 1})
	if len(q.SigKills) != 2 || q.SigKills[0].Proc != 0 || q.SigKills[0].Iter != 6 || q.SigKills[1].Proc != 1 {
		t.Fatalf("DropSigKills kept %+v", q.SigKills)
	}
	// The original plan is untouched.
	if len(p.SigKills) != 3 {
		t.Fatal("DropSigKills mutated the source plan")
	}
	// Retiring everything empties the list.
	if q2 := p.DropSigKills(map[int]int{0: 2, 1: 1}); len(q2.SigKills) != 0 {
		t.Fatalf("full retire kept %+v", q2.SigKills)
	}
}
