// Package faultinject provides deterministic fault plans for the comm layer's
// injectable transport. A Plan is a pure function of (seed, rank, collective
// kind, sequence number): the same plan on the same run schedule always
// injects the same faults, which is what makes chaos runs reproducible and
// their failures bisectable. Plans model the hazards a production collective
// stack meets at scale — contribution jitter, a rank stalling for a window of
// collectives, payload corruption, outright send failure — and can be scoped
// to one supernode of the modeled machine (a misbehaving switch board rather
// than uniformly random noise).
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/wire"
	"repro/internal/xrand"
)

// Plan is a deterministic comm.Transport. The zero value injects nothing;
// use New for a plan with the conventional "unscoped" sentinels filled in.
type Plan struct {
	// Seed drives every probabilistic draw.
	Seed uint64

	// DelayProb is the per-contribution probability of an injected delay,
	// uniform in [DelayMin, DelayMax] (defaulting to [50µs, 200µs] when both
	// are zero).
	DelayProb          float64
	DelayMin, DelayMax time.Duration

	// CorruptProb is the per-contribution probability of a payload bit flip
	// (detected by receivers via checksum, surfacing ErrPayloadCorrupted).
	CorruptProb float64

	// FailProb is the per-contribution probability of an outright failure
	// (surfacing ErrCollectiveFailed).
	FailProb float64

	// StallRank, when StallLen > 0, withholds that rank's contributions for
	// collective sequence numbers in [StallStart, StallStart+StallLen) —
	// a rank that hangs for a window and comes back. StallLen < 0 stalls it
	// forever (the permanent-failure case that must surface as a typed error,
	// never a hang).
	StallRank  int
	StallStart int64
	StallLen   int64

	// Supernode, when >= 0, restricts the probabilistic faults to ranks on
	// that supernode of the modeled machine. Negative means all ranks.
	Supernode int

	// Kills fail-stops ranks permanently (comm's Kill action). Each spec
	// fires at most once per process: a replacement rank replaying the kill
	// iteration after recovery is not re-killed, modeling a real fail-stop
	// (the node died once; its successor is healthy hardware).
	Kills []*KillSpec

	// Conns injects network faults below the collective layer: a Plan doubles
	// as a wire.FaultHook, so the same spec string that kills ranks can also
	// drop or hang individual connections of the socket backend. These faults
	// are transient by design — the wire layer's reconnect and replay absorb
	// them — which is exactly what they test.
	Conns []*ConnFaultSpec

	// SigKills fail-stop whole worker processes: each spec names a real OS
	// process of a supervised socket world (cmd/bfsrun), which SIGKILLs
	// itself when one of its hosted ranks reaches the trigger iteration.
	// Intercept never fires these — the worker consults SigKillFor itself —
	// and the supervisor retires consumed specs between world generations
	// (DropSigKills) so a relaunched world is not re-killed forever.
	SigKills []*SigKillSpec
}

// SigKillSpec SIGKILLs one worker process. Unlike KillSpec (a modeled rank
// fail-stop inside a surviving process), this removes the entire process:
// the supervisor restarts it, and the world recovers via epoch rebuild plus
// shared-checkpoint replay.
type SigKillSpec struct {
	// Proc is the worker process id to SIGKILL. Required.
	Proc int
	// Iter, when >= 0, fires when a rank hosted by Proc enters that engine
	// iteration; -1 fires at the process's first intercepted collective.
	Iter int64
}

// SigKillFor reports whether the plan orders process proc to SIGKILL itself
// at engine iteration iter (a -1 spec iteration matches any).
func (p *Plan) SigKillFor(proc int, iter int64) bool {
	for _, s := range p.SigKills {
		if s.Proc == proc && (s.Iter < 0 || s.Iter == iter) {
			return true
		}
	}
	return false
}

// DropSigKills returns a copy of the plan with, per process, the first
// skip[proc] sigkill clauses removed — how the supervisor retires sigkills a
// previous world generation already executed, so a relaunch makes progress.
func (p *Plan) DropSigKills(skip map[int]int) *Plan {
	q := *p
	q.SigKills = nil
	seen := make(map[int]int)
	for _, s := range p.SigKills {
		if seen[s.Proc] < skip[s.Proc] {
			seen[s.Proc]++
			continue
		}
		q.SigKills = append(q.SigKills, s)
	}
	return &q
}

// ConnFaultSpec faults one data frame on one directed process connection.
// Frame counts the data-plane frames sent from From to To (0-based, resends
// included), so the counter is monotone and each spec fires exactly once.
type ConnFaultSpec struct {
	// From, To are the sending and receiving process ids.
	From, To int
	// Frame is the 0-based index of the data frame to fault.
	Frame uint64
	// Hang pauses the connection's write pump that long before the frame is
	// written (a network stall: the receiver's read deadline trips and the
	// connection is torn down and redialed). Zero means drop: the connection
	// is cut with the frame unsent, forcing a reconnect and replay.
	Hang time.Duration
}

// OnConnSend implements wire.FaultHook: a Plan can be installed directly as
// the socket backend's connection fault hook.
func (p *Plan) OnConnSend(local, peer int, idx uint64) wire.ConnFault {
	for _, cs := range p.Conns {
		if cs.From == local && cs.To == peer && cs.Frame == idx {
			if cs.Hang > 0 {
				return wire.ConnFault{Hang: cs.Hang}
			}
			return wire.ConnFault{Drop: true}
		}
	}
	return wire.ConnFault{}
}

var _ wire.FaultHook = (*Plan)(nil)

// KillSpec fail-stops one rank. The zero trigger fields mean "the rank's
// first intercepted collective"; Iter and Seq narrow the trigger.
type KillSpec struct {
	// Rank is the world rank to kill. Required.
	Rank int
	// Iter, when >= 0, only fires during that engine iteration (comm
	// Call.Iter). -1 fires in any iteration, including outside iterations.
	Iter int64
	// Seq, when > 0, only fires at the rank's first collective with
	// sequence number >= Seq.
	Seq int64

	fired atomic.Bool
}

// New returns an empty plan with unscoped sentinels (Supernode -1, no stall).
func New(seed uint64) *Plan {
	return &Plan{Seed: seed, StallRank: -1, Supernode: -1}
}

// Intercept implements comm.Transport. It is safe for concurrent use: apart
// from the once-only kill latches the plan is never mutated, and every
// probabilistic draw is a pure hash of the call identity.
func (p *Plan) Intercept(c comm.Call) comm.FaultAction {
	var act comm.FaultAction
	for _, k := range p.Kills {
		if c.Rank != k.Rank {
			continue
		}
		if k.Iter >= 0 && c.Iter != k.Iter {
			continue
		}
		if k.Seq > 0 && c.Seq < k.Seq {
			continue
		}
		if k.fired.CompareAndSwap(false, true) {
			act.Kill = true
			return act
		}
	}
	if p.StallLen != 0 && c.Rank == p.StallRank && c.Seq >= p.StallStart &&
		(p.StallLen < 0 || c.Seq < p.StallStart+p.StallLen) {
		act.Withhold = true
		return act
	}
	if p.DelayProb <= 0 && p.CorruptProb <= 0 && p.FailProb <= 0 {
		return act
	}
	if p.Supernode >= 0 && c.Supernode != p.Supernode {
		return act
	}
	// Three independent draws from a Mix64 chain over the call identity.
	h := xrand.Mix64(p.Seed ^ xrand.Mix64(uint64(c.Rank)<<32|uint64(uint32(c.Kind))) ^ xrand.Mix64(uint64(c.Seq)))
	if u(h) < p.FailProb {
		act.Fail = true
		return act
	}
	h = xrand.Mix64(h)
	if u(h) < p.CorruptProb {
		act.Corrupt = true
	}
	h = xrand.Mix64(h)
	if u(h) < p.DelayProb {
		lo, hi := p.DelayMin, p.DelayMax
		if lo == 0 && hi == 0 {
			lo, hi = 50*time.Microsecond, 200*time.Microsecond
		}
		if hi < lo {
			hi = lo
		}
		h = xrand.Mix64(h)
		act.Delay = lo + time.Duration(u(h)*float64(hi-lo+1))
	}
	return act
}

// u maps a hash to [0, 1) with 53 bits of precision.
func u(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// ParseError reports where in a fault spec parsing failed. Line and Col are
// 1-based; multi-line specs (newlines work like commas) get accurate line
// numbers, so a spec loaded from a file can be fixed by its editor position.
type ParseError struct {
	Line, Col int
	Msg       string
}

// Error formats like a compiler diagnostic.
func (e *ParseError) Error() string {
	return fmt.Sprintf("faultinject: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

// lineCol converts a byte offset in spec to a 1-based line and column.
func lineCol(spec string, off int) (int, int) {
	line, col := 1, 1
	for i := 0; i < off && i < len(spec); i++ {
		if spec[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// Parse builds a plan from a spec, the format of bfsbench's -faults flag:
// fields separated by commas or newlines, each key=value. Top-level keys:
// seed=N, delay=P, delaymin=DUR, delaymax=DUR, corrupt=P, fail=P,
// stallrank=R, stallstart=N, stalllen=N (negative = forever), supernode=S.
//
// A field of the form kill@rank=R opens a kill clause that fail-stops rank R
// permanently; the clause-scoped keys iter=K (fire during engine iteration K)
// and seq=S (fire at the rank's first collective with sequence >= S) bind to
// the most recent kill clause. Multiple kill clauses are allowed.
//
// A field of the form sigkill@proc=P opens a sigkill clause that SIGKILLs
// worker process P of a supervised socket world (cmd/bfsrun); the
// clause-scoped key iter=K fires it when a rank hosted by P enters engine
// iteration K. Repeat the clause for a double kill of the same process.
//
// Fields of the form drop@conn=A-B and hang@conn=A-B open connection-fault
// clauses for the socket backend (A and B are process ids; the fault hits
// frames sent from A to B). Clause-scoped keys: frame=N selects the 0-based
// data-frame index to fault (default 0), and dur=D (hang clauses only) sets
// how long the write pump stalls. Connection faults are transient — the wire
// layer reconnects and replays — unlike kill clauses, which are permanent.
//
// Examples:
//
//	"seed=42,delay=0.01,fail=0.001"
//	"kill@rank=3,iter=2"
//	"kill@rank=3,iter=2,kill@rank=7,iter=2,seed=9"
//	"drop@conn=0-1,frame=7"
//	"hang@conn=1-0,frame=3,dur=200ms"
//
// A malformed spec returns a *ParseError with the offending line and column;
// it never yields a silently empty plan.
func Parse(spec string) (*Plan, error) {
	p := New(0)
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	var kill *KillSpec       // open kill clause, nil at top level
	var connf *ConnFaultSpec // open connection-fault clause, nil at top level
	var connHang bool        // the open conn clause is hang@ (dur= allowed)
	var sigk *SigKillSpec    // open sigkill clause, nil at top level
	perr := func(off int, format string, args ...any) error {
		line, col := lineCol(spec, off)
		return &ParseError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
	}
	off := 0
	for off <= len(spec) {
		end := len(spec)
		for i := off; i < len(spec); i++ {
			if spec[i] == ',' || spec[i] == '\n' {
				end = i
				break
			}
		}
		field := spec[off:end]
		fieldOff := off
		off = end + 1
		// Skip leading whitespace, keeping the offset honest.
		for len(field) > 0 && (field[0] == ' ' || field[0] == '\t' || field[0] == '\r') {
			field = field[1:]
			fieldOff++
		}
		field = strings.TrimRight(field, " \t\r")
		if field == "" {
			if end == len(spec) {
				break
			}
			continue
		}
		if rest, ok := strings.CutPrefix(field, "kill@"); ok {
			key, val, ok := strings.Cut(rest, "=")
			if !ok || key != "rank" {
				return nil, perr(fieldOff, "kill clause must open with kill@rank=N, got %q", field)
			}
			rank, err := strconv.Atoi(val)
			if err != nil {
				return nil, perr(fieldOff+len("kill@rank="), "bad kill rank %q: %v", val, err)
			}
			kill = &KillSpec{Rank: rank, Iter: -1}
			connf, sigk = nil, nil
			p.Kills = append(p.Kills, kill)
			if end == len(spec) {
				break
			}
			continue
		}
		if rest, ok := strings.CutPrefix(field, "sigkill@"); ok {
			key, val, ok := strings.Cut(rest, "=")
			if !ok || key != "proc" {
				return nil, perr(fieldOff, "sigkill clause must open with sigkill@proc=N, got %q", field)
			}
			proc, err := strconv.Atoi(val)
			if err != nil || proc < 0 {
				return nil, perr(fieldOff+len("sigkill@proc="), "bad sigkill proc %q", val)
			}
			sigk = &SigKillSpec{Proc: proc, Iter: -1}
			kill, connf = nil, nil
			p.SigKills = append(p.SigKills, sigk)
			if end == len(spec) {
				break
			}
			continue
		}
		if verb, rest, found := cutConnClause(field); found {
			key, val, ok := strings.Cut(rest, "=")
			if !ok || key != "conn" {
				return nil, perr(fieldOff, "%s clause must open with %s@conn=A-B, got %q", verb, verb, field)
			}
			a, b, ok := strings.Cut(val, "-")
			if !ok {
				return nil, perr(fieldOff+len(verb)+len("@conn="), "connection %q is not A-B", val)
			}
			from, err1 := strconv.Atoi(a)
			to, err2 := strconv.Atoi(b)
			if err1 != nil || err2 != nil || from < 0 || to < 0 || from == to {
				return nil, perr(fieldOff+len(verb)+len("@conn="), "bad connection %q: want two distinct process ids A-B", val)
			}
			connf = &ConnFaultSpec{From: from, To: to}
			connHang = verb == "hang"
			if connHang {
				connf.Hang = 100 * time.Millisecond // default stall; dur= overrides
			}
			kill, sigk = nil, nil
			p.Conns = append(p.Conns, connf)
			if end == len(spec) {
				break
			}
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, perr(fieldOff, "field %q is not key=value", field)
		}
		valOff := fieldOff + len(key) + 1
		if val == "" {
			return nil, perr(valOff, "key %q has an empty value", key)
		}
		var err error
		switch key {
		case "iter":
			switch {
			case kill != nil:
				kill.Iter, err = strconv.ParseInt(val, 10, 64)
			case sigk != nil:
				sigk.Iter, err = strconv.ParseInt(val, 10, 64)
			default:
				return nil, perr(fieldOff, "key %q only applies inside a kill@rank=N or sigkill@proc=N clause", key)
			}
		case "seq":
			if kill == nil {
				return nil, perr(fieldOff, "key %q only applies inside a kill@rank=N clause", key)
			}
			kill.Seq, err = strconv.ParseInt(val, 10, 64)
		case "frame":
			if connf == nil {
				return nil, perr(fieldOff, "key %q only applies inside a drop@conn or hang@conn clause", key)
			}
			connf.Frame, err = strconv.ParseUint(val, 10, 64)
		case "dur":
			if connf == nil || !connHang {
				return nil, perr(fieldOff, "key %q only applies inside a hang@conn clause", key)
			}
			connf.Hang, err = time.ParseDuration(val)
			if err == nil && connf.Hang <= 0 {
				return nil, perr(valOff, "hang duration %q must be positive", val)
			}
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 0, 64)
		case "delay":
			p.DelayProb, err = strconv.ParseFloat(val, 64)
		case "delaymin":
			p.DelayMin, err = time.ParseDuration(val)
		case "delaymax":
			p.DelayMax, err = time.ParseDuration(val)
		case "corrupt":
			p.CorruptProb, err = strconv.ParseFloat(val, 64)
		case "fail":
			p.FailProb, err = strconv.ParseFloat(val, 64)
		case "stallrank":
			p.StallRank, err = strconv.Atoi(val)
		case "stallstart":
			p.StallStart, err = strconv.ParseInt(val, 10, 64)
		case "stalllen":
			p.StallLen, err = strconv.ParseInt(val, 10, 64)
		case "supernode":
			p.Supernode, err = strconv.Atoi(val)
		default:
			return nil, perr(fieldOff, "unknown key %q", key)
		}
		if err != nil {
			return nil, perr(valOff, "bad value for %s: %v", key, err)
		}
		if end == len(spec) {
			break
		}
	}
	return p, nil
}

// MustParse is Parse for specs known good at authoring time (tests, fixed
// scenario tables); it panics on error.
func MustParse(spec string) *Plan {
	p, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// cutConnClause splits a "drop@..." or "hang@..." field into its verb and
// remainder.
func cutConnClause(field string) (verb, rest string, ok bool) {
	if r, found := strings.CutPrefix(field, "drop@"); found {
		return "drop", r, true
	}
	if r, found := strings.CutPrefix(field, "hang@"); found {
		return "hang", r, true
	}
	return "", "", false
}

// String renders the plan in Parse's format (only non-default fields).
func (p *Plan) String() string {
	kv := map[string]string{}
	if p.Seed != 0 {
		kv["seed"] = strconv.FormatUint(p.Seed, 10)
	}
	if p.DelayProb > 0 {
		kv["delay"] = strconv.FormatFloat(p.DelayProb, 'g', -1, 64)
	}
	if p.DelayMin != 0 {
		kv["delaymin"] = p.DelayMin.String()
	}
	if p.DelayMax != 0 {
		kv["delaymax"] = p.DelayMax.String()
	}
	if p.CorruptProb > 0 {
		kv["corrupt"] = strconv.FormatFloat(p.CorruptProb, 'g', -1, 64)
	}
	if p.FailProb > 0 {
		kv["fail"] = strconv.FormatFloat(p.FailProb, 'g', -1, 64)
	}
	if p.StallLen != 0 {
		kv["stallrank"] = strconv.Itoa(p.StallRank)
		kv["stallstart"] = strconv.FormatInt(p.StallStart, 10)
		kv["stalllen"] = strconv.FormatInt(p.StallLen, 10)
	}
	if p.Supernode >= 0 {
		kv["supernode"] = strconv.Itoa(p.Supernode)
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys)+len(p.Kills))
	for _, k := range keys {
		parts = append(parts, k+"="+kv[k])
	}
	for _, k := range p.Kills {
		s := "kill@rank=" + strconv.Itoa(k.Rank)
		if k.Iter >= 0 {
			s += ",iter=" + strconv.FormatInt(k.Iter, 10)
		}
		if k.Seq > 0 {
			s += ",seq=" + strconv.FormatInt(k.Seq, 10)
		}
		parts = append(parts, s)
	}
	for _, cf := range p.Conns {
		conn := strconv.Itoa(cf.From) + "-" + strconv.Itoa(cf.To)
		var s string
		if cf.Hang > 0 {
			s = "hang@conn=" + conn + ",frame=" + strconv.FormatUint(cf.Frame, 10) + ",dur=" + cf.Hang.String()
		} else {
			s = "drop@conn=" + conn + ",frame=" + strconv.FormatUint(cf.Frame, 10)
		}
		parts = append(parts, s)
	}
	for _, sk := range p.SigKills {
		s := "sigkill@proc=" + strconv.Itoa(sk.Proc)
		if sk.Iter >= 0 {
			s += ",iter=" + strconv.FormatInt(sk.Iter, 10)
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ",")
}
