// Package faultinject provides deterministic fault plans for the comm layer's
// injectable transport. A Plan is a pure function of (seed, rank, collective
// kind, sequence number): the same plan on the same run schedule always
// injects the same faults, which is what makes chaos runs reproducible and
// their failures bisectable. Plans model the hazards a production collective
// stack meets at scale — contribution jitter, a rank stalling for a window of
// collectives, payload corruption, outright send failure — and can be scoped
// to one supernode of the modeled machine (a misbehaving switch board rather
// than uniformly random noise).
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/comm"
	"repro/internal/xrand"
)

// Plan is a deterministic comm.Transport. The zero value injects nothing;
// use New for a plan with the conventional "unscoped" sentinels filled in.
type Plan struct {
	// Seed drives every probabilistic draw.
	Seed uint64

	// DelayProb is the per-contribution probability of an injected delay,
	// uniform in [DelayMin, DelayMax] (defaulting to [50µs, 200µs] when both
	// are zero).
	DelayProb          float64
	DelayMin, DelayMax time.Duration

	// CorruptProb is the per-contribution probability of a payload bit flip
	// (detected by receivers via checksum, surfacing ErrPayloadCorrupted).
	CorruptProb float64

	// FailProb is the per-contribution probability of an outright failure
	// (surfacing ErrCollectiveFailed).
	FailProb float64

	// StallRank, when StallLen > 0, withholds that rank's contributions for
	// collective sequence numbers in [StallStart, StallStart+StallLen) —
	// a rank that hangs for a window and comes back. StallLen < 0 stalls it
	// forever (the permanent-failure case that must surface as a typed error,
	// never a hang).
	StallRank  int
	StallStart int64
	StallLen   int64

	// Supernode, when >= 0, restricts the probabilistic faults to ranks on
	// that supernode of the modeled machine. Negative means all ranks.
	Supernode int
}

// New returns an empty plan with unscoped sentinels (Supernode -1, no stall).
func New(seed uint64) *Plan {
	return &Plan{Seed: seed, StallRank: -1, Supernode: -1}
}

// Intercept implements comm.Transport. It is safe for concurrent use: the
// plan is never mutated and every draw is a pure hash of the call identity.
func (p *Plan) Intercept(c comm.Call) comm.FaultAction {
	var act comm.FaultAction
	if p.StallLen != 0 && c.Rank == p.StallRank && c.Seq >= p.StallStart &&
		(p.StallLen < 0 || c.Seq < p.StallStart+p.StallLen) {
		act.Withhold = true
		return act
	}
	if p.DelayProb <= 0 && p.CorruptProb <= 0 && p.FailProb <= 0 {
		return act
	}
	if p.Supernode >= 0 && c.Supernode != p.Supernode {
		return act
	}
	// Three independent draws from a Mix64 chain over the call identity.
	h := xrand.Mix64(p.Seed ^ xrand.Mix64(uint64(c.Rank)<<32|uint64(uint32(c.Kind))) ^ xrand.Mix64(uint64(c.Seq)))
	if u(h) < p.FailProb {
		act.Fail = true
		return act
	}
	h = xrand.Mix64(h)
	if u(h) < p.CorruptProb {
		act.Corrupt = true
	}
	h = xrand.Mix64(h)
	if u(h) < p.DelayProb {
		lo, hi := p.DelayMin, p.DelayMax
		if lo == 0 && hi == 0 {
			lo, hi = 50*time.Microsecond, 200*time.Microsecond
		}
		if hi < lo {
			hi = lo
		}
		h = xrand.Mix64(h)
		act.Delay = lo + time.Duration(u(h)*float64(hi-lo+1))
	}
	return act
}

// u maps a hash to [0, 1) with 53 bits of precision.
func u(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Parse builds a plan from a comma-separated spec, the format of bfsbench's
// -faults flag. Keys: seed=N, delay=P, delaymin=DUR, delaymax=DUR, corrupt=P,
// fail=P, stallrank=R, stallstart=N, stalllen=N (negative = forever),
// supernode=S. Example: "seed=42,delay=0.01,fail=0.001".
func Parse(spec string) (*Plan, error) {
	p := New(0)
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: field %q is not key=value", field)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 0, 64)
		case "delay":
			p.DelayProb, err = strconv.ParseFloat(val, 64)
		case "delaymin":
			p.DelayMin, err = time.ParseDuration(val)
		case "delaymax":
			p.DelayMax, err = time.ParseDuration(val)
		case "corrupt":
			p.CorruptProb, err = strconv.ParseFloat(val, 64)
		case "fail":
			p.FailProb, err = strconv.ParseFloat(val, 64)
		case "stallrank":
			p.StallRank, err = strconv.Atoi(val)
		case "stallstart":
			p.StallStart, err = strconv.ParseInt(val, 10, 64)
		case "stalllen":
			p.StallLen, err = strconv.ParseInt(val, 10, 64)
		case "supernode":
			p.Supernode, err = strconv.Atoi(val)
		default:
			return nil, fmt.Errorf("faultinject: unknown key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("faultinject: bad value for %s: %v", key, err)
		}
	}
	return p, nil
}

// String renders the plan in Parse's format (only non-default fields).
func (p *Plan) String() string {
	kv := map[string]string{}
	if p.Seed != 0 {
		kv["seed"] = strconv.FormatUint(p.Seed, 10)
	}
	if p.DelayProb > 0 {
		kv["delay"] = strconv.FormatFloat(p.DelayProb, 'g', -1, 64)
	}
	if p.DelayMin != 0 {
		kv["delaymin"] = p.DelayMin.String()
	}
	if p.DelayMax != 0 {
		kv["delaymax"] = p.DelayMax.String()
	}
	if p.CorruptProb > 0 {
		kv["corrupt"] = strconv.FormatFloat(p.CorruptProb, 'g', -1, 64)
	}
	if p.FailProb > 0 {
		kv["fail"] = strconv.FormatFloat(p.FailProb, 'g', -1, 64)
	}
	if p.StallLen != 0 {
		kv["stallrank"] = strconv.Itoa(p.StallRank)
		kv["stallstart"] = strconv.FormatInt(p.StallStart, 10)
		kv["stalllen"] = strconv.FormatInt(p.StallLen, 10)
	}
	if p.Supernode >= 0 {
		kv["supernode"] = strconv.Itoa(p.Supernode)
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+kv[k])
	}
	return strings.Join(parts, ",")
}
