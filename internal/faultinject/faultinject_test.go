package faultinject

import (
	"errors"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/topology"
)

func TestInterceptIsDeterministic(t *testing.T) {
	p := New(42)
	p.DelayProb = 0.3
	p.CorruptProb = 0.2
	p.FailProb = 0.1
	for seq := int64(1); seq <= 200; seq++ {
		c := comm.Call{Rank: int(seq) % 7, Kind: comm.Kind(seq % 4), Seq: seq, CommSize: 8}
		a := p.Intercept(c)
		b := p.Intercept(c)
		if a != b {
			t.Fatalf("seq %d: two intercepts of the same call disagree: %+v vs %+v", seq, a, b)
		}
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a, b := New(1), New(2)
	for _, p := range []*Plan{a, b} {
		p.FailProb = 0.5
	}
	diff := 0
	for seq := int64(1); seq <= 256; seq++ {
		c := comm.Call{Rank: 3, Kind: comm.KindAlltoallv, Seq: seq, CommSize: 4}
		if a.Intercept(c).Fail != b.Intercept(c).Fail {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("256 calls under different seeds produced identical fault schedules")
	}
}

func TestProbabilityExtremes(t *testing.T) {
	always := New(7)
	always.FailProb = 1
	never := New(7)
	for seq := int64(1); seq <= 100; seq++ {
		c := comm.Call{Rank: 0, Kind: comm.KindBarrier, Seq: seq, CommSize: 2}
		if !always.Intercept(c).Fail {
			t.Fatalf("seq %d: FailProb=1 did not fail", seq)
		}
		if a := never.Intercept(c); a != (comm.FaultAction{}) {
			t.Fatalf("seq %d: empty plan injected %+v", seq, a)
		}
	}
}

func TestStallWindow(t *testing.T) {
	p := New(0)
	p.StallRank = 2
	p.StallStart = 5
	p.StallLen = 3
	for seq := int64(1); seq <= 12; seq++ {
		got := p.Intercept(comm.Call{Rank: 2, Seq: seq}).Withhold
		want := seq >= 5 && seq < 8
		if got != want {
			t.Fatalf("rank 2 seq %d: withhold=%v, want %v", seq, got, want)
		}
		if p.Intercept(comm.Call{Rank: 1, Seq: seq}).Withhold {
			t.Fatalf("rank 1 seq %d stalled; plan targets rank 2", seq)
		}
	}
	p.StallLen = -1 // forever
	if !p.Intercept(comm.Call{Rank: 2, Seq: 1 << 40}).Withhold {
		t.Fatal("permanent stall ended")
	}
}

func TestSupernodeScoping(t *testing.T) {
	p := New(9)
	p.FailProb = 1
	p.Supernode = 1
	if p.Intercept(comm.Call{Rank: 0, Supernode: 0, Seq: 1}).Fail {
		t.Fatal("fault fired outside the scoped supernode")
	}
	if !p.Intercept(comm.Call{Rank: 4, Supernode: 1, Seq: 1}).Fail {
		t.Fatal("fault did not fire inside the scoped supernode")
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := "corrupt=0.001,delay=0.01,delaymax=500µs,delaymin=50µs,fail=0.0005,seed=42,stalllen=2,stallrank=3,stallstart=10,supernode=1"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.DelayProb != 0.01 || p.DelayMin != 50*time.Microsecond ||
		p.DelayMax != 500*time.Microsecond || p.CorruptProb != 0.001 || p.FailProb != 0.0005 ||
		p.StallRank != 3 || p.StallStart != 10 || p.StallLen != 2 || p.Supernode != 1 {
		t.Fatalf("parsed plan %+v does not match spec", p)
	}
	if got := p.String(); got != spec {
		t.Fatalf("String() = %q, want %q", got, spec)
	}
	if _, err := Parse("bogus"); err == nil {
		t.Fatal("Parse accepted a field without =")
	}
	if _, err := Parse("nope=1"); err == nil {
		t.Fatal("Parse accepted an unknown key")
	}
	empty, err := Parse("  ")
	if err != nil || empty.String() != "" {
		t.Fatalf("empty spec: plan %+v err %v", empty, err)
	}
}

// TestPlanDrivesWorld installs a plan on a real world and checks the typed
// error comes back on every rank, with fault stats accounted.
func TestPlanDrivesWorld(t *testing.T) {
	const n = 4
	p := New(3)
	p.FailProb = 1
	w, err := comm.NewWorldOpts(n, topology.Mesh{Rows: 2, Cols: 2}, topology.NewSunway(n),
		comm.WorldOptions{Transport: p})
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]error, n)
	faults := make([]comm.FaultStats, n)
	w.Run(func(r *comm.Rank) {
		_, errs[r.ID] = comm.AllreduceSumInt64(r.World, 1)
		faults[r.ID] = r.Faults
	})
	for id, err := range errs {
		if !errors.Is(err, comm.ErrCollectiveFailed) {
			t.Fatalf("rank %d: err = %v, want ErrCollectiveFailed", id, err)
		}
		if faults[id].Failures != 1 || faults[id].Errors != 1 {
			t.Fatalf("rank %d: fault stats %+v, want 1 failure / 1 error", id, faults[id])
		}
	}
}
