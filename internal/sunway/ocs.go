package sunway

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// OCS-RMA: on-chip sorting with RMA (paper Section 4.4, Figure 8).
//
// The 64 CPEs of a core group are split into 32 producers and 32 consumers.
// Producers scan their share of the input, buffering each record in one of 32
// per-consumer send buffers (512 bytes each); a full buffer is shipped to the
// consumer with one RMA put. Consumer j exclusively owns every bucket b with
// b mod 32 == j, so no atomics are needed inside a CG. Across CGs the only
// shared state is the input cursor, claimed with an atomic add, mirroring the
// paper's rare cross-CG atomics and slightly lower 6-CG efficiency.

// batchFor returns the number of records of size bytes fitting the 512-byte
// RMA buffer.
func batchFor(recBytes int) int {
	n := RMABufBytes / recBytes
	if n < 1 {
		n = 1
	}
	return n
}

// BucketMPE is the sequential reference bucketing, modeling the management
// processing element: one core, no LDM, direct main-memory access.
func BucketMPE[T any](items []T, buckets int, f func(T) int) [][]T {
	counts := make([]int, buckets)
	for _, it := range items {
		counts[f(it)]++
	}
	out := make([][]T, buckets)
	for b := range out {
		out[b] = make([]T, 0, counts[b])
	}
	for _, it := range items {
		b := f(it)
		out[b] = append(out[b], it)
	}
	return out
}

// OCSConfig tunes the OCS-RMA kernel.
type OCSConfig struct {
	CGs      int       // core groups to use: 1 or 6 in the paper's Figure 14
	Counters *Counters // optional event accounting
	RecBytes int       // record size for RMA batch sizing; 0 means 8
}

func (c OCSConfig) withDefaults() OCSConfig {
	if c.CGs <= 0 {
		c.CGs = 1
	}
	if c.Counters == nil {
		c.Counters = &Counters{}
	}
	if c.RecBytes <= 0 {
		c.RecBytes = 8
	}
	return c
}

// ocsChunk is the unit of input claimed by a CG at a time when multiple CGs
// cooperate (large enough that the atomic claim is rare).
const ocsChunk = 1 << 16

// BucketOCS buckets items with the OCS-RMA organization and returns
// per-bucket contents. Record order within a bucket is unspecified (as with
// any parallel bucket sort); the multiset per bucket equals BucketMPE's.
func BucketOCS[T any](items []T, buckets int, f func(T) int, cfg OCSConfig) [][]T {
	cfg = cfg.withDefaults()
	if len(items) == 0 {
		return make([][]T, buckets)
	}
	// out[cg][b] is written exclusively by the consumer owning b in cg.
	out := make([][][]T, cfg.CGs)
	for cg := range out {
		out[cg] = make([][]T, buckets)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for cg := 0; cg < cfg.CGs; cg++ {
		wg.Add(1)
		go func(cg int) {
			defer wg.Done()
			runCGBucket(items, buckets, f, cfg, &cursor, out[cg])
		}(cg)
	}
	wg.Wait()
	final := make([][]T, buckets)
	for b := 0; b < buckets; b++ {
		total := 0
		for cg := 0; cg < cfg.CGs; cg++ {
			total += len(out[cg][b])
		}
		final[b] = make([]T, 0, total)
		for cg := 0; cg < cfg.CGs; cg++ {
			final[b] = append(final[b], out[cg][b]...)
		}
	}
	return final
}

// runCGBucket runs one core group's 32 producers and 32 consumers over
// chunks of the input claimed from the shared cursor.
func runCGBucket[T any](items []T, buckets int, f func(T) int, cfg OCSConfig, cursor *atomic.Int64, out [][]T) {
	batch := batchFor(cfg.RecBytes)
	// One channel per consumer; capacity models its 32 receive buffers.
	chans := make([]chan []T, Consumers)
	for j := range chans {
		chans[j] = make(chan []T, Producers)
	}
	var wg sync.WaitGroup
	// Consumers: exclusive owners of buckets b with b%Consumers == j.
	for j := 0; j < Consumers; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			for recs := range chans[j] {
				for _, it := range recs {
					b := f(it)
					out[b] = append(out[b], it)
				}
			}
		}(j)
	}
	// Producers: claim chunks, fill per-consumer send buffers, RMA-put full
	// buffers to consumers.
	var pw sync.WaitGroup
	for p := 0; p < Producers; p++ {
		pw.Add(1)
		go func() {
			defer pw.Done()
			bufs := make([][]T, Consumers)
			for j := range bufs {
				bufs[j] = make([]T, 0, batch)
			}
			for {
				lo := int(cursor.Add(ocsChunk)) - ocsChunk
				if lo >= len(items) {
					break
				}
				if cfg.CGs > 1 {
					cfg.Counters.AtomicOps.Add(1) // cross-CG cursor claim
				}
				hi := lo + ocsChunk
				if hi > len(items) {
					hi = len(items)
				}
				cfg.Counters.DMABytes.Add(int64(hi-lo) * int64(cfg.RecBytes))
				for _, it := range items[lo:hi] {
					j := f(it) % Consumers
					bufs[j] = append(bufs[j], it)
					if len(bufs[j]) == batch {
						cfg.Counters.RMAPuts.Add(1)
						cfg.Counters.RMABytes.Add(int64(batch * cfg.RecBytes))
						chans[j] <- bufs[j]
						bufs[j] = make([]T, 0, batch)
					}
				}
			}
			for j, b := range bufs {
				if len(b) > 0 {
					cfg.Counters.RMAPuts.Add(1)
					cfg.Counters.RMABytes.Add(int64(len(b) * cfg.RecBytes))
					chans[j] <- b
				}
			}
		}()
	}
	pw.Wait()
	for j := range chans {
		close(chans[j])
	}
	wg.Wait()
}

// Update is one destination-update message: set/merge Val at index Idx.
type Update struct {
	Idx int64
	Val int64
}

// TwoStageUpdate applies updates to an n-element destination space without
// atomics (paper: "two-stage sorting in destination updating"). Stage one
// coarse-sorts messages into fixed-length index ranges; stage two hands each
// range to exactly one worker which applies its messages serially via apply.
// apply(u) therefore never races with another apply on the same index.
func TwoStageUpdate(n int64, msgs []Update, workers int, apply func(Update)) {
	if len(msgs) == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Ranges sized so there are a few per worker for balance; at least one.
	ranges := workers * 4
	if int64(ranges) > n {
		ranges = int(n)
		if ranges == 0 {
			ranges = 1
		}
	}
	rangeLen := (n + int64(ranges) - 1) / int64(ranges)
	// Stage 1: coarse bucket sort by range (counting sort, stable).
	counts := make([]int, ranges+1)
	for _, m := range msgs {
		counts[m.Idx/rangeLen+1]++
	}
	for r := 0; r < ranges; r++ {
		counts[r+1] += counts[r]
	}
	sorted := make([]Update, len(msgs))
	cursor := make([]int, ranges)
	copy(cursor, counts[:ranges])
	for _, m := range msgs {
		r := m.Idx / rangeLen
		sorted[cursor[r]] = m
		cursor[r]++
	}
	// Stage 2: one worker per range; exclusive application.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				r := int(next.Add(1)) - 1
				if r >= ranges {
					return
				}
				for _, m := range sorted[counts[r]:counts[r+1]] {
					apply(m)
				}
			}
		}()
	}
	wg.Wait()
}
