package sunway

// ChipModel prices kernel event counts on SW26010-Pro's published
// characteristics, yielding the simulated-hardware throughput that Figure 14
// reports. The counters fed to it are real events from running the kernel;
// only the per-event costs come from the paper's measurements:
//
//   - MPE bucketing runs at 0.0406 GB/s (Figure 14) — a dependent
//     uncached load+store pair per 8-byte record ≈ 197 ns;
//   - one CG reaches 12.5 GB/s — 64 CPEs streaming via DMA with RMA puts,
//     ≈ 41 ns per record per CPE;
//   - six CGs reach 58.6 GB/s, not 6 × 12.5: the cross-CG atomic
//     synchronization costs a ~0.78 efficiency factor (Section 4.4).
//
// On the host this package also measures true wall-clock throughput, but a
// wall clock only shows parallel speedup when the host has cores to spare;
// the model makes the Figure 14 contrast reproducible anywhere.
type ChipModel struct {
	MPERecordNanos    float64 // dependent GLD+GST per record on the MPE
	CPERecordNanos    float64 // pipelined cost per record per CPE
	DMABandwidth      float64 // chip aggregate DMA bytes/s
	MultiCGEfficiency float64 // cross-CG atomic synchronization penalty
}

// DefaultChipModel returns the calibration derived from Figure 14.
func DefaultChipModel() ChipModel {
	return ChipModel{
		MPERecordNanos:    197,
		CPERecordNanos:    41,
		DMABandwidth:      249e9,
		MultiCGEfficiency: 0.78,
	}
}

// BucketSeconds models the time for bucketing `records` 8-byte records with
// the given organization. cgs == 0 means the sequential MPE path.
func (m ChipModel) BucketSeconds(s CounterSnapshot, cgs int, records int64) float64 {
	if cgs <= 0 {
		return float64(records) * m.MPERecordNanos * 1e-9
	}
	cpes := float64(cgs * CPEsPerCG)
	pipeline := float64(records) * m.CPERecordNanos * 1e-9 / cpes
	// DMA in plus the RMA-shipped payload out contend for the memory system
	// proportionally to the CGs in use.
	memBytes := float64(s.DMABytes + s.RMABytes)
	mem := memBytes / (m.DMABandwidth * float64(cgs) / CGsPerChip)
	t := pipeline
	if mem > t {
		t = mem
	}
	if cgs > 1 {
		t /= m.MultiCGEfficiency
	}
	return t
}

// BucketThroughput returns modeled bytes/second for the run.
func (m ChipModel) BucketThroughput(s CounterSnapshot, cgs int, records int64) float64 {
	sec := m.BucketSeconds(s, cgs, records)
	if sec <= 0 {
		return 0
	}
	return float64(records) * 8 / sec
}
