package sunway

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/bitmap"
)

func randomKeys(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	return keys
}

func bucketsEqual(t *testing.T, a, b [][]uint64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("bucket count %d vs %d", len(a), len(b))
	}
	for i := range a {
		x := append([]uint64(nil), a[i]...)
		y := append([]uint64(nil), b[i]...)
		sort.Slice(x, func(p, q int) bool { return x[p] < x[q] })
		sort.Slice(y, func(p, q int) bool { return y[p] < y[q] })
		if len(x) != len(y) {
			t.Fatalf("bucket %d size %d vs %d", i, len(x), len(y))
		}
		for j := range x {
			if x[j] != y[j] {
				t.Fatalf("bucket %d differs at %d", i, j)
			}
		}
	}
}

func TestBucketMPE(t *testing.T) {
	items := []uint64{0, 1, 2, 255, 256, 257}
	out := BucketMPE(items, 256, func(x uint64) int { return int(x & 0xFF) })
	if len(out[0]) != 2 || out[0][0] != 0 || out[0][1] != 256 {
		t.Fatalf("bucket 0 = %v", out[0])
	}
	if len(out[1]) != 2 || len(out[255]) != 1 {
		t.Fatal("bucket sizes wrong")
	}
}

func TestBucketOCSMatchesMPE(t *testing.T) {
	keys := randomKeys(200000, 1)
	f := func(x uint64) int { return int(x & 0xFF) }
	ref := BucketMPE(keys, 256, f)
	for _, cgs := range []int{1, 6} {
		got := BucketOCS(keys, 256, f, OCSConfig{CGs: cgs})
		bucketsEqual(t, ref, got)
	}
}

func TestBucketOCSEmptyAndTiny(t *testing.T) {
	out := BucketOCS(nil, 8, func(x uint64) int { return int(x % 8) }, OCSConfig{})
	if len(out) != 8 {
		t.Fatalf("want 8 empty buckets, got %d", len(out))
	}
	out = BucketOCS([]uint64{5}, 8, func(x uint64) int { return int(x % 8) }, OCSConfig{CGs: 6})
	if len(out[5]) != 1 || out[5][0] != 5 {
		t.Fatal("single item misplaced")
	}
}

func TestBucketOCSCounters(t *testing.T) {
	keys := randomKeys(100000, 2)
	c := &Counters{}
	BucketOCS(keys, 256, func(x uint64) int { return int(x & 0xFF) }, OCSConfig{CGs: 1, Counters: c})
	s := c.Snapshot()
	if s.RMAPuts == 0 || s.RMABytes == 0 {
		t.Fatal("no RMA traffic recorded")
	}
	if s.RMABytes < int64(len(keys)*8) {
		t.Fatalf("RMA bytes %d below payload %d", s.RMABytes, len(keys)*8)
	}
	if s.AtomicOps != 0 {
		t.Fatalf("single-CG run used %d atomics; OCS-RMA eliminates them", s.AtomicOps)
	}
	c6 := &Counters{}
	BucketOCS(keys, 256, func(x uint64) int { return int(x & 0xFF) }, OCSConfig{CGs: 6, Counters: c6})
	if c6.Snapshot().AtomicOps == 0 {
		t.Fatal("6-CG run should record cross-CG atomics")
	}
}

func TestBucketOCSProperty(t *testing.T) {
	f := func(raw []uint16, bRaw uint8) bool {
		buckets := int(bRaw%32) + 1
		items := make([]uint64, len(raw))
		for i, r := range raw {
			items[i] = uint64(r)
		}
		fn := func(x uint64) int { return int(x % uint64(buckets)) }
		out := BucketOCS(items, buckets, fn, OCSConfig{CGs: 2})
		total := 0
		for b, recs := range out {
			total += len(recs)
			for _, r := range recs {
				if fn(r) != b {
					return false
				}
			}
		}
		return total == len(items)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTwoStageUpdateExclusive(t *testing.T) {
	const n = 100000
	dst := make([]int64, n)
	for i := range dst {
		dst[i] = -1
	}
	rng := rand.New(rand.NewSource(3))
	msgs := make([]Update, 300000)
	for i := range msgs {
		msgs[i] = Update{Idx: rng.Int63n(n), Val: int64(i)}
	}
	// First-writer-wins semantics, exactly like parent updates in BFS.
	TwoStageUpdate(n, msgs, 8, func(u Update) {
		if dst[u.Idx] == -1 {
			dst[u.Idx] = u.Val
		}
	})
	// Every touched index holds some message's value for that index.
	byIdx := map[int64]map[int64]bool{}
	for _, m := range msgs {
		if byIdx[m.Idx] == nil {
			byIdx[m.Idx] = map[int64]bool{}
		}
		byIdx[m.Idx][m.Val] = true
	}
	for i := int64(0); i < n; i++ {
		if vals, touched := byIdx[i]; touched {
			if dst[i] == -1 || !vals[dst[i]] {
				t.Fatalf("dst[%d] = %d not among posted values", i, dst[i])
			}
		} else if dst[i] != -1 {
			t.Fatalf("dst[%d] = %d but no message targeted it", i, dst[i])
		}
	}
}

func TestTwoStageUpdateCountsApplied(t *testing.T) {
	// The apply callback must run exactly once per message.
	var mu sync.Mutex
	applied := 0
	msgs := make([]Update, 5000)
	for i := range msgs {
		msgs[i] = Update{Idx: int64(i % 97), Val: 1}
	}
	TwoStageUpdate(97, msgs, 4, func(u Update) {
		mu.Lock()
		applied++
		mu.Unlock()
	})
	if applied != len(msgs) {
		t.Fatalf("applied %d, want %d", applied, len(msgs))
	}
}

func TestTwoStageUpdateSmallDomain(t *testing.T) {
	dst := make([]int64, 1)
	TwoStageUpdate(1, []Update{{0, 7}, {0, 8}}, 16, func(u Update) { dst[0] += u.Val })
	if dst[0] != 15 {
		t.Fatalf("dst[0] = %d, want 15", dst[0])
	}
}

func TestRMAPutGetRoundTrip(t *testing.T) {
	cg := NewCG(nil)
	src := []byte{1, 2, 3, 4}
	cg.RMAPut(5, 100, src)
	dst := make([]byte, 4)
	cg.RMAGet(5, 100, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d = %d", i, dst[i])
		}
	}
	s := cg.Counters.Snapshot()
	if s.RMAPuts != 1 || s.RMAGets != 1 || s.RMABytes != 8 {
		t.Fatalf("counters %+v", s)
	}
}

func TestRMABoundsChecked(t *testing.T) {
	cg := NewCG(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("RMA past LDM end should panic")
		}
	}()
	cg.RMAPut(0, LDMBytes-2, []byte{1, 2, 3})
}

func TestSegmentBitvectorRMA(t *testing.T) {
	// A 2MB-per-CG style segment: 1M bits distributed over 64 LDMs.
	const bits = 1 << 20
	b := bitmap.New(bits)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < bits; i++ {
		if rng.Intn(5) == 0 {
			b.Set(i)
		}
	}
	cg := NewCG(nil)
	LoadSegmentBitvector(cg, b, 0)
	for trial := 0; trial < 5000; trial++ {
		i := rng.Intn(bits)
		if got, want := TestBitRMA(cg, 0, i), b.Test(i); got != want {
			t.Fatalf("bit %d: RMA read %v, want %v", i, got, want)
		}
	}
}

func TestSegmentedLookupCounts(t *testing.T) {
	const bits = 1 << 16
	b := bitmap.New(bits)
	for i := 0; i < bits; i += 2 {
		b.Set(i)
	}
	cg := NewCG(nil)
	LoadSegmentBitvector(cg, b, 0)
	queries := make([][]int, CPEsPerCG)
	want := make([]int, CPEsPerCG)
	rng := rand.New(rand.NewSource(5))
	for cpe := range queries {
		for q := 0; q < 100; q++ {
			i := rng.Intn(bits)
			queries[cpe] = append(queries[cpe], i)
			if i%2 == 0 {
				want[cpe]++
			}
		}
	}
	hits := SegmentedLookup(cg, 0, queries)
	for cpe := range want {
		if hits[cpe] != want[cpe] {
			t.Fatalf("cpe %d hits %d, want %d", cpe, hits[cpe], want[cpe])
		}
	}
}

func TestSegmentBitvectorTooLargePanics(t *testing.T) {
	// 64 CPEs x 256KB = 16MB = 128Mbit total; 256Mbit cannot fit.
	b := bitmap.New(256 << 20)
	cg := NewCG(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized vector should panic")
		}
	}()
	LoadSegmentBitvector(cg, b, 0)
}

func TestSegmentPlanExclusive(t *testing.T) {
	for _, n := range []int{1, 2, 6, 7} {
		p := SegmentPlan{Segments: n}
		if !p.VerifyExclusive() {
			t.Fatalf("plan with %d segments not exclusive", n)
		}
	}
}

func TestArchConstants(t *testing.T) {
	if CGsPerChip != 6 || CPEsPerCG != 64 || LDMBytes != 256<<10 {
		t.Fatal("SW26010-Pro constants drifted from the paper")
	}
	if Producers+Consumers != CPEsPerCG {
		t.Fatal("OCS roles must cover all CPEs in a CG")
	}
}

// Benchmarks below regenerate the Figure 14 contrast at reduced input size;
// bench_test.go at the repo root runs the full comparison.

func benchKeys(b *testing.B, n int) []uint64 {
	b.Helper()
	return randomKeys(n, 42)
}

func BenchmarkBucketMPE(b *testing.B) {
	keys := benchKeys(b, 1<<20)
	f := func(x uint64) int { return int(x & 0xFF) }
	b.SetBytes(int64(len(keys)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BucketMPE(keys, 256, f)
	}
}

func BenchmarkBucketOCS1CG(b *testing.B) {
	keys := benchKeys(b, 1<<20)
	f := func(x uint64) int { return int(x & 0xFF) }
	b.SetBytes(int64(len(keys)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BucketOCS(keys, 256, f, OCSConfig{CGs: 1})
	}
}

func BenchmarkBucketOCS6CG(b *testing.B) {
	keys := benchKeys(b, 1<<20)
	f := func(x uint64) int { return int(x & 0xFF) }
	b.SetBytes(int64(len(keys)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BucketOCS(keys, 256, f, OCSConfig{CGs: 6})
	}
}

func BenchmarkTwoStageUpdate(b *testing.B) {
	const n = 1 << 20
	dst := make([]int64, n)
	rng := rand.New(rand.NewSource(6))
	msgs := make([]Update, 1<<20)
	for i := range msgs {
		msgs[i] = Update{Idx: rng.Int63n(n), Val: int64(i)}
	}
	b.SetBytes(int64(len(msgs)) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TwoStageUpdate(n, msgs, 0, func(u Update) { dst[u.Idx] = u.Val })
	}
}

func TestBucketOCSOnChipMatchesMPE(t *testing.T) {
	keys := randomKeys(60000, 11)
	f := func(x uint64) int { return int(x & 0xFF) }
	ref := BucketMPE(keys, 256, f)
	cg := NewCG(nil)
	got := BucketOCSOnChip(cg, keys, 256, f)
	bucketsEqual(t, ref, got)
	// Figure 8 discipline is visible in the counters: RMA puts moved at
	// least the payload (whole batches), and DMA streamed the input in.
	s := cg.Counters.Snapshot()
	if s.RMABytes < int64(len(keys)*8) {
		t.Fatalf("RMA moved %d bytes, payload is %d", s.RMABytes, len(keys)*8)
	}
	if s.DMABytes < int64(len(keys)*8) {
		t.Fatalf("DMA streamed %d bytes, input is %d", s.DMABytes, len(keys)*8)
	}
	if s.AtomicOps != 0 {
		t.Fatalf("on-chip OCS used %d atomics; the design eliminates them", s.AtomicOps)
	}
}

func TestBucketOCSOnChipSmallInputs(t *testing.T) {
	cg := NewCG(nil)
	f := func(x uint64) int { return int(x % 8) }
	out := BucketOCSOnChip(cg, nil, 8, f)
	for b, recs := range out {
		if len(recs) != 0 {
			t.Fatalf("bucket %d nonempty on empty input", b)
		}
	}
	out = BucketOCSOnChip(cg, []uint64{5, 13, 5}, 8, f)
	if len(out[5]) != 3 {
		t.Fatalf("bucket 5 has %d records, want 3", len(out[5]))
	}
}

func TestBucketOCSOnChipManyBatches(t *testing.T) {
	// Force every (producer, consumer) pair through multiple buffer cycles:
	// all keys map to one consumer.
	keys := make([]uint64, 50000)
	for i := range keys {
		keys[i] = uint64(i) * 32 // bucket = (i*32)&0xFF, always ≡ 0 mod 32
	}
	f := func(x uint64) int { return int(x & 0xFF) }
	cg := NewCG(nil)
	got := BucketOCSOnChip(cg, keys, 256, f)
	ref := BucketMPE(keys, 256, f)
	bucketsEqual(t, ref, got)
}
