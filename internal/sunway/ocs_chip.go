package sunway

import (
	"sync"
)

// BucketOCSOnChip runs the OCS-RMA bucket sort with its data actually routed
// through the simulated chip, byte-for-byte as Figure 8 draws it:
//
//   - the 64 CPEs of one CG split into 32 producers and 32 consumers;
//   - producer i reserves 32 send buffers of RMABufBytes in its own LDM,
//     one per consumer, and appends each record to the buffer of consumer
//     (bucket mod 32);
//   - a full buffer ships with one RMA put into consumer j's i-th receive
//     buffer (32 reserved slots in the consumer's LDM), then a completion
//     notification releases it to the consumer;
//   - consumer j drains its receive slots, decodes the records, and appends
//     each to one of the buckets it exclusively owns — no atomics anywhere
//     on the data path.
//
// BucketOCS (ocs.go) is the fast host implementation used by benchmarks;
// this one exists to exercise the LDM/RMA model end to end and is verified
// against BucketMPE. Both produce identical per-bucket multisets.
func BucketOCSOnChip(cg *CG, keys []uint64, buckets int, f func(uint64) int) [][]uint64 {
	const (
		recBytes = 8
		batch    = RMABufBytes / recBytes
	)
	// LDM layout per producer: 32 send buffers of RMABufBytes at offset
	// c*RMABufBytes. Per consumer: 32 receive slots at the same offsets.
	// (Producers and consumers are distinct CPEs, so the regions coexist.)
	if Producers*RMABufBytes > LDMBytes {
		panic("sunway: send buffers exceed LDM")
	}
	// notify[j] carries (producer, slot fill) tokens for consumer j —
	// modeling the RMA completion notification the hardware delivers.
	type token struct {
		producer int
		count    int
	}
	notify := make([]chan token, Consumers)
	// ack[i][j] releases producer i's buffer for consumer j after the
	// consumer drained the receive slot (hardware: reply counter).
	ack := make([][]chan struct{}, Producers)
	for j := range notify {
		notify[j] = make(chan token) // rendezvous: one slot per producer pair
	}
	for i := range ack {
		ack[i] = make([]chan struct{}, Consumers)
		for j := range ack[i] {
			ack[i][j] = make(chan struct{}, 1)
			ack[i][j] <- struct{}{} // slot initially free
		}
	}

	out := make([][]uint64, buckets)
	var consumerWG sync.WaitGroup
	for j := 0; j < Consumers; j++ {
		consumerWG.Add(1)
		go func(j int) {
			defer consumerWG.Done()
			cpe := Producers + j // consumers occupy CPEs 32..63
			for tok := range notify[j] {
				// Decode the records from the receive slot the producer
				// put into (slot index = producer number).
				off := tok.producer * RMABufBytes
				ldm := cg.LDM(cpe)[off : off+tok.count*recBytes]
				for r := 0; r < tok.count; r++ {
					k := getUint64(ldm[r*recBytes:])
					b := f(k)
					out[b] = append(out[b], k)
				}
				ack[tok.producer][j] <- struct{}{}
			}
		}(j)
	}

	var producerWG sync.WaitGroup
	chunk := (len(keys) + Producers - 1) / Producers
	for i := 0; i < Producers; i++ {
		lo := i * chunk
		if lo >= len(keys) {
			break
		}
		hi := lo + chunk
		if hi > len(keys) {
			hi = len(keys)
		}
		producerWG.Add(1)
		go func(i, lo, hi int) {
			defer producerWG.Done()
			myLDM := cg.LDM(i)
			fill := make([]int, Consumers)
			flush := func(j int) {
				if fill[j] == 0 {
					return
				}
				<-ack[i][j] // wait for my receive slot at consumer j to free
				// One RMA put moves the batch from my send buffer into
				// consumer j's receive slot i.
				src := myLDM[j*RMABufBytes : j*RMABufBytes+fill[j]*recBytes]
				cg.RMAPut(Producers+j, i*RMABufBytes, src)
				notify[j] <- token{producer: i, count: fill[j]}
				fill[j] = 0
			}
			cg.DMARead((hi - lo) * recBytes)
			for _, k := range keys[lo:hi] {
				j := f(k) % Consumers
				putUint64(myLDM[j*RMABufBytes+fill[j]*recBytes:], k)
				fill[j]++
				if fill[j] == batch {
					flush(j)
				}
			}
			for j := 0; j < Consumers; j++ {
				flush(j)
			}
		}(i, lo, hi)
	}
	producerWG.Wait()
	// Wait until every shipped batch is drained, then stop the consumers.
	for i := 0; i < Producers; i++ {
		for j := 0; j < Consumers; j++ {
			<-ack[i][j]
		}
	}
	for j := range notify {
		close(notify[j])
	}
	consumerWG.Wait()
	return out
}
