// Package sunway simulates the SW26010-Pro many-core processor closely
// enough to reproduce the paper's on-chip kernels: core groups (CGs) of 64
// compute processing elements (CPEs) with 256 KB local data memory (LDM)
// each, remote memory access (RMA) between LDMs in a CG, and DMA between LDM
// and main memory. CPEs are goroutines; LDM is a private byte-addressable
// slice; RMA transfers copy between LDMs with latency accounting.
//
// The package's centerpiece is OCS-RMA (on-chip sorting with RMA, paper
// Section 4.4): a 32-producer/32-consumer bucket sort that replaces per-
// message atomics with exclusive bucket ownership, plus the two-stage
// destination update built on it. These are real working concurrent kernels;
// the MPE/1-CG/6-CG organizational contrast of Figure 14 is reproduced by
// running the same work single-threaded, on one CG, and on six CGs.
package sunway

import (
	"fmt"
	"sync/atomic"
)

// Architecture constants of SW26010-Pro (paper Section 3.1).
const (
	CGsPerChip   = 6
	CPEsPerCG    = 64
	LDMBytes     = 256 << 10
	RMABufBytes  = 512     // per-peer message buffer in OCS-RMA
	LDMLineBytes = 1024    // bit-vector line size in CG-aware segmenting (Fig. 7)
	Producers    = 32      // OCS-RMA producer cores per CG
	Consumers    = 32      // OCS-RMA consumer cores per CG
	MemBandwidth = 249.0e9 // measured chip DMA peak, bytes/s
	MPEsPerChip  = 6
	DMAMinGrain  = 1024 // bytes; smaller transfers waste bandwidth
)

// Counters aggregates simulated hardware events for a kernel run. All fields
// are updated atomically so CPE goroutines can share one instance.
type Counters struct {
	RMAPuts    atomic.Int64 // RMA put operations
	RMAGets    atomic.Int64 // RMA get operations
	RMABytes   atomic.Int64 // bytes moved between LDMs
	DMABytes   atomic.Int64 // bytes moved between LDM and main memory
	GLDGSTOps  atomic.Int64 // direct (uncached) main-memory accesses
	AtomicOps  atomic.Int64 // main-memory atomic operations (expensive)
	CGBarriers atomic.Int64 // cross-CG synchronizations
}

// Snapshot returns a plain-struct copy for reporting.
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		RMAPuts:    c.RMAPuts.Load(),
		RMAGets:    c.RMAGets.Load(),
		RMABytes:   c.RMABytes.Load(),
		DMABytes:   c.DMABytes.Load(),
		GLDGSTOps:  c.GLDGSTOps.Load(),
		AtomicOps:  c.AtomicOps.Load(),
		CGBarriers: c.CGBarriers.Load(),
	}
}

// CounterSnapshot is a point-in-time copy of Counters.
type CounterSnapshot struct {
	RMAPuts, RMAGets, RMABytes int64
	DMABytes                   int64
	GLDGSTOps, AtomicOps       int64
	CGBarriers                 int64
}

// CG models one core group: 64 CPEs, each with a private LDM. The LDMs are
// plain byte slices; RMA is a checked copy between them.
type CG struct {
	ldm      [CPEsPerCG][]byte
	Counters *Counters
}

// NewCG allocates a core group with zeroed LDMs.
func NewCG(counters *Counters) *CG {
	if counters == nil {
		counters = &Counters{}
	}
	cg := &CG{Counters: counters}
	for i := range cg.ldm {
		cg.ldm[i] = make([]byte, LDMBytes)
	}
	return cg
}

// LDM returns CPE cpe's scratchpad.
func (cg *CG) LDM(cpe int) []byte { return cg.ldm[cpe] }

// RMAPut copies len(src) bytes from src (caller-owned, conceptually the
// sender's LDM region) into dst CPE's LDM at off. The caller must ensure the
// destination region is not concurrently accessed, as on real hardware.
func (cg *CG) RMAPut(dstCPE int, off int, src []byte) {
	if off < 0 || off+len(src) > LDMBytes {
		panic(fmt.Sprintf("sunway: RMA put [%d,%d) outside LDM", off, off+len(src)))
	}
	copy(cg.ldm[dstCPE][off:], src)
	cg.Counters.RMAPuts.Add(1)
	cg.Counters.RMABytes.Add(int64(len(src)))
}

// RMAGet copies len(dst) bytes from src CPE's LDM at off into dst.
func (cg *CG) RMAGet(srcCPE int, off int, dst []byte) {
	if off < 0 || off+len(dst) > LDMBytes {
		panic(fmt.Sprintf("sunway: RMA get [%d,%d) outside LDM", off, off+len(dst)))
	}
	copy(dst, cg.ldm[srcCPE][off:])
	cg.Counters.RMAGets.Add(1)
	cg.Counters.RMABytes.Add(int64(len(dst)))
}

// DMARead models a DMA from main memory into LDM: it only accounts bytes
// (the data itself lives in ordinary Go memory either way).
func (cg *CG) DMARead(bytes int) { cg.Counters.DMABytes.Add(int64(bytes)) }

// DMAWrite models a DMA from LDM to main memory.
func (cg *CG) DMAWrite(bytes int) { cg.Counters.DMABytes.Add(int64(bytes)) }
