package sunway

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestAsyncDMARoundTrip(t *testing.T) {
	cg := NewCG(nil)
	src := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(src)
	h := cg.DMAGetAsync(3, 128, src)
	if got := h.Wait(); got != len(src) {
		t.Fatalf("Wait returned %d", got)
	}
	dst := make([]byte, 4096)
	cg.DMAPutAsync(3, 128, dst).Wait()
	if !bytes.Equal(src, dst) {
		t.Fatal("round trip corrupted data")
	}
	if cg.Counters.Snapshot().DMABytes != 8192 {
		t.Fatalf("DMA bytes %d, want 8192", cg.Counters.Snapshot().DMABytes)
	}
}

func TestAsyncDMABounds(t *testing.T) {
	cg := NewCG(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-LDM DMA accepted")
		}
	}()
	cg.DMAGetAsync(0, LDMBytes-10, make([]byte, 100))
}

func TestDMAEffectiveBandwidthShape(t *testing.T) {
	m := DefaultChipModel()
	// Monotone in grain size, approaching peak.
	prev := 0.0
	for _, g := range []int{64, 256, 1024, 4096, 65536, 1 << 20} {
		bw := m.DMAEffectiveBandwidth(g)
		if bw <= prev {
			t.Fatalf("bandwidth not increasing at grain %d", g)
		}
		prev = bw
	}
	if frac := m.DMAEffectiveBandwidth(1<<20) / m.DMABandwidth; frac < 0.99 {
		t.Fatalf("1MB grain reaches only %.2f of peak", frac)
	}
	// The paper's minimum useful grain (~1KB) sits at half peak under the
	// calibration — "good bandwidth utilization through large enough grains".
	if frac := m.DMAEffectiveBandwidth(1024) / m.DMABandwidth; frac < 0.45 || frac > 0.55 {
		t.Fatalf("1KB grain at %.2f of peak, want ~0.5", frac)
	}
	if m.DMAEffectiveBandwidth(0) != 0 {
		t.Fatal("zero grain should yield zero bandwidth")
	}
}

func TestStreamProcessComputesCorrectly(t *testing.T) {
	cg := NewCG(nil)
	src := make([]byte, 100000)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]byte, len(src))
	chunks := StreamProcess(cg, 7, src, dst, 4096, func(chunk []byte) {
		for i := range chunk {
			chunk[i] += 3
		}
	})
	wantChunks := (len(src) + 4095) / 4096
	if chunks != wantChunks {
		t.Fatalf("processed %d chunks, want %d", chunks, wantChunks)
	}
	for i := range dst {
		if dst[i] != byte(i)+3 {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], byte(i)+3)
		}
	}
	// Traffic: every byte in and out once.
	if got := cg.Counters.Snapshot().DMABytes; got != int64(2*len(src)) {
		t.Fatalf("DMA bytes %d, want %d", got, 2*len(src))
	}
}

func TestStreamProcessEdgeCases(t *testing.T) {
	cg := NewCG(nil)
	if got := StreamProcess(cg, 0, nil, nil, 1024, func([]byte) {}); got != 0 {
		t.Fatalf("empty stream processed %d chunks", got)
	}
	// Non-multiple length.
	src := []byte{1, 2, 3}
	dst := make([]byte, 3)
	StreamProcess(cg, 0, src, dst, 1024, func(chunk []byte) {
		for i := range chunk {
			chunk[i] *= 2
		}
	})
	if dst[0] != 2 || dst[2] != 6 {
		t.Fatalf("tail chunk wrong: %v", dst)
	}
}

func TestStreamProcessRejectsBadGeometry(t *testing.T) {
	cg := NewCG(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized grain accepted")
		}
	}()
	StreamProcess(cg, 0, make([]byte, 10), make([]byte, 10), LDMBytes, func([]byte) {})
}

func BenchmarkStreamProcess(b *testing.B) {
	cg := NewCG(nil)
	src := make([]byte, 1<<20)
	dst := make([]byte, len(src))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StreamProcess(cg, 0, src, dst, 32<<10, func(chunk []byte) {
			for j := range chunk {
				chunk[j]++
			}
		})
	}
}
