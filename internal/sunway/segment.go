package sunway

import (
	"sync"

	"repro/internal/bitmap"
)

// CG-aware segmenting support (paper Section 4.3, Figures 6-7).
//
// The activeness bit vector of one core-subgraph segment is distributed over
// the 64 CPE LDMs of a core group in 1024-byte lines, round-robin by line.
// A CPE resolving "is source vertex x active?" computes the owner CPE and
// LDM offset from the bit index with shifts and masks, then issues an RMA
// get for the word — replacing a slow uncached main-memory load (GLD).

// LoadSegmentBitvector distributes bits (one segment's activeness vector)
// across the CPE LDMs of cg starting at LDM offset ldmOff, in LDMLineBytes
// lines. It returns the number of bytes resident per CPE. The vector must
// fit: lines/64 per CPE, each line LDMLineBytes.
func LoadSegmentBitvector(cg *CG, bits *bitmap.Bitmap, ldmOff int) int {
	seg := bitmap.NewSegmented(bits.Len(), CPEsPerCG, LDMLineBytes)
	seg.LoadFrom(bits)
	maxBytes := 0
	for cpe := 0; cpe < CPEsPerCG; cpe++ {
		lane := seg.Lane(cpe)
		n := len(lane) * 8
		if ldmOff+n > LDMBytes {
			panic("sunway: segment bit vector does not fit in LDM")
		}
		dst := cg.LDM(cpe)[ldmOff : ldmOff+n]
		for i, w := range lane {
			putUint64(dst[i*8:], w)
		}
		cg.DMARead(n)
		if n > maxBytes {
			maxBytes = n
		}
	}
	return maxBytes
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// TestBitRMA resolves bit i of a distributed segment vector (loaded at
// ldmOff) from any CPE via one RMA get, using the paper's offset mapping:
// line = i / (LDMLineBytes*8); owner = line % 64; offset inside the owner's
// lane = (line/64)*LDMLineBytes + (i % lineBits)/8.
func TestBitRMA(cg *CG, ldmOff int, i int) bool {
	const lineBits = LDMLineBytes * 8
	line := i / lineBits
	owner := line % CPEsPerCG
	localLine := line / CPEsPerCG
	bitInLine := i % lineBits
	byteOff := localLine*LDMLineBytes + (bitInLine/64)*8
	var word [8]byte
	cg.RMAGet(owner, ldmOff+byteOff, word[:])
	return getUint64(word[:])&(1<<uint(bitInLine&63)) != 0
}

// SegmentedLookup runs queries[cpe] on each CPE concurrently, resolving each
// bit through RMA, and returns the per-CPE hit counts. It exercises the full
// Figure-7 pipeline: distribute, map offsets, RMA get.
func SegmentedLookup(cg *CG, ldmOff int, queries [][]int) []int {
	hits := make([]int, CPEsPerCG)
	var wg sync.WaitGroup
	for cpe := 0; cpe < CPEsPerCG && cpe < len(queries); cpe++ {
		wg.Add(1)
		go func(cpe int) {
			defer wg.Done()
			h := 0
			for _, q := range queries[cpe] {
				if TestBitRMA(cg, ldmOff, q) {
					h++
				}
			}
			hits[cpe] = h
		}(cpe)
	}
	wg.Wait()
	return hits
}

// SegmentPlan describes the round-robin (segment, interval) schedule of the
// core-subgraph pull: CG s processes interval (s+step) mod CGs at each step,
// so no two CGs ever write the same source interval concurrently.
type SegmentPlan struct {
	Segments int
}

// IntervalFor returns the interval CG cg processes at the given step.
func (p SegmentPlan) IntervalFor(cg, step int) int {
	return (cg + step) % p.Segments
}

// VerifyExclusive reports whether the schedule assigns every (segment,
// interval) pair exactly once across Segments steps with no two CGs sharing
// an interval within a step.
func (p SegmentPlan) VerifyExclusive() bool {
	seen := make(map[[2]int]bool)
	for step := 0; step < p.Segments; step++ {
		used := make(map[int]bool)
		for cg := 0; cg < p.Segments; cg++ {
			iv := p.IntervalFor(cg, step)
			if used[iv] {
				return false
			}
			used[iv] = true
			seen[[2]int{cg, iv}] = true
		}
	}
	return len(seen) == p.Segments*p.Segments
}
