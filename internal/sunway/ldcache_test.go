package sunway

import (
	"math/rand"
	"testing"
)

func TestLDCacheBasics(t *testing.T) {
	c := NewLDCache(1024, 64) // 16 lines
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) || !c.Access(63) {
		t.Fatal("same-line access missed")
	}
	if c.Access(64) {
		t.Fatal("next-line cold access hit")
	}
	// Conflict: address 0 and 1024 map to the same slot.
	c.Reset()
	c.Access(0)
	if c.Access(1024) {
		t.Fatal("conflicting line hit")
	}
	if c.Access(0) {
		t.Fatal("evicted line hit")
	}
	if got := c.Misses(); got != 3 {
		t.Fatalf("misses = %d, want 3", got)
	}
}

func TestLDCachePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry accepted")
		}
	}()
	NewLDCache(1000, 64)
}

func TestHitRateBounds(t *testing.T) {
	c := NewLDCache(256, 64)
	if c.HitRate() != 0 {
		t.Fatal("hit rate before access")
	}
	c.Access(0)
	c.Access(0)
	if hr := c.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate %g, want 0.5", hr)
	}
}

func TestSegmentingArgument(t *testing.T) {
	// The paper's premise: random reads over a multi-MB activeness vector
	// thrash a 256KB cache; segmenting into 6 pieces that fit restores
	// locality. Footprint 12 MB (the paper's column bit-vector bound is
	// 12.5 MB), cache 2 MB (one CG's aggregate usable LDM), 6 segments of
	// 2 MB each.
	const (
		footprint = 12 << 20
		cache     = 2 << 20
		line      = 64
	)
	rng := rand.New(rand.NewSource(7))
	addrs := make([]int64, 300000)
	for i := range addrs {
		addrs[i] = rng.Int63n(footprint)
	}
	flat, seg := SegmentingHitRates(cache, line, footprint, addrs, 6)
	if flat > 0.35 {
		t.Fatalf("unsegmented hit rate %.2f suspiciously high for a 6x-over-capacity working set", flat)
	}
	// Each segment fits entirely: after its compulsory misses every access
	// hits, so the segmented rate must far exceed the unsegmented one.
	if seg <= flat+0.2 {
		t.Fatalf("segmenting did not restore locality: flat %.3f vs segmented %.3f", flat, seg)
	}
}

func TestSegmentedFitsPerfectly(t *testing.T) {
	// Working set exactly equals segments x cache: repeated passes within a
	// segment are all hits after the first touch of each line.
	const (
		cache = 1 << 16
		line  = 64
	)
	footprint := int64(4 * cache)
	var addrs []int64
	// Touch every line twice, in segment-coherent order after the split.
	for a := int64(0); a < footprint; a += line {
		addrs = append(addrs, a, a)
	}
	_, seg := SegmentingHitRates(cache, line, footprint, addrs, 4)
	// 2 accesses per line, 1 compulsory miss each: hit rate exactly 0.5.
	if seg != 0.5 {
		t.Fatalf("segmented hit rate %.3f, want 0.5", seg)
	}
}

func BenchmarkLDCacheAccess(b *testing.B) {
	c := NewLDCache(256<<10, 64)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]int64, 1<<16)
	for i := range addrs {
		addrs[i] = rng.Int63n(12 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(1<<16-1)])
	}
}
