package sunway

// LDCache models the optional Local Data Cache of SW26010-Pro (Section
// 3.1.2): LDM space reconfigured as a direct-mapped cache in front of main
// memory. The paper's Section 3.3 observes it cannot hold the hot data of a
// full traversal ("the cache size is also not large enough to hold the hot
// data given millions of vertices each node is responsible for") — which is
// exactly the motivation for CG-aware segmenting. The simulator makes that
// argument quantitative: random accesses over a working set larger than the
// cache thrash; the same accesses restricted to one segment hit.
type LDCache struct {
	lineBytes int
	lines     int
	tags      []int64
	hits      int64
	misses    int64
}

// NewLDCache builds a direct-mapped cache of sizeBytes capacity with
// lineBytes lines. Size must be a multiple of the line size.
func NewLDCache(sizeBytes, lineBytes int) *LDCache {
	if lineBytes <= 0 || sizeBytes <= 0 || sizeBytes%lineBytes != 0 {
		panic("sunway: cache size must be a positive multiple of the line size")
	}
	c := &LDCache{lineBytes: lineBytes, lines: sizeBytes / lineBytes}
	c.tags = make([]int64, c.lines)
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// Access touches byte address addr, returning whether it hit.
func (c *LDCache) Access(addr int64) bool {
	line := addr / int64(c.lineBytes)
	slot := int(line % int64(c.lines))
	if c.tags[slot] == line {
		c.hits++
		return true
	}
	c.tags[slot] = line
	c.misses++
	return false
}

// Hits returns the hit count.
func (c *LDCache) Hits() int64 { return c.hits }

// Misses returns the miss count.
func (c *LDCache) Misses() int64 { return c.misses }

// HitRate returns hits / (hits + misses), or 0 before any access.
func (c *LDCache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Reset clears contents and counters.
func (c *LDCache) Reset() {
	for i := range c.tags {
		c.tags[i] = -1
	}
	c.hits, c.misses = 0, 0
}

// SegmentingHitRates quantifies the CG-aware segmenting argument: it replays
// the random bit-vector accesses of a pull kernel over a footprint of
// footprintBytes, first unrestricted, then segment-by-segment in `segments`
// contiguous pieces, against a fresh cache of cacheBytes each time. It
// returns (unsegmented, segmented) hit rates. addrs are byte offsets into
// the footprint; the segmented replay processes each address in its
// segment's pass, as the round-robin interval schedule does.
func SegmentingHitRates(cacheBytes, lineBytes int, footprintBytes int64, addrs []int64, segments int) (float64, float64) {
	flat := NewLDCache(cacheBytes, lineBytes)
	for _, a := range addrs {
		flat.Access(a % footprintBytes)
	}
	segLen := (footprintBytes + int64(segments) - 1) / int64(segments)
	segCache := NewLDCache(cacheBytes, lineBytes)
	for s := int64(0); s < int64(segments); s++ {
		lo, hi := s*segLen, (s+1)*segLen
		for _, a := range addrs {
			a %= footprintBytes
			if a >= lo && a < hi {
				segCache.Access(a)
			}
		}
	}
	return flat.HitRate(), segCache.HitRate()
}
