package sunway

import "sync"

// Asynchronous DMA (paper Section 3.1.1): "The CPEs can initiate
// asynchronous DMA requests, copy chunks of data between main memory and
// LDM ... Good bandwidth utilization can be exploited through large enough
// DMA grain sizes." This file provides the async interface, the grain-size
// bandwidth model behind that sentence, and a double-buffered streaming
// helper in the style CPE kernels use to overlap transfer with compute.

// DMAHandle is an in-flight asynchronous transfer; Wait blocks until the
// data has landed.
type DMAHandle struct {
	done  chan struct{}
	bytes int
}

// Wait blocks until the transfer completes and returns its size.
func (h *DMAHandle) Wait() int {
	<-h.done
	return h.bytes
}

// DMAGetAsync starts copying main-memory data src into CPE cpe's LDM at off,
// returning immediately.
func (cg *CG) DMAGetAsync(cpe int, off int, src []byte) *DMAHandle {
	if off < 0 || off+len(src) > LDMBytes {
		panic("sunway: async DMA outside LDM")
	}
	h := &DMAHandle{done: make(chan struct{}), bytes: len(src)}
	go func() {
		copy(cg.ldm[cpe][off:], src)
		cg.Counters.DMABytes.Add(int64(len(src)))
		close(h.done)
	}()
	return h
}

// DMAPutAsync starts copying from CPE cpe's LDM at off into the main-memory
// destination dst.
func (cg *CG) DMAPutAsync(cpe int, off int, dst []byte) *DMAHandle {
	if off < 0 || off+len(dst) > LDMBytes {
		panic("sunway: async DMA outside LDM")
	}
	h := &DMAHandle{done: make(chan struct{}), bytes: len(dst)}
	go func() {
		copy(dst, cg.ldm[cpe][off:])
		cg.Counters.DMABytes.Add(int64(len(dst)))
		close(h.done)
	}()
	return h
}

// DMA grain-size model: a transfer costs startup latency plus bytes over
// peak bandwidth, so effective bandwidth is peak * grain/(grain + c) where
// c = latency*peak. With the paper's 1 KB minimum useful grain we calibrate
// c so that 1 KB reaches ~50% of peak — matching "large enough DMA grain
// sizes" being necessary for good utilization.
const dmaLatencyEquivalentBytes = 1024.0

// DMAEffectiveBandwidth returns the modeled bytes/s a single CPE stream
// achieves with the given DMA grain size, out of the chip's shared peak.
func (m ChipModel) DMAEffectiveBandwidth(grainBytes int) float64 {
	if grainBytes <= 0 {
		return 0
	}
	g := float64(grainBytes)
	return m.DMABandwidth * g / (g + dmaLatencyEquivalentBytes)
}

// StreamProcess pipelines fn over src in grain-sized chunks with two LDM
// buffers per CPE: while chunk i is being processed in one buffer, chunk i+1
// streams into the other — the canonical double-buffering discipline of CPE
// kernels. fn receives each chunk's LDM-resident bytes in order; results are
// written back through dst (same length as src) with put-DMA. Returns the
// number of chunks processed.
func StreamProcess(cg *CG, cpe int, src, dst []byte, grain int, fn func(chunk []byte)) int {
	if grain <= 0 || 2*grain > LDMBytes {
		panic("sunway: stream grain must fit two buffers in LDM")
	}
	if len(dst) != len(src) {
		panic("sunway: stream src/dst length mismatch")
	}
	bufOff := [2]int{0, grain}
	chunks := 0
	var pending *DMAHandle
	var pendingBuf int
	var pendingLo, pendingHi int
	// Prefetch the first chunk.
	if len(src) > 0 {
		hi := grain
		if hi > len(src) {
			hi = len(src)
		}
		pending = cg.DMAGetAsync(cpe, bufOff[0], src[:hi])
		pendingBuf, pendingLo, pendingHi = 0, 0, hi
	}
	var writes sync.WaitGroup
	for pending != nil {
		pending.Wait()
		buf, lo, hi := pendingBuf, pendingLo, pendingHi
		// Start the next fetch into the other buffer before computing —
		// after any outstanding write-back from that buffer has drained
		// (two iterations ago it held data still streaming out).
		pending = nil
		if hi < len(src) {
			nhi := hi + grain
			if nhi > len(src) {
				nhi = len(src)
			}
			writes.Wait()
			pending = cg.DMAGetAsync(cpe, bufOff[1-buf], src[hi:nhi])
			pendingBuf, pendingLo, pendingHi = 1-buf, hi, nhi
		}
		chunk := cg.LDM(cpe)[bufOff[buf] : bufOff[buf]+(hi-lo)]
		fn(chunk)
		writes.Add(1)
		go func(buf, lo, hi int) {
			defer writes.Done()
			cg.DMAPutAsync(cpe, bufOff[buf], dst[lo:hi]).Wait()
		}(buf, lo, hi)
		chunks++
	}
	writes.Wait()
	return chunks
}
