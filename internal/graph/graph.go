// Package graph provides the in-memory graph representations the engine
// works with: raw edge lists and Compressed Sparse Row (CSR) adjacency, with
// parallel construction. Vertex IDs are int64 because the paper's target
// graphs (2^44 vertices) exceed 32 bits; local (per-partition) indices are
// int32 where the partitioning guarantees they fit.
package graph

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/rmat"
)

// CSR is a compressed sparse row adjacency structure over n vertices.
// Neighbors of u are Adj[Ptr[u]:Ptr[u+1]].
type CSR struct {
	N   int64
	Ptr []int64
	Adj []int64
}

// Degree returns the out-degree of u.
func (g *CSR) Degree(u int64) int64 { return g.Ptr[u+1] - g.Ptr[u] }

// Neighbors returns the adjacency slice of u.
func (g *CSR) Neighbors(u int64) []int64 { return g.Adj[g.Ptr[u]:g.Ptr[u+1]] }

// NumEdges returns the number of stored directed edges.
func (g *CSR) NumEdges() int64 { return int64(len(g.Adj)) }

// Validate checks structural invariants, returning a descriptive error.
func (g *CSR) Validate() error {
	if int64(len(g.Ptr)) != g.N+1 {
		return fmt.Errorf("graph: ptr length %d, want %d", len(g.Ptr), g.N+1)
	}
	if g.Ptr[0] != 0 {
		return fmt.Errorf("graph: ptr[0] = %d, want 0", g.Ptr[0])
	}
	for i := int64(0); i < g.N; i++ {
		if g.Ptr[i] > g.Ptr[i+1] {
			return fmt.Errorf("graph: ptr not monotone at %d: %d > %d", i, g.Ptr[i], g.Ptr[i+1])
		}
	}
	if g.Ptr[g.N] != int64(len(g.Adj)) {
		return fmt.Errorf("graph: ptr[n] = %d, want %d", g.Ptr[g.N], len(g.Adj))
	}
	for _, v := range g.Adj {
		if v < 0 || v >= g.N {
			return fmt.Errorf("graph: neighbor %d out of [0,%d)", v, g.N)
		}
	}
	return nil
}

// BuildOptions tunes CSR construction.
type BuildOptions struct {
	// Symmetrize inserts both directions of every input edge.
	Symmetrize bool
	// DropSelfLoops removes u-u edges (Graph 500 BFS treats them as
	// irrelevant; the generator may emit them).
	DropSelfLoops bool
	// Dedup removes parallel edges after construction.
	Dedup bool
	// SortAdj sorts each adjacency list ascending (implied by Dedup).
	SortAdj bool
	// Workers caps parallelism; 0 means GOMAXPROCS.
	Workers int
}

// FromEdges builds a CSR over n vertices from the edge list.
func FromEdges(n int64, edges []rmat.Edge, opt BuildOptions) *CSR {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Pass 1: count out-degrees (sharded counters to avoid atomics).
	counts := parallelCounts(n, edges, opt, workers)
	ptr := make([]int64, n+1)
	var sum int64
	for i := int64(0); i < n; i++ {
		ptr[i] = sum
		sum += counts[i]
	}
	ptr[n] = sum
	adj := make([]int64, sum)
	// Pass 2: scatter. Reuse counts as per-vertex write cursors.
	cursor := counts
	copy(cursor, ptr[:n])
	// Sequential scatter (still fast; contention-free). For very large edge
	// lists a two-level bucket scatter would parallelize this, which the
	// psort package provides for the partitioner; plain CSR construction is
	// not on the measured path.
	for _, e := range edges {
		u, v := e.U, e.V
		if opt.DropSelfLoops && u == v {
			continue
		}
		adj[cursor[u]] = v
		cursor[u]++
		if opt.Symmetrize {
			adj[cursor[v]] = u
			cursor[v]++
		}
	}
	g := &CSR{N: n, Ptr: ptr, Adj: adj}
	if opt.Dedup || opt.SortAdj {
		g.sortAdjacency(workers)
	}
	if opt.Dedup {
		g = g.dedup()
	}
	return g
}

func parallelCounts(n int64, edges []rmat.Edge, opt BuildOptions, workers int) []int64 {
	shards := make([][]int64, workers)
	var wg sync.WaitGroup
	chunk := (len(edges) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(edges) {
			break
		}
		hi := lo + chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			local := make([]int64, n)
			for _, e := range edges[lo:hi] {
				if opt.DropSelfLoops && e.U == e.V {
					continue
				}
				local[e.U]++
				if opt.Symmetrize {
					local[e.V]++
				}
			}
			shards[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	counts := make([]int64, n)
	for _, local := range shards {
		if local == nil {
			continue
		}
		for i := range counts {
			counts[i] += local[i]
		}
	}
	return counts
}

func (g *CSR) sortAdjacency(workers int) {
	var wg sync.WaitGroup
	chunk := (g.N + int64(workers) - 1) / int64(workers)
	for w := 0; w < workers; w++ {
		lo := int64(w) * chunk
		if lo >= g.N {
			break
		}
		hi := lo + chunk
		if hi > g.N {
			hi = g.N
		}
		wg.Add(1)
		go func(lo, hi int64) {
			defer wg.Done()
			for u := lo; u < hi; u++ {
				nb := g.Adj[g.Ptr[u]:g.Ptr[u+1]]
				sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
			}
		}(lo, hi)
	}
	wg.Wait()
}

// dedup removes duplicate neighbors; adjacency must already be sorted.
func (g *CSR) dedup() *CSR {
	newPtr := make([]int64, g.N+1)
	newAdj := g.Adj[:0] // rewrite in place; reads stay ahead of writes
	var w int64
	for u := int64(0); u < g.N; u++ {
		newPtr[u] = w
		var last int64 = -1
		for _, v := range g.Adj[g.Ptr[u]:g.Ptr[u+1]] {
			if v != last {
				newAdj = append(newAdj[:w], v)
				w++
				last = v
			}
		}
	}
	newPtr[g.N] = w
	return &CSR{N: g.N, Ptr: newPtr, Adj: g.Adj[:w]}
}

// Transpose returns the reverse graph (v→u for every u→v).
func (g *CSR) Transpose() *CSR {
	counts := make([]int64, g.N)
	for _, v := range g.Adj {
		counts[v]++
	}
	ptr := make([]int64, g.N+1)
	var sum int64
	for i := int64(0); i < g.N; i++ {
		ptr[i] = sum
		sum += counts[i]
	}
	ptr[g.N] = sum
	adj := make([]int64, sum)
	cursor := counts
	copy(cursor, ptr[:g.N])
	for u := int64(0); u < g.N; u++ {
		for _, v := range g.Adj[g.Ptr[u]:g.Ptr[u+1]] {
			adj[cursor[v]] = u
			cursor[v]++
		}
	}
	return &CSR{N: g.N, Ptr: ptr, Adj: adj}
}

// SequentialBFS runs a textbook BFS from root over the CSR (which must be
// symmetric for undirected semantics) and returns the parent array, with -1
// for unreachable vertices and parent[root] = root. It is the reference
// implementation the distributed engines are validated against.
func (g *CSR) SequentialBFS(root int64) []int64 {
	parent := make([]int64, g.N)
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = root
	queue := make([]int64, 0, 1024)
	queue = append(queue, root)
	for len(queue) > 0 {
		next := queue[:0:0]
		for _, u := range queue {
			for _, v := range g.Neighbors(u) {
				if parent[v] == -1 {
					parent[v] = u
					next = append(next, v)
				}
			}
		}
		queue = next
	}
	return parent
}

// Levels converts a parent array into BFS levels (-1 for unreachable).
// It returns an error if the parent pointers do not form a tree rooted at
// root (e.g. contain a cycle).
func Levels(parent []int64, root int64) ([]int64, error) {
	n := int64(len(parent))
	levels := make([]int64, n)
	for i := range levels {
		levels[i] = -1
	}
	if parent[root] != root {
		return nil, fmt.Errorf("graph: parent[root=%d] = %d, want self", root, parent[root])
	}
	levels[root] = 0
	for v := int64(0); v < n; v++ {
		if parent[v] == -1 || levels[v] >= 0 {
			continue
		}
		// Walk up to a resolved ancestor, then unwind.
		path := []int64{}
		u := v
		for levels[u] < 0 {
			path = append(path, u)
			u = parent[u]
			if u < 0 || u >= n {
				return nil, fmt.Errorf("graph: parent chain of %d leaves range at %d", v, u)
			}
			if int64(len(path)) > n {
				return nil, fmt.Errorf("graph: parent cycle involving %d", v)
			}
		}
		base := levels[u]
		for i := len(path) - 1; i >= 0; i-- {
			base++
			levels[path[i]] = base
		}
	}
	return levels, nil
}
