package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rmat"
)

func lineGraph(n int64) []rmat.Edge {
	edges := make([]rmat.Edge, 0, n-1)
	for i := int64(0); i < n-1; i++ {
		edges = append(edges, rmat.Edge{U: i, V: i + 1})
	}
	return edges
}

func TestFromEdgesBasic(t *testing.T) {
	g := FromEdges(4, []rmat.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 3}}, BuildOptions{Symmetrize: true, SortAdj: true})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 6 {
		t.Fatalf("NumEdges = %d, want 6", g.NumEdges())
	}
	wantNeighbors := map[int64][]int64{0: {1, 3}, 1: {0, 2}, 2: {1}, 3: {0}}
	for u, want := range wantNeighbors {
		got := g.Neighbors(u)
		if len(got) != len(want) {
			t.Fatalf("neighbors(%d) = %v, want %v", u, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("neighbors(%d) = %v, want %v", u, got, want)
			}
		}
	}
}

func TestSelfLoopAndDedup(t *testing.T) {
	edges := []rmat.Edge{{U: 0, V: 0}, {U: 0, V: 1}, {U: 0, V: 1}, {U: 1, V: 0}}
	g := FromEdges(2, edges, BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := g.Degree(0); d != 1 {
		t.Fatalf("degree(0) = %d, want 1 after dedup+loop drop", d)
	}
	if d := g.Degree(1); d != 1 {
		t.Fatalf("degree(1) = %d, want 1", d)
	}
}

func TestDegreeSumInvariant(t *testing.T) {
	cfg := rmat.Config{Scale: 10, Seed: 4}
	edges := rmat.Generate(cfg)
	g := FromEdges(cfg.NumVertices(), edges, BuildOptions{Symmetrize: true})
	var sum int64
	for u := int64(0); u < g.N; u++ {
		sum += g.Degree(u)
	}
	if sum != 2*int64(len(edges)) {
		t.Fatalf("degree sum %d, want %d", sum, 2*len(edges))
	}
}

func TestTransposeInvolution(t *testing.T) {
	cfg := rmat.Config{Scale: 8, Seed: 5}
	edges := rmat.Generate(cfg)
	g := FromEdges(cfg.NumVertices(), edges, BuildOptions{SortAdj: true})
	tt := g.Transpose().Transpose()
	tt.sortAdjacency(4)
	if g.N != tt.N || len(g.Adj) != len(tt.Adj) {
		t.Fatal("transpose changed size")
	}
	for u := int64(0); u < g.N; u++ {
		a, b := g.Neighbors(u), tt.Neighbors(u)
		if len(a) != len(b) {
			t.Fatalf("degree(%d) changed: %d vs %d", u, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("neighbors(%d) changed", u)
			}
		}
	}
}

func TestTransposeEdgeReversal(t *testing.T) {
	g := FromEdges(3, []rmat.Edge{{U: 0, V: 1}, {U: 0, V: 2}}, BuildOptions{})
	tr := g.Transpose()
	if tr.Degree(0) != 0 || tr.Degree(1) != 1 || tr.Degree(2) != 1 {
		t.Fatalf("transpose degrees wrong: %d %d %d", tr.Degree(0), tr.Degree(1), tr.Degree(2))
	}
	if tr.Neighbors(1)[0] != 0 || tr.Neighbors(2)[0] != 0 {
		t.Fatal("transpose targets wrong")
	}
}

func TestSequentialBFSLine(t *testing.T) {
	g := FromEdges(5, lineGraph(5), BuildOptions{Symmetrize: true})
	parent := g.SequentialBFS(0)
	want := []int64{0, 0, 1, 2, 3}
	for i, w := range want {
		if parent[i] != w {
			t.Fatalf("parent[%d] = %d, want %d", i, parent[i], w)
		}
	}
	levels, err := Levels(parent, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		if levels[i] != i {
			t.Fatalf("level[%d] = %d, want %d", i, levels[i], i)
		}
	}
}

func TestSequentialBFSDisconnected(t *testing.T) {
	g := FromEdges(4, []rmat.Edge{{U: 0, V: 1}}, BuildOptions{Symmetrize: true})
	parent := g.SequentialBFS(0)
	if parent[2] != -1 || parent[3] != -1 {
		t.Fatal("unreachable vertices must have parent -1")
	}
	levels, err := Levels(parent, 0)
	if err != nil {
		t.Fatal(err)
	}
	if levels[2] != -1 || levels[3] != -1 {
		t.Fatal("unreachable vertices must have level -1")
	}
}

func TestLevelsDetectsCycle(t *testing.T) {
	// 1 and 2 point at each other; neither reaches the root.
	parent := []int64{0, 2, 1}
	if _, err := Levels(parent, 0); err == nil {
		t.Fatal("Levels should reject a parent cycle")
	}
}

func TestLevelsRejectsBadRoot(t *testing.T) {
	parent := []int64{1, 1}
	if _, err := Levels(parent, 0); err == nil {
		t.Fatal("Levels should reject parent[root] != root")
	}
}

func TestBFSMatchesLevelsOnRMAT(t *testing.T) {
	cfg := rmat.Config{Scale: 10, Seed: 6}
	edges := rmat.Generate(cfg)
	g := FromEdges(cfg.NumVertices(), edges, BuildOptions{Symmetrize: true, DropSelfLoops: true})
	parent := g.SequentialBFS(1)
	levels, err := Levels(parent, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every tree edge must span exactly one level.
	for v := int64(0); v < g.N; v++ {
		if parent[v] == -1 || v == 1 {
			continue
		}
		if levels[v] != levels[parent[v]]+1 {
			t.Fatalf("tree edge %d->%d spans %d levels", parent[v], v, levels[v]-levels[parent[v]])
		}
	}
}

func TestPropertyCSRPreservesMultiset(t *testing.T) {
	f := func(raw []uint8) bool {
		const n = 16
		edges := make([]rmat.Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, rmat.Edge{U: int64(raw[i] % n), V: int64(raw[i+1] % n)})
		}
		g := FromEdges(n, edges, BuildOptions{})
		if err := g.Validate(); err != nil {
			return false
		}
		// Multiset of directed edges must match input exactly.
		type pair struct{ u, v int64 }
		in := map[pair]int{}
		for _, e := range edges {
			in[pair{e.U, e.V}]++
		}
		out := map[pair]int{}
		for u := int64(0); u < n; u++ {
			for _, v := range g.Neighbors(u) {
				out[pair{u, v}]++
			}
		}
		if len(in) != len(out) {
			return false
		}
		for k, c := range in {
			if out[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := FromEdges(3, []rmat.Edge{{U: 0, V: 1}}, BuildOptions{})
	g.Adj[0] = 99
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range neighbor")
	}
	g2 := FromEdges(3, []rmat.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, BuildOptions{})
	g2.Ptr[1] = 2
	g2.Ptr[2] = 1
	if err := g2.Validate(); err == nil {
		t.Fatal("Validate accepted non-monotone ptr")
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	cfg := rmat.Config{Scale: 9, Seed: 7}
	edges := rmat.Generate(cfg)
	a := FromEdges(cfg.NumVertices(), edges, BuildOptions{Symmetrize: true, SortAdj: true, Workers: 1})
	b := FromEdges(cfg.NumVertices(), edges, BuildOptions{Symmetrize: true, SortAdj: true, Workers: 8})
	for u := int64(0); u < a.N; u++ {
		x, y := a.Neighbors(u), b.Neighbors(u)
		if len(x) != len(y) {
			t.Fatalf("degree(%d) differs by workers", u)
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("adjacency(%d) differs by workers", u)
			}
		}
	}
}

func randomEdges(n int64, m int, seed int64) []rmat.Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]rmat.Edge, m)
	for i := range edges {
		edges[i] = rmat.Edge{U: rng.Int63n(n), V: rng.Int63n(n)}
	}
	return edges
}

func TestDedupSorted(t *testing.T) {
	g := FromEdges(100, randomEdges(100, 5000, 1), BuildOptions{Symmetrize: true, Dedup: true})
	for u := int64(0); u < g.N; u++ {
		nb := g.Neighbors(u)
		for i := 1; i < len(nb); i++ {
			if nb[i] <= nb[i-1] {
				t.Fatalf("neighbors(%d) not strictly increasing after dedup", u)
			}
		}
	}
}

func BenchmarkFromEdgesScale16(b *testing.B) {
	cfg := rmat.Config{Scale: 16, Seed: 1}
	edges := rmat.Generate(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEdges(cfg.NumVertices(), edges, BuildOptions{Symmetrize: true, DropSelfLoops: true})
	}
}

func BenchmarkSequentialBFSScale16(b *testing.B) {
	cfg := rmat.Config{Scale: 16, Seed: 1}
	g := FromEdges(cfg.NumVertices(), rmat.Generate(cfg), BuildOptions{Symmetrize: true, DropSelfLoops: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SequentialBFS(0)
	}
}
