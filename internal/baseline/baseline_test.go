package baseline

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rmat"
	"repro/internal/validate"
)

func TestBaselineMatchesReference(t *testing.T) {
	cfg := rmat.Config{Scale: 10, Seed: 41}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	g := graph.FromEdges(n, edges, graph.BuildOptions{Symmetrize: true, DropSelfLoops: true})
	for _, ranks := range []int{1, 3, 8} {
		e, err := New(n, edges, Options{Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		for _, root := range []int64{0, 17, 999} {
			res, err := e.Run(root)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := validate.BFS(n, edges, root, res.Parent); err != nil {
				t.Fatalf("ranks=%d root=%d: %v", ranks, root, err)
			}
			refLvl, _ := graph.Levels(g.SequentialBFS(root), root)
			gotLvl, err := graph.Levels(res.Parent, root)
			if err != nil {
				t.Fatal(err)
			}
			for v := int64(0); v < n; v++ {
				if refLvl[v] != gotLvl[v] {
					t.Fatalf("ranks=%d root=%d: level[%d] = %d, want %d", ranks, root, v, gotLvl[v], refLvl[v])
				}
			}
		}
	}
}

func TestBaselinePushOnly(t *testing.T) {
	cfg := rmat.Config{Scale: 9, Seed: 42}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	e, err := New(n, edges, Options{Ranks: 4, PullThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := validate.BFS(n, edges, 1, res.Parent); err != nil {
		t.Fatal(err)
	}
	if res.MessagesSent == 0 {
		t.Fatal("push-only run sent no messages")
	}
}

func TestBaselineMessageCountIsEdgesTouched(t *testing.T) {
	// Push-only vanilla 1D: every touched edge is a message — the cost the
	// paper's delegation removes.
	cfg := rmat.Config{Scale: 9, Seed: 43}
	edges := rmat.Generate(cfg)
	e, err := New(cfg.NumVertices(), edges, Options{Ranks: 4, PullThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesSent != res.EdgesTouched {
		t.Fatalf("messages %d != edges %d in push-only vanilla 1D", res.MessagesSent, res.EdgesTouched)
	}
}

func TestBaselineDirectionOptimizationSavesMessages(t *testing.T) {
	cfg := rmat.Config{Scale: 12, Seed: 44}
	edges := rmat.Generate(cfg)
	pushOnly, err := New(cfg.NumVertices(), edges, Options{Ranks: 4, PullThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(cfg.NumVertices(), edges, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := pushOnly.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := opt.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if ro.MessagesSent >= rp.MessagesSent {
		t.Fatalf("direction optimization sent %d messages vs %d push-only", ro.MessagesSent, rp.MessagesSent)
	}
	if ro.EdgesTouched >= rp.EdgesTouched {
		t.Fatalf("direction optimization touched %d edges vs %d push-only", ro.EdgesTouched, rp.EdgesTouched)
	}
}

func TestBaselineRejectsBadInput(t *testing.T) {
	if _, err := New(8, nil, Options{}); err == nil {
		t.Fatal("zero ranks accepted")
	}
	e, err := New(8, []rmat.Edge{{U: 0, V: 1}}, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(100); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

func BenchmarkBaselineScale14(b *testing.B) {
	cfg := rmat.Config{Scale: 14, Seed: 45}
	e, err := New(cfg.NumVertices(), rmat.Generate(cfg), Options{Ranks: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}
