// Package baseline implements vanilla 1D-partitioned BFS with no delegation
// at all — the strawman every method in the paper's Table 1 lineage improves
// on. Vertices are block-distributed; every remote edge costs a message in
// top-down, and bottom-up requires replicating the whole frontier bitmap.
// Its communication profile is exactly the scalability wall of Section 2.3,
// which makes it the reference point for the comparison experiment and an
// independent correctness oracle for the 1.5D engine.
package baseline

import (
	"fmt"
	"time"

	"repro/internal/bitmap"
	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/rmat"
	"repro/internal/topology"
)

// Options configures the baseline.
type Options struct {
	Ranks int
	// PullThreshold is the frontier-density switch to bottom-up (Beamer's
	// direction optimization); 0 means 0.05. Negative disables pull.
	PullThreshold float64
	MaxIterations int
}

// Engine is the vanilla 1D BFS.
type Engine struct {
	layout partition.Layout
	world  *comm.World
	opt    Options
	ranks  []*rankGraph
	deg    []int64
}

// rankGraph is one rank's owned adjacency: local vertex -> original IDs.
type rankGraph struct {
	localN int
	ptr    []int64
	adj    []int64
}

// New block-distributes the graph over ranks.
func New(n int64, edges []rmat.Edge, opt Options) (*Engine, error) {
	if opt.Ranks <= 0 {
		return nil, fmt.Errorf("baseline: need Ranks > 0")
	}
	if opt.PullThreshold == 0 {
		opt.PullThreshold = 0.05
	}
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = 128
	}
	mesh := topology.Mesh{Rows: 1, Cols: opt.Ranks}
	layout := partition.NewLayout(n, mesh)
	world, err := comm.NewWorld(opt.Ranks, mesh, topology.NewSunway(opt.Ranks))
	if err != nil {
		return nil, err
	}
	e := &Engine{layout: layout, world: world, opt: opt, deg: make([]int64, n)}
	// Count per-owner degrees.
	counts := make([][]int64, opt.Ranks)
	for r := 0; r < opt.Ranks; r++ {
		counts[r] = make([]int64, layout.LocalCount(r))
	}
	for _, ed := range edges {
		if ed.U == ed.V {
			continue
		}
		counts[layout.Owner(ed.U)][layout.LocalIdx(ed.U)]++
		counts[layout.Owner(ed.V)][layout.LocalIdx(ed.V)]++
		e.deg[ed.U]++
		e.deg[ed.V]++
	}
	e.ranks = make([]*rankGraph, opt.Ranks)
	cursors := make([][]int64, opt.Ranks)
	for r := 0; r < opt.Ranks; r++ {
		localN := layout.LocalCount(r)
		ptr := make([]int64, localN+1)
		var sum int64
		for i := 0; i < localN; i++ {
			ptr[i] = sum
			sum += counts[r][i]
		}
		ptr[localN] = sum
		e.ranks[r] = &rankGraph{localN: localN, ptr: ptr, adj: make([]int64, sum)}
		cur := make([]int64, localN)
		copy(cur, ptr[:localN])
		cursors[r] = cur
	}
	place := func(u, v int64) {
		r := e.layout.Owner(u)
		li := e.layout.LocalIdx(u)
		e.ranks[r].adj[cursors[r][li]] = v
		cursors[r][li]++
	}
	for _, ed := range edges {
		if ed.U == ed.V {
			continue
		}
		place(ed.U, ed.V)
		place(ed.V, ed.U)
	}
	return e, nil
}

// Result is one run's output.
type Result struct {
	Root       int64
	Parent     []int64
	Iterations int
	Time       time.Duration
	// EdgesTouched counts adjacency scans; MessagesSent counts remote
	// activation messages (the quantity delegation exists to reduce).
	EdgesTouched int64
	MessagesSent int64
}

type msg struct {
	LIdx   int32
	Parent int64
}

// Run traverses from root.
func (e *Engine) Run(root int64) (*Result, error) {
	n := e.layout.N
	if root < 0 || root >= n {
		return nil, fmt.Errorf("baseline: root %d out of range", root)
	}
	res := &Result{Root: root, Parent: make([]int64, n)}
	for i := range res.Parent {
		res.Parent[i] = -1
	}
	per := int(e.layout.PerRank)
	edgesTouched := make([]int64, e.opt.Ranks)
	msgsSent := make([]int64, e.opt.Ranks)
	iters := make([]int, e.opt.Ranks)
	start := time.Now()
	e.world.Run(func(r *comm.Rank) {
		rg := e.ranks[r.ID]
		frontier := bitmap.New(per)
		visited := bitmap.New(per)
		next := bitmap.New(per)
		parent := make([]int64, per)
		for i := range parent {
			parent[i] = -1
		}
		worldFrontier := bitmap.New(per * e.opt.Ranks)
		if e.layout.Owner(root) == r.ID {
			li := e.layout.LocalIdx(root)
			frontier.Set(int(li))
			visited.Set(int(li))
			parent[li] = root
		}
		activeTotal := comm.Must(comm.AllreduceSumInt64(r.World, int64(frontier.Count())))
		it := 0
		for ; it < e.opt.MaxIterations && activeTotal > 0; it++ {
			pull := e.opt.PullThreshold > 0 && float64(activeTotal)/float64(n) > e.opt.PullThreshold
			if pull {
				// Bottom-up: replicate the whole frontier (the 2^44-bit
				// vector Section 2.3 rules out at scale), then scan
				// unvisited owned vertices with early exit.
				parts := comm.Must(comm.Allgatherv(r.World, frontier.Words()))
				wf := worldFrontier.Words()
				wordsPer := per / 64
				for m, p := range parts {
					copy(wf[m*wordsPer:(m+1)*wordsPer], p)
				}
				for li := 0; li < rg.localN; li++ {
					if visited.Test(li) || rg.ptr[li] == rg.ptr[li+1] {
						continue
					}
					for _, nb := range rg.adj[rg.ptr[li]:rg.ptr[li+1]] {
						edgesTouched[r.ID]++
						if worldFrontier.Test(int(nb)) {
							visited.Set(li)
							next.Set(li)
							parent[li] = nb
							break
						}
					}
				}
			} else {
				// Top-down: every edge from an active vertex is a message to
				// the neighbor's owner — no delegation, no filtering.
				send := make([][]msg, e.opt.Ranks)
				frontier.ForEach(func(li int) {
					u := e.layout.GlobalOf(r.ID, int32(li))
					for _, nb := range rg.adj[rg.ptr[li]:rg.ptr[li+1]] {
						edgesTouched[r.ID]++
						msgsSent[r.ID]++
						owner := e.layout.Owner(nb)
						send[owner] = append(send[owner], msg{LIdx: e.layout.LocalIdx(nb), Parent: u})
					}
				})
				for _, part := range comm.Must(comm.Alltoallv(r.World, send)) {
					for _, m := range part {
						if !visited.Test(int(m.LIdx)) {
							visited.Set(int(m.LIdx))
							next.Set(int(m.LIdx))
							parent[m.LIdx] = m.Parent
						}
					}
				}
			}
			frontier.CopyFrom(next)
			next.Reset()
			activeTotal = comm.Must(comm.AllreduceSumInt64(r.World, int64(frontier.Count())))
		}
		iters[r.ID] = it
		for li := 0; li < rg.localN; li++ {
			if parent[li] >= 0 {
				res.Parent[e.layout.GlobalOf(r.ID, int32(li))] = parent[li]
			}
		}
	})
	res.Time = time.Since(start)
	res.Iterations = iters[0]
	for r := 0; r < e.opt.Ranks; r++ {
		res.EdgesTouched += edgesTouched[r]
		res.MessagesSent += msgsSent[r]
	}
	return res, nil
}

// Degrees returns per-vertex degrees (self loops excluded).
func (e *Engine) Degrees() []int64 { return e.deg }
