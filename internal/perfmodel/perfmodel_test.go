package perfmodel

import (
	"math"
	"testing"
)

func TestEdgeFractionsSumToOne(t *testing.T) {
	m := DefaultModel()
	var sum float64
	for _, name := range ComponentNames {
		f, ok := m.EdgeFraction[name]
		if !ok {
			t.Fatalf("missing edge fraction for %s", name)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("edge fractions sum to %g", sum)
	}
	if m.EdgeFraction["EH2EH"] < 0.6 {
		t.Fatalf("core subgraph holds %.0f%% of edges; the paper reports over 60%%",
			100*m.EdgeFraction["EH2EH"])
	}
}

func TestProjectionSharesNormalized(t *testing.T) {
	m := DefaultModel()
	for _, w := range PaperPoints {
		p := m.Project(w)
		var sub float64
		for _, v := range p.SubgraphShare {
			if v < 0 {
				t.Fatalf("negative subgraph share at %+v", w)
			}
			sub += v
		}
		if math.Abs(sub-1) > 1e-6 {
			t.Fatalf("subgraph shares sum to %g at %+v", sub, w)
		}
		var cs float64
		for _, v := range p.CommShare {
			if v < -1e-9 {
				t.Fatalf("negative comm share at %+v", w)
			}
			cs += v
		}
		if math.Abs(cs-1) > 1e-6 {
			t.Fatalf("comm shares sum to %g at %+v", cs, w)
		}
	}
}

func TestWeakScalingShape(t *testing.T) {
	m := DefaultModel()
	projs, eff := m.WeakScaling()
	// GTEPS must grow monotonically with node count (Figure 9's shape).
	for i := 1; i < len(projs); i++ {
		if projs[i].GTEPS <= projs[i-1].GTEPS {
			t.Fatalf("GTEPS not increasing: %v -> %v", projs[i-1], projs[i])
		}
	}
	// Relative parallel efficiency at full scale: the paper reports 52%.
	// The model must land in a sub-linear but useful band.
	if eff < 0.25 || eff > 0.95 {
		t.Fatalf("parallel efficiency %.2f outside plausible band around the paper's 0.52", eff)
	}
	// Headline GTEPS within a factor ~3 of the paper's 180,792.
	last := projs[len(projs)-1]
	if last.GTEPS < 180792/3 || last.GTEPS > 180792*3 {
		t.Fatalf("projected headline %.0f GTEPS too far from 180,792", last.GTEPS)
	}
}

func TestCommGrowsWithScale(t *testing.T) {
	// Figure 11: communication share increases during scaling.
	m := DefaultModel()
	small := m.Project(PaperPoints[0])
	large := m.Project(PaperPoints[len(PaperPoints)-1])
	commOf := func(p Projection) float64 {
		return p.CommShare["alltoallv"] + p.CommShare["allgather"] + p.CommShare["reduce_scatter"]
	}
	if commOf(large) <= commOf(small) {
		t.Fatalf("comm share did not grow: %.3f -> %.3f", commOf(small), commOf(large))
	}
	// And compute share shrinks correspondingly.
	if large.CommShare["compute"] >= small.CommShare["compute"] {
		t.Fatalf("compute share did not shrink: %.3f -> %.3f",
			small.CommShare["compute"], large.CommShare["compute"])
	}
}

func TestL2LShareNotable(t *testing.T) {
	// Figure 10: L2L costs notable time while being the smallest subgraph.
	m := DefaultModel()
	p := m.Project(PaperPoints[0])
	if p.SubgraphShare["L2L"] <= p.SubgraphShare["E2L"] {
		t.Fatalf("L2L share %.3f not above E2L %.3f despite inefficiency",
			p.SubgraphShare["L2L"], p.SubgraphShare["E2L"])
	}
}

func TestEHShrinksAtScale(t *testing.T) {
	// Figure 10: EH2EH takes a notably shorter share at larger scales.
	m := DefaultModel()
	small := m.Project(PaperPoints[0])
	large := m.Project(PaperPoints[len(PaperPoints)-1])
	if large.SubgraphShare["EH2EH"] >= small.SubgraphShare["EH2EH"] {
		t.Fatalf("EH2EH share grew with scale: %.3f -> %.3f",
			small.SubgraphShare["EH2EH"], large.SubgraphShare["EH2EH"])
	}
}

func TestCalibrationSane(t *testing.T) {
	c := DefaultCalibration()
	if c.SecondsPerEdge <= 0 || c.SecondsPerEdgeL2L <= c.SecondsPerEdge {
		t.Fatal("calibration ordering violated")
	}
	// Per-edge cost must correspond to >1 GB/s effective bandwidth.
	if 16/c.SecondsPerEdge < 1e9 {
		t.Fatal("per-edge cost implausibly slow")
	}
}

func TestPaperConstants(t *testing.T) {
	if len(PaperPoints) != len(PaperGTEPS) {
		t.Fatal("paper point/value mismatch")
	}
	if PaperPoints[len(PaperPoints)-1].Nodes != 103912 || PaperGTEPS[len(PaperGTEPS)-1] != 180792 {
		t.Fatal("headline constants drifted")
	}
	if PaperPoints[len(PaperPoints)-1].Scale != 44 {
		t.Fatal("headline scale must be 44 (281T edges)")
	}
}

func BenchmarkProject(b *testing.B) {
	m := DefaultModel()
	for i := 0; i < b.N; i++ {
		m.Project(PaperPoints[4])
	}
}

func TestPaperSection23Delegates(t *testing.T) {
	oneD, twoD := PaperSection23Delegates()
	// The paper: 2^44 * 0.1% ≈ 1.76e10 and |V_local|*sqrt(P) ≈ 5.56e10.
	if math.Abs(oneD-1.76e10)/1.76e10 > 0.01 {
		t.Fatalf("1D delegate count %.3g, paper says 1.76e10", oneD)
	}
	if math.Abs(twoD-5.46e10)/5.46e10 > 0.03 {
		t.Fatalf("2D shared count %.3g, paper says ≈5.56e10", twoD)
	}
}

func TestCapacityAnalysis(t *testing.T) {
	reports := AnalyzeCapacity(Graph500Capacity())
	if len(reports) != 3 {
		t.Fatalf("%d reports", len(reports))
	}
	byName := map[string]CapacityReport{}
	for _, r := range reports {
		byName[r.Scheme] = r
		if r.TotalBytes <= 0 {
			t.Fatalf("%s: nonpositive total", r.Scheme)
		}
	}
	// The paper's core capacity claims: 1D and 2D delegate state alone
	// exceeds the 96 GiB node; 1.5D fits.
	if byName["1D + heavy delegates"].Fits {
		t.Fatal("1D+delegates should NOT fit SCALE 44 in 96 GiB (Section 2.3)")
	}
	if byName["2D"].Fits {
		t.Fatal("2D should NOT fit SCALE 44 in 96 GiB (Section 2.3)")
	}
	if !byName["degree-aware 1.5D"].Fits {
		t.Fatalf("1.5D should fit SCALE 44: modeled %.1f GiB of %.0f GiB",
			byName["degree-aware 1.5D"].TotalBytes/(1<<30), 96.0)
	}
	// And the edge payload dominates 1.5D's budget (memory goes to the
	// graph, not to delegation overhead).
	ofd := byName["degree-aware 1.5D"]
	if ofd.DelegateBytes > 0.2*ofd.EdgeBytes {
		t.Fatalf("1.5D delegation overhead %.3g vs edges %.3g; should be small", ofd.DelegateBytes, ofd.EdgeBytes)
	}
}
