// Package perfmodel projects BFS performance to the paper's machine scales.
//
// We cannot run 103,912 nodes; what we can do — and what the scaling figures
// actually measure — is account for where bytes and edge-touches go. The
// model takes per-subgraph work and traffic measured (or analytically
// derived) per node, prices them with the published machine constants
// (topology.NewSunway), and emits the same quantities the paper plots:
// GTEPS weak-scaling (Figure 9), time share by subgraph (Figure 10), and
// time share by communication type (Figure 11). DESIGN.md records this
// substitution; EXPERIMENTS.md records model-vs-paper numbers.
package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/topology"
)

// Workload describes one weak-scaling point: a Graph 500 run of the given
// scale on the given node count.
type Workload struct {
	Scale int
	Nodes int
	// EThreshold/HThreshold control hub population sizing.
	EThreshold, HThreshold float64
}

// Calibration holds per-edge and per-byte costs calibrated once from real
// measured runs at laptop scale, then held fixed across the sweep.
type Calibration struct {
	// SecondsPerEdge is the local scan cost per adjacency touch for kernels
	// running from memory at the OCS-RMA achievable bandwidth.
	SecondsPerEdge float64
	// SecondsPerEdgeL2L inflates L2L's cost: the paper observes L2L is the
	// least efficient component (tiny frontiers, latency-bound sparse
	// iterations; Section 6.1.2).
	SecondsPerEdgeL2L float64
	// BarrierSeconds is fixed per-iteration latency (collective setup,
	// barrier, MPE orchestration), multiplied by the iteration count.
	BarrierSeconds float64
	// IterLatencyGrowth scales barrier latency with log2(nodes): deeper
	// reduction trees cost more.
	IterLatencyGrowth float64
}

// DefaultCalibration matches our measured per-edge kernel costs scaled to the
// SW26010-Pro memory system: one adjacency touch moves ~16 bytes through a
// 249 GB/s memory system at 47% utilization (the paper's measured OCS-RMA
// efficiency), shared by 6 CGs.
func DefaultCalibration() Calibration {
	bytesPerEdge := 16.0
	effBW := 249e9 * 0.47
	return Calibration{
		SecondsPerEdge:    bytesPerEdge / effBW,
		SecondsPerEdgeL2L: 8 * bytesPerEdge / effBW,
		BarrierSeconds:    600e-6,
		IterLatencyGrowth: 80e-6,
	}
}

// ComponentLoad is one subgraph's modeled per-node load for a full BFS run.
type ComponentLoad struct {
	Name         string
	EdgesPerNode float64 // adjacency touches per node across the run
	// Traffic per node, split by collective kind as in Figure 11.
	AlltoallvBytes     float64
	AllgatherBytes     float64
	ReduceScatterBytes float64
	// CrossSupernodeFrac is the fraction of this component's traffic that
	// leaves the supernode (pays the oversubscribed links).
	CrossSupernodeFrac float64
}

// Projection is the model output for one scaling point.
type Projection struct {
	Workload   Workload
	TotalEdges float64 // graph edges (TEPS numerator)
	Seconds    float64
	GTEPS      float64
	// Shares by subgraph (Figure 10) and by comm type (Figure 11), each
	// summing to 1.
	SubgraphShare map[string]float64
	CommShare     map[string]float64
}

// Model carries the calibration plus R-MAT structural constants used to
// size the six components analytically.
type Model struct {
	Cal Calibration
	// EdgeFraction[name] is the fraction of all directed edges landing in
	// each component. The paper reports the core subgraph (EH2EH) holds over
	// 60% of edges in Graph 500 graphs (Section 1); the remainder follows
	// the measured split of our laptop-scale partitionings, which is stable
	// across scales for fixed relative thresholds.
	EdgeFraction map[string]float64
	// TouchedFraction[name] is the fraction of a component's edges actually
	// touched by the direction-optimized BFS (early exit and sub-iteration
	// direction optimization cut most of them).
	TouchedFraction map[string]float64
	// Iterations of the BFS (R-MAT small-world graphs: ~7-10, nearly flat
	// in scale).
	Iterations float64
}

// ComponentNames in Figure 10 order.
var ComponentNames = []string{"EH2EH", "E2L", "H2L", "L2E", "L2H", "L2L"}

// DefaultModel returns fractions measured from our SCALE-18..20 runs; they
// reproduce the paper's ">60% of edges in the core subgraph" property.
func DefaultModel() Model {
	return Model{
		Cal: DefaultCalibration(),
		EdgeFraction: map[string]float64{
			"EH2EH": 0.62, "E2L": 0.055, "H2L": 0.105, "L2E": 0.055, "L2H": 0.105, "L2L": 0.06,
		},
		TouchedFraction: map[string]float64{
			"EH2EH": 0.35, "E2L": 0.55, "H2L": 0.55, "L2E": 0.30, "L2H": 0.30, "L2L": 0.95,
		},
		Iterations: 9,
	}
}

// Project models one weak-scaling point.
func (m Model) Project(w Workload) Projection {
	mach := topology.NewSunway(w.Nodes)
	mesh := topology.SquarestMesh(w.Nodes)
	n := math.Pow(2, float64(w.Scale))
	edges := 16 * n       // undirected
	directed := 2 * edges // stored directed
	perNode := directed / float64(w.Nodes)

	// Hub population: degree-threshold tails of the R-MAT distribution.
	// Empirically |E| ~ 2^(scale)/2^17 and |H| ~ 2^(scale)/2^10 at the
	// paper-like thresholds; only their ratios to n matter below.
	numE := n / (1 << 17)
	if numE < 1 {
		numE = 1
	}
	numH := n / (1 << 10)
	k := numE + numH

	loads := make([]ComponentLoad, 0, len(ComponentNames))
	nodes := float64(w.Nodes)
	iters := m.Iterations
	// Hub delegation synchronization: the point of the 1.5D design is that a
	// column only shares the hubs in its own column block (K/C of them) and a
	// row its row block (K/R) — never all K. Two syncs per iteration, each a
	// reduce-scatter plus allgather of the block bitmap.
	rows := float64(mesh.Rows)
	cols := float64(mesh.Cols)
	colSyncBytes := 2 * iters * (k / cols / 8) * 2
	rowSyncBytes := 2 * iters * (k / rows / 8) * 2
	const msgBytes = 8 // per-edge activation message after packing
	for _, name := range ComponentNames {
		ld := ComponentLoad{Name: name}
		ld.EdgesPerNode = perNode * m.EdgeFraction[name] * m.TouchedFraction[name]
		switch name {
		case "EH2EH":
			// 2D component: all its traffic is the hub delegation itself.
			// Column collectives cross supernodes (rows map to supernodes);
			// row collectives stay inside.
			ld.ReduceScatterBytes = (colSyncBytes + rowSyncBytes) / 2
			ld.AllgatherBytes = (colSyncBytes + rowSyncBytes) / 2
			ld.CrossSupernodeFrac = colSyncBytes / (colSyncBytes + rowSyncBytes)
		case "E2L", "L2E":
			// Local by delegation: no traffic beyond the shared hub sync
			// (attributed to EH2EH above).
		case "H2L", "L2H":
			// Intra-row alltoallv, only for the push-direction share
			// (roughly half the touched edges in a direction-optimized run).
			ld.AlltoallvBytes = ld.EdgesPerNode * msgBytes * 0.5
			ld.CrossSupernodeFrac = 0 // rows map to supernodes
		case "L2L":
			// Global messaging, forwarded via intersection nodes: two hops
			// per message; the first (column) hop crosses supernodes.
			ld.AlltoallvBytes = ld.EdgesPerNode * msgBytes * 2 * 0.5
			sn := float64(mach.Supernodes())
			ld.CrossSupernodeFrac = 0.9 * (1 - 1/sn)
		}
		loads = append(loads, ld)
	}

	// Price each component: compute + its traffic; latency charged globally.
	proj := Projection{Workload: w, TotalEdges: edges,
		SubgraphShare: map[string]float64{}, CommShare: map[string]float64{}}
	var total float64
	commTime := map[string]float64{"alltoallv": 0, "allgather": 0, "reduce_scatter": 0}
	var computeTime float64
	for _, ld := range loads {
		perEdge := m.Cal.SecondsPerEdge
		if ld.Name == "L2L" {
			perEdge = m.Cal.SecondsPerEdgeL2L
		}
		compute := ld.EdgesPerNode * perEdge
		price := func(bytes float64) float64 {
			return mach.Time(topology.Traffic{
				IntraBytesPerNode: bytes * (1 - ld.CrossSupernodeFrac),
				InterBytesPerNode: bytes * ld.CrossSupernodeFrac,
			})
		}
		a2a := price(ld.AlltoallvBytes)
		ag := price(ld.AllgatherBytes)
		rs := price(ld.ReduceScatterBytes)
		t := compute + a2a + ag + rs
		proj.SubgraphShare[ld.Name] = t
		commTime["alltoallv"] += a2a
		commTime["allgather"] += ag
		commTime["reduce_scatter"] += rs
		computeTime += compute
		total += t
	}
	// Parent delayed reduction: one K-word max-reduce at the end.
	reduceT := mach.Time(topology.Traffic{InterBytesPerNode: k * 8 / nodes * math.Log2(nodes)})
	proj.SubgraphShare["reduce"] = reduceT
	commTime["reduce_scatter"] += reduceT
	total += reduceT
	// Iteration latency floor ("other" / imbalance+latency in Fig 11).
	other := iters * 6 * (m.Cal.BarrierSeconds + m.Cal.IterLatencyGrowth*math.Log2(nodes))
	proj.SubgraphShare["other"] = other
	total += other

	for kname, v := range proj.SubgraphShare {
		proj.SubgraphShare[kname] = v / total
	}
	commTotal := commTime["alltoallv"] + commTime["allgather"] + commTime["reduce_scatter"]
	proj.CommShare["compute"] = computeTime / total
	proj.CommShare["imbalance/latency"] = other / total
	for kname, v := range commTime {
		proj.CommShare[kname] = v / total
	}
	proj.CommShare["other"] = 1 - proj.CommShare["compute"] - proj.CommShare["imbalance/latency"] -
		commTotal/total
	if proj.CommShare["other"] < 0 {
		proj.CommShare["other"] = 0
	}

	proj.Seconds = total
	proj.GTEPS = edges / total / 1e9
	return proj
}

// PaperPoints are the node counts of the paper's weak-scaling runs (Figure 9)
// with their maximum-possible SCALE values (35 and 41-44, Section 6.1.1).
var PaperPoints = []Workload{
	{Scale: 35, Nodes: 256},
	{Scale: 41, Nodes: 10750},
	{Scale: 42, Nodes: 21758},
	{Scale: 43, Nodes: 60240},
	{Scale: 44, Nodes: 103912},
}

// PaperGTEPS are Figure 9's reported values for PaperPoints (the first is
// 848 GTEPS at one supernode; the last is the headline 180,792).
var PaperGTEPS = []float64{848, 27300, 50000, 120000, 180792}

// WeakScaling projects every paper point and returns the projections plus
// the relative parallel efficiency of the last point versus ideal scaling
// from the first (the paper reports 52%).
func (m Model) WeakScaling() ([]Projection, float64) {
	out := make([]Projection, len(PaperPoints))
	for i, w := range PaperPoints {
		out[i] = m.Project(w)
	}
	first, last := out[0], out[len(out)-1]
	ideal := first.GTEPS * float64(last.Workload.Nodes) / float64(first.Workload.Nodes)
	return out, last.GTEPS / ideal
}

// String renders a projection row.
func (p Projection) String() string {
	return fmt.Sprintf("scale=%d nodes=%d time=%.3fs GTEPS=%.0f",
		p.Workload.Scale, p.Workload.Nodes, p.Seconds, p.GTEPS)
}
