package perfmodel

import "math"

// Capacity analysis: the paper's second headline is 8x graph capacity — 281T
// edges where the previous record held 35.2T. Capacity is a memory argument:
// SCALE 44 must fit the 96 GiB per node of 103,912 nodes, and the
// partitioning scheme decides whether it does. Section 2.3 computes why the
// alternatives fail (1D delegation needs 1.76e10 delegated vertices per node;
// 2D column/row sharing needs 5.56e10); this file reproduces those numbers
// and the 1.5D scheme's fit.

// CapacityReport itemizes modeled per-node memory for one scheme.
type CapacityReport struct {
	Scheme        string
	EdgeBytes     float64 // stored directed adjacency
	DelegateBytes float64 // delegated vertex state (bitmaps + parent arrays)
	FrontierBytes float64 // owner-local traversal state
	TotalBytes    float64
	Fits          bool // within MemPerNode
}

// CapacityWorkload describes the scale point to analyze.
type CapacityWorkload struct {
	Scale        int
	Nodes        int
	MemPerNode   float64 // bytes
	BytesPerEdge float64 // stored bytes per directed edge (CSR payload)
}

// Graph500Capacity returns the paper's headline configuration: SCALE 44 on
// 103,912 nodes with 96 GiB each. Six bytes per directed edge reflects the
// compressed local indices real implementations use (our laptop build uses
// wider types; the machine fit is about the real system's layout).
func Graph500Capacity() CapacityWorkload {
	return CapacityWorkload{Scale: 44, Nodes: 103912, MemPerNode: 96 * (1 << 30), BytesPerEdge: 6}
}

// AnalyzeCapacity models per-node memory for the three partitioning schemes
// at the workload, reproducing Section 2.3's arithmetic:
//
//   - 1D+delegates: ~0.1% of all vertices must be delegated per node
//     (the paper: 2^44 * 0.1% ≈ 1.76e10 per-node delegates);
//   - 2D: column+row sharing costs |V_local| * sqrt(P) shared vertices
//     (the paper: 5.56e10);
//   - 1.5D: E delegated globally (tiny), H shared only along rows/columns.
//
// Delegate state is charged at 9 bytes per delegated vertex (8-byte parent
// plus activeness/visited bits).
func AnalyzeCapacity(w CapacityWorkload) []CapacityReport {
	n := math.Pow(2, float64(w.Scale))
	directed := 2 * 16 * n
	perNodeEdges := directed / float64(w.Nodes)
	edgeBytes := perNodeEdges * w.BytesPerEdge
	vLocal := n / float64(w.Nodes)
	const perDelegate = 9.0

	frontier := vLocal * perDelegate // owner-local state, same for all schemes

	reports := make([]CapacityReport, 0, 3)

	// 1D with heavy delegates: 0.1% of all vertices delegated on every node.
	oneD := CapacityReport{Scheme: "1D + heavy delegates", EdgeBytes: edgeBytes, FrontierBytes: frontier}
	oneD.DelegateBytes = n * 0.001 * perDelegate
	oneD.TotalBytes = oneD.EdgeBytes + oneD.DelegateBytes + oneD.FrontierBytes
	oneD.Fits = oneD.TotalBytes <= w.MemPerNode
	reports = append(reports, oneD)

	// 2D: every vertex shared along its column and row.
	twoD := CapacityReport{Scheme: "2D", EdgeBytes: edgeBytes, FrontierBytes: frontier}
	twoD.DelegateBytes = vLocal * math.Sqrt(float64(w.Nodes)) * perDelegate
	twoD.TotalBytes = twoD.EdgeBytes + twoD.DelegateBytes + twoD.FrontierBytes
	twoD.Fits = twoD.TotalBytes <= w.MemPerNode
	reports = append(reports, twoD)

	// 1.5D: E replicated globally (n/2^17 per DefaultModel), H shared on the
	// column and row only (K/C + K/R per node).
	mesh := SquarestMeshSize(w.Nodes)
	numE := n / (1 << 17)
	numH := n / (1 << 10)
	k := numE + numH
	oneFiveD := CapacityReport{Scheme: "degree-aware 1.5D", EdgeBytes: edgeBytes, FrontierBytes: frontier}
	oneFiveD.DelegateBytes = (numE + k/float64(mesh[1]) + k/float64(mesh[0])) * perDelegate
	oneFiveD.TotalBytes = oneFiveD.EdgeBytes + oneFiveD.DelegateBytes + oneFiveD.FrontierBytes
	oneFiveD.Fits = oneFiveD.TotalBytes <= w.MemPerNode
	reports = append(reports, oneFiveD)
	return reports
}

// SquarestMeshSize returns {rows, cols} of the squarest factorization.
func SquarestMeshSize(n int) [2]int {
	best := [2]int{1, n}
	for r := 1; r*r <= n; r++ {
		if n%r == 0 {
			best = [2]int{r, n / r}
		}
	}
	return best
}

// PaperSection23Delegates reproduces the two per-node delegate counts the
// paper computes in Section 2.3 when arguing prior schemes cannot reach
// SCALE 44: the 1D figure (≈1.76e10) and the 2D figure (≈5.56e10).
func PaperSection23Delegates() (oneD, twoD float64) {
	n := math.Pow(2, 44)
	nodes := 103912.0
	oneD = n * 0.001
	twoD = n / nodes * math.Sqrt(nodes)
	return oneD, twoD
}
