package perfmodel

// Batched multi-source admission control: each in-flight query in a batch
// adds one bit-plane of traversal state per rank (four hub bitmaps, three
// owner-local bitmaps, a delegate parent array and an owned-L parent array),
// and — when the engine runs with step-granular retry enabled — up to
// numSteps snapshots of the bitmap planes on top. The daemon sizes its
// batch window from this model against a per-rank memory budget, the same
// way AnalyzeCapacity sizes the machine fit: refuse work that cannot fit
// rather than discover the overcommit mid-sweep.

const (
	// batchHubPlanes and batchLPlanes mirror the engine's plane stacks
	// (hubFrontier/hubVisited/hubNew/hubIter and lFrontier/lVisited/lNew).
	batchHubPlanes = 4
	batchLPlanes   = 3
	// batchSnapshotCopies is the engine's per-step snapshot count: with
	// fault tolerance on, every bitmap backing is captured once per step
	// boundary (4 steps) for retry rollback.
	batchSnapshotCopies = 4
)

// BatchQueryBytes models the per-rank bytes one in-flight batched query
// adds: bitmap planes over k delegated hubs and perRank owned vertices,
// plus the two parent arrays. With faulty set, the step-snapshot copies of
// the bitmap state are charged too (parent arrays are monotone and not
// snapshotted).
func BatchQueryBytes(k, perRank int64, faulty bool) int64 {
	words := func(bits int64) int64 { return (bits + 63) / 64 * 8 }
	bitmaps := batchHubPlanes*words(k) + batchLPlanes*words(perRank)
	parents := 8 * (k + perRank)
	total := bitmaps + parents
	if faulty {
		total += batchSnapshotCopies * bitmaps
	}
	return total
}

// MaxBatchQueries returns how many concurrent queries fit a per-rank memory
// budget, at least 1 when any single query fits and 0 when none does.
func MaxBatchQueries(budgetBytes, k, perRank int64, faulty bool) int {
	per := BatchQueryBytes(k, perRank, faulty)
	if per <= 0 || budgetBytes < per {
		return 0
	}
	return int(budgetBytes / per)
}
