package perfmodel

import "testing"

func TestBatchQueryBytes(t *testing.T) {
	// 64 hubs, 128 owned: hub planes 4*8B, L planes 3*16B, parents 8*(64+128).
	got := BatchQueryBytes(64, 128, false)
	want := int64(4*8 + 3*16 + 8*(64+128))
	if got != want {
		t.Fatalf("BatchQueryBytes = %d, want %d", got, want)
	}
	// Fault tolerance charges 4 snapshot copies of the bitmaps only.
	faulty := BatchQueryBytes(64, 128, true)
	if faulty != want+4*(4*8+3*16) {
		t.Fatalf("faulty BatchQueryBytes = %d", faulty)
	}
	// Word rounding: 65 bits costs two words.
	if BatchQueryBytes(65, 0, false) != 4*16+8*65 {
		t.Fatalf("rounding: %d", BatchQueryBytes(65, 0, false))
	}
}

func TestMaxBatchQueries(t *testing.T) {
	per := BatchQueryBytes(1024, 4096, false)
	if got := MaxBatchQueries(10*per, 1024, 4096, false); got != 10 {
		t.Fatalf("budget for 10 admitted %d", got)
	}
	if got := MaxBatchQueries(per-1, 1024, 4096, false); got != 0 {
		t.Fatalf("sub-query budget admitted %d", got)
	}
	if got := MaxBatchQueries(per, 1024, 4096, false); got != 1 {
		t.Fatalf("exact budget admitted %d", got)
	}
	// Fault-tolerant state is bigger, so the same budget admits fewer.
	if MaxBatchQueries(10*per, 1024, 4096, true) >= 10 {
		t.Fatal("snapshot overhead not charged")
	}
}
