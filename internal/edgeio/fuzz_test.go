package edgeio

import (
	"bytes"
	"testing"
)

// FuzzReadBinRoundTrip: any input ReadBin accepts must re-encode via WriteBin
// to the identical byte stream (the binary format has exactly one encoding),
// and re-decode to the identical edge list.
func FuzzReadBinRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 16))
	f.Add([]byte("0123456789abcdef0123456789abcdef"))
	f.Add([]byte{1, 2, 3}) // truncated record: must error, not panic
	f.Fuzz(func(t *testing.T, data []byte) {
		edges, err := ReadBin(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs just must not panic
		}
		var buf bytes.Buffer
		if err := WriteBin(&buf, edges); err != nil {
			t.Fatalf("WriteBin on decoded edges: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("re-encode differs from accepted input:\n  in:  %x\n  out: %x", data, buf.Bytes())
		}
		again, err := ReadBin(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(again) != len(edges) {
			t.Fatalf("re-decode edge count %d, want %d", len(again), len(edges))
		}
		for i := range edges {
			if edges[i] != again[i] {
				t.Fatalf("edge %d changed across round trip: %v -> %v", i, edges[i], again[i])
			}
		}
	})
}

// FuzzReadTextRoundTrip: any input ReadText accepts must survive a
// write-then-read cycle with the edge list unchanged (the text format is not
// canonical — comments and whitespace are lost — so the list, not the bytes,
// is the invariant).
func FuzzReadTextRoundTrip(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("# comment\n% matrix market\n3 4 extra fields ok\n"))
	f.Add([]byte("9223372036854775807 0\n"))
	f.Add([]byte("not numbers"))
	f.Fuzz(func(t *testing.T, data []byte) {
		edges, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, edges); err != nil {
			t.Fatalf("WriteText on decoded edges: %v", err)
		}
		again, err := ReadText(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of WriteText output: %v", err)
		}
		if len(again) != len(edges) {
			t.Fatalf("edge count %d after round trip, want %d", len(again), len(edges))
		}
		for i := range edges {
			if edges[i] != again[i] {
				t.Fatalf("edge %d changed across round trip: %v -> %v", i, edges[i], again[i])
			}
		}
	})
}
