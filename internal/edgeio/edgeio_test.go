package edgeio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rmat"
)

func sample() []rmat.Edge {
	return []rmat.Edge{{U: 0, V: 1}, {U: 5, V: 3}, {U: 1000000, V: 7}, {U: 2, V: 2}}
}

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if len(got) != len(want) {
		t.Fatalf("%d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBinRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBin(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBin(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestReadTextSkipsComments(t *testing.T) {
	in := "# header\n% mm comment\n\n1 2\n  3 4 extra-ignored\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != (rmat.Edge{U: 1, V: 2}) || got[1] != (rmat.Edge{U: 3, V: 4}) {
		t.Fatalf("got %v", got)
	}
}

func TestReadTextRejectsGarbage(t *testing.T) {
	for _, in := range []string{"1\n", "a b\n", "-1 2\n", "1 x\n"} {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted %q", in)
		}
	}
}

func TestReadBinRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBin(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadBin(bytes.NewReader(cut)); err == nil {
		t.Fatal("accepted truncated stream")
	}
}

func TestFileRoundTripAndVertexInference(t *testing.T) {
	dir := t.TempDir()
	for _, format := range []Format{FormatText, FormatBin} {
		path := filepath.Join(dir, "edges")
		if err := WriteFile(path, format, sample()); err != nil {
			t.Fatal(err)
		}
		n, edges, err := ReadFile(path, format)
		if err != nil {
			t.Fatal(err)
		}
		if len(edges) != len(sample()) {
			t.Fatalf("%d edges", len(edges))
		}
		// Max endpoint 1,000,000 -> next power of two is 2^20 = 1,048,576.
		if n != 1<<20 {
			t.Fatalf("inferred n = %d, want %d", n, 1<<20)
		}
	}
}

func TestParseFormat(t *testing.T) {
	if f, err := ParseFormat("TEXT"); err != nil || f != FormatText {
		t.Fatal("TEXT not parsed")
	}
	if f, err := ParseFormat("bin"); err != nil || f != FormatBin {
		t.Fatal("bin not parsed")
	}
	if _, err := ParseFormat("csv"); err == nil {
		t.Fatal("csv accepted")
	}
}

func TestGeneratorInterop(t *testing.T) {
	// A generated graph must survive a binary round trip bit-exactly.
	cfg := rmat.Config{Scale: 10, Seed: 77}
	edges := rmat.Generate(cfg)
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	if err := WriteFile(path, FormatBin, edges); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != int64(len(edges))*16 {
		t.Fatalf("file size %d, want %d", info.Size(), len(edges)*16)
	}
	_, got, err := ReadFile(path, FormatBin)
	if err != nil {
		t.Fatal(err)
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d mismatch", i)
		}
	}
}
