// Package edgeio reads and writes edge lists in the two formats the tools
// use: whitespace-separated text ("u v" per line, # comments) and the packed
// binary format of the Graph 500 reference code (little-endian int64 pairs).
// Readers are streaming and validate eagerly so a truncated or corrupt file
// fails loudly rather than producing a silently wrong graph.
package edgeio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/rmat"
)

// Format identifies an edge list encoding.
type Format int

// Supported formats.
const (
	FormatText Format = iota // "u v" per line
	FormatBin                // little-endian int64 pairs
)

// ParseFormat maps a flag string to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "text", "txt":
		return FormatText, nil
	case "bin", "binary":
		return FormatBin, nil
	}
	return 0, fmt.Errorf("edgeio: unknown format %q (want text or bin)", s)
}

// WriteText writes edges as "u v" lines.
func WriteText(w io.Writer, edges []rmat.Edge) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteBin writes edges as packed little-endian int64 pairs.
func WriteBin(w io.Writer, edges []rmat.Edge) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var buf [16]byte
	for _, e := range edges {
		binary.LittleEndian.PutUint64(buf[0:], uint64(e.U))
		binary.LittleEndian.PutUint64(buf[8:], uint64(e.V))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses "u v" lines; blank lines and lines starting with '#' or
// '%' (Matrix Market style comments) are skipped.
func ReadText(r io.Reader) ([]rmat.Edge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []rmat.Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("edgeio: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("edgeio: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("edgeio: line %d: %v", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("edgeio: line %d: negative vertex id", lineNo)
		}
		edges = append(edges, rmat.Edge{U: u, V: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return edges, nil
}

// ReadBin parses packed little-endian int64 pairs, rejecting truncation.
func ReadBin(r io.Reader) ([]rmat.Edge, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var edges []rmat.Edge
	var buf [16]byte
	for {
		_, err := io.ReadFull(br, buf[:])
		if err == io.EOF {
			return edges, nil
		}
		if err != nil {
			return nil, fmt.Errorf("edgeio: truncated binary edge list after %d edges: %v", len(edges), err)
		}
		u := int64(binary.LittleEndian.Uint64(buf[0:]))
		v := int64(binary.LittleEndian.Uint64(buf[8:]))
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("edgeio: negative vertex id at edge %d", len(edges))
		}
		edges = append(edges, rmat.Edge{U: u, V: v})
	}
}

// ReadFile loads an edge list, inferring the vertex count as the smallest
// power of two above the maximum endpoint (the Graph 500 convention).
func ReadFile(path string, format Format) (int64, []rmat.Edge, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	var edges []rmat.Edge
	switch format {
	case FormatText:
		edges, err = ReadText(f)
	case FormatBin:
		edges, err = ReadBin(f)
	default:
		err = fmt.Errorf("edgeio: bad format %d", format)
	}
	if err != nil {
		return 0, nil, err
	}
	var maxV int64 = -1
	for _, e := range edges {
		if e.U > maxV {
			maxV = e.U
		}
		if e.V > maxV {
			maxV = e.V
		}
	}
	n := int64(1)
	for n <= maxV {
		n <<= 1
	}
	return n, edges, nil
}

// WriteFile stores an edge list.
func WriteFile(path string, format Format, edges []rmat.Edge) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case FormatText:
		err = WriteText(f, edges)
	case FormatBin:
		err = WriteBin(f, edges)
	default:
		err = fmt.Errorf("edgeio: bad format %d", format)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
