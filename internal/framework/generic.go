package framework

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/partition"
)

// Program is a dense synchronous vertex program over the 1.5D partitioning:
// each round, every changed vertex sends Message(value) along its edges;
// arriving messages fold with Combine (associative and commutative, starting
// from Identity); Apply merges the round's accumulator into the value. A
// vertex whose value did not change sends nothing next round. V must be a
// comparable value type (it travels through collectives by copy).
//
// Hub (E and H) values are delegated exactly as in BFS: replicated per rank
// and reconciled with a column+row Combine-reduce each round, so programs
// inherit the paper's communication structure for free.
type Program[V comparable] interface {
	// Init produces vertex v's initial value; deg is its undirected degree.
	Init(v int64, deg int64) V
	// Identity is Combine's neutral element.
	Identity() V
	// Combine folds two accumulator values; must be associative and
	// commutative so reduction order cannot matter.
	Combine(a, b V) V
	// Message is the value sent along each edge from a vertex holding val.
	Message(val V) V
	// Apply merges the accumulated messages into the old value; a result
	// different from old marks the vertex changed (and propagating next
	// round).
	Apply(old, acc V) V
}

// RunResult carries a program's converged values.
type RunResult[V comparable] struct {
	Values     []V
	Iterations int
	Time       time.Duration
}

// RunProgram executes prog to convergence (no vertex changed) or maxIter
// rounds over the engine's partitioned graph.
func RunProgram[V comparable](e *Engine, prog Program[V], maxIter int) (*RunResult[V], error) {
	if maxIter <= 0 {
		maxIter = 1 << 20
	}
	n := e.Part.Layout.N
	res := &RunResult[V]{Values: make([]V, n)}
	start := time.Now()
	iters := make([]int, e.Opt.Ranks)
	e.World.Run(func(r *comm.Rank) {
		st := newProgState(e, r, prog)
		iters[r.ID] = st.run(maxIter)
		st.writeResult(res.Values)
	})
	res.Time = time.Since(start)
	res.Iterations = iters[0]
	return res, nil
}

type progState[V comparable] struct {
	e    *Engine
	r    *comm.Rank
	rg   *partition.RankGraph
	prog Program[V]

	k int

	hubVal   []V
	hubDirty []bool
	lVal     []V
	lDirty   []bool
}

type progMsg[V comparable] struct {
	LIdx int32
	Val  V
}

func newProgState[V comparable](e *Engine, r *comm.Rank, prog Program[V]) *progState[V] {
	per := int(e.Part.Layout.PerRank)
	k := e.Part.Hubs.K()
	st := &progState[V]{
		e: e, r: r, rg: e.Part.Ranks[r.ID], prog: prog, k: k,
		hubVal: make([]V, k), hubDirty: make([]bool, k),
		lVal: make([]V, per), lDirty: make([]bool, per),
	}
	hubs := e.Part.Hubs
	for h := 0; h < k; h++ {
		st.hubVal[h] = prog.Init(hubs.Orig[h], hubs.Deg[h])
		st.hubDirty[h] = true
	}
	layout := e.Part.Layout
	for li := 0; li < st.rg.LocalN; li++ {
		v := layout.GlobalOf(r.ID, int32(li))
		if _, isHub := hubs.HubOf(v); !isHub {
			st.lVal[li] = prog.Init(v, e.Part.Degrees[v])
			st.lDirty[li] = true
		}
	}
	return st
}

func (st *progState[V]) run(maxIter int) int {
	layout := st.e.Part.Layout
	mesh := st.e.Opt.Mesh
	prog := st.prog
	ident := prog.Identity()
	hubAcc := make([]V, st.k)
	lAcc := make([]V, len(st.lVal))
	iter := 0
	for ; iter < maxIter; iter++ {
		for h := range hubAcc {
			hubAcc[h] = ident
		}
		for li := range lAcc {
			lAcc[li] = ident
		}
		hubDirty := st.hubDirty
		st.hubDirty = make([]bool, st.k)
		lDirty := st.lDirty
		st.lDirty = make([]bool, len(st.lVal))

		// Hub-sourced propagation.
		push := &st.rg.EHPush
		for i, src := range push.IDs {
			if !hubDirty[src] {
				continue
			}
			m := prog.Message(st.hubVal[src])
			for _, dst := range push.Adj[push.Ptr[i]:push.Ptr[i+1]] {
				hubAcc[dst] = prog.Combine(hubAcc[dst], m)
			}
		}
		etol := &st.rg.EToL
		for i, hub := range etol.IDs {
			if !hubDirty[hub] {
				continue
			}
			m := prog.Message(st.hubVal[hub])
			for _, li := range etol.Adj[etol.Ptr[i]:etol.Ptr[i+1]] {
				lAcc[li] = prog.Combine(lAcc[li], m)
			}
		}
		htol := &st.rg.HToL
		send := make([][]progMsg[V], mesh.Cols)
		for i, hub := range htol.IDs {
			if !hubDirty[hub] {
				continue
			}
			m := prog.Message(st.hubVal[hub])
			for _, rem := range htol.Adj[htol.Ptr[i]:htol.Ptr[i+1]] {
				send[rem.Col] = append(send[rem.Col], progMsg[V]{LIdx: rem.LIdx, Val: m})
			}
		}
		for _, part := range comm.Must(comm.Alltoallv(st.r.RowC, send)) {
			for _, m := range part {
				lAcc[m.LIdx] = prog.Combine(lAcc[m.LIdx], m.Val)
			}
		}
		// L-sourced propagation.
		ltoe, ltoh, l2l := &st.rg.LToE, &st.rg.LToH, &st.rg.L2L
		sendLL := make([][]progMsg[V], layout.P)
		for li := 0; li < st.rg.LocalN; li++ {
			if !lDirty[li] {
				continue
			}
			m := prog.Message(st.lVal[li])
			for _, hub := range ltoe.Adj[ltoe.Ptr[li]:ltoe.Ptr[li+1]] {
				hubAcc[hub] = prog.Combine(hubAcc[hub], m)
			}
			for _, hub := range ltoh.Adj[ltoh.Ptr[li]:ltoh.Ptr[li+1]] {
				hubAcc[hub] = prog.Combine(hubAcc[hub], m)
			}
			for _, dst := range l2l.Adj[l2l.Ptr[li]:l2l.Ptr[li+1]] {
				owner := layout.Owner(dst)
				sendLL[owner] = append(sendLL[owner], progMsg[V]{LIdx: layout.LocalIdx(dst), Val: m})
			}
		}
		for _, part := range comm.Must(comm.Alltoallv(st.r.World, sendLL)) {
			for _, m := range part {
				lAcc[m.LIdx] = prog.Combine(lAcc[m.LIdx], m.Val)
			}
		}
		// Delegated hub accumulator reconciliation: gather-and-Combine over
		// the column then the row, in member order on every rank, so all
		// replicas compute identical values.
		if st.k > 0 {
			combineOver(st.r.ColC, hubAcc, prog)
			combineOver(st.r.RowC, hubAcc, prog)
		}
		// Apply.
		var changed int64
		for h := 0; h < st.k; h++ {
			nv := prog.Apply(st.hubVal[h], hubAcc[h])
			if nv != st.hubVal[h] {
				st.hubVal[h] = nv
				st.hubDirty[h] = true
				changed++
			}
		}
		hubs := st.e.Part.Hubs
		for li := 0; li < st.rg.LocalN; li++ {
			v := layout.GlobalOf(st.r.ID, int32(li))
			if _, isHub := hubs.HubOf(v); isHub {
				continue
			}
			nv := prog.Apply(st.lVal[li], lAcc[li])
			if nv != st.lVal[li] {
				st.lVal[li] = nv
				st.lDirty[li] = true
				changed++
			}
		}
		if comm.Must(comm.AllreduceSumInt64(st.r.World, changed)) == 0 {
			iter++
			break
		}
	}
	return iter
}

// combineOver gathers each member's accumulator vector and folds them in
// member order.
func combineOver[V comparable](c *comm.Comm, acc []V, prog Program[V]) {
	parts := comm.Must(comm.Allgatherv(c, acc))
	ident := prog.Identity()
	for h := range acc {
		folded := ident
		for _, p := range parts {
			folded = prog.Combine(folded, p[h])
		}
		acc[h] = folded
	}
}

func (st *progState[V]) writeResult(out []V) {
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	for li := 0; li < st.rg.LocalN; li++ {
		v := layout.GlobalOf(st.r.ID, int32(li))
		if _, isHub := hubs.HubOf(v); !isHub {
			out[v] = st.lVal[li]
		}
	}
	for h, orig := range hubs.Orig {
		if layout.Owner(orig) == st.r.ID {
			out[orig] = st.hubVal[h]
		}
	}
}

// minLabelProgram is connected components expressed as a Program: the
// canonical demonstration of the generic API. Engine.ConnectedComponents
// delegates here, so there is a single propagation loop to keep correct.
type minLabelProgram struct{}

func (minLabelProgram) Init(v int64, deg int64) int64 { return v }
func (minLabelProgram) Identity() int64               { return int64(^uint64(0) >> 1) }
func (minLabelProgram) Combine(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
func (minLabelProgram) Message(val int64) int64 { return val }
func (minLabelProgram) Apply(old, acc int64) int64 {
	if acc < old {
		return acc
	}
	return old
}

// ConnectedComponentsGeneric runs WCC through the generic Program API.
func (e *Engine) ConnectedComponentsGeneric() (*RunResult[int64], error) {
	return RunProgram[int64](e, minLabelProgram{}, 0)
}

// reachProgram is 64-way bit-parallel reachability: value bit s means "some
// vertex seeded with bit s reaches me". One word per vertex traverses from
// up to 64 sources simultaneously — the multi-source BFS trick.
type reachProgram struct {
	seed map[int64]uint64
}

func (p reachProgram) Init(v int64, deg int64) uint64 { return p.seed[v] }
func (reachProgram) Identity() uint64                 { return 0 }
func (reachProgram) Combine(a, b uint64) uint64       { return a | b }
func (reachProgram) Message(val uint64) uint64        { return val }
func (reachProgram) Apply(old, acc uint64) uint64     { return old | acc }

// Reachability computes, for up to 64 source vertices, the reachable set of
// each, bit-parallel in one traversal: result[v] has bit s set iff
// sources[s] reaches v.
func (e *Engine) Reachability(sources []int64) (*RunResult[uint64], error) {
	if len(sources) == 0 || len(sources) > 64 {
		return nil, fmt.Errorf("framework: Reachability needs 1..64 sources, got %d", len(sources))
	}
	seed := make(map[int64]uint64, len(sources))
	n := e.Part.Layout.N
	for s, v := range sources {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("framework: source %d out of range", v)
		}
		seed[v] |= 1 << uint(s)
	}
	return RunProgram[uint64](e, reachProgram{seed: seed}, 0)
}
