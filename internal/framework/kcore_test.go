package framework

import (
	"testing"

	"repro/internal/rmat"
)

// sequentialKCore is the reference peeling with multigraph degree semantics
// (self loops excluded, duplicates counted), matching the partitioner.
func sequentialKCore(n int64, edges []rmat.Edge, k int64) []bool {
	deg := make([]int64, n)
	adj := make([][]int64, n)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		deg[e.U]++
		deg[e.V]++
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	removed := make([]bool, n)
	for {
		any := false
		for v := int64(0); v < n; v++ {
			if !removed[v] && deg[v] < k {
				removed[v] = true
				any = true
				for _, u := range adj[v] {
					deg[u]--
				}
			}
		}
		if !any {
			break
		}
	}
	in := make([]bool, n)
	for v := range in {
		in[v] = !removed[v]
	}
	return in
}

func TestKCoreMatchesSequential(t *testing.T) {
	cfg := rmat.Config{Scale: 10, Seed: 91}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	eng, err := New(n, edges, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{0, 1, 2, 5, 16, 64} {
		res, err := eng.KCore(k)
		if err != nil {
			t.Fatal(err)
		}
		ref := sequentialKCore(n, edges, k)
		for v := int64(0); v < n; v++ {
			if res.InCore[v] != ref[v] {
				t.Fatalf("k=%d: InCore[%d] = %v, reference %v", k, v, res.InCore[v], ref[v])
			}
		}
	}
}

func TestKCoreNesting(t *testing.T) {
	// The (k+1)-core is contained in the k-core.
	cfg := rmat.Config{Scale: 11, Seed: 92}
	edges := rmat.Generate(cfg)
	eng, err := New(cfg.NumVertices(), edges, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	var prev *KCoreResult
	for k := int64(1); k <= 32; k *= 2 {
		res, err := eng.KCore(k)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if res.CoreSize > prev.CoreSize {
				t.Fatalf("core grew from k: %d -> %d", prev.CoreSize, res.CoreSize)
			}
			for v := range res.InCore {
				if res.InCore[v] && !prev.InCore[v] {
					t.Fatalf("vertex %d in higher core but not lower", v)
				}
			}
		}
		prev = res
	}
}

func TestKCoreHubsSurviveLongest(t *testing.T) {
	// At a moderately high k, only hub-class vertices should remain — the
	// dense core IS the E/H subgraph, the paper's structural premise.
	cfg := rmat.Config{Scale: 12, Seed: 93}
	edges := rmat.Generate(cfg)
	eng, err := New(cfg.NumVertices(), edges, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.KCore(eng.Opt.Thresholds.H)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoreSize == 0 {
		t.Skip("core empty at this threshold")
	}
	hubFrac := 0.0
	for v, in := range res.InCore {
		if in {
			if _, isHub := eng.Part.Hubs.HubOf(int64(v)); isHub {
				hubFrac++
			}
		}
	}
	hubFrac /= float64(res.CoreSize)
	if hubFrac < 0.5 {
		t.Fatalf("only %.0f%% of the %d-core are hubs", 100*hubFrac, eng.Opt.Thresholds.H)
	}
}

func TestKCoreMeshInvariance(t *testing.T) {
	cfg := rmat.Config{Scale: 9, Seed: 94}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	var ref []bool
	for _, ranks := range []int{1, 4, 6} {
		eng, err := New(n, edges, Options{Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.KCore(3)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.InCore
			continue
		}
		for v := range ref {
			if res.InCore[v] != ref[v] {
				t.Fatalf("ranks=%d: InCore[%d] differs", ranks, v)
			}
		}
	}
}

func TestKCoreRejectsNegative(t *testing.T) {
	cfg := rmat.Config{Scale: 6, Seed: 95}
	eng, err := New(cfg.NumVertices(), rmat.Generate(cfg), Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.KCore(-1); err == nil {
		t.Fatal("negative k accepted")
	}
}
