// Package framework is the general-purpose graph-processing layer the paper
// sketches as future work (Section 8: "a general-purpose graph processing
// framework is possible to be built with the proposed techniques ... One of
// our future work will be designing and implementing the next-generation
// ShenTu on New Sunway upon the proposed techniques").
//
// It runs dense vertex programs — PageRank-style accumulate/apply rounds —
// over the same six-component 1.5D partitioning the BFS engine uses:
//
//   - hub (E and H) values are delegated: replicated per rank and combined
//     with a column+row sum- or min-reduce each round, exactly the BFS hub
//     activation traffic pattern;
//   - L values live only at their owner; hub→L contributions for H vertices
//     travel intra-row, L→L contributions via alltoallv.
//
// Two programs are provided: PageRank and connected components (min-label
// propagation). Both are validated against sequential references in tests.
package framework

import (
	"fmt"
	"math"
	"time"

	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/rmat"
	"repro/internal/topology"
)

// Options configures an Engine.
type Options struct {
	Mesh       topology.Mesh
	Ranks      int
	Thresholds partition.Thresholds
}

func (o Options) withDefaults(n int64) (Options, error) {
	if o.Mesh.Rows == 0 && o.Mesh.Cols == 0 {
		if o.Ranks <= 0 {
			return o, fmt.Errorf("framework: Options needs Mesh or Ranks")
		}
		o.Mesh = topology.SquarestMesh(o.Ranks)
	}
	o.Ranks = o.Mesh.Size()
	if o.Thresholds == (partition.Thresholds{}) {
		scale := 0
		for int64(1)<<uint(scale) < n {
			scale++
		}
		e := int64(1) << uint(scale/2+2)
		h := e / 16
		if h < 2 {
			h = 2
		}
		o.Thresholds = partition.Thresholds{E: e, H: h}
	}
	return o, nil
}

// Engine holds a partitioned graph for vertex programs.
type Engine struct {
	Part  *partition.Partitioned
	World *comm.World
	Opt   Options
}

// New partitions the graph for the framework.
func New(n int64, edges []rmat.Edge, opt Options) (*Engine, error) {
	opt, err := opt.withDefaults(n)
	if err != nil {
		return nil, err
	}
	part, err := partition.Build(n, edges, opt.Mesh, opt.Thresholds, 0)
	if err != nil {
		return nil, err
	}
	world, err := comm.NewWorld(opt.Ranks, opt.Mesh, topology.NewSunway(opt.Ranks))
	if err != nil {
		return nil, err
	}
	return &Engine{Part: part, World: world, Opt: opt}, nil
}

// PageRankResult holds ranks plus convergence diagnostics.
type PageRankResult struct {
	Rank       []float64
	Iterations int
	Delta      float64 // final L1 change
	Time       time.Duration
}

// PageRank runs the classic damped power iteration until the L1 change drops
// below tol or maxIter rounds elapse. Dangling mass (degree-0 vertices) is
// redistributed uniformly, so ranks sum to 1 throughout.
func (e *Engine) PageRank(damping float64, tol float64, maxIter int) (*PageRankResult, error) {
	if damping <= 0 || damping >= 1 {
		return nil, fmt.Errorf("framework: damping %g out of (0,1)", damping)
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	n := e.Part.Layout.N
	res := &PageRankResult{Rank: make([]float64, n)}
	start := time.Now()
	states := make([]*prState, e.Opt.Ranks)
	var iters int64
	var delta float64
	e.World.Run(func(r *comm.Rank) {
		st := newPRState(e, r)
		states[r.ID] = st
		it, d := st.run(damping, tol, maxIter)
		if r.ID == 0 {
			iters, delta = int64(it), d
		}
		st.writeResult(res.Rank)
	})
	res.Time = time.Since(start)
	res.Iterations = int(iters)
	res.Delta = delta
	return res, nil
}

// prState is the per-rank PageRank working set.
type prState struct {
	e  *Engine
	r  *comm.Rank
	rg *partition.RankGraph

	k int

	hubVal, hubAcc []float64 // replicated hub values/accumulators
	lVal, lAcc     []float64 // owner-local L values/accumulators
	degHub         []float64
	degL           []float64 // degrees of owned L vertices
}

func newPRState(e *Engine, r *comm.Rank) *prState {
	per := int(e.Part.Layout.PerRank)
	k := e.Part.Hubs.K()
	st := &prState{
		e: e, r: r, rg: e.Part.Ranks[r.ID], k: k,
		hubVal: make([]float64, k), hubAcc: make([]float64, k),
		lVal: make([]float64, per), lAcc: make([]float64, per),
		degHub: make([]float64, k), degL: make([]float64, per),
	}
	for h := 0; h < k; h++ {
		st.degHub[h] = float64(e.Part.Hubs.Deg[h])
	}
	layout := e.Part.Layout
	for li := 0; li < st.rg.LocalN; li++ {
		st.degL[li] = float64(e.Part.Degrees[layout.GlobalOf(r.ID, int32(li))])
	}
	return st
}

// prMsg carries a partial rank contribution to an owned L vertex.
type prMsg struct {
	LIdx int32
	Val  float64
}

func (st *prState) run(damping, tol float64, maxIter int) (int, float64) {
	n := float64(st.e.Part.Layout.N)
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	mesh := st.e.Opt.Mesh
	// Initial uniform distribution.
	for h := range st.hubVal {
		st.hubVal[h] = 1 / n
	}
	for li := 0; li < st.rg.LocalN; li++ {
		if _, isHub := hubs.HubOf(layout.GlobalOf(st.r.ID, int32(li))); !isHub {
			st.lVal[li] = 1 / n
		}
	}
	iter := 0
	delta := math.Inf(1)
	for ; iter < maxIter && delta > tol; iter++ {
		for h := range st.hubAcc {
			st.hubAcc[h] = 0
		}
		for li := range st.lAcc {
			st.lAcc[li] = 0
		}
		// Dangling mass: vertices with no edges contribute uniformly.
		// Hubs always have edges (degree ≥ H threshold); only owned L
		// vertices can dangle.
		var dangling float64
		for li := 0; li < st.rg.LocalN; li++ {
			if st.degL[li] == 0 {
				dangling += st.lVal[li]
			}
		}
		d := []float64{dangling}
		comm.Must0(comm.AllreduceSumFloat64(st.r.World, d))
		danglingShare := d[0] / n

		// EH2EH: each stored directed edge contributes src/deg(src) to dst.
		push := &st.rg.EHPush
		for i, src := range push.IDs {
			msg := st.hubVal[src] / st.degHub[src]
			for _, dst := range push.Adj[push.Ptr[i]:push.Ptr[i+1]] {
				st.hubAcc[dst] += msg
			}
		}
		// E2L: local.
		etol := &st.rg.EToL
		for i, hub := range etol.IDs {
			msg := st.hubVal[hub] / st.degHub[hub]
			for _, li := range etol.Adj[etol.Ptr[i]:etol.Ptr[i+1]] {
				st.lAcc[li] += msg
			}
		}
		// H2L: message along the row (the H2L component lives at the
		// intersection of H's column and the owner's row).
		htol := &st.rg.HToL
		send := make([][]prMsg, mesh.Cols)
		for i, hub := range htol.IDs {
			msg := st.hubVal[hub] / st.degHub[hub]
			for _, rem := range htol.Adj[htol.Ptr[i]:htol.Ptr[i+1]] {
				send[rem.Col] = append(send[rem.Col], prMsg{LIdx: rem.LIdx, Val: msg})
			}
		}
		for _, part := range comm.Must(comm.Alltoallv(st.r.RowC, send)) {
			for _, m := range part {
				st.lAcc[m.LIdx] += m.Val
			}
		}
		// L2E and L2H: accumulate into the replicated hub accumulator
		// locally; the hub reduce below sums every rank's partials.
		ltoe, ltoh := &st.rg.LToE, &st.rg.LToH
		for li := 0; li < st.rg.LocalN; li++ {
			if st.degL[li] == 0 {
				continue
			}
			msg := st.lVal[li] / st.degL[li]
			for _, hub := range ltoe.Adj[ltoe.Ptr[li]:ltoe.Ptr[li+1]] {
				st.hubAcc[hub] += msg
			}
			for _, hub := range ltoh.Adj[ltoh.Ptr[li]:ltoh.Ptr[li+1]] {
				st.hubAcc[hub] += msg
			}
		}
		// L2L: alltoallv of per-edge contributions.
		l2l := &st.rg.L2L
		sendLL := make([][]prMsg, layout.P)
		for li := 0; li < st.rg.LocalN; li++ {
			if st.degL[li] == 0 || l2l.Ptr[li] == l2l.Ptr[li+1] {
				continue
			}
			msg := st.lVal[li] / st.degL[li]
			for _, dst := range l2l.Adj[l2l.Ptr[li]:l2l.Ptr[li+1]] {
				owner := layout.Owner(dst)
				sendLL[owner] = append(sendLL[owner], prMsg{LIdx: layout.LocalIdx(dst), Val: msg})
			}
		}
		for _, part := range comm.Must(comm.Alltoallv(st.r.World, sendLL)) {
			for _, m := range part {
				st.lAcc[m.LIdx] += m.Val
			}
		}
		// Delegated hub accumulator reduction: column then row sum-reduce
		// (the BFS hub sync pattern with + instead of OR).
		if st.k > 0 {
			comm.Must0(comm.AllreduceSumFloat64(st.r.ColC, st.hubAcc))
			comm.Must0(comm.AllreduceSumFloat64(st.r.RowC, st.hubAcc))
		}
		// Apply. Hub applies are replicated and deterministic (identical
		// accumulators everywhere); L applies are owner-local.
		base := (1 - damping) / n
		var localDelta float64
		for h := 0; h < st.k; h++ {
			nv := base + damping*(st.hubAcc[h]+danglingShare)
			// Attribute each hub's delta once: by its owner.
			if layout.Owner(hubs.Orig[h]) == st.r.ID {
				localDelta += math.Abs(nv - st.hubVal[h])
			}
			st.hubVal[h] = nv
		}
		for li := 0; li < st.rg.LocalN; li++ {
			if _, isHub := hubs.HubOf(layout.GlobalOf(st.r.ID, int32(li))); isHub {
				continue
			}
			nv := base + damping*(st.lAcc[li]+danglingShare)
			localDelta += math.Abs(nv - st.lVal[li])
			st.lVal[li] = nv
		}
		dd := []float64{localDelta}
		comm.Must0(comm.AllreduceSumFloat64(st.r.World, dd))
		delta = dd[0]
	}
	return iter, delta
}

func (st *prState) writeResult(out []float64) {
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	for li := 0; li < st.rg.LocalN; li++ {
		v := layout.GlobalOf(st.r.ID, int32(li))
		if _, isHub := hubs.HubOf(v); !isHub {
			out[v] = st.lVal[li]
		}
	}
	for h, orig := range hubs.Orig {
		if layout.Owner(orig) == st.r.ID {
			out[orig] = st.hubVal[h]
		}
	}
}
