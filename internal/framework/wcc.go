package framework

import "time"

// WCCResult labels every vertex with the smallest original vertex ID in its
// connected component.
type WCCResult struct {
	Label      []int64
	Components int64 // number of distinct components among non-isolated vertices
	Iterations int
	Time       time.Duration
}

// ConnectedComponents runs min-label propagation over the six components
// until no label changes, via the generic Program API (minLabelProgram). An
// earlier hand-rolled implementation drifted from RunProgram's convergence
// accounting — it did not count the final zero-change round that proves
// convergence, so its Iterations came up one short of every other workload's.
// Delegating makes the semantics identical by construction.
func (e *Engine) ConnectedComponents() (*WCCResult, error) {
	rr, err := e.ConnectedComponentsGeneric()
	if err != nil {
		return nil, err
	}
	res := &WCCResult{Label: rr.Values, Iterations: rr.Iterations, Time: rr.Time}
	// Count components among vertices with at least one edge.
	n := e.Part.Layout.N
	seen := map[int64]bool{}
	for v := int64(0); v < n; v++ {
		if e.Part.Degrees[v] > 0 {
			seen[res.Label[v]] = true
		}
	}
	res.Components = int64(len(seen))
	return res, nil
}
