package framework

import (
	"time"

	"repro/internal/comm"
	"repro/internal/partition"
)

// WCCResult labels every vertex with the smallest original vertex ID in its
// connected component.
type WCCResult struct {
	Label      []int64
	Components int64 // number of distinct components among non-isolated vertices
	Iterations int
	Time       time.Duration
}

// ConnectedComponents runs min-label propagation over the six components
// until no label changes. Hub labels are delegated (replicated, min-reduced
// column-then-row); L labels are owner-local. Frontier filtering keeps the
// late rounds cheap: only vertices whose label changed propagate.
func (e *Engine) ConnectedComponents() (*WCCResult, error) {
	n := e.Part.Layout.N
	res := &WCCResult{Label: make([]int64, n)}
	start := time.Now()
	states := make([]*wccState, e.Opt.Ranks)
	var iters int64
	e.World.Run(func(r *comm.Rank) {
		st := newWCCState(e, r)
		states[r.ID] = st
		it := st.run()
		if r.ID == 0 {
			iters = int64(it)
		}
		st.writeResult(res.Label)
	})
	res.Time = time.Since(start)
	res.Iterations = int(iters)
	// Count components among vertices with at least one edge.
	seen := map[int64]bool{}
	for v := int64(0); v < n; v++ {
		if e.Part.Degrees[v] > 0 {
			seen[res.Label[v]] = true
		}
	}
	res.Components = int64(len(seen))
	return res, nil
}

type wccState struct {
	e  *Engine
	r  *comm.Rank
	rg *partition.RankGraph

	k int

	hubLabel []int64
	hubDirty []bool
	lLabel   []int64
	lDirty   []bool
}

func newWCCState(e *Engine, r *comm.Rank) *wccState {
	per := int(e.Part.Layout.PerRank)
	k := e.Part.Hubs.K()
	st := &wccState{
		e: e, r: r, rg: e.Part.Ranks[r.ID], k: k,
		hubLabel: make([]int64, k), hubDirty: make([]bool, k),
		lLabel: make([]int64, per), lDirty: make([]bool, per),
	}
	for h := 0; h < k; h++ {
		st.hubLabel[h] = e.Part.Hubs.Orig[h]
		st.hubDirty[h] = true
	}
	layout := e.Part.Layout
	for li := 0; li < st.rg.LocalN; li++ {
		st.lLabel[li] = layout.GlobalOf(r.ID, int32(li))
		st.lDirty[li] = true
	}
	return st
}

// labelMsg proposes a label for an owned L vertex.
type labelMsg struct {
	LIdx  int32
	Label int64
}

func (st *wccState) run() int {
	layout := st.e.Part.Layout
	mesh := st.e.Opt.Mesh
	iter := 0
	for ; iter < 10000; iter++ {
		var changed int64
		lowerHub := func(h int32, label int64) {
			if label < st.hubLabel[h] {
				st.hubLabel[h] = label
				st.hubDirty[h] = true
				changed++
			}
		}
		lowerL := func(li int32, label int64) {
			if label < st.lLabel[li] {
				st.lLabel[li] = label
				st.lDirty[li] = true
				changed++
			}
		}
		// Snapshot the dirty sets for this round; new changes re-mark.
		hubDirty := st.hubDirty
		st.hubDirty = make([]bool, st.k)
		lDirty := st.lDirty
		st.lDirty = make([]bool, len(st.lLabel))

		// EH2EH.
		push := &st.rg.EHPush
		for i, src := range push.IDs {
			if !hubDirty[src] {
				continue
			}
			for _, dst := range push.Adj[push.Ptr[i]:push.Ptr[i+1]] {
				lowerHub(dst, st.hubLabel[src])
			}
		}
		// E2L (local) and H2L (intra-row messages).
		etol := &st.rg.EToL
		for i, hub := range etol.IDs {
			if !hubDirty[hub] {
				continue
			}
			for _, li := range etol.Adj[etol.Ptr[i]:etol.Ptr[i+1]] {
				lowerL(li, st.hubLabel[hub])
			}
		}
		htol := &st.rg.HToL
		send := make([][]labelMsg, mesh.Cols)
		for i, hub := range htol.IDs {
			if !hubDirty[hub] {
				continue
			}
			for _, rem := range htol.Adj[htol.Ptr[i]:htol.Ptr[i+1]] {
				send[rem.Col] = append(send[rem.Col], labelMsg{LIdx: rem.LIdx, Label: st.hubLabel[hub]})
			}
		}
		for _, part := range comm.Must(comm.Alltoallv(st.r.RowC, send)) {
			for _, m := range part {
				lowerL(m.LIdx, m.Label)
			}
		}
		// L2E / L2H (local into delegates) and L2L (alltoallv).
		ltoe, ltoh, l2l := &st.rg.LToE, &st.rg.LToH, &st.rg.L2L
		sendLL := make([][]labelMsg, layout.P)
		for li := 0; li < st.rg.LocalN; li++ {
			if !lDirty[li] {
				continue
			}
			label := st.lLabel[li]
			for _, hub := range ltoe.Adj[ltoe.Ptr[li]:ltoe.Ptr[li+1]] {
				lowerHub(hub, label)
			}
			for _, hub := range ltoh.Adj[ltoh.Ptr[li]:ltoh.Ptr[li+1]] {
				lowerHub(hub, label)
			}
			for _, dst := range l2l.Adj[l2l.Ptr[li]:l2l.Ptr[li+1]] {
				owner := layout.Owner(dst)
				sendLL[owner] = append(sendLL[owner], labelMsg{LIdx: layout.LocalIdx(dst), Label: label})
			}
		}
		for _, part := range comm.Must(comm.Alltoallv(st.r.World, sendLL)) {
			for _, m := range part {
				lowerL(m.LIdx, m.Label)
			}
		}
		// Delegated hub label reconciliation: min-reduce column then row
		// (as max-reduce of negated labels, reusing the int64 collective).
		if st.k > 0 {
			st.syncHubLabels(&changed)
		}
		total := comm.Must(comm.AllreduceSumInt64(st.r.World, changed))
		if total == 0 {
			break
		}
	}
	return iter
}

// syncHubLabels min-reduces replicated hub labels over column then row.
func (st *wccState) syncHubLabels(changed *int64) {
	neg := make([]int64, st.k)
	for h := range neg {
		neg[h] = -st.hubLabel[h]
	}
	comm.Must0(comm.AllreduceMaxInt64(st.r.ColC, neg))
	comm.Must0(comm.AllreduceMaxInt64(st.r.RowC, neg))
	for h := range neg {
		if l := -neg[h]; l < st.hubLabel[h] {
			st.hubLabel[h] = l
			st.hubDirty[h] = true
			*changed++
		}
	}
}

func (st *wccState) writeResult(out []int64) {
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	for li := 0; li < st.rg.LocalN; li++ {
		v := layout.GlobalOf(st.r.ID, int32(li))
		if _, isHub := hubs.HubOf(v); !isHub {
			out[v] = st.lLabel[li]
		}
	}
	for h, orig := range hubs.Orig {
		if layout.Owner(orig) == st.r.ID {
			out[orig] = st.hubLabel[h]
		}
	}
}
