package framework

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/partition"
)

// KCoreResult reports membership of the k-core: the maximal subgraph in
// which every vertex has degree at least k.
type KCoreResult struct {
	InCore     []bool
	CoreSize   int64
	Iterations int
	Time       time.Duration
}

// KCore computes the k-core by synchronous peeling: every round removes all
// vertices whose remaining degree dropped below k and messages a degree
// decrement along each of their edges. Hub decrements are delegated —
// accumulated locally per rank and sum-reduced column-then-row — while L
// decrements travel as the usual owner-directed messages. Duplicate edges
// count toward degree with multiplicity, consistent with the partitioner's
// degree table.
func (e *Engine) KCore(k int64) (*KCoreResult, error) {
	if k < 0 {
		return nil, fmt.Errorf("framework: negative k")
	}
	n := e.Part.Layout.N
	res := &KCoreResult{InCore: make([]bool, n)}
	start := time.Now()
	iters := make([]int, e.Opt.Ranks)
	e.World.Run(func(r *comm.Rank) {
		st := newKCoreState(e, r, k)
		iters[r.ID] = st.run()
		st.writeResult(res.InCore)
	})
	res.Time = time.Since(start)
	res.Iterations = iters[0]
	for _, in := range res.InCore {
		if in {
			res.CoreSize++
		}
	}
	return res, nil
}

type kcoreState struct {
	e  *Engine
	r  *comm.Rank
	rg *partition.RankGraph
	k  int64

	kk int // hub count

	hubDeg     []int64
	hubRemoved []bool
	hubPeeled  []bool // removed this round, decrements not yet sent
	lDeg       []int64
	lRemoved   []bool
	lPeeled    []bool
}

type decMsg struct {
	LIdx int32
	Dec  int32
}

func newKCoreState(e *Engine, r *comm.Rank, k int64) *kcoreState {
	per := int(e.Part.Layout.PerRank)
	kk := e.Part.Hubs.K()
	st := &kcoreState{
		e: e, r: r, rg: e.Part.Ranks[r.ID], k: k, kk: kk,
		hubDeg: make([]int64, kk), hubRemoved: make([]bool, kk), hubPeeled: make([]bool, kk),
		lDeg: make([]int64, per), lRemoved: make([]bool, per), lPeeled: make([]bool, per),
	}
	for h := 0; h < kk; h++ {
		st.hubDeg[h] = e.Part.Hubs.Deg[h]
	}
	layout := e.Part.Layout
	for li := 0; li < st.rg.LocalN; li++ {
		st.lDeg[li] = e.Part.Degrees[layout.GlobalOf(r.ID, int32(li))]
	}
	return st
}

// peel marks every live vertex below the threshold as peeled; returns the
// local count.
func (st *kcoreState) peel() int64 {
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	var peeled int64
	// Hub removals are decided identically on every rank (replicated
	// degrees); only the owner counts them toward the global total.
	for h := 0; h < st.kk; h++ {
		if !st.hubRemoved[h] && st.hubDeg[h] < st.k {
			st.hubRemoved[h] = true
			st.hubPeeled[h] = true
			if layout.Owner(hubs.Orig[h]) == st.r.ID {
				peeled++
			}
		}
	}
	for li := 0; li < st.rg.LocalN; li++ {
		v := layout.GlobalOf(st.r.ID, int32(li))
		if _, isHub := hubs.HubOf(v); isHub {
			continue
		}
		if !st.lRemoved[li] && st.lDeg[li] < st.k {
			st.lRemoved[li] = true
			st.lPeeled[li] = true
			peeled++
		}
	}
	return peeled
}

func (st *kcoreState) run() int {
	layout := st.e.Part.Layout
	mesh := st.e.Opt.Mesh
	iter := 0
	for ; iter < 1<<20; iter++ {
		peeled := st.peel()
		total := comm.Must(comm.AllreduceSumInt64(st.r.World, peeled))
		if total == 0 {
			break
		}
		// Send decrements along every edge of the freshly peeled vertices.
		hubDec := make([]int64, st.kk) // local partial, sum-reduced below
		lDecLocal := make([]int64, len(st.lDeg))
		sendRow := make([][]decMsg, mesh.Cols)
		sendLL := make([][]decMsg, layout.P)

		push := &st.rg.EHPush
		for i, src := range push.IDs {
			if !st.hubPeeled[src] {
				continue
			}
			for _, dst := range push.Adj[push.Ptr[i]:push.Ptr[i+1]] {
				hubDec[dst]++
			}
		}
		etol := &st.rg.EToL
		for i, hub := range etol.IDs {
			if !st.hubPeeled[hub] {
				continue
			}
			for _, li := range etol.Adj[etol.Ptr[i]:etol.Ptr[i+1]] {
				lDecLocal[li]++
			}
		}
		htol := &st.rg.HToL
		for i, hub := range htol.IDs {
			if !st.hubPeeled[hub] {
				continue
			}
			for _, rem := range htol.Adj[htol.Ptr[i]:htol.Ptr[i+1]] {
				sendRow[rem.Col] = append(sendRow[rem.Col], decMsg{LIdx: rem.LIdx, Dec: 1})
			}
		}
		ltoe, ltoh, l2l := &st.rg.LToE, &st.rg.LToH, &st.rg.L2L
		for li := 0; li < st.rg.LocalN; li++ {
			if !st.lPeeled[li] {
				continue
			}
			for _, hub := range ltoe.Adj[ltoe.Ptr[li]:ltoe.Ptr[li+1]] {
				hubDec[hub]++
			}
			for _, hub := range ltoh.Adj[ltoh.Ptr[li]:ltoh.Ptr[li+1]] {
				hubDec[hub]++
			}
			for _, dst := range l2l.Adj[l2l.Ptr[li]:l2l.Ptr[li+1]] {
				owner := layout.Owner(dst)
				sendLL[owner] = append(sendLL[owner], decMsg{LIdx: layout.LocalIdx(dst), Dec: 1})
			}
		}
		// Clear the peel marks: decrements are on their way.
		for h := range st.hubPeeled {
			st.hubPeeled[h] = false
		}
		for li := range st.lPeeled {
			st.lPeeled[li] = false
		}
		// Deliver.
		for _, part := range comm.Must(comm.Alltoallv(st.r.RowC, sendRow)) {
			for _, m := range part {
				lDecLocal[m.LIdx] += int64(m.Dec)
			}
		}
		for _, part := range comm.Must(comm.Alltoallv(st.r.World, sendLL)) {
			for _, m := range part {
				lDecLocal[m.LIdx] += int64(m.Dec)
			}
		}
		if st.kk > 0 {
			comm.Must0(comm.AllreduceSumInt64Vec(st.r.ColC, hubDec))
			comm.Must0(comm.AllreduceSumInt64Vec(st.r.RowC, hubDec))
		}
		for h := 0; h < st.kk; h++ {
			st.hubDeg[h] -= hubDec[h]
		}
		for li := range lDecLocal {
			st.lDeg[li] -= lDecLocal[li]
		}
	}
	return iter
}

func (st *kcoreState) writeResult(out []bool) {
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	for li := 0; li < st.rg.LocalN; li++ {
		v := layout.GlobalOf(st.r.ID, int32(li))
		if _, isHub := hubs.HubOf(v); !isHub {
			out[v] = !st.lRemoved[li]
		}
	}
	for h, orig := range hubs.Orig {
		if layout.Owner(orig) == st.r.ID {
			out[orig] = !st.hubRemoved[h]
		}
	}
}
