package framework

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/partition"
	"repro/internal/rmat"
)

// sequentialPageRank is the dense reference power iteration with dangling
// redistribution, matching the distributed semantics.
func sequentialPageRank(n int64, edges []rmat.Edge, damping float64, iters int) []float64 {
	deg := make([]float64, n)
	type arc struct{ u, v int64 }
	var arcs []arc
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		deg[e.U]++
		deg[e.V]++
		arcs = append(arcs, arc{e.U, e.V}, arc{e.V, e.U})
	}
	val := make([]float64, n)
	for i := range val {
		val[i] = 1 / float64(n)
	}
	acc := make([]float64, n)
	for it := 0; it < iters; it++ {
		var dangling float64
		for v := int64(0); v < n; v++ {
			acc[v] = 0
			if deg[v] == 0 {
				dangling += val[v]
			}
		}
		for _, a := range arcs {
			acc[a.v] += val[a.u] / deg[a.u]
		}
		base := (1 - damping) / float64(n)
		share := dangling / float64(n)
		for v := int64(0); v < n; v++ {
			val[v] = base + damping*(acc[v]+share)
		}
	}
	return val
}

func TestPageRankMatchesSequential(t *testing.T) {
	cfg := rmat.Config{Scale: 9, Seed: 17}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	eng, err := New(n, edges, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	const iters = 30
	res, err := eng.PageRank(0.85, 0, iters) // tol 0 forces exactly iters rounds
	if err != nil {
		t.Fatal(err)
	}
	ref := sequentialPageRank(n, edges, 0.85, iters)
	for v := int64(0); v < n; v++ {
		if math.Abs(res.Rank[v]-ref[v]) > 1e-12 {
			t.Fatalf("rank[%d] = %.15g, reference %.15g", v, res.Rank[v], ref[v])
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	cfg := rmat.Config{Scale: 10, Seed: 18}
	edges := rmat.Generate(cfg)
	eng, err := New(cfg.NumVertices(), edges, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.PageRank(0.85, 1e-10, 200)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range res.Rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ranks sum to %.12f", sum)
	}
	if res.Delta > 1e-10 {
		t.Fatalf("did not converge: delta %g after %d iterations", res.Delta, res.Iterations)
	}
}

func TestPageRankHubsRankHighest(t *testing.T) {
	// The highest-rank vertex of an R-MAT graph must be a hub (degree
	// outlier) — the whole premise of degree-aware partitioning.
	cfg := rmat.Config{Scale: 11, Seed: 19}
	edges := rmat.Generate(cfg)
	eng, err := New(cfg.NumVertices(), edges, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.PageRank(0.85, 1e-9, 100)
	if err != nil {
		t.Fatal(err)
	}
	best := int64(0)
	for v := range res.Rank {
		if res.Rank[v] > res.Rank[best] {
			best = int64(v)
		}
	}
	if _, isHub := eng.Part.Hubs.HubOf(best); !isHub {
		t.Fatalf("top-ranked vertex %d (degree %d) is not a hub", best, eng.Part.Degrees[best])
	}
}

func TestPageRankMeshInvariance(t *testing.T) {
	cfg := rmat.Config{Scale: 8, Seed: 20}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	var ref []float64
	for _, ranks := range []int{1, 2, 4, 8} {
		eng, err := New(n, edges, Options{Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.PageRank(0.85, 0, 20)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.Rank
			continue
		}
		for v := int64(0); v < n; v++ {
			if math.Abs(res.Rank[v]-ref[v]) > 1e-12 {
				t.Fatalf("ranks=%d: rank[%d] differs from 1-rank run: %g vs %g",
					ranks, v, res.Rank[v], ref[v])
			}
		}
	}
}

func TestPageRankRejectsBadDamping(t *testing.T) {
	cfg := rmat.Config{Scale: 6, Seed: 1}
	eng, err := New(cfg.NumVertices(), rmat.Generate(cfg), Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.PageRank(0, 1e-6, 10); err == nil {
		t.Fatal("damping 0 accepted")
	}
	if _, err := eng.PageRank(1, 1e-6, 10); err == nil {
		t.Fatal("damping 1 accepted")
	}
}

// unionFind is the WCC reference.
func unionFind(n int64, edges []rmat.Edge) []int64 {
	parent := make([]int64, n)
	for i := range parent {
		parent[i] = int64(i)
	}
	var find func(x int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		a, b := find(e.U), find(e.V)
		if a != b {
			if a < b {
				parent[b] = a
			} else {
				parent[a] = b
			}
		}
	}
	label := make([]int64, n)
	for v := int64(0); v < n; v++ {
		label[v] = find(v)
	}
	return label
}

func TestWCCMatchesUnionFind(t *testing.T) {
	cfg := rmat.Config{Scale: 10, Seed: 21}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	eng, err := New(n, edges, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.ConnectedComponents()
	if err != nil {
		t.Fatal(err)
	}
	ref := unionFind(n, edges)
	// Min-label propagation converges to the minimum original ID per
	// component, which is exactly what our unionFind computes (it unions
	// toward the smaller root).
	for v := int64(0); v < n; v++ {
		if res.Label[v] != ref[v] {
			t.Fatalf("label[%d] = %d, reference %d", v, res.Label[v], ref[v])
		}
	}
}

func TestWCCComponentCount(t *testing.T) {
	// Two triangles and an isolated vertex.
	edges := []rmat.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 10, V: 11}, {U: 11, V: 12}, {U: 12, V: 10},
	}
	eng, err := New(64, edges, Options{Ranks: 4, Thresholds: partition.Thresholds{E: 16, H: 2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.ConnectedComponents()
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 2 {
		t.Fatalf("found %d components, want 2", res.Components)
	}
	if res.Label[0] != 0 || res.Label[2] != 0 || res.Label[12] != 10 {
		t.Fatalf("labels wrong: %v %v %v", res.Label[0], res.Label[2], res.Label[12])
	}
}

func TestWCCMeshShapes(t *testing.T) {
	cfg := rmat.Config{Scale: 8, Seed: 22}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	ref := unionFind(n, edges)
	for _, ranks := range []int{1, 2, 6, 9} {
		t.Run(fmt.Sprintf("ranks%d", ranks), func(t *testing.T) {
			eng, err := New(n, edges, Options{Ranks: ranks})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.ConnectedComponents()
			if err != nil {
				t.Fatal(err)
			}
			for v := int64(0); v < n; v++ {
				if res.Label[v] != ref[v] {
					t.Fatalf("label[%d] = %d, reference %d", v, res.Label[v], ref[v])
				}
			}
		})
	}
}

func TestFrameworkOptionsValidation(t *testing.T) {
	cfg := rmat.Config{Scale: 6, Seed: 1}
	if _, err := New(cfg.NumVertices(), rmat.Generate(cfg), Options{}); err == nil {
		t.Fatal("missing mesh/ranks accepted")
	}
}

func BenchmarkPageRankScale12(b *testing.B) {
	cfg := rmat.Config{Scale: 12, Seed: 23}
	eng, err := New(cfg.NumVertices(), rmat.Generate(cfg), Options{Ranks: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.PageRank(0.85, 1e-6, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWCCScale12(b *testing.B) {
	cfg := rmat.Config{Scale: 12, Seed: 24}
	eng, err := New(cfg.NumVertices(), rmat.Generate(cfg), Options{Ranks: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ConnectedComponents(); err != nil {
			b.Fatal(err)
		}
	}
}
