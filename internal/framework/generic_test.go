package framework

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rmat"
)

func TestGenericWCCMatchesHandRolled(t *testing.T) {
	cfg := rmat.Config{Scale: 9, Seed: 81}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	eng, err := New(n, edges, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	hand, err := eng.ConnectedComponents()
	if err != nil {
		t.Fatal(err)
	}
	gen, err := eng.ConnectedComponentsGeneric()
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < n; v++ {
		// Generic WCC initializes isolated vertices to their own ID too;
		// both must agree everywhere.
		if hand.Label[v] != gen.Values[v] {
			t.Fatalf("label[%d]: hand %d vs generic %d", v, hand.Label[v], gen.Values[v])
		}
	}
}

// TestWCCConvergenceCountsFinalRound pins the RunProgram convergence
// accounting that the retired hand-rolled ConnectedComponents drifted from:
// the zero-change round that proves convergence IS counted. On a path of n
// vertices labels last change in round n-2 (zero-indexed), so the quiet round
// n-1 brings Iterations to exactly n — and the delegating wrapper must report
// the same count as the generic runner on any graph.
func TestWCCConvergenceCountsFinalRound(t *testing.T) {
	const n = int64(9)
	edges := make([]rmat.Edge, 0, n-1)
	for v := int64(0); v+1 < n; v++ {
		edges = append(edges, rmat.Edge{U: v, V: v + 1})
	}
	for _, ranks := range []int{1, 4} {
		eng, err := New(n, edges, Options{Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		hand, err := eng.ConnectedComponents()
		if err != nil {
			t.Fatal(err)
		}
		gen, err := eng.ConnectedComponentsGeneric()
		if err != nil {
			t.Fatal(err)
		}
		if hand.Iterations != gen.Iterations {
			t.Fatalf("ranks=%d: ConnectedComponents ran %d iterations, generic %d",
				ranks, hand.Iterations, gen.Iterations)
		}
		if hand.Iterations != int(n) {
			t.Fatalf("ranks=%d: path-%d WCC took %d iterations, want %d (final quiet round counts)",
				ranks, n, hand.Iterations, n)
		}
		if hand.Components != 1 {
			t.Fatalf("ranks=%d: components = %d, want 1", ranks, hand.Components)
		}
	}
}

func TestGenericWCCAgainstUnionFind(t *testing.T) {
	cfg := rmat.Config{Scale: 10, Seed: 82}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	eng, err := New(n, edges, Options{Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := eng.ConnectedComponentsGeneric()
	if err != nil {
		t.Fatal(err)
	}
	ref := unionFind(n, edges)
	for v := int64(0); v < n; v++ {
		if gen.Values[v] != ref[v] {
			t.Fatalf("label[%d] = %d, reference %d", v, gen.Values[v], ref[v])
		}
	}
}

func TestReachabilityMatchesBFS(t *testing.T) {
	cfg := rmat.Config{Scale: 9, Seed: 83}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	eng, err := New(n, edges, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	sources := []int64{0, 7, 99, 500}
	res, err := eng.Reachability(sources)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromEdges(n, edges, graph.BuildOptions{Symmetrize: true, DropSelfLoops: true})
	for s, src := range sources {
		parent := g.SequentialBFS(src)
		for v := int64(0); v < n; v++ {
			want := parent[v] >= 0
			got := res.Values[v]&(1<<uint(s)) != 0
			if got != want {
				t.Fatalf("source %d vertex %d: reachability %v, BFS says %v", src, v, got, want)
			}
		}
	}
}

func TestReachabilityAllSixtyFourSources(t *testing.T) {
	cfg := rmat.Config{Scale: 8, Seed: 84}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	eng, err := New(n, edges, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	sources := make([]int64, 64)
	for i := range sources {
		sources[i] = int64(i * 3)
	}
	res, err := eng.Reachability(sources)
	if err != nil {
		t.Fatal(err)
	}
	// Every source reaches itself.
	for s, src := range sources {
		if res.Values[src]&(1<<uint(s)) == 0 {
			t.Fatalf("source %d does not reach itself", src)
		}
	}
}

func TestReachabilityValidatesInput(t *testing.T) {
	cfg := rmat.Config{Scale: 6, Seed: 85}
	eng, err := New(cfg.NumVertices(), rmat.Generate(cfg), Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Reachability(nil); err == nil {
		t.Fatal("empty sources accepted")
	}
	if _, err := eng.Reachability(make([]int64, 65)); err == nil {
		t.Fatal("65 sources accepted")
	}
	if _, err := eng.Reachability([]int64{-1}); err == nil {
		t.Fatal("negative source accepted")
	}
}

// sumProgram exercises a non-idempotent Combine through the generic API:
// each vertex converges to... nothing (sums grow), so it bounds iterations.
// It verifies maxIter is honored and values change deterministically.
type sumProgram struct{}

func (sumProgram) Init(v int64, deg int64) int64 { return 1 }
func (sumProgram) Identity() int64               { return 0 }
func (sumProgram) Combine(a, b int64) int64      { return a + b }
func (sumProgram) Message(val int64) int64       { return val }
func (sumProgram) Apply(old, acc int64) int64    { return old + acc }

func TestGenericMaxIterHonored(t *testing.T) {
	cfg := rmat.Config{Scale: 7, Seed: 86}
	edges := rmat.Generate(cfg)
	eng, err := New(cfg.NumVertices(), edges, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunProgram[int64](eng, sumProgram{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 {
		t.Fatalf("ran %d iterations, want 3", res.Iterations)
	}
}

func TestGenericRankInvariance(t *testing.T) {
	// The same program must produce identical values regardless of rank
	// count (deterministic member-order Combine).
	cfg := rmat.Config{Scale: 8, Seed: 87}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	var ref []int64
	for _, ranks := range []int{1, 4, 9} {
		eng, err := New(n, edges, Options{Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunProgram[int64](eng, sumProgram{}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.Values
			continue
		}
		for v := int64(0); v < n; v++ {
			if res.Values[v] != ref[v] {
				t.Fatalf("ranks=%d: value[%d] = %d, 1-rank run %d", ranks, v, res.Values[v], ref[v])
			}
		}
	}
}
