package stats

import (
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/partition"
)

func TestPhaseOfComponentCoversAll(t *testing.T) {
	seen := map[Phase]bool{}
	for c := partition.Component(0); c < partition.NumComponents; c++ {
		p := PhaseOfComponent(c)
		if p.String() != c.String() {
			t.Fatalf("phase %v names differ from component %v", p, c)
		}
		seen[p] = true
	}
	if len(seen) != int(partition.NumComponents) {
		t.Fatalf("components map onto %d phases", len(seen))
	}
}

func TestObserveAndTotals(t *testing.T) {
	r := &Recorder{}
	var v comm.VolumeStats
	v.IntraBytes[comm.KindAlltoallv] = 100
	r.Observe(PhaseEH2EH, DirPush, 2*time.Millisecond, v, 50)
	r.Observe(PhaseEH2EH, DirPull, 3*time.Millisecond, comm.VolumeStats{}, 70)
	r.Observe(PhaseL2L, DirPush, 5*time.Millisecond, comm.VolumeStats{}, 30)

	if got := r.PhaseTime(PhaseEH2EH); got != 5*time.Millisecond {
		t.Fatalf("PhaseTime = %v", got)
	}
	if got := r.TotalTime(); got != 10*time.Millisecond {
		t.Fatalf("TotalTime = %v", got)
	}
	if got := r.TotalEdges(); got != 150 {
		t.Fatalf("TotalEdges = %d", got)
	}
	if got := r.CommBreakdown().IntraBytes[comm.KindAlltoallv]; got != 100 {
		t.Fatalf("comm bytes = %d", got)
	}
}

func TestMerge(t *testing.T) {
	a, b := &Recorder{}, &Recorder{}
	a.Observe(PhaseE2L, DirPush, time.Millisecond, comm.VolumeStats{}, 5)
	b.Observe(PhaseE2L, DirPull, time.Millisecond, comm.VolumeStats{}, 7)
	a.Merge(b)
	if a.TotalEdges() != 12 {
		t.Fatalf("merged edges = %d", a.TotalEdges())
	}
	if a.Time[PhaseE2L][DirPush] != time.Millisecond || a.Time[PhaseE2L][DirPull] != time.Millisecond {
		t.Fatal("merge lost directional times")
	}
}

func TestPhaseShare(t *testing.T) {
	r := &Recorder{}
	empty := r.PhaseShare()
	for _, s := range empty {
		if s != 0 {
			t.Fatal("empty recorder has nonzero share")
		}
	}
	r.Observe(PhaseL2L, DirPush, 3*time.Millisecond, comm.VolumeStats{}, 0)
	r.Observe(PhaseOther, DirNone, time.Millisecond, comm.VolumeStats{}, 0)
	share := r.PhaseShare()
	if share[PhaseL2L] != 0.75 || share[PhaseOther] != 0.25 {
		t.Fatalf("shares %v", share)
	}
	var sum float64
	for _, s := range share {
		sum += s
	}
	if sum != 1 {
		t.Fatalf("shares sum to %g", sum)
	}
}

func TestDirectionStrings(t *testing.T) {
	if DirPush.String() != "push" || DirPull.String() != "pull" || DirSkip.String() != "skip" || DirNone.String() != "-" {
		t.Fatal("direction names drifted")
	}
}

func TestPhaseStrings(t *testing.T) {
	want := []string{"EH2EH", "E2L", "H2L", "L2E", "L2H", "L2L", "reduce", "other"}
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() != want[p] {
			t.Fatalf("phase %d = %q, want %q", p, p.String(), want[p])
		}
	}
}
