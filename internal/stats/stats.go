// Package stats records per-rank time and communication-volume breakdowns
// during a BFS run, categorized two ways like the paper's evaluation:
// by subgraph component plus parent reduction and other (Figure 10), and by
// collective type plus compute (Figure 11). Kernels additionally tag each
// observation with its traversal direction, which is what the Figure 15
// ablation plots.
package stats

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/partition"
)

// Phase is a time-breakdown category: the six components plus bookkeeping.
type Phase int

// Phases, mirroring Figure 10's legend.
const (
	PhaseEH2EH Phase = iota
	PhaseE2L
	PhaseH2L
	PhaseL2E
	PhaseL2H
	PhaseL2L
	PhaseReduce
	PhaseOther
	NumPhases
)

// PhaseOfComponent maps a component to its phase.
func PhaseOfComponent(c partition.Component) Phase {
	switch c {
	case partition.CompEH2EH:
		return PhaseEH2EH
	case partition.CompE2L:
		return PhaseE2L
	case partition.CompH2L:
		return PhaseH2L
	case partition.CompL2E:
		return PhaseL2E
	case partition.CompL2H:
		return PhaseL2H
	case partition.CompL2L:
		return PhaseL2L
	}
	return PhaseOther
}

// String names the phase as in Figure 10.
func (p Phase) String() string {
	switch p {
	case PhaseEH2EH:
		return "EH2EH"
	case PhaseE2L:
		return "E2L"
	case PhaseH2L:
		return "H2L"
	case PhaseL2E:
		return "L2E"
	case PhaseL2H:
		return "L2H"
	case PhaseL2L:
		return "L2L"
	case PhaseReduce:
		return "reduce"
	case PhaseOther:
		return "other"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Direction is the traversal direction of an observation.
type Direction int

// Directions. None marks phases without a push/pull notion (reduce, other);
// Skip marks sub-iterations elided entirely because their source frontier or
// destination class is exhausted (Section 4.2's "eliminates unnecessary E or
// H visits from L vertices in late iterations").
const (
	DirNone Direction = iota
	DirPush
	DirPull
	DirSkip
	numDirections
)

// NumDirections is the direction-axis size, for callers that tally per
// direction (the Figure 15 report).
const NumDirections = int(numDirections)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case DirPush:
		return "push"
	case DirPull:
		return "pull"
	case DirSkip:
		return "skip"
	}
	return "-"
}

// Recorder accumulates one rank's observations. Not safe for concurrent use;
// each rank owns one.
type Recorder struct {
	Time    [NumPhases][numDirections]time.Duration
	Volumes [NumPhases]comm.VolumeStats
	// EdgesTouched counts adjacency entries scanned per phase, the work
	// measure behind TEPS and the direction-optimization savings.
	EdgesTouched [NumPhases]int64
	// Faults counts the rank's injected faults and observed collective errors
	// when the run executed under a fault transport.
	Faults comm.FaultStats
	// Retries counts iteration attempts the rank re-executed after a
	// collective error; Recovery is the wall time those attempts (including
	// backoff) consumed.
	Retries  int64
	Recovery time.Duration
	// FailStop records the fail-stop recovery and checkpoint accounting of
	// the run (zero when checkpointing is off and no rank died).
	FailStop RecoveryStats
}

// RecoveryStats accounts fail-stop recovery: world-epoch transitions,
// checkpoint traffic, and the replay cost of resuming. Per-rank recorders
// carry their own checkpoint-writer and restore numbers; the engine adds the
// run-global fields (Epochs, RanksLost, IterationsReplayed, RecoveryTime)
// once, so merging recorders never double-counts them.
type RecoveryStats struct {
	// Epochs counts world rebuilds (one per detected fail-stop event, which
	// may lose several ranks at once); RanksLost totals ranks lost across
	// them.
	Epochs    int64
	RanksLost int64
	// IterationsReplayed counts iterations re-executed because they happened
	// after the checkpoint the run resumed from.
	IterationsReplayed int64
	// BytesRestored totals checkpoint bytes read back during recovery
	// (delta-tier replay on every rank, plus the graph tier on replaced
	// ranks).
	BytesRestored int64
	// LastResumeIter is the iteration of the newest checkpoint the run
	// resumed from (-1 = bootstrap segment only, -2 = never resumed).
	LastResumeIter int64
	// RecoveryTime is wall clock spent rebuilding worlds and replaying
	// state, as observed by the engine (not summed across ranks).
	RecoveryTime time.Duration
	// Checkpoint-writer accounting, summed across ranks: committed segments
	// and bytes, captures dropped because both buffers were in flight, and
	// segments that failed to commit.
	CheckpointSegments int64
	CheckpointBytes    int64
	CheckpointDropped  int64
	CheckpointErrors   int64
}

// Add accumulates other into s. Counters sum; LastResumeIter is engine-owned
// (set once on the aggregate, not meaningful to sum) and is left untouched.
func (s *RecoveryStats) Add(other *RecoveryStats) {
	s.Epochs += other.Epochs
	s.RanksLost += other.RanksLost
	s.IterationsReplayed += other.IterationsReplayed
	s.BytesRestored += other.BytesRestored
	s.RecoveryTime += other.RecoveryTime
	s.CheckpointSegments += other.CheckpointSegments
	s.CheckpointBytes += other.CheckpointBytes
	s.CheckpointDropped += other.CheckpointDropped
	s.CheckpointErrors += other.CheckpointErrors
}

// Observe adds one kernel execution's time, traffic delta and scanned edges.
func (r *Recorder) Observe(p Phase, d Direction, dt time.Duration, dv comm.VolumeStats, edges int64) {
	r.Time[p][d] += dt
	r.Volumes[p].Add(&dv)
	r.EdgesTouched[p] += edges
}

// Merge folds other into r (for aggregating ranks).
func (r *Recorder) Merge(other *Recorder) {
	for p := Phase(0); p < NumPhases; p++ {
		for d := Direction(0); d < numDirections; d++ {
			r.Time[p][d] += other.Time[p][d]
		}
		r.Volumes[p].Add(&other.Volumes[p])
		r.EdgesTouched[p] += other.EdgesTouched[p]
	}
	r.Faults.Add(&other.Faults)
	r.Retries += other.Retries
	r.Recovery += other.Recovery
	r.FailStop.Add(&other.FailStop)
}

// PhaseTime returns the total time of a phase across directions.
func (r *Recorder) PhaseTime(p Phase) time.Duration {
	var t time.Duration
	for d := Direction(0); d < numDirections; d++ {
		t += r.Time[p][d]
	}
	return t
}

// TotalTime sums every phase.
func (r *Recorder) TotalTime() time.Duration {
	var t time.Duration
	for p := Phase(0); p < NumPhases; p++ {
		t += r.PhaseTime(p)
	}
	return t
}

// TotalEdges sums scanned edges over phases.
func (r *Recorder) TotalEdges() int64 {
	var t int64
	for p := Phase(0); p < NumPhases; p++ {
		t += r.EdgesTouched[p]
	}
	return t
}

// CommBreakdown aggregates volumes across phases per collective kind,
// the Figure 11 categorization.
func (r *Recorder) CommBreakdown() comm.VolumeStats {
	var v comm.VolumeStats
	for p := Phase(0); p < NumPhases; p++ {
		v.Add(&r.Volumes[p])
	}
	return v
}

// PhaseShare returns each phase's fraction of total time (Figure 10 bars).
func (r *Recorder) PhaseShare() [NumPhases]float64 {
	var out [NumPhases]float64
	total := r.TotalTime()
	if total == 0 {
		return out
	}
	for p := Phase(0); p < NumPhases; p++ {
		out[p] = float64(r.PhaseTime(p)) / float64(total)
	}
	return out
}
