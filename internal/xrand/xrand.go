// Package xrand provides the deterministic pseudo-random number streams the
// graph generator and samplers rely on. Two generators are implemented from
// their published references: SplitMix64 (used to seed and to scramble vertex
// IDs) and xoshiro256** (the workhorse stream). Both are allocation-free and
// support cheap parallel substreams via jump-ahead, which is what lets R-MAT
// edge generation be split across goroutines while staying bit-reproducible.
package xrand

import "math/bits"

// SplitMix64 is the 64-bit SplitMix generator of Steele, Lea and Flood.
// Its zero value is a valid stream seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 stream with the given seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Next returns the next value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the SplitMix64 finalizer to x. It is a high-quality 64-bit
// mixing function used to scramble vertex identifiers so that the contiguous
// block distribution of vertices does not correlate with R-MAT locality
// (the Graph 500 reference code scrambles IDs for the same reason).
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256 is the xoshiro256** generator of Blackman and Vigna.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator seeded from seed via SplitMix64, as the
// authors recommend.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// An all-zero state would be absorbing; SplitMix64 cannot produce four
	// zeros from any seed, but guard anyway.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 1
	}
	return &x
}

// Next returns the next value in the stream.
func (x *Xoshiro256) Next() uint64 {
	result := bits.RotateLeft64(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = bits.RotateLeft64(x.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Next()>>11) / (1 << 53)
}

// Uint64n returns a uniform value in [0, n). It uses Lemire's multiply-shift
// rejection method and panics if n is zero.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n(0)")
	}
	hi, lo := bits.Mul64(x.Next(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(x.Next(), n)
		}
	}
	return hi
}

// jump polynomials from the reference implementation.
var xoshiroJump = [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
var xoshiroLongJump = [4]uint64{0x76e15d3efefdcbbf, 0xc5004e441c522fb3, 0x77710069854ee241, 0x39109bb02acbe635}

func (x *Xoshiro256) applyJump(poly [4]uint64) {
	var s [4]uint64
	for _, p := range poly {
		for b := 0; b < 64; b++ {
			if p&(1<<uint(b)) != 0 {
				s[0] ^= x.s[0]
				s[1] ^= x.s[1]
				s[2] ^= x.s[2]
				s[3] ^= x.s[3]
			}
			x.Next()
		}
	}
	x.s = s
}

// Jump advances the stream by 2^128 steps; up to 2^128 substreams obtained by
// successive Jumps never overlap.
func (x *Xoshiro256) Jump() { x.applyJump(xoshiroJump) }

// LongJump advances the stream by 2^192 steps.
func (x *Xoshiro256) LongJump() { x.applyJump(xoshiroLongJump) }

// Substream returns an independent generator: the receiver's state after i
// jumps. The receiver is not modified.
func (x *Xoshiro256) Substream(i int) *Xoshiro256 {
	c := *x
	for k := 0; k < i; k++ {
		c.Jump()
	}
	return &c
}
