package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 1234567 from the canonical C implementation.
	s := NewSplitMix64(1234567)
	got := []uint64{s.Next(), s.Next(), s.Next()}
	want := []uint64{6457827717110365317, 3203168211198807973, 9817491932198370423}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SplitMix64[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMix64MatchesStream(t *testing.T) {
	// Mix64(seed advanced once) must equal the first Next() of a stream with
	// the same seed, since SplitMix64 is exactly the finalizer over a Weyl
	// sequence.
	for seed := uint64(0); seed < 100; seed++ {
		s := NewSplitMix64(seed)
		if got, want := s.Next(), Mix64(seed); got != want {
			t.Fatalf("seed %d: stream %d != Mix64 %d", seed, got, want)
		}
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a, b := NewXoshiro256(42), NewXoshiro256(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed streams diverged")
		}
	}
	c := NewXoshiro256(43)
	same := 0
	a = NewXoshiro256(42)
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/1000 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	x := NewXoshiro256(7)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %g far from 0.5", mean)
	}
}

func TestUint64nBounds(t *testing.T) {
	x := NewXoshiro256(9)
	for _, n := range []uint64{1, 2, 3, 10, 1 << 32, 1<<63 + 3} {
		for i := 0; i < 1000; i++ {
			if v := x.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d", n, v)
			}
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	x := NewXoshiro256(11)
	const buckets = 8
	var counts [buckets]int
	const n = 80000
	for i := 0; i < n; i++ {
		counts[x.Uint64n(buckets)]++
	}
	for b, c := range counts {
		expected := float64(n) / buckets
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Fatalf("bucket %d count %d deviates from %g", b, c, expected)
		}
	}
}

func TestJumpProducesDisjointStreams(t *testing.T) {
	base := NewXoshiro256(5)
	a := base.Substream(0)
	b := base.Substream(1)
	seen := make(map[uint64]bool, 10000)
	for i := 0; i < 10000; i++ {
		seen[a.Next()] = true
	}
	collisions := 0
	for i := 0; i < 10000; i++ {
		if seen[b.Next()] {
			collisions++
		}
	}
	if collisions > 1 {
		t.Fatalf("substreams collide %d times in 10k draws", collisions)
	}
}

func TestSubstreamDoesNotMutateReceiver(t *testing.T) {
	a := NewXoshiro256(5)
	before := *a
	_ = a.Substream(3)
	if *a != before {
		t.Fatal("Substream mutated receiver")
	}
}

func TestPropertyMix64Injective(t *testing.T) {
	// Mix64 is a bijection on 64-bit values; distinct inputs in a small
	// random sample must map to distinct outputs.
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return Mix64(a) != Mix64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkXoshiroNext(b *testing.B) {
	x := NewXoshiro256(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Next()
	}
	_ = sink
}

func BenchmarkMix64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Mix64(uint64(i))
	}
	_ = sink
}
