// Package sssp holds the Graph 500 SSSP conventions shared by the engine and
// its tests: the deterministic edge-weight function, the run-result shape, and
// sequential references (Dijkstra, optimality validation). The distributed
// kernel itself runs on the core engine's 1.5D fast path — see
// internal/core's RunSSSP — which this package's references check.
//
// Weights follow the Graph 500 SSSP specification: uniform in [0,1) drawn
// deterministically per edge.
package sssp

import (
	"time"

	"repro/internal/xrand"
)

// WeightOf returns the deterministic weight of the undirected edge {u,v}
// under the given seed: uniform in [0,1), symmetric in its endpoints.
func WeightOf(u, v int64, seed uint64) float64 {
	if u > v {
		u, v = v, u
	}
	h := xrand.Mix64(uint64(u)*0x9e3779b97f4a7c15 ^ xrand.Mix64(uint64(v)+seed))
	return float64(h>>11) / (1 << 53)
}

// Result is one SSSP run's output.
type Result struct {
	Root   int64
	Dist   []float64 // +Inf for unreachable
	Parent []int64   // -1 for unreachable; root's parent is itself
	Rounds int
	Time   time.Duration
	// RelaxationsPerformed counts distance-improving updates.
	Relaxations int64
}
