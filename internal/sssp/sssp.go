// Package sssp implements the Graph 500 benchmark's second kernel —
// single-source shortest path — on the same 3-level degree-aware 1.5D
// partitioning as the BFS engine. The paper positions the partitioning as
// algorithm-neutral (Section 8: "a graph partitioning method neutral to the
// graph algorithm") and cites SSSP as a direct beneficiary of the push/pull
// selection behind sub-iteration direction optimization; this package
// demonstrates both claims with a distributed Bellman-Ford/delta-relaxation
// hybrid over the six components.
//
// Weights follow the Graph 500 SSSP specification: uniform in [0,1) drawn
// deterministically per edge.
package sssp

import (
	"fmt"
	"math"
	"time"

	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/rmat"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// WeightOf returns the deterministic weight of the undirected edge {u,v}
// under the given seed: uniform in [0,1), symmetric in its endpoints.
func WeightOf(u, v int64, seed uint64) float64 {
	if u > v {
		u, v = v, u
	}
	h := xrand.Mix64(uint64(u)*0x9e3779b97f4a7c15 ^ xrand.Mix64(uint64(v)+seed))
	return float64(h>>11) / (1 << 53)
}

// Options configures a Runner.
type Options struct {
	Mesh       topology.Mesh
	Ranks      int
	Thresholds partition.Thresholds
	WeightSeed uint64
	// Delta is the bucket width of delta-stepping rounds; 0 picks 1/16
	// (mean weight 0.5, mean degree 32 ⇒ light edges dominate).
	Delta float64
	// MaxRounds bounds the outer loop. 0 means 4096.
	MaxRounds int
	// PullThreshold switches a round to pull-style relaxation when the
	// dirty fraction exceeds it — the push-pull selection the paper's
	// Discussion says carries over to SSSP. 0 means 0.10; negative
	// disables pull.
	PullThreshold float64
}

func (o Options) withDefaults() (Options, error) {
	if o.Mesh.Rows == 0 && o.Mesh.Cols == 0 {
		if o.Ranks <= 0 {
			return o, fmt.Errorf("sssp: Options needs Mesh or Ranks")
		}
		o.Mesh = topology.SquarestMesh(o.Ranks)
	}
	o.Ranks = o.Mesh.Size()
	if o.Delta == 0 {
		o.Delta = 1.0 / 16
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 4096
	}
	if o.PullThreshold == 0 {
		o.PullThreshold = 0.10
	}
	return o, nil
}

// Runner executes SSSP over a partitioned weighted graph.
type Runner struct {
	Part  *partition.Partitioned
	World *comm.World
	Opt   Options
}

// New partitions the graph for SSSP. Thresholds default to H=64-ish via the
// BFS engine's convention when zero; here a fixed conservative default keeps
// the hub directory small.
func New(n int64, edges []rmat.Edge, opt Options) (*Runner, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	th := opt.Thresholds
	if th == (partition.Thresholds{}) {
		scale := 0
		for int64(1)<<uint(scale) < n {
			scale++
		}
		e := int64(1) << uint(scale/2+2)
		h := e / 16
		if h < 2 {
			h = 2
		}
		th = partition.Thresholds{E: e, H: h}
		opt.Thresholds = th
	}
	part, err := partition.Build(n, edges, opt.Mesh, th, 0)
	if err != nil {
		return nil, err
	}
	world, err := comm.NewWorld(opt.Ranks, opt.Mesh, topology.NewSunway(opt.Ranks))
	if err != nil {
		return nil, err
	}
	return &Runner{Part: part, World: world, Opt: opt}, nil
}

// Result is one SSSP run's output.
type Result struct {
	Root   int64
	Dist   []float64 // +Inf for unreachable
	Parent []int64   // -1 for unreachable; root's parent is itself
	Rounds int
	Time   time.Duration
	// RelaxationsPerformed counts distance-improving updates.
	Relaxations int64
}

// distMsg carries a tentative distance to a vertex's owner.
type distMsg struct {
	LIdx   int32
	Dist   float64
	Parent int64
}

// hubDistMsg carries a tentative distance to a hub delegate.
type hubDistMsg struct {
	Hub    int32
	Dist   float64
	Parent int64
}

// Run computes shortest paths from root. The algorithm is synchronous
// rounds of relaxation: each round relaxes every vertex whose tentative
// distance improved since the last round (a frontier), with hub distances
// delegated exactly like BFS hub activations — a column+row min-reduce per
// round — and L distances owner-local. Delta-stepping's bucket discipline is
// applied to the frontier: only vertices within the current bucket relax,
// which bounds wasted relaxations on heavy tails.
func (r *Runner) Run(root int64) (*Result, error) {
	n := r.Part.Layout.N
	if root < 0 || root >= n {
		return nil, fmt.Errorf("sssp: root %d out of range", root)
	}
	res := &Result{Root: root}
	res.Dist = make([]float64, n)
	res.Parent = make([]int64, n)
	for i := range res.Dist {
		res.Dist[i] = math.Inf(1)
		res.Parent[i] = -1
	}
	states := make([]*rankState, r.Opt.Ranks)
	start := time.Now()
	var rounds int64
	r.World.Run(func(rk *comm.Rank) {
		st := newRankState(r, rk)
		states[rk.ID] = st
		rd := st.run(root)
		if rk.ID == 0 {
			rounds = int64(rd)
		}
		st.writeResult(res)
	})
	res.Time = time.Since(start)
	res.Rounds = int(rounds)
	for _, st := range states {
		res.Relaxations += st.relaxations
	}
	return res, nil
}

// rankState is the per-rank SSSP working set: delegated hub distances
// (replicated, min-reduced) and owner-local L distances.
type rankState struct {
	r  *Runner
	rk *comm.Rank
	rg *partition.RankGraph

	k int

	hubDist   []float64
	hubParent []int64
	hubDirty  []bool // improved since last sync/relaxation

	lDist   []float64
	lParent []int64
	lDirty  []bool

	relaxations int64
}

func newRankState(r *Runner, rk *comm.Rank) *rankState {
	per := int(r.Part.Layout.PerRank)
	k := r.Part.Hubs.K()
	st := &rankState{
		r: r, rk: rk, rg: r.Part.Ranks[rk.ID], k: k,
		hubDist:   make([]float64, k),
		hubParent: make([]int64, k),
		hubDirty:  make([]bool, k),
		lDist:     make([]float64, per),
		lParent:   make([]int64, per),
		lDirty:    make([]bool, per),
	}
	for i := range st.hubDist {
		st.hubDist[i] = math.Inf(1)
		st.hubParent[i] = -1
	}
	for i := range st.lDist {
		st.lDist[i] = math.Inf(1)
		st.lParent[i] = -1
	}
	return st
}

func (st *rankState) run(root int64) int {
	layout := st.r.Part.Layout
	hubs := st.r.Part.Hubs
	if h, ok := hubs.HubOf(root); ok {
		st.hubDist[h] = 0
		st.hubParent[h] = root
		st.hubDirty[h] = true
	} else if layout.Owner(root) == st.rk.ID {
		li := layout.LocalIdx(root)
		st.lDist[li] = 0
		st.lParent[li] = root
		st.lDirty[li] = true
	}
	delta := st.r.Opt.Delta
	round := 0
	bucket := 0
	n := st.r.Part.Layout.N
	for ; round < st.r.Opt.MaxRounds; round++ {
		// Push-pull selection (paper Section 8: the direction choice carries
		// over to SSSP): when the dirty fraction is large, one dense pull
		// sweep — every vertex re-minimizes over all neighbors against
		// gathered distances — beats per-edge messaging.
		var improved int64
		dirty := comm.Must(comm.AllreduceSumInt64(st.rk.World, st.dirtyCount()))
		pt := st.r.Opt.PullThreshold
		if pt > 0 && float64(dirty) > pt*float64(n) {
			improved = st.relaxRoundPull()
		} else {
			limit := float64(bucket+1) * delta
			improved = st.relaxRound(limit)
		}
		// Advance the bucket once no vertex within it improves anywhere.
		total := comm.Must(comm.AllreduceSumInt64(st.rk.World, improved))
		if total == 0 {
			// Find the lowest bucket with pending work anywhere: a global
			// min-reduce, expressed as max over negated values.
			neg := []int64{-int64(st.nextPending())}
			comm.Must0(comm.AllreduceMaxInt64(st.rk.World, neg))
			minNext := -neg[0]
			if minNext == int64(^uint64(0)>>1) || minNext < 0 {
				break // nothing pending anywhere
			}
			bucket = int(minNext)
		}
	}
	// One final full relaxation sweep at infinity bound to settle any
	// leftover dirty state (defensive; buckets should have drained).
	st.relaxRound(math.Inf(1))
	return round
}

// nextPending returns the lowest bucket index containing a dirty vertex, or
// MaxInt if none.
func (st *rankState) nextPending() int {
	delta := st.r.Opt.Delta
	best := int(^uint(0) >> 1)
	for h := 0; h < st.k; h++ {
		if st.hubDirty[h] {
			b := int(st.hubDist[h] / delta)
			if b < best {
				best = b
			}
		}
	}
	for li := range st.lDist {
		if st.lDirty[li] {
			b := int(st.lDist[li] / delta)
			if b < best {
				best = b
			}
		}
	}
	return best
}

// relaxRound relaxes every dirty vertex with distance < limit across all six
// components and returns the number of local improvements applied.
func (st *rankState) relaxRound(limit float64) int64 {
	layout := st.r.Part.Layout
	hubs := st.r.Part.Hubs
	mesh := st.r.Opt.Mesh
	seed := st.r.Opt.WeightSeed
	var improved int64

	// Collect the round's relaxing sets, then clear their dirty flags (new
	// improvements re-mark them for the next round).
	relaxHub := make([]int32, 0)
	for h := 0; h < st.k; h++ {
		if st.hubDirty[h] && st.hubDist[h] < limit {
			relaxHub = append(relaxHub, int32(h))
			st.hubDirty[h] = false
		}
	}
	relaxL := make([]int32, 0)
	for li := range st.lDist {
		if st.lDirty[li] && st.lDist[li] < limit {
			relaxL = append(relaxL, int32(li))
			st.lDirty[li] = false
		}
	}
	inHubSet := make(map[int32]bool, len(relaxHub))
	for _, h := range relaxHub {
		inHubSet[h] = true
	}

	relaxLocalHub := func(hub int32, dist float64, parentOrig int64) {
		if dist < st.hubDist[hub] {
			st.hubDist[hub] = dist
			st.hubParent[hub] = parentOrig
			st.hubDirty[hub] = true
			improved++
			st.relaxations++
		}
	}
	relaxLocalL := func(li int32, dist float64, parentOrig int64) {
		if dist < st.lDist[li] {
			st.lDist[li] = dist
			st.lParent[li] = parentOrig
			st.lDirty[li] = true
			improved++
			st.relaxations++
		}
	}

	// EH2EH: relax hub->hub edges stored in my 2D block whose source is
	// relaxing. Every rank relaxes its block; the min-reduce reconciles.
	push := &st.rg.EHPush
	for i, src := range push.IDs {
		if !inHubSet[src] {
			continue
		}
		du := st.hubDist[src]
		uOrig := hubs.Orig[src]
		for _, dst := range push.Adj[push.Ptr[i]:push.Ptr[i+1]] {
			w := WeightOf(uOrig, hubs.Orig[dst], seed)
			relaxLocalHub(dst, du+w, uOrig)
		}
	}
	// E2L: E hubs relax their local L neighbors (local; E delegated
	// everywhere).
	etol := &st.rg.EToL
	for i, hub := range etol.IDs {
		if !inHubSet[hub] {
			continue
		}
		du := st.hubDist[hub]
		uOrig := hubs.Orig[hub]
		for _, li := range etol.Adj[etol.Ptr[i]:etol.Ptr[i+1]] {
			w := WeightOf(uOrig, layout.GlobalOf(st.rk.ID, li), seed)
			relaxLocalL(li, du+w, uOrig)
		}
	}
	// H2L: relax along the row with messages, as in BFS.
	htol := &st.rg.HToL
	sendL := make([][]distMsg, mesh.Cols)
	for i, hub := range htol.IDs {
		if !inHubSet[hub] {
			continue
		}
		du := st.hubDist[hub]
		uOrig := hubs.Orig[hub]
		for _, rem := range htol.Adj[htol.Ptr[i]:htol.Ptr[i+1]] {
			owner := mesh.RankAt(st.rk.Row, int(rem.Col))
			w := WeightOf(uOrig, layout.GlobalOf(owner, rem.LIdx), seed)
			sendL[rem.Col] = append(sendL[rem.Col], distMsg{LIdx: rem.LIdx, Dist: du + w, Parent: uOrig})
		}
	}
	// L-sourced relaxations.
	ltoe := &st.rg.LToE
	ltoh := &st.rg.LToH
	l2l := &st.rg.L2L
	sendHub := make([][]hubDistMsg, mesh.Cols)
	sendLL := make([][]distMsg, layout.P)
	for _, li := range relaxL {
		du := st.lDist[li]
		uOrig := layout.GlobalOf(st.rk.ID, li)
		// L2E: E delegates are local.
		for _, hub := range ltoe.Adj[ltoe.Ptr[li]:ltoe.Ptr[li+1]] {
			w := WeightOf(uOrig, hubs.Orig[hub], seed)
			relaxLocalHub(hub, du+w, uOrig)
		}
		// L2H: message the row delegate.
		for _, hub := range ltoh.Adj[ltoh.Ptr[li]:ltoh.Ptr[li+1]] {
			w := WeightOf(uOrig, hubs.Orig[hub], seed)
			col := hubs.ColBlockOf(hub, mesh)
			sendHub[col] = append(sendHub[col], hubDistMsg{Hub: hub, Dist: du + w, Parent: uOrig})
		}
		// L2L: message the owner.
		for _, dst := range l2l.Adj[l2l.Ptr[li]:l2l.Ptr[li+1]] {
			w := WeightOf(uOrig, dst, seed)
			sendLL[layout.Owner(dst)] = append(sendLL[layout.Owner(dst)],
				distMsg{LIdx: layout.LocalIdx(dst), Dist: du + w, Parent: uOrig})
		}
	}

	// Exchange and apply. The collective sequence is identical on every rank.
	for _, part := range comm.Must(comm.Alltoallv(st.rk.RowC, sendL)) {
		for _, m := range part {
			relaxLocalL(m.LIdx, m.Dist, m.Parent)
		}
	}
	for _, part := range comm.Must(comm.Alltoallv(st.rk.RowC, sendHub)) {
		for _, m := range part {
			relaxLocalHub(m.Hub, m.Dist, m.Parent)
		}
	}
	for _, part := range comm.Must(comm.Alltoallv(st.rk.World, sendLL)) {
		for _, m := range part {
			relaxLocalL(m.LIdx, m.Dist, m.Parent)
		}
	}

	// Delegated hub distance reconciliation: a column+row min-reduce, the
	// SSSP analogue of the BFS hub activation sync. Distances and parents
	// travel together; ties resolve toward the larger parent for
	// determinism.
	st.syncHubDists()
	return improved
}

// syncHubDists min-reduces the replicated hub distance array over column
// then row, keeping parent assignments consistent with the winning distance.
func (st *rankState) syncHubDists() {
	if st.k == 0 {
		return
	}
	// Pack (dist, parent) so the reduction is atomic per hub: compare by
	// dist, tie-break by parent. Encode into two int64 lanes and reduce with
	// max over the negated ordering... simpler and explicit: gather both
	// arrays and reduce locally.
	reduce := func(c *comm.Comm) {
		distParts := comm.Must(comm.Allgatherv(c, st.hubDist))
		parentParts := comm.Must(comm.Allgatherv(c, st.hubParent))
		for j := range distParts {
			dp, pp := distParts[j], parentParts[j]
			for h := 0; h < st.k; h++ {
				if dp[h] < st.hubDist[h] || (dp[h] == st.hubDist[h] && pp[h] > st.hubParent[h]) {
					if dp[h] < st.hubDist[h] {
						st.hubDirty[h] = true
					}
					st.hubDist[h] = dp[h]
					st.hubParent[h] = pp[h]
				}
			}
		}
	}
	reduce(st.rk.ColC)
	reduce(st.rk.RowC)
}

// writeResult assembles this rank's owned share of the global arrays.
func (st *rankState) writeResult(res *Result) {
	layout := st.r.Part.Layout
	for li := 0; li < st.rg.LocalN; li++ {
		v := layout.GlobalOf(st.rk.ID, int32(li))
		if !math.IsInf(st.lDist[li], 1) {
			res.Dist[v] = st.lDist[li]
			res.Parent[v] = st.lParent[li]
		}
	}
	for h, orig := range st.r.Part.Hubs.Orig {
		if layout.Owner(orig) == st.rk.ID && !math.IsInf(st.hubDist[h], 1) {
			res.Dist[orig] = st.hubDist[h]
			res.Parent[orig] = st.hubParent[h]
		}
	}
}

// dirtyCount returns the number of locally dirty vertices.
func (st *rankState) dirtyCount() int64 {
	var c int64
	for h := 0; h < st.k; h++ {
		if st.hubDirty[h] {
			c++
		}
	}
	for li := range st.lDirty {
		if st.lDirty[li] {
			c++
		}
	}
	return c
}

// relaxRoundPull is one dense Bellman-Ford sweep: every vertex re-minimizes
// over all its neighbors against a gathered global distance view. No
// per-edge messages — one allgather of the owner-local distance arrays (hub
// distances are already replicated), then purely local scans. Correct for
// any dirty state because relaxation is monotone; used when the frontier is
// dense enough that gathering beats messaging.
func (st *rankState) relaxRoundPull() int64 {
	layout := st.r.Part.Layout
	hubs := st.r.Part.Hubs
	seed := st.r.Opt.WeightSeed
	per := int(layout.PerRank)
	var improved int64

	// Gather every rank's L distances into a world view indexed by original
	// vertex ID (the padded block layout makes offsets line up).
	parts := comm.Must(comm.Allgatherv(st.rk.World, st.lDist))
	worldDist := make([]float64, per*layout.P)
	for m, p := range parts {
		copy(worldDist[m*per:(m+1)*per], p)
	}
	// All vertices are rescanned; dirty state resets to just the improved.
	for h := range st.hubDirty {
		st.hubDirty[h] = false
	}
	for li := range st.lDirty {
		st.lDirty[li] = false
	}

	improveHub := func(h int32, d float64, parent int64) {
		if d < st.hubDist[h] {
			st.hubDist[h] = d
			st.hubParent[h] = parent
			st.hubDirty[h] = true
			improved++
			st.relaxations++
		}
	}
	// Hubs pull from their incoming column hubs (EHPull) and from owned L
	// vertices (the L2E/L2H structures at this rank).
	pull := &st.rg.EHPull
	for i, dst := range pull.IDs {
		dOrig := hubs.Orig[dst]
		for _, src := range pull.Adj[pull.Ptr[i]:pull.Ptr[i+1]] {
			if d := st.hubDist[src] + WeightOf(hubs.Orig[src], dOrig, seed); d < st.hubDist[dst] {
				improveHub(dst, d, hubs.Orig[src])
			}
		}
	}
	// L vertices pull from hubs (LToE, LToH) and L neighbors (L2L).
	ltoe, ltoh, l2l := &st.rg.LToE, &st.rg.LToH, &st.rg.L2L
	for li := 0; li < st.rg.LocalN; li++ {
		vOrig := layout.GlobalOf(st.rk.ID, int32(li))
		best := st.lDist[li]
		bestParent := int64(-1)
		for _, hub := range ltoe.Adj[ltoe.Ptr[li]:ltoe.Ptr[li+1]] {
			u := hubs.Orig[hub]
			if d := st.hubDist[hub] + WeightOf(u, vOrig, seed); d < best {
				best, bestParent = d, u
			}
		}
		for _, hub := range ltoh.Adj[ltoh.Ptr[li]:ltoh.Ptr[li+1]] {
			u := hubs.Orig[hub]
			if d := st.hubDist[hub] + WeightOf(u, vOrig, seed); d < best {
				best, bestParent = d, u
			}
		}
		for _, u := range l2l.Adj[l2l.Ptr[li]:l2l.Ptr[li+1]] {
			if d := worldDist[u] + WeightOf(u, vOrig, seed); d < best {
				best, bestParent = d, u
			}
		}
		if bestParent >= 0 {
			st.lDist[li] = best
			st.lParent[li] = bestParent
			st.lDirty[li] = true
			improved++
			st.relaxations++
		}
		// And the reverse: owned L vertices relax their hub neighbors
		// locally (E is delegated here; H reconciles in the min-reduce).
		if !math.IsInf(st.lDist[li], 1) {
			dl := st.lDist[li]
			for _, hub := range ltoe.Adj[ltoe.Ptr[li]:ltoe.Ptr[li+1]] {
				improveHub(hub, dl+WeightOf(vOrig, hubs.Orig[hub], seed), vOrig)
			}
			for _, hub := range ltoh.Adj[ltoh.Ptr[li]:ltoh.Ptr[li+1]] {
				improveHub(hub, dl+WeightOf(vOrig, hubs.Orig[hub], seed), vOrig)
			}
		}
	}
	st.syncHubDists()
	return improved
}
