package sssp

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/partition"
	"repro/internal/rmat"
	"repro/internal/topology"
)

func TestWeightProperties(t *testing.T) {
	// Symmetric, deterministic, in [0,1), seed-sensitive.
	for u := int64(0); u < 50; u++ {
		for v := int64(0); v < 50; v++ {
			w1 := WeightOf(u, v, 9)
			if w1 < 0 || w1 >= 1 {
				t.Fatalf("weight (%d,%d) = %g out of range", u, v, w1)
			}
			if w1 != WeightOf(v, u, 9) {
				t.Fatalf("weight not symmetric at (%d,%d)", u, v)
			}
			if w1 != WeightOf(u, v, 9) {
				t.Fatal("weight not deterministic")
			}
		}
	}
	diff := 0
	for u := int64(0); u < 100; u++ {
		if WeightOf(u, u+1, 1) != WeightOf(u, u+1, 2) {
			diff++
		}
	}
	if diff < 90 {
		t.Fatalf("weights barely depend on seed: %d/100 differ", diff)
	}
}

func checkAgainstDijkstra(t *testing.T, scale int, seed uint64, opt Options, roots []int64) {
	t.Helper()
	cfg := rmat.Config{Scale: scale, Seed: seed}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	r, err := New(n, edges, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, root := range roots {
		res, err := r.Run(root)
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		if err := ValidateResult(n, edges, opt.WeightSeed, res); err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		refDist, _ := Dijkstra(n, edges, root, opt.WeightSeed)
		for v := int64(0); v < n; v++ {
			if math.IsInf(refDist[v], 1) != math.IsInf(res.Dist[v], 1) {
				t.Fatalf("root %d: reachability of %d differs", root, v)
			}
			if !math.IsInf(refDist[v], 1) && math.Abs(refDist[v]-res.Dist[v]) > 1e-9 {
				t.Fatalf("root %d: dist[%d] = %g, reference %g", root, v, res.Dist[v], refDist[v])
			}
		}
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	checkAgainstDijkstra(t, 9, 31, Options{Ranks: 4, WeightSeed: 5}, []int64{0, 3, 100})
}

func TestSSSPMeshShapes(t *testing.T) {
	for _, mesh := range []topology.Mesh{{Rows: 1, Cols: 1}, {Rows: 1, Cols: 4}, {Rows: 2, Cols: 4}} {
		t.Run(fmt.Sprintf("%dx%d", mesh.Rows, mesh.Cols), func(t *testing.T) {
			checkAgainstDijkstra(t, 8, 32, Options{Mesh: mesh, WeightSeed: 6}, []int64{1})
		})
	}
}

func TestSSSPThresholdExtremes(t *testing.T) {
	for i, th := range []partition.Thresholds{
		{E: 64, H: 64},
		{E: 1 << 30, H: 1},
		{E: 1 << 30, H: 1 << 29},
	} {
		t.Run(fmt.Sprintf("case%d", i), func(t *testing.T) {
			checkAgainstDijkstra(t, 8, 33, Options{Ranks: 4, Thresholds: th, WeightSeed: 7}, []int64{2})
		})
	}
}

func TestSSSPDeltaVariants(t *testing.T) {
	for _, delta := range []float64{1.0 / 4, 1.0 / 64, 2.0} {
		checkAgainstDijkstra(t, 8, 34, Options{Ranks: 4, WeightSeed: 8, Delta: delta}, []int64{0})
	}
}

func TestSSSPIsolatedRoot(t *testing.T) {
	n := int64(256)
	edges := []rmat.Edge{{U: 0, V: 1}}
	r, err := New(n, edges, Options{Ranks: 4, Thresholds: partition.Thresholds{E: 16, H: 4}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[100] != 0 {
		t.Fatal("root dist wrong")
	}
	reached := 0
	for _, p := range res.Parent {
		if p >= 0 {
			reached++
		}
	}
	if reached != 1 {
		t.Fatalf("reached %d from isolated root", reached)
	}
}

func TestSSSPRejectsBadRoot(t *testing.T) {
	cfg := rmat.Config{Scale: 6, Seed: 1}
	r, err := New(cfg.NumVertices(), rmat.Generate(cfg), Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(-1); err == nil {
		t.Fatal("negative root accepted")
	}
}

func TestValidateResultCatchesCorruption(t *testing.T) {
	cfg := rmat.Config{Scale: 7, Seed: 2}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	r, err := New(n, edges, Options{Ranks: 4, WeightSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// Inflate one reachable distance: the relaxation check must fire.
	for v := int64(0); v < n; v++ {
		if v != 1 && res.Parent[v] >= 0 {
			res.Dist[v] += 0.5
			break
		}
	}
	if err := ValidateResult(n, edges, 3, res); err == nil {
		t.Fatal("corrupted distances accepted")
	}
}

func TestRelaxationCountPositive(t *testing.T) {
	cfg := rmat.Config{Scale: 8, Seed: 3}
	r, err := New(cfg.NumVertices(), rmat.Generate(cfg), Options{Ranks: 4, WeightSeed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relaxations == 0 || res.Rounds == 0 {
		t.Fatalf("relaxations=%d rounds=%d", res.Relaxations, res.Rounds)
	}
}

func BenchmarkSSSPScale12(b *testing.B) {
	cfg := rmat.Config{Scale: 12, Seed: 4}
	r, err := New(cfg.NumVertices(), rmat.Generate(cfg), Options{Ranks: 4, WeightSeed: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSSSPPullDirectionMatchesDijkstra(t *testing.T) {
	// Force pull rounds aggressively and verify exact distances.
	checkAgainstDijkstra(t, 9, 35, Options{Ranks: 4, WeightSeed: 9, PullThreshold: 0.01}, []int64{0, 9})
}

func TestSSSPPushOnlyStillWorks(t *testing.T) {
	checkAgainstDijkstra(t, 9, 36, Options{Ranks: 4, WeightSeed: 10, PullThreshold: -1}, []int64{0})
}

func TestSSSPPullReducesRounds(t *testing.T) {
	// Dense pull sweeps settle dense phases in fewer rounds than bucketed
	// pushing on a small-world graph.
	cfg := rmat.Config{Scale: 11, Seed: 37}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	push, err := New(n, edges, Options{Ranks: 4, WeightSeed: 11, PullThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	pull, err := New(n, edges, Options{Ranks: 4, WeightSeed: 11, PullThreshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	root := int64(-1)
	for v, d := range push.Part.Degrees {
		if d > 16 {
			root = int64(v)
			break
		}
	}
	if root < 0 {
		t.Fatal("no connected root")
	}
	rPush, err := push.Run(root)
	if err != nil {
		t.Fatal(err)
	}
	rPull, err := pull.Run(root)
	if err != nil {
		t.Fatal(err)
	}
	if rPull.Rounds >= rPush.Rounds {
		t.Fatalf("pull rounds %d not below push rounds %d", rPull.Rounds, rPush.Rounds)
	}
	// Distances identical either way.
	for v := int64(0); v < n; v++ {
		a, b := rPush.Dist[v], rPull.Dist[v]
		if math.IsInf(a, 1) != math.IsInf(b, 1) || (!math.IsInf(a, 1) && math.Abs(a-b) > 1e-9) {
			t.Fatalf("dist[%d] differs: %g vs %g", v, a, b)
		}
	}
}
