package sssp

import (
	"math"
	"testing"

	"repro/internal/rmat"
)

func TestWeightProperties(t *testing.T) {
	// Symmetric, deterministic, in [0,1), seed-sensitive.
	for u := int64(0); u < 50; u++ {
		for v := int64(0); v < 50; v++ {
			w1 := WeightOf(u, v, 9)
			if w1 < 0 || w1 >= 1 {
				t.Fatalf("weight (%d,%d) = %g out of range", u, v, w1)
			}
			if w1 != WeightOf(v, u, 9) {
				t.Fatalf("weight not symmetric at (%d,%d)", u, v)
			}
			if w1 != WeightOf(u, v, 9) {
				t.Fatal("weight not deterministic")
			}
		}
	}
	diff := 0
	for u := int64(0); u < 100; u++ {
		if WeightOf(u, u+1, 1) != WeightOf(u, u+1, 2) {
			diff++
		}
	}
	if diff < 90 {
		t.Fatalf("weights barely depend on seed: %d/100 differ", diff)
	}
}

// dijkstraResult wraps the sequential reference's output in the Result shape
// so ValidateResult can check it (and, in the corruption tests, reject
// perturbations of it).
func dijkstraResult(n int64, edges []rmat.Edge, root int64, seed uint64) *Result {
	dist, parent := Dijkstra(n, edges, root, seed)
	return &Result{Root: root, Dist: dist, Parent: parent}
}

func TestDijkstraPathExact(t *testing.T) {
	// On a path graph distances are prefix sums of the edge weights.
	const n = int64(64)
	edges := make([]rmat.Edge, 0, n-1)
	for v := int64(0); v+1 < n; v++ {
		edges = append(edges, rmat.Edge{U: v, V: v + 1})
	}
	const seed = 5
	res := dijkstraResult(n, edges, 0, seed)
	want := 0.0
	for v := int64(0); v < n; v++ {
		if math.Abs(res.Dist[v]-want) > 1e-12 {
			t.Fatalf("dist[%d] = %g, want %g", v, res.Dist[v], want)
		}
		if v > 0 && res.Parent[v] != v-1 {
			t.Fatalf("parent[%d] = %d, want %d", v, res.Parent[v], v-1)
		}
		if v+1 < n {
			want += WeightOf(v, v+1, seed)
		}
	}
	if res.Parent[0] != 0 {
		t.Fatalf("root parent = %d, want itself", res.Parent[0])
	}
}

func TestValidateResultAcceptsReference(t *testing.T) {
	cfg := rmat.Config{Scale: 8, Seed: 2}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	for _, root := range []int64{0, 1, 100} {
		res := dijkstraResult(n, edges, root, 3)
		if err := ValidateResult(n, edges, 3, res); err != nil {
			t.Fatalf("root %d: reference rejected: %v", root, err)
		}
	}
}

func TestValidateResultCatchesCorruption(t *testing.T) {
	cfg := rmat.Config{Scale: 7, Seed: 2}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	const seed = 3

	// Inflate one reachable distance: the relaxation check must fire.
	res := dijkstraResult(n, edges, 1, seed)
	for v := int64(0); v < n; v++ {
		if v != 1 && res.Parent[v] >= 0 {
			res.Dist[v] += 0.5
			break
		}
	}
	if err := ValidateResult(n, edges, seed, res); err == nil {
		t.Fatal("corrupted distances accepted")
	}

	// Point a parent at a non-neighbor: the edge-existence check must fire.
	res = dijkstraResult(n, edges, 1, seed)
	for v := int64(0); v < n; v++ {
		if v != 1 && res.Parent[v] >= 0 {
			res.Parent[v] = v // self-parenting non-root is never an input edge
			break
		}
	}
	if err := ValidateResult(n, edges, seed, res); err == nil {
		t.Fatal("bogus parent edge accepted")
	}

	// Break the root invariant.
	res = dijkstraResult(n, edges, 1, seed)
	res.Dist[1] = 0.25
	if err := ValidateResult(n, edges, seed, res); err == nil {
		t.Fatal("nonzero root distance accepted")
	}

	// A finite distance with no parent is inconsistent.
	res = dijkstraResult(n, edges, 1, seed)
	for v := int64(0); v < n; v++ {
		if v != 1 && res.Parent[v] >= 0 {
			res.Parent[v] = -1
			break
		}
	}
	if err := ValidateResult(n, edges, seed, res); err == nil {
		t.Fatal("finite distance without parent accepted")
	}
}
