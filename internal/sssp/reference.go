package sssp

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/rmat"
)

// Dijkstra is the sequential reference the engine's distributed SSSP is
// validated against: a binary-heap shortest path over the symmetrized edge
// list with the same deterministic weights.
func Dijkstra(n int64, edges []rmat.Edge, root int64, seed uint64) ([]float64, []int64) {
	// Build adjacency.
	type arc struct {
		to int64
		w  float64
	}
	adj := make([][]arc, n)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		w := WeightOf(e.U, e.V, seed)
		adj[e.U] = append(adj[e.U], arc{e.V, w})
		adj[e.V] = append(adj[e.V], arc{e.U, w})
	}
	dist := make([]float64, n)
	parent := make([]int64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[root] = 0
	parent[root] = root
	pq := &distHeap{{v: root, d: 0}}
	for pq.Len() > 0 {
		top := heap.Pop(pq).(distEntry)
		if top.d > dist[top.v] {
			continue
		}
		for _, a := range adj[top.v] {
			if nd := top.d + a.w; nd < dist[a.to] {
				dist[a.to] = nd
				parent[a.to] = top.v
				heap.Push(pq, distEntry{v: a.to, d: nd})
			}
		}
	}
	return dist, parent
}

type distEntry struct {
	v int64
	d float64
}

type distHeap []distEntry

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// ValidateResult checks a distributed result against shortest-path
// optimality conditions without a reference run: dist[root]=0; every
// reachable non-root v satisfies dist[v] = dist[parent[v]] + w(parent,v) and
// (parent, v) is a real edge; and no input edge can relax further.
func ValidateResult(n int64, edges []rmat.Edge, seed uint64, res *Result) error {
	if res.Dist[res.Root] != 0 || res.Parent[res.Root] != res.Root {
		return errf("root state wrong: dist=%g parent=%d", res.Dist[res.Root], res.Parent[res.Root])
	}
	type pair struct{ a, b int64 }
	present := make(map[pair]bool, len(edges))
	for _, e := range edges {
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		present[pair{a, b}] = true
	}
	const eps = 1e-9
	for v := int64(0); v < n; v++ {
		p := res.Parent[v]
		if p < 0 {
			if !math.IsInf(res.Dist[v], 1) {
				return errf("vertex %d has dist %g but no parent", v, res.Dist[v])
			}
			continue
		}
		if v == res.Root {
			continue
		}
		a, b := p, v
		if a > b {
			a, b = b, a
		}
		if !present[pair{a, b}] {
			return errf("parent edge (%d,%d) not in input", p, v)
		}
		want := res.Dist[p] + WeightOf(p, v, seed)
		if math.Abs(res.Dist[v]-want) > eps {
			return errf("dist[%d]=%g but parent %d gives %g", v, res.Dist[v], p, want)
		}
	}
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		w := WeightOf(e.U, e.V, seed)
		if res.Dist[e.U]+w < res.Dist[e.V]-eps || res.Dist[e.V]+w < res.Dist[e.U]-eps {
			return errf("edge (%d,%d) can still relax: %g, %g, w=%g", e.U, e.V, res.Dist[e.U], res.Dist[e.V], w)
		}
	}
	return nil
}

func errf(format string, args ...any) error {
	return fmt.Errorf("sssp: "+format, args...)
}
