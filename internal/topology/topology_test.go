package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewSunwayConstants(t *testing.T) {
	m := NewSunway(103912)
	if m.SupernodeSize != 256 {
		t.Fatalf("supernode size %d", m.SupernodeSize)
	}
	if m.Oversubscription != 8 {
		t.Fatalf("oversubscription %g", m.Oversubscription)
	}
	if got := m.Supernodes(); got != (103912+255)/256 {
		t.Fatalf("supernodes = %d", got)
	}
}

func TestSupernodeMembership(t *testing.T) {
	m := NewSunway(1024)
	if !m.SameSupernode(0, 255) {
		t.Fatal("0 and 255 should share a supernode")
	}
	if m.SameSupernode(255, 256) {
		t.Fatal("255 and 256 should not share a supernode")
	}
	if m.Supernode(512) != 2 {
		t.Fatalf("Supernode(512) = %d", m.Supernode(512))
	}
}

func TestCrossBandwidthTaper(t *testing.T) {
	m := NewSunway(512)
	if got, want := m.CrossBandwidth(), m.NICBandwidth/8; math.Abs(got-want) > 1 {
		t.Fatalf("cross bandwidth %g, want %g", got, want)
	}
}

func TestTrafficTimeMonotone(t *testing.T) {
	m := NewSunway(512)
	base := m.Time(Traffic{IntraBytesPerNode: 1e6, InterBytesPerNode: 1e6, Messages: 2})
	moreInter := m.Time(Traffic{IntraBytesPerNode: 1e6, InterBytesPerNode: 2e6, Messages: 2})
	if moreInter <= base {
		t.Fatal("more inter-supernode bytes must cost more")
	}
	// Inter-supernode bytes cost 8x intra bytes.
	intraOnly := m.Time(Traffic{IntraBytesPerNode: 8e6})
	interOnly := m.Time(Traffic{InterBytesPerNode: 1e6})
	if math.Abs(intraOnly-interOnly) > 1e-12 {
		t.Fatalf("8MB intra (%g) should equal 1MB inter (%g)", intraOnly, interOnly)
	}
}

func TestTimeIncludesLatency(t *testing.T) {
	m := NewSunway(512)
	t0 := m.Time(Traffic{Messages: 0})
	t10 := m.Time(Traffic{Messages: 10})
	if diff := t10 - t0; math.Abs(diff-10*m.LinkLatency) > 1e-15 {
		t.Fatalf("latency component %g, want %g", diff, 10*m.LinkLatency)
	}
}

func TestMemTime(t *testing.T) {
	m := NewSunway(1)
	got := m.MemTime(249e9, 1.0)
	if math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("MemTime(peak bytes, 1.0) = %g, want 1s", got)
	}
	half := m.MemTime(249e9, 0.5)
	if math.Abs(half-2.0) > 1e-9 {
		t.Fatalf("MemTime at 50%% = %g, want 2s", half)
	}
}

func TestMemTimePanicsOnBadUtilization(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSunway(1).MemTime(1, 0)
}

func TestMeshLayout(t *testing.T) {
	m := Mesh{Rows: 4, Cols: 8}
	if err := m.Validate(32); err != nil {
		t.Fatal(err)
	}
	if m.RowOf(17) != 2 || m.ColOf(17) != 1 {
		t.Fatalf("rank 17 at (%d,%d), want (2,1)", m.RowOf(17), m.ColOf(17))
	}
	if m.RankAt(2, 1) != 17 {
		t.Fatalf("RankAt(2,1) = %d", m.RankAt(2, 1))
	}
	if err := m.Validate(33); err == nil {
		t.Fatal("Validate should reject wrong size")
	}
}

func TestMeshRoundTripProperty(t *testing.T) {
	f := func(rowsRaw, colsRaw uint8, rankRaw uint16) bool {
		m := Mesh{Rows: int(rowsRaw%16) + 1, Cols: int(colsRaw%16) + 1}
		rank := int(rankRaw) % m.Size()
		return m.RankAt(m.RowOf(rank), m.ColOf(rank)) == rank
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSquarestMesh(t *testing.T) {
	cases := []struct{ n, r, c int }{
		{1, 1, 1}, {4, 2, 2}, {12, 3, 4}, {16, 4, 4}, {64, 8, 8}, {7, 1, 7}, {256, 16, 16},
	}
	for _, cse := range cases {
		m := SquarestMesh(cse.n)
		if m.Rows != cse.r || m.Cols != cse.c {
			t.Errorf("SquarestMesh(%d) = %dx%d, want %dx%d", cse.n, m.Rows, m.Cols, cse.r, cse.c)
		}
	}
}

func TestRowsMapToSupernodes(t *testing.T) {
	// The paper maps mesh rows to supernodes: with 256-wide rows every row
	// must live inside one supernode.
	mach := NewSunway(1024)
	mesh := Mesh{Rows: 4, Cols: 256}
	for row := 0; row < mesh.Rows; row++ {
		first := mesh.RankAt(row, 0)
		last := mesh.RankAt(row, mesh.Cols-1)
		if !mach.SameSupernode(first, last) {
			t.Fatalf("row %d spans supernodes", row)
		}
	}
}

func TestSupernodeMembers(t *testing.T) {
	m := Machine{Nodes: 10, SupernodeSize: 4}
	cases := []struct {
		s    int
		want []int
	}{
		{0, []int{0, 1, 2, 3}},
		{1, []int{4, 5, 6, 7}},
		{2, []int{8, 9}}, // partial last supernode
		{3, nil},
		{-1, nil},
	}
	for _, cse := range cases {
		got := m.SupernodeMembers(cse.s)
		if len(got) != len(cse.want) {
			t.Fatalf("SupernodeMembers(%d) = %v, want %v", cse.s, got, cse.want)
		}
		for i := range got {
			if got[i] != cse.want[i] {
				t.Fatalf("SupernodeMembers(%d) = %v, want %v", cse.s, got, cse.want)
			}
		}
		for _, n := range got {
			if m.Supernode(n) != cse.s {
				t.Fatalf("node %d not in supernode %d", n, cse.s)
			}
		}
	}
	flat := Machine{Nodes: 3, SupernodeSize: 0}
	if got := flat.SupernodeMembers(0); len(got) != 3 {
		t.Fatalf("flat machine supernode 0 = %v, want all 3 nodes", got)
	}
}
