// Package topology models the New Sunway interconnect the paper runs on
// (Section 3.2): nodes grouped into 256-node supernodes with full bandwidth
// inside a supernode and an oversubscribed fat tree between supernodes. The
// model prices communication volumes measured by the comm layer, which is how
// the perfmodel package projects the paper's scaling figures without the
// machine.
package topology

import "fmt"

// Machine describes the modeled system. All bandwidths are bytes/second per
// node unless stated otherwise.
type Machine struct {
	Nodes            int
	SupernodeSize    int     // nodes per supernode (paper: 256)
	NICBandwidth     float64 // injection bandwidth per node (paper: 200 Gb/s = 25 GB/s)
	Oversubscription float64 // fat-tree taper for inter-supernode traffic (paper: 8)
	LinkLatency      float64 // per-message latency, seconds
	MemBandwidth     float64 // per-node memory bandwidth (paper: 249 GB/s)
	MemPerNode       int64   // bytes of main memory per node (paper: 96 GiB)
	CoresPerNode     int     // paper: 390 (6 MPE + 384 CPE)
}

// NewSunway returns the paper's published machine constants.
func NewSunway(nodes int) Machine {
	return Machine{
		Nodes:            nodes,
		SupernodeSize:    256,
		NICBandwidth:     25e9, // 200 Gbps
		Oversubscription: 8,
		LinkLatency:      1.5e-6,
		MemBandwidth:     249e9,
		MemPerNode:       96 << 30,
		CoresPerNode:     390,
	}
}

// Supernode returns the supernode index of a node.
func (m Machine) Supernode(node int) int {
	if m.SupernodeSize <= 0 {
		return 0
	}
	return node / m.SupernodeSize
}

// Supernodes returns the number of (possibly partial) supernodes.
func (m Machine) Supernodes() int {
	if m.SupernodeSize <= 0 {
		return 1
	}
	return (m.Nodes + m.SupernodeSize - 1) / m.SupernodeSize
}

// SameSupernode reports whether two nodes share a supernode.
func (m Machine) SameSupernode(a, b int) bool { return m.Supernode(a) == m.Supernode(b) }

// SupernodeMembers returns the node indices of supernode s, clipped to the
// machine size (the last supernode may be partial). Fault plans scoped to one
// supernode use this to enumerate the ranks they cover.
func (m Machine) SupernodeMembers(s int) []int {
	if s < 0 || s >= m.Supernodes() {
		return nil
	}
	if m.SupernodeSize <= 0 {
		out := make([]int, m.Nodes)
		for i := range out {
			out[i] = i
		}
		return out
	}
	lo := s * m.SupernodeSize
	hi := lo + m.SupernodeSize
	if hi > m.Nodes {
		hi = m.Nodes
	}
	out := make([]int, 0, hi-lo)
	for n := lo; n < hi; n++ {
		out = append(out, n)
	}
	return out
}

// CrossBandwidth is the effective per-node bandwidth for traffic leaving the
// supernode: NIC bandwidth divided by the oversubscription factor.
func (m Machine) CrossBandwidth() float64 {
	if m.Oversubscription <= 0 {
		return m.NICBandwidth
	}
	return m.NICBandwidth / m.Oversubscription
}

// Traffic describes one communication phase for costing: per-node byte
// volumes split by whether they cross supernode boundaries, plus the number
// of messages on the critical path (for latency).
type Traffic struct {
	IntraBytesPerNode float64 // bytes each node sends within its supernode
	InterBytesPerNode float64 // bytes each node sends across supernodes
	Messages          int     // sequential message count on the critical path
}

// Time returns the modeled wall-clock seconds for the phase: the max of
// intra- and inter-supernode transfer times (they overlap on different links)
// plus latency for the critical-path messages.
func (m Machine) Time(t Traffic) float64 {
	intra := 0.0
	if m.NICBandwidth > 0 {
		intra = t.IntraBytesPerNode / m.NICBandwidth
	}
	inter := 0.0
	if cb := m.CrossBandwidth(); cb > 0 {
		inter = t.InterBytesPerNode / cb
	}
	link := intra
	if inter > link {
		link = inter
	}
	return link + float64(t.Messages)*m.LinkLatency
}

// MemTime returns the modeled seconds to move the given bytes through one
// node's memory system at the achievable fraction of peak (utilization in
// (0,1]; the paper measures 47% for OCS-RMA bucketing).
func (m Machine) MemTime(bytes float64, utilization float64) float64 {
	if utilization <= 0 || utilization > 1 {
		panic(fmt.Sprintf("topology: utilization %g out of (0,1]", utilization))
	}
	return bytes / (m.MemBandwidth * utilization)
}

// Mesh is the R×C process grid of the 1.5D partitioning. Rows map to
// supernodes as in the paper (Section 4.1), so row-internal collectives stay
// inside a supernode whenever R divides the machine into supernode-sized
// rows.
type Mesh struct {
	Rows, Cols int
}

// Size returns the number of ranks.
func (m Mesh) Size() int { return m.Rows * m.Cols }

// RowOf returns the mesh row of a rank. Ranks are laid out row-major so that
// one row = C consecutive ranks = (ideally) one supernode.
func (m Mesh) RowOf(rank int) int { return rank / m.Cols }

// ColOf returns the mesh column of a rank.
func (m Mesh) ColOf(rank int) int { return rank % m.Cols }

// RankAt returns the rank at (row, col).
func (m Mesh) RankAt(row, col int) int { return row*m.Cols + col }

// Validate checks the mesh covers exactly n ranks.
func (m Mesh) Validate(n int) error {
	if m.Rows <= 0 || m.Cols <= 0 {
		return fmt.Errorf("topology: mesh %dx%d not positive", m.Rows, m.Cols)
	}
	if m.Size() != n {
		return fmt.Errorf("topology: mesh %dx%d covers %d ranks, want %d", m.Rows, m.Cols, m.Size(), n)
	}
	return nil
}

// SquarestMesh factors n into the most square R×C mesh with R ≤ C.
func SquarestMesh(n int) Mesh {
	best := Mesh{Rows: 1, Cols: n}
	for r := 1; r*r <= n; r++ {
		if n%r == 0 {
			best = Mesh{Rows: r, Cols: n / r}
		}
	}
	return best
}
