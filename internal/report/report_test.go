package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/stats"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden report document")

// syntheticInputs builds a fully deterministic measurement set that exercises
// every section of the document.
func syntheticInputs() Inputs {
	rec := &stats.Recorder{}
	for p := stats.Phase(0); p < stats.NumPhases; p++ {
		var v comm.VolumeStats
		v.IntraBytes[comm.KindAlltoallv] = int64(1000 * (p + 1))
		v.InterBytes[comm.KindAllgather] = int64(100 * (p + 1))
		v.Calls[comm.KindAlltoallv] = int64(p + 1)
		rec.Observe(p, stats.DirPush, time.Duration(p+1)*time.Millisecond, v, int64(50*(p+1)))
		rec.Observe(p, stats.DirPull, time.Duration(p+1)*500*time.Microsecond, comm.VolumeStats{}, int64(10*(p+1)))
	}
	in := Inputs{
		Config: RunConfig{
			Scale: 14, EdgeFactor: 16, NumVertices: 1 << 14, NumEdges: 16 << 14,
			Ranks: 4, MeshRows: 2, MeshCols: 2, Roots: 8, Seed: 42,
			Direction: "sub-iteration", Segmented: true, RankWorkers: 1,
			Workload: "bfs,wcc,kcore,sssp",
		},
		HarmonicTEPS: 2.5e8,
		MeanTEPS:     3e8,
		MinTEPS:      1e8,
		MaxTEPS:      5e8,
		MeanSeconds:  0.0125,
		Traversed:    4_000_000,
		Iterations:   48,
		Recorder:     rec,
		Faults:       comm.FaultStats{Failures: 2, Errors: 8},
		Retries:      2,
		RecoveryWall: 3 * time.Millisecond,
		Recovery: stats.RecoveryStats{
			Epochs: 1, RanksLost: 1, IterationsReplayed: 3, BytesRestored: 4096,
			RecoveryTime: 2 * time.Millisecond, CheckpointSegments: 7, CheckpointBytes: 9000,
		},
		Setup: &SetupReport{
			Seconds: 0.5, GenerateSeconds: 0.3, PartitionSeconds: 0.4,
			DegreesSeconds: 0.05, HubDirSeconds: 0.02, DistributeSeconds: 0.08,
			AssembleSeconds: 0.25, SortSeconds: 0.2, EngineSeconds: 0.1,
			FirstKernelGapSeconds: 0.6,
		},
		Wire: &WireResilience{
			Procs: 2, RanksPerProc: 2,
			HeartbeatsSent: 7, HeartbeatsRecv: 7, Reconnects: 1, PeersLost: 1,
			FramesResent: 3, BytesSent: 65536, BytesRecv: 65024,
			AuthRejects: 1, HandshakeTimeouts: 1,
		},
		Supervisor: &SupervisorResilience{
			Workers: 3, Spares: 2, Generations: 1,
			Spawns: 7, Restarts: 2, Crashes: 2, Parked: 2,
		},
		Workloads: []WorkloadEntry{
			{Workload: "bfs", GTEPS: 0.25, Seconds: 0.0125, Iterations: 48, CommBytes: 8192},
			{Workload: "wcc", GTEPS: 0.8, Seconds: 0.02, Iterations: 9, CommBytes: 4096, Components: 3},
			{Workload: "kcore", GTEPS: 0.6, Seconds: 0.015, Iterations: 12, CommBytes: 2048, K: 2, CoreSize: 900},
			{Workload: "sssp", GTEPS: 0.1, Seconds: 0.04, Iterations: 33, CommBytes: 6144, Retries: 1, Root: 5, Relaxations: 70000},
		},
		Batch: &BatchReport{
			Batches: 2, Queries: 16, MaxBatch: 8,
			MeanOccupancy: 6.5, MaxOccupancy: 8,
			BatchGTEPS:        0.9,
			LatencyP50Seconds: 0.004, LatencyP90Seconds: 0.009,
			LatencyP99Seconds: 0.012, LatencyMaxSeconds: 0.012,
			BatchCollectiveCalls: 148, SoloCollectiveCalls: 792,
		},
	}
	in.Config.BatchRoots = 8
	for c := range in.Directions {
		in.Directions[c][stats.DirPush] = int64(3 + c)
		in.Directions[c][stats.DirPull] = int64(2 * c)
		in.Directions[c][stats.DirSkip] = int64(c)
	}
	return in
}

// TestGoldenDocument pins the JSON encoding: any schema change shows up as a
// reviewed diff of testdata/report_v3.golden (regenerate with
// `go test ./internal/report -run TestGoldenDocument -update-golden`), and a
// meaning change must bump SchemaVersion. testdata/report_v1.golden and
// report_v2.golden stay frozen — they are the compatibility fixtures for
// TestReadAcceptsV1/V2, never regenerated.
func TestGoldenDocument(t *testing.T) {
	var buf bytes.Buffer
	if err := Build(syntheticInputs()).Write(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_v3.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("document drifted from golden file.\ngot:\n%s\nwant:\n%s\n"+
			"If the change is intentional, regenerate with -update-golden "+
			"and bump SchemaVersion if any field changed meaning.", buf.Bytes(), want)
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := Build(syntheticInputs())
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary != r.Summary || got.Config != r.Config {
		t.Fatalf("round trip mutated the document: %+v vs %+v", got.Summary, r.Summary)
	}
	if len(got.Phases) != int(stats.NumPhases) || len(got.Collectives) != int(comm.NumKinds) {
		t.Fatalf("sections truncated: %d phases, %d collectives", len(got.Phases), len(got.Collectives))
	}
	if got.Setup == nil || *got.Setup != *r.Setup {
		t.Fatalf("setup block lost in round trip: %+v vs %+v", got.Setup, r.Setup)
	}
	if got.Resilience.Wire == nil || *got.Resilience.Wire != *r.Resilience.Wire {
		t.Fatalf("wire block lost in round trip: %+v vs %+v", got.Resilience.Wire, r.Resilience.Wire)
	}
	if got.Resilience.Supervisor == nil || *got.Resilience.Supervisor != *r.Resilience.Supervisor {
		t.Fatalf("supervisor block lost in round trip: %+v vs %+v", got.Resilience.Supervisor, r.Resilience.Supervisor)
	}
	if got.Batch == nil || *got.Batch != *r.Batch {
		t.Fatalf("batch block lost in round trip: %+v vs %+v", got.Batch, r.Batch)
	}
}

// TestReadAcceptsV1 pins backward compatibility: a committed v1 document
// (written before the workload sections existed) must still decode, with the
// v2-only fields at their zero values.
func TestReadAcceptsV1(t *testing.T) {
	r, err := ReadFile(filepath.Join("testdata", "report_v1.golden"))
	if err != nil {
		t.Fatalf("v1 document rejected: %v", err)
	}
	if r.SchemaVersion != 1 {
		t.Fatalf("schema version = %d, want 1", r.SchemaVersion)
	}
	if r.Summary.HarmonicMeanGTEPS <= 0 {
		t.Fatalf("v1 summary lost: %+v", r.Summary)
	}
	if len(r.Phases) == 0 || len(r.Collectives) == 0 {
		t.Fatalf("v1 sections lost: %d phases, %d collectives", len(r.Phases), len(r.Collectives))
	}
	if len(r.Workloads) != 0 || r.Config.Workload != "" {
		t.Fatalf("v1 document grew v2 fields: workloads=%v workload=%q", r.Workloads, r.Config.Workload)
	}
	if r.Setup != nil {
		t.Fatalf("v1 document grew a setup block: %+v", r.Setup)
	}
}

// TestReadAcceptsV2 pins backward compatibility across the v3 bump: a
// committed v2 document (written before the batch block existed) must still
// decode, with the v3-only fields at their zero values.
func TestReadAcceptsV2(t *testing.T) {
	r, err := ReadFile(filepath.Join("testdata", "report_v2.golden"))
	if err != nil {
		t.Fatalf("v2 document rejected: %v", err)
	}
	if r.SchemaVersion != 2 {
		t.Fatalf("schema version = %d, want 2", r.SchemaVersion)
	}
	if r.Summary.HarmonicMeanGTEPS <= 0 || len(r.Phases) == 0 || len(r.Workloads) == 0 {
		t.Fatalf("v2 content lost: %+v", r.Summary)
	}
	if r.Setup == nil || r.Resilience.Wire == nil {
		t.Fatal("v2 setup/wire blocks lost")
	}
	if r.Batch != nil || r.Config.BatchRoots != 0 {
		t.Fatalf("v2 document grew v3 fields: batch=%+v batch_roots=%d", r.Batch, r.Config.BatchRoots)
	}
}

func TestSetLatencies(t *testing.T) {
	var b BatchReport
	b.SetLatencies(nil) // no samples: all fields stay zero
	if b.LatencyMaxSeconds != 0 {
		t.Fatal("empty sample set moved the percentiles")
	}
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(100-i) * 0.001 // 0.001..0.100, reversed
	}
	b.SetLatencies(samples)
	if b.LatencyP50Seconds != 0.050 || b.LatencyP90Seconds != 0.090 ||
		b.LatencyP99Seconds != 0.099 || b.LatencyMaxSeconds != 0.100 {
		t.Fatalf("percentiles: %+v", b)
	}
	if samples[0] != 0.100 {
		t.Fatal("SetLatencies mutated its input")
	}
	one := BatchReport{}
	one.SetLatencies([]float64{0.25})
	if one.LatencyP50Seconds != 0.25 || one.LatencyMaxSeconds != 0.25 {
		t.Fatalf("single sample: %+v", one)
	}
}

func TestReadRejectsForeignSchema(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte(`{"schema":"other","schema_version":1}`))); err == nil {
		t.Fatal("foreign schema accepted")
	}
	if _, err := Read(bytes.NewReader([]byte(`{"schema":"graph500-bench","schema_version":99}`))); err == nil {
		t.Fatal("newer schema version accepted")
	}
}
