package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/stats"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden report document")

// syntheticInputs builds a fully deterministic measurement set that exercises
// every section of the document.
func syntheticInputs() Inputs {
	rec := &stats.Recorder{}
	for p := stats.Phase(0); p < stats.NumPhases; p++ {
		var v comm.VolumeStats
		v.IntraBytes[comm.KindAlltoallv] = int64(1000 * (p + 1))
		v.InterBytes[comm.KindAllgather] = int64(100 * (p + 1))
		v.Calls[comm.KindAlltoallv] = int64(p + 1)
		rec.Observe(p, stats.DirPush, time.Duration(p+1)*time.Millisecond, v, int64(50*(p+1)))
		rec.Observe(p, stats.DirPull, time.Duration(p+1)*500*time.Microsecond, comm.VolumeStats{}, int64(10*(p+1)))
	}
	in := Inputs{
		Config: RunConfig{
			Scale: 14, EdgeFactor: 16, NumVertices: 1 << 14, NumEdges: 16 << 14,
			Ranks: 4, MeshRows: 2, MeshCols: 2, Roots: 8, Seed: 42,
			Direction: "sub-iteration", Segmented: true, RankWorkers: 1,
		},
		HarmonicTEPS: 2.5e8,
		MeanTEPS:     3e8,
		MinTEPS:      1e8,
		MaxTEPS:      5e8,
		MeanSeconds:  0.0125,
		Traversed:    4_000_000,
		Iterations:   48,
		Recorder:     rec,
		Faults:       comm.FaultStats{Failures: 2, Errors: 8},
		Retries:      2,
		RecoveryWall: 3 * time.Millisecond,
		Recovery: stats.RecoveryStats{
			Epochs: 1, RanksLost: 1, IterationsReplayed: 3, BytesRestored: 4096,
			RecoveryTime: 2 * time.Millisecond, CheckpointSegments: 7, CheckpointBytes: 9000,
		},
	}
	for c := range in.Directions {
		in.Directions[c][stats.DirPush] = int64(3 + c)
		in.Directions[c][stats.DirPull] = int64(2 * c)
		in.Directions[c][stats.DirSkip] = int64(c)
	}
	return in
}

// TestGoldenDocument pins the JSON encoding: any schema change shows up as a
// reviewed diff of testdata/report_v1.golden (regenerate with
// `go test ./internal/report -run TestGoldenDocument -update-golden`), and a
// meaning change must bump SchemaVersion.
func TestGoldenDocument(t *testing.T) {
	var buf bytes.Buffer
	if err := Build(syntheticInputs()).Write(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_v1.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("document drifted from golden file.\ngot:\n%s\nwant:\n%s\n"+
			"If the change is intentional, regenerate with -update-golden "+
			"and bump SchemaVersion if any field changed meaning.", buf.Bytes(), want)
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := Build(syntheticInputs())
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary != r.Summary || got.Config != r.Config {
		t.Fatalf("round trip mutated the document: %+v vs %+v", got.Summary, r.Summary)
	}
	if len(got.Phases) != int(stats.NumPhases) || len(got.Collectives) != int(comm.NumKinds) {
		t.Fatalf("sections truncated: %d phases, %d collectives", len(got.Phases), len(got.Collectives))
	}
}

func TestReadRejectsForeignSchema(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte(`{"schema":"other","schema_version":1}`))); err == nil {
		t.Fatal("foreign schema accepted")
	}
	if _, err := Read(bytes.NewReader([]byte(`{"schema":"graph500-bench","schema_version":99}`))); err == nil {
		t.Fatal("newer schema version accepted")
	}
}
