// Package report defines the versioned machine-readable output of the
// benchmark pipeline: one JSON document per bfsbench invocation carrying the
// Graph 500 headline statistics plus the paper's evaluation breakdowns —
// per-phase time/edges/volume (Figure 10), per-collective traffic
// (Figure 11), per-component direction decisions (Figure 15) and the
// resilience/recovery accounting. CI commits a baseline document and gates
// merges on the harmonic-mean GTEPS of a fresh run against it (see
// cmd/benchcmp).
//
// The schema is versioned: any field removal or meaning change bumps
// SchemaVersion; additions are backward compatible within a version. The
// golden-file test pins the encoding so schema drift is an explicit,
// reviewed change.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/stats"
)

// Schema identifies the document type; SchemaVersion its revision.
//
// Version history:
//
//	v1: BFS-only document (summary, phases, collectives, directions,
//	    resilience).
//	v2: adds Config.Workload (the benchmarked workload list) and the
//	    Workloads section (one per-workload summary entry each for wcc,
//	    kcore, sssp and the bfs headline), all additive — v1 documents
//	    still decode. Later additions within v2 (also additive):
//	    Resilience.Wire, the socket backend's transport counters, absent
//	    for in-process runs; the Setup block (run_start→first-kernel gap
//	    plus the partitioning sort breakdown) and Config.SegAdaptive,
//	    absent in older documents.
//	v3: adds the Batch block (batched multi-source sweeps: occupancy,
//	    per-query latency percentiles, batched throughput, and the
//	    batch-vs-solo collective-call amortization) and Config.BatchRoots.
//	    Additive — v2 and v1 documents still decode.
const (
	Schema        = "graph500-bench"
	SchemaVersion = 3
)

// Report is the top-level document.
type Report struct {
	Schema        string `json:"schema"`
	SchemaVersion int    `json:"schema_version"`

	Config  RunConfig `json:"config"`
	Summary Summary   `json:"summary"`

	// Phases is the Figure 10 breakdown: one entry per engine phase (the
	// six components, reduce, other), in phase order.
	Phases []PhaseEntry `json:"phases"`
	// Collectives is the Figure 11 breakdown: one entry per collective
	// kind, in kind order.
	Collectives []CollectiveEntry `json:"collectives"`
	// Directions is the Figure 15 breakdown: per component, how many
	// iterations chose push, pull or skip, in component order.
	Directions []DirectionEntry `json:"directions"`

	// Workloads (schema v2) holds one summary entry per benchmarked
	// workload, in the order run. Absent in v1 documents and in BFS-only
	// runs that predate the workload flag.
	Workloads []WorkloadEntry `json:"workloads,omitempty"`

	// Setup (schema v2, additive) surfaces setup time as a first-class
	// metric: where the wall time before the first kernel went. Absent in
	// documents from before the block existed; benchcmp treats absence as
	// "no setup gate possible".
	Setup *SetupReport `json:"setup,omitempty"`

	// Batch (schema v3, additive) is the batched multi-source block: how
	// well concurrent traversals amortized the machine. Absent for solo-only
	// runs and in pre-v3 documents; benchcmp treats absence as "no batch
	// gate possible".
	Batch *BatchReport `json:"batch,omitempty"`

	Resilience Resilience `json:"resilience"`
}

// BatchReport (schema v3) summarizes batched multi-source execution: sweep
// occupancy (live queries per iteration — len(roots) at full amortization,
// 1.0 when batching bought nothing), per-query latency percentiles as the
// service sees them, the batch's aggregate throughput, and the headline
// amortization evidence — data-plane collective calls for one batch of
// Queries roots next to the calls the same roots cost run solo.
type BatchReport struct {
	Batches       int64   `json:"batches"`
	Queries       int64   `json:"queries"`
	MaxBatch      int     `json:"max_batch"`
	MeanOccupancy float64 `json:"mean_occupancy"`
	MaxOccupancy  float64 `json:"max_occupancy"`
	// BatchGTEPS is total traversed edges across all batched queries over
	// total sweep wall time.
	BatchGTEPS float64 `json:"batch_gteps"`

	LatencyP50Seconds float64 `json:"latency_p50_seconds"`
	LatencyP90Seconds float64 `json:"latency_p90_seconds"`
	LatencyP99Seconds float64 `json:"latency_p99_seconds"`
	LatencyMaxSeconds float64 `json:"latency_max_seconds"`

	// Collective-call amortization, trace-span counted when available:
	// omitted (zero) when the run had no solo arm to compare against.
	BatchCollectiveCalls int64 `json:"batch_collective_calls,omitempty"`
	SoloCollectiveCalls  int64 `json:"solo_collective_calls,omitempty"`
}

// SetLatencies fills the latency percentile fields from per-query latencies
// in seconds (order irrelevant; the slice is not modified). Percentiles use
// the nearest-rank method on the sorted samples.
func (b *BatchReport) SetLatencies(seconds []float64) {
	if len(seconds) == 0 {
		return
	}
	s := append([]float64(nil), seconds...)
	sort.Float64s(s)
	rank := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	b.LatencyP50Seconds = rank(0.50)
	b.LatencyP90Seconds = rank(0.90)
	b.LatencyP99Seconds = rank(0.99)
	b.LatencyMaxSeconds = s[len(s)-1]
}

// SetupReport breaks down the time between process start and the first
// traversal kernel. Seconds (the gated total) is partitioning plus engine
// construction — the preprocessing the paper's Section 5 treats as a
// first-class scaling problem; graph generation is reported alongside but
// excluded from the gate because it is benchmark harness cost, not setup the
// system controls. The partition sub-fields come from partition.BuildStats;
// SortSeconds sums the grouping sorts across concurrently assembled ranks,
// so it can exceed AssembleSeconds wall time. FirstKernelGapSeconds is
// measured from the trace: the gap between the first run's run_start event
// and its first kernel span (0 when the run was not traced).
type SetupReport struct {
	Seconds               float64 `json:"setup_seconds"`
	GenerateSeconds       float64 `json:"generate_seconds"`
	PartitionSeconds      float64 `json:"partition_seconds"`
	DegreesSeconds        float64 `json:"degrees_seconds"`
	HubDirSeconds         float64 `json:"hubdir_seconds"`
	DistributeSeconds     float64 `json:"distribute_seconds"`
	AssembleSeconds       float64 `json:"assemble_seconds"`
	SortSeconds           float64 `json:"sort_seconds"`
	EngineSeconds         float64 `json:"engine_seconds"`
	FirstKernelGapSeconds float64 `json:"first_kernel_gap_seconds"`
}

// RunConfig records the benchmarked configuration, enough to reproduce the
// run and to refuse apples-to-oranges comparisons.
type RunConfig struct {
	Scale        int    `json:"scale"`
	EdgeFactor   int    `json:"edge_factor"`
	NumVertices  int64  `json:"num_vertices"`
	NumEdges     int64  `json:"num_edges"`
	Ranks        int    `json:"ranks"`
	MeshRows     int    `json:"mesh_rows"`
	MeshCols     int    `json:"mesh_cols"`
	Roots        int    `json:"roots"`
	Seed         uint64 `json:"seed"`
	Direction    string `json:"direction"`
	Segmented    bool   `json:"segmented"`
	Hierarchical bool   `json:"hierarchical"`
	RankWorkers  int    `json:"rank_workers"`
	Sparse       string `json:"sparse,omitempty"`
	Faults       string `json:"faults,omitempty"`
	Checkpoints  bool   `json:"checkpoints,omitempty"`
	// Workload (schema v2) is the comma-joined workload list of the run
	// ("bfs,wcc,kcore,sssp"); empty means a pre-v2 BFS-only document.
	Workload string `json:"workload,omitempty"`
	// SegAdaptive (schema v2, additive) marks runs with the measured
	// flat-vs-segmented EH2EH pull switch enabled.
	SegAdaptive bool `json:"seg_adaptive,omitempty"`
	// BatchRoots (schema v3, additive) is the batch width of a batched
	// multi-source run; 0 means solo-only.
	BatchRoots int `json:"batch_roots,omitempty"`
}

// Summary is the Graph 500 headline block.
type Summary struct {
	// HarmonicMeanGTEPS is the reported Graph 500 statistic and the value
	// the CI regression gate compares.
	HarmonicMeanGTEPS float64 `json:"harmonic_mean_gteps"`
	MeanGTEPS         float64 `json:"mean_gteps"`
	MinGTEPS          float64 `json:"min_gteps"`
	MaxGTEPS          float64 `json:"max_gteps"`
	MeanSeconds       float64 `json:"mean_seconds"`
	TotalTraversed    int64   `json:"total_traversed_edges"`
	Iterations        int64   `json:"iterations"`
}

// WorkloadEntry is one per-workload summary row (schema v2). GTEPS is the
// workload's throughput — edges touched per second for the iterative
// workloads, the harmonic-mean traversal rate for bfs — and is the statistic
// the per-workload CI gate compares (cmd/benchcmp), so its definition may
// only change together with a regenerated baseline.
type WorkloadEntry struct {
	Workload   string  `json:"workload"`
	GTEPS      float64 `json:"gteps"`
	Seconds    float64 `json:"seconds"`
	Iterations int64   `json:"iterations"`
	CommBytes  int64   `json:"comm_bytes"`
	Retries    int64   `json:"retries"`

	// Workload-specific headline outputs, for at-a-glance sanity checks of
	// an archived document; zero values are omitted.
	Components  int64 `json:"components,omitempty"`  // wcc
	K           int64 `json:"k,omitempty"`           // kcore threshold
	CoreSize    int64 `json:"core_size,omitempty"`   // kcore
	Root        int64 `json:"root,omitempty"`        // sssp
	Relaxations int64 `json:"relaxations,omitempty"` // sssp
}

// PhaseEntry is one Figure 10 bar: a phase's share of engine time, split by
// traversal direction, with its scanned edges and payload traffic.
type PhaseEntry struct {
	Phase        string  `json:"phase"`
	Seconds      float64 `json:"seconds"`
	Share        float64 `json:"share"`
	PushSeconds  float64 `json:"push_seconds"`
	PullSeconds  float64 `json:"pull_seconds"`
	EdgesTouched int64   `json:"edges_touched"`
	IntraBytes   int64   `json:"intra_bytes"`
	InterBytes   int64   `json:"inter_bytes"`
}

// CollectiveEntry is one Figure 11 bar: a collective kind's payload traffic
// split by supernode locality, and its call count.
type CollectiveEntry struct {
	Kind       string `json:"kind"`
	IntraBytes int64  `json:"intra_bytes"`
	InterBytes int64  `json:"inter_bytes"`
	Calls      int64  `json:"calls"`
}

// DirectionEntry is one Figure 15 row: how often each direction won for one
// component across all benchmarked iterations.
type DirectionEntry struct {
	Component string `json:"component"`
	Push      int64  `json:"push"`
	Pull      int64  `json:"pull"`
	Skip      int64  `json:"skip"`
}

// Resilience aggregates fault-injection and fail-stop recovery accounting
// across the benchmark's runs.
type Resilience struct {
	FaultsInjected     int64   `json:"faults_injected"`
	CollectiveErrors   int64   `json:"collective_errors"`
	Retries            int64   `json:"retries"`
	RetrySeconds       float64 `json:"retry_seconds"`
	Epochs             int64   `json:"epochs"`
	RanksLost          int64   `json:"ranks_lost"`
	IterationsReplayed int64   `json:"iterations_replayed"`
	BytesRestored      int64   `json:"bytes_restored"`
	RecoverySeconds    float64 `json:"recovery_seconds"`
	CheckpointSegments int64   `json:"checkpoint_segments"`
	CheckpointBytes    int64   `json:"checkpoint_bytes"`
	CheckpointDropped  int64   `json:"checkpoint_dropped"`
	CheckpointErrors   int64   `json:"checkpoint_errors"`

	// Wire (schema v2, additive) snapshots the socket transport when the run
	// used the cross-process backend: heartbeat traffic, reconnects and
	// peers declared dead become a committed artifact next to the epoch
	// counts they triggered. Absent for in-process runs, so v2 documents
	// from either backend decode identically.
	Wire *WireResilience `json:"wire,omitempty"`

	// Supervisor (schema v2, additive) is the cluster supervisor's process
	// babysitting record when the run was launched by cmd/bfsrun: spawns,
	// restarts, crash-loop give-ups and drains across all world generations.
	// Absent for unsupervised runs.
	Supervisor *SupervisorResilience `json:"supervisor,omitempty"`
}

// WireResilience is the socket backend's transport accounting, reported by
// the leader process's endpoint (every process keeps its own counters; the
// leader's view is the one archived).
type WireResilience struct {
	Procs          int    `json:"procs"`
	RanksPerProc   int    `json:"ranks_per_proc"`
	HeartbeatsSent uint64 `json:"heartbeats_sent"`
	HeartbeatsRecv uint64 `json:"heartbeats_recv"`
	Reconnects     uint64 `json:"reconnects"`
	PeersLost      uint64 `json:"peers_lost"`
	FramesResent   uint64 `json:"frames_resent"`
	BytesSent      uint64 `json:"bytes_sent"`
	BytesRecv      uint64 `json:"bytes_recv"`
	// AuthRejects and HandshakeTimeouts (additive) count peers turned away
	// by the authenticated hello: failed or missing HMAC proofs, and
	// connections dropped for handshake silence. Zero (omitted) on worlds
	// without a shared secret.
	AuthRejects       uint64 `json:"auth_rejects,omitempty"`
	HandshakeTimeouts uint64 `json:"handshake_timeouts,omitempty"`
}

// SupervisorResilience is cmd/bfsrun's babysitting record: what the cluster
// supervisor did to keep the worker fleet alive, aggregated across every
// world generation it launched.
type SupervisorResilience struct {
	Workers     int   `json:"workers"`
	Spares      int   `json:"spares,omitempty"`
	Generations int   `json:"generations"`
	Spawns      int64 `json:"spawns"`
	Restarts    int64 `json:"restarts"`
	Crashes     int64 `json:"crashes"`
	Hangs       int64 `json:"hangs,omitempty"`
	Parked      int64 `json:"parked,omitempty"`
	Drained     int64 `json:"drained,omitempty"`
	// CrashLoopGiveUps counts generations abandoned by the crash-loop
	// circuit breaker. Nonzero means the run needed more than restart-level
	// recovery; cmd/benchcmp fails a candidate that records one.
	CrashLoopGiveUps int64 `json:"crash_loop_give_ups,omitempty"`
}

// Inputs is everything Build needs, decoupled from the root package so the
// report layer depends only on the measurement substrates.
type Inputs struct {
	Config RunConfig

	HarmonicTEPS float64
	MeanTEPS     float64
	MinTEPS      float64
	MaxTEPS      float64
	MeanSeconds  float64
	Traversed    int64
	Iterations   int64

	// Recorder is the benchmark-wide aggregate of every rank's breakdowns.
	Recorder *stats.Recorder
	// Directions tallies chosen directions per component across iterations,
	// indexed by stats.Direction.
	Directions [partition.NumComponents][stats.NumDirections]int64

	Faults       comm.FaultStats
	Retries      int64
	RecoveryWall time.Duration
	Recovery     stats.RecoveryStats

	// Wire carries the socket backend's transport counters; nil for
	// in-process runs.
	Wire *WireResilience

	// Supervisor carries cmd/bfsrun's babysitting record; nil for
	// unsupervised runs.
	Supervisor *SupervisorResilience

	// Workloads passes through the per-workload summary rows (schema v2).
	Workloads []WorkloadEntry

	// Setup passes through the setup-time block; nil omits it.
	Setup *SetupReport

	// Batch passes through the batched multi-source block (schema v3); nil
	// omits it.
	Batch *BatchReport
}

// Build assembles the versioned document from the benchmark's measurements.
func Build(in Inputs) *Report {
	r := &Report{
		Schema:        Schema,
		SchemaVersion: SchemaVersion,
		Config:        in.Config,
		Summary: Summary{
			HarmonicMeanGTEPS: in.HarmonicTEPS / 1e9,
			MeanGTEPS:         in.MeanTEPS / 1e9,
			MinGTEPS:          in.MinTEPS / 1e9,
			MaxGTEPS:          in.MaxTEPS / 1e9,
			MeanSeconds:       in.MeanSeconds,
			TotalTraversed:    in.Traversed,
			Iterations:        in.Iterations,
		},
	}

	rec := in.Recorder
	if rec == nil {
		rec = &stats.Recorder{}
	}
	total := rec.TotalTime()
	for p := stats.Phase(0); p < stats.NumPhases; p++ {
		e := PhaseEntry{
			Phase:        p.String(),
			Seconds:      rec.PhaseTime(p).Seconds(),
			PushSeconds:  rec.Time[p][stats.DirPush].Seconds(),
			PullSeconds:  rec.Time[p][stats.DirPull].Seconds(),
			EdgesTouched: rec.EdgesTouched[p],
		}
		if total > 0 {
			e.Share = float64(rec.PhaseTime(p)) / float64(total)
		}
		e.IntraBytes, e.InterBytes = rec.Volumes[p].Totals()
		r.Phases = append(r.Phases, e)
	}

	vol := rec.CommBreakdown()
	for k := comm.Kind(0); k < comm.NumKinds; k++ {
		r.Collectives = append(r.Collectives, CollectiveEntry{
			Kind:       k.String(),
			IntraBytes: vol.IntraBytes[k],
			InterBytes: vol.InterBytes[k],
			Calls:      vol.Calls[k],
		})
	}

	for c := 0; c < int(partition.NumComponents); c++ {
		r.Directions = append(r.Directions, DirectionEntry{
			Component: partition.Component(c).String(),
			Push:      in.Directions[c][stats.DirPush],
			Pull:      in.Directions[c][stats.DirPull],
			Skip:      in.Directions[c][stats.DirSkip],
		})
	}

	r.Workloads = append(r.Workloads, in.Workloads...)
	r.Setup = in.Setup
	r.Batch = in.Batch

	r.Resilience = Resilience{
		FaultsInjected:     in.Faults.Injected(),
		CollectiveErrors:   in.Faults.Errors,
		Retries:            in.Retries,
		RetrySeconds:       in.RecoveryWall.Seconds(),
		Epochs:             in.Recovery.Epochs,
		RanksLost:          in.Recovery.RanksLost,
		IterationsReplayed: in.Recovery.IterationsReplayed,
		BytesRestored:      in.Recovery.BytesRestored,
		RecoverySeconds:    in.Recovery.RecoveryTime.Seconds(),
		CheckpointSegments: in.Recovery.CheckpointSegments,
		CheckpointBytes:    in.Recovery.CheckpointBytes,
		CheckpointDropped:  in.Recovery.CheckpointDropped,
		CheckpointErrors:   in.Recovery.CheckpointErrors,
		Wire:               in.Wire,
		Supervisor:         in.Supervisor,
	}
	return r
}

// Write encodes the document as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the document to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read decodes a document and checks its schema identity. A document from a
// newer SchemaVersion is rejected: the reader cannot know what changed.
func Read(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, err
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("report: schema %q, want %q", r.Schema, Schema)
	}
	if r.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("report: schema version %d is newer than supported %d",
			r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}

// ReadFile reads a document from path.
func ReadFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
