package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rmat"
	"repro/internal/topology"
	"repro/internal/validate"
)

// distinctConnectedRoots picks up to k distinct non-isolated vertices spread
// across the id space, so a batch mixes hub-seeded and L-seeded queries.
func distinctConnectedRoots(eng *Engine, k int) []int64 {
	n := int64(len(eng.Part.Degrees))
	var roots []int64
	stepN := n / int64(k)
	if stepN == 0 {
		stepN = 1
	}
	for off := int64(0); off < n && len(roots) < k; off += stepN {
		for v := off; v < n; v++ {
			if eng.Part.Degrees[v] > 0 {
				dup := false
				for _, r := range roots {
					if r == v {
						dup = true
						break
					}
				}
				if !dup {
					roots = append(roots, v)
				}
				break
			}
		}
	}
	return roots
}

// TestBatchVsSoloDifferential is the batch oracle: across 18 seeded cases
// spanning both generators plus tail-heavy meshes, all direction modes,
// sparse modes, hierarchical forwarding and (for a third of the corpus) an
// active fault plan, a batch of K roots must produce per query exactly the
// parent array of K independent solo runs — bit-for-bit — plus matching
// iteration counts, matching levels, and Graph 500 validation.
func TestBatchVsSoloDifferential(t *testing.T) {
	meshes := []topology.Mesh{
		{Rows: 1, Cols: 4}, {Rows: 2, Cols: 2}, {Rows: 4, Cols: 1},
		{Rows: 2, Cols: 3}, {Rows: 3, Cols: 2},
	}
	dirs := []DirectionMode{ModeSubIteration, ModeWholeIteration, ModePushOnly, ModePullOnly}
	sparses := []SparseMode{SparseAuto, SparseOff, SparseAlways}
	scales := []int{8, 9, 10}

	const cases = 18
	for i := 0; i < cases; i++ {
		i := i
		mesh := meshes[i%len(meshes)]
		dir := dirs[i%len(dirs)]
		sparse := sparses[i%len(sparses)]
		hier := i%6 == 5
		segmented := i%7 == 2
		faulty := i%3 == 0 // ≥1/3 of the corpus under a fault plan
		seed := uint64(7000 + i)

		var n int64
		var edges []rmat.Edge
		var gen string
		switch i % 4 {
		case 0:
			gen = "rmat"
			scale := scales[i%len(scales)]
			edges = rmat.Generate(rmat.Config{Scale: scale, Seed: seed})
			n = int64(1) << uint(scale)
		case 1:
			gen = "uniform"
			scale := scales[i%len(scales)]
			n = int64(1) << uint(scale)
			edges = uniformEdges(n, 8<<uint(scale), seed)
		case 2:
			gen = "grid"
			n, edges = gridEdges(24+int64(i), 20)
		default:
			gen = "comb"
			n, edges = combEdges(48, 8+int64(i%5))
		}

		name := fmt.Sprintf("%02d_%s_%dx%d_dir%d_sp%d", i, gen, mesh.Rows, mesh.Cols, dir, sparse)
		if hier {
			name += "_hier"
		}
		if segmented {
			name += "_seg"
		}
		if faulty {
			name += "_faults"
		}
		t.Run(name, func(t *testing.T) {
			if testing.Short() && i%3 != 0 {
				t.Skip("subset in -short mode")
			}
			t.Parallel()
			opt := Options{
				Mesh:         mesh,
				Thresholds:   partition.Thresholds{E: 256, H: 24},
				Direction:    dir,
				SparseTail:   sparse,
				Hierarchical: hier,
				Segmented:    segmented,
			}
			if gen == "comb" || gen == "grid" {
				opt.Thresholds = partition.Thresholds{E: 64, H: 3}
			}
			if faulty {
				plan := faultinject.New(seed)
				plan.DelayProb = 0.01
				plan.FailProb = 0.001
				opt.Transport = plan
				opt.CollectiveDeadline = 120 * time.Microsecond
				opt.MaxRetries = 8
			}
			eng, err := NewEngine(n, edges, opt)
			if err != nil {
				t.Fatal(err)
			}
			roots := distinctConnectedRoots(eng, 4+i%3)
			if len(roots) < 2 {
				t.Fatalf("graph too sparse for a batch: roots %v", roots)
			}

			solo := make([]*Result, len(roots))
			for qi, root := range roots {
				res, err := eng.Run(root)
				if err != nil {
					t.Fatalf("solo root %d: %v", root, err)
				}
				solo[qi] = res
			}
			batch, err := eng.RunBatch(roots)
			if err != nil {
				t.Fatalf("batch: %v", err)
			}
			if got, want := len(batch.Queries), len(roots); got != want {
				t.Fatalf("batch returned %d queries, want %d", got, want)
			}
			if batch.AvgOccupancy < 1 || batch.AvgOccupancy > float64(len(roots)) {
				t.Fatalf("occupancy %v out of [1,%d]", batch.AvgOccupancy, len(roots))
			}
			for qi, root := range roots {
				q := batch.Queries[qi]
				if q.Root != root {
					t.Fatalf("query %d root %d, want %d", qi, q.Root, root)
				}
				// The contract: parents bit-match the solo run.
				for v := int64(0); v < n; v++ {
					if q.Parent[v] != solo[qi].Parent[v] {
						t.Fatalf("root %d: parent[%d] = %d, solo %d", root, v, q.Parent[v], solo[qi].Parent[v])
					}
				}
				if q.Iterations != solo[qi].Iterations {
					t.Errorf("root %d: %d iterations, solo %d", root, q.Iterations, solo[qi].Iterations)
				}
				if q.TraversedEdges != solo[qi].TraversedEdges {
					t.Errorf("root %d: traversed %d, solo %d", root, q.TraversedEdges, solo[qi].TraversedEdges)
				}
				if _, err := validate.BFS(n, edges, root, q.Parent); err != nil {
					t.Fatalf("root %d: validation: %v", root, err)
				}
				refLvl, err := graph.Levels(solo[qi].Parent, root)
				if err != nil {
					t.Fatal(err)
				}
				gotLvl, err := graph.Levels(q.Parent, root)
				if err != nil {
					t.Fatal(err)
				}
				for v := int64(0); v < n; v++ {
					if refLvl[v] != gotLvl[v] {
						t.Fatalf("root %d: level[%d] = %d, solo %d", root, v, gotLvl[v], refLvl[v])
					}
				}
			}
		})
	}
}

// TestBatchAmortizesCollectives locks the economic claim: one batch of 8
// roots must issue strictly fewer data-plane collective calls than the same
// 8 roots run solo, because hub syncs, epilogue allreduces and parent
// reductions are shared across the whole batch.
func TestBatchAmortizesCollectives(t *testing.T) {
	edges := rmat.Generate(rmat.Config{Scale: 10, Seed: 42})
	n := int64(1) << 10
	eng, err := NewEngine(n, edges, Options{
		Mesh:       topology.Mesh{Rows: 2, Cols: 2},
		Thresholds: partition.Thresholds{E: 256, H: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	roots := distinctConnectedRoots(eng, 8)
	if len(roots) != 8 {
		t.Fatalf("wanted 8 roots, got %d", len(roots))
	}
	callsOf := func(rec interface{ CommBreakdown() comm.VolumeStats }) int64 {
		var sum int64
		for _, c := range rec.CommBreakdown().Calls {
			sum += c
		}
		return sum
	}
	var soloCalls int64
	for _, root := range roots {
		res, err := eng.Run(root)
		if err != nil {
			t.Fatal(err)
		}
		soloCalls += callsOf(res.Recorder)
	}
	batch, err := eng.RunBatch(roots)
	if err != nil {
		t.Fatal(err)
	}
	batchCalls := callsOf(batch.Recorder)
	if batchCalls >= soloCalls {
		t.Fatalf("batch issued %d collective calls, solo total %d — batching amortized nothing", batchCalls, soloCalls)
	}
	t.Logf("collective calls: batch=%d solo(8)=%d (%.1f%%)", batchCalls, soloCalls, 100*float64(batchCalls)/float64(soloCalls))
}

func TestRunBatchRejectsBadInput(t *testing.T) {
	edges := rmat.Generate(rmat.Config{Scale: 8, Seed: 9})
	n := int64(1) << 8
	eng, err := NewEngine(n, edges, Options{
		Mesh:       topology.Mesh{Rows: 1, Cols: 2},
		Thresholds: partition.Thresholds{E: 256, H: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := eng.RunBatch([]int64{n}); err == nil {
		t.Fatal("out-of-range root accepted")
	}
	if _, err := eng.RunBatch([]int64{-1}); err == nil {
		t.Fatal("negative root accepted")
	}
	adaptive, err := NewEngineFromPartition(eng.Part, Options{
		Mesh:            topology.Mesh{Rows: 1, Cols: 2},
		SegmentAdaptive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adaptive.RunBatch([]int64{0, 1}); err == nil {
		t.Fatal("SegmentAdaptive batch accepted")
	}
}

// TestBatchSingleQueryMatchesSolo pins the degenerate batch: a batch of one
// root is exactly a solo run.
func TestBatchSingleQueryMatchesSolo(t *testing.T) {
	n, edges := combEdges(32, 6)
	eng, err := NewEngine(n, edges, Options{
		Mesh:       topology.Mesh{Rows: 2, Cols: 2},
		Thresholds: partition.Thresholds{E: 64, H: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	root := firstConnectedRootOf(eng)
	solo, err := eng.Run(root)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := eng.RunBatch([]int64{root})
	if err != nil {
		t.Fatal(err)
	}
	q := batch.Queries[0]
	for v := int64(0); v < n; v++ {
		if q.Parent[v] != solo.Parent[v] {
			t.Fatalf("parent[%d] = %d, solo %d", v, q.Parent[v], solo.Parent[v])
		}
	}
	if q.Iterations != solo.Iterations {
		t.Fatalf("iterations %d, solo %d", q.Iterations, solo.Iterations)
	}
	if batch.AvgOccupancy != 1 {
		t.Fatalf("single-query occupancy %v, want 1", batch.AvgOccupancy)
	}
}
