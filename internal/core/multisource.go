package core

import (
	"fmt"
	"time"

	"repro/internal/bitmap"
	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/trace"
)

// This file implements the batched multi-source BFS path: one iteration
// sweep traverses Q independent queries at once, with one bit-plane per
// query stacked over contiguous backings so every collective — hub syncs,
// dense exchanges, sparse flushes, frontier gathers, the epilogue allreduce
// and the delayed parent reduction — is issued once per exchange point for
// the whole batch instead of once per query.
//
// The correctness contract is bit-exactness against solo runs: a batch of K
// roots produces, per query, exactly the parents K independent Engine.Run
// calls produce. It holds because (a) every per-query schedule decision
// (direction, sparse, skip) is computed by the solo code path from that
// query's own globally consistent counts, (b) remote kernels generate
// messages through the same gen loop bodies as the solo kernels (kernels.go)
// and receivers apply each query's stream in the same member-major order,
// and (c) the one schedule input that IS batch-global — the previous
// iteration's byte feedback, fed identically to every plane — can only move
// a component between its dense and sparse exchange forms, which are
// bit-equal by the established dense/sparse contract. SegmentAdaptive is the
// single exception (its timing-driven pull variants may legitimately pick
// different parents), so RunBatch rejects it.

// Backing indices of the stacked hub and L bit-planes.
const (
	hubFIdx = iota // hubFrontier
	hubVIdx        // hubVisited
	hubNIdx        // hubNew
	hubIIdx        // hubIter
	numHubPlanes
)

const (
	lFIdx = iota // lFrontier
	lVIdx        // lVisited
	lNIdx        // lNew
	numLPlanes
)

// qidTagShift packs (query id, component) into a sparse-update tag: the low
// bits carry the component (NumComponents = 6 fits in 3 bits), the rest the
// query id. A batch is capped well below the 2^28 ids an int32 tag can hold.
const qidTagShift = 3

func qidTag(q int, c partition.Component) int32 {
	return int32(q)<<qidTagShift | int32(c)
}

// maxBatchWidth bounds RunBatch's query count; real batches are far smaller
// (the daemon's admission control sizes them from perfmodel memory math).
const maxBatchWidth = 1 << 20

// Qid-tagged forms of the dense exchange messages (kernels.go): one batched
// alltoallv carries every query's payload, and receivers split by Qid back
// into per-query streams.
type mlMsg struct {
	Qid    int32
	LIdx   int32
	Parent int64
}

type mhubMsg struct {
	Qid    int32
	Hub    int32
	Parent int64
}

type ml2lMsg struct {
	Qid    int32
	Dst    int64
	Parent int64
}

// multiState is the batched multi-source workload: Q rankState planes whose
// bitmaps are views over contiguous per-kind backings, driven through the
// same four-step retryable iteration skeleton (driver.runLoop) as every solo
// workload — so step-granular retry, checkpointing, drain and fail-stop
// epoch recovery all apply to a batch unchanged.
type multiState struct {
	driver

	roots []int64
	nq    int // query count
	hubK  int // hubs per plane

	planes   []*rankState
	done     []bool  // per query: converged in an earlier iteration
	doneIter []int64 // per query: absolute iteration it converged at (-1 live)
	its      []IterTrace
	hist     [][]IterTrace

	hubPl [numHubPlanes]*bitmap.Planes
	lPl   [numLPlanes]*bitmap.Planes

	// pHubAll holds the Q stacked delegate parent arrays (Q*hubK) followed by
	// a 3-slot-per-query tail (activeL, visitL, doneIter) refreshed by ckpt()
	// — the whole thing IS the checkpoint's pHub array, so batched capture
	// and replay ride the existing writer geometry with zero extra copies.
	pHubAll []int64
	pLAll   []int64 // Q stacked owned-L parent arrays (Q*PerRank)

	// scratch for the batched pull-frontier gathers
	sendWords []uint64
	recvWords []uint64

	snaps [numSteps]multiSnapshot
}

type multiSnapshot struct {
	hub             [numHubPlanes][]uint64
	l               [numLPlanes][]uint64
	activeL, visitL []int64
}

func newMultiState(e *Engine, r *comm.Rank, roots []int64) *multiState {
	per := int(e.Part.Layout.PerRank)
	k := e.Part.Hubs.K()
	nq := len(roots)
	m := &multiState{
		driver:   newDriver(e, r, e.Opt.MaxIterations),
		roots:    roots,
		nq:       nq,
		hubK:     k,
		planes:   make([]*rankState, nq),
		done:     make([]bool, nq),
		doneIter: make([]int64, nq),
		its:      make([]IterTrace, nq),
		hist:     make([][]IterTrace, nq),
		pHubAll:  make([]int64, nq*k+3*nq),
		pLAll:    make([]int64, nq*per),
	}
	for i := range m.hubPl {
		m.hubPl[i] = bitmap.NewPlanes(nq, k)
	}
	for i := range m.lPl {
		m.lPl[i] = bitmap.NewPlanes(nq, per)
	}
	for i := 0; i < nq*k; i++ {
		m.pHubAll[i] = -1
	}
	for i := range m.pLAll {
		m.pLAll[i] = -1
	}
	for q, root := range roots {
		m.doneIter[q] = -1
		m.pHubAll[nq*k+3*q+2] = -1
		p := &rankState{
			driver:      newDriver(e, r, e.Opt.MaxIterations),
			root:        root,
			k:           k,
			numE:        int64(e.Part.Hubs.NumE),
			numL:        e.Part.Layout.N - int64(k),
			hubFrontier: m.hubPl[hubFIdx].Plane(q),
			hubVisited:  m.hubPl[hubVIdx].Plane(q),
			hubNew:      m.hubPl[hubNIdx].Plane(q),
			hubIter:     m.hubPl[hubIIdx].Plane(q),
			parentHub:   m.pHubAll[q*k : (q+1)*k : (q+1)*k],
			lFrontier:   m.lPl[lFIdx].Plane(q),
			lVisited:    m.lPl[lVIdx].Plane(q),
			lNew:        m.lPl[lNIdx].Plane(q),
			parentL:     m.pLAll[q*per : (q+1)*per : (q+1)*per],
		}
		// Planes share the batch driver's recorder (one merged breakdown per
		// rank) and emit no spans of their own — the batch driver's per-
		// iteration "batch_iter" span and per-exchange kernel spans are the
		// timeline. Everything else about a plane driver (rank, rank graph,
		// sparse latches) behaves exactly as in a solo run.
		p.driver.rec = m.driver.rec
		p.driver.tr = nil
		m.planes[q] = p
	}
	return m
}

func (m *multiState) drv() *driver { return &m.driver }

// bootstrap seeds every plane's root exactly as the solo bootstrap does,
// including the per-query control-plane count agreement (fault-exempt, so
// the loop adds no data-plane collectives).
func (m *multiState) bootstrap() error {
	layout := m.e.Part.Layout
	hubs := m.e.Part.Hubs
	for _, p := range m.planes {
		root := p.root
		if h, ok := hubs.HubOf(root); ok {
			p.hubFrontier.Set(int(h))
			p.hubVisited.Set(int(h))
			p.parentHub[h] = root
		} else if layout.Owner(root) == m.r.ID {
			li := layout.LocalIdx(root)
			p.lFrontier.Set(int(li))
			p.lVisited.Set(int(li))
			p.parentL[li] = root
			p.activeL = 1
			p.visitL = 1
		}
		p.activeL = comm.ControlSumInt64(m.r.World, p.activeL)
		p.visitL = comm.ControlSumInt64(m.r.World, p.visitL)
	}
	return nil
}

// beginIter latches every live plane's schedule through the solo decision
// path (each plane sees its own counts plus the shared batch-global byte
// feedback), freezes converged planes to all-skip, and aggregates the
// batch-level IterTrace the driver loop records.
func (m *multiState) beginIter(it *IterTrace) {
	var s0 int64
	if m.tr != nil {
		s0 = m.tr.Now()
	}
	live := 0
	for q, p := range m.planes {
		if m.done[q] {
			m.its[q] = IterTrace{}
			for c := range m.its[q].Directions {
				m.its[q].Directions[c] = stats.DirSkip
			}
			continue
		}
		live++
		p.lastIterBytes = m.lastIterBytes
		p.beginIter(&m.its[q])
	}
	*it = IterTrace{}
	for c := range it.Directions {
		it.Directions[c] = stats.DirSkip
	}
	for q := range m.planes {
		if m.done[q] {
			continue
		}
		pt := &m.its[q]
		it.ActiveE += pt.ActiveE
		it.ActiveH += pt.ActiveH
		it.ActiveL += pt.ActiveL
		for c := range it.Directions {
			if pt.Sparse[c] {
				it.Sparse[c] = true
			}
			d := pt.Directions[c]
			if d == stats.DirSkip {
				continue
			}
			switch it.Directions[c] {
			case stats.DirSkip:
				it.Directions[c] = d
			case d:
				// agreement across planes
			default:
				it.Directions[c] = stats.DirNone // mixed
			}
		}
	}
	if m.tr != nil {
		m.tr.Emit(trace.Span{Kind: trace.KindBatch, Epoch: m.r.Epoch(),
			Iter: m.curIter, Step: -1, Name: "batch_iter",
			Start: s0, Dur: m.tr.Now() - s0,
			Args: map[string]int64{
				"queries": int64(m.nq),
				"live":    int64(live),
				"done":    int64(m.nq - live),
			}})
	}
}

// anyLive reports whether any unconverged plane's latched schedule satisfies
// pred — the batch's collective-participation predicate. Every input is
// globally consistent, so all ranks agree on every exchange decision.
func (m *multiState) anyLive(pred func(t *IterTrace) bool) bool {
	for q := range m.planes {
		if !m.done[q] && pred(&m.its[q]) {
			return true
		}
	}
	return false
}

// runLocal executes a component whose kernels are rank-local for every live
// plane under its latched direction, in query order.
func (m *multiState) runLocal(c partition.Component, firstErr *error, fn func(p *rankState, dir stats.Direction) (int64, error)) {
	for q, p := range m.planes {
		if m.done[q] {
			continue
		}
		dir := m.its[q].Directions[c]
		err := p.runComp(c, dir, func() (int64, error) { return fn(p, dir) })
		if *firstErr == nil {
			*firstErr = err
		}
	}
}

// observeExchange runs one batched exchange under the batch driver's
// recorder and span stream, attributed to the component's phase exactly as
// the solo kernel that would have carried it.
func (m *multiState) observeExchange(c partition.Component, dir stats.Direction, fn func() error) error {
	m.r.SetTag(int(c))
	return m.observe(c, dir, func() (int64, error) { return 0, fn() })
}

func (m *multiState) step(g int, it *IterTrace) error {
	switch g {
	case 0:
		return m.step0()
	case 1:
		return m.step1()
	case 2:
		return m.step2()
	default:
		return m.step3()
	}
}

// step0: per-plane EH2EH (always rank-local), then one hub sync for the
// whole batch if any plane's schedule needs it.
func (m *multiState) step0() error {
	var firstErr error
	m.runLocal(partition.CompEH2EH, &firstErr, func(p *rankState, dir stats.Direction) (int64, error) {
		if dir == stats.DirPush {
			return p.ehPush()
		}
		if m.e.Opt.Segmented {
			return p.ehPullSegmented()
		}
		return p.ehPull()
	})
	if m.anyLive(func(t *IterTrace) bool { return t.Directions[partition.CompEH2EH] != stats.DirSkip }) {
		if err := m.syncHubsAll(); firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// syncHubsAll merges every plane's hub activations in ONE column+row
// allreduce pair over the contiguous hubNew backing, then folds each plane
// exactly as the solo sync does. Planes whose schedule would have elided the
// solo sync contribute all-zero words and a no-op fold, so the shared
// collective cannot perturb them.
func (m *multiState) syncHubsAll() error {
	err := syncHubWords(&m.driver, m.hubPl[hubNIdx].Words(), "hub_sync")
	for _, p := range m.planes {
		p.hubNew.AndNot(p.hubVisited)
		p.hubIter.Or(p.hubNew)
		p.hubVisited.Or(p.hubNew)
		p.hubNew.Reset()
	}
	return err
}

// step1 runs the four hub<->L components. Local kernels run per plane; the
// remote H2L and L2H pushes generate through the shared gen loops into
// qid-tagged buffers and ride at most one row alltoallv each, every sparse
// update of both components rides one row allgather at the L2H flush point,
// and all pulling planes' frontiers ship in one row gather. Deferring the
// sparse H2L applies to the flush is safe for the same reason the solo
// batched row exchange is: the kernels between generation and flush (L2E,
// L2H) read only lFrontier and the hub bitmaps, never lNew or parentL.
func (m *multiState) step1() error {
	var firstErr error
	collect := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	m.pendRow = m.pendRow[:0]
	cols := m.e.Opt.Mesh.Cols

	m.runLocal(partition.CompE2L, &firstErr, func(p *rankState, dir stats.Direction) (int64, error) {
		if dir == stats.DirPush {
			return p.e2lPush()
		}
		return p.e2lPull()
	})

	// H2L: gen per plane (H2L pull is rank-local, so it runs inline).
	h2lSend := make([][]mlMsg, cols)
	for q, p := range m.planes {
		if m.done[q] {
			continue
		}
		q := q
		dir := m.its[q].Directions[partition.CompH2L]
		sparse := m.its[q].Sparse[partition.CompH2L]
		err := p.runComp(partition.CompH2L, dir, func() (int64, error) {
			switch {
			case dir != stats.DirPush:
				return p.h2lPull()
			case sparse:
				return p.h2lGen(func(col, li int32, parent int64) {
					m.pendRow = append(m.pendRow, comm.SparseUpdate{Dst: col,
						Tag: qidTag(q, partition.CompH2L), Off: int64(li), Val: parent})
				}), nil
			default:
				return p.h2lGen(func(col, li int32, parent int64) {
					h2lSend[col] = append(h2lSend[col], mlMsg{Qid: int32(q), LIdx: li, Parent: parent})
				}), nil
			}
		})
		collect(err)
	}
	if m.anyLive(func(t *IterTrace) bool {
		return t.Directions[partition.CompH2L] == stats.DirPush && !t.Sparse[partition.CompH2L]
	}) {
		collect(m.observeExchange(partition.CompH2L, stats.DirPush, func() error {
			recv, err := comm.Alltoallv(m.r.RowC, h2lSend)
			if err != nil {
				return err
			}
			m.applyLPlanes(recv)
			return nil
		}))
	}

	m.runLocal(partition.CompL2E, &firstErr, func(p *rankState, dir stats.Direction) (int64, error) {
		if dir == stats.DirPush {
			return p.l2ePush()
		}
		return p.l2ePull()
	})

	// L2H: gen for pushing planes; pulls are deferred past the shared gather.
	l2hSend := make([][]mhubMsg, cols)
	for q, p := range m.planes {
		if m.done[q] || m.its[q].Directions[partition.CompL2H] == stats.DirPull {
			continue
		}
		q := q
		dir := m.its[q].Directions[partition.CompL2H]
		sparse := m.its[q].Sparse[partition.CompL2H]
		err := p.runComp(partition.CompL2H, dir, func() (int64, error) {
			if sparse {
				return p.l2hGen(func(col, hub int32, parent int64) {
					m.pendRow = append(m.pendRow, comm.SparseUpdate{Dst: col,
						Tag: qidTag(q, partition.CompL2H), Off: int64(hub), Val: parent})
				}), nil
			}
			return p.l2hGen(func(col, hub int32, parent int64) {
				l2hSend[col] = append(l2hSend[col], mhubMsg{Qid: int32(q), Hub: hub, Parent: parent})
			}), nil
		})
		collect(err)
	}
	if m.anyLive(func(t *IterTrace) bool {
		return t.Directions[partition.CompL2H] == stats.DirPush && !t.Sparse[partition.CompL2H]
	}) {
		collect(m.observeExchange(partition.CompL2H, stats.DirPush, func() error {
			recv, err := comm.Alltoallv(m.r.RowC, l2hSend)
			if err != nil {
				return err
			}
			m.applyHubPlanes(recv)
			return nil
		}))
	}
	l2hPullQs := m.pullPlanes(partition.CompL2H)
	if len(l2hPullQs) > 0 {
		per := int(m.e.Part.Layout.PerRank)
		gerr := m.gatherPlanes(m.r.RowC, partition.CompL2H, l2hPullQs, func(p *rankState) *bitmap.Bitmap {
			if p.rowFrontier == nil {
				p.rowFrontier = bitmap.New(per * cols)
			}
			return p.rowFrontier
		})
		collect(gerr)
		if gerr == nil {
			for _, q := range l2hPullQs {
				p := m.planes[q]
				collect(p.runComp(partition.CompL2H, stats.DirPull, func() (int64, error) {
					return p.l2hPullScan(), nil
				}))
			}
		}
	}
	if m.anyLive(func(t *IterTrace) bool {
		return t.Sparse[partition.CompH2L] || t.Sparse[partition.CompL2H]
	}) {
		ups := m.pendRow
		m.pendRow = m.pendRow[:0]
		collect(m.observeExchange(partition.CompL2H, stats.DirPush, func() error {
			out, err := comm.AllgatherSparse(m.r.RowC, ups)
			if err != nil {
				return err
			}
			m.applySparseRowPlanes(out)
			return nil
		}))
	}

	if m.anyLive(func(t *IterTrace) bool {
		return t.Directions[partition.CompL2E] != stats.DirSkip ||
			t.Directions[partition.CompL2H] != stats.DirSkip
	}) {
		if err := m.syncHubsAll(); firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// pullPlanes lists the live planes whose latched direction for c is pull, in
// query order — the globally consistent participant set of a batched gather.
func (m *multiState) pullPlanes(c partition.Component) []int {
	var qs []int
	for q := range m.planes {
		if !m.done[q] && m.its[q].Directions[c] == stats.DirPull {
			qs = append(qs, q)
		}
	}
	return qs
}

// step2 runs L2L: pushing planes generate qid-tagged messages into one flat
// world alltoallv (or the two-stage hierarchical forward), sparse planes
// into one world allgather, and pulling planes share one world frontier
// gather.
func (m *multiState) step2() error {
	var firstErr error
	collect := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	layout := m.e.Part.Layout
	mesh := m.e.Opt.Mesh

	if m.e.Opt.Hierarchical {
		// Hierarchical L2L is always dense (pickSparse keeps it so); the
		// qid rides inside the message through both forwarding stages.
		sendRow := make([][]ml2lMsg, mesh.Rows)
		for q, p := range m.planes {
			if m.done[q] || m.its[q].Directions[partition.CompL2L] == stats.DirPull {
				continue
			}
			q := q
			dir := m.its[q].Directions[partition.CompL2L]
			collect(p.runComp(partition.CompL2L, dir, func() (int64, error) {
				return p.l2lGenRows(func(row int, dst, parent int64) {
					sendRow[row] = append(sendRow[row], ml2lMsg{Qid: int32(q), Dst: dst, Parent: parent})
				}), nil
			}))
		}
		if m.anyLive(func(t *IterTrace) bool {
			return t.Directions[partition.CompL2L] == stats.DirPush
		}) {
			collect(m.observeExchange(partition.CompL2L, stats.DirPush, func() error {
				viaCol, colErr := comm.Alltoallv(m.r.ColC, sendRow)
				// Stage 2 always runs, exactly as solo: the row communicator's
				// schedule must match on every rank even when stage 1 failed.
				sendCol := make([][]ml2lMsg, mesh.Cols)
				for _, part := range viaCol {
					for _, msg := range part {
						col := mesh.ColOf(layout.Owner(msg.Dst))
						sendCol[col] = append(sendCol[col], msg)
					}
				}
				recv, rowErr := comm.Alltoallv(m.r.RowC, sendCol)
				if colErr != nil {
					return colErr
				}
				if rowErr != nil {
					return rowErr
				}
				m.applyL2LPlanes(recv)
				return nil
			}))
		}
	} else {
		send := make([][]ml2lMsg, layout.P)
		var ups []comm.SparseUpdate
		for q, p := range m.planes {
			if m.done[q] || m.its[q].Directions[partition.CompL2L] == stats.DirPull {
				continue
			}
			q := q
			dir := m.its[q].Directions[partition.CompL2L]
			sparse := m.its[q].Sparse[partition.CompL2L]
			collect(p.runComp(partition.CompL2L, dir, func() (int64, error) {
				if sparse {
					return p.l2lGenFlat(func(owner int, dst, parent int64) {
						ups = append(ups, comm.SparseUpdate{Dst: int32(owner),
							Tag: qidTag(q, partition.CompL2L), Off: dst, Val: parent})
					}), nil
				}
				return p.l2lGenFlat(func(owner int, dst, parent int64) {
					send[owner] = append(send[owner], ml2lMsg{Qid: int32(q), Dst: dst, Parent: parent})
				}), nil
			}))
		}
		if m.anyLive(func(t *IterTrace) bool {
			return t.Directions[partition.CompL2L] == stats.DirPush && !t.Sparse[partition.CompL2L]
		}) {
			collect(m.observeExchange(partition.CompL2L, stats.DirPush, func() error {
				recv, err := comm.Alltoallv(m.r.World, send)
				if err != nil {
					return err
				}
				m.applyL2LPlanes(recv)
				return nil
			}))
		}
		if m.anyLive(func(t *IterTrace) bool { return t.Sparse[partition.CompL2L] }) {
			collect(m.observeExchange(partition.CompL2L, stats.DirPush, func() error {
				out, err := comm.AllgatherSparse(m.r.World, ups)
				if err != nil {
					return err
				}
				m.applySparseL2LPlanes(out)
				return nil
			}))
		}
	}

	pullQs := m.pullPlanes(partition.CompL2L)
	if len(pullQs) > 0 {
		per := int(layout.PerRank)
		gerr := m.gatherPlanes(m.r.World, partition.CompL2L, pullQs, func(p *rankState) *bitmap.Bitmap {
			if p.worldFrontier == nil {
				p.worldFrontier = bitmap.New(per * layout.P)
			}
			return p.worldFrontier
		})
		collect(gerr)
		if gerr == nil {
			for _, q := range pullQs {
				p := m.planes[q]
				collect(p.runComp(partition.CompL2L, stats.DirPull, func() (int64, error) {
					return p.l2lPullScan(), nil
				}))
			}
		}
	}
	return firstErr
}

// step3 is the batched epilogue: per-plane frontier advance, one optional
// immediate parent reduction over the stacked delegate arrays, and ONE
// world allreduce agreeing every live query's active-L count plus the shared
// byte feedback (a fixed Q+1-length vector, so the collective's size never
// depends on which queries have converged).
func (m *multiState) step3() error {
	var firstErr error
	m.r.SetTag(TagEpilogue)
	for q, p := range m.planes {
		if m.done[q] {
			continue
		}
		p.hubFrontier.CopyFrom(p.hubIter)
		p.hubIter.Reset()
		p.lFrontier.CopyFrom(p.lNew)
		p.lVisited.Or(p.lNew)
		p.lNew.Reset()
	}
	if m.e.Opt.ImmediateParentReduction {
		m.r.SetTag(TagReduce)
		// Converged planes' parents are already globally agreed; re-reducing
		// them is idempotent, and one fixed-size reduce keeps the schedule
		// independent of the done set.
		if err := reduceMaxParents(&m.driver, m.pHubAll[:m.nq*m.hubK]); firstErr == nil {
			firstErr = err
		}
		m.r.SetTag(TagEpilogue)
	}
	vec := make([]int64, m.nq+1)
	for q, p := range m.planes {
		if m.done[q] {
			continue
		}
		p.pendNewHubs = int64(p.hubFrontier.Count())
		vec[q] = int64(p.lFrontier.Count())
	}
	vec[m.nq] = commBytes(m.rec) - m.iterBytesBase
	sums, err := comm.AllreduceSumInt64s(m.r.World, vec)
	if firstErr == nil {
		firstErr = err
	}
	if err == nil {
		for q, p := range m.planes {
			if m.done[q] {
				continue
			}
			p.pendAL = sums[q]
		}
		m.lastIterBytes = sums[m.nq]
	}
	return firstErr
}

func (m *multiState) endIter(it *IterTrace) bool {
	all := true
	for q, p := range m.planes {
		if m.done[q] {
			continue
		}
		m.hist[q] = append(m.hist[q], m.its[q])
		if p.endIter(&m.its[q]) {
			m.done[q] = true
			m.doneIter[q] = m.curIter
		} else {
			all = false
		}
	}
	return all
}

// finalize is the delayed parent reduction for the whole batch: ONE
// world-wide max-reduce over the Q stacked delegate arrays instead of Q
// separate reduces.
func (m *multiState) finalize() error {
	return reduceMaxParents(&m.driver, m.pHubAll[:m.nq*m.hubK])
}

func snapRaw(dst *[]uint64, w []uint64) {
	if cap(*dst) < len(w) {
		*dst = make([]uint64, len(w))
	}
	*dst = (*dst)[:len(w)]
	copy(*dst, w)
}

func (m *multiState) snapshot(g int) {
	s := &m.snaps[g]
	for i := range m.hubPl {
		snapRaw(&s.hub[i], m.hubPl[i].Words())
	}
	for i := range m.lPl {
		snapRaw(&s.l[i], m.lPl[i].Words())
	}
	if s.activeL == nil {
		s.activeL = make([]int64, m.nq)
		s.visitL = make([]int64, m.nq)
	}
	for q, p := range m.planes {
		s.activeL[q] = p.activeL
		s.visitL[q] = p.visitL
	}
}

func (m *multiState) restore(g int) {
	s := &m.snaps[g]
	for i := range m.hubPl {
		copy(m.hubPl[i].Words(), s.hub[i])
	}
	for i := range m.lPl {
		copy(m.lPl[i].Words(), s.l[i])
	}
	for q, p := range m.planes {
		p.activeL = s.activeL[q]
		p.visitL = s.visitL[q]
	}
}

// ckpt maps the batch onto the writer's fixed geometry: the stacked bitmap
// backings are the word arrays, and the stacked parent arrays (with the
// per-query scalar tail refreshed here) are the int64 arrays. hubNew,
// hubIter and lNew are empty at every capture point, exactly as solo.
func (m *multiState) ckpt() ckptSlices {
	t := m.nq * m.hubK
	var sumA, sumV int64
	for q, p := range m.planes {
		m.pHubAll[t+3*q] = p.activeL
		m.pHubAll[t+3*q+1] = p.visitL
		m.pHubAll[t+3*q+2] = m.doneIter[q]
		sumA += p.activeL
		sumV += p.visitL
	}
	return ckptSlices{
		hubF: m.hubPl[hubFIdx].Words(), hubV: m.hubPl[hubVIdx].Words(),
		lF: m.lPl[lFIdx].Words(), lV: m.lPl[lVIdx].Words(),
		pHub: m.pHubAll, pL: m.pLAll,
		activeL: sumA, visitL: sumV,
	}
}

func (m *multiState) loadState(cs *checkpoint.State) {
	copy(m.hubPl[hubFIdx].Words(), cs.HubFrontier)
	copy(m.hubPl[hubVIdx].Words(), cs.HubVisited)
	copy(m.lPl[lFIdx].Words(), cs.LFrontier)
	copy(m.lPl[lVIdx].Words(), cs.LVisited)
	copy(m.pHubAll, cs.ParentHub)
	copy(m.pLAll, cs.ParentL)
	t := m.nq * m.hubK
	for q, p := range m.planes {
		p.activeL = m.pHubAll[t+3*q]
		p.visitL = m.pHubAll[t+3*q+1]
		m.doneIter[q] = m.pHubAll[t+3*q+2]
		m.done[q] = m.doneIter[q] >= 0
	}
}

// gatherPlanes ships the pulling planes' local L frontiers in one uniform
// allgather over c and scatters the member-major result into each plane's
// destination frontier (rowFrontier or worldFrontier), reproducing exactly
// what Q separate gatherFrontier calls would build.
func (m *multiState) gatherPlanes(c *comm.Comm, comp partition.Component, qs []int, dstOf func(p *rankState) *bitmap.Bitmap) error {
	lw := m.lPl[lFIdx].Stride()
	n := len(qs) * lw
	if cap(m.sendWords) < n {
		m.sendWords = make([]uint64, n)
	}
	send := m.sendWords[:n]
	for i, q := range qs {
		copy(send[i*lw:(i+1)*lw], m.planes[q].lFrontier.Words())
	}
	members := c.Size()
	rn := members * n
	if cap(m.recvWords) < rn {
		m.recvWords = make([]uint64, rn)
	}
	recv := m.recvWords[:rn]
	return m.observeExchange(comp, stats.DirPull, func() error {
		if err := comm.AllgathervUniform(c, send, recv); err != nil {
			return err
		}
		for i, q := range qs {
			dw := dstOf(m.planes[q]).Words()
			for j := 0; j < members; j++ {
				copy(dw[j*lw:(j+1)*lw], recv[j*n+i*lw:j*n+(i+1)*lw])
			}
		}
		return nil
	})
}

// applyLPlanes splits a qid-tagged receive into per-plane member-major parts
// and applies them plane by plane — each plane sees exactly the message
// sequence its solo exchange would deliver.
func (m *multiState) applyLPlanes(recv [][]mlMsg) {
	parts := make([][]lMsg, len(recv))
	for q, p := range m.planes {
		qid := int32(q)
		any := false
		for j, part := range recv {
			parts[j] = parts[j][:0]
			for _, msg := range part {
				if msg.Qid == qid {
					parts[j] = append(parts[j], lMsg{LIdx: msg.LIdx, Parent: msg.Parent})
					any = true
				}
			}
		}
		if any {
			p.applyLMsgs(parts)
		}
	}
}

func (m *multiState) applyHubPlanes(recv [][]mhubMsg) {
	parts := make([][]hubMsg, len(recv))
	for q, p := range m.planes {
		qid := int32(q)
		any := false
		for j, part := range recv {
			parts[j] = parts[j][:0]
			for _, msg := range part {
				if msg.Qid == qid {
					parts[j] = append(parts[j], hubMsg{Hub: msg.Hub, Parent: msg.Parent})
					any = true
				}
			}
		}
		if any {
			p.applyHubMsgs(parts)
		}
	}
}

func (m *multiState) applyL2LPlanes(recv [][]ml2lMsg) {
	parts := make([][]l2lMsg, len(recv))
	for q, p := range m.planes {
		qid := int32(q)
		any := false
		for j, part := range recv {
			parts[j] = parts[j][:0]
			for _, msg := range part {
				if msg.Qid == qid {
					parts[j] = append(parts[j], l2lMsg{Dst: msg.Dst, Parent: msg.Parent})
					any = true
				}
			}
		}
		if any {
			p.applyL2L(parts)
		}
	}
}

// applySparseRowPlanes applies the combined row flush in the solo order:
// per plane, all H2L activations first, then all L2H delegate activations,
// each member-major with per-member generation order preserved.
func (m *multiState) applySparseRowPlanes(out [][]comm.SparseUpdate) {
	members := len(out)
	lParts := make([][]lMsg, members)
	hubParts := make([][]hubMsg, members)
	for q, p := range m.planes {
		anyL, anyHub := false, false
		for j, us := range out {
			lParts[j] = lParts[j][:0]
			hubParts[j] = hubParts[j][:0]
			for _, u := range us {
				if int(u.Tag>>qidTagShift) != q {
					continue
				}
				if partition.Component(u.Tag&(1<<qidTagShift-1)) == partition.CompH2L {
					lParts[j] = append(lParts[j], lMsg{LIdx: int32(u.Off), Parent: u.Val})
					anyL = true
				} else {
					hubParts[j] = append(hubParts[j], hubMsg{Hub: int32(u.Off), Parent: u.Val})
					anyHub = true
				}
			}
		}
		if anyL {
			p.applyLMsgs(lParts)
		}
		if anyHub {
			p.applyHubMsgs(hubParts)
		}
	}
}

func (m *multiState) applySparseL2LPlanes(out [][]comm.SparseUpdate) {
	parts := make([][]l2lMsg, len(out))
	for q, p := range m.planes {
		any := false
		for j, us := range out {
			parts[j] = parts[j][:0]
			for _, u := range us {
				if int(u.Tag>>qidTagShift) == q {
					parts[j] = append(parts[j], l2lMsg{Dst: u.Off, Parent: u.Val})
					any = true
				}
			}
		}
		if any {
			p.applyL2L(parts)
		}
	}
}

// BatchResult is one batched multi-source sweep's output: per-query results
// bit-identical to solo runs, plus batch-level occupancy and accounting.
type BatchResult struct {
	Roots []int64
	// Queries holds one Result per root, aligned with Roots. Each query's
	// Parent/Iterations/Trace/TraversedEdges are its own; Time is the shared
	// sweep wall time (queries co-ran), so per-query latency is a service-
	// layer measurement, not derivable from these.
	Queries []*Result
	// Iterations is the sweep's iteration count — the depth of the slowest
	// query (re-executed iterations only, on a resumed run).
	Iterations int
	Time       time.Duration
	// AvgOccupancy is the mean number of live (unconverged) queries per
	// sweep iteration: len(Roots) at full amortization; 1.0 means the batch
	// degenerated to solo cost.
	AvgOccupancy float64
	Recorder     *stats.Recorder
	PerRank      []*stats.Recorder
	// Trace aggregates the batch per iteration: summed frontier composition,
	// per-component direction when every live query agreed (DirNone when
	// mixed), OR of the sparse choices.
	Trace           []IterTrace
	Faults          comm.FaultStats
	Retries         int64
	RecoveryTime    time.Duration
	Recovery        stats.RecoveryStats
	CheckpointScope string
}

// TraversedEdges sums the queries' traversed-edge counts.
func (b *BatchResult) TraversedEdges() int64 {
	var sum int64
	for _, q := range b.Queries {
		if q != nil {
			sum += q.TraversedEdges
		}
	}
	return sum
}

// GTEPS is the batch's aggregate throughput: total traversed edges over the
// sweep's wall time, in giga units — the number a batched service sustains,
// directly comparable to the sum of solo runs' wall time for the same roots.
func (b *BatchResult) GTEPS() float64 {
	if b.Time <= 0 {
		return 0
	}
	return float64(b.TraversedEdges()) / b.Time.Seconds() / 1e9
}

// RunBatch traverses all roots in one batched multi-source sweep and
// assembles per-query results bit-identical to len(roots) solo Run calls.
// The whole sweep rides the shared driver loop, so step-granular retry,
// checkpoint capture, drain and fail-stop epoch recovery apply to a batch
// exactly as to a solo run. SegmentAdaptive engines are rejected: their
// timing-driven pull variants may legitimately discover different parents
// per run, which breaks the batch-vs-solo contract.
func (e *Engine) RunBatch(roots []int64) (*BatchResult, error) {
	n := e.Part.Layout.N
	if len(roots) == 0 {
		return nil, fmt.Errorf("core: RunBatch needs at least one root")
	}
	if len(roots) > maxBatchWidth {
		return nil, fmt.Errorf("core: batch of %d queries exceeds the %d cap", len(roots), maxBatchWidth)
	}
	for _, root := range roots {
		if root < 0 || root >= n {
			return nil, fmt.Errorf("core: root %d out of [0,%d)", root, n)
		}
	}
	if e.Opt.SegmentAdaptive {
		return nil, fmt.Errorf("core: RunBatch does not support SegmentAdaptive (nondeterministic parent choice breaks the batch-vs-solo contract)")
	}
	nq := len(roots)
	rc, err := e.execute(fmt.Sprintf("batch%d", nq),
		map[string]int64{"queries": int64(nq)},
		func(e *Engine, r *comm.Rank) workload { return newMultiState(e, r, roots) })
	if err != nil {
		return nil, err
	}
	br := &BatchResult{
		Roots:           append([]int64(nil), roots...),
		Queries:         make([]*Result, nq),
		Iterations:      len(rc.trace),
		Time:            rc.time,
		Recorder:        rc.recorder,
		PerRank:         rc.perRank,
		Trace:           rc.trace,
		Faults:          rc.faults,
		Retries:         rc.retries,
		RecoveryTime:    rc.recoveryTime,
		Recovery:        rc.recovery,
		CheckpointScope: rc.scopeName,
	}
	for qi, root := range roots {
		res := &Result{
			Root:            root,
			Parent:          make([]int64, n),
			Time:            rc.time,
			Recorder:        rc.recorder,
			Faults:          rc.faults,
			Retries:         rc.retries,
			RecoveryTime:    rc.recoveryTime,
			Recovery:        rc.recovery,
			CheckpointScope: rc.scopeName,
		}
		for i := range res.Parent {
			res.Parent[i] = -1
		}
		br.Queries[qi] = res
	}
	if rc.err == nil {
		var ref *multiState
		for _, wl := range rc.states {
			if wl == nil {
				continue
			}
			ms := wl.(*multiState)
			if ref == nil {
				ref = ms
			}
			for qi := range roots {
				ms.planes[qi].writeParents(br.Queries[qi].Parent)
			}
		}
		e.distAssemble(func(r *comm.Rank, lead bool) {
			for qi := range roots {
				gatherOwned(e, r, lead, br.Queries[qi].Parent)
			}
		})
		var liveIters int64
		for qi := range roots {
			qres := br.Queries[qi]
			qres.TraversedEdges = e.countTraversedEdges(qres.Parent)
			if ref != nil {
				qres.Iterations = int(ref.doneIter[qi]) + 1
				qres.Trace = append([]IterTrace(nil), ref.hist[qi]...)
				liveIters += ref.doneIter[qi] + 1
			}
		}
		if br.Iterations > 0 {
			br.AvgOccupancy = float64(liveIters) / float64(br.Iterations)
		}
	}
	return br, rc.err
}
