package core

import (
	"testing"

	"repro/internal/partition"
	"repro/internal/topology"
	"repro/internal/trace"
)

// TestTraceCapturesRunTimeline runs a traced BFS end-to-end — rank goroutines,
// the engine stream and the checkpoint-writer streams all recording
// concurrently (the -race CI job exercises this file) — and checks the merged
// timeline holds the spans the evaluation pipeline is built from.
func TestTraceCapturesRunTimeline(t *testing.T) {
	n, edges := rmatEdges(t, 10, 5)
	tr := trace.New()
	eng, err := NewEngine(n, edges, Options{
		Mesh:          topology.Mesh{Rows: 2, Cols: 2},
		Thresholds:    partition.Thresholds{E: 512, H: 64},
		Trace:         tr,
		Transport:     &failOnce{rank: 0, iter: 1, tag: 0},
		MaxRetries:    4,
		CheckpointDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(firstConnectedRootOf(eng))
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Fatal("injected fault forced no retry")
	}

	spans := tr.Spans()
	byKind := map[trace.Kind]int{}
	byName := map[string]int{}
	ranks := map[int]bool{}
	for _, sp := range spans {
		byKind[sp.Kind]++
		byName[sp.Name]++
		ranks[sp.Rank] = true
		if sp.Start < 0 || sp.Dur < 0 {
			t.Fatalf("span %+v has a negative timestamp", sp)
		}
	}

	// Kernel spans: one per executed (iteration, component, direction) per
	// rank, including elided (skip) instants; with a retry, re-executed
	// components appear again under Attempt 1.
	minKernels := res.Iterations * int(partition.NumComponents) * 4
	if byKind[trace.KindKernel] < minKernels {
		t.Errorf("kernel spans = %d, want >= %d (%d iterations on 4 ranks)",
			byKind[trace.KindKernel], minKernels, res.Iterations)
	}
	// Decisions: one per iteration per rank (retries do not re-decide).
	if got, want := byKind[trace.KindDecision], res.Iterations*4; got != want {
		t.Errorf("decision spans = %d, want %d", got, want)
	}
	if byKind[trace.KindSync] == 0 || byKind[trace.KindReduce] == 0 || byKind[trace.KindCollective] == 0 {
		t.Errorf("missing sync/reduce/collective spans: %v", byKind)
	}
	if byName["retry"] == 0 {
		t.Errorf("retried run recorded no retry span: %v", byName)
	}
	if byName["capture"] == 0 || byName["commit"] == 0 {
		t.Errorf("checkpointed run recorded no capture/commit spans: %v", byName)
	}
	if byName["run_start"] != 1 || byName["run"] != 1 {
		t.Errorf("engine lifecycle spans wrong: %v", byName)
	}
	// All four ranks plus the engine stream (-1) recorded.
	for r := -1; r < 4; r++ {
		if !ranks[r] {
			t.Errorf("no spans from rank %d (got ranks %v)", r, ranks)
		}
	}

	// A retried kernel is distinguishable: some span carries Attempt > 0.
	found := false
	for _, sp := range spans {
		if sp.Kind == trace.KindKernel && sp.Attempt > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no kernel span from the failed attempt carries Attempt > 0")
	}
}
