package core

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/rmat"
	"repro/internal/topology"
)

// runDistOutcomes is runDistEngines without the fail-on-error policy: the
// drain scenarios expect every process to return an error, so the (result,
// error) pairs come back for the test to judge.
func runDistOutcomes(t *testing.T, n int64, edges []rmat.Edge, opts []Options,
	body func(e *Engine) (*Result, error)) ([]*Result, []error) {
	t.Helper()
	engines := make([]*Engine, len(opts))
	for i, o := range opts {
		eng, err := NewEngine(n, edges, o)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
	}
	out := make([]*Result, len(engines))
	errs := make([]error, len(engines))
	var wg sync.WaitGroup
	for i, eng := range engines {
		wg.Add(1)
		go func(i int, eng *Engine) {
			defer wg.Done()
			out[i], errs[i] = body(eng)
		}(i, eng)
	}
	wg.Wait()
	return out, errs
}

// TestDrainCheckpointAndResume exercises the graceful-drain contract on the
// in-process backend: a run whose Drain hook fires must stop at an iteration
// boundary with ErrDrained, leave a resumable scope behind, and a successor
// engine pointed at that scope via SetResumeFrom must finish the traversal
// bit-identical to an undrained run.
func TestDrainCheckpointAndResume(t *testing.T) {
	cfg := rmat.Config{Scale: 9, Seed: 11}
	n, edges := cfg.NumVertices(), rmat.Generate(cfg)
	base := Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: DefaultThresholds(9)}
	ref, err := NewEngine(n, edges, base)
	if err != nil {
		t.Fatal(err)
	}
	root := firstConnectedRootOf(ref)
	refRes, err := ref.Run(root)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Iterations < 2 {
		t.Fatalf("reference converged in %d iterations; a drain at iteration 0 would not interrupt anything", refRes.Iterations)
	}

	opt := base
	opt.CheckpointDir = t.TempDir()
	opt.Drain = func() bool { return true }
	eng, err := NewEngine(n, edges, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(root)
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("drained run returned %v, want ErrDrained", err)
	}
	if res == nil || res.CheckpointScope == "" {
		t.Fatal("drained run kept no checkpoint scope to resume from")
	}
	if res.Iterations < 1 {
		t.Fatalf("drain stopped after %d committed iterations, want at least the first", res.Iterations)
	}

	opt.Drain = nil
	eng2, err := NewEngine(n, edges, opt)
	if err != nil {
		t.Fatal(err)
	}
	eng2.SetResumeFrom(res.CheckpointScope)
	res2, err := eng2.Run(root)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Recovery.LastResumeIter < 0 {
		t.Errorf("resumed run reports LastResumeIter=%d, want the drained iteration", res2.Recovery.LastResumeIter)
	}
	if !slices.Equal(res2.Parent, refRes.Parent) {
		t.Error("resumed parent array differs from the undrained run")
	}
}

// TestDistDrainSpareFollows drains a three-process socket world where the
// third process is a spare hosting no ranks. The drain request is raised on
// one process only; the iteration vote must spread it to every rank, and the
// epoch outcome exchange must carry the drained verdict to the spare — which
// sees no vote at all — so all three processes return ErrDrained together
// instead of the spare spinning or hanging. A second world then resumes the
// drained scope and must finish bit-identical to a fault-free run.
func TestDistDrainSpareFollows(t *testing.T) {
	cfg := rmat.Config{Scale: 9, Seed: 11}
	n, edges := cfg.NumVertices(), rmat.Generate(cfg)
	base := Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: DefaultThresholds(9)}
	ref, err := NewEngine(n, edges, base)
	if err != nil {
		t.Fatal(err)
	}
	root := firstConnectedRootOf(ref)
	refRes, err := ref.Run(root)
	if err != nil {
		t.Fatal(err)
	}

	procOf := []int{0, 0, 1, 1} // proc 2 is a spare
	ckpt := t.TempDir()
	opts := distCoreOptsProcOf(t, 3, procOf, base)
	for i := range opts {
		opts[i].CheckpointDir = ckpt
	}
	opts[0].Drain = func() bool { return true }
	results, errs := runDistOutcomes(t, n, edges, opts,
		func(e *Engine) (*Result, error) { return e.Run(root) })
	for proc, err := range errs {
		if !errors.Is(err, ErrDrained) {
			t.Fatalf("proc %d returned %v, want ErrDrained", proc, err)
		}
	}
	scope := results[0].CheckpointScope
	if scope == "" {
		t.Fatal("drained run kept no checkpoint scope")
	}

	opts2 := distCoreOptsProcOf(t, 3, procOf, base)
	for i := range opts2 {
		opts2[i].CheckpointDir = ckpt
	}
	results2, errs2 := runDistOutcomes(t, n, edges, opts2,
		func(e *Engine) (*Result, error) {
			e.SetResumeFrom(scope)
			return e.Run(root)
		})
	for proc, err := range errs2 {
		if err != nil {
			t.Fatalf("proc %d failed to resume the drained run: %v", proc, err)
		}
	}
	for _, proc := range []int{0, 1} {
		if !slices.Equal(results2[proc].Parent, refRes.Parent) {
			t.Errorf("proc %d: resumed parent array differs from fault-free", proc)
		}
	}
}

// TestDistSpareAdoptionAfterProcessLoss is the re-admission core: a
// three-process socket world runs a 2x2 mesh with both of process 1's ranks
// killed mid-run while process 2 idles as a spare. Restore-mode recovery must
// re-home the dead ranks onto the spare — not back onto a rank-hosting
// survivor — replay them from the shared checkpoint store, and finish with a
// parent tree bit-identical to a fault-free run. The evacuated process ends
// the run hosting nothing, so its result array keeps only fill values; the
// spare's result must be complete.
func TestDistSpareAdoptionAfterProcessLoss(t *testing.T) {
	cfg := rmat.Config{Scale: 9, Seed: 11}
	n, edges := cfg.NumVertices(), rmat.Generate(cfg)
	base := Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: DefaultThresholds(9)}
	ref, err := NewEngine(n, edges, base)
	if err != nil {
		t.Fatal(err)
	}
	root := firstConnectedRootOf(ref)
	refLvl := referenceLevels(t, n, edges, root)

	procOf := []int{0, 0, 1, 1} // proc 2 is a spare
	ckpt := t.TempDir()
	opts := distCoreOptsProcOf(t, 3, procOf, base)
	for i := range opts {
		opts[i].CheckpointDir = ckpt
		opts[i].Recovery = RecoverRestore
	}
	// Only the doomed process carries a fault plan: the spare must replay the
	// adopted ranks clean, not re-trigger the kill on its own plan instance.
	opts[1].Transport = faultinject.MustParse("kill@rank=2,iter=2,kill@rank=3,iter=2")
	results := runDistEngines(t, n, edges, opts,
		func(e *Engine) (*Result, error) { return e.Run(root) })
	for proc, res := range results {
		if res.Recovery.Epochs != 1 {
			t.Errorf("proc %d: %d epochs, want 1", proc, res.Recovery.Epochs)
		}
		if res.Recovery.RanksLost != 2 {
			t.Errorf("proc %d: %d ranks lost, want 2", proc, res.Recovery.RanksLost)
		}
	}
	for _, proc := range []int{0, 2} {
		checkRecovered(t, n, edges, root, results[proc].Parent, refLvl,
			fmt.Sprintf("spare-adoption/proc%d", proc))
	}
	// The adopted ranks landed on the spare: the evacuated process gathered
	// nothing, so every slot still holds the -1 fill.
	for v, p := range results[1].Parent {
		if p != -1 {
			t.Fatalf("evacuated proc still holds parent[%d]=%d; dead ranks re-homed onto it instead of the spare", v, p)
		}
	}
}
