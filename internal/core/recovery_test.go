package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rmat"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/validate"
)

// killCall is a schedule-scoped fail-stop: it kills rank at its first
// intercepted collective of iteration iter with Tag >= tag, once. Tag
// thresholds (rather than equality) make the trigger robust to components
// whose chosen direction happens to need no collective on this rank — the
// kill then lands on the next collective of the same iteration.
type killCall struct {
	rank  int
	iter  int64
	tag   int
	fired atomic.Bool
}

// chaosTransport fires a set of killCalls; everything else is reliable.
type chaosTransport struct{ kills []*killCall }

func (ct *chaosTransport) Intercept(c comm.Call) comm.FaultAction {
	var act comm.FaultAction
	for _, k := range ct.kills {
		if c.Rank != k.rank || c.Iter != k.iter || c.Tag < k.tag {
			continue
		}
		if k.fired.CompareAndSwap(false, true) {
			act.Kill = true
			return act
		}
	}
	return act
}

// failOnce injects one outright contribution failure (transient, retryable)
// on rank at its first collective of iteration iter with Tag >= tag.
type failOnce struct {
	rank  int
	iter  int64
	tag   int
	fired atomic.Bool
}

func (f *failOnce) Intercept(c comm.Call) comm.FaultAction {
	var act comm.FaultAction
	if c.Rank == f.rank && c.Iter == f.iter && c.Tag >= f.tag && f.fired.CompareAndSwap(false, true) {
		act.Fail = true
	}
	return act
}

// referenceLevels computes sequential-BFS levels for comparison.
func referenceLevels(t *testing.T, n int64, edges []rmat.Edge, root int64) []int64 {
	t.Helper()
	g := graph.FromEdges(n, edges, graph.BuildOptions{Symmetrize: true, DropSelfLoops: true})
	lvl, err := graph.Levels(g.SequentialBFS(root), root)
	if err != nil {
		t.Fatal(err)
	}
	return lvl
}

// checkRecovered asserts the recovered run's BFS tree is fully valid and
// level-identical to the fault-free reference.
func checkRecovered(t *testing.T, n int64, edges []rmat.Edge, root int64, parent []int64, refLvl []int64, label string) {
	t.Helper()
	if _, err := validate.BFS(n, edges, root, parent); err != nil {
		t.Fatalf("%s: graph500 validation: %v", label, err)
	}
	lvl, err := graph.Levels(parent, root)
	if err != nil {
		t.Fatalf("%s: levels: %v", label, err)
	}
	for v := int64(0); v < n; v++ {
		if lvl[v] != refLvl[v] {
			t.Fatalf("%s: level[%d] = %d, fault-free reference %d", label, v, lvl[v], refLvl[v])
		}
	}
}

// TestKillRecoveryShrinkAndRestore is the headline acceptance run: a SCALE-14
// BFS loses rank 3 at iteration 2 (the bfsbench `kill@rank=3,iter=2` spec),
// recovers from checkpoint under BOTH rebuild modes, and produces a BFS tree
// identical to the fault-free run, with the recovery accounted for.
func TestKillRecoveryShrinkAndRestore(t *testing.T) {
	cfg := rmat.Config{Scale: 14, Seed: 7}
	n, edges := cfg.NumVertices(), rmat.Generate(cfg)
	base := Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: DefaultThresholds(14)}

	ref, err := NewEngine(n, edges, base)
	if err != nil {
		t.Fatal(err)
	}
	root := firstConnectedRootOf(ref)
	refRes, err := ref.Run(root)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Iterations < 4 {
		t.Fatalf("reference run converged in %d iterations; kill@iter=2 would not fire", refRes.Iterations)
	}
	refLvl := referenceLevels(t, n, edges, root)

	for _, mode := range []RecoveryMode{RecoverShrink, RecoverRestore} {
		t.Run(mode.String(), func(t *testing.T) {
			plan, err := faultinject.Parse("kill@rank=3,iter=2")
			if err != nil {
				t.Fatal(err)
			}
			opt := base
			opt.Transport = plan
			opt.CheckpointDir = t.TempDir()
			opt.Recovery = mode
			eng, err := NewEngine(n, edges, opt)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(root)
			if err != nil {
				t.Fatalf("recovered run failed: %v", err)
			}
			checkRecovered(t, n, edges, root, res.Parent, refLvl, mode.String())
			rec := res.Recovery
			if rec.Epochs != 1 || rec.RanksLost != 1 {
				t.Fatalf("recovery %+v: want 1 epoch, 1 rank lost", rec)
			}
			if res.Faults.Kills != 1 {
				t.Fatalf("kills = %d, want 1", res.Faults.Kills)
			}
			if rec.BytesRestored <= 0 {
				t.Fatalf("BytesRestored = %d, want > 0", rec.BytesRestored)
			}
			if rec.CheckpointSegments <= 0 || rec.CheckpointBytes <= 0 {
				t.Fatalf("checkpoint accounting %+v: want segments and bytes > 0", rec)
			}
			if rec.LastResumeIter < -1 || rec.LastResumeIter > 1 {
				t.Fatalf("LastResumeIter = %d, want in [-1, 1] (kill fired at iteration 2)", rec.LastResumeIter)
			}
			// The epoch died entering iteration 2, so iterations 0 and 1 were
			// complete; whatever the checkpoint did not cover is replayed.
			if got, want := rec.IterationsReplayed, 1-rec.LastResumeIter; got != want {
				t.Fatalf("IterationsReplayed = %d with resume@%d, want %d", got, rec.LastResumeIter, want)
			}
			if rec.RecoveryTime <= 0 {
				t.Fatalf("RecoveryTime = %v, want > 0", rec.RecoveryTime)
			}
			if eng.World.Epoch() != 1 {
				t.Fatalf("world epoch %d after one recovery, want 1", eng.World.Epoch())
			}
			if mode == RecoverRestore {
				if got, want := eng.World.Machine().Nodes, base.Mesh.Size()+1; got != want {
					t.Fatalf("restore: machine has %d nodes, want %d (spare added)", got, want)
				}
			} else if eng.World.NodeOf(3) == 3 {
				t.Fatal("shrink: dead rank 3 still maps to its own node")
			}
			t.Logf("%s: epochs=%d ranksLost=%d replayed=%d restored=%dB resume@%d recovery=%v ckpt=%d segs/%dB (dropped %d)",
				mode, rec.Epochs, rec.RanksLost, rec.IterationsReplayed, rec.BytesRestored,
				rec.LastResumeIter, rec.RecoveryTime, rec.CheckpointSegments, rec.CheckpointBytes, rec.CheckpointDropped)
		})
	}
}

// TestKillChaosMatrix sweeps every mesh shape against kills landing in each
// of the six edge-component kernels, a kill during setup (the "died during
// partitioning" case), and two simultaneous kills inside one supernode.
// Every recovered BFS must validate and match the fault-free levels exactly.
func TestKillChaosMatrix(t *testing.T) {
	cfg := rmat.Config{Scale: 9, Seed: 11}
	n, edges := cfg.NumVertices(), rmat.Generate(cfg)
	meshes := []topology.Mesh{
		{Rows: 1, Cols: 4}, {Rows: 4, Cols: 1}, {Rows: 2, Cols: 2}, {Rows: 2, Cols: 3},
	}
	type scenario struct {
		name    string
		kills   func(ranks int) []*killCall
		lost    int64
		batched bool // run a 4-root RunBatch instead of a solo Run
	}
	var scenarios []scenario
	for c := partition.Component(0); c < partition.NumComponents; c++ {
		tag := int(c)
		scenarios = append(scenarios, scenario{
			name:  fmt.Sprintf("kill-during-%v", c),
			kills: func(ranks int) []*killCall { return []*killCall{{rank: ranks - 1, iter: 1, tag: tag}} },
			lost:  1,
		})
	}
	scenarios = append(scenarios,
		scenario{
			name:  "kill-during-setup",
			kills: func(ranks int) []*killCall { return []*killCall{{rank: 0, iter: -1, tag: TagSetup}} },
			lost:  1,
		},
		scenario{
			name: "two-kills-one-supernode",
			kills: func(ranks int) []*killCall {
				return []*killCall{{rank: 1, iter: 1, tag: 0}, {rank: 2, iter: 1, tag: 0}}
			},
			lost: 2,
		},
		scenario{
			name:    "kill-during-batched-sweep",
			kills:   func(ranks int) []*killCall { return []*killCall{{rank: ranks - 1, iter: 1, tag: 0}} },
			lost:    1,
			batched: true,
		},
	)
	for _, mesh := range meshes {
		base := Options{Mesh: mesh, Thresholds: DefaultThresholds(9)}
		ref, err := NewEngine(n, edges, base)
		if err != nil {
			t.Fatal(err)
		}
		root := firstConnectedRootOf(ref)
		refLvl := referenceLevels(t, n, edges, root)
		for i, sc := range scenarios {
			mode := RecoverShrink
			if i%2 == 1 {
				mode = RecoverRestore
			}
			name := fmt.Sprintf("%dx%d/%s/%s", mesh.Rows, mesh.Cols, sc.name, mode)
			t.Run(name, func(t *testing.T) {
				kills := sc.kills(mesh.Size())
				opt := base
				opt.Transport = &chaosTransport{kills: kills}
				opt.CheckpointDir = t.TempDir()
				opt.Recovery = mode
				eng, err := NewEngine(n, edges, opt)
				if err != nil {
					t.Fatal(err)
				}
				if sc.lost == 2 {
					m := eng.World.Machine()
					if !m.SameSupernode(eng.World.NodeOf(1), eng.World.NodeOf(2)) {
						t.Fatal("test premise broken: ranks 1 and 2 not in one supernode")
					}
				}
				if sc.batched {
					roots := distinctConnectedRoots(eng, 4)
					batch, err := eng.RunBatch(roots)
					if err != nil {
						t.Fatalf("recovered batch failed: %v", err)
					}
					for qi, broot := range roots {
						checkRecovered(t, n, edges, broot, batch.Queries[qi].Parent,
							referenceLevels(t, n, edges, broot), name)
					}
					if batch.Recovery.Epochs != 1 {
						t.Fatalf("epochs = %d, want 1", batch.Recovery.Epochs)
					}
					if batch.Recovery.RanksLost != sc.lost || batch.Faults.Kills != sc.lost {
						t.Fatalf("ranks lost = %d kills = %d, want %d", batch.Recovery.RanksLost, batch.Faults.Kills, sc.lost)
					}
					return
				}
				res, err := eng.Run(root)
				if err != nil {
					t.Fatalf("recovered run failed: %v", err)
				}
				checkRecovered(t, n, edges, root, res.Parent, refLvl, name)
				if res.Recovery.Epochs != 1 {
					t.Fatalf("epochs = %d, want 1 (simultaneous deaths share a rebuild)", res.Recovery.Epochs)
				}
				if res.Recovery.RanksLost != sc.lost {
					t.Fatalf("ranks lost = %d, want %d", res.Recovery.RanksLost, sc.lost)
				}
				if res.Faults.Kills != sc.lost {
					t.Fatalf("kills = %d, want %d", res.Faults.Kills, sc.lost)
				}
			})
		}
	}
}

// TestKillWithoutCheckpointRestarts: with no checkpoint store, losing a rank
// degrades to a full restart of the traversal under the rebuilt world — still
// correct, with every completed iteration counted as replayed.
func TestKillWithoutCheckpointRestarts(t *testing.T) {
	cfg := rmat.Config{Scale: 10, Seed: 5}
	n, edges := cfg.NumVertices(), rmat.Generate(cfg)
	base := Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: DefaultThresholds(10)}
	ref, err := NewEngine(n, edges, base)
	if err != nil {
		t.Fatal(err)
	}
	root := firstConnectedRootOf(ref)
	refLvl := referenceLevels(t, n, edges, root)

	opt := base
	opt.Transport = &chaosTransport{kills: []*killCall{{rank: 3, iter: 1, tag: 0}}}
	eng, err := NewEngine(n, edges, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(root)
	if err != nil {
		t.Fatalf("restarted run failed: %v", err)
	}
	checkRecovered(t, n, edges, root, res.Parent, refLvl, "no-checkpoint")
	if res.Recovery.Epochs != 1 || res.Recovery.RanksLost != 1 {
		t.Fatalf("recovery %+v: want 1 epoch, 1 rank", res.Recovery)
	}
	if res.Recovery.LastResumeIter != -2 {
		t.Fatalf("LastResumeIter = %d, want -2 (never resumed)", res.Recovery.LastResumeIter)
	}
	if res.Recovery.BytesRestored != 0 {
		t.Fatalf("BytesRestored = %d without a store", res.Recovery.BytesRestored)
	}
	if res.Recovery.IterationsReplayed < 1 {
		t.Fatalf("IterationsReplayed = %d, want >= 1 (iteration 0 re-ran)", res.Recovery.IterationsReplayed)
	}
}

// TestStepRetryShortCircuitsCleanSteps is the regression test for the
// step-granular retry: a transient failure in the L2L/epilogue stage must NOT
// re-execute the EH2EH kernel of the same iteration, so its scanned-edge
// count matches the fault-free run exactly while the retry counter shows the
// recovery happened.
func TestStepRetryShortCircuitsCleanSteps(t *testing.T) {
	cfg := rmat.Config{Scale: 11, Seed: 3}
	n, edges := cfg.NumVertices(), rmat.Generate(cfg)
	base := Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: partition.Thresholds{E: 512, H: 64}}
	ref, err := NewEngine(n, edges, base)
	if err != nil {
		t.Fatal(err)
	}
	root := firstConnectedRootOf(ref)
	refRes, err := ref.Run(root)
	if err != nil {
		t.Fatal(err)
	}
	refLvl := referenceLevels(t, n, edges, root)

	opt := base
	opt.Transport = &failOnce{rank: 1, iter: 1, tag: int(partition.CompL2L)}
	eng, err := NewEngine(n, edges, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(root)
	if err != nil {
		t.Fatalf("run under transient fault failed: %v", err)
	}
	checkRecovered(t, n, edges, root, res.Parent, refLvl, "step-retry")
	if res.Retries == 0 {
		t.Fatal("transient failure never triggered a retry")
	}
	for _, p := range []stats.Phase{stats.PhaseEH2EH, stats.PhaseE2L, stats.PhaseH2L, stats.PhaseL2E, stats.PhaseL2H} {
		if got, want := res.Recorder.EdgesTouched[p], refRes.Recorder.EdgesTouched[p]; got != want {
			t.Fatalf("phase %v scanned %d edges, fault-free %d: a clean step was re-executed", p, got, want)
		}
	}
}

// TestEngineTornWriteFallsBackOneIteration corrupts the newest committed
// segment of a finished (kept) run and resumes a fresh engine from the scope:
// the store must fall back exactly one iteration and the resumed run must
// still produce a correct tree.
func TestEngineTornWriteFallsBackOneIteration(t *testing.T) {
	cfg := rmat.Config{Scale: 11, Seed: 9}
	n, edges := cfg.NumVertices(), rmat.Generate(cfg)
	dir := t.TempDir()
	opt := Options{
		Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: partition.Thresholds{E: 512, H: 64},
		CheckpointDir: dir, KeepCheckpoints: true,
	}
	eng, err := NewEngine(n, edges, opt)
	if err != nil {
		t.Fatal(err)
	}
	root := firstConnectedRootOf(eng)
	res, err := eng.Run(root)
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointScope == "" {
		t.Fatal("KeepCheckpoints left no scope behind")
	}
	refLvl := referenceLevels(t, n, edges, root)

	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := store.Scope(res.CheckpointScope)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := sc.LatestComplete(opt.Mesh.Size())
	if !ok || m < 1 {
		t.Fatalf("kept scope reports LatestComplete = (%d, %v)", m, ok)
	}
	// Bit-flip rank 0's newest segment (a torn write under CRC).
	p := filepath.Join(sc.Dir(), "rank-0000", fmt.Sprintf("iter-%08d.ckpt", m))
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x08
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if it, ok := sc.LatestComplete(opt.Mesh.Size()); !ok || it != m-1 {
		t.Fatalf("after corruption LatestComplete = (%d, %v), want (%d, true): exactly one iteration back", it, ok, m-1)
	}
	// The typed corruption is visible to anyone reading past the tear.
	if _, _, err := sc.Replay(0, m, 0, 0, 0, 0); !errors.Is(err, checkpoint.ErrCheckpointCorrupt) {
		t.Fatalf("replay across the tear: %v, want ErrCheckpointCorrupt", err)
	}

	opt.ResumeFrom = res.CheckpointScope
	eng2, err := NewEngine(n, edges, opt)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := eng2.Run(root)
	if err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	checkRecovered(t, n, edges, root, res2.Parent, refLvl, "resume-after-tear")
	if res2.Recovery.LastResumeIter != m-1 {
		t.Fatalf("resumed from iteration %d, want %d (one back from the tear)", res2.Recovery.LastResumeIter, m-1)
	}
	if res2.Recovery.BytesRestored <= 0 {
		t.Fatal("resume restored no bytes")
	}
}

// TestKillAtTailIterationRecoversSparse kills a rank deep in the tail of a
// long-path traversal — where every exchange is riding the sparse-update
// allgather — and recovers from checkpoint. The replayed tail must take the
// sparse path again (lastIterBytes resets to the unknown sentinel on resume,
// which keeps the tiny frontiers eligible) and the final parent array must be
// bit-identical to both the fault-free dense and the fault-free sparse runs.
func TestKillAtTailIterationRecoversSparse(t *testing.T) {
	const n = 256
	edges := pathEdges(n)
	base := Options{
		Mesh:          topology.Mesh{Rows: 2, Cols: 2},
		Thresholds:    partition.Thresholds{E: 256, H: 32},
		Direction:     ModePushOnly,
		MaxIterations: 300,
	}
	denseOpt := base
	denseOpt.SparseTail = SparseOff
	dense, err := NewEngine(n, edges, denseOpt)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := dense.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	sparseRef, err := NewEngineFromPartition(dense.Part, base) // SparseAuto default
	if err != nil {
		t.Fatal(err)
	}
	sres, err := sparseRef.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < n; v++ {
		if dres.Parent[v] != sres.Parent[v] {
			t.Fatalf("fault-free: parent[%d] dense %d, sparse %d", v, dres.Parent[v], sres.Parent[v])
		}
	}

	const killIter = 100 // deep in the tail: iteration i has a 1-vertex frontier
	for _, mode := range []RecoveryMode{RecoverShrink, RecoverRestore} {
		t.Run(mode.String(), func(t *testing.T) {
			opt := base
			opt.Transport = &chaosTransport{kills: []*killCall{{rank: 3, iter: killIter, tag: 0}}}
			opt.CheckpointDir = t.TempDir()
			opt.Recovery = mode
			eng, err := NewEngineFromPartition(dense.Part, opt)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(0)
			if err != nil {
				t.Fatalf("recovered run failed: %v", err)
			}
			if res.Recovery.Epochs != 1 || res.Recovery.RanksLost != 1 {
				t.Fatalf("recovery %+v: want 1 epoch, 1 rank lost", res.Recovery)
			}
			// The checkpoint must have carried the run back near the kill, not
			// restarted the traversal from scratch.
			if res.Recovery.LastResumeIter < killIter-2 {
				t.Fatalf("resumed at iteration %d, want >= %d (tail checkpoint)", res.Recovery.LastResumeIter, killIter-2)
			}
			if sparseCalls(res) == 0 {
				t.Fatal("recovered run never used the sparse exchange")
			}
			if frac := sparseIterFraction(res); frac < 0.7 {
				t.Fatalf("only %.0f%% of recovered iterations went sparse", 100*frac)
			}
			if _, err := validate.BFS(n, edges, 0, res.Parent); err != nil {
				t.Fatalf("validation after recovery: %v", err)
			}
			for v := int64(0); v < n; v++ {
				if res.Parent[v] != dres.Parent[v] {
					t.Fatalf("parent[%d] = %d after recovery, fault-free dense run %d", v, res.Parent[v], dres.Parent[v])
				}
			}
		})
	}
}
