package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rmat"
	"repro/internal/topology"
	"repro/internal/validate"
)

// pathEdges builds the path 0-1-2-...-n-1 (diameter n-1, all L vertices).
func pathEdges(n int64) []rmat.Edge {
	edges := make([]rmat.Edge, 0, n-1)
	for v := int64(0); v < n-1; v++ {
		edges = append(edges, rmat.Edge{U: v, V: v + 1})
	}
	return edges
}

// TestSeededFaultPlanStillValidates is the issue's acceptance criterion: a
// seeded plan that delays 1% and fails 0.1% of collective contributions must
// still yield parent trees that pass Graph 500 validation on every tested
// root, with the retries and recovery time visible in the Result.
func TestSeededFaultPlanStillValidates(t *testing.T) {
	n, edges := rmatEdges(t, 10, 5)
	plan := faultinject.New(42)
	// Rates recalibrated when hub-sync elision cut the per-run collective
	// count: skipped sub-iterations no longer pay their all-zero hub
	// allreduces, so a 1%/0.1% plan stopped drawing any fault in 4 runs.
	plan.DelayProb = 0.03
	plan.FailProb = 0.003
	eng, err := NewEngine(n, edges, Options{
		Mesh:       topology.Mesh{Rows: 2, Cols: 2},
		Thresholds: partition.Thresholds{E: 512, H: 64},
		Transport:  plan,
		// Injected delays are uniform in [50µs, 200µs], so a 120µs deadline
		// turns a predictable slice of them into hard faults that force the
		// retry path, on top of the outright failures.
		CollectiveDeadline: 120 * time.Microsecond,
		MaxRetries:         8,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromEdges(n, edges, graph.BuildOptions{Symmetrize: true, DropSelfLoops: true})
	var injected, retries int64
	var recovery time.Duration
	for _, root := range []int64{firstConnectedRootOf(eng), 100, 511, 777} {
		res, err := eng.Run(root)
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		if _, err := validate.BFS(n, edges, root, res.Parent); err != nil {
			t.Fatalf("root %d: validation under faults: %v", root, err)
		}
		refLvl, err := graph.Levels(g.SequentialBFS(root), root)
		if err != nil {
			t.Fatal(err)
		}
		gotLvl, err := graph.Levels(res.Parent, root)
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		for v := int64(0); v < n; v++ {
			if refLvl[v] != gotLvl[v] {
				t.Fatalf("root %d: level[%d] = %d, reference %d", root, v, gotLvl[v], refLvl[v])
			}
		}
		injected += res.Faults.Injected()
		retries += res.Retries
		recovery += res.RecoveryTime
	}
	if injected == 0 {
		t.Fatal("plan with delay=0.03,fail=0.003 injected no faults across 4 runs")
	}
	if retries == 0 {
		t.Fatal("no iteration retry was ever taken; faults were not exercised")
	}
	if recovery == 0 {
		t.Fatal("retries happened but no recovery time was recorded")
	}
}

// TestPermanentStallIsTypedErrorNotHang: a rank that stalls forever must
// surface as an error satisfying both ErrNoConvergence and
// comm.ErrRankStalled — and the run must terminate, watchdog-enforced.
func TestPermanentStallIsTypedErrorNotHang(t *testing.T) {
	n, edges := rmatEdges(t, 9, 1)
	plan := faultinject.New(0)
	plan.StallRank = 2
	plan.StallStart = 5
	plan.StallLen = -1 // forever
	eng, err := NewEngine(n, edges, Options{
		Mesh:         topology.Mesh{Rows: 2, Cols: 2},
		Transport:    plan,
		MaxRetries:   2,
		RetryBackoff: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := eng.Run(firstConnectedRootOf(eng))
		ch <- outcome{res, err}
	}()
	var out outcome
	select {
	case out = <-ch:
	case <-time.After(30 * time.Second):
		t.Fatal("permanently stalled rank hung the run instead of erroring")
	}
	if out.err == nil {
		t.Fatal("run with a permanently stalled rank returned nil error")
	}
	if !errors.Is(out.err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence in chain", out.err)
	}
	if !errors.Is(out.err, comm.ErrRankStalled) {
		t.Fatalf("err = %v, want comm.ErrRankStalled in chain", out.err)
	}
	if out.res != nil && out.res.Faults.Stalls == 0 {
		t.Fatalf("result records no stalls: %+v", out.res.Faults)
	}
}

// TestTransientStallRecovers: a rank stalled for a finite window costs
// retries, not the run.
func TestTransientStallRecovers(t *testing.T) {
	n, edges := rmatEdges(t, 9, 2)
	plan := faultinject.New(0)
	plan.StallRank = 1
	plan.StallStart = 3
	plan.StallLen = 4
	eng, err := NewEngine(n, edges, Options{
		Mesh:         topology.Mesh{Rows: 2, Cols: 2},
		Transport:    plan,
		RetryBackoff: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	root := firstConnectedRootOf(eng)
	res, err := eng.Run(root)
	if err != nil {
		t.Fatalf("transient stall did not recover: %v", err)
	}
	if _, err := validate.BFS(n, edges, root, res.Parent); err != nil {
		t.Fatalf("validation after stall recovery: %v", err)
	}
	if res.Retries == 0 {
		t.Fatal("stall window cost no retries; the fault never landed")
	}
	if res.RecoveryTime == 0 {
		t.Fatal("retries recorded but recovery time is zero")
	}
}

// TestCorruptionIsDetectedAndRetried: corrupted payloads are caught by
// checksum and the iteration re-runs with clean buffers.
func TestCorruptionIsDetectedAndRetried(t *testing.T) {
	n, edges := rmatEdges(t, 9, 3)
	plan := faultinject.New(11)
	plan.CorruptProb = 0.02
	eng, err := NewEngine(n, edges, Options{
		Mesh:         topology.Mesh{Rows: 2, Cols: 2},
		Transport:    plan,
		MaxRetries:   8,
		RetryBackoff: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	root := firstConnectedRootOf(eng)
	res, err := eng.Run(root)
	if err != nil {
		t.Fatalf("run under corruption: %v", err)
	}
	if _, err := validate.BFS(n, edges, root, res.Parent); err != nil {
		t.Fatalf("validation under corruption: %v", err)
	}
	if res.Faults.Corruptions == 0 {
		t.Fatal("CorruptProb=0.02 corrupted nothing; pick a different seed")
	}
	if res.Retries == 0 {
		t.Fatal("corruption was injected but never forced a retry")
	}
}

// TestMaxIterationsReturnsErrNoConvergence: a frontier still active at the
// iteration cap is a typed abort, not a silent truncation (and carries no
// comm sentinel — nothing failed, the graph is just too deep).
func TestMaxIterationsReturnsErrNoConvergence(t *testing.T) {
	const n = 64
	eng, err := NewEngine(n, pathEdges(n), Options{
		Mesh:          topology.Mesh{Rows: 2, Cols: 2},
		MaxIterations: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run(0)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	for _, sentinel := range []error{comm.ErrRankStalled, comm.ErrCollectiveFailed,
		comm.ErrPayloadCorrupted, comm.ErrDeadlineExceeded} {
		if errors.Is(err, sentinel) {
			t.Fatalf("iteration-cap abort claims a comm fault: %v", err)
		}
	}
	// The same graph converges fine when the cap is big enough.
	eng2, err := NewEngine(n, pathEdges(n), Options{
		Mesh:          topology.Mesh{Rows: 2, Cols: 2},
		MaxIterations: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng2.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := validate.BFS(n, pathEdges(n), 0, res.Parent); err != nil {
		t.Fatal(err)
	}
}

// TestSparseTailUnderEveryFaultKind runs a forced-sparse traversal of a
// tail-heavy comb graph under each injectable fault kind in turn. The sparse
// frames ride the same contribution protocol as every dense collective, so
// delay/deadline, outright failure, corruption and stall windows must all be
// detected, retried, and leave the parent array bit-identical to a fault-free
// forced-dense run — the chaos half of the sparse substitution contract.
func TestSparseTailUnderEveryFaultKind(t *testing.T) {
	n, edges := combEdges(48, 6)
	th := partition.Thresholds{E: 8, H: 3} // comb spine classifies H
	base := Options{
		Mesh:          topology.Mesh{Rows: 2, Cols: 2},
		Thresholds:    th,
		Direction:     ModePushOnly,
		MaxIterations: 128,
	}
	denseOpt := base
	denseOpt.SparseTail = SparseOff
	dense, err := NewEngine(n, edges, denseOpt)
	if err != nil {
		t.Fatal(err)
	}
	root := firstConnectedRootOf(dense)
	dres, err := dense.Run(root)
	if err != nil {
		t.Fatal(err)
	}

	kinds := []struct {
		name   string
		mutate func(*faultinject.Plan, *Options)
	}{
		{"delay-deadline", func(p *faultinject.Plan, o *Options) {
			p.DelayProb = 0.05
			o.CollectiveDeadline = 120 * time.Microsecond
		}},
		{"fail", func(p *faultinject.Plan, o *Options) { p.FailProb = 0.005 }},
		{"corrupt", func(p *faultinject.Plan, o *Options) { p.CorruptProb = 0.02 }},
		{"stall-window", func(p *faultinject.Plan, o *Options) {
			p.StallRank = 1
			p.StallStart = 10
			p.StallLen = 5
		}},
	}
	for _, k := range kinds {
		k := k
		t.Run(k.name, func(t *testing.T) {
			t.Parallel()
			plan := faultinject.New(77)
			opt := base
			opt.SparseTail = SparseAlways
			opt.Transport = plan
			opt.MaxRetries = 10
			opt.RetryBackoff = 50 * time.Microsecond
			k.mutate(plan, &opt)
			eng, err := NewEngineFromPartition(dense.Part, opt)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(root)
			if err != nil {
				t.Fatalf("sparse run under %s: %v", k.name, err)
			}
			if res.Faults.Injected() == 0 {
				t.Fatalf("%s plan injected nothing; pick a different seed", k.name)
			}
			if res.Retries == 0 {
				t.Fatalf("%s was injected but never forced a retry", k.name)
			}
			if sparseCalls(res) == 0 {
				t.Fatal("forced-sparse run made no sparse exchanges")
			}
			if _, err := validate.BFS(n, edges, root, res.Parent); err != nil {
				t.Fatalf("validation under %s: %v", k.name, err)
			}
			for v := int64(0); v < n; v++ {
				if res.Parent[v] != dres.Parent[v] {
					t.Fatalf("%s: parent[%d] = %d, fault-free dense run %d", k.name, v, res.Parent[v], dres.Parent[v])
				}
			}
		})
	}
}
