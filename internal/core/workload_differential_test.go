package core

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/partition"
	"repro/internal/rmat"
	"repro/internal/sssp"
	"repro/internal/topology"

	"repro/internal/framework"
)

// --- Per-workload differential corpora ------------------------------------
//
// Each ported workload (WCC, k-core, SSSP) runs the shared case table below
// against an independent reference: the framework's vertex programs for WCC
// and k-core, the sequential Dijkstra for SSSP. The table spans both degree
// profiles (R-MAT hubs vs uniform), tail-heavy topologies (grids, combs,
// paths, stringy trees) that force the sparse exchange, several mesh shapes,
// and low-threshold classifications that push spines into H. More than a
// third of the cases run under a seeded fault plan, so the comparison also
// locks the retry path; the sparseBoth cases additionally demand bit-exact
// agreement between a forced-dense and a forced-sparse run of the same
// partition — the substitution contract extended to every workload.

type wlCase struct {
	name       string
	build      func(seed uint64) (int64, []rmat.Edge)
	th         partition.Thresholds
	mesh       topology.Mesh
	faulty     bool
	sparseBoth bool
	delta      float64 // SSSP bucket width; 0 = workload default
}

func rmatCase(scale int) func(seed uint64) (int64, []rmat.Edge) {
	return func(seed uint64) (int64, []rmat.Edge) {
		return int64(1) << uint(scale), rmat.Generate(rmat.Config{Scale: scale, Seed: seed})
	}
}

var workloadDiffCases = func() []wlCase {
	allL := partition.Thresholds{E: 256, H: 32}
	lowTh := partition.Thresholds{E: 8, H: 3}
	return []wlCase{
		{"00_rmat_s8_1x4", rmatCase(8), allL, topology.Mesh{Rows: 1, Cols: 4}, false, false, 0},
		{"01_rmat_s8_2x2_faults", rmatCase(8), allL, topology.Mesh{Rows: 2, Cols: 2}, true, false, 0},
		{"02_rmat_s9_2x3", rmatCase(9), allL, topology.Mesh{Rows: 2, Cols: 3}, false, false, 0},
		{"03_rmat_s9_3x2_faults", rmatCase(9), allL, topology.Mesh{Rows: 3, Cols: 2}, true, false, 0},
		{"04_rmat_s10_2x2", rmatCase(10), allL, topology.Mesh{Rows: 2, Cols: 2}, false, false, 0},
		{"05_uniform_s8_4x1_faults", func(seed uint64) (int64, []rmat.Edge) {
			return 256, uniformEdges(256, 2048, seed)
		}, allL, topology.Mesh{Rows: 4, Cols: 1}, true, false, 0},
		{"06_uniform_s9_2x2", func(seed uint64) (int64, []rmat.Edge) {
			return 512, uniformEdges(512, 4096, seed)
		}, allL, topology.Mesh{Rows: 2, Cols: 2}, false, false, 0},
		{"07_grid32x32_2x2_sparse", func(uint64) (int64, []rmat.Edge) {
			return gridEdges(32, 32)
		}, allL, topology.Mesh{Rows: 2, Cols: 2}, false, true, 0.25},
		{"08_grid16x64_1x4_faults", func(uint64) (int64, []rmat.Edge) {
			return gridEdges(16, 64)
		}, allL, topology.Mesh{Rows: 1, Cols: 4}, true, false, 0.25},
		{"09_comb64x8_2x2_sparse", func(uint64) (int64, []rmat.Edge) {
			return combEdges(64, 8)
		}, lowTh, topology.Mesh{Rows: 2, Cols: 2}, false, true, 0.5},
		{"10_comb48x6_2x3_faults", func(uint64) (int64, []rmat.Edge) {
			return combEdges(48, 6)
		}, lowTh, topology.Mesh{Rows: 2, Cols: 3}, true, false, 0.5},
		{"11_path256_2x2_sparse", func(uint64) (int64, []rmat.Edge) {
			return 256, pathEdges(256)
		}, allL, topology.Mesh{Rows: 2, Cols: 2}, false, true, 0.5},
		{"12_path400_4x1_faults", func(uint64) (int64, []rmat.Edge) {
			return 400, pathEdges(400)
		}, allL, topology.Mesh{Rows: 4, Cols: 1}, true, false, 0.5},
		{"13_tree512_2x2", func(seed uint64) (int64, []rmat.Edge) {
			return 512, stringyTreeEdges(512, seed)
		}, allL, topology.Mesh{Rows: 2, Cols: 2}, false, false, 0.5},
		{"14_tree768_1x4_faults", func(seed uint64) (int64, []rmat.Edge) {
			return 768, stringyTreeEdges(768, seed)
		}, allL, topology.Mesh{Rows: 1, Cols: 4}, true, false, 0.5},
		{"15_rmat_s8_2x2_lowth", rmatCase(8), lowTh, topology.Mesh{Rows: 2, Cols: 2}, false, false, 0},
	}
}()

func (tc wlCase) options(mode SparseMode, faultSeed uint64) Options {
	opt := Options{Mesh: tc.mesh, Thresholds: tc.th, SparseTail: mode}
	if tc.faulty {
		plan := faultinject.New(faultSeed)
		plan.DelayProb = 0.01
		plan.FailProb = 0.001
		opt.Transport = plan
		opt.CollectiveDeadline = 120 * time.Microsecond
		opt.MaxRetries = 8
	}
	return opt
}

func TestDifferentialWCC(t *testing.T) {
	for i, tc := range workloadDiffCases {
		i, tc := i, tc
		t.Run(tc.name, func(t *testing.T) {
			if testing.Short() && i%4 != 0 {
				t.Skip("subset in -short mode")
			}
			t.Parallel()
			seed := uint64(2000 + i)
			n, edges := tc.build(seed)
			eng, err := NewEngine(n, edges, tc.options(SparseAuto, seed))
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.RunWCC()
			if err != nil {
				t.Fatalf("RunWCC: %v", err)
			}
			fw, err := framework.New(n, edges, framework.Options{Mesh: tc.mesh})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := fw.ConnectedComponents()
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			for v := int64(0); v < n; v++ {
				if res.Label[v] != ref.Label[v] {
					t.Fatalf("label[%d] = %d, reference %d", v, res.Label[v], ref.Label[v])
				}
			}
			if res.Components != ref.Components {
				t.Fatalf("components = %d, reference %d", res.Components, ref.Components)
			}
			// Both loops count the final zero-change round that proves
			// convergence (the accounting the retired hand-rolled framework
			// WCC drifted from), so the counts must agree exactly.
			if res.Iterations != ref.Iterations {
				t.Fatalf("iterations = %d, reference %d", res.Iterations, ref.Iterations)
			}
			if !tc.sparseBoth {
				return
			}
			dense, err := NewEngine(n, edges, tc.options(SparseOff, seed))
			if err != nil {
				t.Fatal(err)
			}
			dres, err := dense.RunWCC()
			if err != nil {
				t.Fatalf("dense RunWCC: %v", err)
			}
			alw, err := NewEngineFromPartition(dense.Part, tc.options(SparseAlways, seed))
			if err != nil {
				t.Fatal(err)
			}
			ares, err := alw.RunWCC()
			if err != nil {
				t.Fatalf("always-sparse RunWCC: %v", err)
			}
			for v := int64(0); v < n; v++ {
				if dres.Label[v] != ares.Label[v] {
					t.Fatalf("sparse substitution: label[%d] dense %d, sparse %d", v, dres.Label[v], ares.Label[v])
				}
			}
		})
	}
}

func TestDifferentialKCore(t *testing.T) {
	for i, tc := range workloadDiffCases {
		i, tc := i, tc
		k := int64(1 + i%4) // spans k=1..4; trees have empty 2-cores, grids full ones
		t.Run(fmt.Sprintf("%s_k%d", tc.name, k), func(t *testing.T) {
			if testing.Short() && i%4 != 0 {
				t.Skip("subset in -short mode")
			}
			t.Parallel()
			seed := uint64(3000 + i)
			n, edges := tc.build(seed)
			eng, err := NewEngine(n, edges, tc.options(SparseAuto, seed))
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.RunKCore(k)
			if err != nil {
				t.Fatalf("RunKCore: %v", err)
			}
			fw, err := framework.New(n, edges, framework.Options{Mesh: tc.mesh})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := fw.KCore(k)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			for v := int64(0); v < n; v++ {
				if res.InCore[v] != ref.InCore[v] {
					t.Fatalf("inCore[%d] = %v, reference %v", v, res.InCore[v], ref.InCore[v])
				}
			}
			if res.CoreSize != ref.CoreSize {
				t.Fatalf("coreSize = %d, reference %d", res.CoreSize, ref.CoreSize)
			}
			if !tc.sparseBoth {
				return
			}
			dense, err := NewEngine(n, edges, tc.options(SparseOff, seed))
			if err != nil {
				t.Fatal(err)
			}
			dres, err := dense.RunKCore(k)
			if err != nil {
				t.Fatalf("dense RunKCore: %v", err)
			}
			alw, err := NewEngineFromPartition(dense.Part, tc.options(SparseAlways, seed))
			if err != nil {
				t.Fatal(err)
			}
			ares, err := alw.RunKCore(k)
			if err != nil {
				t.Fatalf("always-sparse RunKCore: %v", err)
			}
			for v := int64(0); v < n; v++ {
				if dres.InCore[v] != ares.InCore[v] {
					t.Fatalf("sparse substitution: inCore[%d] dense %v, sparse %v", v, dres.InCore[v], ares.InCore[v])
				}
			}
		})
	}
}

// checkSSSPAgainstDijkstra demands distance agreement within eps (parents may
// legitimately differ between equal-length paths) plus the optimality
// conditions of sssp.ValidateResult on the distributed result itself.
func checkSSSPAgainstDijkstra(t *testing.T, n int64, edges []rmat.Edge, wseed uint64, res *WorkloadResult) {
	t.Helper()
	if err := sssp.ValidateResult(n, edges, wseed, &sssp.Result{
		Root: res.Root, Dist: res.Dist, Parent: res.Parent,
	}); err != nil {
		t.Fatalf("optimality: %v", err)
	}
	refDist, _ := sssp.Dijkstra(n, edges, res.Root, wseed)
	const eps = 1e-9
	for v := int64(0); v < n; v++ {
		rd, gd := refDist[v], res.Dist[v]
		if math.IsInf(rd, 1) != math.IsInf(gd, 1) {
			t.Fatalf("reachability of %d: dist %g, Dijkstra %g", v, gd, rd)
		}
		if !math.IsInf(rd, 1) && math.Abs(rd-gd) > eps {
			t.Fatalf("dist[%d] = %g, Dijkstra %g", v, gd, rd)
		}
	}
}

func TestDifferentialSSSP(t *testing.T) {
	for i, tc := range workloadDiffCases {
		i, tc := i, tc
		t.Run(tc.name, func(t *testing.T) {
			if testing.Short() && i%4 != 0 {
				t.Skip("subset in -short mode")
			}
			t.Parallel()
			seed := uint64(5000 + i)
			wseed := uint64(77*i + 5)
			n, edges := tc.build(seed)
			eng, err := NewEngine(n, edges, tc.options(SparseAuto, seed))
			if err != nil {
				t.Fatal(err)
			}
			root := firstConnectedRootOf(eng)
			res, err := eng.RunSSSP(root, wseed, tc.delta)
			if err != nil {
				t.Fatalf("RunSSSP: %v", err)
			}
			if res.Relaxations == 0 {
				t.Fatal("no relaxations recorded")
			}
			checkSSSPAgainstDijkstra(t, n, edges, wseed, res)
			if !tc.sparseBoth {
				return
			}
			dense, err := NewEngine(n, edges, tc.options(SparseOff, seed))
			if err != nil {
				t.Fatal(err)
			}
			dres, err := dense.RunSSSP(root, wseed, tc.delta)
			if err != nil {
				t.Fatalf("dense RunSSSP: %v", err)
			}
			alw, err := NewEngineFromPartition(dense.Part, tc.options(SparseAlways, seed))
			if err != nil {
				t.Fatal(err)
			}
			ares, err := alw.RunSSSP(root, wseed, tc.delta)
			if err != nil {
				t.Fatalf("always-sparse RunSSSP: %v", err)
			}
			// The substitution contract is bit-exact here too: the sparse arm
			// applies relaxations in the dense arm's order, so even equal-
			// distance parent ties must match.
			for v := int64(0); v < n; v++ {
				if dres.Dist[v] != ares.Dist[v] || dres.Parent[v] != ares.Parent[v] {
					t.Fatalf("sparse substitution: vertex %d dense (%g,%d), sparse (%g,%d)",
						v, dres.Dist[v], dres.Parent[v], ares.Dist[v], ares.Parent[v])
				}
			}
		})
	}
}

// TestWorkloadArgumentValidation pins the entry-point error contracts.
func TestWorkloadArgumentValidation(t *testing.T) {
	n, edges := gridEdges(8, 8)
	eng, err := NewEngine(n, edges, Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunKCore(-1); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, err := eng.RunSSSP(-1, 1, 0); err == nil {
		t.Fatal("negative root accepted")
	}
	if _, err := eng.RunSSSP(n, 1, 0); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}
