package core

import (
	"repro/internal/bitmap"
	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/partition"
)

// kcoreState is k-core peeling on the engine's fast path. Every iteration
// marks the live vertices whose remaining degree fell below the threshold and
// sends one degree decrement along each of their edges through the six
// components: hub-sourced and hub-targeted decrements accumulate in a local
// replicated partial (hubDec) that the epilogue sum-reduces column-then-row
// (the two-stage sum over the mesh equals the world sum — delegation for
// additive state), while L-targeted decrements travel as owner-directed
// messages (dense alltoallv, or sparse triples on small peel rounds).
//
// L2H never exchanges: a hub decrement from an owned L vertex lands in the
// local hubDec partial, so the workload's row batch stays off (rowBatch=false
// in chooseSchedule). The sparse/dense choice keys off the previous round's
// globally agreed peel count — peel cascades typically decay, mirroring the
// BFS tail.
type kcoreState struct {
	driver

	kth  int64 // the core threshold (the "k" of k-core)
	k    int   // hub count
	numE int64

	hubDeg, lDeg []int64 // remaining degrees (hub: replicated, L: owner-local)
	hubDec, lDec []int64 // this iteration's decrements

	hubRemoved, hubPeel *bitmap.Bitmap
	lRemoved, lPeel     *bitmap.Bitmap
	lIsHub              *bitmap.Bitmap // owner slots shadowed by hub delegation

	liveL      int64 // global count of live (unremoved, non-hub) L vertices
	lastPeeled int64 // previous round's agreed global peel count; -1 first round

	peeledOwn, peeledL      int64 // this round's local counts (step 0)
	pendPeeled, pendPeeledL int64 // epilogue's agreed counts, committed by endIter

	snaps [numSteps]kcoreSnapshot
}

// kcoreSnapshot rolls back everything a retried step can have touched:
// degrees and decrements are additive (not monotone across a failed partial
// sum-reduce), and the peel marks drive which edges decrement.
type kcoreSnapshot struct {
	hubDeg, lDeg, hubDec, lDec           []int64
	hubRemoved, hubPeel, lRemoved, lPeel []uint64
	peeledOwn, peeledL                   int64
}

func newKCoreState(e *Engine, r *comm.Rank, kth int64) *kcoreState {
	per := int(e.Part.Layout.PerRank)
	k := e.Part.Hubs.K()
	st := &kcoreState{
		driver:     newWorkloadDriver(e, r),
		kth:        kth,
		k:          k,
		numE:       int64(e.Part.Hubs.NumE),
		hubDeg:     make([]int64, k),
		lDeg:       make([]int64, per),
		hubDec:     make([]int64, k),
		lDec:       make([]int64, per),
		hubRemoved: bitmap.New(k),
		hubPeel:    bitmap.New(k),
		lRemoved:   bitmap.New(per),
		lPeel:      bitmap.New(per),
		lIsHub:     bitmap.New(per),
		lastPeeled: -1,
	}
	layout := e.Part.Layout
	hubs := e.Part.Hubs
	for li := 0; li < st.rg.LocalN; li++ {
		if _, isHub := hubs.HubOf(layout.GlobalOf(r.ID, int32(li))); isHub {
			st.lIsHub.Set(li)
		}
	}
	return st
}

func (st *kcoreState) drv() *driver { return &st.driver }

// bootstrap loads the partitioner's degree table (hub degrees replicated, L
// degrees owner-local) and agrees on the global live-L count.
func (st *kcoreState) bootstrap() error {
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	copy(st.hubDeg, hubs.Deg)
	var live int64
	for li := 0; li < st.rg.LocalN; li++ {
		st.lDeg[li] = st.e.Part.Degrees[layout.GlobalOf(st.r.ID, int32(li))]
		if !st.lIsHub.Test(li) {
			live++
		}
	}
	st.liveL = comm.ControlSumInt64(st.r.World, live)
	return nil
}

// ckpt persists removal bitmaps and remaining degrees. The peel bitmaps and
// decrement arrays are empty at every capture point (the epilogue clears
// them), so their slots double as the writer's second bitmap pair; lastPeeled
// rides the VisitL scalar to keep the post-resume sparse choice in lockstep.
func (st *kcoreState) ckpt() ckptSlices {
	return ckptSlices{
		hubF: st.hubRemoved.Words(), hubV: st.hubPeel.Words(),
		lF: st.lRemoved.Words(), lV: st.lPeel.Words(),
		pHub: st.hubDeg, pL: st.lDeg,
		activeL: st.liveL, visitL: st.lastPeeled,
	}
}

func (st *kcoreState) loadState(cs *checkpoint.State) {
	copy(st.hubRemoved.Words(), cs.HubFrontier)
	copy(st.hubPeel.Words(), cs.HubVisited)
	copy(st.lRemoved.Words(), cs.LFrontier)
	copy(st.lPeel.Words(), cs.LVisited)
	copy(st.hubDeg, cs.ParentHub)
	copy(st.lDeg, cs.ParentL)
	st.liveL = cs.ActiveL
	st.lastPeeled = cs.VisitL
}

// beginIter latches the schedule. Peeling has no per-component active-source
// count before the marks are computed (that happens inside step 0), so every
// component keys off the previous round's agreed global peel count — the
// sparse tail engages as the cascade decays. The first round has no history
// and stays dense.
func (st *kcoreState) beginIter(it *IterTrace) {
	it.ActiveE = st.numE - int64(st.hubRemoved.CountRange(0, int(st.numE)))
	it.ActiveH = int64(st.k) - st.numE - int64(st.hubRemoved.CountRange(int(st.numE), st.k))
	it.ActiveL = st.liveL
	proxy := st.lastPeeled
	if proxy < 0 {
		proxy = st.e.Opt.SparseCutoff + 1
	}
	var act [partition.NumComponents]int64
	for c := range act {
		act[c] = proxy
	}
	st.chooseSchedule(it, act, false, false)
	st.peeledOwn, st.peeledL = 0, 0
	st.pendPeeled, st.pendPeeledL = 0, 0
}

func (st *kcoreState) step(g int, it *IterTrace) error {
	var firstErr error
	run := func(c partition.Component, fn func() (int64, error)) {
		if err := st.runComp(c, it.Directions[c], fn); firstErr == nil {
			firstErr = err
		}
	}
	switch g {
	case 0:
		st.peelMark()
		run(partition.CompEH2EH, st.ehDec)
		run(partition.CompE2L, st.e2lDec)
	case 1:
		run(partition.CompH2L, st.h2lDec)
		run(partition.CompL2E, st.l2eDec)
		run(partition.CompL2H, st.l2hDec)
	case 2:
		run(partition.CompL2L, st.l2lDec)
	case 3:
		return st.epilogue()
	}
	return firstErr
}

// peelMark marks every live vertex below the threshold. Hub removals are
// decided identically on every rank (replicated degrees); only the owner of
// the hub's original vertex counts them toward the global total.
func (st *kcoreState) peelMark() {
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	for h := 0; h < st.k; h++ {
		if !st.hubRemoved.Test(h) && st.hubDeg[h] < st.kth {
			st.hubRemoved.Set(h)
			st.hubPeel.Set(h)
			if layout.Owner(hubs.Orig[h]) == st.r.ID {
				st.peeledOwn++
			}
		}
	}
	for li := 0; li < st.rg.LocalN; li++ {
		if st.lIsHub.Test(li) || st.lRemoved.Test(li) {
			continue
		}
		if st.lDeg[li] < st.kth {
			st.lRemoved.Set(li)
			st.lPeel.Set(li)
			st.peeledOwn++
			st.peeledL++
		}
	}
}

// ehDec: freshly peeled source hubs decrement destination hubs over this
// rank's 2D core-subgraph block, into the local replicated partial.
func (st *kcoreState) ehDec() (int64, error) {
	push := &st.rg.EHPush
	var edges int64
	for i, src := range push.IDs {
		if !st.hubPeel.Test(int(src)) {
			continue
		}
		for _, dst := range push.Adj[push.Ptr[i]:push.Ptr[i+1]] {
			edges++
			st.hubDec[dst]++
		}
	}
	return edges, nil
}

// e2lDec: peeled E hubs decrement owned L degrees locally.
func (st *kcoreState) e2lDec() (int64, error) {
	csr := &st.rg.EToL
	var edges int64
	for i, hub := range csr.IDs {
		if !st.hubPeel.Test(int(hub)) {
			continue
		}
		for _, li := range csr.Adj[csr.Ptr[i]:csr.Ptr[i+1]] {
			edges++
			st.lDec[li]++
		}
	}
	return edges, nil
}

// h2lDec: peeled H hubs in this rank's column block send decrements to their
// L neighbors' owners along the row (lMsg reuses Parent as the decrement).
func (st *kcoreState) h2lDec() (int64, error) {
	csr := &st.rg.HToL
	var edges int64
	if st.sparse[partition.CompH2L] {
		var ups []comm.SparseUpdate
		for i, hub := range csr.IDs {
			if !st.hubPeel.Test(int(hub)) {
				continue
			}
			for _, rem := range csr.Adj[csr.Ptr[i]:csr.Ptr[i+1]] {
				edges++
				ups = append(ups, comm.SparseUpdate{Dst: int32(rem.Col),
					Tag: int32(partition.CompH2L), Off: int64(rem.LIdx), Val: 1})
			}
		}
		out, err := comm.AllgatherSparse(st.r.RowC, ups)
		if err != nil {
			return edges, err
		}
		for _, us := range out {
			for _, u := range us {
				st.lDec[u.Off] += u.Val
			}
		}
		return edges, nil
	}
	send := make([][]lMsg, st.e.Opt.Mesh.Cols)
	for i, hub := range csr.IDs {
		if !st.hubPeel.Test(int(hub)) {
			continue
		}
		for _, rem := range csr.Adj[csr.Ptr[i]:csr.Ptr[i+1]] {
			edges++
			send[rem.Col] = append(send[rem.Col], lMsg{LIdx: rem.LIdx, Parent: 1})
		}
	}
	recv, err := comm.Alltoallv(st.r.RowC, send)
	if err != nil {
		return edges, err
	}
	for _, part := range recv {
		for _, m := range part {
			st.lDec[m.LIdx] += m.Parent
		}
	}
	return edges, nil
}

// l2eDec: peeled owned L vertices decrement E delegates locally.
func (st *kcoreState) l2eDec() (int64, error) {
	csr := &st.rg.LToE
	var edges int64
	st.lPeel.ForEach(func(li int) {
		for _, hub := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
			edges++
			st.hubDec[hub]++
		}
	})
	return edges, nil
}

// l2hDec: peeled owned L vertices decrement H delegates into the local
// partial — additive delegation needs no message; the epilogue's two-stage
// sum-reduce propagates it.
func (st *kcoreState) l2hDec() (int64, error) {
	csr := &st.rg.LToH
	var edges int64
	st.lPeel.ForEach(func(li int) {
		for _, hub := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
			edges++
			st.hubDec[hub]++
		}
	})
	return edges, nil
}

// l2lDec: peeled owned L vertices send decrements to their L neighbors'
// owners; one world alltoallv, or sparse triples on small peel rounds.
func (st *kcoreState) l2lDec() (int64, error) {
	csr := &st.rg.L2L
	layout := st.e.Part.Layout
	var edges int64
	if st.sparse[partition.CompL2L] {
		var ups []comm.SparseUpdate
		st.lPeel.ForEach(func(li int) {
			for _, dst := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
				edges++
				ups = append(ups, comm.SparseUpdate{Dst: int32(layout.Owner(dst)),
					Tag: int32(partition.CompL2L), Off: dst, Val: 1})
			}
		})
		out, err := comm.AllgatherSparse(st.r.World, ups)
		if err != nil {
			return edges, err
		}
		for _, us := range out {
			for _, u := range us {
				st.lDec[layout.LocalIdx(u.Off)] += u.Val
			}
		}
		return edges, nil
	}
	send := make([][]l2lMsg, layout.P)
	st.lPeel.ForEach(func(li int) {
		for _, dst := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
			edges++
			send[layout.Owner(dst)] = append(send[layout.Owner(dst)], l2lMsg{Dst: dst, Parent: 1})
		}
	})
	recv, err := comm.Alltoallv(st.r.World, send)
	if err != nil {
		return edges, err
	}
	for _, part := range recv {
		for _, m := range part {
			st.lDec[layout.LocalIdx(m.Dst)] += m.Parent
		}
	}
	return edges, nil
}

// epilogue sum-reduces the replicated hub decrements column-then-row, applies
// both decrement arrays, clears the round's marks, and agrees on the global
// peel count (plus the byte feedback for the sparse tail). Both collectives
// run unconditionally so every rank keeps the same schedule under faults; a
// garbled partial merge is discarded by the step retry's snapshot restore.
func (st *kcoreState) epilogue() error {
	st.r.SetTag(TagEpilogue)
	firstErr := syncHubSumInt64(&st.driver, st.hubDec, "deg_sync")
	for h := 0; h < st.k; h++ {
		st.hubDeg[h] -= st.hubDec[h]
		st.hubDec[h] = 0
	}
	for li := range st.lDec {
		st.lDeg[li] -= st.lDec[li]
		st.lDec[li] = 0
	}
	st.hubPeel.Reset()
	st.lPeel.Reset()
	iterBytes := commBytes(st.rec) - st.iterBytesBase
	sums, err := comm.AllreduceSumInt64s(st.r.World,
		[]int64{st.peeledOwn, iterBytes, st.peeledL})
	if firstErr == nil {
		firstErr = err
	}
	if err == nil {
		st.pendPeeled = sums[0]
		st.lastIterBytes = sums[1]
		st.pendPeeledL = sums[2]
	}
	return firstErr
}

// endIter commits the agreed counts; the peel converges when a whole round
// removed nothing anywhere.
func (st *kcoreState) endIter(it *IterTrace) bool {
	st.lastPeeled = st.pendPeeled
	st.liveL -= st.pendPeeledL
	return st.pendPeeled == 0
}

func (st *kcoreState) finalize() error { return nil }

func (st *kcoreState) snapshot(g int) {
	s := &st.snaps[g]
	snapInt64(&s.hubDeg, st.hubDeg)
	snapInt64(&s.lDeg, st.lDeg)
	snapInt64(&s.hubDec, st.hubDec)
	snapInt64(&s.lDec, st.lDec)
	snapWords(&s.hubRemoved, st.hubRemoved)
	snapWords(&s.hubPeel, st.hubPeel)
	snapWords(&s.lRemoved, st.lRemoved)
	snapWords(&s.lPeel, st.lPeel)
	s.peeledOwn, s.peeledL = st.peeledOwn, st.peeledL
}

func (st *kcoreState) restore(g int) {
	s := &st.snaps[g]
	copy(st.hubDeg, s.hubDeg)
	copy(st.lDeg, s.lDeg)
	copy(st.hubDec, s.hubDec)
	copy(st.lDec, s.lDec)
	copy(st.hubRemoved.Words(), s.hubRemoved)
	copy(st.hubPeel.Words(), s.hubPeel)
	copy(st.lRemoved.Words(), s.lRemoved)
	copy(st.lPeel.Words(), s.lPeel)
	st.peeledOwn, st.peeledL = s.peeledOwn, s.peeledL
}

// writeResult assembles this rank's share of the membership array: owned
// non-hub L vertices, then the hub vertices whose original IDs it owns
// (removal decisions are replicated).
func (st *kcoreState) writeResult(inCore []bool) {
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	for li := 0; li < st.rg.LocalN; li++ {
		v := layout.GlobalOf(st.r.ID, int32(li))
		if _, isHub := hubs.HubOf(v); !isHub {
			inCore[v] = !st.lRemoved.Test(li)
		}
	}
	for h, orig := range hubs.Orig {
		if layout.Owner(orig) == st.r.ID {
			inCore[orig] = !st.hubRemoved.Test(h)
		}
	}
}
