package core

import (
	"testing"

	"repro/internal/faultinject"
	"repro/internal/rmat"
	"repro/internal/topology"
)

// TestBatchKillRecovery loses a rank mid-way through a batched sweep, under
// both rebuild modes, and demands that the recovery path (checkpoint capture
// of the stacked plane backings, epoch rebuild, replay) hands back a correct
// answer for EVERY in-flight query — not just validation and levels, but the
// exact parent arrays the fault-free solo runs produce.
func TestBatchKillRecovery(t *testing.T) {
	cfg := rmat.Config{Scale: 12, Seed: 23}
	n, edges := cfg.NumVertices(), rmat.Generate(cfg)
	base := Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: DefaultThresholds(12)}

	ref, err := NewEngine(n, edges, base)
	if err != nil {
		t.Fatal(err)
	}
	roots := distinctConnectedRoots(ref, 6)
	if len(roots) < 4 {
		t.Fatalf("too few roots: %v", roots)
	}
	solo := make([]*Result, len(roots))
	minIters := int(^uint(0) >> 1)
	for qi, root := range roots {
		res, err := ref.Run(root)
		if err != nil {
			t.Fatal(err)
		}
		solo[qi] = res
		if res.Iterations < minIters {
			minIters = res.Iterations
		}
	}
	if minIters < 4 {
		t.Fatalf("shallowest query converged in %d iterations; kill@iter=2 would not land mid-flight", minIters)
	}

	for _, mode := range []RecoveryMode{RecoverShrink, RecoverRestore} {
		t.Run(mode.String(), func(t *testing.T) {
			plan, err := faultinject.Parse("kill@rank=3,iter=2")
			if err != nil {
				t.Fatal(err)
			}
			opt := base
			opt.Transport = plan
			opt.CheckpointDir = t.TempDir()
			opt.Recovery = mode
			eng, err := NewEngine(n, edges, opt)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := eng.RunBatch(roots)
			if err != nil {
				t.Fatalf("recovered batch failed: %v", err)
			}
			if batch.Faults.Kills != 1 || batch.Recovery.Epochs != 1 || batch.Recovery.RanksLost != 1 {
				t.Fatalf("kills=%d recovery=%+v: want one kill, one epoch, one rank lost",
					batch.Faults.Kills, batch.Recovery)
			}
			if batch.Recovery.BytesRestored <= 0 {
				t.Fatalf("BytesRestored = %d, want > 0 (batched planes must ride the checkpoint)", batch.Recovery.BytesRestored)
			}
			for qi, root := range roots {
				q := batch.Queries[qi]
				for v := int64(0); v < n; v++ {
					if q.Parent[v] != solo[qi].Parent[v] {
						t.Fatalf("%s root %d: parent[%d] = %d, fault-free solo %d",
							mode, root, v, q.Parent[v], solo[qi].Parent[v])
					}
				}
				if q.Iterations != solo[qi].Iterations {
					t.Errorf("%s root %d: %d iterations, fault-free solo %d", mode, root, q.Iterations, solo[qi].Iterations)
				}
			}
		})
	}
}
