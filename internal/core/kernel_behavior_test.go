package core

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/rmat"
	"repro/internal/stats"
	"repro/internal/topology"
)

// These tests pin the communication behavior the paper ascribes to each
// component: which kernels message, over which communicator scope, and which
// stay local thanks to delegation.

// hubLGraph builds a graph with one guaranteed-H vertex (degree 40) whose
// leaves are L, plus an E vertex (degree 200).
func hubLGraph() (int64, []rmat.Edge, partition.Thresholds) {
	const n = 1024
	var edges []rmat.Edge
	// E vertex 0: degree 200.
	for v := int64(1); v <= 200; v++ {
		edges = append(edges, rmat.Edge{U: 0, V: v})
	}
	// H vertex 300: degree 40 (below E threshold 100, above H threshold 20).
	for v := int64(301); v <= 340; v++ {
		edges = append(edges, rmat.Edge{U: 300, V: v})
	}
	// An L-L path spanning rank boundaries (block size is 256, so the path
	// 400..599 crosses the 511|512 boundary).
	for v := int64(400); v < 599; v++ {
		edges = append(edges, rmat.Edge{U: v, V: v + 1})
	}
	return n, edges, partition.Thresholds{E: 100, H: 20}
}

func phaseVolume(res *Result, p stats.Phase) int64 {
	v := res.Recorder.Volumes[p]
	return v.TotalBytes()
}

func TestE2LIsCommunicationFree(t *testing.T) {
	// E is delegated on every rank: pushing E2L and pulling L2E must move
	// zero bytes in those phases (hub state travels in the shared sync,
	// attributed to "other").
	n, edges, th := hubLGraph()
	for _, mode := range []DirectionMode{ModePushOnly, ModePullOnly} {
		eng, err := NewEngine(n, edges, Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: th, Direction: mode})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(0) // root is the E vertex
		if err != nil {
			t.Fatal(err)
		}
		if v := phaseVolume(res, stats.PhaseE2L); v != 0 {
			t.Fatalf("mode %d: E2L moved %d bytes; E delegation should make it local", mode, v)
		}
		if v := phaseVolume(res, stats.PhaseL2E); v != 0 {
			t.Fatalf("mode %d: L2E moved %d bytes; E delegation should make it local", mode, v)
		}
	}
}

func TestH2LPushMessagesStayInRow(t *testing.T) {
	// H2L push messages travel on the row communicator only. With a mesh of
	// one row the traffic exists but never crosses a supernode-boundary
	// proxy; with a supernode-splitting machine we can detect scope by
	// construction: all H2L bytes must be intra-supernode when rows map to
	// supernodes.
	n, edges, th := hubLGraph()
	mesh := topology.Mesh{Rows: 2, Cols: 2}
	mach := topology.Machine{Nodes: 4, SupernodeSize: 2, NICBandwidth: 1e9, Oversubscription: 4}
	// SparseOff pins the dense row exchange; the sparse tail's scope behavior
	// is covered by the sparse differential corpus.
	eng, err := NewEngine(n, edges, Options{Mesh: mesh, Machine: mach, Thresholds: th, Direction: ModePushOnly,
		SparseTail: SparseOff})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(300) // root is the H vertex: H2L fires immediately
	if err != nil {
		t.Fatal(err)
	}
	v := res.Recorder.Volumes[stats.PhaseH2L]
	totalA2A := v.IntraBytes[comm.KindAlltoallv] + v.InterBytes[comm.KindAlltoallv]
	if totalA2A == 0 {
		t.Fatal("H2L push sent no messages despite H leaves on other ranks")
	}
	if v.InterBytes[comm.KindAlltoallv] != 0 {
		t.Fatalf("H2L push crossed supernodes: %d inter bytes (rows map to supernodes)", v.InterBytes[comm.KindAlltoallv])
	}
}

func TestH2LPullIsLocal(t *testing.T) {
	// Bottom-up H2L scans owned L vertices against the replicated hub
	// frontier: no alltoallv at all.
	n, edges, th := hubLGraph()
	eng, err := NewEngine(n, edges, Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: th, Direction: ModePullOnly})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(300)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Recorder.Volumes[stats.PhaseH2L]
	if a2a := v.IntraBytes[comm.KindAlltoallv] + v.InterBytes[comm.KindAlltoallv]; a2a != 0 {
		t.Fatalf("H2L pull used alltoallv (%d bytes); should be local via delegation", a2a)
	}
}

func TestL2LPullUsesAllgatherNotAlltoallv(t *testing.T) {
	n, edges, th := hubLGraph()
	eng, err := NewEngine(n, edges, Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: th, Direction: ModePullOnly,
		MaxIterations: 256}) // the 400..599 L-path gives the graph diameter ~200
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(400) // L root: L2L does the work
	if err != nil {
		t.Fatal(err)
	}
	v := res.Recorder.Volumes[stats.PhaseL2L]
	if ag := v.IntraBytes[comm.KindAllgather] + v.InterBytes[comm.KindAllgather]; ag == 0 {
		t.Fatal("L2L pull gathered no frontier words")
	}
	if a2a := v.IntraBytes[comm.KindAlltoallv] + v.InterBytes[comm.KindAlltoallv]; a2a != 0 {
		t.Fatalf("L2L pull used alltoallv (%d bytes)", a2a)
	}
}

func TestL2LPushUsesAlltoallvNotAllgather(t *testing.T) {
	n, edges, th := hubLGraph()
	eng, err := NewEngine(n, edges, Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: th, Direction: ModePushOnly,
		SparseTail:    SparseOff, // pin the dense exchange this test is about
		MaxIterations: 256})      // the 400..599 L-path gives the graph diameter ~200
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Recorder.Volumes[stats.PhaseL2L]
	if a2a := v.IntraBytes[comm.KindAlltoallv] + v.InterBytes[comm.KindAlltoallv]; a2a == 0 {
		t.Fatal("L2L push sent no messages")
	}
	if ag := v.IntraBytes[comm.KindAllgather] + v.InterBytes[comm.KindAllgather]; ag != 0 {
		t.Fatalf("L2L push gathered frontiers (%d bytes)", ag)
	}
}

func TestHierarchicalL2LDoublesHops(t *testing.T) {
	// Forwarding via the intersection rank sends each message twice (column
	// hop + row hop): total alltoallv bytes must exceed the direct scheme's.
	n, edges, th := hubLGraph()
	run := func(hier bool) int64 {
		eng, err := NewEngine(n, edges, Options{Mesh: topology.Mesh{Rows: 2, Cols: 2},
			Thresholds: th, Direction: ModePushOnly, Hierarchical: hier,
			SparseTail: SparseOff, MaxIterations: 256})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(400)
		if err != nil {
			t.Fatal(err)
		}
		v := res.Recorder.Volumes[stats.PhaseL2L]
		return v.IntraBytes[comm.KindAlltoallv] + v.InterBytes[comm.KindAlltoallv]
	}
	direct := run(false)
	hier := run(true)
	if direct == 0 {
		t.Fatal("no L2L traffic at all")
	}
	if hier <= direct {
		t.Fatalf("hierarchical L2L bytes %d not above direct %d (two hops expected)", hier, direct)
	}
}

func TestSkipRecordedForExhaustedClasses(t *testing.T) {
	// After the component's destination class is fully visited,
	// sub-iteration mode must record skips (the late-iteration saving).
	cfg := rmat.Config{Scale: 12, Seed: 71}
	edges := rmat.Generate(cfg)
	eng, err := NewEngine(cfg.NumVertices(), edges, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(firstConnectedRootOf(eng))
	if err != nil {
		t.Fatal(err)
	}
	skips := 0
	for _, it := range res.Trace {
		for _, d := range it.Directions {
			if d == stats.DirSkip {
				skips++
			}
		}
	}
	if skips == 0 {
		t.Fatal("no sub-iteration was ever skipped on an R-MAT run")
	}
}

func firstConnectedRootOf(eng *Engine) int64 {
	for v, d := range eng.Part.Degrees {
		if d > 0 {
			return int64(v)
		}
	}
	return 0
}

func TestTwoStageApplyMatchesSerial(t *testing.T) {
	// The parallel two-stage L message application must produce the same
	// reachable sets and levels as the serial path.
	cfg := rmat.Config{Scale: 11, Seed: 72}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	run := func(workers int) *Result {
		eng, err := NewEngine(n, edges, Options{Ranks: 4, RankWorkers: workers, Direction: ModePushOnly})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(4)
	for v := int64(0); v < n; v++ {
		if (serial.Parent[v] >= 0) != (parallel.Parent[v] >= 0) {
			t.Fatalf("reachability of %d differs between apply paths", v)
		}
	}
}
