package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/comm"
	"repro/internal/stats"
)

// WorkloadResult is the shared result envelope of the ported analytics
// workloads (RunWCC, RunKCore, RunSSSP). Workload names the kernel; only the
// fields of that workload's section are populated. The accounting fields
// mirror Result: the ported workloads run the same driver loop as BFS, so
// recorder breakdowns, fault/retry counters and fail-stop recovery state all
// carry the same meaning.
type WorkloadResult struct {
	Workload string

	// WCC: Label[v] is the smallest original vertex ID in v's component;
	// Components counts distinct labels among vertices with nonzero degree
	// (matching framework.ConnectedComponents).
	Label      []int64
	Components int64

	// k-core: InCore[v] marks membership of the K-core; CoreSize counts it.
	InCore   []bool
	CoreSize int64
	K        int64

	// SSSP: distances and parents from Root under the deterministic
	// Graph 500 weights (sssp.WeightOf with WeightSeed); unreachable
	// vertices have Dist +Inf and Parent -1. Relaxations counts successful
	// distance lowerings across all ranks (delegated hub relaxations count
	// once per holding rank).
	Root        int64
	WeightSeed  uint64
	Dist        []float64
	Parent      []int64
	Relaxations int64

	Iterations      int
	Time            time.Duration
	Recorder        *stats.Recorder
	PerRank         []*stats.Recorder
	Trace           []IterTrace
	Faults          comm.FaultStats
	Retries         int64
	RecoveryTime    time.Duration
	Recovery        stats.RecoveryStats
	CheckpointScope string
}

// newWorkloadResult folds an execute outcome into the shared envelope.
func newWorkloadResult(workload string, rc *runCommon) *WorkloadResult {
	return &WorkloadResult{
		Workload:        workload,
		Iterations:      len(rc.trace),
		Time:            rc.time,
		Recorder:        rc.recorder,
		PerRank:         rc.perRank,
		Trace:           rc.trace,
		Faults:          rc.faults,
		Retries:         rc.retries,
		RecoveryTime:    rc.recoveryTime,
		Recovery:        rc.recovery,
		CheckpointScope: rc.scopeName,
	}
}

// RunWCC computes connected components on the engine's fast path: min-label
// propagation over the six 1.5D components with delegated hub labels, the
// adaptive sparse tail, step-granular retry and checkpoint/recovery — the
// same schedule as BFS, carrying labels instead of parents.
func (e *Engine) RunWCC() (*WorkloadResult, error) {
	rc, err := e.execute("wcc", nil,
		func(e *Engine, r *comm.Rank) workload { return newWCCState(e, r) })
	if err != nil {
		return nil, err
	}
	res := newWorkloadResult("wcc", rc)
	n := e.Part.Layout.N
	res.Label = make([]int64, n)
	for i := range res.Label {
		res.Label[i] = -1
	}
	if rc.err == nil {
		for _, wl := range rc.states {
			if wl == nil {
				continue
			}
			wl.(*wccState).writeResult(res.Label)
		}
		e.distAssemble(func(r *comm.Rank, lead bool) {
			gatherOwned(e, r, lead, res.Label)
		})
		seen := make(map[int64]struct{})
		for v, l := range res.Label {
			if e.Part.Degrees[v] > 0 {
				seen[l] = struct{}{}
			}
		}
		res.Components = int64(len(seen))
	}
	return res, rc.err
}

// RunKCore computes the k-core (every vertex of the maximal subgraph with
// minimum degree k) by synchronous peeling on the fast path: peel marks and
// degree decrements ride the six components, hub decrements are delegated and
// sum-reduced column-then-row, and the whole loop inherits retry and
// checkpoint/recovery from the driver.
func (e *Engine) RunKCore(k int64) (*WorkloadResult, error) {
	if k < 0 {
		return nil, fmt.Errorf("core: negative k-core threshold %d", k)
	}
	rc, err := e.execute(fmt.Sprintf("kcore%d", k), map[string]int64{"k": k},
		func(e *Engine, r *comm.Rank) workload { return newKCoreState(e, r, k) })
	if err != nil {
		return nil, err
	}
	res := newWorkloadResult("kcore", rc)
	res.K = k
	res.InCore = make([]bool, e.Part.Layout.N)
	if rc.err == nil {
		for _, wl := range rc.states {
			if wl == nil {
				continue
			}
			wl.(*kcoreState).writeResult(res.InCore)
		}
		e.distAssemble(func(r *comm.Rank, lead bool) {
			gatherOwned(e, r, lead, res.InCore)
		})
		for _, in := range res.InCore {
			if in {
				res.CoreSize++
			}
		}
	}
	return res, rc.err
}

// RunSSSP computes single-source shortest paths from root under the
// deterministic Graph 500 edge weights (sssp.WeightOf with weightSeed) by
// bucketed relaxation on the fast path: each iteration relaxes the improved
// vertices whose tentative distance falls inside the current delta-bucket,
// delegated hub distances are min-merged column-then-row, and bucket advance
// rides the epilogue allreduce pair. delta <= 0 selects the default bucket
// width (1/8, tuned for uniform [0,1) weights).
func (e *Engine) RunSSSP(root int64, weightSeed uint64, delta float64) (*WorkloadResult, error) {
	n := e.Part.Layout.N
	if root < 0 || root >= n {
		return nil, fmt.Errorf("core: root %d out of [0,%d)", root, n)
	}
	if delta <= 0 {
		delta = 1.0 / 8
	}
	rc, err := e.execute(fmt.Sprintf("sssp%d", root), map[string]int64{"root": root},
		func(e *Engine, r *comm.Rank) workload { return newSSSPState(e, r, root, weightSeed, delta) })
	if err != nil {
		return nil, err
	}
	res := newWorkloadResult("sssp", rc)
	res.Root = root
	res.WeightSeed = weightSeed
	res.Dist = make([]float64, n)
	res.Parent = make([]int64, n)
	for i := range res.Dist {
		res.Dist[i] = math.Inf(1)
		res.Parent[i] = -1
	}
	if rc.err == nil {
		for _, wl := range rc.states {
			if wl == nil {
				continue
			}
			st := wl.(*ssspState)
			st.writeResult(res.Dist, res.Parent)
			res.Relaxations += st.relaxations
		}
		if e.World.Distributed() {
			// Gather the remote segments of both arrays and replace the
			// process-local relaxation count with the global sum.
			var total int64
			e.distAssemble(func(r *comm.Rank, lead bool) {
				gatherOwned(e, r, lead, res.Dist)
				gatherOwned(e, r, lead, res.Parent)
				var mine int64
				if wl := rc.states[r.ID]; wl != nil {
					mine = wl.(*ssspState).relaxations
				}
				sum := comm.ControlSumInt64(r.World, mine)
				if lead {
					total = sum
				}
			})
			res.Relaxations = total
		}
	}
	return res, rc.err
}
