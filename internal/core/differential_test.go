package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rmat"
	"repro/internal/topology"
	"repro/internal/validate"
	"repro/internal/xrand"
)

// uniformEdges draws m edges uniformly over n vertices — the opposite degree
// profile of R-MAT (no hubs, so nearly everything classifies as L).
func uniformEdges(n int64, m int, seed uint64) []rmat.Edge {
	rng := xrand.NewXoshiro256(seed)
	edges := make([]rmat.Edge, m)
	for i := range edges {
		edges[i] = rmat.Edge{
			U: int64(rng.Uint64n(uint64(n))),
			V: int64(rng.Uint64n(uint64(n))),
		}
	}
	return edges
}

// TestDifferentialEngineVsBaseline is the property harness: across ~50 seeded
// graphs spanning both generators, scales, mesh shapes, direction modes,
// segmenting, and hierarchical forwarding — with roughly a third of the runs
// under an active fault plan — the 1.5D engine's parent tree must pass
// Graph 500 validation and induce exactly the levels of the vanilla 1D
// baseline engine (an independent implementation with none of the delegation
// machinery).
func TestDifferentialEngineVsBaseline(t *testing.T) {
	meshes := []topology.Mesh{
		{Rows: 1, Cols: 4}, {Rows: 2, Cols: 2}, {Rows: 4, Cols: 1},
		{Rows: 2, Cols: 3}, {Rows: 3, Cols: 2},
	}
	dirs := []DirectionMode{ModeSubIteration, ModeWholeIteration, ModePushOnly, ModePullOnly}
	scales := []int{8, 9, 10}

	const cases = 50
	for i := 0; i < cases; i++ {
		i := i
		scale := scales[i%len(scales)]
		mesh := meshes[i%len(meshes)]
		dir := dirs[i%len(dirs)]
		gen := "rmat"
		if i%2 == 1 {
			gen = "uniform"
		}
		segmented := i%7 == 0
		hier := i%6 == 3
		faulty := i%3 == 0 // ~1/3 of the corpus runs under a fault plan
		seed := uint64(1000 + i)

		name := fmt.Sprintf("%02d_%s_s%d_%dx%d_dir%d", i, gen, scale, mesh.Rows, mesh.Cols, dir)
		if segmented {
			name += "_seg"
		}
		if hier {
			name += "_hier"
		}
		if faulty {
			name += "_faults"
		}
		t.Run(name, func(t *testing.T) {
			if testing.Short() && i%5 != 0 {
				t.Skip("subset in -short mode")
			}
			t.Parallel()
			n := int64(1) << uint(scale)
			var edges []rmat.Edge
			if gen == "rmat" {
				cfg := rmat.Config{Scale: scale, Seed: seed}
				edges = rmat.Generate(cfg)
			} else {
				edges = uniformEdges(n, 8<<uint(scale), seed)
			}

			opt := Options{
				Mesh:         mesh,
				Thresholds:   partition.Thresholds{E: 256, H: 32},
				Direction:    dir,
				Segmented:    segmented,
				Hierarchical: hier,
			}
			if faulty {
				plan := faultinject.New(seed)
				plan.DelayProb = 0.01
				plan.FailProb = 0.001
				opt.Transport = plan
				opt.CollectiveDeadline = 120 * time.Microsecond
				opt.MaxRetries = 8
			}
			eng, err := NewEngine(n, edges, opt)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := baseline.New(n, edges, baseline.Options{Ranks: 4})
			if err != nil {
				t.Fatal(err)
			}

			roots := []int64{firstConnectedRootOf(eng)}
			if v := n / 2; eng.Part.Degrees[v] > 0 && v != roots[0] {
				roots = append(roots, v)
			}
			for _, root := range roots {
				res, err := eng.Run(root)
				if err != nil {
					t.Fatalf("engine root %d: %v", root, err)
				}
				if _, err := validate.BFS(n, edges, root, res.Parent); err != nil {
					t.Fatalf("engine root %d: validation: %v", root, err)
				}
				bres, err := ref.Run(root)
				if err != nil {
					t.Fatalf("baseline root %d: %v", root, err)
				}
				if _, err := validate.BFS(n, edges, root, bres.Parent); err != nil {
					t.Fatalf("baseline root %d: validation: %v", root, err)
				}
				// Parent choices may legitimately differ; BFS levels may not.
				refLvl, err := graph.Levels(bres.Parent, root)
				if err != nil {
					t.Fatal(err)
				}
				gotLvl, err := graph.Levels(res.Parent, root)
				if err != nil {
					t.Fatal(err)
				}
				for v := int64(0); v < n; v++ {
					if refLvl[v] != gotLvl[v] {
						t.Fatalf("root %d: level[%d] = %d, baseline %d", root, v, gotLvl[v], refLvl[v])
					}
				}
			}
		})
	}
}
